(* Command-line interface to the SoD2 reproduction: inspect the model zoo,
   run the RDP analysis, compile, execute, compare against the baseline
   framework simulators, and export graphs to Graphviz. *)

open Cmdliner

let spec_of_name name =
  match Zoo.by_name name with
  | Some sp -> sp
  | None ->
    Printf.eprintf "unknown model %s; try `sod2 list`\n" name;
    exit 2

let profile_of_name name =
  match Profile.by_name name with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown device %s; known: %s\n" name
      (String.concat ", " (List.map (fun p -> p.Profile.name) Profile.all));
    exit 2

let model_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc:"Zoo model name.")

let device_arg =
  Arg.(value & opt string "sd888-cpu" & info [ "device"; "d" ] ~docv:"DEVICE"
         ~doc:"Device profile (sd888-cpu, sd888-gpu, sd835-cpu, sd835-gpu).")

let dims_arg =
  Arg.(value & opt (some string) None
       & info [ "dims" ] ~docv:"DIMS" ~doc:"Shape variables, e.g. H=320,W=320 or S=128.")

let env_of_dims spec dims =
  match dims with
  | None -> Zoo.percentile_env spec 0.5
  | Some s ->
    List.fold_left
      (fun env binding ->
        match String.split_on_char '=' binding with
        | [ k; v ] -> Env.bind k (int_of_string v) env
        | _ ->
          Printf.eprintf "bad --dims entry %S\n" binding;
          exit 2)
      Env.empty (String.split_on_char ',' s)

(* Resolve the consolidated --exec and --compile specs into one
   [Executor.config].  The two flags are the whole configuration surface:
   --exec carries the execution policy (and may carry compile tokens for
   one-flag convenience), --compile overrides the compile half wholesale.
   The historical --backend / --memory / --arena aliases are gone; the
   parser's error messages name the canonical spellings. *)
let exec_config ?(default = Sod2_runtime.Executor.default_config) ~exec ~compile () =
  let cfg =
    match exec with
    | None -> default
    | Some s -> (
      match Sod2_runtime.Executor.config_of_string s with
      | Ok cfg -> cfg
      | Error e ->
        Printf.eprintf "bad --exec spec: %s\n" e;
        exit 2)
  in
  match compile with
  | None -> cfg
  | Some s -> (
    match Sod2.Compile_opts.of_string s with
    | Ok opts -> { cfg with Sod2_runtime.Executor.compile = opts }
    | Error e ->
      Printf.eprintf "bad --compile spec: %s\n" e;
      exit 2)

(* The compile options the config implies: the exec-side int8 modifier
   also requests weight quantization at compile, so `--exec fused,int8`
   keeps producing a quantized artifact without a separate --compile. *)
let compile_opts_of cfg =
  let opts = cfg.Sod2_runtime.Executor.compile in
  if cfg.Sod2_runtime.Executor.quant && not opts.Sod2.Compile_opts.quant then
    { opts with Sod2.Compile_opts.quant = true }
  else opts

let exec_arg =
  Arg.(value & opt (some string) None
       & info [ "exec" ] ~docv:"SPEC"
           ~doc:"Execution config: naive|blocked|parallel|fused, optionally \
                 followed by comma-separated modifiers arena (planned arena \
                 memory), malloc, guarded (graceful degradation under runtime \
                 guards), all-paths (execute every control-flow branch) and \
                 int8 (weight-quantized kernels).  Unrecognized modifiers are \
                 parsed as --compile tokens, so one spec can carry both \
                 halves.  Example: --exec fused,arena,variants=8.")

let compile_arg =
  Arg.(value & opt (some string) None
       & info [ "compile" ] ~docv:"SPEC"
           ~doc:"Compile options: comma-separated f32|f64 (float precision), \
                 int8 (quantize eligible weights), nofuse (static-only \
                 fusion), sym=N (representative planning value for shape \
                 variables), variants=N (ahead-of-time per-branch plan \
                 variants, 0 disables) and aot=VEC (pre-compile one outcome \
                 vector, e.g. aot=010; repeatable).  Example: --compile \
                 f32,variants=8.")

(* --- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-26s %-10s %-14s %6s %6s %8s\n" "model" "dynamism" "input" "nodes"
      "gates" "shape-vars";
    List.iter
      (fun (sp : Zoo.spec) ->
        let g = sp.build () in
        Printf.printf "%-26s %-10s %-14s %6d %6d %8s\n" sp.name
          (match sp.dynamism with
          | Zoo.Shape_dyn -> "shape"
          | Zoo.Control_dyn -> "control"
          | Zoo.Both_dyn -> "both")
          sp.input_desc (Graph.node_count g) (Zoo.gate_count g)
          (String.concat "," (List.map fst sp.dim_choices)))
      Zoo.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the model zoo.") Term.(const run $ const ())

(* --- analyze ------------------------------------------------------- *)

let analyze_cmd =
  let run model verbose =
    let sp = spec_of_name model in
    let g = sp.build () in
    let r = Sod2.Rdp.analyze g in
    let stats = Sod2.Rdp.stats g r in
    Printf.printf "model: %s (%d nodes, %d tensors)\n" sp.name (Graph.node_count g)
      (Graph.tensor_count g);
    Printf.printf "RDP converged in %d sweeps\n" r.Sod2.Rdp.iterations;
    Printf.printf "activation tensors: %d\n" stats.Sod2.Rdp.n_tensors;
    Printf.printf "  known constant shapes:    %d\n" stats.Sod2.Rdp.known_const;
    Printf.printf "  symbolic/op-inferred:     %d\n" stats.Sod2.Rdp.symbolic;
    Printf.printf "  rank only:                %d\n" stats.Sod2.Rdp.rank_only;
    Printf.printf "  unknown (undef/nac):      %d\n" stats.Sod2.Rdp.unknown;
    Printf.printf "  resolution rate:          %.1f%%\n"
      (100.0 *. Sod2.Rdp.resolution_rate g r);
    let counts = Hashtbl.create 4 in
    Array.iter
      (fun c ->
        let k = Op_class.category_name c in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      r.Sod2.Rdp.categories;
    Printf.printf "node dynamism (after constant propagation):\n";
    Hashtbl.iter (fun k v -> Printf.printf "  %-48s %d\n" k v) counts;
    if verbose then
      Array.iter
        (fun (nd : Graph.node) ->
          List.iter
            (fun tid -> Format.printf "  %a@." (Sod2.Rdp.pp_tensor g r) tid)
            nd.outputs)
        (Graph.nodes g)
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every tensor's S/V maps.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the RDP analysis and print its precision.")
    Term.(const run $ model_arg $ verbose)

(* --- compile ------------------------------------------------------- *)

let compile_cmd =
  let run model device compile =
    let sp = spec_of_name model in
    let profile = profile_of_name device in
    let g = sp.build () in
    let opts =
      match compile with
      | None -> Sod2.Compile_opts.default
      | Some s -> (
        match Sod2.Compile_opts.of_string s with
        | Ok o -> o
        | Error e ->
          Printf.eprintf "bad --compile spec: %s\n" e;
          exit 2)
    in
    let c = Sod2.Pipeline.compile ~opts profile g in
    Format.printf "%a@." (fun ppf () -> Sod2.Fusion.pp g ppf c.Sod2.Pipeline.fusion_plan) ();
    Format.printf "%a@." Sod2.Exec_plan.pp c.Sod2.Pipeline.exec;
    let env = Zoo.percentile_env sp 0.5 in
    let mp = Sod2.Pipeline.mem_plan_for c env in
    Format.printf "%a@." Sod2.Mem_plan.pp mp;
    (match Sod2.Mem_plan.validate mp with
    | Ok () -> print_endline "memory plan: valid (no overlap)"
    | Error e -> Printf.printf "memory plan INVALID: %s\n" e);
    let gates = Control_region.gate_count c.Sod2.Pipeline.control in
    if opts.Sod2.Compile_opts.variant_budget > 0 then
      Printf.printf "plan variants: %d precompiled over %d gates (budget %d)\n"
        (Hashtbl.length c.Sod2.Pipeline.variants)
        gates opts.Sod2.Compile_opts.variant_budget
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a model and print the fusion/execution/memory plans.")
    Term.(const run $ model_arg $ device_arg $ compile_arg)

(* --- tuning-cache plumbing ----------------------------------------- *)

let tune_cache_arg =
  Arg.(value & opt (some string) None
       & info [ "tune-cache" ] ~docv:"FILE"
           ~doc:"Warm-start the kernel version table from a tuning cache \
                 written by `sod2 tune` (missing or corrupt files degrade to \
                 the analytical table).")

(* Resolve an artifact's version table against a tuning cache file, for
   the one-shot entry points (`run`); the engine does the same resolution
   itself through [Engine.create ?tune_cache]. *)
let warm_started_compiled ?tune_cache ~backend_kind c =
  match tune_cache with
  | None -> c
  | Some path ->
    let cache, skipped = Sod2.Tune_cache.load_verbose path in
    if skipped > 0 then
      Printf.eprintf "note: %s: skipped %d corrupt tune-cache line%s\n" path skipped
        (if skipped = 1 then "" else "s");
    let table, warm =
      Sod2.Tune_cache.table_for cache
        ~backend:(Sod2_runtime.Backend.kind_name backend_kind)
        ~dtype:(Tensor.dtype_name c.Sod2.Pipeline.fdtype)
        ~fallback:c.Sod2.Pipeline.versions
    in
    if warm > 0 then begin
      Printf.printf "tune cache: warm-started %d/4 shape classes from %s\n" warm path;
      Sod2.Pipeline.with_versions c table
    end
    else begin
      Printf.printf "tune cache: no entries for this backend/dtype in %s\n" path;
      c
    end

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let run model device dims real exec compile tune_cache =
    let sp = spec_of_name model in
    let profile = profile_of_name device in
    let g = sp.build () in
    let env = env_of_dims sp dims in
    let cfg = exec_config ~exec ~compile () in
    let opts = compile_opts_of cfg in
    let backend_kind = cfg.Sod2_runtime.Executor.backend in
    let arena_mode = cfg.Sod2_runtime.Executor.memory = Sod2_runtime.Executor.Mem_arena in
    if real || arena_mode || cfg.Sod2_runtime.Executor.guarded then begin
      let c = Sod2.Pipeline.compile ~opts profile g in
      let c = warm_started_compiled ?tune_cache ~backend_kind c in
      let inputs = Zoo.make_inputs sp g env (Rng.create 42) in
      let be = Sod2_runtime.Backend.for_compiled backend_kind c in
      (* Gate observations from the first run, for the variant demo below. *)
      let observed = ref [] in
      Fun.protect
        ~finally:(fun () -> Sod2_runtime.Backend.shutdown be)
        (fun () ->
          let outs =
            if cfg.Sod2_runtime.Executor.guarded then begin
              let r = Sod2_runtime.Guarded_exec.run ~config:cfg ~backend:be c ~env ~inputs in
              Printf.printf
                "guarded: %d planned groups, %d demoted nodes, %d incidents (%s backend%s)\n"
                r.Sod2_runtime.Guarded_exec.planned_groups
                r.Sod2_runtime.Guarded_exec.demoted_nodes
                (List.length r.Sod2_runtime.Guarded_exec.incidents)
                (Sod2_runtime.Backend.kind_name backend_kind)
                (if arena_mode then ", arena" else "");
              observed := r.Sod2_runtime.Guarded_exec.gate_outcomes;
              r.Sod2_runtime.Guarded_exec.outputs
            end
            else if arena_mode then begin
              let trace, outs =
                Sod2_runtime.Executor.run_real ~config:cfg ~env ~check_env:env
                  ~backend:be c ~inputs
              in
              Printf.printf "arena: %d bytes, %d resident tensors (%s backend)\n"
                trace.Sod2_runtime.Executor.arena_bytes
                trace.Sod2_runtime.Executor.arena_resident
                (Sod2_runtime.Backend.kind_name backend_kind);
              observed := trace.Sod2_runtime.Executor.gate_outcomes;
              outs
            end
            else begin
              let trace, outs =
                Sod2_runtime.Executor.run_real ~config:cfg ~backend:be c ~inputs
              in
              Printf.printf "executed %d nodes (%d fused groups, %s backend, %d domains)\n"
                trace.Sod2_runtime.Executor.nodes_executed
                (List.length trace.Sod2_runtime.Executor.steps)
                (Sod2_runtime.Backend.kind_name backend_kind)
                (Sod2_runtime.Backend.pool_size be);
              observed := trace.Sod2_runtime.Executor.gate_outcomes;
              outs
            end
          in
          (* One-shot variant demonstration: replay the request through the
             plan variant matching the outcomes the first run observed —
             the same specialization a resident engine would predict. *)
          (if opts.Sod2.Compile_opts.variant_budget > 0
              && not cfg.Sod2_runtime.Executor.guarded
           then
             let gates = c.Sod2.Pipeline.control.Control_region.gates in
             if Array.length gates > 0 then begin
               let outcome =
                 Array.map
                   (fun gt ->
                     Option.value ~default:(-1)
                       (List.assoc_opt gt.Control_region.g_pred !observed))
                   gates
               in
               match Sod2.Pipeline.variant c ~outcome with
               | None -> print_endline "variants: outcome outside budget, any-path plan serves it"
               | Some v ->
                 let _, vouts =
                   Sod2_runtime.Executor.run_real ~config:cfg ~backend:be
                     ?env:(if arena_mode then Some env else None)
                     ~outcomes:outcome c ~inputs
                 in
                 let same =
                   List.for_all2
                     (fun (i1, t1) (i2, t2) -> i1 = i2 && Tensor.equal t1 t2)
                     outs vouts
                 in
                 Printf.printf
                   "variant %s: %d/%d nodes after pruning, outputs %s\n"
                   v.Sod2.Pipeline.v_key
                   (List.length v.Sod2.Pipeline.v_order)
                   (List.length c.Sod2.Pipeline.exec.Sod2.Exec_plan.order)
                   (if same then "bit-identical" else "DIVERGED")
             end);
          if backend_kind = Sod2_runtime.Backend.Fused then begin
            let fs = Sod2_runtime.Backend.fused_stats be in
            Printf.printf
              "fused kernels: %d hits, %d misses, %d rejects, %d live variants\n"
              fs.Sod2_runtime.Backend.hits fs.Sod2_runtime.Backend.misses
              fs.Sod2_runtime.Backend.rejects fs.Sod2_runtime.Backend.variants
          end;
          List.iter
            (fun (tid, t) -> Format.printf "output t%d = %a@." tid Tensor.pp t)
            outs)
    end
    else begin
      let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
      let session = Framework.create Framework.Sod2_fw profile g ~max_dims in
      let sm = Workload.sample_at sp ~percentile:0.5 ~idx:0 in
      let input_dims =
        List.map (fun (tid, _) -> tid, Option.get (Shape.eval env (Option.get (Graph.input_shape g tid))))
          (List.map (fun tid -> tid, ()) (Graph.inputs g))
      in
      let st = Framework.run session ~input_dims ~gate:sm.Workload.gate in
      Printf.printf "simulated latency: %.2f ms\n" (st.Framework.latency_us /. 1000.0);
      Printf.printf "peak intermediate memory: %.2f MB\n"
        (float_of_int st.Framework.peak_bytes /. 1048576.0)
    end
  in
  let real =
    Arg.(value & flag & info [ "real" ] ~doc:"Interpret tensors for real instead of simulating.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one inference (simulated by default; --real interprets, --exec \
             KIND,arena additionally executes the memory plan in place, \
             --compile variants=N replays through the matching plan variant).")
    Term.(const run $ model_arg $ device_arg $ dims_arg $ real $ exec_arg
          $ compile_arg $ tune_cache_arg)

(* --- tune ----------------------------------------------------------- *)

let tune_cmd =
  let run model device exec objective out rounds generations population seed =
    let sp = spec_of_name model in
    let profile = profile_of_name device in
    let g = sp.build () in
    let objective =
      match Sod2.Autotune.objective_of_string objective with
      | Some o -> o
      | None ->
        Printf.eprintf "unknown --objective %S (expected analytical|measured|hybrid)\n"
          objective;
        exit 2
    in
    let cfg = exec_config ~exec ~compile:None () in
    (* The naive backend has no tunable kernel; tune what the blocked
       kernels will run as. *)
    let backend_kind =
      match cfg.Sod2_runtime.Executor.backend with
      | Sod2_runtime.Backend.Naive -> Sod2_runtime.Backend.Blocked
      | k -> k
    in
    let c = Sod2.Pipeline.compile profile g in
    let dt = c.Sod2.Pipeline.fdtype in
    let be =
      Sod2_runtime.Backend.create ~versions:c.Sod2.Pipeline.versions
        ~profile:profile.Profile.name backend_kind
    in
    Fun.protect
      ~finally:(fun () -> Sod2_runtime.Backend.shutdown be)
      (fun () ->
        let par = Sod2_runtime.Backend.par_of be in
        (* Merge into an existing cache so tuning one backend/dtype does
           not clobber another's entries. *)
        let cache = Sod2.Tune_cache.load out in
        Printf.printf
          "tuning %s for %s (%s backend, %s, objective %s; %d measurement rounds)\n"
          sp.Zoo.name profile.Profile.name
          (Sod2_runtime.Backend.kind_name backend_kind)
          (Tensor.dtype_name dt)
          (Sod2.Autotune.objective_name objective)
          rounds;
        Printf.printf "%-8s %-14s %12s %12s %12s  %s\n" "class" "rep (m,n,k)"
          "default ms" "analytic ms" "tuned ms" "winner";
        List.iteri
          (fun idx (cls, (m, n, k)) ->
            let measure =
              Sod2.Tune_measure.gemm_measurer ~dt ~par ~rounds
                ~profile:profile.Profile.name ~m ~n ~k ()
            in
            let default_us = measure Sod2.Autotune.default_config in
            let analytic_us =
              measure (Sod2.Multi_version.config_for c.Sod2.Pipeline.versions cls)
            in
            let winner, tuned_us =
              Sod2.Tune_measure.tune_class ~objective ~seed:(seed + idx) ~rounds
                ~generations ~population ~par profile ~dt cls
            in
            Printf.printf "%-8s %-14s %12.3f %12.3f %12.3f  %s\n"
              (Sod2.Multi_version.class_name cls)
              (Printf.sprintf "%d,%d,%d" m n k)
              (default_us /. 1000.0) (analytic_us /. 1000.0) (tuned_us /. 1000.0)
              (Sod2.Autotune.config_to_string winner);
            Sod2.Tune_cache.set cache ~op:"gemm" ~cls
              ~backend:(Sod2_runtime.Backend.kind_name backend_kind)
              ~dtype:(Tensor.dtype_name dt) ~config:winner ~score_us:tuned_us
              ~objective:(Sod2.Autotune.objective_name objective))
          Sod2.Multi_version.representatives;
        Sod2.Tune_cache.save cache out;
        Printf.printf "wrote %s (%d entries, %d kernel measurements)\n" out
          (Sod2.Tune_cache.size cache)
          (Sod2.Tune_measure.measurement_count ()))
  in
  let objective =
    Arg.(value & opt string "hybrid"
         & info [ "objective" ] ~docv:"OBJ"
             ~doc:"Candidate scoring: analytical (cost model only), measured \
                   (every GA candidate timed) or hybrid (analytical pruning, \
                   measured finals — the default).")
  in
  let out =
    Arg.(value & opt string "sod2.tune"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Tuning cache file to write (merged).")
  in
  let rounds =
    Arg.(value & opt int 3
         & info [ "rounds" ] ~docv:"N" ~doc:"Timing rounds per candidate (min is taken).")
  in
  let generations =
    Arg.(value & opt int 12 & info [ "generations" ] ~docv:"N" ~doc:"GA generations.")
  in
  let population =
    Arg.(value & opt int 16 & info [ "population" ] ~docv:"N" ~doc:"GA population.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Search RNG seed.") in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Tune the heavy-kernel configurations against measured timings \
             and persist the winners to a tuning cache file, per shape class \
             — `sod2 run/serve --tune-cache FILE` then warm-starts from it \
             with zero serving-time measurements.")
    Term.(const run $ model_arg $ device_arg $ exec_arg $ objective $ out $ rounds
          $ generations $ population $ seed)

(* --- serve ---------------------------------------------------------- *)

let serve_cmd =
  let run model device requests workers max_batch exec compile arrival_rate seed
      queue_cap deadline_ms overload tune_cache =
    let open Sod2_runtime in
    let sp = spec_of_name model in
    let profile = profile_of_name device in
    let g = sp.build () in
    (* Serving exists to exercise the planned arena path; malloc is still
       reachable with an explicit --exec KIND,malloc. *)
    let default = { Executor.default_config with Executor.memory = Executor.Mem_arena } in
    let cfg = exec_config ~default ~exec ~compile () in
    let overload_policy =
      match overload with
      | "reject" -> Engine.Reject
      | "shed" -> Engine.Shed_oldest
      | "block" -> Engine.Block None
      | s ->
        Printf.eprintf "unknown --overload policy %S (expected reject, shed or block)\n" s;
        exit 2
    in
    let c = Sod2.Pipeline.compile ~opts:(compile_opts_of cfg) profile g in
    (* Mixed shape bindings: the workload percentiles, deduplicated by plan
       key, so the request stream genuinely alternates bindings. *)
    let envs =
      List.fold_left
        (fun acc p ->
          let env = Zoo.percentile_env sp p in
          let key = Sod2.Pipeline.plan_key c env in
          if List.mem_assoc key acc then acc else (key, env) :: acc)
        []
        [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
      |> List.rev_map snd
    in
    let nenvs = List.length envs in
    let rng = Rng.create seed in
    let samples =
      List.init requests (fun i ->
          let env = List.nth envs (i mod nenvs) in
          env, Zoo.make_inputs sp g env rng)
    in
    let engine =
      Engine.create ~workers ~max_batch ~config:cfg
        ?queue_cap:(Option.map (fun n -> max 1 n) queue_cap)
        ~overload:overload_policy
        ?tune_cache:(Option.map Sod2.Tune_cache.load tune_cache) c
    in
    let deadline_us = Option.map (fun ms -> ms *. 1000.0) deadline_ms in
    (* Open loop: requests arrive as a Poisson process at --arrival-rate
       req/s (0 = back-to-back), independent of completion — the stream
       does not slow down when the engine backs up, which is what makes
       overload reachable in the first place. *)
    let arrival_rng = Rng.create (seed + 1) in
    let next_arrival_gap () =
      if arrival_rate <= 0.0 then 0.0
      else -.log (max 1e-12 (Rng.uniform arrival_rng)) /. arrival_rate
    in
    let t0 = Unix.gettimeofday () in
    let tickets =
      List.map
        (fun (env, inputs) ->
          let gap = next_arrival_gap () in
          if gap > 0.0 then Unix.sleepf gap;
          match Engine.submit engine ?deadline_us ~env ~inputs with
          | t -> Some t
          | exception Sod2_error.Error e when e.Sod2_error.cls = Sod2_error.Overload -> None)
        samples
    in
    let completed = ref 0 in
    List.iter
      (function
        | None -> ()
        | Some t -> (
          match Engine.await engine t with
          | _ -> incr completed
          | exception Sod2_error.Error _ -> ()))
      tickets;
    let elapsed = Unix.gettimeofday () -. t0 in
    Engine.shutdown engine;
    let st = Engine.stats engine in
    Printf.printf "served %d/%d requests over %d distinct bindings on %d workers (--exec %s)\n"
      !completed requests nenvs st.Engine.workers (Executor.config_to_string cfg);
    Printf.printf "  wall time:     %8.1f ms  (%.1f req/s offered%s)\n" (elapsed *. 1000.0)
      (float_of_int requests /. elapsed)
      (if arrival_rate > 0.0 then Printf.sprintf ", Poisson target %.1f req/s" arrival_rate
       else ", back-to-back");
    Printf.printf "  latency:       mean %.2f ms, p50 %.2f, p95 %.2f, p99 %.2f, max %.2f ms\n"
      (st.Engine.total_latency_us /. float_of_int (max 1 st.Engine.completed) /. 1000.0)
      (st.Engine.p50_latency_us /. 1000.0) (st.Engine.p95_latency_us /. 1000.0)
      (st.Engine.p99_latency_us /. 1000.0) (st.Engine.max_latency_us /. 1000.0);
    Printf.printf "  overload:      %d rejected, %d shed, %d expired (policy %s%s%s)\n"
      st.Engine.rejected st.Engine.shed st.Engine.expired overload
      (match queue_cap with Some n -> Printf.sprintf ", queue cap %d" n | None -> "")
      (match deadline_ms with
       | Some ms -> Printf.sprintf ", deadline %.1f ms" ms
       | None -> "");
    Printf.printf "  resilience:    %d worker restarts, %d breaker trips, degraded=%b\n"
      st.Engine.worker_restarts st.Engine.breaker_open st.Engine.degraded;
    if tune_cache <> None || st.Engine.warm_classes > 0 then
      Printf.printf
        "  tuning:        %d classes warm-started, %d serving-time measurements\n"
        st.Engine.warm_classes
        (Sod2.Tune_measure.measurement_count ());
    Printf.printf "  micro-batched: %d requests (max batch %d), queue peak %d\n"
      st.Engine.batched max_batch st.Engine.queue_peak;
    Array.iteri
      (fun w n ->
        Printf.printf "  worker %d:      %d runs, %.1f ms busy\n" w n
          (st.Engine.busy_us.(w) /. 1000.0))
      st.Engine.worker_runs;
    let count kind = Profile.Counters.count ~profile:profile.Profile.name ~kind in
    (* Cardinality is aggregated per base binding: outcome-variant plans
       ("<binding>|v=...") report separately instead of inflating the
       per-model key count. *)
    Printf.printf
      "  plan cache:    %d bindings (+%d variant plans), %d hits, %d misses\n"
      st.Engine.plan_keys st.Engine.plan_variants (count "plan-cache-hit")
      (count "plan-cache-miss");
    if st.Engine.plan_variants > 0 then
      Printf.printf "  variants:      %d direct runs, %d variant runs, %d mispredicts\n"
        (count "engine-variant-direct") (count "variant-run")
        (count "variant-mispredict");
    if st.Engine.failed > 0 then begin
      Printf.printf "  FAILED:        %d requests\n" st.Engine.failed;
      exit 1
    end
  in
  let requests =
    Arg.(value & opt int 32
         & info [ "requests"; "n" ] ~docv:"N" ~doc:"Inference requests to submit.")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers"; "k" ] ~docv:"K"
             ~doc:"Worker slots (each owns a private arena and backend).")
  in
  let max_batch =
    Arg.(value & opt int 4
         & info [ "max-batch" ] ~docv:"B"
             ~doc:"Micro-batch bound: a worker claims up to B queued requests \
                   sharing one shape binding; 1 disables batching.")
  in
  let arrival_rate =
    Arg.(value & opt float 0.0
         & info [ "arrival-rate" ] ~docv:"R"
             ~doc:"Open-loop Poisson arrival rate in requests/second; 0 (the \
                   default) submits back-to-back.  Arrivals do not wait for \
                   completions, so a rate above the service capacity drives \
                   the engine into its overload policy.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"RNG seed for inputs and Poisson inter-arrival gaps.")
  in
  let queue_cap =
    Arg.(value & opt (some int) None
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bound the request queue at N and arm the --overload policy \
                   (default: unbounded).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline in milliseconds, relative to submit; \
                   requests still queued when it passes are expired without \
                   executing.")
  in
  let overload =
    Arg.(value & opt string "reject"
         & info [ "overload" ] ~docv:"POLICY"
             ~doc:"Full-queue policy: reject (refuse the new request), shed \
                   (evict the oldest queued request) or block (stall the \
                   submitter until there is room).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Drive a resident concurrent engine: submit N requests with mixed \
             shape bindings over K workers — optionally as an open-loop \
             Poisson stream against a bounded queue with deadlines — and \
             report throughput, latency percentiles, shed/reject/expiry \
             counts, micro-batching and plan-cache behavior.")
    Term.(const run $ model_arg $ device_arg $ requests $ workers $ max_batch $ exec_arg
          $ compile_arg $ arrival_rate $ seed $ queue_cap $ deadline_ms $ overload
          $ tune_cache_arg)

(* --- compare ------------------------------------------------------- *)

let compare_cmd =
  let run model device n =
    let sp = spec_of_name model in
    let profile = profile_of_name device in
    let g = sp.build () in
    let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
    let samples = Workload.samples ~n sp in
    Printf.printf "%-10s %12s %12s %12s\n" "framework" "lat min(ms)" "lat max(ms)" "mem max(MB)";
    List.iter
      (fun fw ->
        if Framework.supports fw ~model:sp.name profile.Profile.target then begin
          let session = Framework.create fw profile g ~max_dims in
          let stats =
            List.map
              (fun (sm : Workload.sample) ->
                Framework.run session ~input_dims:(Zoo.input_dims sp g sm.env)
                  ~gate:sm.gate)
              samples
          in
          let lats = List.map (fun (s : Framework.stats) -> s.latency_us /. 1000.0) stats in
          let mems =
            List.map (fun (s : Framework.stats) -> float_of_int s.peak_bytes /. 1048576.0) stats
          in
          let mn l = List.fold_left Float.min (List.hd l) l in
          let mx l = List.fold_left Float.max (List.hd l) l in
          Printf.printf "%-10s %12.1f %12.1f %12.1f\n" (Framework.kind_name fw) (mn lats)
            (mx lats) (mx mems)
        end)
      [ Framework.Ort; Framework.Mnn; Framework.Tvm_nimble; Framework.Tflite;
        Framework.Dnnfusion; Framework.Sod2_fw ]
  in
  let n = Arg.(value & opt int 20 & info [ "samples"; "n" ] ~doc:"Input samples.") in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare frameworks on one model.")
    Term.(const run $ model_arg $ device_arg $ n)

(* --- dot ----------------------------------------------------------- *)

let dot_cmd =
  let run model out =
    let sp = spec_of_name model in
    let g = sp.build () in
    let dot = Graph.to_dot g in
    match out with
    | None -> print_string dot
    | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout if omitted).")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export a model's graph to Graphviz.")
    Term.(const run $ model_arg $ out)

(* --- save / load ---------------------------------------------------- *)

let save_cmd =
  let run model out =
    let sp = spec_of_name model in
    let g = sp.build () in
    Graph_io.save g out;
    Printf.printf "wrote %s (%d nodes, %d tensors)\n" out (Graph.node_count g)
      (Graph.tensor_count g)
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a zoo model to the sod2-graph text format.")
    Term.(const run $ model_arg $ out)

let load_cmd =
  let run path =
    match Graph_io.load path with
    | Ok g ->
      let r = Sod2.Rdp.analyze g in
      Printf.printf "%s: %d nodes, %d tensors, RDP resolution %.1f%%\n" path
        (Graph.node_count g) (Graph.tensor_count g)
        (100.0 *. Sod2.Rdp.resolution_rate g r)
    | Error e ->
      Printf.eprintf "failed to load %s: %s\n" path e;
      exit 1
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Graph file.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a sod2-graph file and run the RDP analysis on it.")
    Term.(const run $ path)

(* --- validate ------------------------------------------------------- *)

let validate_cmd =
  let run target =
    let validate_graph label g =
      match Validate.check g with
      | Ok () ->
        Printf.printf "%s: OK (%d nodes, %d tensors)\n" label (Graph.node_count g)
          (Graph.tensor_count g);
        0
      | Error defects ->
        Printf.eprintf "%s: %d defect%s\n%s\n" label (List.length defects)
          (if List.length defects = 1 then "" else "s")
          (Validate.report defects);
        1
    in
    let status =
      if Sys.file_exists target then
        (* Graph_io.load already validates; re-validate explicitly so a
           future relaxed loader still gets the full report here. *)
        match Graph_io.load target with
        | Ok g -> validate_graph target g
        | Error e ->
          Printf.eprintf "%s: malformed graph file\n  %s\n" target e;
          1
      else
        match Zoo.by_name target with
        | Some sp -> validate_graph sp.Zoo.name (sp.Zoo.build ())
        | None ->
          Printf.eprintf
            "%s: no such file, and no such zoo model; try `sod2 list`\n" target;
          2
    in
    exit status
  in
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"GRAPH" ~doc:"A sod2-graph file, or a zoo model name.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate a graph: dangling tensors, arity, dtypes, cycles, \
             Switch/Combine pairing.  Exits non-zero on any defect.")
    Term.(const run $ target)

(* --- decode (LLM extension) ----------------------------------------- *)

let decode_cmd =
  let run device tokens =
    let profile = profile_of_name device in
    let g = Gpt_decoder.build () in
    let max_dims = Gpt_decoder.input_dims g ~past:1024 ~seq:16 in
    let sod2 = Framework.create Framework.Sod2_fw profile g ~max_dims in
    let mnn = Framework.create Framework.Mnn profile g ~max_dims in
    let gate = Workload.fixed_gates 0 in
    Printf.printf "autoregressive decode, %d tokens after a 16-token prefill (%s):\n"
      tokens profile.Profile.name;
    let totals = ref (0.0, 0.0) in
    for step = 0 to tokens do
      let past, seq = if step = 0 then 16, 16 else 16 + step, 1 in
      let input_dims = Gpt_decoder.input_dims g ~past ~seq in
      let m = Framework.run mnn ~input_dims ~gate in
      let d = Framework.run sod2 ~input_dims ~gate in
      let tm, td = !totals in
      totals :=
        ( tm +. ((m.Framework.reinit_us +. m.Framework.latency_us) /. 1000.0),
          td +. (d.Framework.latency_us /. 1000.0) )
    done;
    let tm, td = !totals in
    Printf.printf "  re-initializing engine: %8.0f ms (recompiles every step)\n" tm;
    Printf.printf "  SoD2:                   %8.1f ms (one symbolic compilation)\n" td;
    Printf.printf "  -> %.0fx\n" (tm /. td)
  in
  let tokens =
    Arg.(value & opt int 32 & info [ "tokens"; "t" ] ~doc:"Tokens to decode.")
  in
  Cmd.v
    (Cmd.info "decode"
       ~doc:"Run the \xC2\xA77 LLM-decoding extension: per-token cost with a growing KV cache.")
    Term.(const run $ device_arg $ tokens)

(* --- experiments --------------------------------------------------- *)

let experiments_cmd =
  let run n =
    List.iter Sod2_experiments.Table.print (Sod2_experiments.Experiments.all ~n ())
  in
  let n = Arg.(value & opt int 50 & info [ "samples"; "n" ] ~doc:"Input samples per model.") in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce every table and figure of the paper.")
    Term.(const run $ n)

let () =
  let doc = "SoD2: statically optimizing dynamic DNN execution (OCaml reproduction)" in
  let info = Cmd.info "sod2" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; analyze_cmd; compile_cmd; run_cmd; tune_cmd; serve_cmd; compare_cmd;
            dot_cmd; save_cmd; load_cmd; validate_cmd; decode_cmd; experiments_cmd ]))
