(* Fused-group kernel execution: fusion groups compiled to single kernels
   must be equivalent to op-by-op naive execution — bit-for-bit for
   pointwise/view chains (the fused closures share {!Op_semantics} with the
   reference kernels and pair elements identically) and within float
   tolerance when a blocked GEMM/Conv anchor absorbs its epilogue.  Also
   covers the per-(group × shape) kernel cache counters and the dtype-aware
   byte accounting of the execution trace. *)

module RT = Sod2_runtime

let cpu = Profile.sd888_cpu

let with_fused c f =
  let be = RT.Backend.for_compiled RT.Backend.Fused c in
  Fun.protect ~finally:(fun () -> RT.Backend.shutdown be) (fun () -> f be)

let outputs_of ?backend c inputs = snd (RT.Executor.run_real ?backend c ~inputs)

let check_bitexact name want got =
  List.iter2
    (fun (tid, w) (tid', g) ->
      Alcotest.(check int) (name ^ ": output id") tid tid';
      Alcotest.(check (list int)) (name ^ ": dims") (Tensor.dims w) (Tensor.dims g);
      let dw = Tensor.data_f w and dg = Tensor.data_f g in
      Array.iteri
        (fun i v ->
          if not (Float.equal v dg.(i)) then
            Alcotest.failf "%s: t%d element %d: %h <> %h" name tid i v dg.(i))
        dw)
    want got

let check_close name want got =
  List.iter2
    (fun (tid, w) (tid', g) ->
      Alcotest.(check int) (name ^ ": output id") tid tid';
      if not (Tensor.approx_equal ~eps:1e-5 w g) then
        Alcotest.failf "%s: t%d differs from reference" name tid)
    want got

(* ------------------------------------------------------------------ *)
(* Pointwise chains: bit-for-bit                                       *)
(* ------------------------------------------------------------------ *)

(* x → sigmoid → ×x → gelu → clip, all provably same-shaped under RDP, so
   the whole chain lands in one fusion group with a symbolic leading dim. *)
let pointwise_graph () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "N"; Dim.of_int 32 ])
  in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ x ] in
  let m = Graph.Builder.node1 b (Op.Binary Op.Mul) [ s; x ] in
  let ge = Graph.Builder.node1 b (Op.Unary Op.Gelu) [ m ] in
  let cl = Graph.Builder.node1 b (Op.Clip (0.05, 0.95)) [ ge ] in
  Graph.Builder.set_outputs b [ cl ];
  x, Graph.Builder.finish b

let test_pointwise_chain_bitexact () =
  let x, g = pointwise_graph () in
  let c = Sod2.Pipeline.compile cpu g in
  with_fused c (fun be ->
      List.iter
        (fun (seed, n) ->
          let inputs = [ x, Tensor.rand_uniform (Rng.create seed) [ n; 32 ] ] in
          let want = outputs_of c inputs in
          let got = outputs_of ~backend:be c inputs in
          check_bitexact (Printf.sprintf "chain n=%d" n) want got)
        [ 0, 1; 1, 7; 2, 33; 3, 64 ];
      let fs = RT.Backend.fused_stats be in
      Alcotest.(check bool) "chain actually compiled fused kernels" true
        (fs.RT.Backend.misses >= 1);
      Alcotest.(check int) "no fused rejections" 0 fs.RT.Backend.rejects)

(* Same artifact and backend driven over many random extents: exercises
   variant selection, cache reuse, and the live-variant budget (past the
   cap the group must transparently fall back to op-by-op kernels). *)
let prop_pointwise_random =
  QCheck2.Test.make ~name:"fused pointwise chain matches naive on random extents"
    ~count:20
    QCheck2.Gen.(int_range 1 48)
    (fun n ->
      let x, g = pointwise_graph () in
      let c = Sod2.Pipeline.compile cpu g in
      with_fused c (fun be ->
          let inputs = [ x, Tensor.rand_uniform (Rng.create (7 * n)) [ n; 32 ] ] in
          let want = outputs_of c inputs in
          let got = outputs_of ~backend:be c inputs in
          check_bitexact (Printf.sprintf "random chain n=%d" n) want got;
          true))

(* ------------------------------------------------------------------ *)
(* Broadcast groups and the per-shape cache                            *)
(* ------------------------------------------------------------------ *)

let broadcast_graph () =
  let b = Graph.Builder.create () in
  let a =
    Graph.Builder.input b ~name:"a" (Shape.of_dims [ Dim.of_sym "N"; Dim.of_int 16 ])
  in
  let row = Graph.Builder.input b ~name:"row" (Shape.of_ints [ 16 ]) in
  let s = Graph.Builder.node1 b (Op.Binary Op.Add) [ a; row ] in
  let m = Graph.Builder.node1 b (Op.Binary Op.Mul) [ s; a ] in
  let r = Graph.Builder.node1 b (Op.Unary Op.Relu) [ m ] in
  Graph.Builder.set_outputs b [ r ];
  (a, row), Graph.Builder.finish b

let test_broadcast_cache_and_equivalence () =
  let (a, row), g = broadcast_graph () in
  let c = Sod2.Pipeline.compile cpu g in
  Profile.Counters.reset ();
  with_fused c (fun be ->
      let run seed n =
        let rng = Rng.create seed in
        let inputs =
          [ a, Tensor.rand_uniform rng [ n; 16 ]; row, Tensor.rand_uniform rng [ 16 ] ]
        in
        let want = outputs_of c inputs in
        let got = outputs_of ~backend:be c inputs in
        check_bitexact (Printf.sprintf "broadcast n=%d" n) want got
      in
      run 10 4;
      run 11 9;
      (* same extents again: must be served from the kernel cache *)
      run 12 4;
      let fs = RT.Backend.fused_stats be in
      Alcotest.(check int) "one specialization per distinct shape" 2
        fs.RT.Backend.misses;
      Alcotest.(check int) "repeat extents hit the cache" 1 fs.RT.Backend.hits;
      Alcotest.(check int) "no fused rejections" 0 fs.RT.Backend.rejects;
      Alcotest.(check int) "two live variants" 2 fs.RT.Backend.variants;
      (* the same events are visible process-globally *)
      Alcotest.(check bool) "counters recorded per profile" true
        (Profile.Counters.count ~profile:cpu.Profile.name ~kind:"fused-cache-hit" >= 1
        && Profile.Counters.count ~profile:cpu.Profile.name ~kind:"fused-cache-miss"
           >= 2))

(* ------------------------------------------------------------------ *)
(* Anchored groups: GEMM/Conv epilogue fusion                          *)
(* ------------------------------------------------------------------ *)

let test_matmul_epilogue_close () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 31 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 17; 33 ]) in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_uniform rng [ 33; 9 ]) in
  let bias = Graph.Builder.const b ~name:"bias" (Tensor.rand_uniform rng [ 9 ]) in
  let mm = Graph.Builder.node1 b Op.MatMul [ x; w ] in
  let ad = Graph.Builder.node1 b (Op.Binary Op.Add) [ mm; bias ] in
  let out = Graph.Builder.node1 b (Op.Unary Op.Gelu) [ ad ] in
  Graph.Builder.set_outputs b [ out ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  with_fused c (fun be ->
      List.iter
        (fun seed ->
          let inputs = [ x, Tensor.rand_uniform (Rng.create seed) [ 17; 33 ] ] in
          let want = outputs_of c inputs in
          let got = outputs_of ~backend:be c inputs in
          check_close (Printf.sprintf "matmul+bias+gelu seed=%d" seed) want got)
        [ 40; 41; 42 ];
      let fs = RT.Backend.fused_stats be in
      Alcotest.(check bool) "anchored kernel compiled" true (fs.RT.Backend.misses >= 1);
      Alcotest.(check int) "no fused rejections" 0 fs.RT.Backend.rejects)

let test_gemm_epilogue_close () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 5 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 17; 33 ]) in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_uniform rng [ 9; 33 ]) in
  let c0 = Graph.Builder.const b ~name:"c0" (Tensor.rand_uniform rng [ 9 ]) in
  let gm =
    Graph.Builder.node1 b
      (Op.Gemm { alpha = 0.5; beta = 1.5; trans_a = false; trans_b = true })
      [ x; w; c0 ]
  in
  let out = Graph.Builder.node1 b (Op.Unary Op.Relu) [ gm ] in
  Graph.Builder.set_outputs b [ out ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  with_fused c (fun be ->
      List.iter
        (fun seed ->
          let inputs = [ x, Tensor.rand_uniform (Rng.create seed) [ 17; 33 ] ] in
          let want = outputs_of c inputs in
          let got = outputs_of ~backend:be c inputs in
          check_close (Printf.sprintf "gemm+relu seed=%d" seed) want got)
        [ 50; 51; 52 ])

let test_conv_bn_relu_close () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 77 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 2; 3; 12; 12 ]) in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_uniform rng [ 8; 3; 3; 3 ]) in
  let bias = Graph.Builder.const b ~name:"bias" (Tensor.rand_uniform rng [ 8 ]) in
  let scale = Graph.Builder.const b ~name:"scale" (Tensor.rand_uniform rng [ 8 ]) in
  let bn_b = Graph.Builder.const b ~name:"bn_b" (Tensor.rand_uniform rng [ 8 ]) in
  let mean = Graph.Builder.const b ~name:"mean" (Tensor.rand_uniform rng [ 8 ]) in
  let var =
    Graph.Builder.const b ~name:"var"
      (Tensor.map_f (fun v -> v +. 0.5) (Tensor.rand_uniform rng [ 8 ]))
  in
  let conv =
    Graph.Builder.node1 b
      (Op.Conv { stride = 1, 1; pads = 1, 1, 1, 1; dilation = 1, 1; groups = 1 })
      [ x; w; bias ]
  in
  let bn =
    Graph.Builder.node1 b (Op.BatchNorm { eps = 1e-5 }) [ conv; scale; bn_b; mean; var ]
  in
  let out = Graph.Builder.node1 b (Op.Unary Op.Relu) [ bn ] in
  Graph.Builder.set_outputs b [ out ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  with_fused c (fun be ->
      List.iter
        (fun seed ->
          let inputs = [ x, Tensor.rand_uniform (Rng.create seed) [ 2; 3; 12; 12 ] ] in
          let want = outputs_of c inputs in
          let got = outputs_of ~backend:be c inputs in
          check_close (Printf.sprintf "conv+bn+relu seed=%d" seed) want got)
        [ 60; 61; 62 ];
      let fs = RT.Backend.fused_stats be in
      Alcotest.(check bool) "conv group compiled fused" true
        (fs.RT.Backend.misses >= 1))

(* ------------------------------------------------------------------ *)
(* End-to-end zoo model on the fused backend                           *)
(* ------------------------------------------------------------------ *)

let test_zoo_model_fused_matches_naive () =
  let sp = Option.get (Zoo.by_name "yolov6") in
  let g = Sod2_experiments.Harness.graph_of sp in
  let c = Sod2.Pipeline.compile cpu g in
  let env = Env.of_list [ "H", 64; "W", 64 ] in
  let inputs = Zoo.make_inputs sp g env (Rng.create 13) in
  let want = outputs_of c inputs in
  with_fused c (fun be ->
      let got = outputs_of ~backend:be c inputs in
      check_close "yolov6" want got;
      let fs = RT.Backend.fused_stats be in
      Alcotest.(check bool) "model uses fused kernels" true
        (fs.RT.Backend.misses >= 1))

(* ------------------------------------------------------------------ *)
(* Guarded execution with the fused backend                            *)
(* ------------------------------------------------------------------ *)

let test_guarded_fused_clean () =
  let sp = Option.get (Zoo.by_name "skipnet") in
  let g = Sod2_experiments.Harness.graph_of sp in
  let c = Sod2.Pipeline.compile cpu g in
  let env = Env.of_list [ "H", 64; "W", 64 ] in
  let inputs = Zoo.make_inputs sp g env (Rng.create 3) in
  let expected = RT.Reference.run g ~inputs in
  with_fused c (fun be ->
      let r = RT.Guarded_exec.run ~backend:be c ~env ~inputs in
      Alcotest.(check int) "no incidents" 0 (List.length r.RT.Guarded_exec.incidents);
      List.iter2
        (fun (t1, v1) (t2, v2) ->
          Alcotest.(check int) "output id" t1 t2;
          if not (Tensor.approx_equal ~eps:1e-4 v1 v2) then
            Alcotest.failf "guarded fused output t%d diverges" t1)
        expected r.RT.Guarded_exec.outputs)

(* ------------------------------------------------------------------ *)
(* Dtype-aware trace byte accounting                                   *)
(* ------------------------------------------------------------------ *)

let test_trace_i64_bytes () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 4 ]) in
  let s = Graph.Builder.node1 b (Op.Binary Op.Add) [ x; x ] in
  let o = Graph.Builder.node1 b (Op.Cast Tensor.F32) [ s ] in
  Graph.Builder.set_outputs b [ s; o ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  let inputs = [ x, Tensor.of_int_list [ 1; -2; 3; 4 ] ] in
  let trace, _ = RT.Executor.run_real c ~inputs in
  let bytes_of tid =
    match
      List.find_opt (fun e -> e.RT.Executor.te_tid = tid) trace.RT.Executor.events
    with
    | Some e -> e.RT.Executor.te_bytes
    | None -> Alcotest.failf "no tensor event for t%d" tid
  in
  Alcotest.(check int) "I64 tensor counts 8 bytes/element" 32 (bytes_of s);
  Alcotest.(check int) "F32 tensor counts 4 bytes/element" 16 (bytes_of o)

let suite =
  [
    Alcotest.test_case "pointwise chain: fused = naive (bit-exact)" `Quick
      test_pointwise_chain_bitexact;
    Alcotest.test_case "broadcast group: cache and equivalence" `Quick
      test_broadcast_cache_and_equivalence;
    Alcotest.test_case "matmul epilogue: fused close to naive" `Quick
      test_matmul_epilogue_close;
    Alcotest.test_case "gemm epilogue: fused close to naive" `Quick
      test_gemm_epilogue_close;
    Alcotest.test_case "conv+bn+relu: fused close to naive" `Quick
      test_conv_bn_relu_close;
    Alcotest.test_case "zoo model: fused backend end-to-end" `Quick
      test_zoo_model_fused_matches_naive;
    Alcotest.test_case "guarded exec: fused backend clean run" `Quick
      test_guarded_fused_clean;
    Alcotest.test_case "trace: I64 tensors count 8 bytes" `Quick test_trace_i64_bytes;
    QCheck_alcotest.to_alcotest prop_pointwise_random;
  ]
