(* Tests for the graph IR, the dynamism classification, and the
   per-operator shape/value transfer functions. *)

let dyn_shape = Shape.of_dims [ Dim.of_int 1; Dim.of_sym "H"; Dim.of_sym "W" ]

let small_graph () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ x ] in
  let z = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ y ] in
  Graph.Builder.set_outputs b [ z ];
  Graph.Builder.finish b, x, y, z

let test_builder_basic () =
  let g, x, y, z = small_graph () in
  Alcotest.(check int) "nodes" 2 (Graph.node_count g);
  Alcotest.(check int) "tensors" 3 (Graph.tensor_count g);
  Alcotest.(check (list int)) "inputs" [ x ] (Graph.inputs g);
  Alcotest.(check (list int)) "outputs" [ z ] (Graph.outputs g);
  (match Graph.producer g y with
  | Some nd -> Alcotest.(check string) "producer" "Relu" (Op.name nd.op)
  | None -> Alcotest.fail "no producer");
  Alcotest.(check (list int)) "consumers of y" [ 1 ] (Graph.consumers g y);
  Alcotest.(check (option (pair int int))) "input shape is declared" (Some (1, 3))
    (Option.map (fun s -> 1, Option.get (Shape.rank s)) (Graph.input_shape g x))

let test_builder_validation () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  (* wrong arity *)
  ignore (Graph.Builder.node1 b (Op.Unary Op.Relu) [ x ]);
  Graph.Builder.set_outputs b [ x ];
  ignore (Graph.Builder.finish b);
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  ignore (Graph.Builder.node b (Op.Binary Op.Add) [ x ]);
  Graph.Builder.set_outputs b [ x ];
  (try
     ignore (Graph.Builder.finish b);
     Alcotest.fail "arity violation not caught"
   with Sod2_error.Error { cls = Sod2_error.Arity_mismatch; _ } -> ());
  (* missing outputs *)
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.input b ~name:"x" dyn_shape);
  (try
     ignore (Graph.Builder.finish b);
     Alcotest.fail "missing outputs not caught"
   with Sod2_error.Error { cls = Sod2_error.Invalid_graph; _ } -> ())

let test_traversals () =
  let g, _, _, _ = small_graph () in
  let topo = List.map (fun (n : Graph.node) -> Op.name n.op) (Graph.topo_order g) in
  Alcotest.(check (list string)) "topo" [ "Relu"; "Sigmoid" ] topo;
  let dfs = List.map (fun (n : Graph.node) -> Op.name n.op) (Graph.dfs_order g) in
  Alcotest.(check int) "dfs covers all" 2 (List.length dfs)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dot_and_histogram () =
  let g, _, _, _ = small_graph () in
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "dot mentions Relu" true (contains dot "Relu");
  Alcotest.(check bool) "dot has edges" true (contains dot "->");
  Alcotest.(check (list (pair string int))) "histogram"
    [ "Relu", 1; "Sigmoid", 1 ]
    (List.sort compare (Graph.op_histogram g))

let test_classification_table () =
  let check op cat =
    Alcotest.(check string) (Op.name op) (Op_class.category_name cat)
      (Op_class.category_name (Op_class.base_category op))
  in
  check Op.ShapeOf Op_class.Isdo;
  check (Op.ConstantOfShape { fill = 0.0 }) Op_class.Isdo;
  check Op.EyeLike Op_class.Isdo;
  check (Op.Binary Op.Add) Op_class.Isdos;
  check Op.MatMul Op_class.Isdos;
  check (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
    Op_class.Isdos;
  check (Op.Gather { axis = 0 }) Op_class.Isdos;
  check (Op.Softmax { axis = -1 }) Op_class.Isdos;
  check Op.Reshape Op_class.Isvdos;
  check Op.Range Op_class.Isvdos;
  check Op.Slice Op_class.Isvdos;
  check Op.Expand Op_class.Isvdos;
  check (Op.TopK { axis = -1; largest = true }) Op_class.Isvdos;
  check Op.NonZero Op_class.Edo;
  check Op.If Op_class.Edo;
  check Op.Loop Op_class.Edo;
  check (Op.Switch { branches = 2 }) Op_class.Edo;
  check (Op.Combine { branches = 2 }) Op_class.Edo

let test_context_classification () =
  (* a Reshape whose target value is known degrades ISVDOS -> ISDOS (§3) *)
  let c = Op_class.classify Op.Reshape ~value_known:(fun i -> i = 1) in
  Alcotest.(check bool) "reshape degrades" true (c = Op_class.Isdos);
  let c = Op_class.classify Op.Reshape ~value_known:(fun _ -> false) in
  Alcotest.(check bool) "reshape stays dynamic" true (c = Op_class.Isvdos);
  Alcotest.(check (list int)) "value inputs of Slice" [ 1; 2; 3; 4 ]
    (Op_class.value_inputs Op.Slice)

(* --- forward transfer functions ------------------------------------ *)

let io shapes values =
  { Shape_fn.in_shapes = Array.of_list shapes; in_values = Array.of_list values }

let undef_vals n = List.init n (fun _ -> Value_info.undef)

let fwd1 op shapes values =
  let s, _ = Shape_fn.forward op (io shapes values) in
  s.(0)

let check_shape msg expected actual =
  Alcotest.(check string) msg expected (Shape.to_string actual)

let sym_hw = Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ]

let test_forward_elementwise () =
  check_shape "same shape" "[1, 3, H, W]" (fwd1 (Op.Unary Op.Relu) [ sym_hw ] (undef_vals 1));
  let bias = Shape.of_ints [ 3; 1; 1 ] in
  check_shape "broadcast bias" "[1, 3, H, W]"
    (fwd1 (Op.Binary Op.Add) [ sym_hw; bias ] (undef_vals 2))

let test_forward_conv_pool () =
  let w = Shape.of_ints [ 8; 3; 3; 3 ] in
  let out =
    fwd1 (Op.Conv { stride = (2, 2); pads = (1, 1, 1, 1); dilation = (1, 1); groups = 1 })
      [ sym_hw; w ] (undef_vals 2)
  in
  check_shape "conv s2 p1 k3" "[1, 8, 1 + (-1 + H)/(2), 1 + (-1 + W)/(2)]" out;
  let out =
    fwd1 (Op.MaxPool { kernel = (2, 2); pool_stride = (2, 2); pool_pads = (0, 0, 0, 0) })
      [ sym_hw ] (undef_vals 1)
  in
  check_shape "pool" "[1, 3, (H)/(2), (W)/(2)]" out

let test_forward_matmul () =
  let a = Shape.of_dims [ Dim.of_int 1; Dim.of_sym "S"; Dim.of_int 64 ] in
  let b = Shape.of_ints [ 64; 128 ] in
  check_shape "batched matmul" "[1, S, 128]" (fwd1 Op.MatMul [ a; b ] (undef_vals 2))

let test_forward_shape_value_chain () =
  (* Shape produces the dims as its value *)
  let s, v = Shape_fn.forward Op.ShapeOf (io [ sym_hw ] (undef_vals 1)) in
  check_shape "shape out" "[4]" s.(0);
  (match Value_info.as_exprs v.(0) with
  | Some exprs ->
    Alcotest.(check int) "4 entries" 4 (Array.length exprs);
    Alcotest.(check string) "third is H" "H" (Expr.to_string exprs.(2))
  | None -> Alcotest.fail "shape value not tracked");
  (* Reshape with a known symbolic target *)
  let target_v = Value_info.of_exprs [ Expr.one; Expr.const (-1) ] in
  let out = fwd1 Op.Reshape [ sym_hw; Shape.of_ints [ 2 ] ] [ Value_info.undef; target_v ] in
  check_shape "reshape -1 resolves" "[1, 3*H*W]" out

let test_forward_reshape_rank_only () =
  (* unknown target value but known target length: rank propagates *)
  let out = fwd1 Op.Reshape [ sym_hw; Shape.of_ints [ 2 ] ] (undef_vals 2) in
  Alcotest.(check (option int)) "rank known" (Some 2) (Shape.rank out)

let test_forward_concat_slice () =
  let a = Shape.of_dims [ Dim.of_sym "A"; Dim.of_int 4 ] in
  let b = Shape.of_dims [ Dim.of_sym "B"; Dim.of_int 4 ] in
  check_shape "concat axis0" "[A + B, 4]" (fwd1 (Op.Concat { axis = 0 }) [ a; b ] (undef_vals 2));
  (* slice with constant bounds over a symbolic extent *)
  let data = Shape.of_dims [ Dim.of_sym "S"; Dim.of_int 8 ] in
  let vi l = Value_info.of_ints l in
  let out =
    fwd1 Op.Slice
      [ data; Shape.of_ints [ 1 ]; Shape.of_ints [ 1 ]; Shape.of_ints [ 1 ]; Shape.of_ints [ 1 ] ]
      [ Value_info.undef; vi [ 0 ]; vi [ 2 ]; vi [ 0 ]; vi [ 1 ] ]
  in
  check_shape "slice [0:2] of S" "[min(2, S), 8]" out

let test_forward_edo () =
  let s, _ = Shape_fn.forward Op.NonZero (io [ sym_hw ] (undef_vals 1)) in
  (match s.(0) with
  | Shape.Ranked d ->
    Alcotest.(check (option int)) "first dim = rank" (Some 4) (Dim.as_const d.(0));
    Alcotest.(check bool) "count is nac" true (d.(1) = Dim.nac)
  | _ -> Alcotest.fail "nonzero shape");
  let s, _ =
    Shape_fn.forward (Op.TopK { axis = 0; largest = true })
      (io [ Shape.of_dims [ Dim.of_sym "N" ]; Shape.scalar ]
         [ Value_info.undef; Value_info.of_ints [ 5 ] ])
  in
  check_shape "topk known k" "[5]" s.(0)

let test_forward_switch_combine () =
  let s, _ =
    Shape_fn.forward (Op.Switch { branches = 2 }) (io [ sym_hw; Shape.scalar ] (undef_vals 2))
  in
  Alcotest.(check int) "two outputs" 2 (Array.length s);
  check_shape "branch shape" "[1, 3, H, W]" s.(0);
  (* combine merges: agreeing shapes pass, disagreeing become nac *)
  let s, _ =
    Shape_fn.forward (Op.Combine { branches = 2 })
      (io [ sym_hw; sym_hw; Shape.scalar ] (undef_vals 3))
  in
  check_shape "combine merge" "[1, 3, H, W]" s.(0);
  let s, _ =
    Shape_fn.forward (Op.Combine { branches = 2 })
      (io [ sym_hw; Shape.of_ints [ 1; 2 ]; Shape.scalar ] (undef_vals 3))
  in
  Alcotest.(check bool) "disagreement is nac" true (s.(0) = Shape.Nac)

(* --- backward transfer functions ----------------------------------- *)

let test_backward () =
  (* unary: exact *)
  let back =
    Shape_fn.backward (Op.Unary Op.Relu) ~out_shapes:[| sym_hw |]
      (io [ Shape.Undef ] (undef_vals 1))
      ~input_index:0
  in
  check_shape "unary backward" "[1, 3, H, W]" back;
  (* binary with scalar operand: exact *)
  let back =
    Shape_fn.backward (Op.Binary Op.Mul) ~out_shapes:[| sym_hw |]
      (io [ Shape.Undef; Shape.scalar ] (undef_vals 2))
      ~input_index:0
  in
  check_shape "scalar-other backward" "[1, 3, H, W]" back;
  (* transpose: inverse permutation *)
  let out = Shape.of_dims [ Dim.of_sym "B"; Dim.of_sym "A" ] in
  let back =
    Shape_fn.backward (Op.Transpose [ 1; 0 ]) ~out_shapes:[| out |]
      (io [ Shape.Undef ] (undef_vals 1))
      ~input_index:0
  in
  check_shape "transpose backward" "[A, B]" back;
  (* binary where the opposite dim is 1: pinned to output *)
  let other = Shape.of_ints [ 1; 4 ] in
  let self = Shape.Ranked [| Dim.undef; Dim.undef |] in
  let out = Shape.of_dims [ Dim.of_sym "N"; Dim.of_int 4 ] in
  let back =
    Shape_fn.backward (Op.Binary Op.Add) ~out_shapes:[| out |]
      (io [ self; other ] (undef_vals 2))
      ~input_index:0
  in
  (match back with
  | Shape.Ranked d ->
    Alcotest.(check string) "dim0 pinned" "N" (Dim.to_string d.(0));
    Alcotest.(check bool) "dim1 ambiguous" true (d.(1) = Dim.undef)
  | _ -> Alcotest.fail "binary backward")

let test_versions_for_broadcast () =
  let a = Shape.of_dims [ Dim.of_sym "I"; Dim.of_sym "J" ] in
  let b = Shape.of_dims [ Dim.of_sym "I2"; Dim.of_sym "J2" ] in
  let n = Shape_fn.versions_for_broadcast (io [ a; b ] (undef_vals 2)) in
  Alcotest.(check int) "two ambiguous dims" 2 n;
  (* Fig 4: proving equality removes the ambiguity *)
  let n = Shape_fn.versions_for_broadcast (io [ a; a ] (undef_vals 2)) in
  Alcotest.(check int) "equal dims resolved" 0 n

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basic;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "traversals" `Quick test_traversals;
    Alcotest.test_case "dot export and histogram" `Quick test_dot_and_histogram;
    Alcotest.test_case "classification (Table 2)" `Quick test_classification_table;
    Alcotest.test_case "context-dependent classification" `Quick test_context_classification;
    Alcotest.test_case "forward: elementwise" `Quick test_forward_elementwise;
    Alcotest.test_case "forward: conv/pool" `Quick test_forward_conv_pool;
    Alcotest.test_case "forward: matmul" `Quick test_forward_matmul;
    Alcotest.test_case "forward: shape/value chain" `Quick test_forward_shape_value_chain;
    Alcotest.test_case "forward: reshape rank-only" `Quick test_forward_reshape_rank_only;
    Alcotest.test_case "forward: concat/slice" `Quick test_forward_concat_slice;
    Alcotest.test_case "forward: execution determined" `Quick test_forward_edo;
    Alcotest.test_case "forward: switch/combine" `Quick test_forward_switch_combine;
    Alcotest.test_case "backward transfers" `Quick test_backward;
    Alcotest.test_case "broadcast version counting (Fig 4)" `Quick test_versions_for_broadcast;
  ]
