(* Tests for the RDP-enabled optimizations: fusion, execution planning,
   memory planning, the auto-tuner and multi-version selection, and the
   end-to-end pipeline. *)

let cpu = Profile.sd888_cpu

let graph_of name = Sod2_experiments.Harness.graph_of (Option.get (Zoo.by_name name))

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

let test_fusion_structure () =
  let g = graph_of "codebert" in
  let rdp = Sod2.Rdp.analyze g in
  let plan = Sod2.Fusion.plan g rdp in
  Alcotest.(check bool) "fewer groups than nodes" true
    (Sod2.Fusion.layer_count plan < Graph.node_count g);
  (* structural invariants *)
  Array.iter
    (fun (grp : Sod2.Fusion.group) ->
      let heavies =
        List.filter (fun nid -> Op.is_heavy (Graph.node g nid).Graph.op) grp.members
      in
      if List.length heavies > 1 then Alcotest.fail "two heavy ops in one group";
      (* group ids ascend with terminal node id: a topological order *)
      List.iter
        (fun nid ->
          if Op.is_control_flow (Graph.node g nid).Graph.op && List.length grp.members > 1
          then Alcotest.fail "control flow fused")
        grp.members;
      (* internal tensors really are internal *)
      List.iter
        (fun tid ->
          List.iter
            (fun cnid ->
              if plan.Sod2.Fusion.group_of.(cnid) <> grp.gid then
                Alcotest.fail "internal tensor escapes its group")
            (Graph.consumers g tid);
          if List.mem tid (Graph.outputs g) then Alcotest.fail "graph output fused away")
        grp.internal)
    plan.Sod2.Fusion.groups;
  (* gid order is a valid topological order of the group DAG *)
  Array.iter
    (fun (nd : Graph.node) ->
      List.iter
        (fun tid ->
          match Graph.producer g tid with
          | Some p ->
            let gp = plan.Sod2.Fusion.group_of.(p.Graph.nid) in
            let gc = plan.Sod2.Fusion.group_of.(nd.Graph.nid) in
            if gp <> gc && gp > gc then Alcotest.fail "group ids not topological"
          | None -> ())
        nd.Graph.inputs)
    (Graph.nodes g)

let test_fusion_modes_monotone () =
  List.iter
    (fun name ->
      let g = graph_of name in
      let rdp = Sod2.Rdp.analyze g in
      let original = Sod2.Fusion.layer_count (Sod2.Fusion.identity_plan g) in
      let static = Sod2.Fusion.layer_count (Sod2.Fusion.plan ~mode:Sod2.Fusion.Static_only g rdp) in
      let light = Sod2.Fusion.layer_count (Sod2.Fusion.plan ~mode:Sod2.Fusion.Light g rdp) in
      let full = Sod2.Fusion.layer_count (Sod2.Fusion.plan ~mode:Sod2.Fusion.Rdp_based g rdp) in
      if not (full <= light && light <= static && static <= original) then
        Alcotest.failf "%s: fusion modes not monotone (%d/%d/%d/%d)" name original
          static light full)
    [ "codebert"; "yolov6"; "skipnet" ]

let test_fusion_fig4_scenario () =
  (* Sigmoid + Add with RDP-provable equal shapes fuses into one group *)
  let b = Graph.Builder.create () in
  let shape3 = Shape.of_dims [ Dim.of_sym "I"; Dim.of_sym "J"; Dim.of_sym "K" ] in
  let a = Graph.Builder.input b ~name:"a" shape3 in
  let bb = Graph.Builder.input b ~name:"b" shape3 in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ a ] in
  let c = Graph.Builder.node1 b (Op.Binary Op.Add) [ s; bb ] in
  Graph.Builder.set_outputs b [ c ];
  let g = Graph.Builder.finish b in
  let rdp = Sod2.Rdp.analyze g in
  let plan = Sod2.Fusion.plan g rdp in
  Alcotest.(check int) "single fused group" 1 (Sod2.Fusion.layer_count plan);
  Alcotest.(check int) "single version" 1 plan.Sod2.Fusion.groups.(0).Sod2.Fusion.versions;
  (* without RDP facts the same pair does not fuse statically *)
  let static = Sod2.Fusion.plan ~mode:Sod2.Fusion.Static_only g rdp in
  Alcotest.(check int) "static cannot fuse symbolic shapes" 2
    (Sod2.Fusion.layer_count static)

let test_fusion_version_cap () =
  (* unrelated symbolic operands: every dim pair is ambiguous -> 8 versions
     needed for 3 dims, which is exactly the cap *)
  let b = Graph.Builder.create () in
  let a =
    Graph.Builder.input b ~name:"a"
      (Shape.of_dims [ Dim.of_sym "I"; Dim.of_sym "J"; Dim.of_sym "K" ])
  in
  let bb =
    Graph.Builder.input b ~name:"b"
      (Shape.of_dims [ Dim.of_sym "X"; Dim.of_sym "Y"; Dim.of_sym "Z" ])
  in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ a ] in
  let c = Graph.Builder.node1 b (Op.Binary Op.Add) [ s; bb ] in
  Graph.Builder.set_outputs b [ c ];
  let g = Graph.Builder.finish b in
  let rdp = Sod2.Rdp.analyze g in
  let plan = Sod2.Fusion.plan g rdp in
  (* the fused group needs 2^3 = 8 versions, at the cap, so it may fuse *)
  let fused = Sod2.Fusion.layer_count plan = 1 in
  if fused then
    Alcotest.(check int) "8 versions" 8 plan.Sod2.Fusion.groups.(0).Sod2.Fusion.versions
  else Alcotest.fail "should fuse at the version cap"

let test_intermediate_bytes () =
  let g = graph_of "codebert" in
  let rdp = Sod2.Rdp.analyze g in
  let env = Env.of_list [ "S", 64 ] in
  let unfused = Sod2.Fusion.intermediate_bytes g (Sod2.Fusion.identity_plan g) env rdp in
  let fused = Sod2.Fusion.intermediate_bytes g (Sod2.Fusion.plan g rdp) env rdp in
  Alcotest.(check bool) "fusion reduces IR bytes" true (fused < unfused)

(* ------------------------------------------------------------------ *)
(* Execution planning                                                  *)
(* ------------------------------------------------------------------ *)

(* A wide synthetic graph with real ordering slack: [branches] parallel
   conv towers of very different widths merged pairwise by adds.  A
   breadth-first executor keeps every tower's output alive at once; a
   planned order can retire the big towers before materializing the small
   ones. *)
let wide_graph () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 9 in
  let x =
    Graph.Builder.input b ~name:"x"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 4; Dim.of_sym "H"; Dim.of_sym "H" ])
  in
  let tower cout =
    let w1 = Graph.Builder.const b ~name:(Printf.sprintf "w%d" cout)
        (Tensor.rand_normal rng [ cout; 4; 1; 1 ])
    in
    let y =
      Graph.Builder.node1 b
        (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
        [ x; w1 ]
    in
    (* reduce back to 4 channels so towers can be summed *)
    let w2 = Graph.Builder.const b ~name:(Printf.sprintf "v%d" cout)
        (Tensor.rand_normal rng [ 4; cout; 1; 1 ])
    in
    Graph.Builder.node1 b
      (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
      [ y; w2 ]
  in
  let towers = List.map tower [ 64; 48; 32; 16; 8; 4 ] in
  let sum =
    List.fold_left
      (fun acc t -> Graph.Builder.node1 b (Op.Binary Op.Add) [ acc; t ])
      (List.hd towers) (List.tl towers)
  in
  Graph.Builder.set_outputs b [ sum ];
  Graph.Builder.finish b

let test_exec_plan_improves_wide_graph () =
  let g = wide_graph () in
  let rdp = Sod2.Rdp.analyze g in
  let fp = Sod2.Fusion.plan g rdp in
  let env = Env.of_list [ "H", 32 ] in
  let peak strategy =
    let ep = Sod2.Exec_plan.plan ~strategy g rdp fp ~env in
    Sod2.Exec_plan.simulate_peak_bytes g rdp fp ~env ~order:ep.Sod2.Exec_plan.order
  in
  let bfs = peak Sod2.Exec_plan.Topological in
  let planned = peak Sod2.Exec_plan.Optimal_small in
  Alcotest.(check bool)
    (Printf.sprintf "planned (%d) strictly beats breadth-first (%d)" planned bfs)
    true (planned < bfs)

let test_exec_plan_orders_valid () =
  List.iter
    (fun name ->
      let g = graph_of name in
      let rdp = Sod2.Rdp.analyze g in
      let fp = Sod2.Fusion.plan g rdp in
      let env =
        List.fold_left (fun e s -> Env.bind s 64 e) Env.empty (Graph.free_syms g)
      in
      List.iter
        (fun strategy ->
          let ep = Sod2.Exec_plan.plan ~strategy g rdp fp ~env in
          (* every group appears exactly once *)
          let order = ep.Sod2.Exec_plan.order in
          Alcotest.(check int) "covers all groups"
            (Array.length fp.Sod2.Fusion.groups)
            (List.length (List.sort_uniq compare order));
          (* producers precede consumers *)
          let pos = Hashtbl.create 64 in
          List.iteri (fun i gid -> Hashtbl.replace pos gid i) order;
          Array.iter
            (fun (nd : Graph.node) ->
              List.iter
                (fun tid ->
                  match Graph.producer g tid with
                  | Some p ->
                    let gp = fp.Sod2.Fusion.group_of.(p.Graph.nid) in
                    let gc = fp.Sod2.Fusion.group_of.(nd.Graph.nid) in
                    if gp <> gc && Hashtbl.find pos gp > Hashtbl.find pos gc then
                      Alcotest.failf "%s: invalid order" name
                  | None -> ())
                nd.Graph.inputs)
            (Graph.nodes g))
        [ Sod2.Exec_plan.Topological; Sod2.Exec_plan.Greedy_memory; Sod2.Exec_plan.Optimal_small ])
    [ "codebert"; "yolov6"; "ranet"; "skipnet" ]

let test_partition_at_control_flow () =
  let g = graph_of "skipnet" in
  let rdp = Sod2.Rdp.analyze g in
  let fp = Sod2.Fusion.plan g rdp in
  let ep = Sod2.Exec_plan.plan g rdp fp ~env:(Env.of_list [ "H", 64; "W", 64 ]) in
  Alcotest.(check bool) "control flow partitions the graph" true
    (Array.length ep.Sod2.Exec_plan.subgraphs > Zoo.gate_count g);
  let counts = Sod2.Exec_plan.subgraph_kind_counts ep in
  let total = List.fold_left (fun a (_, v) -> a + v) 0 counts in
  Alcotest.(check int) "counts cover subgraphs" (Array.length ep.Sod2.Exec_plan.subgraphs) total

(* Random small DAGs of 1×1 convolutions (each node's channel count sets
   its tensor size; convolutions never fuse with each other, so groups are
   nodes) — the subset-DP's answer must equal the brute-force minimum over
   every topological order. *)
let random_dag_graph rng ~k =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_ints [ 1; 2; 8; 8 ])
  in
  let conv cin cout src =
    Graph.Builder.node1 b
      (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
      [ src;
        Graph.Builder.const b
          ~name:(Printf.sprintf "w%d" (Rng.int rng 1000000))
          (Tensor.rand_normal rng [ cout; cin; 1; 1 ]) ]
  in
  let tensors = ref [ x, 2 ] in
  for _ = 1 to k do
    let src, cin = List.nth !tensors (Rng.int rng (List.length !tensors)) in
    let cout = 1 + Rng.int rng 8 in
    let y = conv cin cout src in
    tensors := (y, cout) :: !tensors
  done;
  let outs =
    List.filter_map (fun (tid, _) -> if tid = x then None else Some tid) !tensors
  in
  Graph.Builder.set_outputs b [ List.hd outs ];
  Graph.Builder.finish b

let all_topo_orders preds k =
  (* enumerate every topological order of a DAG given per-node predecessor
     lists over 0..k-1 *)
  let orders = ref [] in
  let rec go placed remaining =
    if remaining = [] then orders := List.rev placed :: !orders
    else
      List.iter
        (fun n ->
          if List.for_all (fun p -> List.mem p placed) preds.(n) then
            go (n :: placed) (List.filter (( <> ) n) remaining))
        remaining
  in
  go [] (List.init k Fun.id);
  !orders

let prop_exec_plan_optimal =
  QCheck2.Test.make ~name:"subset-DP order matches brute-force optimum" ~count:25
    QCheck2.Gen.(tup2 (int_range 3 6) (int_range 0 10000))
    (fun (k, seed) ->
      let rng = Rng.create (seed + 31) in
      let g = random_dag_graph rng ~k in
      let rdp = Sod2.Rdp.analyze g in
      let fp = Sod2.Fusion.plan g rdp in
      let env = Env.empty in
      let ep = Sod2.Exec_plan.plan ~strategy:Sod2.Exec_plan.Optimal_small g rdp fp ~env in
      let dp_peak =
        Sod2.Exec_plan.simulate_peak_bytes g rdp fp ~env ~order:ep.Sod2.Exec_plan.order
      in
      (* group-level predecessor lists *)
      let n = Array.length fp.Sod2.Fusion.groups in
      let preds = Array.make n [] in
      Array.iter
        (fun (nd : Graph.node) ->
          List.iter
            (fun tid ->
              match Graph.producer g tid with
              | Some p ->
                let gp = fp.Sod2.Fusion.group_of.(p.Graph.nid) in
                let gc = fp.Sod2.Fusion.group_of.(nd.Graph.nid) in
                if gp <> gc && not (List.mem gp preds.(gc)) then
                  preds.(gc) <- gp :: preds.(gc)
              | None -> ())
            nd.Graph.inputs)
        (Graph.nodes g);
      let best =
        List.fold_left
          (fun acc order ->
            min acc (Sod2.Exec_plan.simulate_peak_bytes g rdp fp ~env ~order))
          max_int (all_topo_orders preds n)
      in
      dp_peak = best)

let test_partition_at_nac () =
  (* a NonZero in the middle splits planning into independent sub-graphs *)
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "N" ]) in
  let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ x ] in
  let nz = Graph.Builder.node1 b Op.NonZero [ y ] in
  let z = Graph.Builder.node1 b (Op.Cast Tensor.F32) [ nz ] in
  let w = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ z ] in
  Graph.Builder.set_outputs b [ w ];
  let g = Graph.Builder.finish b in
  let rdp = Sod2.Rdp.analyze g in
  let fp = Sod2.Fusion.plan g rdp in
  let ep = Sod2.Exec_plan.plan g rdp fp ~env:(Env.of_list [ "N", 16 ]) in
  Alcotest.(check bool) "at least 3 sub-graphs" true
    (Array.length ep.Sod2.Exec_plan.subgraphs >= 3);
  Alcotest.(check bool) "one has nac" true
    (Array.exists
       (fun (sg : Sod2.Exec_plan.subgraph) -> sg.Sod2.Exec_plan.kind = Sod2.Exec_plan.Has_nac)
       ep.Sod2.Exec_plan.subgraphs)

(* ------------------------------------------------------------------ *)
(* Memory planning                                                     *)
(* ------------------------------------------------------------------ *)

let lifetime_gen =
  QCheck2.Gen.(
    list_size (int_range 1 24)
      (tup3 (int_range 1 4096) (int_range 0 20) (int_range 0 10)))

let normalize_lifetimes l = List.map (fun (sz, f, len) -> sz * 16, f, f + len) l

let prop_memplan_no_overlap_and_bound =
  QCheck2.Test.make ~name:"placements are overlap-free and peak-first <= greedy" ~count:200
    lifetime_gen
    (fun raw ->
      let lts = normalize_lifetimes raw in
      let pf = Sod2.Mem_plan.arena_for Sod2.Mem_plan.Peak_first ~lifetimes:lts in
      let gr = Sod2.Mem_plan.arena_for Sod2.Mem_plan.Greedy_first_fit ~lifetimes:lts in
      (* lower bound: max live bytes *)
      let last = List.fold_left (fun a (_, _, l) -> max a l) 0 lts in
      let lb = ref 0 in
      for s = 0 to last do
        let v = List.fold_left (fun a (b, f, l) -> if f <= s && s <= l then a + b else a) 0 lts in
        if v > !lb then lb := v
      done;
      pf <= gr && pf >= !lb && gr >= !lb)

let prop_memplan_optimal_small =
  QCheck2.Test.make ~name:"exhaustive search bounds both heuristics" ~count:40
    QCheck2.Gen.(list_size (int_range 1 7) (tup3 (int_range 1 64) (int_range 0 6) (int_range 0 4)))
    (fun raw ->
      let lts = normalize_lifetimes raw in
      let opt = Sod2.Mem_plan.arena_for Sod2.Mem_plan.Optimal_search ~lifetimes:lts in
      let pf = Sod2.Mem_plan.arena_for Sod2.Mem_plan.Peak_first ~lifetimes:lts in
      let gr = Sod2.Mem_plan.arena_for Sod2.Mem_plan.Greedy_first_fit ~lifetimes:lts in
      opt <= pf && opt <= gr)

(* Every strategy's placement must pass the no-overlap invariant checker —
   the property the arena executor's correctness rests on. *)
let prop_memplan_validate_heuristics =
  QCheck2.Test.make ~name:"heuristic placements always validate" ~count:200 lifetime_gen
    (fun raw ->
      let lts = normalize_lifetimes raw in
      List.for_all
        (fun s -> Sod2.Mem_plan.validate (Sod2.Mem_plan.plan_raw s ~lifetimes:lts) = Ok ())
        [ Sod2.Mem_plan.Greedy_first_fit; Sod2.Mem_plan.Peak_first ])

let prop_memplan_validate_optimal =
  QCheck2.Test.make ~name:"optimal-search placements always validate" ~count:40
    QCheck2.Gen.(list_size (int_range 1 7) (tup3 (int_range 1 64) (int_range 0 6) (int_range 0 4)))
    (fun raw ->
      let lts = normalize_lifetimes raw in
      Sod2.Mem_plan.validate
        (Sod2.Mem_plan.plan_raw Sod2.Mem_plan.Optimal_search ~lifetimes:lts)
      = Ok ())

(* Symbolic plans instantiated at a random positive binding must agree
   with concrete plans computed directly at that binding, and each entry's
   affine element count must equal the product of its evaluated dims —
   i.e. the runtime's affine-evaluation shortcut loses nothing. *)
let prop_symbolic_plan_matches_concrete =
  let g = graph_of "codebert" in
  let c = Sod2.Pipeline.compile cpu g in
  QCheck2.Test.make ~name:"symbolic plan instantiation = concrete plan" ~count:20
    QCheck2.Gen.(int_range 1 12)
    (fun s8 ->
      let env = Sod2.Pipeline.plan_env c (8 * s8) in
      let sym = c.Sod2.Pipeline.mem_symbolic in
      let mp = Sod2.Mem_plan.instantiate sym ~env in
      let concrete =
        Sod2.Mem_plan.plan ~strategy:sym.Sod2.Mem_plan.sym_strategy
          ~elem_of:(Sod2.Pipeline.elem_overrides g) g c.Sod2.Pipeline.rdp
          c.Sod2.Pipeline.fusion_plan
          ~order:c.Sod2.Pipeline.exec.Sod2.Exec_plan.order ~env
      in
      Sod2.Mem_plan.validate mp = Ok ()
      && mp.Sod2.Mem_plan.arena_bytes = concrete.Sod2.Mem_plan.arena_bytes
      && mp.Sod2.Mem_plan.allocs = concrete.Sod2.Mem_plan.allocs
      && List.for_all
           (fun (e : Sod2.Mem_plan.sym_entry) ->
             match Shape.eval env e.Sod2.Mem_plan.se_shape, e.Sod2.Mem_plan.se_numel with
             | Some dims, Some n ->
               Env.eval env n = Some (List.fold_left ( * ) 1 dims)
             | Some _, None -> true
             | None, _ -> false)
           sym.Sod2.Mem_plan.sym_entries)

let test_memplan_on_model () =
  let g = graph_of "yolov6" in
  let c = Sod2.Pipeline.compile cpu g in
  List.iter
    (fun hw ->
      let env = Env.of_list [ "H", hw; "W", hw ] in
      let mp = Sod2.Pipeline.mem_plan_for c env in
      (match Sod2.Mem_plan.validate mp with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid plan at %d: %s" hw e);
      Alcotest.(check bool) "arena >= live peak" true
        (mp.Sod2.Mem_plan.arena_bytes >= Sod2.Mem_plan.live_peak_bytes mp);
      Alcotest.(check (list int)) "no dynamic tensors in yolov6" []
        mp.Sod2.Mem_plan.dynamic)
    [ 224; 416 ]

let test_memplan_validate_catches_overlap () =
  let g = graph_of "yolov6" in
  let c = Sod2.Pipeline.compile cpu g in
  let mp = Sod2.Pipeline.mem_plan_for c (Env.of_list [ "H", 224; "W", 224 ]) in
  (* corrupt: force every offset to zero *)
  let corrupted =
    {
      mp with
      Sod2.Mem_plan.allocs =
        Array.map (fun a -> { a with Sod2.Mem_plan.offset = 0 }) mp.Sod2.Mem_plan.allocs;
    }
  in
  match Sod2.Mem_plan.validate corrupted with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error _ -> ()

(* Best-fit must pick the tightest hole, not the lowest one.  The crafted
   sequence leaves a 20-byte hole at offset 0 and a 15-byte hole at 25;
   first-fit drops the 15-byte block into the 20-byte hole and has to grow
   the arena for the following 20-byte block, best-fit does not. *)
let test_memplan_best_fit_tightest () =
  let lifetimes =
    [ 20, 0, 0; 5, 0, 10; 15, 0, 0; 100, 0, 10; 15, 1, 10; 20, 1, 10 ]
  in
  let check_valid name offsets arena =
    let placed = List.combine offsets lifetimes in
    List.iteri
      (fun i (o1, (s1, f1, l1)) ->
        Alcotest.(check bool) (name ^ ": inside arena") true (o1 >= 0 && o1 + s1 <= arena);
        List.iteri
          (fun j (o2, (s2, f2, l2)) ->
            if i < j && f1 <= l2 && f2 <= l1 && o1 < o2 + s2 && o2 < o1 + s1 then
              Alcotest.failf "%s: live allocations %d and %d overlap" name i j)
          placed)
      placed
  in
  let ff_offsets, ff = Sod2.Mem_plan.pack `First_fit ~lifetimes in
  let bf_offsets, bf = Sod2.Mem_plan.pack `Best_fit ~lifetimes in
  check_valid "first-fit" ff_offsets ff;
  check_valid "best-fit" bf_offsets bf;
  Alcotest.(check int) "first-fit grows the arena" 160 ff;
  Alcotest.(check int) "best-fit reuses the tight hole" 140 bf;
  (* the 15-byte block goes into the 15-byte hole at 25, not the hole at 0 *)
  Alcotest.(check int) "best-fit offset of the 15-byte block" 25 (List.nth bf_offsets 4)

(* ------------------------------------------------------------------ *)
(* Rematerialization                                                   *)
(* ------------------------------------------------------------------ *)

let test_remat_basic () =
  (* three tensors held across step 2 with very different recompute costs:
     the planner must evict the cheap big one first *)
  let t bytes alloc free cost =
    { Sod2.Remat.rt_bytes = bytes; rt_alloc = alloc; rt_free = free; rt_recompute_us = cost }
  in
  let tensors = [ t 1000 0 6 10.0; t 1000 1 4 1000.0; t 500 2 3 5.0 ] in
  let base = Sod2.Remat.peak_of tensors in
  Alcotest.(check int) "baseline peak" 2500 base;
  let p = Sod2.Remat.plan ~budget_bytes:1600 tensors in
  Alcotest.(check bool) "feasible" true p.Sod2.Remat.feasible;
  Alcotest.(check bool) "under budget" true (p.Sod2.Remat.peak_bytes <= 1600);
  Alcotest.(check (list int)) "evicts the cheap tensor" [ 0 ] p.Sod2.Remat.evicted;
  Alcotest.(check (float 0.01)) "pays its recompute cost" 10.0 p.Sod2.Remat.extra_us;
  (* impossible budget: best effort, flagged infeasible *)
  let p = Sod2.Remat.plan ~budget_bytes:100 tensors in
  Alcotest.(check bool) "infeasible flagged" false p.Sod2.Remat.feasible

let remat_gen =
  QCheck2.Gen.(
    list_size (int_range 1 20)
      (tup4 (int_range 1 256) (int_range 0 12) (int_range 0 8) (int_range 1 100)))

let prop_remat_sound =
  QCheck2.Test.make ~name:"remat never raises the peak and pays non-negative time" ~count:200
    QCheck2.Gen.(tup2 remat_gen (int_range 1 2048))
    (fun (raw, budget) ->
      let tensors =
        List.map
          (fun (b, a, len, c) ->
            { Sod2.Remat.rt_bytes = b * 4; rt_alloc = a; rt_free = a + len;
              rt_recompute_us = float_of_int c })
          raw
      in
      let base = Sod2.Remat.peak_of tensors in
      let p = Sod2.Remat.plan ~budget_bytes:budget tensors in
      p.Sod2.Remat.peak_bytes <= base
      && p.Sod2.Remat.extra_us >= 0.0
      && ((not p.Sod2.Remat.feasible) || p.Sod2.Remat.peak_bytes <= budget))

let prop_remat_monotone =
  QCheck2.Test.make ~name:"tighter budgets cost at least as much recompute" ~count:100
    remat_gen
    (fun raw ->
      let tensors =
        List.map
          (fun (b, a, len, c) ->
            { Sod2.Remat.rt_bytes = b * 4; rt_alloc = a; rt_free = a + len;
              rt_recompute_us = float_of_int c })
          raw
      in
      let base = Sod2.Remat.peak_of tensors in
      let loose = Sod2.Remat.plan ~budget_bytes:(base / 2) tensors in
      let tight = Sod2.Remat.plan ~budget_bytes:(base / 4) tensors in
      tight.Sod2.Remat.extra_us >= loose.Sod2.Remat.extra_us -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Auto-tuner and multi-version codegen                                *)
(* ------------------------------------------------------------------ *)

let test_autotune_improves () =
  let rng = Rng.create 11 in
  let cases = [ 512, 512, 256; 4, 512, 256; 96, 96, 96 ] in
  List.iter
    (fun (m, n, k) ->
      let _, tuned = Sod2.Autotune.tune cpu rng ~m ~n ~k in
      let base = Sod2.Autotune.efficiency cpu Sod2.Autotune.default_config ~m ~n ~k in
      Alcotest.(check bool)
        (Printf.sprintf "tuned >= default for %dx%dx%d" m n k)
        true (tuned >= base);
      Alcotest.(check bool) "within range" true (tuned >= 0.05 && tuned <= 0.95))
    cases

let test_autotune_deterministic () =
  let t1 = Sod2.Autotune.tune cpu (Rng.create 5) ~m:128 ~n:128 ~k:128 in
  let t2 = Sod2.Autotune.tune cpu (Rng.create 5) ~m:128 ~n:128 ~k:128 in
  Alcotest.(check bool) "same seed, same result" true (t1 = t2)

let test_multi_version_selection () =
  Alcotest.(check bool) "skinny" true (Sod2.Multi_version.classify ~m:4 ~n:512 = Sod2.Multi_version.Skinny);
  Alcotest.(check bool) "fat" true (Sod2.Multi_version.classify ~m:512 ~n:512 = Sod2.Multi_version.Fat);
  Alcotest.(check bool) "regular" true (Sod2.Multi_version.classify ~m:64 ~n:64 = Sod2.Multi_version.Regular);
  let table = Sod2.Multi_version.build cpu in
  let single = Sod2.Multi_version.single_version cpu in
  (* the multi-version table can only help *)
  List.iter
    (fun (m, n, k) ->
      let multi = Sod2.Multi_version.efficiency_for cpu table ~m ~n ~k in
      let one = Sod2.Multi_version.efficiency_for cpu single ~m ~n ~k in
      Alcotest.(check bool)
        (Printf.sprintf "multi >= 0.9*single at %dx%dx%d" m n k)
        true (multi >= one *. 0.9))
    [ 512, 512, 256; 4, 512, 256; 96, 96, 96 ]

let test_classify_gemm_tiny () =
  let open Sod2.Multi_version in
  Alcotest.(check string) "16^3 is tiny" "tiny" (class_name (classify_gemm ~m:16 ~n:16 ~k:16));
  Alcotest.(check string) "1x1x1 is tiny" "tiny" (class_name (classify_gemm ~m:1 ~n:1 ~k:1));
  Alcotest.(check string) "just above the cutoff" "regular"
    (class_name (classify_gemm ~m:16 ~n:16 ~k:17));
  Alcotest.(check string) "skinny beats tiny when large" "skinny"
    (class_name (classify_gemm ~m:4 ~n:512 ~k:256));
  Alcotest.(check string) "fat with shallow k" "fat"
    (class_name (classify_gemm ~m:512 ~n:512 ~k:1));
  (* the 2-argument classifier is unchanged: no tiny class without k *)
  Alcotest.(check string) "classify without k" "regular" (class_name (classify ~m:16 ~n:16))

let test_gemm_dims_of_op () =
  let conv = Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 } in
  Alcotest.(check (option (triple int int int))) "conv as implicit gemm"
    (Some (8, 100, 27))
    (Sod2.Multi_version.gemm_dims_of_op conv
       ~in_dims:[ [ 1; 3; 12; 12 ]; [ 8; 3; 3; 3 ] ]
       ~out_dims:[ [ 1; 8; 10; 10 ] ]);
  Alcotest.(check (option (triple int int int))) "matmul"
    (Some (32, 128, 64))
    (Sod2.Multi_version.gemm_dims_of_op Op.MatMul ~in_dims:[ [ 32; 64 ]; [ 64; 128 ] ]
       ~out_dims:[ [ 32; 128 ] ]);
  Alcotest.(check (option (triple int int int))) "relu has none" None
    (Sod2.Multi_version.gemm_dims_of_op (Op.Unary Op.Relu) ~in_dims:[ [ 4 ] ]
       ~out_dims:[ [ 4 ] ])

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_model () =
  let conv = Op.Conv { stride = (1, 1); pads = (1, 1, 1, 1); dilation = (1, 1); groups = 1 } in
  let small =
    Cost_model.op_time_us cpu conv
      ~in_dims:[ [ 1; 16; 32; 32 ]; [ 16; 16; 3; 3 ] ]
      ~out_dims:[ [ 1; 16; 32; 32 ] ]
  in
  let large =
    Cost_model.op_time_us cpu conv
      ~in_dims:[ [ 1; 16; 64; 64 ]; [ 16; 16; 3; 3 ] ]
      ~out_dims:[ [ 1; 16; 64; 64 ] ]
  in
  Alcotest.(check bool) "bigger problem costs more" true (large > small);
  let tuned =
    Cost_model.op_time_us cpu ~efficiency:0.9 conv
      ~in_dims:[ [ 1; 16; 64; 64 ]; [ 16; 16; 3; 3 ] ]
      ~out_dims:[ [ 1; 16; 64; 64 ] ]
  in
  Alcotest.(check bool) "higher efficiency is faster" true (tuned <= large);
  Alcotest.(check bool) "malloc grows with size" true
    (Cost_model.malloc_time_us cpu ~bytes:(1 lsl 24)
    > Cost_model.malloc_time_us cpu ~bytes:1024);
  (* fusion pays: one launch, less traffic *)
  let ops = [ conv, [ [ 1; 16; 64; 64 ]; [ 16; 16; 3; 3 ] ], [ [ 1; 16; 64; 64 ] ];
              Op.Unary Op.Relu, [ [ 1; 16; 64; 64 ] ], [ [ 1; 16; 64; 64 ] ] ]
  in
  let fused = Cost_model.group_time_us cpu ops ~external_bytes:(2 * 4 * 16 * 64 * 64) in
  let separate =
    large
    +. Cost_model.op_time_us cpu (Op.Unary Op.Relu) ~in_dims:[ [ 1; 16; 64; 64 ] ]
         ~out_dims:[ [ 1; 16; 64; 64 ] ]
  in
  Alcotest.(check bool) "fused cheaper than separate" true (fused < separate)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_flags () =
  let g = graph_of "codebert" in
  let all = Sod2.Pipeline.compile cpu g in
  let none = Sod2.Pipeline.compile ~flags:Sod2.Pipeline.no_opts cpu g in
  Alcotest.(check bool) "RDP fusion fuses more" true
    (Array.length all.Sod2.Pipeline.fusion_plan.Sod2.Fusion.groups
    < Array.length none.Sod2.Pipeline.fusion_plan.Sod2.Fusion.groups);
  Alcotest.(check bool) "plan env binds model syms" true
    (Env.lookup (Sod2.Pipeline.plan_env all 7) "S" = Some 7)

let suite =
  [
    Alcotest.test_case "fusion: structural invariants" `Quick test_fusion_structure;
    Alcotest.test_case "fusion: modes are monotone" `Quick test_fusion_modes_monotone;
    Alcotest.test_case "fusion: Fig 4 scenario" `Quick test_fusion_fig4_scenario;
    Alcotest.test_case "fusion: version cap" `Quick test_fusion_version_cap;
    Alcotest.test_case "fusion: IR bytes shrink" `Quick test_intermediate_bytes;
    Alcotest.test_case "exec plan: wide graph improves" `Quick test_exec_plan_improves_wide_graph;
    Alcotest.test_case "exec plan: orders valid on zoo" `Quick test_exec_plan_orders_valid;
    Alcotest.test_case "exec plan: partition at control flow" `Quick test_partition_at_control_flow;
    Alcotest.test_case "exec plan: partition at nac" `Quick test_partition_at_nac;
    Alcotest.test_case "mem plan: valid on model" `Quick test_memplan_on_model;
    Alcotest.test_case "mem plan: validator catches overlap" `Quick test_memplan_validate_catches_overlap;
    Alcotest.test_case "mem plan: best-fit picks tightest hole" `Quick test_memplan_best_fit_tightest;
    Alcotest.test_case "remat planner basics" `Quick test_remat_basic;
    Alcotest.test_case "autotune improves on default" `Quick test_autotune_improves;
    Alcotest.test_case "autotune deterministic" `Quick test_autotune_deterministic;
    Alcotest.test_case "multi-version selection" `Quick test_multi_version_selection;
    Alcotest.test_case "classify_gemm: tiny cutoff" `Quick test_classify_gemm_tiny;
    Alcotest.test_case "implicit gemm extraction" `Quick test_gemm_dims_of_op;
    Alcotest.test_case "cost model sanity" `Quick test_cost_model;
    Alcotest.test_case "pipeline flags" `Quick test_pipeline_flags;
    QCheck_alcotest.to_alcotest prop_memplan_no_overlap_and_bound;
    QCheck_alcotest.to_alcotest prop_memplan_optimal_small;
    QCheck_alcotest.to_alcotest prop_memplan_validate_heuristics;
    QCheck_alcotest.to_alcotest prop_memplan_validate_optimal;
    QCheck_alcotest.to_alcotest prop_symbolic_plan_matches_concrete;
    QCheck_alcotest.to_alcotest prop_remat_sound;
    QCheck_alcotest.to_alcotest prop_remat_monotone;
    QCheck_alcotest.to_alcotest prop_exec_plan_optimal;
  ]
