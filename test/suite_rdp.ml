(* Tests for the RDP dataflow analysis (§4.1): the Fig. 1 dynamism
   scenarios, forward/backward transfer, Merge at control-flow joins,
   convergence, context-dependent classification, and agreement between
   the symbolic result and concrete execution. *)

let check_shape msg expected rdp tid =
  Alcotest.(check string) msg expected (Shape.to_string (Sod2.Rdp.shape rdp tid))

(* Fig. 1 (a): Shape's value propagates through downstream ISDOS ops. *)
let test_fig1a_shape_value_propagation () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "A"; Dim.of_sym "B" ])
  in
  let shp = Graph.Builder.node1 b Op.ShapeOf [ x ] in
  let two = Graph.Builder.const b ~name:"two" (Tensor.of_int_list [ 2; 2 ]) in
  let scaled = Graph.Builder.node1 b (Op.Binary Op.Mul) [ shp; two ] in
  let filled = Graph.Builder.node1 b (Op.ConstantOfShape { fill = 0.0 }) [ scaled ] in
  Graph.Builder.set_outputs b [ filled ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  check_shape "value arithmetic reaches the shape" "[2*A, 2*B]" r filled

(* Fig. 1 (b): a known conv input shape propagates through the sub-graph. *)
let test_fig1b_conv_chain () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 1 in
  let x =
    Graph.Builder.input b ~name:"x"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 4; Dim.of_sym "H"; Dim.of_sym "H" ])
  in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_normal rng [ 4; 4; 1; 1 ]) in
  let conv =
    Graph.Builder.node1 b
      (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
      [ x; w ]
  in
  let act = Graph.Builder.node1 b (Op.Unary Op.Relu) [ conv ] in
  let sm = Graph.Builder.node1 b (Op.Softmax { axis = 1 }) [ act ] in
  Graph.Builder.set_outputs b [ sm ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  check_shape "1x1 conv keeps spatial" "[1, 4, H, H]" r conv;
  check_shape "propagates to softmax" "[1, 4, H, H]" r sm;
  Alcotest.(check bool) "fully resolved" true (Sod2.Rdp.resolution_rate g r = 1.0)

(* Fig. 1 (c): TopK with a runtime k makes downstream dims nac, and the
   graph partitions there. *)
let test_fig1c_topk_nac () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "N" ]) in
  let kf = Graph.Builder.node1 b (Op.Reduce { rkind = Op.Rsum; axes = []; keepdims = false }) [ x ] in
  let k = Graph.Builder.node1 b (Op.Cast Tensor.I64) [ kf ] in
  let outs = Graph.Builder.node b (Op.TopK { axis = 0; largest = true }) [ x; k ] in
  let top = List.hd outs in
  let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ top ] in
  Graph.Builder.set_outputs b [ y ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  (match Sod2.Rdp.shape r y with
  | Shape.Ranked d ->
    Alcotest.(check bool) "data-dependent k -> nac dim" true (d.(0) = Dim.nac)
  | _ -> Alcotest.fail "rank should still be known");
  Alcotest.(check bool) "TopK stays ISVDOS" true
    (Sod2.Rdp.category r (Option.get (Graph.producer g top)).Graph.nid = Op_class.Isvdos)

(* Fig. 1 (d): Switch/Combine — shapes flow through branches and merge. *)
let test_fig1d_switch_combine () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_int 1; Dim.of_sym "C" ])
  in
  let pred = Graph.Builder.input b ~name:"pred" Shape.scalar in
  (match Graph.Builder.node b (Op.Switch { branches = 2 }) [ x; pred ] with
  | [ o0; o1 ] ->
    let r1 = Graph.Builder.node1 b (Op.Unary Op.Relu) [ o0 ] in
    let r2 = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ o1 ] in
    let merged = Graph.Builder.node1 b (Op.Combine { branches = 2 }) [ r1; r2; pred ] in
    Graph.Builder.set_outputs b [ merged ];
    let g = Graph.Builder.finish b in
    let r = Sod2.Rdp.analyze g in
    check_shape "merged branches keep shape" "[1, C]" r merged
  | _ -> Alcotest.fail "switch outputs")

(* Fig. 3 (a)-flavoured forward chain: MatMul -> Shape -> Gather/Reduce. *)
let test_fig3a_forward () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "a"; Dim.of_sym "b" ])
  in
  let shp = Graph.Builder.node1 b Op.ShapeOf [ x ] in
  let mn = Graph.Builder.node1 b (Op.Reduce { rkind = Op.Rmin; axes = []; keepdims = true }) [ shp ] in
  Graph.Builder.set_outputs b [ mn ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  check_shape "reduce of shape vector" "[1]" r mn;
  (* the paper's example: V3 = min(a, b); we track the shape, the value of
     a float reduce is not tracked, but the Shape op's value is *)
  match Value_info.as_exprs (Sod2.Rdp.value r shp) with
  | Some e ->
    Alcotest.(check string) "V1 = [a, b]" "a" (Expr.to_string e.(0));
    Alcotest.(check string) "V1 = [a, b]" "b" (Expr.to_string e.(1))
  | None -> Alcotest.fail "shape value missing"

(* Fig. 3 (b)-flavoured backward chain: known downstream dimensions refine
   an input whose shape is entirely unknown, across two backward hops
   (Concat pins the non-axis dims, Transpose inverts the permutation). *)
let test_fig3b_backward () =
  let b = Graph.Builder.create () in
  let anchor =
    Graph.Builder.input b ~name:"anchor"
      (Shape.of_dims [ Dim.of_sym "p"; Dim.of_int 4 ])
  in
  let x = Graph.Builder.input b ~name:"x" Shape.Undef in
  let z = Graph.Builder.node1 b (Op.Transpose [ 1; 0 ]) [ x ] in
  let c = Graph.Builder.node1 b (Op.Concat { axis = 0 }) [ anchor; z ] in
  Graph.Builder.set_outputs b [ c ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  (* backward hop 1: concat pins z's trailing dim *)
  (match Sod2.Rdp.shape r z with
  | Shape.Ranked d ->
    Alcotest.(check (option int)) "z dim1 = 4" (Some 4) (Dim.as_const d.(1))
  | _ -> Alcotest.fail "z should have known rank");
  (* backward hop 2: transpose inverts the permutation into x *)
  match Sod2.Rdp.shape r x with
  | Shape.Ranked d ->
    Alcotest.(check (option int)) "x dim0 = 4" (Some 4) (Dim.as_const d.(0));
    Alcotest.(check (option int)) "rank recovered" (Some 2)
      (Shape.rank (Sod2.Rdp.shape r x))
  | _ -> Alcotest.fail "x rank not recovered"

let test_reshape_context_degrade () =
  (* Reshape fed by Shape-arithmetic is reported as ISDOS after analysis *)
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_sym "S"; Dim.of_int 16 ])
  in
  let shp = Graph.Builder.node1 b Op.ShapeOf [ x ] in
  let s01 =
    Graph.Builder.node1 b (Op.Gather { axis = 0 })
      [ shp; Graph.Builder.const b ~name:"ix" (Tensor.of_int_list [ 0; 1 ]) ]
  in
  let tail = Graph.Builder.const b ~name:"t" (Tensor.of_int_list [ 4; 4 ]) in
  let target = Graph.Builder.node1 b (Op.Concat { axis = 0 }) [ s01; tail ] in
  let reshaped = Graph.Builder.node1 b Op.Reshape [ x; target ] in
  Graph.Builder.set_outputs b [ reshaped ];
  let g = Graph.Builder.finish b in
  let r = Sod2.Rdp.analyze g in
  check_shape "split inner dim" "[1, S, 4, 4]" r reshaped;
  let reshape_node = Option.get (Graph.producer g reshaped) in
  Alcotest.(check bool) "ISVDOS -> ISDOS" true
    (Sod2.Rdp.category r reshape_node.Graph.nid = Op_class.Isdos)

let test_convergence_bounded () =
  List.iter
    (fun (sp : Zoo.spec) ->
      let g = sp.build () in
      let r = Sod2.Rdp.analyze g in
      if r.Sod2.Rdp.iterations >= 32 then
        Alcotest.failf "%s did not converge quickly (%d sweeps)" sp.name
          r.Sod2.Rdp.iterations)
    Zoo.all

let test_overrides () =
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = sp.build () in
  let input = List.hd (Graph.inputs g) in
  let r = Sod2.Rdp.analyze ~overrides:[ input, Shape.of_ints [ 1; 48 ] ] g in
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check bool) "concrete override yields fully-known output" true
    (Shape.is_fully_known (Sod2.Rdp.shape r out))

(* Agreement: the symbolic S-map, evaluated at a concrete valuation, must
   match the dims the executor actually produces — for every tensor the
   dry run materializes, on every model. *)
let test_symbolic_concrete_agreement () =
  List.iter
    (fun name ->
      let sp = Option.get (Zoo.by_name name) in
      let g = sp.build () in
      let c = Sod2.Pipeline.compile Profile.sd888_cpu g in
      let env = Zoo.percentile_env sp 0.25 in
      let trace =
        Sod2_runtime.Executor.run_dry ~gate:(Workload.fixed_gates 1) c
          ~input_dims:(Zoo.input_dims sp g env)
      in
      List.iter
        (fun (ge : Sod2_runtime.Executor.group_exec) ->
          List.iter
            (fun ((op : Op.t), _, _) -> ignore op)
            ge.Sod2_runtime.Executor.ops)
        trace.Sod2_runtime.Executor.steps;
      (* compare via graph outputs and all events *)
      List.iter
        (fun (e : Sod2_runtime.Executor.tensor_event) ->
          let tid = e.Sod2_runtime.Executor.te_tid in
          match Shape.eval env (Sod2.Rdp.shape c.Sod2.Pipeline.rdp tid) with
          | Some dims ->
            let expected = 4 * List.fold_left (fun a d -> a * max 1 d) 1 dims in
            if expected <> e.Sod2_runtime.Executor.te_bytes then
              Alcotest.failf "%s: t%d symbolic %d bytes vs executed %d" name tid
                expected e.Sod2_runtime.Executor.te_bytes
          | None -> () (* nac tensors have no symbolic size *))
        trace.Sod2_runtime.Executor.events)
    [ "codebert"; "yolov6"; "skipnet"; "stable-diffusion-encoder"; "conformer" ]

(* The same agreement as a property over random valuations on one model. *)
let prop_agreement_random_dims =
  QCheck2.Test.make ~name:"RDP shapes match execution at random extents" ~count:20
    QCheck2.Gen.(int_range 1 12)
    (fun step ->
      let sp = Option.get (Zoo.by_name "yolov6") in
      let g = Sod2_experiments.Harness.graph_of sp in
      let c = Sod2.Pipeline.compile Profile.sd888_cpu g in
      let hw = 224 + (32 * (step mod 6)) in
      let env = Env.of_list [ "H", hw; "W", hw ] in
      let trace =
        Sod2_runtime.Executor.run_dry c ~input_dims:(Zoo.input_dims sp g env)
      in
      List.for_all
        (fun (e : Sod2_runtime.Executor.tensor_event) ->
          match Shape.eval env (Sod2.Rdp.shape c.Sod2.Pipeline.rdp e.te_tid) with
          | Some dims -> 4 * List.fold_left (fun a d -> a * max 1 d) 1 dims = e.te_bytes
          | None -> true)
        trace.Sod2_runtime.Executor.events)

let test_deterministic () =
  (* the analysis is a pure function of the graph: two runs agree on every
     map entry *)
  let g = Sod2_experiments.Harness.graph_of (Option.get (Zoo.by_name "yolov6")) in
  let r1 = Sod2.Rdp.analyze g and r2 = Sod2.Rdp.analyze g in
  for tid = 0 to Graph.tensor_count g - 1 do
    if not (Shape.equal (Sod2.Rdp.shape r1 tid) (Sod2.Rdp.shape r2 tid)) then
      Alcotest.failf "S-map differs for t%d" tid;
    if not (Value_info.equal (Sod2.Rdp.value r1 tid) (Sod2.Rdp.value r2 tid)) then
      Alcotest.failf "V-map differs for t%d" tid
  done;
  Alcotest.(check int) "same sweeps" r1.Sod2.Rdp.iterations r2.Sod2.Rdp.iterations

(* Inputs with undefined dims get fresh symbol names; the counter is
   scoped per analysis, so two analyses of the same graph — in either
   order, even interleaved with other analyses — name them identically.
   (A process-global counter used to make every re-analysis produce
   different symbols, breaking reproducibility.) *)
let test_fresh_syms_reproducible () =
  let build () =
    let b = Graph.Builder.create () in
    let x =
      Graph.Builder.input b ~name:"x"
        (Shape.of_dims [ Dim.undef; Dim.of_int 4; Dim.undef ])
    in
    let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ x ] in
    Graph.Builder.set_outputs b [ y ];
    Graph.Builder.finish b
  in
  let g = build () in
  let r1 = Sod2.Rdp.analyze g in
  (* an unrelated analysis in between must not shift the names *)
  ignore (Sod2.Rdp.analyze (build ()));
  let r2 = Sod2.Rdp.analyze g in
  for tid = 0 to Graph.tensor_count g - 1 do
    Alcotest.(check string)
      (Printf.sprintf "t%d names agree" tid)
      (Shape.to_string (Sod2.Rdp.shape r1 tid))
      (Shape.to_string (Sod2.Rdp.shape r2 tid))
  done;
  (* the names themselves are deterministic, not merely consistent *)
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check string) "canonical names" "[_d1, 4, _d2]"
    (Shape.to_string (Sod2.Rdp.shape r1 out))

let test_stats () =
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = sp.build () in
  let r = Sod2.Rdp.analyze g in
  let s = Sod2.Rdp.stats g r in
  Alcotest.(check int) "accounted" s.Sod2.Rdp.n_tensors
    (s.Sod2.Rdp.known_const + s.Sod2.Rdp.symbolic + s.Sod2.Rdp.rank_only
    + s.Sod2.Rdp.unknown);
  Alcotest.(check bool) "symbolic dominates" true (s.Sod2.Rdp.symbolic > s.Sod2.Rdp.known_const)

let suite =
  [
    Alcotest.test_case "Fig 1a: ISDO value propagation" `Quick test_fig1a_shape_value_propagation;
    Alcotest.test_case "Fig 1b: ISDOS chain" `Quick test_fig1b_conv_chain;
    Alcotest.test_case "Fig 1c: execution-determined TopK" `Quick test_fig1c_topk_nac;
    Alcotest.test_case "Fig 1d: switch/combine merge" `Quick test_fig1d_switch_combine;
    Alcotest.test_case "Fig 3a: forward transfers" `Quick test_fig3a_forward;
    Alcotest.test_case "Fig 3b: backward transfers" `Quick test_fig3b_backward;
    Alcotest.test_case "context degrade (Reshape)" `Quick test_reshape_context_degrade;
    Alcotest.test_case "convergence bounded on the zoo" `Quick test_convergence_bounded;
    Alcotest.test_case "input-shape overrides" `Quick test_overrides;
    Alcotest.test_case "symbolic/concrete agreement" `Slow test_symbolic_concrete_agreement;
    Alcotest.test_case "analysis is deterministic" `Quick test_deterministic;
    Alcotest.test_case "fresh symbols reproducible" `Quick test_fresh_syms_reproducible;
    Alcotest.test_case "precision statistics" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_agreement_random_dims;
  ]
