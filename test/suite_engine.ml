(* Tests for the resident concurrent inference engine and the
   consolidated Executor.config record: concurrent mixed-binding traffic
   must be bit-identical to the reference interpreter, the shared plan
   cache must miss exactly once per distinct binding, and the deprecated
   entry points (optional args, Arena_exec) must keep their behavior. *)

module RT = Sod2_runtime

let cpu = Profile.sd888_cpu

(* Sub-recurrence stream over a symbolic batch dimension: every tensor has
   two consumers, so fusion stays out of the way and each step is one
   arena-planned kernel.  Small extents keep the suite fast. *)
let stream_graph ~steps ~cols () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "B"; Dim.of_int cols ])
  in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> 0.5 *. v) (Tensor.rand_uniform (Rng.create 17) [ cols ]))
  in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur ];
  Graph.Builder.finish b

let graph = stream_graph ~steps:8 ~cols:16 ()

let input_for bsz seed = [ 0, Tensor.rand_uniform (Rng.create seed) [ bsz; 16 ] ]

let bit_identical outs ref_outs =
  List.length outs = List.length ref_outs
  && List.for_all2
       (fun (ta, va) (tb, vb) ->
         ta = tb && Tensor.dims va = Tensor.dims vb
         && Tensor.data_f va = Tensor.data_f vb)
       outs ref_outs

let misses () = Profile.Counters.count ~profile:cpu.Profile.name ~kind:"plan-cache-miss"

let arena_config =
  { RT.Executor.default_config with RT.Executor.memory = RT.Executor.Mem_arena }

(* qcheck: K concurrent inferences with mixed shape bindings through the
   engine are bit-identical to Reference.run, and a fresh compile's plan
   cache misses exactly once per distinct binding no matter how many
   concurrent requests carry it. *)
let prop_concurrent_matches_reference =
  QCheck2.Test.make ~name:"engine: concurrent mixed bindings = reference, one miss per binding"
    ~count:15
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 2 14) (int_range 0 1000))
    (fun (workers, nreq, seed) ->
      let c = Sod2.Pipeline.compile cpu graph in
      let rng = Rng.create (3000 + seed) in
      let bindings = [ 3; 5; 8 ] in
      let reqs =
        List.init nreq (fun i ->
            let bsz = List.nth bindings (Rng.int rng (List.length bindings)) in
            let env = Env.of_list [ "B", bsz ] in
            let inputs = input_for bsz (seed + i) in
            env, inputs, RT.Reference.run graph ~inputs)
      in
      let distinct =
        List.sort_uniq compare (List.map (fun (env, _, _) -> Sod2.Pipeline.plan_key c env) reqs)
      in
      let m0 = misses () in
      let eng = RT.Engine.create ~workers ~max_batch:3 ~config:arena_config c in
      let tickets = List.map (fun (env, inputs, _) -> RT.Engine.submit eng ~env ~inputs) reqs in
      let results = List.map (RT.Engine.await eng) tickets in
      RT.Engine.shutdown eng;
      List.iter2
        (fun (_, _, reference) (r : RT.Engine.result) ->
          if not (bit_identical r.RT.Engine.outputs reference) then
            QCheck2.Test.fail_report "engine outputs differ from Reference.run")
        reqs results;
      if misses () - m0 <> List.length distinct then
        QCheck2.Test.fail_reportf "expected %d plan-cache misses, saw %d"
          (List.length distinct) (misses () - m0);
      true)

let test_stats_and_occupancy () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:2 ~max_batch:1 ~config:arena_config c in
  let n = 9 in
  let tickets =
    List.init n (fun i ->
        let bsz = if i mod 2 = 0 then 3 else 5 in
        RT.Engine.submit eng ~env:(Env.of_list [ "B", bsz ]) ~inputs:(input_for bsz i))
  in
  let results = List.map (RT.Engine.await eng) tickets in
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "submitted" n st.RT.Engine.submitted;
  Alcotest.(check int) "completed" n st.RT.Engine.completed;
  Alcotest.(check int) "failed" 0 st.RT.Engine.failed;
  Alcotest.(check int) "max_batch=1 disables batching" 0 st.RT.Engine.batched;
  Alcotest.(check int) "queue drained" 0 st.RT.Engine.queue_depth;
  Alcotest.(check int) "worker_runs sums to completed" n
    (Array.fold_left ( + ) 0 st.RT.Engine.worker_runs);
  List.iter
    (fun (r : RT.Engine.result) ->
      if r.RT.Engine.latency_us < 0.0 then Alcotest.fail "negative latency";
      if r.RT.Engine.worker < 0 || r.RT.Engine.worker >= 2 then
        Alcotest.fail "worker index out of range";
      if r.RT.Engine.batched then Alcotest.fail "batched result under max_batch=1")
    results;
  if st.RT.Engine.total_latency_us <= 0.0 then Alcotest.fail "no latency accounted";
  if st.RT.Engine.max_latency_us > st.RT.Engine.total_latency_us +. 1e-9 then
    Alcotest.fail "max latency exceeds total"

let test_failed_request_isolated () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~config:arena_config c in
  (* A broadcast-incompatible input ([3; 17] against the [16]-wide const
     row) makes the first kernel raise; the engine must record the
     failure, re-raise it from await, and keep serving. *)
  let bad =
    RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ])
      ~inputs:[ 0, Tensor.rand_uniform (Rng.create 1) [ 3; 17 ] ]
  in
  let raised = try ignore (RT.Engine.await eng bad); false with _ -> true in
  Alcotest.(check bool) "await re-raises the worker's exception" true raised;
  let good =
    RT.Engine.infer eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 42)
  in
  Alcotest.(check bool) "engine keeps serving after a failure" true
    (bit_identical good.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 3 42)));
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "failure counted" 1 st.RT.Engine.failed;
  Alcotest.(check int) "success counted" 1 st.RT.Engine.completed

let test_shutdown_semantics () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:2 ~config:arena_config c in
  let t = RT.Engine.submit eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 7) in
  (* Graceful drain: shutdown joins the workers only after the queue is
     empty, so the in-flight ticket must still complete. *)
  RT.Engine.shutdown eng;
  let r = RT.Engine.await eng t in
  Alcotest.(check bool) "queued request completed across shutdown" true
    (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 5 7)));
  RT.Engine.shutdown eng (* idempotent *);
  let rejected =
    try
      ignore (RT.Engine.submit eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 8));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "submit after shutdown raises Invalid_argument" true rejected

let test_config_parsing () =
  let roundtrip s =
    match RT.Executor.config_of_string s with
    | Error e -> Alcotest.failf "%s failed to parse: %s" s e
    | Ok cfg -> RT.Executor.config_to_string cfg
  in
  Alcotest.(check string) "default" "naive" (roundtrip "naive");
  Alcotest.(check string) "arena" "fused,arena" (roundtrip "fused,arena");
  Alcotest.(check string) "modifier order canonicalized" "blocked,arena,guarded"
    (roundtrip "blocked,guarded,arena");
  Alcotest.(check string) "all modifiers" "parallel,arena,guarded,all-paths"
    (roundtrip "parallel,arena,guarded,all-paths");
  Alcotest.(check string) "malloc is the default spelling" "naive" (roundtrip "naive,malloc");
  (match RT.Executor.config_of_string "turbo" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error _ -> ());
  (match RT.Executor.config_of_string "naive,warp" with
  | Ok _ -> Alcotest.fail "unknown modifier accepted"
  | Error _ -> ());
  Alcotest.(check bool) "default_config is the neutral element" true
    (RT.Executor.default_config = { RT.Executor.backend = RT.Backend.Naive;
                                    memory = RT.Executor.Mem_malloc; guarded = false;
                                    control = RT.Executor.Selected_only })

(* The config-driven entry points must agree with the historical
   optional-arg spellings they subsume. *)
let test_config_entry_points () =
  let c = Sod2.Pipeline.compile cpu graph in
  let env = Env.of_list [ "B", 5 ] in
  let inputs = input_for 5 11 in
  let reference = RT.Reference.run graph ~inputs in
  let _, plain = RT.Executor.run_real c ~inputs in
  Alcotest.(check bool) "plain run_real = reference" true (bit_identical plain reference);
  let _, cfg_arena =
    RT.Executor.run_real ~config:arena_config ~env c ~inputs
  in
  Alcotest.(check bool) "config arena run_real = reference" true
    (bit_identical cfg_arena reference);
  let _, cfg_guarded =
    RT.Executor.run_real
      ~config:{ arena_config with RT.Executor.guarded = true }
      ~env c ~inputs
  in
  Alcotest.(check bool) "config guarded run_real = reference" true
    (bit_identical cfg_guarded reference);
  let report =
    RT.Guarded_exec.run ~config:arena_config c ~env ~inputs
  in
  Alcotest.(check bool) "config Guarded_exec.run = reference" true
    (bit_identical report.RT.Guarded_exec.outputs reference);
  Alcotest.(check int) "guarded run is incident-free" 0
    (List.length report.RT.Guarded_exec.incidents);
  (* The deprecated Arena_exec alias still exposes the old record. *)
  let r = RT.Arena_exec.run c ~env ~inputs in
  Alcotest.(check bool) "Arena_exec alias = reference" true
    (bit_identical r.RT.Arena_exec.outputs reference);
  Alcotest.(check bool) "alias reports arena residency" true
    (r.RT.Arena_exec.arena_bytes > 0 && r.RT.Arena_exec.arena_resident > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_concurrent_matches_reference;
    Alcotest.test_case "stats and occupancy" `Quick test_stats_and_occupancy;
    Alcotest.test_case "failed request is isolated" `Quick test_failed_request_isolated;
    Alcotest.test_case "graceful shutdown" `Quick test_shutdown_semantics;
    Alcotest.test_case "config parsing" `Quick test_config_parsing;
    Alcotest.test_case "config entry points" `Quick test_config_entry_points;
  ]
