(* Tests for the resident concurrent inference engine and the
   consolidated Executor.config record: concurrent mixed-binding traffic
   must be bit-identical to the reference interpreter, the shared plan
   cache must miss exactly once per distinct binding, and the historical
   optional-arg entry points must keep their behavior. *)

module RT = Sod2_runtime

let cpu = Profile.sd888_cpu

(* Sub-recurrence stream over a symbolic batch dimension: every tensor has
   two consumers, so fusion stays out of the way and each step is one
   arena-planned kernel.  Small extents keep the suite fast. *)
let stream_graph ~steps ~cols () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "B"; Dim.of_int cols ])
  in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> 0.5 *. v) (Tensor.rand_uniform (Rng.create 17) [ cols ]))
  in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur ];
  Graph.Builder.finish b

let graph = stream_graph ~steps:8 ~cols:16 ()

let input_for bsz seed = [ 0, Tensor.rand_uniform (Rng.create seed) [ bsz; 16 ] ]

let bit_identical outs ref_outs =
  List.length outs = List.length ref_outs
  && List.for_all2
       (fun (ta, va) (tb, vb) ->
         ta = tb && Tensor.dims va = Tensor.dims vb
         && Tensor.data_f va = Tensor.data_f vb)
       outs ref_outs

let misses () = Profile.Counters.count ~profile:cpu.Profile.name ~kind:"plan-cache-miss"

let arena_config =
  { RT.Executor.default_config with RT.Executor.memory = RT.Executor.Mem_arena }

(* qcheck: K concurrent inferences with mixed shape bindings through the
   engine are bit-identical to Reference.run, and a fresh compile's plan
   cache misses exactly once per distinct binding no matter how many
   concurrent requests carry it. *)
let prop_concurrent_matches_reference =
  QCheck2.Test.make ~name:"engine: concurrent mixed bindings = reference, one miss per binding"
    ~count:15
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 2 14) (int_range 0 1000))
    (fun (workers, nreq, seed) ->
      let c = Sod2.Pipeline.compile cpu graph in
      let rng = Rng.create (3000 + seed) in
      let bindings = [ 3; 5; 8 ] in
      let reqs =
        List.init nreq (fun i ->
            let bsz = List.nth bindings (Rng.int rng (List.length bindings)) in
            let env = Env.of_list [ "B", bsz ] in
            let inputs = input_for bsz (seed + i) in
            env, inputs, RT.Reference.run graph ~inputs)
      in
      let distinct =
        List.sort_uniq compare (List.map (fun (env, _, _) -> Sod2.Pipeline.plan_key c env) reqs)
      in
      let m0 = misses () in
      let eng = RT.Engine.create ~workers ~max_batch:3 ~config:arena_config c in
      let tickets = List.map (fun (env, inputs, _) -> RT.Engine.submit eng ~env ~inputs) reqs in
      let results = List.map (RT.Engine.await eng) tickets in
      RT.Engine.shutdown eng;
      List.iter2
        (fun (_, _, reference) (r : RT.Engine.result) ->
          if not (bit_identical r.RT.Engine.outputs reference) then
            QCheck2.Test.fail_report "engine outputs differ from Reference.run")
        reqs results;
      if misses () - m0 <> List.length distinct then
        QCheck2.Test.fail_reportf "expected %d plan-cache misses, saw %d"
          (List.length distinct) (misses () - m0);
      true)

let test_stats_and_occupancy () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:2 ~max_batch:1 ~config:arena_config c in
  let n = 9 in
  let tickets =
    List.init n (fun i ->
        let bsz = if i mod 2 = 0 then 3 else 5 in
        RT.Engine.submit eng ~env:(Env.of_list [ "B", bsz ]) ~inputs:(input_for bsz i))
  in
  let results = List.map (RT.Engine.await eng) tickets in
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "submitted" n st.RT.Engine.submitted;
  Alcotest.(check int) "completed" n st.RT.Engine.completed;
  Alcotest.(check int) "failed" 0 st.RT.Engine.failed;
  Alcotest.(check int) "max_batch=1 disables batching" 0 st.RT.Engine.batched;
  Alcotest.(check int) "queue drained" 0 st.RT.Engine.queue_depth;
  Alcotest.(check int) "worker_runs sums to completed" n
    (Array.fold_left ( + ) 0 st.RT.Engine.worker_runs);
  List.iter
    (fun (r : RT.Engine.result) ->
      if r.RT.Engine.latency_us < 0.0 then Alcotest.fail "negative latency";
      if r.RT.Engine.worker < 0 || r.RT.Engine.worker >= 2 then
        Alcotest.fail "worker index out of range";
      if r.RT.Engine.batched then Alcotest.fail "batched result under max_batch=1")
    results;
  if st.RT.Engine.total_latency_us <= 0.0 then Alcotest.fail "no latency accounted";
  if st.RT.Engine.max_latency_us > st.RT.Engine.total_latency_us +. 1e-9 then
    Alcotest.fail "max latency exceeds total"

let test_failed_request_isolated () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~config:arena_config c in
  (* A broadcast-incompatible input ([3; 17] against the [16]-wide const
     row) makes the first kernel raise; the engine must record the
     failure, re-raise it from await, and keep serving. *)
  let bad =
    RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ])
      ~inputs:[ 0, Tensor.rand_uniform (Rng.create 1) [ 3; 17 ] ]
  in
  let raised = try ignore (RT.Engine.await eng bad); false with _ -> true in
  Alcotest.(check bool) "await re-raises the worker's exception" true raised;
  let good =
    RT.Engine.infer eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 42)
  in
  Alcotest.(check bool) "engine keeps serving after a failure" true
    (bit_identical good.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 3 42)));
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "failure counted" 1 st.RT.Engine.failed;
  Alcotest.(check int) "success counted" 1 st.RT.Engine.completed

let test_shutdown_semantics () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:2 ~config:arena_config c in
  let t = RT.Engine.submit eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 7) in
  (* Graceful drain: shutdown joins the workers only after the queue is
     empty, so the in-flight ticket must still complete. *)
  RT.Engine.shutdown eng;
  let r = RT.Engine.await eng t in
  Alcotest.(check bool) "queued request completed across shutdown" true
    (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 5 7)));
  RT.Engine.shutdown eng (* idempotent *);
  let rejected =
    try
      ignore (RT.Engine.submit eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 8));
      false
    with Sod2_error.Error e -> e.Sod2_error.cls = Sod2_error.Engine_error
  in
  Alcotest.(check bool) "submit after shutdown raises structured Engine_error" true
    rejected

let test_config_parsing () =
  let roundtrip s =
    match RT.Executor.config_of_string s with
    | Error e -> Alcotest.failf "%s failed to parse: %s" s e
    | Ok cfg -> RT.Executor.config_to_string cfg
  in
  Alcotest.(check string) "default" "naive" (roundtrip "naive");
  Alcotest.(check string) "arena" "fused,arena" (roundtrip "fused,arena");
  Alcotest.(check string) "modifier order canonicalized" "blocked,arena,guarded"
    (roundtrip "blocked,guarded,arena");
  Alcotest.(check string) "all modifiers" "parallel,arena,guarded,all-paths"
    (roundtrip "parallel,arena,guarded,all-paths");
  Alcotest.(check string) "malloc is the default spelling" "naive" (roundtrip "naive,malloc");
  (match RT.Executor.config_of_string "turbo" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error _ -> ());
  (match RT.Executor.config_of_string "naive,warp" with
  | Ok _ -> Alcotest.fail "unknown modifier accepted"
  | Error _ -> ());
  Alcotest.(check bool) "default_config is the neutral element" true
    (RT.Executor.default_config = { RT.Executor.backend = RT.Backend.Naive;
                                    memory = RT.Executor.Mem_malloc; guarded = false;
                                    control = RT.Executor.Selected_only;
                                    quant = false;
                                    compile = Sod2.Compile_opts.default })

(* The config-driven entry points must agree with the historical
   optional-arg spellings they subsume. *)
let test_config_entry_points () =
  let c = Sod2.Pipeline.compile cpu graph in
  let env = Env.of_list [ "B", 5 ] in
  let inputs = input_for 5 11 in
  let reference = RT.Reference.run graph ~inputs in
  let _, plain = RT.Executor.run_real c ~inputs in
  Alcotest.(check bool) "plain run_real = reference" true (bit_identical plain reference);
  let _, cfg_arena =
    RT.Executor.run_real ~config:arena_config ~env c ~inputs
  in
  Alcotest.(check bool) "config arena run_real = reference" true
    (bit_identical cfg_arena reference);
  let _, cfg_guarded =
    RT.Executor.run_real
      ~config:{ arena_config with RT.Executor.guarded = true }
      ~env c ~inputs
  in
  Alcotest.(check bool) "config guarded run_real = reference" true
    (bit_identical cfg_guarded reference);
  let report =
    RT.Guarded_exec.run ~config:arena_config c ~env ~inputs
  in
  Alcotest.(check bool) "config Guarded_exec.run = reference" true
    (bit_identical report.RT.Guarded_exec.outputs reference);
  Alcotest.(check int) "guarded run is incident-free" 0
    (List.length report.RT.Guarded_exec.incidents);
  (* One-shot arena execution on the Engine facade. *)
  let r = RT.Engine.run_arena c ~env ~inputs in
  Alcotest.(check bool) "Engine.run_arena = reference" true
    (bit_identical r.RT.Engine.outputs reference);
  Alcotest.(check bool) "run_arena reports arena residency" true
    (r.RT.Engine.arena_bytes > 0 && r.RT.Engine.arena_resident > 0)

(* ------------------------------------------------------------------ *)
(* Overload, deadlines, supervision, breaker (ISSUE 6)                 *)

let with_inject f body =
  RT.Engine.For_testing.inject := Some f;
  Fun.protect ~finally:(fun () -> RT.Engine.For_testing.inject := None) body

let error_class = function
  | Sod2_error.Error e -> Some e.Sod2_error.cls
  | _ -> None

let await_outcome eng t =
  match RT.Engine.await eng t with
  | r -> Ok r
  | exception e -> Error e

(* Wait (bounded) until the single worker has claimed everything queued,
   so subsequent submits deterministically see the queue state. *)
let spin_until_claimed eng =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if (RT.Engine.stats eng).RT.Engine.queue_depth > 0 then
      if Unix.gettimeofday () > deadline then Alcotest.fail "worker never claimed the queue"
      else begin
        Unix.sleepf 0.001;
        go ()
      end
  in
  go ()

(* Deadlined requests behind a stalled worker expire at dequeue instead of
   burning the worker, and await raises the structured Deadline_expired. *)
let test_deadline_expiry () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~config:arena_config c in
  with_inject (fun ~worker:_ ~plan_key:_ -> Unix.sleepf 0.02) @@ fun () ->
  let slow = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  let doomed =
    List.init 2 (fun i ->
        RT.Engine.submit eng ~deadline_us:5000.0 ~env:(Env.of_list [ "B", 3 ])
          ~inputs:(input_for 3 (2 + i)))
  in
  (match await_outcome eng slow with
  | Ok r ->
    Alcotest.(check bool) "undeadlined request completes" true
      (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 3 1)))
  | Error e -> Alcotest.failf "undeadlined request failed: %s" (Printexc.to_string e));
  List.iter
    (fun t ->
      match await_outcome eng t with
      | Ok _ -> Alcotest.fail "expired request completed"
      | Error e ->
        Alcotest.(check bool) "await raises Deadline_expired" true
          (error_class e = Some Sod2_error.Deadline_expired))
    doomed;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "expired counted" 2 st.RT.Engine.expired;
  Alcotest.(check int) "completed counted" 1 st.RT.Engine.completed;
  Alcotest.(check int) "conservation" st.RT.Engine.submitted
    (st.RT.Engine.completed + st.RT.Engine.failed + st.RT.Engine.shed
    + st.RT.Engine.rejected + st.RT.Engine.expired)

(* Reject policy: a full queue refuses the new request at submit with a
   structured Overload error; everything admitted still completes. *)
let test_queue_cap_reject () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng =
    RT.Engine.create ~workers:1 ~max_batch:1 ~queue_cap:2 ~overload:RT.Engine.Reject
      ~config:arena_config c
  in
  with_inject (fun ~worker:_ ~plan_key:_ -> Unix.sleepf 0.02) @@ fun () ->
  let r1 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  spin_until_claimed eng;
  let r2 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 2) in
  let r3 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 3) in
  let rejected =
    try
      ignore (RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 4));
      false
    with Sod2_error.Error e -> e.Sod2_error.cls = Sod2_error.Overload
  in
  Alcotest.(check bool) "4th submit rejected with Overload" true rejected;
  List.iter
    (fun t ->
      match await_outcome eng t with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "admitted request failed: %s" (Printexc.to_string e))
    [ r1; r2; r3 ];
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "rejected counted" 1 st.RT.Engine.rejected;
  Alcotest.(check int) "submitted includes the rejected one" 4 st.RT.Engine.submitted;
  Alcotest.(check int) "completed" 3 st.RT.Engine.completed

(* Shed_oldest policy: a full queue evicts its oldest entry, whose ticket
   settles failed with Overload; the newcomer is admitted and completes. *)
let test_queue_cap_shed () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng =
    RT.Engine.create ~workers:1 ~max_batch:1 ~queue_cap:2 ~overload:RT.Engine.Shed_oldest
      ~config:arena_config c
  in
  with_inject (fun ~worker:_ ~plan_key:_ -> Unix.sleepf 0.02) @@ fun () ->
  let r1 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  spin_until_claimed eng;
  let r2 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 2) in
  let r3 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 3) in
  let r4 = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 4) in
  (match await_outcome eng r2 with
  | Ok _ -> Alcotest.fail "shed victim completed"
  | Error e ->
    Alcotest.(check bool) "victim's await raises Overload" true
      (error_class e = Some Sod2_error.Overload));
  List.iter
    (fun t ->
      match await_outcome eng t with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "surviving request failed: %s" (Printexc.to_string e))
    [ r1; r3; r4 ];
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "shed counted" 1 st.RT.Engine.shed;
  Alcotest.(check int) "completed" 3 st.RT.Engine.completed;
  Alcotest.(check int) "nothing rejected" 0 st.RT.Engine.rejected

(* A worker that dies on an escaped exception fails its in-flight request
   with worker/key context, is respawned with a fresh arena/backend, and
   the replacement serves bit-identical results. *)
let test_crash_restart () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~restart_budget:3 ~config:arena_config c in
  let crashed = Atomic.make false in
  with_inject (fun ~worker:_ ~plan_key:_ ->
      if not (Atomic.exchange crashed true) then raise RT.Engine.For_testing.Crash_worker)
  @@ fun () ->
  let doomed = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  (match await_outcome eng doomed with
  | Ok _ -> Alcotest.fail "request on crashed worker completed"
  | Error (Sod2_error.Error e) ->
    Alcotest.(check bool) "crash failure is Engine_error" true
      (e.Sod2_error.cls = Sod2_error.Engine_error);
    Alcotest.(check bool) "carries worker context" true (e.Sod2_error.ctx.Sod2_error.worker = Some 0);
    Alcotest.(check bool) "carries plan-key context" true
      (e.Sod2_error.ctx.Sod2_error.key <> None)
  | Error e -> Alcotest.failf "unstructured crash error: %s" (Printexc.to_string e));
  let r = RT.Engine.infer eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 9) in
  Alcotest.(check bool) "replacement worker serves bit-identical results" true
    (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 5 9)));
  Alcotest.(check bool) "replacement run is not degraded" false r.RT.Engine.degraded;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "one restart" 1 st.RT.Engine.worker_restarts;
  Alcotest.(check int) "one failure" 1 st.RT.Engine.failed;
  Alcotest.(check int) "live worker survives" 1 st.RT.Engine.live_workers

(* Restart budget exhausted: the engine flips to degraded mode and keeps
   serving inline through the guarded fallback instead of deadlocking. *)
let test_degraded_mode () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~restart_budget:0 ~config:arena_config c in
  with_inject (fun ~worker:_ ~plan_key:_ -> raise RT.Engine.For_testing.Crash_worker)
  @@ fun () ->
  let doomed = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  (match await_outcome eng doomed with
  | Ok _ -> Alcotest.fail "request on crashed worker completed"
  | Error e ->
    Alcotest.(check bool) "crash failure is Engine_error" true
      (error_class e = Some Sod2_error.Engine_error));
  let r = RT.Engine.infer eng ~env:(Env.of_list [ "B", 5 ]) ~inputs:(input_for 5 4) in
  Alcotest.(check bool) "degraded-mode inference is bit-identical" true
    (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 5 4)));
  Alcotest.(check bool) "result marked degraded" true r.RT.Engine.degraded;
  Alcotest.(check int) "inline runs carry no worker id" (-1) r.RT.Engine.worker;
  let st = RT.Engine.stats eng in
  Alcotest.(check bool) "engine reports degraded" true st.RT.Engine.degraded;
  Alcotest.(check int) "no live workers" 0 st.RT.Engine.live_workers;
  Alcotest.(check bool) "degraded runs counted" true (st.RT.Engine.degraded_runs >= 1);
  RT.Engine.shutdown eng

(* Breaker lifecycle: K consecutive same-key failures trip it; while open,
   same-key requests run the guarded fallback (degraded = true); after the
   cooldown a probe on the normal path closes it again. *)
let test_breaker_cycle () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng =
    RT.Engine.create ~workers:1 ~breaker_threshold:2 ~breaker_cooldown_us:200_000.0
      ~config:arena_config c
  in
  let failing = Atomic.make true in
  with_inject (fun ~worker:_ ~plan_key:_ ->
      if Atomic.get failing then failwith "injected kernel fault")
  @@ fun () ->
  let env = Env.of_list [ "B", 3 ] in
  for i = 1 to 2 do
    match RT.Engine.infer eng ~env ~inputs:(input_for 3 i) with
    | _ -> Alcotest.fail "injected fault did not fail the request"
    | exception Sod2_error.Error _ -> ()
  done;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "breaker tripped after threshold" 1 st.RT.Engine.breaker_open;
  (* Open + inside cooldown: the fault is still armed, but the fallback
     path never consults it — the request completes, marked degraded. *)
  let r = RT.Engine.infer eng ~env ~inputs:(input_for 3 7) in
  Alcotest.(check bool) "open breaker routes through fallback" true r.RT.Engine.degraded;
  Alcotest.(check bool) "fallback output is bit-identical" true
    (bit_identical r.RT.Engine.outputs (RT.Reference.run graph ~inputs:(input_for 3 7)));
  (* Clear the fault, wait out the cooldown: the next request is the probe
     and closes the breaker; the one after runs the normal path. *)
  Atomic.set failing false;
  Unix.sleepf 0.25;
  let probe = RT.Engine.infer eng ~env ~inputs:(input_for 3 8) in
  Alcotest.(check bool) "successful probe runs the normal path" false
    probe.RT.Engine.degraded;
  let after = RT.Engine.infer eng ~env ~inputs:(input_for 3 9) in
  Alcotest.(check bool) "breaker closed after probe" false after.RT.Engine.degraded;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "no re-trip" 1 st.RT.Engine.breaker_open;
  Alcotest.(check int) "fallback run counted" 1 st.RT.Engine.degraded_runs

(* Single-redeem: the first await returns the result, the second raises a
   structured Engine_error instead of retaining outputs forever. *)
let test_single_redeem () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 ~config:arena_config c in
  let t = RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ]) ~inputs:(input_for 3 1) in
  ignore (RT.Engine.await eng t);
  let redeemed_twice =
    try
      ignore (RT.Engine.await eng t);
      false
    with Sod2_error.Error e -> e.Sod2_error.cls = Sod2_error.Engine_error
  in
  Alcotest.(check bool) "second await raises Engine_error" true redeemed_twice;
  (* Failed tickets stay re-raisable: both awaits must raise. *)
  let bad =
    RT.Engine.submit eng ~env:(Env.of_list [ "B", 3 ])
      ~inputs:[ 0, Tensor.rand_uniform (Rng.create 1) [ 3; 17 ] ]
  in
  let raises () = match await_outcome eng bad with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "failed ticket raises" true (raises ());
  Alcotest.(check bool) "failed ticket raises again" true (raises ());
  RT.Engine.shutdown eng

(* The acceptance-criteria storm: crash the worker on its first execution,
   flood the queue to 2x queue_cap with 10 ms deadlines.  The engine must
   not deadlock, must shed/expire the overflow with structured errors,
   must restart the worker, and every accepted request it completed must
   be bit-identical to Reference — with consistent stats. *)
let test_overload_crash_storm () =
  let c = Sod2.Pipeline.compile cpu graph in
  let queue_cap = 8 in
  let eng =
    RT.Engine.create ~workers:1 ~max_batch:4 ~queue_cap ~overload:RT.Engine.Shed_oldest
      ~restart_budget:2 ~breaker_threshold:1000 ~config:arena_config c
  in
  let calls = Atomic.make 0 in
  with_inject (fun ~worker:_ ~plan_key:_ ->
      if Atomic.fetch_and_add calls 1 = 0 then raise RT.Engine.For_testing.Crash_worker
      else Unix.sleepf 0.001)
  @@ fun () ->
  let n = 2 * queue_cap in
  let reqs =
    List.init n (fun i ->
        let bsz = if i mod 2 = 0 then 3 else 5 in
        let inputs = input_for bsz (100 + i) in
        inputs, RT.Reference.run graph ~inputs, Env.of_list [ "B", bsz ])
  in
  let tickets =
    List.map
      (fun (inputs, reference, env) ->
        RT.Engine.submit eng ~deadline_us:10_000.0 ~env ~inputs, reference)
      reqs
  in
  let completed = ref 0 in
  List.iter
    (fun (t, reference) ->
      match await_outcome eng t with
      | Ok r ->
        incr completed;
        if not (bit_identical r.RT.Engine.outputs reference) then
          Alcotest.fail "completed storm request differs from Reference"
      | Error (Sod2_error.Error e) ->
        if
          not
            (List.mem e.Sod2_error.cls
               [ Sod2_error.Overload; Sod2_error.Deadline_expired; Sod2_error.Engine_error ])
        then Alcotest.failf "unexpected error class %s" (Sod2_error.class_name e.Sod2_error.cls)
      | Error e -> Alcotest.failf "unstructured storm error: %s" (Printexc.to_string e))
    tickets;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "all submissions accounted" n st.RT.Engine.submitted;
  Alcotest.(check int) "conservation" st.RT.Engine.submitted
    (st.RT.Engine.completed + st.RT.Engine.failed + st.RT.Engine.shed
    + st.RT.Engine.rejected + st.RT.Engine.expired);
  Alcotest.(check int) "await-side view agrees" st.RT.Engine.completed !completed;
  Alcotest.(check bool) "overflow was shed" true (st.RT.Engine.shed > 0);
  Alcotest.(check bool) "crash failed its victim" true (st.RT.Engine.failed >= 1);
  Alcotest.(check int) "worker restarted once" 1 st.RT.Engine.worker_restarts;
  Alcotest.(check bool) "percentiles are monotone" true
    (st.RT.Engine.p50_latency_us <= st.RT.Engine.p95_latency_us
    && st.RT.Engine.p95_latency_us <= st.RT.Engine.p99_latency_us
    && st.RT.Engine.p99_latency_us <= st.RT.Engine.max_latency_us +. 1e-9)

(* qcheck: under a random fault schedule (request failures, worker
   crashes, stalls, deadlines, random cap/policy) every submission settles
   into exactly one of completed/failed/shed/rejected/expired and the
   latency percentiles stay ordered.  Awaiting every ticket doubles as the
   no-deadlock check. *)
let prop_conservation_under_faults =
  QCheck2.Test.make ~name:"engine: outcome conservation under random fault schedules"
    ~count:10
    QCheck2.Gen.(tup4 (int_range 1 2) (int_range 5 20) (int_range 2 5) (int_range 0 1000))
    (fun (workers, nreq, queue_cap, seed) ->
      let c = Sod2.Pipeline.compile cpu graph in
      let overload =
        match seed mod 3 with
        | 0 -> RT.Engine.Reject
        | 1 -> RT.Engine.Shed_oldest
        | _ -> RT.Engine.Block (Some 2_000.0)
      in
      let eng =
        RT.Engine.create ~workers ~max_batch:3 ~queue_cap ~overload ~restart_budget:16
          ~breaker_threshold:3 ~breaker_cooldown_us:1_000.0 ~config:arena_config c
      in
      let calls = Atomic.make 0 in
      RT.Engine.For_testing.inject :=
        Some
          (fun ~worker:_ ~plan_key:_ ->
            let n = Atomic.fetch_and_add calls 1 in
            if (n + seed) mod 11 = 0 then raise RT.Engine.For_testing.Crash_worker
            else if (n + seed) mod 5 = 0 then failwith "injected fault"
            else if (n + seed) mod 4 = 0 then Unix.sleepf 0.002);
      Fun.protect ~finally:(fun () -> RT.Engine.For_testing.inject := None) @@ fun () ->
      let tickets =
        List.filter_map
          (fun i ->
            let bsz = if i mod 2 = 0 then 3 else 5 in
            let deadline_us = if i mod 3 = 0 then Some 3_000.0 else None in
            match
              RT.Engine.submit eng ?deadline_us ~env:(Env.of_list [ "B", bsz ])
                ~inputs:(input_for bsz (seed + i))
            with
            | t -> Some t
            | exception Sod2_error.Error _ -> None)
          (List.init nreq Fun.id)
      in
      List.iter (fun t -> ignore (await_outcome eng t)) tickets;
      RT.Engine.shutdown eng;
      let st = RT.Engine.stats eng in
      if st.RT.Engine.submitted <> nreq then
        QCheck2.Test.fail_reportf "submitted %d, expected %d" st.RT.Engine.submitted nreq;
      let settled =
        st.RT.Engine.completed + st.RT.Engine.failed + st.RT.Engine.shed
        + st.RT.Engine.rejected + st.RT.Engine.expired
      in
      if settled <> st.RT.Engine.submitted then
        QCheck2.Test.fail_reportf
          "conservation violated: %d completed + %d failed + %d shed + %d rejected + %d \
           expired <> %d submitted"
          st.RT.Engine.completed st.RT.Engine.failed st.RT.Engine.shed
          st.RT.Engine.rejected st.RT.Engine.expired st.RT.Engine.submitted;
      if
        not
          (st.RT.Engine.p50_latency_us <= st.RT.Engine.p95_latency_us
          && st.RT.Engine.p95_latency_us <= st.RT.Engine.p99_latency_us
          && st.RT.Engine.p99_latency_us <= st.RT.Engine.max_latency_us +. 1e-9)
      then QCheck2.Test.fail_report "latency percentiles not monotone";
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_concurrent_matches_reference;
    Alcotest.test_case "stats and occupancy" `Quick test_stats_and_occupancy;
    Alcotest.test_case "failed request is isolated" `Quick test_failed_request_isolated;
    Alcotest.test_case "graceful shutdown" `Quick test_shutdown_semantics;
    Alcotest.test_case "config parsing" `Quick test_config_parsing;
    Alcotest.test_case "config entry points" `Quick test_config_entry_points;
    Alcotest.test_case "deadline expiry under a stalled worker" `Quick test_deadline_expiry;
    Alcotest.test_case "queue cap: reject policy" `Quick test_queue_cap_reject;
    Alcotest.test_case "queue cap: shed-oldest policy" `Quick test_queue_cap_shed;
    Alcotest.test_case "worker crash, restart, bit-identical" `Quick test_crash_restart;
    Alcotest.test_case "restart budget exhausted: degraded mode" `Quick test_degraded_mode;
    Alcotest.test_case "circuit breaker trip and cooldown" `Quick test_breaker_cycle;
    Alcotest.test_case "single-redeem tickets" `Quick test_single_redeem;
    Alcotest.test_case "overload + crash storm (acceptance)" `Quick test_overload_crash_storm;
    QCheck_alcotest.to_alcotest prop_conservation_under_faults;
  ]
