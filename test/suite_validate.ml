(* Tests for the graph validator and the hardened loading path: every zoo
   model must validate cleanly, hand-built malformed graphs must produce
   the right structured defects (all of them, not just the first), and
   malformed serialized graphs must come back as [Error _], never as an
   uncaught exception. *)

let dyn_shape = Shape.of_dims [ Dim.of_int 1; Dim.of_sym "H"; Dim.of_sym "W" ]
let i64_scalar v = Tensor.create_i [ 1 ] [| v |]

let classes_of = List.map (fun (e : Sod2_error.t) -> e.Sod2_error.cls)

let has_class cls errs = List.mem cls (classes_of errs)

let check_fails name expect g =
  match Validate.check g with
  | Ok () -> Alcotest.failf "%s: validator accepted a malformed graph" name
  | Error errs ->
    if not (has_class expect errs) then
      Alcotest.failf "%s: expected a %s defect, got:\n%s" name
        (Sod2_error.class_name expect) (Validate.report errs)

let test_zoo_models_valid () =
  List.iter
    (fun (sp : Zoo.spec) ->
      match Validate.check (sp.Zoo.build ()) with
      | Ok () -> ()
      | Error errs ->
        Alcotest.failf "%s: valid model rejected:\n%s" sp.Zoo.name
          (Validate.report errs))
    Zoo.all

let test_dangling_output () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ x ] in
  Graph.Builder.set_outputs b [ y; 99 ];
  check_fails "dangling output" Sod2_error.Invalid_graph
    (Graph.Builder.finish_unchecked b)

let test_arity_mismatch () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let y = Graph.Builder.node1 b (Op.Binary Op.Add) [ x ] in
  Graph.Builder.set_outputs b [ y ];
  check_fails "arity" Sod2_error.Arity_mismatch (Graph.Builder.finish_unchecked b)

let test_unpaired_switch () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let pred = Graph.Builder.const b ~name:"pred" (i64_scalar 0) in
  let outs = Graph.Builder.node b (Op.Switch { branches = 2 }) [ x; pred ] in
  let b0 = List.nth outs 0 in
  (* branch 1 is neither consumed nor a graph output: unpaired *)
  let y = Graph.Builder.node1 b (Op.Unary Op.Relu) [ b0 ] in
  Graph.Builder.set_outputs b [ y ];
  check_fails "unpaired Switch" Sod2_error.Invalid_graph
    (Graph.Builder.finish_unchecked b)

let test_combine_without_switch () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let pred = Graph.Builder.const b ~name:"pred" (i64_scalar 0) in
  let y = Graph.Builder.node1 b (Op.Combine { branches = 2 }) [ x; x; pred ] in
  Graph.Builder.set_outputs b [ y ];
  check_fails "Combine without Switch" Sod2_error.Invalid_graph
    (Graph.Builder.finish_unchecked b)

let test_dtype_mismatch () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  (* a Reshape target shape must be an integer tensor; feed it floats *)
  let shp = Graph.Builder.const b ~name:"shape" (Tensor.create_f [ 2 ] [| 1.0; -1.0 |]) in
  let y = Graph.Builder.node1 b Op.Reshape [ x; shp ] in
  Graph.Builder.set_outputs b [ y ];
  check_fails "f32 shape operand" Sod2_error.Dtype_mismatch
    (Graph.Builder.finish_unchecked b)

let test_collects_every_defect () =
  (* one graph, three independent defects: the validator must report all *)
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let y = Graph.Builder.node1 b (Op.Binary Op.Mul) [ x ] in
  let pred = Graph.Builder.const b ~name:"pred" (i64_scalar 0) in
  let z = Graph.Builder.node1 b (Op.Combine { branches = 2 }) [ y; y; pred ] in
  Graph.Builder.set_outputs b [ z; 123 ];
  match Validate.check (Graph.Builder.finish_unchecked b) with
  | Ok () -> Alcotest.fail "three-defect graph accepted"
  | Error errs ->
    let classes = classes_of errs in
    Alcotest.(check bool) "arity defect" true
      (List.mem Sod2_error.Arity_mismatch classes);
    Alcotest.(check bool) "dangling output defect" true
      (List.mem Sod2_error.Invalid_graph classes);
    Alcotest.(check bool) "at least three defects" true (List.length errs >= 3)

let test_pipeline_rejects_malformed () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" dyn_shape in
  let y = Graph.Builder.node1 b (Op.Binary Op.Add) [ x ] in
  Graph.Builder.set_outputs b [ y ];
  let g = Graph.Builder.finish_unchecked b in
  let cpu = Option.get (Profile.by_name "sd888-cpu") in
  (try
     ignore (Sod2.Pipeline.compile cpu g);
     Alcotest.fail "Pipeline.compile accepted a malformed graph"
   with Sod2_error.Error _ -> ());
  match Sod2.Pipeline.compile_checked cpu g with
  | Ok _ -> Alcotest.fail "Pipeline.compile_checked accepted a malformed graph"
  | Error errs -> Alcotest.(check bool) "defects reported" true (errs <> [])

let test_malformed_text_is_error () =
  (* undefined tensor reference, bad op, truncated file: each must come
     back as [Error _], never as an exception *)
  List.iter
    (fun (name, text) ->
      match Graph_io.of_string text with
      | Ok _ -> Alcotest.failf "%s: malformed text accepted" name
      | Error msg -> Alcotest.(check bool) name true (String.length msg > 0)
      | exception e ->
        Alcotest.failf "%s: uncaught exception %s" name (Printexc.to_string e))
    [
      ( "undefined input tensor",
        "(sod2-graph 1)\n(input 0 x (shape 1 4))\n\
         (node (op relu) (name r) (inputs 7) (outputs 1))\n(outputs 1)\n" );
      ( "unknown op",
        "(sod2-graph 1)\n(input 0 x (shape 1 4))\n\
         (node (op frobnicate) (name r) (inputs 0) (outputs 1))\n(outputs 1)\n" );
      "truncated", "(sod2-graph 1)\n(input 0 x (shape 1 4))\n";
      "garbage", "hello world\n";
      ( "arity violation in file",
        "(sod2-graph 1)\n(input 0 x (shape 1 4))\n\
         (node (op add) (name a) (inputs 0) (outputs 1))\n(outputs 1)\n" );
    ]

let suite =
  [
    Alcotest.test_case "zoo models validate" `Quick test_zoo_models_valid;
    Alcotest.test_case "dangling output" `Quick test_dangling_output;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "unpaired Switch" `Quick test_unpaired_switch;
    Alcotest.test_case "Combine without Switch" `Quick test_combine_without_switch;
    Alcotest.test_case "dtype mismatch" `Quick test_dtype_mismatch;
    Alcotest.test_case "collects every defect" `Quick test_collects_every_defect;
    Alcotest.test_case "pipeline rejects malformed" `Quick test_pipeline_rejects_malformed;
    Alcotest.test_case "malformed text is Error" `Quick test_malformed_text_is_error;
  ]
