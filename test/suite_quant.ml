(* Int8 quantization: fixed-point requantization primitives, bit-exact
   equivalence of the fused packed kernels against the independent scalar
   reference in {!Reference}, scheme round-trips, and the saturating cast
   boundaries.

   The load-bearing property: [Blocked.gemm_i8]'s SWAR micro-kernel +
   row/column-sum zero-point correction + fused requantize epilogue must
   agree bit-for-bit with [Reference.gemm_i8_acc] + [Reference.requantize]
   — two independent transcriptions of the same integer math — across
   random shapes, scales and zero points. *)

module RT = Sod2_runtime

let i8_gen = QCheck2.Gen.int_range (-128) 127

let i8_tensor_gen dims =
  let n = max 1 (List.fold_left ( * ) 1 dims) in
  QCheck2.Gen.map
    (fun l -> Tensor.of_ints Tensor.I8 dims (Array.of_list l))
    (QCheck2.Gen.list_size (QCheck2.Gen.return n) i8_gen)

(* A positive multiplier spanning both shift directions of
   quantize_multiplier (requant multipliers below AND above 1). *)
let multiplier_gen = QCheck2.Gen.(map (fun x -> Float.exp x) (float_range (-6.0) 3.0))

(* ------------------------------------------------------------------ *)
(* Fixed-point primitives                                              *)

let test_srdhm_corners () =
  let i32min = -0x80000000 and i32max = 0x7FFFFFFF in
  Alcotest.(check int) "int32_min * int32_min saturates" i32max (Quant.srdhm i32min i32min);
  Alcotest.(check int) "zero" 0 (Quant.srdhm 0 i32max);
  Alcotest.(check int) "identity-ish: a * 2^30 halves" (1 lsl 20)
    (Quant.srdhm (1 lsl 21) (1 lsl 30));
  (* 3 * 2^29 doubled-high-mul: 2·(3·2^29·x)/2^32 *)
  Alcotest.(check int) "rounding, positive" 3 (Quant.srdhm (1 lsl 31 / 2 * 3) (1 lsl 1));
  Alcotest.(check int) "negative operand" (-(1 lsl 20))
    (Quant.srdhm (-(1 lsl 21)) (1 lsl 30))

let test_rdbpot () =
  Alcotest.(check int) "exact" 5 (Quant.rounding_divide_by_pot 20 2);
  Alcotest.(check int) "round up at half" 3 (Quant.rounding_divide_by_pot 10 2);
  Alcotest.(check int) "round down below half" 2 (Quant.rounding_divide_by_pot 9 2);
  Alcotest.(check int) "negative tie rounds away from zero" (-3)
    (Quant.rounding_divide_by_pot (-10) 2);
  Alcotest.(check int) "negative round toward zero below tie" (-2)
    (Quant.rounding_divide_by_pot (-9) 2);
  Alcotest.(check int) "negative round" (-3) (Quant.rounding_divide_by_pot (-11) 2);
  Alcotest.(check int) "zero exponent" 7 (Quant.rounding_divide_by_pot 7 0)

let prop_quantize_multiplier_reconstructs =
  QCheck2.Test.make ~name:"quantize_multiplier reconstructs the real multiplier"
    ~count:500 multiplier_gen (fun m ->
      let qm, shift = Quant.quantize_multiplier m in
      qm >= 1 lsl 30
      && qm < 1 lsl 31
      &&
      let recon = float_of_int qm *. Float.ldexp 1.0 (shift - 31) in
      Float.abs (recon -. m) <= m *. 1e-9 +. Float.ldexp 1.0 (shift - 31))

let prop_requantize_matches_reference =
  (* The two independent transcriptions of the gemmlowp spec must agree
     on every (multiplier, zero point, accumulator). *)
  QCheck2.Test.make ~name:"Quant.requantize_one == Reference.requantize" ~count:2000
    QCheck2.Gen.(
      tup3 multiplier_gen (int_range (-128) 127) (int_range (-(1 lsl 24)) (1 lsl 24)))
    (fun (m, zp, acc) ->
      let rq = Quant.requant_of_multiplier ~multiplier:m ~zp in
      Quant.requantize_one rq acc
      = RT.Reference.requantize ~qm:rq.Quant.qm ~shift:rq.Quant.shift ~zp acc)

(* ------------------------------------------------------------------ *)
(* Fused int8 GEMM vs scalar reference                                 *)

let requant_gemm_case ~m ~n ~k ~za ~zb ~mult ~zp_out a b =
  (* fused: packed kernel + requantize epilogue in the write-back *)
  let rq = Quant.requant_of_multiplier ~multiplier:mult ~zp:zp_out in
  let c = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
  Blocked.gemm_i8 ~za ~zb
    ~epilogue:(fun _ acc -> Quant.requantize_one rq acc)
    ~m ~n ~k ~a:(Tensor.storage_i8 a) ~ao:0 ~b:(Tensor.storage_i8 b) ~bo:0 ~c ~co:0 ();
  (* reference: direct loops + independent scalar requantizer *)
  let accs = RT.Reference.gemm_i8_acc ~za ~zb ~m ~n ~k a b in
  let ok = ref true in
  for i = 0 to (m * n) - 1 do
    let expect =
      RT.Reference.requantize ~qm:rq.Quant.qm ~shift:rq.Quant.shift ~zp:zp_out accs.(i)
    in
    if Bigarray.Array1.get c i <> expect then ok := false
  done;
  !ok

let prop_gemm_i8_bit_exact =
  QCheck2.Test.make
    ~name:"fused int8 gemm+requantize bit-exact vs scalar reference" ~count:120
    QCheck2.Gen.(
      tup6 (int_range 1 40) (int_range 1 40) (int_range 1 60)
        (tup2 i8_gen i8_gen) multiplier_gen (int_range (-128) 127))
    (fun (m, n, k, (za, zb), mult, zp_out) ->
      let seed = (m * 7919) + (n * 104729) + k in
      let rng = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
      let a = rng (i8_tensor_gen [ m; k ]) and b = rng (i8_tensor_gen [ k; n ]) in
      requant_gemm_case ~m ~n ~k ~za ~zb ~mult ~zp_out a b)

let prop_gemm_i8_matches_naive =
  (* Third derivation: the Tiny-class scalar kernel in Linalg subtracts
     zero points inline instead of using the sum correction. *)
  QCheck2.Test.make ~name:"packed int8 gemm matches inline-zp naive kernel" ~count:80
    QCheck2.Gen.(tup4 (int_range 1 33) (int_range 1 33) (int_range 1 48) (tup2 i8_gen i8_gen))
    (fun (m, n, k, (za, zb)) ->
      let rng = QCheck2.Gen.generate1 ~rand:(Random.State.make [| m + (n * 977) + k |]) in
      let a = rng (i8_tensor_gen [ m; k ]) and b = rng (i8_tensor_gen [ k; n ]) in
      let rq = Quant.requant_of_multiplier ~multiplier:0.05 ~zp:3 in
      let ep _ acc = Quant.requantize_one rq acc in
      let c1 = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
      let c2 = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
      Blocked.gemm_i8 ~za ~zb ~epilogue:ep ~m ~n ~k ~a:(Tensor.storage_i8 a) ~ao:0
        ~b:(Tensor.storage_i8 b) ~bo:0 ~c:c1 ~co:0 ();
      Linalg.gemm_i8_naive ~za ~zb ~epilogue:ep ~m ~n ~k ~a:(Tensor.storage_i8 a)
        ~ao:0 ~b:(Tensor.storage_i8 b) ~bo:0 ~c:c2 ~co:0 ();
      let ok = ref true in
      for i = 0 to (m * n) - 1 do
        if Bigarray.Array1.get c1 i <> Bigarray.Array1.get c2 i then ok := false
      done;
      !ok)

let prop_gemm_i8_per_channel =
  (* Per-channel requantization: one multiplier/zero-point per output row
     (the conv output-channel layout), applied through the epilogue's
     destination-relative index. *)
  QCheck2.Test.make ~name:"per-channel requant epilogue bit-exact" ~count:80
    QCheck2.Gen.(tup4 (int_range 1 24) (int_range 1 24) (int_range 1 48) (tup2 i8_gen i8_gen))
    (fun (m, n, k, (za, zb)) ->
      let st = Random.State.make [| (m * 31) + n + (k * 1009) |] in
      let rng = QCheck2.Gen.generate1 ~rand:st in
      let a = rng (i8_tensor_gen [ m; k ]) and b = rng (i8_tensor_gen [ k; n ]) in
      let rqs =
        Array.init m (fun _ ->
            Quant.requant_of_multiplier
              ~multiplier:(Float.exp (Random.State.float st 6.0 -. 4.0))
              ~zp:(Random.State.int st 255 - 128))
      in
      let c = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
      Blocked.gemm_i8 ~za ~zb
        ~epilogue:(fun ei acc -> Quant.requantize_one rqs.(ei / n) acc)
        ~m ~n ~k ~a:(Tensor.storage_i8 a) ~ao:0 ~b:(Tensor.storage_i8 b) ~bo:0 ~c
        ~co:0 ();
      let accs = RT.Reference.gemm_i8_acc ~za ~zb ~m ~n ~k a b in
      let ok = ref true in
      for i = 0 to (m * n) - 1 do
        let rq = rqs.(i / n) in
        let expect =
          RT.Reference.requantize ~qm:rq.Quant.qm ~shift:rq.Quant.shift
            ~zp:rq.Quant.zp accs.(i)
        in
        if Bigarray.Array1.get c i <> expect then ok := false
      done;
      !ok)

let test_saturation_rails () =
  (* A huge multiplier drives every nonzero accumulator into a rail; both
     rails must actually be hit (and nothing may escape them). *)
  let m = 4 and n = 6 and k = 8 in
  let a =
    (* row parity decides the accumulator's sign, so both rails appear *)
    Tensor.of_ints Tensor.I8 [ m; k ]
      (Array.init (m * k) (fun i -> if i / k mod 2 = 0 then 127 else -128))
  in
  let b = Tensor.of_ints Tensor.I8 [ k; n ] (Array.make (k * n) 127) in
  let rq = Quant.requant_of_multiplier ~multiplier:1000.0 ~zp:0 in
  let c = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
  Blocked.gemm_i8 ~za:0 ~zb:0
    ~epilogue:(fun _ acc -> Quant.requantize_one rq acc)
    ~m ~n ~k ~a:(Tensor.storage_i8 a) ~ao:0 ~b:(Tensor.storage_i8 b) ~bo:0 ~c ~co:0 ();
  let hi = ref false and lo = ref false in
  for i = 0 to (m * n) - 1 do
    let v = Bigarray.Array1.get c i in
    if v = 127 then hi := true;
    if v = -128 then lo := true;
    if v <> 127 && v <> -128 then
      Alcotest.failf "element %d escaped the rails: %d" i v
  done;
  Alcotest.(check bool) "positive rail hit" true !hi;
  Alcotest.(check bool) "negative rail hit" true !lo

(* ------------------------------------------------------------------ *)
(* Quantized conv vs scalar reference                                  *)

let conv_i8_case ~stride ~pad ~dilation ~groups ~zx ~zw xdims wdims seed =
  let rng = QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) in
  let x = rng (i8_tensor_gen xdims) and w = rng (i8_tensor_gen wdims) in
  let accs, odims =
    RT.Reference.conv2d_i8_acc ~zx ~zw ~stride ~pad ~dilation ~groups x w
  in
  let out_n = List.fold_left ( * ) 1 odims in
  let rq = Quant.requant_of_multiplier ~multiplier:0.02 ~zp:(-5) in
  let c = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout out_n in
  let odims' =
    Blocked.conv2d_i8_into ~zx ~zw
      ~epilogue:(fun _ acc -> Quant.requantize_one rq acc)
      ~stride ~pad ~dilation ~groups ~x:(Tensor.storage_i8 x) ~xoff:0
      ~xdims:(Tensor.dims_arr x) ~w:(Tensor.storage_i8 w) ~woff:0
      ~wdims:(Tensor.dims_arr w) ~c ~co:0 ()
  in
  Alcotest.(check (list int)) "output dims" odims odims';
  for i = 0 to out_n - 1 do
    let expect =
      RT.Reference.requantize ~qm:rq.Quant.qm ~shift:rq.Quant.shift ~zp:rq.Quant.zp
        accs.(i)
    in
    if Bigarray.Array1.get c i <> expect then
      Alcotest.failf "conv element %d: fused %d vs reference %d" i
        (Bigarray.Array1.get c i) expect
  done

let test_conv_i8_basic () =
  conv_i8_case ~stride:(1, 1) ~pad:(1, 1, 1, 1) ~dilation:(1, 1) ~groups:1 ~zx:7
    ~zw:0 [ 2; 3; 9; 9 ] [ 4; 3; 3; 3 ] 42

let test_conv_i8_strided_grouped () =
  conv_i8_case ~stride:(2, 2) ~pad:(0, 1, 0, 1) ~dilation:(1, 1) ~groups:2 ~zx:(-3)
    ~zw:2 [ 1; 4; 11; 13 ] [ 6; 2; 3; 2 ] 7

let test_conv_i8_dilated () =
  conv_i8_case ~stride:(1, 1) ~pad:(2, 2, 2, 2) ~dilation:(2, 2) ~groups:1 ~zx:11
    ~zw:(-1) [ 1; 2; 12; 12 ] [ 3; 2; 3; 3 ] 99

let test_gemm_i8_dequant () =
  (* The float write-back variant: epilogue dequantizes with a plain
     float scale; exactness holds because each acc is an integer and the
     reference applies the identical float op. *)
  let m = 9 and n = 14 and k = 21 in
  let rng = QCheck2.Gen.generate1 ~rand:(Random.State.make [| 5 |]) in
  let a = rng (i8_tensor_gen [ m; k ]) and b = rng (i8_tensor_gen [ k; n ]) in
  let za = 4 and zb = -9 in
  let scale = 0.0125 in
  let c = Tensor.fbuf_create Tensor.F32 (m * n) in
  Blocked.gemm_i8_dequant ~za ~zb
    ~epilogue:(fun _ acc -> float_of_int acc *. scale)
    ~m ~n ~k ~a:(Tensor.storage_i8 a) ~ao:0 ~b:(Tensor.storage_i8 b) ~bo:0 ~c ~co:0 ();
  let accs = RT.Reference.gemm_i8_acc ~za ~zb ~m ~n ~k a b in
  for i = 0 to (m * n) - 1 do
    let expect = Tensor.round_f32 (float_of_int accs.(i) *. scale) in
    if Tensor.fbuf_get c i <> expect then
      Alcotest.failf "dequant element %d: %h vs %h" i (Tensor.fbuf_get c i) expect
  done

(* ------------------------------------------------------------------ *)
(* Schemes and casts                                                   *)

let test_scheme_round_trip () =
  let rng = Rng.create 11 in
  let t = Tensor.rand_uniform rng [ 5; 7 ] in
  let s = Quant.choose_per_tensor t in
  let qt = Quant.quantize t s in
  Alcotest.(check bool) "payload is i8" true (Tensor.dtype qt.Quant.q = Tensor.I8);
  let back = Quant.dequantize qt in
  let scale = Quant.scale_of s in
  Array.iteri
    (fun i v ->
      let r = (Tensor.data_f back).(i) in
      if Float.abs (v -. r) > (scale /. 2.0) +. 1e-6 then
        Alcotest.failf "round-trip error at %d: %g vs %g (scale %g)" i v r scale)
    (Tensor.data_f t)

let test_scheme_per_channel () =
  (* Per-channel on a tensor whose channels differ by orders of magnitude:
     per-tensor would crush the small channel to zero, per-channel must
     keep its round-trip error at its own scale. *)
  let t =
    Tensor.init_f [ 2; 4 ] (fun ix -> if ix.(0) = 0 then 100.0 else 0.01 *. float_of_int (1 + ix.(1)))
  in
  let s = Quant.choose_per_channel ~axis:0 t in
  let scales = Quant.channel_scales s in
  Alcotest.(check int) "two channels" 2 (Array.length scales);
  let back = Quant.dequantize (Quant.quantize t s) in
  Array.iteri
    (fun i v ->
      let r = (Tensor.data_f back).(i) in
      let sc = scales.(i / 4) in
      if Float.abs (v -. r) > (sc /. 2.0) +. 1e-9 then
        Alcotest.failf "per-channel round-trip at %d: %g vs %g" i v r)
    (Tensor.data_f t)

let test_cast_boundaries () =
  (* The saturating cast satellite: i8 → float → i8 round-trips exactly
     at the rails, NaN lands on 0, out-of-range floats clamp, i8 → i64
     widens losslessly and i64 → i8 saturates. *)
  let i8 = Tensor.of_ints Tensor.I8 [ 4 ] [| -128; -1; 0; 127 |] in
  let there = Tensor.cast i8 Tensor.F32 in
  Alcotest.(check bool) "i8→f32→i8 round-trip" true
    (Tensor.equal i8 (Tensor.cast there Tensor.I8));
  let wide = Tensor.cast i8 Tensor.I64 in
  Alcotest.(check bool) "i8→i64 widens" true
    (Tensor.to_int_list wide = [ -128; -1; 0; 127 ]);
  Alcotest.(check bool) "i8→i64→i8 round-trip" true
    (Tensor.equal i8 (Tensor.cast wide Tensor.I8));
  let f = Tensor.create_f [ 5 ] [| Float.nan; 200.0; -300.0; 126.6; -128.9 |] in
  Alcotest.(check bool) "f32→i8 saturates (NaN→0, clamps, truncates)" true
    (Tensor.to_int_list (Tensor.cast (Tensor.cast f Tensor.I8) Tensor.I64)
    = [ 0; 127; -128; 126; -128 ]);
  let big = Tensor.create_i [ 3 ] [| 1000; -1000; 12 |] in
  Alcotest.(check bool) "i64→i8 saturates" true
    (Tensor.to_int_list (Tensor.cast big Tensor.I8) = [ 127; -128; 12 ])

(* ------------------------------------------------------------------ *)
(* End-to-end: quantized execution through the compiled artifact        *)

let cpu = Profile.sd888_cpu

let counter_count kind =
  Option.value ~default:0 (List.assoc_opt kind (Profile.Counters.by_kind ()))

(* Dynamic-range int8 is lossy by design, so the end-to-end checks bound
   the deviation from the float artifact rather than demanding equality:
   per element, within a few percent of the output's dynamic range. *)
let check_close ~what ~tol expect got =
  let de = Tensor.data_f expect and dg = Tensor.data_f got in
  Alcotest.(check int) (what ^ ": same numel") (Array.length de) (Array.length dg);
  let maxab = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1e-6 de in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. dg.(i)) > tol *. maxab then
        Alcotest.failf "%s: element %d deviates %g vs %g (range %g)" what i v dg.(i)
          maxab)
    de

let matmul_relu_graph rng ~m ~k ~n =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_int m; Dim.of_int k ])
  in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_normal rng [ k; n ]) in
  let y = Graph.Builder.node1 b Op.MatMul [ x; w ] in
  let r = Graph.Builder.node1 b (Op.Unary Op.Relu) [ y ] in
  Graph.Builder.set_outputs b [ r ];
  x, Graph.Builder.finish b

let test_pipeline_quant_matmul () =
  let rng = Rng.create 42 in
  let m, k, n = 7, 33, 12 in
  let x, g = matmul_relu_graph rng ~m ~k ~n in
  let c = Sod2.Pipeline.compile ~quant:true cpu g in
  Alcotest.(check int) "one weight quantized at compile" 1
    (Hashtbl.length c.Sod2.Pipeline.quant_weights);
  Alcotest.(check bool) "artifact is flagged" true c.Sod2.Pipeline.quant;
  let inputs = [ x, Tensor.rand_uniform rng [ m; k ] ] in
  (* Same artifact, quant off: bit-exact float semantics for the baseline. *)
  let _, float_outs = RT.Executor.run_real c ~inputs in
  Profile.Counters.reset ();
  let cfg =
    { RT.Executor.default_config with backend = RT.Backend.Blocked; quant = true }
  in
  let _, q_outs = RT.Executor.run_real ~config:cfg c ~inputs in
  Alcotest.(check bool) "int8 kernel engaged" true (counter_count "quant-kernel" > 0);
  List.iter2
    (fun (_, ft) (_, qt) -> check_close ~what:"matmul+relu" ~tol:0.05 ft qt)
    float_outs q_outs

let test_pipeline_quant_conv_arena () =
  let rng = Rng.create 43 in
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 4; Dim.of_int 8; Dim.of_int 8 ])
  in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_normal rng [ 6; 4; 3; 3 ]) in
  let bias = Graph.Builder.const b ~name:"b" (Tensor.rand_normal rng [ 6 ]) in
  let y =
    Graph.Builder.node1 b
      (Op.Conv { stride = (1, 1); pads = (1, 1, 1, 1); dilation = (1, 1); groups = 1 })
      [ x; w; bias ]
  in
  let r = Graph.Builder.node1 b (Op.Unary Op.Relu) [ y ] in
  Graph.Builder.set_outputs b [ r ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile ~quant:true cpu g in
  let inputs = [ x, Tensor.rand_uniform rng [ 1; 4; 8; 8 ] ] in
  let _, float_outs = RT.Executor.run_real c ~inputs in
  (* The full CLI spelling, arena memory included: per-channel conv + bias
     epilogue must survive the dest-store path. *)
  let cfg =
    match RT.Executor.config_of_string "blocked,arena,int8" with
    | Ok cfg -> cfg
    | Error e -> Alcotest.fail e
  in
  Profile.Counters.reset ();
  let _, q_outs = RT.Executor.run_real ~config:cfg ~env:Env.empty c ~inputs in
  Alcotest.(check bool) "int8 kernel engaged" true (counter_count "quant-kernel" > 0);
  List.iter2
    (fun (_, ft) (_, qt) -> check_close ~what:"conv+bias+relu" ~tol:0.05 ft qt)
    float_outs q_outs

let test_config_int8_syntax () =
  (match RT.Executor.config_of_string "blocked,arena,int8" with
  | Ok cfg ->
    Alcotest.(check bool) "int8 parses to quant" true cfg.RT.Executor.quant;
    Alcotest.(check string) "canonical rendering round-trips" "blocked,arena,int8"
      (RT.Executor.config_to_string cfg);
    Alcotest.(check bool) "degraded drops quant" false
      (RT.Executor.degraded cfg).RT.Executor.quant
  | Error e -> Alcotest.fail e);
  match RT.Executor.config_of_string "naive" with
  | Ok cfg -> Alcotest.(check bool) "quant defaults off" false cfg.RT.Executor.quant
  | Error e -> Alcotest.fail e

let test_fused_template_withheld () =
  (* Quantized anchors must not reach the fused compiler: the group's
     template is present on a float compile and withheld under [~quant]. *)
  let rng = Rng.create 44 in
  let _, g = matmul_relu_graph rng ~m:4 ~k:16 ~n:8 in
  let cf = Sod2.Pipeline.compile cpu g in
  let cq = Sod2.Pipeline.compile ~quant:true cpu g in
  let gid_of c =
    let found = ref None in
    Array.iteri
      (fun gid (grp : Sod2.Fusion.group) ->
        let has_mm =
          List.exists
            (fun nid -> (Graph.node g nid).Graph.op = Op.MatMul)
            grp.Sod2.Fusion.members
        in
        if has_mm && List.length grp.Sod2.Fusion.members > 1 then found := Some gid)
      c.Sod2.Pipeline.fusion_plan.Sod2.Fusion.groups;
    !found
  in
  match gid_of cf with
  | None -> Alcotest.fail "matmul+relu did not fuse — fixture assumption broken"
  | Some gid ->
    Alcotest.(check bool) "float compile has the template" true
      (Option.is_some cf.Sod2.Pipeline.fused.(gid));
    Alcotest.(check bool) "quant compile withholds it" true
      (Option.is_none cq.Sod2.Pipeline.fused.(gid))

let test_engine_quant () =
  (* The serving engine inherits quant through [Executor.config] — no
     engine-specific plumbing.  Symbolic batch exercises the per-binding
     plan cache together with the dynamic activation quantization. *)
  let rng = Rng.create 45 in
  let k, n = 24, 10 in
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "B"; Dim.of_int k ])
  in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_normal rng [ k; n ]) in
  let y = Graph.Builder.node1 b Op.MatMul [ x; w ] in
  let r = Graph.Builder.node1 b (Op.Unary Op.Relu) [ y ] in
  Graph.Builder.set_outputs b [ r ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile ~quant:true cpu g in
  let cfg =
    {
      RT.Executor.default_config with
      backend = RT.Backend.Blocked;
      memory = RT.Executor.Mem_arena;
      quant = true;
    }
  in
  let eng = RT.Engine.create ~workers:1 ~config:cfg c in
  Profile.Counters.reset ();
  Fun.protect
    ~finally:(fun () -> RT.Engine.shutdown eng)
    (fun () ->
      List.iter
        (fun bsz ->
          let inputs = [ x, Tensor.rand_uniform rng [ bsz; k ] ] in
          let res = RT.Engine.infer eng ~env:(Env.of_list [ "B", bsz ]) ~inputs in
          let _, float_outs = RT.Executor.run_real c ~inputs in
          List.iter2
            (fun (_, ft) (_, qt) -> check_close ~what:"engine int8" ~tol:0.05 ft qt)
            float_outs res.RT.Engine.outputs)
        [ 3; 6; 3 ]);
  Alcotest.(check bool) "int8 kernels ran in the engine worker" true
    (counter_count "quant-kernel" > 0)

let test_memplan_int_elem_override () =
  (* A ShapeOf output holds I64 values: on an f32 plan its slot must be
     sized at 8 bytes/elem (and padded to the 8-byte grid), not 4. *)
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_int 3; Dim.of_int 5 ])
  in
  let s = Graph.Builder.node1 b Op.ShapeOf [ x ] in
  let f = Graph.Builder.node1 b (Op.Cast Tensor.F32) [ s ] in
  let y = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ f ] in
  Graph.Builder.set_outputs b [ y ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  let mp = Sod2.Pipeline.mem_plan_for c Env.empty in
  match
    Array.to_list mp.Sod2.Mem_plan.allocs
    |> List.find_opt (fun (a : Sod2.Mem_plan.alloc) -> a.Sod2.Mem_plan.tid = s)
  with
  | Some a ->
    Alcotest.(check int) "I64 element size" 8 a.Sod2.Mem_plan.elem;
    Alcotest.(check int) "slot holds 2 i64s"
      (Sod2.Mem_plan.slot_bytes ~plan_elem:4 ~elem:8 2)
      a.Sod2.Mem_plan.size
  | None -> ()
(* no slot planned for the ShapeOf output is acceptable (kept boxed) *)

let suite =
  [
    Alcotest.test_case "srdhm corners" `Quick test_srdhm_corners;
    Alcotest.test_case "rounding divide by pot" `Quick test_rdbpot;
    QCheck_alcotest.to_alcotest prop_quantize_multiplier_reconstructs;
    QCheck_alcotest.to_alcotest prop_requantize_matches_reference;
    QCheck_alcotest.to_alcotest prop_gemm_i8_bit_exact;
    QCheck_alcotest.to_alcotest prop_gemm_i8_matches_naive;
    QCheck_alcotest.to_alcotest prop_gemm_i8_per_channel;
    Alcotest.test_case "saturation hits both rails" `Quick test_saturation_rails;
    Alcotest.test_case "conv i8 basic vs reference" `Quick test_conv_i8_basic;
    Alcotest.test_case "conv i8 strided grouped" `Quick test_conv_i8_strided_grouped;
    Alcotest.test_case "conv i8 dilated" `Quick test_conv_i8_dilated;
    Alcotest.test_case "gemm i8 dequant write-back" `Quick test_gemm_i8_dequant;
    Alcotest.test_case "per-tensor scheme round-trip" `Quick test_scheme_round_trip;
    Alcotest.test_case "per-channel scheme round-trip" `Quick test_scheme_per_channel;
    Alcotest.test_case "saturating cast boundaries" `Quick test_cast_boundaries;
    Alcotest.test_case "pipeline quant matmul e2e" `Quick test_pipeline_quant_matmul;
    Alcotest.test_case "pipeline quant conv arena e2e" `Quick
      test_pipeline_quant_conv_arena;
    Alcotest.test_case "config int8 syntax" `Quick test_config_int8_syntax;
    Alcotest.test_case "fused template withheld under quant" `Quick
      test_fused_template_withheld;
    Alcotest.test_case "engine serves int8 via config" `Quick test_engine_quant;
    Alcotest.test_case "mem-plan I64 elem override" `Quick
      test_memplan_int_elem_override;
  ]
