(* Tests for the executor: real vs dry agreement, fusion-transparency
   (fused and unfused execution produce identical tensors), control-flow
   routing, event bookkeeping, and the framework simulators. *)

let cpu = Profile.sd888_cpu

let spec name = Option.get (Zoo.by_name name)
let graph_of name = Sod2_experiments.Harness.graph_of (spec name)

let small_env (sp : Zoo.spec) =
  (* smallest admissible extents, for fast real interpretation *)
  List.fold_left
    (fun e (s, choices) -> Env.bind s (List.hd choices) e)
    Env.empty sp.dim_choices

let tiny_env (sp : Zoo.spec) =
  List.fold_left
    (fun e (s, _) ->
      Env.bind s (if sp.input_desc = "Image" || sp.input_desc = "Text + Image" then 64 else 32) e)
    Env.empty sp.dim_choices

(* Real and dry execution must agree on every materialized extent. *)
let test_real_dry_agreement () =
  List.iter
    (fun name ->
      let sp = spec name in
      let g = graph_of name in
      let c = Sod2.Pipeline.compile cpu g in
      let env = tiny_env sp in
      let inputs = Zoo.make_inputs sp g env (Rng.create 7) in
      let real_trace, _ = Sod2_runtime.Executor.run_real c ~inputs in
      (* gates in dry mode must follow the real predicate outcomes; rebuild
         them from the real trace's executed Switch steps is complex, so we
         restrict this check to shape-dynamism models with no gates *)
      if Zoo.gate_count g = 0 then begin
        let dry_trace =
          Sod2_runtime.Executor.run_dry c ~input_dims:(Zoo.input_dims sp g env)
        in
        let dims_of (tr : Sod2_runtime.Executor.trace) =
          List.map (fun (tid, d) -> tid, d) tr.Sod2_runtime.Executor.out_dims
        in
        Alcotest.(check (list (pair int (list int))))
          (name ^ ": output extents agree")
          (dims_of real_trace) (dims_of dry_trace);
        Alcotest.(check int)
          (name ^ ": same nodes executed")
          real_trace.Sod2_runtime.Executor.nodes_executed
          dry_trace.Sod2_runtime.Executor.nodes_executed
      end)
    [ "codebert"; "conformer"; "yolov6"; "stable-diffusion-encoder"; "segment-anything" ]

(* Fusion must not change results: interpret with the full fusion plan and
   with no fusion at all, and compare output tensors bitwise-ish. *)
let test_fusion_transparent () =
  List.iter
    (fun name ->
      let sp = spec name in
      let g = graph_of name in
      let env = tiny_env sp in
      let inputs = Zoo.make_inputs sp g env (Rng.create 3) in
      let fused = Sod2.Pipeline.compile cpu g in
      let unfused =
        let base = Sod2.Pipeline.compile ~flags:Sod2.Pipeline.no_opts cpu g in
        let fusion_plan = Sod2.Fusion.identity_plan g in
        let exec =
          Sod2.Exec_plan.plan ~strategy:Sod2.Exec_plan.Topological g
            base.Sod2.Pipeline.rdp fusion_plan
            ~env:(Sod2.Pipeline.plan_env base 64)
        in
        { base with Sod2.Pipeline.fusion_plan; exec }
      in
      let _, outs_fused = Sod2_runtime.Executor.run_real fused ~inputs in
      let _, outs_unfused = Sod2_runtime.Executor.run_real unfused ~inputs in
      List.iter2
        (fun (tid1, t1) (tid2, t2) ->
          Alcotest.(check int) "same output tensor id" tid1 tid2;
          if not (Tensor.approx_equal ~eps:1e-4 t1 t2) then
            Alcotest.failf "%s: fused and unfused outputs differ" name)
        outs_fused outs_unfused)
    [ "codebert"; "yolov6"; "skipnet"; "ranet" ]

(* Selected-only and all-paths control flow must produce the same outputs:
   the paths not selected are stripped, not blended. *)
let test_control_flow_equivalence () =
  List.iter
    (fun name ->
      let sp = spec name in
      let g = graph_of name in
      let env = tiny_env sp in
      let inputs = Zoo.make_inputs sp g env (Rng.create 5) in
      let c = Sod2.Pipeline.compile cpu g in
      let sel_trace, sel =
        Sod2_runtime.Executor.run_real ~control:Sod2_runtime.Executor.Selected_only c
          ~inputs
      in
      let all_trace, all =
        Sod2_runtime.Executor.run_real ~control:Sod2_runtime.Executor.All_paths c ~inputs
      in
      Alcotest.(check bool)
        (name ^ ": all-paths executes at least as much")
        true
        (all_trace.Sod2_runtime.Executor.nodes_executed
        >= sel_trace.Sod2_runtime.Executor.nodes_executed);
      List.iter2
        (fun (_, t1) (_, t2) ->
          if not (Tensor.approx_equal ~eps:1e-4 t1 t2) then
            Alcotest.failf "%s: selected-only and all-paths outputs differ" name)
        sel all)
    (* dgnet's input resolution is fixed at 224², too slow for the
       reference interpreter here; its routing is covered in dry mode *)
    [ "skipnet"; "convnet-aig"; "blockdrop"; "ranet" ]

let test_dgnet_dry_routing () =
  let sp = spec "dgnet" in
  let g = graph_of "dgnet" in
  let c = Sod2.Pipeline.compile cpu g in
  let input_dims = Zoo.input_dims sp g Env.empty in
  let cheap = Sod2_runtime.Executor.run_dry ~gate:(Workload.fixed_gates 0) c ~input_dims in
  let dense = Sod2_runtime.Executor.run_dry ~gate:(Workload.fixed_gates 1) c ~input_dims in
  Alcotest.(check bool) "cheap path is cheaper" true
    (Sod2_runtime.Executor.total_flops cheap < Sod2_runtime.Executor.total_flops dense);
  Alcotest.(check int) "both produce the output" (List.length cheap.out_dims)
    (List.length dense.out_dims)

(* Dry-mode gates route execution: different gate outcomes change the
   executed node count for gated models. *)
let test_dry_gates_route () =
  let sp = spec "skipnet" in
  let g = graph_of "skipnet" in
  let c = Sod2.Pipeline.compile cpu g in
  let input_dims = Zoo.input_dims sp g (small_env sp) in
  let cheap = Sod2_runtime.Executor.run_dry ~gate:(Workload.fixed_gates 0) c ~input_dims in
  let expensive = Sod2_runtime.Executor.run_dry ~gate:(Workload.fixed_gates 1) c ~input_dims in
  Alcotest.(check bool) "skip path executes fewer nodes" true
    (cheap.Sod2_runtime.Executor.nodes_executed
    < expensive.Sod2_runtime.Executor.nodes_executed);
  Alcotest.(check bool) "skip path uses less flops" true
    (Sod2_runtime.Executor.total_flops cheap < Sod2_runtime.Executor.total_flops expensive)

(* Arena execution: interpreting with every planned tensor at its memory-
   plan offset must produce the same outputs as the boxed interpreter — an
   end-to-end proof that the plan's lifetimes and placement are sound. *)
let test_arena_execution () =
  List.iter
    (fun name ->
      let sp = spec name in
      let g = graph_of name in
      let c = Sod2.Pipeline.compile cpu g in
      let env = tiny_env sp in
      let inputs = Zoo.make_inputs sp g env (Rng.create 11) in
      let _, boxed = Sod2_runtime.Executor.run_real c ~inputs in
      let arena = Sod2_runtime.Engine.run_arena c ~env ~inputs in
      Alcotest.(check bool) (name ^ ": tensors lived in the arena") true
        (arena.Sod2_runtime.Engine.arena_resident > 0);
      Alcotest.(check bool) (name ^ ": arena was sized") true
        (arena.Sod2_runtime.Engine.arena_bytes > 0);
      List.iter2
        (fun (t1, v1) (t2, v2) ->
          Alcotest.(check int) "same output id" t1 t2;
          if not (Tensor.approx_equal ~eps:1e-4 v1 v2) then
            Alcotest.failf "%s: arena execution corrupted outputs" name)
        boxed arena.Sod2_runtime.Engine.outputs)
    [ "codebert"; "yolov6"; "skipnet"; "ranet"; "conformer" ]

(* A Sub recurrence where every intermediate keeps two consumers (the last
   two values are both graph outputs), so no fusion group forms and every
   step takes the destination-passing path. *)
let stream_graph ~steps dims =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints dims) in
  let c0 = Graph.Builder.const b ~name:"c" (Tensor.full_f dims 0.5) in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c0 ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur; !prev ];
  x, Graph.Builder.finish b

(* Steady state (satellite of the zero-copy arena work): the second arena
   inference over the same binding must re-plan nothing (plan served from
   the per-binding cache) and copy nothing (every intermediate written
   straight into its slot). *)
let test_arena_steady_state () =
  let x, g = stream_graph ~steps:8 [ 4; 64 ] in
  let c = Sod2.Pipeline.compile cpu g in
  let inputs = [ x, Tensor.rand_uniform (Rng.create 2) [ 4; 64 ] ] in
  let arena = Sod2_runtime.Arena.create () in
  let run () = Sod2_runtime.Engine.run_arena ~arena c ~env:Env.empty ~inputs in
  ignore (run ());
  Profile.Counters.reset ();
  let res = run () in
  let count k = Option.value ~default:0 (List.assoc_opt k (Profile.Counters.by_kind ())) in
  Alcotest.(check int) "no replanning in steady state" 0 (count "plan-cache-miss");
  Alcotest.(check bool) "plan served from the binding cache" true (count "plan-cache-hit" >= 1);
  Alcotest.(check int) "no intermediate copies" 0 (count "arena-copy-out");
  Alcotest.(check bool) "kernels wrote straight into slots" true
    (count "arena-dest-store" > 0);
  let _, boxed = Sod2_runtime.Executor.run_real c ~inputs in
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      Alcotest.(check int) "same output id" t1 t2;
      if not (Tensor.approx_equal ~eps:1e-5 v1 v2) then
        Alcotest.fail "steady-state arena outputs diverged from the reference")
    boxed res.Sod2_runtime.Engine.outputs

(* An empty control-flow predicate is a malformed execution, not branch 0:
   both interpreters must raise the structured error. *)
let test_empty_predicate_raises () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 2 ]) in
  let pred = Graph.Builder.const b ~name:"pred" (Tensor.create_i [ 0 ] [||]) in
  (match Graph.Builder.node b (Op.Switch { branches = 2 }) [ x; pred ] with
  | [ o0; o1 ] ->
    let y = Graph.Builder.node1 b (Op.Combine { branches = 2 }) [ o0; o1; pred ] in
    Graph.Builder.set_outputs b [ y ]
  | _ -> assert false);
  let g = Graph.Builder.finish b in
  let inputs = [ x, Tensor.create_f [ 2 ] [| 1.0; 2.0 |] ] in
  (try
     ignore (Sod2_runtime.Reference.run g ~inputs);
     Alcotest.fail "reference: empty predicate not rejected"
   with Sod2_error.Error { cls = Sod2_error.Shape_mismatch; _ } -> ());
  let c = Sod2.Pipeline.compile cpu g in
  try
    ignore (Sod2_runtime.Executor.run_real c ~inputs);
    Alcotest.fail "executor: empty predicate not rejected"
  with Sod2_error.Error { cls = Sod2_error.Shape_mismatch; _ } -> ()

(* The arena composes with every kernel backend: outputs of steady-state
   (slot-reusing) arena runs agree with the malloc-mode interpreter. *)
let test_arena_backends_match () =
  let sp = spec "codebert" in
  let g = graph_of "codebert" in
  let c = Sod2.Pipeline.compile cpu g in
  let env = tiny_env sp in
  let inputs = Zoo.make_inputs sp g env (Rng.create 17) in
  let _, boxed = Sod2_runtime.Executor.run_real c ~inputs in
  List.iter
    (fun kind ->
      let be = Sod2_runtime.Backend.for_compiled kind c in
      Fun.protect
        ~finally:(fun () -> Sod2_runtime.Backend.shutdown be)
        (fun () ->
          let arena = Sod2_runtime.Arena.create () in
          ignore (Sod2_runtime.Engine.run_arena ~backend:be ~arena c ~env ~inputs);
          let res = Sod2_runtime.Engine.run_arena ~backend:be ~arena c ~env ~inputs in
          List.iter2
            (fun (t1, v1) (t2, v2) ->
              Alcotest.(check int) "same output id" t1 t2;
              if not (Tensor.approx_equal ~eps:1e-3 v1 v2) then
                Alcotest.failf "arena outputs diverge under the %s backend"
                  (Sod2_runtime.Backend.kind_name kind))
            boxed res.Sod2_runtime.Engine.outputs))
    [
      Sod2_runtime.Backend.Naive; Sod2_runtime.Backend.Blocked;
      Sod2_runtime.Backend.Parallel; Sod2_runtime.Backend.Fused;
    ]

let test_arena_rejects_mismatched_env () =
  let sp = spec "codebert" in
  let g = graph_of "codebert" in
  let c = Sod2.Pipeline.compile cpu g in
  let inputs = Zoo.make_inputs sp g (Env.of_list [ "S", 32 ]) (Rng.create 1) in
  (* plan instantiated for a different sequence length than the inputs *)
  try
    ignore (Sod2_runtime.Engine.run_arena c ~env:(Env.of_list [ "S", 48 ]) ~inputs);
    Alcotest.fail "plan/input mismatch not detected"
  with Sod2_error.Error { cls = Sod2_error.Shape_mismatch; _ } -> ()

let test_event_bookkeeping () =
  let sp = spec "yolov6" in
  let g = graph_of "yolov6" in
  let c = Sod2.Pipeline.compile cpu g in
  let trace =
    Sod2_runtime.Executor.run_dry c ~input_dims:(Zoo.input_dims sp g (small_env sp))
  in
  List.iter
    (fun (e : Sod2_runtime.Executor.tensor_event) ->
      if e.te_free < e.te_alloc then Alcotest.fail "event freed before allocated";
      if e.te_bytes <= 0 then Alcotest.fail "event without bytes")
    trace.Sod2_runtime.Executor.events;
  Alcotest.(check bool) "peak positive" true (Sod2_runtime.Executor.peak_live_bytes trace > 0);
  (* steps are sequentially numbered *)
  List.iteri
    (fun i (ge : Sod2_runtime.Executor.group_exec) ->
      Alcotest.(check int) "step index" i ge.Sod2_runtime.Executor.step)
    trace.Sod2_runtime.Executor.steps

let test_unresolved_raises () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "N" ]) in
  let y = Graph.Builder.node1 b Op.If [ x ] in
  Graph.Builder.set_outputs b [ y ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  try
    ignore (Sod2_runtime.Executor.run_dry c ~input_dims:[ x, [ 4 ] ]);
    Alcotest.fail "If should be unresolvable in dry mode"
  with Sod2_runtime.Executor.Unresolved _ -> ()

(* EDO sampling is deterministic: two dry runs agree exactly. *)
let test_dry_deterministic () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "N" ]) in
  let nz = Graph.Builder.node1 b Op.NonZero [ x ] in
  let y = Graph.Builder.node1 b (Op.Cast Tensor.F32) [ nz ] in
  Graph.Builder.set_outputs b [ y ];
  let g = Graph.Builder.finish b in
  let c = Sod2.Pipeline.compile cpu g in
  let run () = Sod2_runtime.Executor.run_dry c ~input_dims:[ x, [ 10 ] ] in
  let t1 = run () and t2 = run () in
  Alcotest.(check (list (pair int (list int)))) "same outputs"
    t1.Sod2_runtime.Executor.out_dims t2.Sod2_runtime.Executor.out_dims

(* Kernels dispatch for every non-control operator used by the zoo. *)
let test_kernel_coverage () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (sp : Zoo.spec) ->
      let g = graph_of sp.name in
      Array.iter
        (fun (nd : Graph.node) -> Hashtbl.replace seen (Op.name nd.op) ())
        (Graph.nodes g))
    Zoo.all;
  Alcotest.(check bool) "zoo exercises a broad operator set" true
    (Hashtbl.length seen >= 25)

let suite =
  [
    Alcotest.test_case "real/dry agreement" `Slow test_real_dry_agreement;
    Alcotest.test_case "fusion transparency" `Slow test_fusion_transparent;
    Alcotest.test_case "control-flow equivalence" `Slow test_control_flow_equivalence;
    Alcotest.test_case "dry gates route execution" `Quick test_dry_gates_route;
    Alcotest.test_case "dgnet dry routing" `Quick test_dgnet_dry_routing;
    Alcotest.test_case "arena execution matches boxed" `Slow test_arena_execution;
    Alcotest.test_case "arena rejects plan/input mismatch" `Quick test_arena_rejects_mismatched_env;
    Alcotest.test_case "arena steady state re-plans and copies nothing" `Quick
      test_arena_steady_state;
    Alcotest.test_case "empty control-flow predicate raises" `Quick test_empty_predicate_raises;
    Alcotest.test_case "arena composes with every backend" `Slow test_arena_backends_match;
    Alcotest.test_case "event bookkeeping" `Quick test_event_bookkeeping;
    Alcotest.test_case "unresolved dry shapes raise" `Quick test_unresolved_raises;
    Alcotest.test_case "dry mode deterministic" `Quick test_dry_deterministic;
    Alcotest.test_case "kernel coverage" `Quick test_kernel_coverage;
  ]
