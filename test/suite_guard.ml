(* Tests for guarded execution and graceful degradation.

   Clean runs: for every zoo model and randomized symbol bindings, the
   guarded executor must report zero incidents and bit-match the reference
   topological interpreter.

   Fault injection: corrupt one artifact at a time — arena offsets, alloc
   sizes, live ranges, RDP dimension predictions, the execution order, a
   fusion group's member list, a kernel — and require that (a) the guard
   catches it as an incident of the right kind, and (b) the degraded run's
   outputs still match the reference interpreter exactly. *)

let cpu = Profile.sd888_cpu
let spec name = Option.get (Zoo.by_name name)
let graph_of name = Sod2_experiments.Harness.graph_of (spec name)

(* seeds per model: the two slow real interpretations (dgnet runs at a
   fixed 224x224; the SD encoder is the widest graph) get one seed each *)
let seeds_for name =
  if name = "stable-diffusion-encoder" || name = "dgnet" then [ 0 ] else [ 0; 1; 2 ]

let tiny_env (sp : Zoo.spec) =
  List.fold_left
    (fun e (s, _) ->
      Env.bind s
        (if sp.input_desc = "Image" || sp.input_desc = "Text + Image" then 64 else 32)
      e)
    Env.empty sp.dim_choices

let randomized_env (sp : Zoo.spec) seed =
  (* small admissible extents, varied per seed: image dims must satisfy the
     stride structure, so draw from 32-aligned values *)
  let pick = [| 32; 64; 96 |] in
  List.fold_left
    (fun (e, i) (s, _) ->
      let v =
        if sp.input_desc = "Image" || sp.input_desc = "Text + Image" then
          pick.((seed + i) mod Array.length pick) |> max 64
        else pick.((seed + i) mod Array.length pick)
      in
      Env.bind s v e, i + 1)
    (Env.empty, 0) sp.dim_choices
  |> fst

let check_outputs name expected (r : Sod2_runtime.Guarded_exec.report) =
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      Alcotest.(check int) (name ^ ": output id") t1 t2;
      if not (Tensor.approx_equal ~eps:1e-4 v1 v2) then
        Alcotest.failf "%s: guarded outputs diverge from the reference" name)
    expected r.Sod2_runtime.Guarded_exec.outputs

let kinds_of (r : Sod2_runtime.Guarded_exec.report) =
  List.map
    (fun (i : Sod2_runtime.Guarded_exec.incident) -> i.Sod2_runtime.Guarded_exec.kind)
    r.Sod2_runtime.Guarded_exec.incidents

let require_kind name kind r =
  if not (List.mem kind (kinds_of r)) then
    Alcotest.failf "%s: expected a %s incident, got [%s]" name
      (Sod2_runtime.Guarded_exec.fault_name kind)
      (String.concat ", "
         (List.map Sod2_runtime.Guarded_exec.fault_name (kinds_of r)))

(* --- clean runs ----------------------------------------------------- *)

let test_clean_matches_reference () =
  List.iter
    (fun (sp : Zoo.spec) ->
      let name = sp.Zoo.name in
      let g = graph_of name in
      let c = Sod2.Pipeline.compile cpu g in
      List.iter
        (fun seed ->
          let env = randomized_env sp seed in
          let inputs = Zoo.make_inputs sp g env (Rng.create (100 + seed)) in
          let expected = Sod2_runtime.Reference.run g ~inputs in
          let r = Sod2_runtime.Guarded_exec.run c ~env ~inputs in
          Alcotest.(check int)
            (name ^ ": clean run has no incidents")
            0
            (List.length r.Sod2_runtime.Guarded_exec.incidents);
          Alcotest.(check bool)
            (name ^ ": clean run uses the arena")
            true
            (r.Sod2_runtime.Guarded_exec.arena_resident > 0);
          check_outputs name expected r)
        (seeds_for name))
    Zoo.all

(* --- fault injection ------------------------------------------------- *)

(* One model exercises each fault kind; the guard logic is model-agnostic. *)
let fault_model = "ranet"

let compiled_with_reference () =
  let sp = spec fault_model in
  let g = graph_of fault_model in
  let c = Sod2.Pipeline.compile cpu g in
  let env = tiny_env sp in
  let inputs = Zoo.make_inputs sp g env (Rng.create 11) in
  let expected = Sod2_runtime.Reference.run g ~inputs in
  c, env, inputs, expected

let corrupt_alloc c env ~f =
  (* functional copy of the instantiated plan with one allocation rewritten *)
  let mp = Sod2.Pipeline.mem_plan_for c env in
  let allocs = Array.copy mp.Sod2.Mem_plan.allocs in
  let i = Array.length allocs / 2 in
  allocs.(i) <- f allocs.(i);
  { mp with Sod2.Mem_plan.allocs = allocs }

let run_fault name kind ?mem_plan ?kernel_hook c env inputs expected =
  Profile.Counters.reset ();
  let r = Sod2_runtime.Guarded_exec.run ?mem_plan ?kernel_hook c ~env ~inputs in
  require_kind name kind r;
  check_outputs name expected r;
  Alcotest.(check bool)
    (name ^ ": incident counted") true
    (Profile.Counters.count ~profile:cpu.Profile.name
       ~kind:(Sod2_runtime.Guarded_exec.fault_name kind)
    > 0);
  r

let test_fault_arena_bounds () =
  let c, env, inputs, expected = compiled_with_reference () in
  let mp =
    corrupt_alloc c env ~f:(fun a ->
        { a with Sod2.Mem_plan.offset = a.Sod2.Mem_plan.offset + 1_000_000_000 })
  in
  ignore (run_fault "oob offset" Sod2_runtime.Guarded_exec.Arena_bounds ~mem_plan:mp
            c env inputs expected);
  let mp = corrupt_alloc c env ~f:(fun a -> { a with Sod2.Mem_plan.offset = -64 }) in
  ignore (run_fault "negative offset" Sod2_runtime.Guarded_exec.Arena_bounds
            ~mem_plan:mp c env inputs expected)

let test_fault_plan_overlap () =
  let c, env, inputs, expected = compiled_with_reference () in
  (* force two long-lived allocations onto the same bytes *)
  let mp = Sod2.Pipeline.mem_plan_for c env in
  let allocs = Array.copy mp.Sod2.Mem_plan.allocs in
  if Array.length allocs < 2 then Alcotest.fail "plan too small to corrupt";
  let a0 = allocs.(0) in
  allocs.(1) <-
    { allocs.(1) with
      Sod2.Mem_plan.offset = a0.Sod2.Mem_plan.offset;
      first_step = a0.Sod2.Mem_plan.first_step;
      last_step = a0.Sod2.Mem_plan.last_step
    };
  let mp = { mp with Sod2.Mem_plan.allocs = allocs } in
  ignore (run_fault "overlapping allocs" Sod2_runtime.Guarded_exec.Plan_overlap
            ~mem_plan:mp c env inputs expected)

let test_fault_wrong_size () =
  let c, env, inputs, expected = compiled_with_reference () in
  let mp =
    corrupt_alloc c env ~f:(fun a -> { a with Sod2.Mem_plan.size = a.Sod2.Mem_plan.size / 2 })
  in
  ignore (run_fault "undersized alloc" Sod2_runtime.Guarded_exec.Size_mismatch
            ~mem_plan:mp c env inputs expected)

let test_fault_wrong_predicted_dims () =
  let c, env, inputs, expected = compiled_with_reference () in
  (* corrupt the RDP S-map entry of a materialized activation tensor *)
  let g = c.Sod2.Pipeline.graph in
  let shapes = Array.copy c.Sod2.Pipeline.rdp.Sod2.Rdp.shapes in
  let victim =
    Sod2.Fusion.materialized_tensors g c.Sod2.Pipeline.fusion_plan
    |> List.filter (fun tid ->
           match Shape.eval env shapes.(tid) with
           | Some dims -> List.length dims >= 2
           | None -> false)
    |> fun l -> List.nth l (List.length l / 2)
  in
  (match Shape.eval env shapes.(victim) with
  | Some dims ->
    shapes.(victim) <-
      Shape.of_dims (List.map (fun d -> Dim.of_int (d + 1)) dims)
  | None -> Alcotest.fail "victim tensor has no concrete predicted shape");
  let c' =
    { c with Sod2.Pipeline.rdp = { c.Sod2.Pipeline.rdp with Sod2.Rdp.shapes } }
  in
  (* instantiate the memory plan from the UNcorrupted facts so only the
     dim prediction is wrong, not the allocation sizes *)
  let mp = Sod2.Pipeline.mem_plan_for c env in
  let r =
    run_fault "wrong RDP prediction" Sod2_runtime.Guarded_exec.Dim_mismatch
      ~mem_plan:mp c' env inputs expected
  in
  Alcotest.(check bool) "tensor was demoted to boxed storage" true
    (r.Sod2_runtime.Guarded_exec.incidents <> [])

let test_fault_truncated_order () =
  let c, env, inputs, expected = compiled_with_reference () in
  (* drop the second half of the execution order: the fallback sweep must
     pick up everything the plan no longer covers *)
  let order = c.Sod2.Pipeline.exec.Sod2.Exec_plan.order in
  let keep = List.filteri (fun i _ -> i < List.length order / 2) order in
  let c' =
    { c with Sod2.Pipeline.exec = { c.Sod2.Pipeline.exec with Sod2.Exec_plan.order = keep } }
  in
  let r =
    run_fault "truncated order" Sod2_runtime.Guarded_exec.Truncated_plan c' env
      inputs expected
  in
  Alcotest.(check bool) "fallback executed nodes" true
    (r.Sod2_runtime.Guarded_exec.demoted_nodes > 0)

let test_fault_truncated_group () =
  let c, env, inputs, expected = compiled_with_reference () in
  (* amputate the members of one multi-node fusion group *)
  let groups = Array.copy c.Sod2.Pipeline.fusion_plan.Sod2.Fusion.groups in
  let gi =
    let found = ref (-1) in
    Array.iteri
      (fun i (grp : Sod2.Fusion.group) ->
        if !found < 0 && List.length grp.Sod2.Fusion.members > 1 then found := i)
      groups;
    if !found < 0 then Alcotest.fail "no multi-node fusion group to corrupt";
    !found
  in
  groups.(gi) <-
    { (groups.(gi)) with
      Sod2.Fusion.members = [ List.hd groups.(gi).Sod2.Fusion.members ]
    };
  let c' =
    { c with
      Sod2.Pipeline.fusion_plan =
        { c.Sod2.Pipeline.fusion_plan with Sod2.Fusion.groups = groups }
    }
  in
  let r =
    run_fault "truncated group" Sod2_runtime.Guarded_exec.Truncated_plan c' env
      inputs expected
  in
  Alcotest.(check bool) "fallback executed the amputated nodes" true
    (r.Sod2_runtime.Guarded_exec.demoted_nodes > 0)

let test_fault_kernel_raises () =
  let c, env, inputs, expected = compiled_with_reference () in
  (* simulate one faulty specialized kernel version: the hook raises for a
     single node during planned execution; the fallback runs the reference
     kernel instead *)
  let victim =
    let found = ref (-1) in
    Array.iter
      (fun (nd : Graph.node) ->
        match nd.Graph.op with
        | Op.Switch _ | Op.Combine _ -> ()
        | _ -> if !found < 0 && nd.Graph.nid > 4 then found := nd.Graph.nid)
      (Graph.nodes c.Sod2.Pipeline.graph);
    !found
  in
  let kernel_hook ~gid:_ ~node =
    if node = victim then failwith "injected kernel fault"
  in
  let r =
    run_fault "kernel fault" Sod2_runtime.Guarded_exec.Kernel_fault ~kernel_hook c
      env inputs expected
  in
  Alcotest.(check bool) "faulted node re-ran in fallback" true
    (r.Sod2_runtime.Guarded_exec.demoted_nodes > 0)

let test_counters_aggregate () =
  Profile.Counters.reset ();
  Profile.Counters.record ~profile:"p1" ~kind:"dim-mismatch";
  Profile.Counters.record ~profile:"p1" ~kind:"dim-mismatch";
  Profile.Counters.record ~profile:"p2" ~kind:"arena-bounds";
  Alcotest.(check int) "per profile+kind" 2
    (Profile.Counters.count ~profile:"p1" ~kind:"dim-mismatch");
  Alcotest.(check int) "total" 3 (Profile.Counters.total ());
  Alcotest.(check (list (pair string int))) "by kind"
    [ "arena-bounds", 1; "dim-mismatch", 2 ]
    (Profile.Counters.by_kind ());
  Profile.Counters.reset ();
  Alcotest.(check int) "reset" 0 (Profile.Counters.total ())

let suite =
  [
    Alcotest.test_case "clean runs match reference" `Slow test_clean_matches_reference;
    Alcotest.test_case "fault: arena bounds" `Quick test_fault_arena_bounds;
    Alcotest.test_case "fault: plan overlap" `Quick test_fault_plan_overlap;
    Alcotest.test_case "fault: wrong alloc size" `Quick test_fault_wrong_size;
    Alcotest.test_case "fault: wrong predicted dims" `Quick test_fault_wrong_predicted_dims;
    Alcotest.test_case "fault: truncated order" `Quick test_fault_truncated_order;
    Alcotest.test_case "fault: truncated group" `Quick test_fault_truncated_group;
    Alcotest.test_case "fault: kernel raises" `Quick test_fault_kernel_raises;
    Alcotest.test_case "incident counters" `Quick test_counters_aggregate;
  ]
