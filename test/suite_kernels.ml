(* Kernel-backend equivalence and hot-path kernel regressions: the
   blocked/parallel GEMM and im2col convolution must match the naive
   reference loops within float tolerance on every shape class (including
   odd extents that exercise the packing edge paths), the domain pool must
   distribute work and propagate failures, and the fixed kernel bugs
   (float Mod, Reshape dim resolution, conv group check) must stay
   fixed. *)

module RT = Sod2_runtime

let check_close msg expected actual =
  if not (Tensor.approx_equal ~eps:1e-5 expected actual) then
    Alcotest.failf "%s: tensors differ\nexpected %s\nactual   %s" msg
      (Tensor.to_string expected) (Tensor.to_string actual)

(* Random operand storage for the raw-kernel tests.  [dt] selects the
   element kind so the same cases exercise both f32 and f64 code paths. *)
let fill_buf ?(dt = Tensor.F32) rng len =
  Tensor.storage_f (Tensor.cast (Tensor.rand_uniform rng [ max 1 len ]) dt)

let copy_fbuf b =
  let n = Tensor.fbuf_len b in
  let c = Tensor.fbuf_create (Tensor.fbuf_dtype b) n in
  Tensor.fbuf_blit ~src:b ~soff:0 ~dst:c ~doff:0 ~len:n;
  c

(* ------------------------------------------------------------------ *)
(* GEMM equivalence                                                    *)
(* ------------------------------------------------------------------ *)

(* One case per shape class, plus extents that are not multiples of any
   tile or micro-tile size (odd rows/columns, shallow and deep k). *)
let gemm_cases =
  [
    1, 1, 1;
    3, 5, 7;
    8, 8, 8;
    17, 9, 33;
    4, 512, 37;
    (* skinny *)
    63, 65, 66;
    (* straddles the 64-tile edge *)
    128, 32, 200;
    300, 257, 19;
    (* fat-ish with odd n and shallow k *)
  ]

let run_gemm kernel ~m ~n ~k ~a ~b ~c0 =
  let c = copy_fbuf c0 in
  kernel ~m ~n ~k ~a ~ao:0 ~b ~bo:0 ~c ~co:0;
  c

let max_abs_diff x y =
  let d = ref 0.0 in
  for i = 0 to Tensor.fbuf_len x - 1 do
    d := Float.max !d (Float.abs (Tensor.fbuf_get x i -. Tensor.fbuf_get y i))
  done;
  !d

let check_gemm_kernel name kernel =
  List.iter
    (fun dt ->
      let rng = Rng.create 42 in
      List.iter
        (fun (m, n, k) ->
          let a = fill_buf ~dt rng (m * k) and b = fill_buf ~dt rng (k * n) in
          (* nonzero initial C: both kernels accumulate, neither overwrites *)
          let c0 = fill_buf ~dt rng (m * n) in
          let want = run_gemm Linalg.naive_kernel ~m ~n ~k ~a ~b ~c0 in
          let got = run_gemm kernel ~m ~n ~k ~a ~b ~c0 in
          (* Both kernels accumulate f64 over the full depth and round at
             the single store, so they agree bit-for-bit in either kind. *)
          let d = max_abs_diff want got in
          if d <> 0.0 then
            Alcotest.failf "%s %s %dx%dx%d: max |diff| = %g" name
              (Tensor.dtype_name dt) m n k d)
        gemm_cases)
    [ Tensor.F32; Tensor.F64 ]

let test_gemm_blocked_matches_naive () =
  check_gemm_kernel "blocked"
    (fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
      Blocked.gemm ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ());
  (* degenerate tile configuration goes through the sanitizer *)
  let tiles = Blocked.tiles_of ~tile_m:1 ~tile_n:1 ~tile_k:1 ~unroll:1 in
  check_gemm_kernel "blocked/clamped-tiles"
    (fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
      Blocked.gemm ~tiles ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ())

let test_gemm_parallel_matches_naive () =
  let pool = RT.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> RT.Domain_pool.shutdown pool)
    (fun () ->
      let par = RT.Domain_pool.par pool in
      (* small row-tiles so several macro-tiles actually run per job *)
      let tiles = Blocked.tiles_of ~tile_m:32 ~tile_n:32 ~tile_k:64 ~unroll:4 in
      check_gemm_kernel "parallel"
        (fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
          Blocked.gemm ~par ~tiles ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ()))

let prop_gemm_blocked_random =
  QCheck2.Test.make ~name:"blocked gemm matches naive on random extents" ~count:60
    QCheck2.Gen.(tup3 (int_range 1 70) (int_range 1 70) (int_range 1 70))
    (fun (m, n, k) ->
      let rng = Rng.create (m + (97 * n) + (389 * k)) in
      let a = fill_buf rng (m * k) and b = fill_buf rng (k * n) in
      let c0 = Tensor.fbuf_create Tensor.F32 (m * n) in
      Tensor.fbuf_fill c0 0 (m * n) 0.0;
      let want = run_gemm Linalg.naive_kernel ~m ~n ~k ~a ~b ~c0 in
      let got =
        run_gemm
          (fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
            Blocked.gemm ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ())
          ~m ~n ~k ~a ~b ~c0
      in
      max_abs_diff want got = 0.0)

(* ------------------------------------------------------------------ *)
(* Convolution equivalence                                             *)
(* ------------------------------------------------------------------ *)

let conv_cases =
  (* (x dims, w dims, stride, pad, dilation, groups, bias?) *)
  [
    "basic 3x3", [ 1; 3; 8; 8 ], [ 4; 3; 3; 3 ], (1, 1), (1, 1, 1, 1), (1, 1), 1, true;
    "no bias", [ 2; 3; 7; 9 ], [ 5; 3; 3; 3 ], (1, 1), (0, 0, 0, 0), (1, 1), 1, false;
    "grouped", [ 1; 4; 6; 6 ], [ 6; 2; 3; 3 ], (1, 1), (1, 1, 1, 1), (1, 1), 2, true;
    "depthwise", [ 1; 4; 9; 9 ], [ 4; 1; 3; 3 ], (1, 1), (1, 1, 1, 1), (1, 1), 4, true;
    "dilated", [ 1; 2; 11; 11 ], [ 3; 2; 3; 3 ], (1, 1), (2, 2, 2, 2), (2, 2), 1, true;
    "strided asym pad", [ 1; 3; 10; 13 ], [ 2; 3; 2; 4 ], (2, 3), (1, 0, 2, 1), (1, 1), 1, true;
    "1x1", [ 2; 8; 5; 5 ], [ 16; 8; 1; 1 ], (1, 1), (0, 0, 0, 0), (1, 1), 1, false;
  ]

let check_conv name conv =
  let rng = Rng.create 9 in
  List.iter
    (fun (case, xd, wd, stride, pad, dilation, groups, with_bias) ->
      let x = Tensor.rand_uniform rng xd and w = Tensor.rand_uniform rng wd in
      let bias =
        if with_bias then Some (Tensor.rand_uniform rng [ List.hd wd ]) else None
      in
      let want = Linalg.conv2d ~stride ~pad ~dilation ~groups x w bias in
      let got = conv ~stride ~pad ~dilation ~groups x w bias in
      check_close (name ^ "/" ^ case) want got)
    conv_cases

let test_conv_im2col_matches_naive () =
  check_conv "im2col" (Blocked.conv2d_im2col ?par:None ?tiles:None ?epilogue:None)

let test_conv_im2col_parallel_matches_naive () =
  let pool = RT.Domain_pool.create 3 in
  Fun.protect
    ~finally:(fun () -> RT.Domain_pool.shutdown pool)
    (fun () ->
      let par = RT.Domain_pool.par pool in
      check_conv "im2col/parallel" (Blocked.conv2d_im2col ~par ?tiles:None ?epilogue:None))

(* ------------------------------------------------------------------ *)
(* Backend dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let with_backend kind f =
  let be = RT.Backend.create kind in
  Fun.protect ~finally:(fun () -> RT.Backend.shutdown be) (fun () -> f be)

let test_backend_ops_match_reference () =
  List.iter
    (fun kind ->
      with_backend kind (fun be ->
          let name op = RT.Backend.kind_name kind ^ "/" ^ op in
          let rng = Rng.create 12 in
          (* batched matmul with broadcasting *)
          let a = Tensor.rand_uniform rng [ 2; 33; 65 ] in
          let b = Tensor.rand_uniform rng [ 65; 17 ] in
          check_close (name "matmul") (Linalg.matmul a b) (RT.Backend.matmul be a b);
          (* transposed gemm with bias broadcast *)
          let ga = Tensor.rand_uniform rng [ 40; 30 ] in
          let gb = Tensor.rand_uniform rng [ 50; 40 ] in
          let gc = Some (Tensor.rand_uniform rng [ 30; 1 ]) in
          check_close (name "gemm")
            (Linalg.gemm ~alpha:0.5 ~beta:1.5 ~trans_a:true ~trans_b:true ga gb gc)
            (RT.Backend.gemm be ~alpha:0.5 ~beta:1.5 ~trans_a:true ~trans_b:true ga gb
               gc);
          (* conv1d lowers through the same backend *)
          let x1 = Tensor.rand_uniform rng [ 2; 4; 19 ] in
          let w1 = Tensor.rand_uniform rng [ 6; 2; 3 ] in
          check_close (name "conv1d")
            (Linalg.conv1d ~stride:2 ~pad:(1, 1) ~dilation:1 ~groups:2 x1 w1 None)
            (RT.Backend.conv1d be ~stride:2 ~pad:(1, 1) ~dilation:1 ~groups:2 x1 w1
               None);
          (* a pinned shape class must not change the result *)
          check_close (name "matmul/pinned-class")
            (Linalg.matmul a b)
            (RT.Backend.matmul ~cls:Sod2.Multi_version.Skinny be a b)))
    [ RT.Backend.Naive; RT.Backend.Blocked; RT.Backend.Parallel ]

let test_backend_elementwise () =
  with_backend RT.Backend.Parallel (fun be ->
      let rng = Rng.create 21 in
      (* big enough to take the chunked-parallel path *)
      let x = Tensor.rand_uniform rng [ 50_000 ] in
      let y = Tensor.rand_uniform rng [ 50_000 ] in
      check_close "map_f" (Tensor.map_f sqrt x) (RT.Backend.map_f be sqrt x);
      check_close "map2" (Tensor.map2 ( *. ) x y) (RT.Backend.map2 be ( *. ) x y);
      (* broadcasting stays on the sequential path but must still work *)
      let row = Tensor.rand_uniform rng [ 10 ] in
      let mat = Tensor.rand_uniform rng [ 200; 10 ] in
      check_close "map2/broadcast"
        (Tensor.map2 ( +. ) mat row)
        (RT.Backend.map2 be ( +. ) mat row))

let test_backend_kind_names () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        "kind_of_string inverts kind_name" true
        (RT.Backend.kind_of_string (RT.Backend.kind_name kind) = Some kind))
    [ RT.Backend.Naive; RT.Backend.Blocked; RT.Backend.Parallel ];
  Alcotest.(check bool) "unknown kind" true (RT.Backend.kind_of_string "simd" = None)

(* The backend must not perturb end-to-end execution: run a real model on
   the naive and blocked backends and compare outputs. *)
let test_backend_end_to_end () =
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = Sod2_experiments.Harness.graph_of sp in
  let c = Sod2.Pipeline.compile Profile.sd888_cpu g in
  let env = Env.of_list [ "S", 32 ] in
  let inputs = Zoo.make_inputs sp g env (Rng.create 5) in
  let _, ref_outs = RT.Executor.run_real c ~inputs in
  with_backend RT.Backend.Blocked (fun be ->
      let _, outs = RT.Executor.run_real ~backend:be c ~inputs in
      List.iter2
        (fun (tid, want) (tid', got) ->
          Alcotest.(check int) "same output tensor" tid tid';
          check_close (Printf.sprintf "output t%d" tid) want got)
        ref_outs outs)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_domain_pool_runs_all () =
  let pool = RT.Domain_pool.create 4 in
  Fun.protect
    ~finally:(fun () -> RT.Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "size within request" true
        (RT.Domain_pool.size pool >= 1 && RT.Domain_pool.size pool <= 4);
      let n = 1000 in
      let hits = Array.make n 0 in
      RT.Domain_pool.run pool n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index ran exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* a second job reuses the same workers *)
      let acc = Atomic.make 0 in
      RT.Domain_pool.run pool 257 (fun i -> ignore (Atomic.fetch_and_add acc i));
      Alcotest.(check int) "sum over indices" (257 * 256 / 2) (Atomic.get acc);
      (* zero-count job is a no-op *)
      RT.Domain_pool.run pool 0 (fun _ -> Alcotest.fail "must not run"))

let test_domain_pool_propagates_exception () =
  let pool = RT.Domain_pool.create 3 in
  Fun.protect
    ~finally:(fun () -> RT.Domain_pool.shutdown pool)
    (fun () ->
      (try
         RT.Domain_pool.run pool 64 (fun i -> if i = 37 then failwith "tile 37");
         Alcotest.fail "expected the task failure to re-raise"
       with Failure msg -> Alcotest.(check string) "first fault" "tile 37" msg);
      (* the pool survives a failed job *)
      let ok = Atomic.make 0 in
      RT.Domain_pool.run pool 16 (fun _ -> Atomic.incr ok);
      Alcotest.(check int) "pool usable after failure" 16 (Atomic.get ok))

let test_domain_pool_shutdown_idempotent () =
  let pool = RT.Domain_pool.for_profile Profile.sd888_cpu in
  RT.Domain_pool.run pool 8 ignore;
  RT.Domain_pool.shutdown pool;
  RT.Domain_pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Hot-path kernel regressions                                         *)
(* ------------------------------------------------------------------ *)

let run1 op inputs =
  match RT.Kernels.run op inputs with
  | [ t ] -> t
  | _ -> Alcotest.fail "expected one output"

(* Float Mod used to truncate through int_of_float; it must follow ONNX
   integer-mod semantics — result takes the sign of the divisor. *)
let test_mod_float_semantics () =
  (* f64 operands: the expectations below are exact to 1e-9, beyond what
     the default f32 scalars can carry. *)
  let scalar64 v = Tensor.of_floats Tensor.F64 [] [| v |] in
  let check a b want =
    let got =
      Tensor.get_f (run1 (Op.Binary Op.Mod2) [ scalar64 a; scalar64 b ]) [||]
    in
    if Float.abs (got -. want) > 1e-9 then
      Alcotest.failf "%g mod %g: expected %g, got %g" a b want got
  in
  check 5.3 2.0 1.3;
  check (-5.3) 2.0 0.7;
  check 5.3 (-2.0) (-0.7);
  check (-5.3) (-2.0) (-1.3);
  check 6.0 3.0 0.0;
  check (-6.0) 3.0 0.0;
  (* huge operands used to collapse through int truncation *)
  check 1e10 3.0 1.0;
  (* int mod keeps OCaml/ONNX truncated semantics, in sync with Expr *)
  let gi a b =
    Tensor.get_i (run1 (Op.Binary Op.Mod2) [ Tensor.scalar_i a; Tensor.scalar_i b ]) [||]
  in
  Alcotest.(check int) "int mod" (-2) (gi (-7) 5)

let reshape dims target =
  let rng = Rng.create 3 in
  let data = Tensor.rand_uniform rng dims in
  run1 Op.Reshape [ data; Tensor.of_int_list target ]

let expect_shape_error msg f =
  try
    ignore (f ());
    Alcotest.failf "%s: expected Sod2_error" msg
  with Sod2_error.Error { cls = Sod2_error.Shape_mismatch; _ } -> ()

let test_reshape_resolution () =
  Alcotest.(check (list int)) "-1 infers" [ 4; 6 ] (Tensor.dims (reshape [ 2; 3; 4 ] [ 4; -1 ]));
  Alcotest.(check (list int)) "0 copies input dim" [ 2; 12 ]
    (Tensor.dims (reshape [ 2; 3; 4 ] [ 0; 12 ]));
  Alcotest.(check (list int)) "0 and -1 combine" [ 2; 3; 4 ]
    (Tensor.dims (reshape [ 2; 3; 4 ] [ 0; 3; -1 ]));
  expect_shape_error "0 past input rank" (fun () -> reshape [ 6 ] [ 6; 0 ]);
  expect_shape_error "non-divisible -1" (fun () -> reshape [ 2; 3; 4 ] [ 5; -1 ]);
  expect_shape_error "element count mismatch" (fun () -> reshape [ 2; 3; 4 ] [ 5; 5 ]);
  expect_shape_error "two -1s" (fun () -> reshape [ 2; 3; 4 ] [ -1; -1 ]);
  expect_shape_error "negative dim" (fun () -> reshape [ 2; 3; 4 ] [ -2; 12 ])

(* c = 7 with groups = 2 used to pass the integer-division check against
   cg = 3; it must raise, on both conv implementations. *)
let test_conv_group_check () =
  let rng = Rng.create 4 in
  let x = Tensor.rand_uniform rng [ 1; 7; 5; 5 ] in
  let w = Tensor.rand_uniform rng [ 4; 3; 2; 2 ] in
  expect_shape_error "naive conv rejects" (fun () ->
      Linalg.conv2d ~groups:2 x w None);
  expect_shape_error "im2col conv rejects" (fun () ->
      Blocked.conv2d_im2col ~stride:(1, 1) ~pad:(0, 0, 0, 0) ~dilation:(1, 1) ~groups:2
        x w None);
  expect_shape_error "zero groups" (fun () -> Linalg.conv2d ~groups:0 x w None);
  (* channels divisible but weight channels-per-group inconsistent *)
  let x8 = Tensor.rand_uniform rng [ 1; 8; 5; 5 ] in
  expect_shape_error "cg mismatch" (fun () -> Linalg.conv2d ~groups:2 x8 w None)

let suite =
  [
    Alcotest.test_case "gemm: blocked = naive" `Quick test_gemm_blocked_matches_naive;
    Alcotest.test_case "gemm: parallel = naive" `Quick test_gemm_parallel_matches_naive;
    Alcotest.test_case "conv: im2col = naive" `Quick test_conv_im2col_matches_naive;
    Alcotest.test_case "conv: parallel im2col = naive" `Quick
      test_conv_im2col_parallel_matches_naive;
    Alcotest.test_case "backend: heavy ops match reference" `Quick
      test_backend_ops_match_reference;
    Alcotest.test_case "backend: parallel elementwise" `Quick test_backend_elementwise;
    Alcotest.test_case "backend: kind names" `Quick test_backend_kind_names;
    Alcotest.test_case "backend: end-to-end run matches" `Quick test_backend_end_to_end;
    Alcotest.test_case "pool: runs every index once" `Quick test_domain_pool_runs_all;
    Alcotest.test_case "pool: propagates task failure" `Quick
      test_domain_pool_propagates_exception;
    Alcotest.test_case "pool: shutdown idempotent" `Quick
      test_domain_pool_shutdown_idempotent;
    Alcotest.test_case "mod: float follows divisor sign" `Quick test_mod_float_semantics;
    Alcotest.test_case "reshape: dim resolution" `Quick test_reshape_resolution;
    Alcotest.test_case "conv: group check" `Quick test_conv_group_check;
    QCheck_alcotest.to_alcotest prop_gemm_blocked_random;
  ]
