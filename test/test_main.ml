let () =
  Alcotest.run "sod2"
    [
      "symbolic", Suite_symbolic.suite;
      "tensor", Suite_tensor.suite;
      "storage", Suite_storage.suite;
      "quant", Suite_quant.suite;
      "ir", Suite_ir.suite;
      "validate", Suite_validate.suite;
      "op-conformance", Suite_op_conformance.suite;
      "graph-io", Suite_graph_io.suite;
      "rdp", Suite_rdp.suite;
      "core", Suite_core.suite;
      "tune", Suite_tune.suite;
      "runtime", Suite_runtime.suite;
      "kernels", Suite_kernels.suite;
      "fused", Suite_fused.suite;
      "guard", Suite_guard.suite;
      "engine", Suite_engine.suite;
      "variants", Suite_variants.suite;
      "models", Suite_models.suite;
      "frameworks", Suite_frameworks.suite;
      "experiments", Suite_experiments.suite;
    ]
