(* Tests for ahead-of-time multi-version plans and the Compile_opts
   surface.

   Correctness: for randomized gated graphs and randomized outcome
   vectors, a run through the specialized plan variant must be
   bit-identical to the any-path base plan and to the reference
   topological interpreter — routing specialization must never change a
   number.  Budget overflow and gate misprediction both fall back to the
   base plan transparently.

   Performance contract (counter-based, not timed): a variant run
   performs zero per-group readiness scans ("exec-ready-scan" stays
   flat), and steady-state variant serving re-instantiates no plans
   ("plan-cache-miss" stays flat once a (binding × outcome) pair has been
   seen). *)

module RT = Sod2_runtime

let cpu = Profile.sd888_cpu

let count kind = Profile.Counters.count ~profile:cpu.Profile.name ~kind

(* A chain of [gates] independently-gated blocks over an [8]-vector.
   Branch [j] of every gate applies a distinct nonlinearity, so a wrong
   routing decision changes the output bits.  Predicates are I64 graph
   inputs: statically unresolvable, i.e. genuinely data-dependent
   control regions. *)
let branch_ops = [| Op.Relu; Op.Sigmoid; Op.Tanh |]

let gated_chain ~branches =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 8 ]) in
  let preds =
    Array.mapi
      (fun i _ -> Graph.Builder.input b ~name:(Printf.sprintf "p%d" i) (Shape.of_ints [ 1 ]))
      branches
  in
  let y = ref x in
  Array.iteri
    (fun i nb ->
      let outs = Graph.Builder.node b (Op.Switch { branches = nb }) [ !y; preds.(i) ] in
      let results =
        List.mapi
          (fun j o ->
            Graph.Builder.node1 b (Op.Unary branch_ops.((i + j) mod Array.length branch_ops)) [ o ])
          outs
      in
      y := Graph.Builder.node1 b (Op.Combine { branches = nb }) (results @ [ preds.(i) ]))
    branches;
  (* A tail op after the last Combine so variants also prune/keep plain
     nodes downstream of control flow. *)
  y := Graph.Builder.node1 b (Op.Unary Op.Gelu) [ !y ];
  Graph.Builder.set_outputs b [ !y ];
  Graph.Builder.finish b, x, preds

let inputs_for g x preds outcome =
  ignore g;
  (x, Tensor.create_f [ 8 ] (Array.init 8 (fun i -> float_of_int (i - 3) *. 0.7)))
  :: Array.to_list (Array.map2 (fun p o -> p, Tensor.create_i [ 1 ] [| o |]) preds outcome)

let opts_of spec =
  match Sod2.Compile_opts.of_string spec with
  | Ok o -> o
  | Error e -> Alcotest.failf "bad compile spec %S: %s" spec e

let check_bits name want got =
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      Alcotest.(check int) (name ^ ": output id") t1 t2;
      if not (Tensor.equal v1 v2) then
        Alcotest.failf "%s: outputs are not bit-identical" name)
    want got

(* --- randomized correctness --------------------------------------- *)

let prop_variant_bit_identical =
  QCheck2.Test.make ~name:"variant = any-path = reference (random gated graphs)"
    ~count:60
    QCheck2.Gen.(tup2 (int_range 1 3) (int_range 0 100000))
    (fun (gates, seed) ->
      let branches = Array.init gates (fun i -> 2 + ((seed / (i + 1)) mod 2)) in
      let outcome = Array.mapi (fun i nb -> (seed / (3 * (i + 1))) mod nb) branches in
      let g, x, preds = gated_chain ~branches in
      let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=16") cpu g in
      let inputs = inputs_for g x preds outcome in
      let reference = RT.Reference.run g ~inputs in
      let _, base = RT.Executor.run_real c ~inputs in
      let runs_before = count "variant-run" in
      let _, specialized = RT.Executor.run_real ~outcomes:outcome c ~inputs in
      check_bits "base" reference base;
      check_bits "variant" reference specialized;
      Alcotest.(check int) "run went through the variant" (runs_before + 1)
        (count "variant-run");
      true)

(* --- budget overflow ----------------------------------------------- *)

let test_budget_overflow_falls_back () =
  let branches = [| 2; 2; 2 |] in
  let g, x, preds = gated_chain ~branches in
  let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=2") cpu g in
  let all_outcomes =
    [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 1; 1; 1 |] ]
  in
  let overflow_before = count "variant-overflow" in
  List.iter
    (fun outcome ->
      let inputs = inputs_for g x preds outcome in
      let reference = RT.Reference.run g ~inputs in
      let _, outs = RT.Executor.run_real ~outcomes:outcome c ~inputs in
      check_bits "overflow fallback" reference outs)
    all_outcomes;
  Alcotest.(check int) "budget kept exactly 2 variants" 2
    (Hashtbl.length c.Sod2.Pipeline.variants);
  Alcotest.(check bool) "overflow was counted" true
    (count "variant-overflow" > overflow_before)

(* --- misprediction -------------------------------------------------- *)

let test_mispredict_falls_back () =
  let branches = [| 2; 2 |] in
  let g, x, preds = gated_chain ~branches in
  let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=8") cpu g in
  (* The inputs route 1,1 but we predict 0,0: the gate-0 verification must
     detect the lie and rerun on the any-path plan with fresh state. *)
  let inputs = inputs_for g x preds [| 1; 1 |] in
  let reference = RT.Reference.run g ~inputs in
  let mispred_before = count "variant-mispredict" in
  let runs_before = count "variant-run" in
  let _, outs = RT.Executor.run_real ~outcomes:[| 0; 0 |] c ~inputs in
  check_bits "mispredict fallback" reference outs;
  Alcotest.(check int) "mispredict counted" (mispred_before + 1)
    (count "variant-mispredict");
  Alcotest.(check int) "no variant-run credit for the lie" runs_before
    (count "variant-run")

(* --- zero per-node branch resolution, zero-miss steady state -------- *)

let test_variant_steady_state_counters () =
  let branches = [| 2; 2 |] in
  let g, x, preds = gated_chain ~branches in
  let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=8") cpu g in
  let outcome = [| 1; 0 |] in
  let inputs = inputs_for g x preds outcome in
  let env = Env.empty in
  let arena = RT.Arena.create () in
  let memory = RT.Executor.Arena { arena; env } in
  let run ?outcomes () = snd (RT.Executor.run_real ~memory ?outcomes c ~inputs) in
  let reference = RT.Reference.run g ~inputs in
  (* Base run: readiness scans happen.  Variant run: none. *)
  let scans0 = count "exec-ready-scan" in
  check_bits "arena base" reference (run ());
  let scans_base = count "exec-ready-scan" - scans0 in
  Alcotest.(check bool) "base plan scans readiness" true (scans_base > 0);
  let scans1 = count "exec-ready-scan" in
  check_bits "arena variant" reference (run ~outcomes:outcome ());
  Alcotest.(check int) "variant run performs zero readiness scans" 0
    (count "exec-ready-scan" - scans1);
  (* Steady state: the (binding × outcome) plan is cached — no further
     instantiation, one hit per run. *)
  let misses = count "plan-cache-miss" in
  let hits = count "plan-cache-hit" in
  for _ = 1 to 4 do
    check_bits "steady variant" reference (run ~outcomes:outcome ())
  done;
  Alcotest.(check int) "zero plan-cache misses in steady state" misses
    (count "plan-cache-miss");
  Alcotest.(check int) "every steady run hit the variant plan" (hits + 4)
    (count "plan-cache-hit")

(* --- AOT enumeration ------------------------------------------------ *)

let test_aot_enumeration () =
  let branches = [| 2; 2 |] in
  let g, _, _ = gated_chain ~branches in
  (* Budget covers the full outcome space: all four variants precompiled. *)
  let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=4") cpu g in
  Alcotest.(check int) "full space enumerated at compile" 4
    (Hashtbl.length c.Sod2.Pipeline.variants);
  (* Budget below the space: nothing enumerated wholesale, explicit AOT
     vectors still compiled. *)
  let c2 = Sod2.Pipeline.compile ~opts:(opts_of "variants=2,aot=10") cpu g in
  Alcotest.(check int) "only the requested vector" 1
    (Hashtbl.length c2.Sod2.Pipeline.variants);
  Alcotest.(check bool) "keyed by its outcome key" true
    (Hashtbl.mem c2.Sod2.Pipeline.variants "10");
  (* variants=0 disables the machinery entirely. *)
  let c3 = Sod2.Pipeline.compile cpu g in
  Alcotest.(check (option unit)) "no budget, no variant"
    None
    (Option.map ignore (Sod2.Pipeline.variant c3 ~outcome:[| 0; 0 |]))

(* --- outcome-key round-trip ----------------------------------------- *)

let prop_outcome_key_roundtrip =
  QCheck2.Test.make ~name:"outcome_key/outcome_of_key round-trip" ~count:200
    QCheck2.Gen.(list_size (int_range 1 6) (int_range (-1) 12))
    (fun digits ->
      let v = Array.of_list digits in
      match Sod2.Multi_version.outcome_of_key (Sod2.Multi_version.outcome_key v) with
      | Some w -> w = v
      | None -> false)

(* --- Compile_opts round-trip ---------------------------------------- *)

let prop_compile_opts_roundtrip =
  QCheck2.Test.make ~name:"Compile_opts.of_string/to_string round-trip" ~count:200
    QCheck2.Gen.(
      tup4 (int_range 0 2) (int_range 0 3) (int_range 0 128) (int_range 0 16))
    (fun (dt, flags, sym, variants) ->
      let tokens =
        List.concat
          [
            (match dt with 1 -> [ "f32" ] | 2 -> [ "f64" ] | _ -> []);
            (if flags land 1 <> 0 then [ "int8" ] else []);
            (if flags land 2 <> 0 then [ "nofuse" ] else []);
            (if sym > 0 then [ Printf.sprintf "sym=%d" sym ] else []);
            (if variants > 0 then [ Printf.sprintf "variants=%d" variants ] else []);
            (if variants > 2 then [ "aot=010"; "aot=10" ] else []);
          ]
      in
      let s = String.concat "," tokens in
      match Sod2.Compile_opts.of_string s with
      | Error e -> QCheck2.Test.fail_reportf "of_string %S: %s" s e
      | Ok t -> Sod2.Compile_opts.of_string (Sod2.Compile_opts.to_string t) = Ok t)

let test_exec_config_roundtrip () =
  List.iter
    (fun spec ->
      match RT.Executor.config_of_string spec with
      | Error e -> Alcotest.failf "config_of_string %S: %s" spec e
      | Ok cfg ->
        let s = RT.Executor.config_to_string cfg in
        (match RT.Executor.config_of_string s with
        | Ok cfg' when cfg' = cfg -> ()
        | Ok _ -> Alcotest.failf "%S round-tripped to a different config (%S)" spec s
        | Error e -> Alcotest.failf "re-parse of %S failed: %s" s e))
    [
      "naive"; "fused,arena"; "fused,arena,guarded,variants=8";
      "parallel,malloc,all-paths,f64,sym=32"; "blocked,int8,variants=3,aot=01";
    ]

(* --- engine: predicted variants, vet-once, aggregated stats --------- *)

let test_engine_variant_serving () =
  let branches = [| 2; 2 |] in
  let g, x, preds = gated_chain ~branches in
  let opts = opts_of "variants=8" in
  let c = Sod2.Pipeline.compile ~opts cpu g in
  let cfg =
    {
      RT.Executor.default_config with
      RT.Executor.memory = RT.Executor.Mem_arena;
      guarded = true;
      compile = opts;
    }
  in
  let outcome = [| 1; 0 |] in
  let inputs = inputs_for g x preds outcome in
  let reference = RT.Reference.run g ~inputs in
  let engine = RT.Engine.create ~workers:1 ~max_batch:1 ~config:cfg c in
  Fun.protect
    ~finally:(fun () -> RT.Engine.shutdown engine)
    (fun () ->
      let direct0 = count "engine-variant-direct" in
      (* Request 1 runs the guarded sweep and learns the outcome vector;
         every later same-key request takes the vet-once direct path. *)
      for i = 1 to 6 do
        let r = RT.Engine.infer engine ~env:Env.empty ~inputs in
        check_bits (Printf.sprintf "engine request %d" i) reference
          r.RT.Engine.outputs
      done;
      let misses = count "plan-cache-miss" in
      for i = 7 to 9 do
        let r = RT.Engine.infer engine ~env:Env.empty ~inputs in
        check_bits (Printf.sprintf "engine request %d" i) reference
          r.RT.Engine.outputs
      done;
      Alcotest.(check int) "steady-state serving: zero plan-cache misses"
        misses (count "plan-cache-miss");
      Alcotest.(check bool) "vet-once direct path served the repeats" true
        (count "engine-variant-direct" - direct0 >= 5);
      let st = RT.Engine.stats engine in
      Alcotest.(check int) "one base plan key" 1 st.RT.Engine.plan_keys;
      Alcotest.(check bool) "variant plans reported separately" true
        (st.RT.Engine.plan_variants >= 1);
      Alcotest.(check int) "nothing failed" 0 st.RT.Engine.failed)

(* --- Guarded_exec vets variants once at compile/first-use ----------- *)

let test_variant_vetted () =
  let branches = [| 2 |] in
  let g, _, _ = gated_chain ~branches in
  let c = Sod2.Pipeline.compile ~opts:(opts_of "variants=4") cpu g in
  match Sod2.Pipeline.variant c ~outcome:[| 1 |] with
  | None -> Alcotest.fail "expected a variant within budget"
  | Some v ->
    let vets = count "variant-vet" in
    Alcotest.(check bool) "variant plan vets clean" true
      (Sod2.Pipeline.variant_vetted c v Env.empty);
    Alcotest.(check int) "vetting ran once" (vets + 1) (count "variant-vet");
    Alcotest.(check bool) "second query is cached" true
      (Sod2.Pipeline.variant_vetted c v Env.empty);
    Alcotest.(check int) "no re-vet" (vets + 1) (count "variant-vet")

let suite =
  [
    Alcotest.test_case "budget overflow falls back to any-path" `Quick
      test_budget_overflow_falls_back;
    Alcotest.test_case "mispredicted gate falls back bit-exactly" `Quick
      test_mispredict_falls_back;
    Alcotest.test_case "variant runs: no readiness scans, zero-miss steady state"
      `Quick test_variant_steady_state_counters;
    Alcotest.test_case "AOT enumeration honors budget and aot= vectors" `Quick
      test_aot_enumeration;
    Alcotest.test_case "exec config round-trips with compile tokens" `Quick
      test_exec_config_roundtrip;
    Alcotest.test_case "engine predicts, vets once and aggregates stats" `Quick
      test_engine_variant_serving;
    Alcotest.test_case "variant plans are vetted once" `Quick test_variant_vetted;
    QCheck_alcotest.to_alcotest prop_variant_bit_identical;
    QCheck_alcotest.to_alcotest prop_outcome_key_roundtrip;
    QCheck_alcotest.to_alcotest prop_compile_opts_roundtrip;
  ]
