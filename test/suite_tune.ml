(* Tests for the closed tuning loop: objective modes of the GA tuner
   (never worse than the untuned default under any objective), the
   config/cache-file round trips with fail-soft parsing, warm-starting
   an engine from a cache with zero serving-time measurements, and the
   online drift detector's background re-tune. *)

module RT = Sod2_runtime

let cpu = Profile.sd888_cpu

(* Deterministic synthetic measurer: faster configs are exactly the ones
   the analytical model likes, so measured-mode assertions need no real
   timing (and no timing noise). *)
let synthetic_measure ~m ~n ~k c = 1e6 /. Sod2.Autotune.efficiency cpu c ~m ~n ~k

(* --- tuner objectives --------------------------------------------- *)

let prop_never_worse_than_default =
  QCheck2.Test.make
    ~name:"tune: winner never scores worse than default_config (any objective)"
    ~count:30
    QCheck2.Gen.(tup4 (int_range 8 96) (int_range 8 96) (int_range 8 96) (int_range 0 10_000))
    (fun (m, n, k, seed) ->
      let measure = synthetic_measure ~m ~n ~k in
      let default = Sod2.Autotune.default_config in
      List.for_all
        (fun objective ->
          let best, _ =
            Sod2.Autotune.tune ~generations:4 ~population:6 ~objective ~measure
              ~finalists:3 cpu (Rng.create seed) ~m ~n ~k
          in
          match objective with
          | Sod2.Autotune.Analytical ->
            Sod2.Autotune.efficiency cpu best ~m ~n ~k
            >= Sod2.Autotune.efficiency cpu default ~m ~n ~k -. 1e-9
          | Sod2.Autotune.Measured | Sod2.Autotune.Hybrid ->
            measure best <= measure default +. 1e-6)
        [ Sod2.Autotune.Analytical; Sod2.Autotune.Measured; Sod2.Autotune.Hybrid ])

let test_objective_names () =
  List.iter
    (fun o ->
      Alcotest.(check bool)
        "objective name round-trips" true
        (Sod2.Autotune.objective_of_string (Sod2.Autotune.objective_name o) = Some o))
    [ Sod2.Autotune.Analytical; Sod2.Autotune.Measured; Sod2.Autotune.Hybrid ];
  Alcotest.(check bool)
    "unknown objective rejected" true
    (Sod2.Autotune.objective_of_string "simulated" = None)

(* Without a [measure] callback, Measured/Hybrid degrade to Analytical —
   same GA, same RNG draws, same winner. *)
let test_objective_degrades_without_measurer () =
  let tune objective =
    fst (Sod2.Autotune.tune ~objective cpu (Rng.create 11) ~m:64 ~n:128 ~k:32)
  in
  let a = tune Sod2.Autotune.Analytical in
  Alcotest.(check bool) "measured degrades" true (tune Sod2.Autotune.Measured = a);
  Alcotest.(check bool) "hybrid degrades" true (tune Sod2.Autotune.Hybrid = a)

(* --- config string round trip ------------------------------------- *)

let config_gen =
  QCheck2.Gen.(
    map
      (fun (tm, tn, tk, (u, th, v)) ->
        {
          Sod2.Autotune.tile_m = tm;
          tile_n = tn;
          tile_k = tk;
          unroll = u;
          threads = th;
          vectorize = v;
        })
      (tup4 (int_range 1 512) (int_range 1 512) (int_range 1 512)
         (tup3 (int_range 1 16) (int_range 1 64) bool)))

let prop_config_round_trip =
  QCheck2.Test.make ~name:"config_of_string (config_to_string c) = Ok c" ~count:200
    config_gen
    (fun c ->
      Sod2.Autotune.config_of_string (Sod2.Autotune.config_to_string c) = Ok c)

let test_config_of_string_rejects () =
  List.iter
    (fun s ->
      match Sod2.Autotune.config_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed config %S" s)
    [
      "";
      "tm=32,tn=32,tk=32,u=1,th=4";           (* missing key *)
      "tm=32,tn=32,tk=32,u=1,th=4,v=2";       (* v outside {0,1} *)
      "tm=0,tn=32,tk=32,u=1,th=4,v=0";        (* non-positive *)
      "tm=32,tm=32,tk=32,u=1,th=4,v=0";       (* duplicate key *)
      "tm=32,tn=32,tk=32,u=1,th=4,v=0,x=1";   (* extra key *)
      "tm=a,tn=32,tk=32,u=1,th=4,v=0";        (* non-numeric *)
    ]

(* --- cache file round trip and fail-soft parsing ------------------- *)

let mk_config i =
  {
    Sod2.Autotune.tile_m = 16 * (i + 1);
    tile_n = 8 * (i + 1);
    tile_k = 4 * (i + 1);
    unroll = i + 1;
    threads = 2 * (i + 1);
    vectorize = i mod 2 = 0;
  }

let full_cache () =
  let cache = Sod2.Tune_cache.create () in
  List.iteri
    (fun i cls ->
      Sod2.Tune_cache.set cache ~op:"gemm" ~cls ~backend:"blocked" ~dtype:"f32"
        ~config:(mk_config i) ~score_us:(100.0 *. float_of_int (i + 1))
        ~objective:"hybrid")
    Sod2.Multi_version.all_classes;
  cache

let test_cache_string_round_trip () =
  let cache = full_cache () in
  let reloaded, skipped = Sod2.Tune_cache.of_string (Sod2.Tune_cache.to_string cache) in
  Alcotest.(check int) "no skipped lines" 0 skipped;
  Alcotest.(check int) "same size" 4 (Sod2.Tune_cache.size reloaded);
  List.iteri
    (fun i cls ->
      match Sod2.Tune_cache.find reloaded ~op:"gemm" ~cls ~backend:"blocked" ~dtype:"f32" with
      | None -> Alcotest.failf "entry for %s lost" (Sod2.Multi_version.class_name cls)
      | Some e ->
        Alcotest.(check bool) "config survives" true (e.Sod2.Tune_cache.e_config = mk_config i);
        Alcotest.(check (float 0.001)) "score survives"
          (100.0 *. float_of_int (i + 1))
          e.Sod2.Tune_cache.e_score_us;
        Alcotest.(check string) "objective survives" "hybrid" e.Sod2.Tune_cache.e_objective)
    Sod2.Multi_version.all_classes;
  (* canonical rendering: reloading and re-rendering is byte-identical *)
  Alcotest.(check string) "canonical" (Sod2.Tune_cache.to_string cache)
    (Sod2.Tune_cache.to_string reloaded)

let test_cache_file_round_trip () =
  let path = Filename.temp_file "sod2-tune" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let cache = full_cache () in
      Sod2.Tune_cache.save cache path;
      let reloaded, skipped = Sod2.Tune_cache.load_verbose path in
      Alcotest.(check int) "no skipped lines" 0 skipped;
      Alcotest.(check string) "file round trip" (Sod2.Tune_cache.to_string cache)
        (Sod2.Tune_cache.to_string reloaded))

let test_cache_corrupt_lines_skipped () =
  let good = "gemm|fat|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|8123.400|hybrid" in
  let body =
    String.concat "\n"
      [
        "sod2-tune v1";
        good;
        "gemm|fat|blocked|f32|tm=64|1.0|hybrid";        (* bad config *)
        "gemm|mega|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|1.0|hybrid"; (* bad class *)
        "gemm|fat|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|fast|hybrid"; (* bad score *)
        "not a cache line at all";
        "gemm|fat|blocked";                              (* too few fields *)
      ]
  in
  let cache, skipped = Sod2.Tune_cache.of_string body in
  Alcotest.(check int) "one good entry" 1 (Sod2.Tune_cache.size cache);
  Alcotest.(check int) "five corrupt lines skipped" 5 skipped;
  Alcotest.(check bool) "good entry survives" true
    (Sod2.Tune_cache.find cache ~op:"gemm" ~cls:Sod2.Multi_version.Fat
       ~backend:"blocked" ~dtype:"f32"
    <> None)

let test_cache_stale_header_and_missing_file () =
  let stale =
    "sod2-tune v99\ngemm|fat|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|1.0|hybrid\n"
  in
  let cache, skipped = Sod2.Tune_cache.of_string stale in
  Alcotest.(check int) "stale header drops body" 0 (Sod2.Tune_cache.size cache);
  Alcotest.(check bool) "stale header counts skips" true (skipped > 0);
  let missing, skipped' = Sod2.Tune_cache.load_verbose "/nonexistent/sod2.tune" in
  Alcotest.(check int) "missing file is empty" 0 (Sod2.Tune_cache.size missing);
  Alcotest.(check int) "missing file skips nothing" 0 skipped'

let test_table_for_resolution () =
  let fallback = Sod2.Multi_version.untuned in
  let cache = Sod2.Tune_cache.create () in
  (* empty cache: fallback untouched, zero warm classes *)
  let table, warm = Sod2.Tune_cache.table_for cache ~backend:"parallel" ~dtype:"f32" ~fallback in
  Alcotest.(check int) "empty cache warms nothing" 0 warm;
  Alcotest.(check bool) "empty cache returns fallback" true (table == fallback);
  (* one blocked entry: every backend family falls back to it for that class *)
  Sod2.Tune_cache.set cache ~op:"gemm" ~cls:Sod2.Multi_version.Fat ~backend:"blocked"
    ~dtype:"f32" ~config:(mk_config 0) ~score_us:1.0 ~objective:"hybrid";
  let table, warm = Sod2.Tune_cache.table_for cache ~backend:"parallel" ~dtype:"f32" ~fallback in
  Alcotest.(check int) "blocked entry warms one class" 1 warm;
  Alcotest.(check bool) "fat comes from cache" true
    (Sod2.Multi_version.config_for table Sod2.Multi_version.Fat = mk_config 0);
  Alcotest.(check bool) "tiny falls back" true
    (Sod2.Multi_version.config_for table Sod2.Multi_version.Tiny
    = Sod2.Multi_version.config_for fallback Sod2.Multi_version.Tiny);
  (* an exact backend entry wins over the blocked fallback *)
  Sod2.Tune_cache.set cache ~op:"gemm" ~cls:Sod2.Multi_version.Fat ~backend:"parallel"
    ~dtype:"f32" ~config:(mk_config 3) ~score_us:1.0 ~objective:"hybrid";
  let table, _ = Sod2.Tune_cache.table_for cache ~backend:"parallel" ~dtype:"f32" ~fallback in
  Alcotest.(check bool) "exact backend beats blocked" true
    (Sod2.Multi_version.config_for table Sod2.Multi_version.Fat = mk_config 3);
  (* dtype is part of the key: f64 sees nothing *)
  let _, warm = Sod2.Tune_cache.table_for cache ~backend:"parallel" ~dtype:"f64" ~fallback in
  Alcotest.(check int) "other dtype warms nothing" 0 warm

(* --- engine integration -------------------------------------------- *)

(* Small Sub-chain over a symbolic batch dimension (as in suite_engine):
   every step is a real kernel, so drift observation sees real busy time,
   but the suite stays fast. *)
let stream_graph ~steps ~cols () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "B"; Dim.of_int cols ])
  in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> 0.5 *. v) (Tensor.rand_uniform (Rng.create 17) [ cols ]))
  in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur ];
  Graph.Builder.finish b

let graph = stream_graph ~steps:6 ~cols:16 ()
let env = Env.of_list [ "B", 4 ]
let inputs_for seed = [ 0, Tensor.rand_uniform (Rng.create seed) [ 4; 16 ] ]

(* Acceptance criterion: a warm-started engine performs zero tuning
   measurements at serving time — create, serve, shut down, and the
   process-global tune-measurement counter must not move. *)
let test_warm_start_zero_measurements () =
  let c = Sod2.Pipeline.compile cpu graph in
  let cache = full_cache () in
  let before = Sod2.Tune_measure.measurement_count () in
  let eng = RT.Engine.create ~workers:1 ~tune_cache:cache c in
  let _ = RT.Engine.infer eng ~env ~inputs:(inputs_for 1) in
  let _ = RT.Engine.infer eng ~env ~inputs:(inputs_for 2) in
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "all four classes warm" 4 st.RT.Engine.warm_classes;
  Alcotest.(check int) "zero serving-time measurements" before
    (Sod2.Tune_measure.measurement_count ());
  Alcotest.(check int) "no re-tunes" 0 st.RT.Engine.retunes;
  Alcotest.(check int) "both requests served" 2 st.RT.Engine.completed

(* `sod2 tune` flow: measured winners → save → reload → warm start with
   zero re-tunes.  The Tiny class is tuned for real (16³ GEMM — cheap);
   the other classes get synthetic entries so the test does not spend
   seconds timing fat GEMMs. *)
let test_tuned_cache_reloads_with_zero_retunes () =
  let tiny_cfg, tiny_us =
    Sod2.Tune_measure.tune_class ~objective:Sod2.Autotune.Hybrid ~rounds:1
      ~generations:2 ~population:4 ~finalists:2 cpu ~dt:Tensor.F32
      Sod2.Multi_version.Tiny
  in
  Alcotest.(check bool) "tiny measurement is positive" true (tiny_us > 0.0);
  let cache = full_cache () in
  Sod2.Tune_cache.set cache ~op:"gemm" ~cls:Sod2.Multi_version.Tiny ~backend:"blocked"
    ~dtype:"f32" ~config:tiny_cfg ~score_us:tiny_us ~objective:"hybrid";
  let path = Filename.temp_file "sod2-tune" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sod2.Tune_cache.save cache path;
      let reloaded, skipped = Sod2.Tune_cache.load_verbose path in
      Alcotest.(check int) "reload skips nothing" 0 skipped;
      let c = Sod2.Pipeline.compile cpu graph in
      let before = Sod2.Tune_measure.measurement_count () in
      let eng = RT.Engine.create ~workers:1 ~tune_cache:reloaded c in
      let _ = RT.Engine.infer eng ~env ~inputs:(inputs_for 3) in
      RT.Engine.shutdown eng;
      let st = RT.Engine.stats eng in
      Alcotest.(check int) "reloaded cache warms all classes" 4 st.RT.Engine.warm_classes;
      Alcotest.(check int) "zero re-tunes" 0 st.RT.Engine.retunes;
      Alcotest.(check int) "zero drift trips" 0 st.RT.Engine.drift_trips;
      Alcotest.(check int) "zero measurements on reload" before
        (Sod2.Tune_measure.measurement_count ()))

(* Drift detector: with a hair-trigger threshold and an injected re-tuner,
   steady traffic must trip the detector and swap the new table in on a
   background domain (observable after shutdown joins it). *)
let test_drift_triggers_background_retune () =
  let c = Sod2.Pipeline.compile cpu graph in
  let retune_calls = Atomic.make 0 in
  let retune () =
    Atomic.incr retune_calls;
    Sod2.Multi_version.untuned
  in
  let eng =
    RT.Engine.create ~workers:1 ~drift_threshold:1e-6 ~drift_window:2 ~retune c
  in
  for i = 1 to 16 do
    ignore (RT.Engine.infer eng ~env ~inputs:(inputs_for (100 + i)))
  done;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check bool) "drift tripped" true (st.RT.Engine.drift_trips >= 1);
  Alcotest.(check bool) "re-tune ran" true (st.RT.Engine.retunes >= 1);
  Alcotest.(check bool) "injected tuner was used" true (Atomic.get retune_calls >= 1);
  Alcotest.(check int) "all requests served" 16 st.RT.Engine.completed

(* Default drift_threshold = 0 disables the detector entirely. *)
let test_drift_disabled_by_default () =
  let c = Sod2.Pipeline.compile cpu graph in
  let eng = RT.Engine.create ~workers:1 c in
  for i = 1 to 8 do
    ignore (RT.Engine.infer eng ~env ~inputs:(inputs_for (200 + i)))
  done;
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  Alcotest.(check int) "no drift trips" 0 st.RT.Engine.drift_trips;
  Alcotest.(check int) "no re-tunes" 0 st.RT.Engine.retunes;
  Alcotest.(check int) "no warm classes" 0 st.RT.Engine.warm_classes

let suite =
  [
    Alcotest.test_case "objective names" `Quick test_objective_names;
    Alcotest.test_case "objectives degrade without measurer" `Quick
      test_objective_degrades_without_measurer;
    Alcotest.test_case "config_of_string rejects malformed" `Quick
      test_config_of_string_rejects;
    Alcotest.test_case "cache string round trip" `Quick test_cache_string_round_trip;
    Alcotest.test_case "cache file round trip" `Quick test_cache_file_round_trip;
    Alcotest.test_case "corrupt cache lines skipped" `Quick
      test_cache_corrupt_lines_skipped;
    Alcotest.test_case "stale header and missing file" `Quick
      test_cache_stale_header_and_missing_file;
    Alcotest.test_case "table_for resolution order" `Quick test_table_for_resolution;
    Alcotest.test_case "warm start: zero serving-time measurements" `Quick
      test_warm_start_zero_measurements;
    Alcotest.test_case "tuned cache reloads with zero re-tunes" `Quick
      test_tuned_cache_reloads_with_zero_retunes;
    Alcotest.test_case "drift trips a background re-tune" `Quick
      test_drift_triggers_background_retune;
    Alcotest.test_case "drift disabled by default" `Quick test_drift_disabled_by_default;
    QCheck_alcotest.to_alcotest prop_never_worse_than_default;
    QCheck_alcotest.to_alcotest prop_config_round_trip;
  ]
