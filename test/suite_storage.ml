(* Storage-layer truth: the dtype a tensor claims is the dtype its bytes
   occupy.  Covers the accounting invariant [byte_size = numel ×
   bytes_per_elem] for every kind, f32 stores rounding to single
   precision, saturating float→int casts, ravel bounds checking,
   bit-identity of blocked / parallel / fused / arena execution against
   the naive reference per float kind, and byte conservation — planned
   slot bytes = executed tensor bytes = arena bytes reserved — across
   all three memory-plan strategies under f32 and f64. *)

module RT = Sod2_runtime
module MP = Sod2.Mem_plan

let cpu = Profile.sd888_cpu

let all_dtypes = [ Tensor.F32; Tensor.F64; Tensor.I8; Tensor.I64 ]

(* ------------------------------------------------------------------ *)
(* Byte accounting                                                     *)
(* ------------------------------------------------------------------ *)

let prop_byte_size =
  QCheck2.Test.make ~name:"byte_size = numel × bytes_per_elem for every dtype"
    ~count:100
    QCheck2.Gen.(pair (list_size (int_range 0 4) (int_range 1 5)) (int_range 0 3))
    (fun (dims, ki) ->
      let dt = List.nth all_dtypes ki in
      let t = Tensor.zeros dt dims in
      let n = List.fold_left ( * ) 1 dims in
      Tensor.dtype t = dt
      && Tensor.numel t = n
      && Tensor.byte_size t = n * Tensor.bytes_per_elem dt
      && (not (Tensor.is_float_dtype dt)
         || Tensor.fbuf_len (Tensor.storage_f t) = n))

(* Whatever goes into an F32 tensor comes back out rounded to single
   precision — no more, no less — while F64 stores are exact.  (Both
   sides of each comparison are NaN-tolerant: Float.equal nan nan.) *)
let prop_f32_roundtrip =
  QCheck2.Test.make ~name:"f32 round-trips lose exactly single-precision bits"
    ~count:200 QCheck2.Gen.float
    (fun v ->
      let r32 = Tensor.get_f (Tensor.of_floats Tensor.F32 [] [| v |]) [||] in
      let r64 = Tensor.get_f (Tensor.of_floats Tensor.F64 [] [| v |]) [||] in
      Float.equal r32 (Tensor.round_f32 v)
      && Float.equal r64 v
      && Float.equal (Tensor.round_f32 r32) r32)

(* ------------------------------------------------------------------ *)
(* Saturating float→int casts                                          *)
(* ------------------------------------------------------------------ *)

let test_saturating_cast () =
  let c64 v dt =
    Tensor.get_i (Tensor.cast (Tensor.of_floats Tensor.F64 [] [| v |]) dt) [||]
  in
  Alcotest.(check int) "NaN → 0" 0 (c64 Float.nan Tensor.I64);
  Alcotest.(check int) "+huge clamps to max_int" max_int (c64 1e300 Tensor.I64);
  Alcotest.(check int) "-huge clamps to min_int" min_int (c64 (-1e300) Tensor.I64);
  Alcotest.(check int) "+inf clamps" max_int (c64 Float.infinity Tensor.I64);
  Alcotest.(check int) "-inf clamps" min_int (c64 Float.neg_infinity Tensor.I64);
  Alcotest.(check int) "truncates toward zero (+)" 3 (c64 3.9 Tensor.I64);
  Alcotest.(check int) "truncates toward zero (-)" (-3) (c64 (-3.9) Tensor.I64);
  Alcotest.(check int) "i8 clamps high" 127 (c64 300.0 Tensor.I8);
  Alcotest.(check int) "i8 clamps low" (-128) (c64 (-300.0) Tensor.I8);
  (* the same contract holds from F32 storage *)
  let c32 v dt =
    Tensor.get_i (Tensor.cast (Tensor.of_floats Tensor.F32 [] [| v |]) dt) [||]
  in
  Alcotest.(check int) "f32 NaN → 0" 0 (c32 Float.nan Tensor.I64);
  Alcotest.(check int) "f32 huge clamps" max_int (c32 1e38 Tensor.I64);
  Alcotest.(check int) "f32 in-range truncates" 41 (c32 41.75 Tensor.I64)

(* ------------------------------------------------------------------ *)
(* Ravel bounds checking                                               *)
(* ------------------------------------------------------------------ *)

let test_ravel_bounds () =
  Alcotest.(check int) "in-range index ravels row-major" 7
    (Tensor.ravel [| 3; 4 |] [| 1; 3 |]);
  let expect_shape_error name f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Shape_mismatch" name
    | exception Sod2_error.Error e ->
      Alcotest.(check bool)
        (name ^ ": error class is Shape_mismatch")
        true
        (e.Sod2_error.cls = Sod2_error.Shape_mismatch)
  in
  expect_shape_error "axis overflow" (fun () -> Tensor.ravel [| 3; 4 |] [| 1; 4 |]);
  expect_shape_error "negative index" (fun () -> Tensor.ravel [| 3; 4 |] [| -1; 0 |]);
  expect_shape_error "rank mismatch" (fun () -> Tensor.ravel [| 3; 4 |] [| 1 |])

(* ------------------------------------------------------------------ *)
(* Per-kind bit-identity across executors                              *)
(* ------------------------------------------------------------------ *)

(* A GEMM anchor with a pointwise epilogue plus a second branch, so the
   plan holds several overlapping lifetimes.  Consts are cast to the
   artifact dtype so the whole run stays in one kind. *)
let mixed_graph dt =
  let rng = Rng.create 97 in
  let cast t = Tensor.cast t dt in
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 12; 16 ]) in
  let w = Graph.Builder.const b ~name:"w" (cast (Tensor.rand_uniform rng [ 16; 8 ])) in
  let w2 = Graph.Builder.const b ~name:"w2" (cast (Tensor.rand_uniform rng [ 16; 8 ])) in
  let bias = Graph.Builder.const b ~name:"bias" (cast (Tensor.rand_uniform rng [ 8 ])) in
  let mm = Graph.Builder.node1 b Op.MatMul [ x; w ] in
  let mm2 = Graph.Builder.node1 b Op.MatMul [ x; w2 ] in
  let ad = Graph.Builder.node1 b (Op.Binary Op.Add) [ mm; bias ] in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ ad ] in
  let m = Graph.Builder.node1 b (Op.Binary Op.Mul) [ s; mm2 ] in
  let r = Graph.Builder.node1 b (Op.Unary Op.Relu) [ m ] in
  Graph.Builder.set_outputs b [ r ];
  x, Graph.Builder.finish b

(* Pointwise-only chain: fused groups must reproduce op-by-op stores
   bit-for-bit in either kind. *)
let pointwise_graph dt =
  let rng = Rng.create 59 in
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 9; 32 ]) in
  let row = Graph.Builder.const b ~name:"row" (Tensor.cast (Tensor.rand_uniform rng [ 32 ]) dt) in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ x ] in
  let a = Graph.Builder.node1 b (Op.Binary Op.Add) [ s; row ] in
  let ge = Graph.Builder.node1 b (Op.Unary Op.Gelu) [ a ] in
  let cl = Graph.Builder.node1 b (Op.Clip (-0.9, 0.9)) [ ge ] in
  Graph.Builder.set_outputs b [ cl ];
  x, Graph.Builder.finish b

let check_bitwise name want got =
  List.iter2
    (fun (tid, w) (tid', g) ->
      Alcotest.(check int) (name ^ ": output id") tid tid';
      Alcotest.(check (list int)) (name ^ ": dims") (Tensor.dims w) (Tensor.dims g);
      Alcotest.(check string)
        (name ^ ": dtype")
        (Tensor.dtype_name (Tensor.dtype w))
        (Tensor.dtype_name (Tensor.dtype g));
      let dw = Tensor.data_f w and dg = Tensor.data_f g in
      Array.iteri
        (fun i v ->
          if not (Float.equal v dg.(i)) then
            Alcotest.failf "%s: t%d element %d: %h <> %h" name tid i v dg.(i))
        dw)
    want got

let input_for seed dt = Tensor.cast (Tensor.rand_uniform (Rng.create seed) [ 12; 16 ]) dt

let test_backends_bit_identical () =
  List.iter
    (fun dt ->
      let kn = Tensor.dtype_name dt in
      let x, g = mixed_graph dt in
      let c = Sod2.Pipeline.compile ~float_dtype:dt cpu g in
      let inputs = [ x, input_for 11 dt ] in
      let _, want = RT.Executor.run_real c ~inputs in
      List.iter
        (fun (_, t) ->
          Alcotest.(check string) (kn ^ ": reference output dtype") kn
            (Tensor.dtype_name (Tensor.dtype t)))
        want;
      List.iter
        (fun (kind, bn) ->
          let be = RT.Backend.for_compiled kind c in
          Fun.protect
            ~finally:(fun () -> RT.Backend.shutdown be)
            (fun () ->
              let _, got = RT.Executor.run_real ~backend:be c ~inputs in
              check_bitwise (Printf.sprintf "%s backend, %s" bn kn) want got))
        [ RT.Backend.Blocked, "blocked"; RT.Backend.Parallel, "parallel" ];
      (* arena execution: planned slots, destination-passing stores *)
      let res = RT.Engine.run_arena c ~env:Env.empty ~inputs in
      check_bitwise (Printf.sprintf "arena, %s" kn) want res.RT.Engine.outputs;
      Alcotest.(check bool) (kn ^ ": tensors lived in the arena") true
        (res.RT.Engine.arena_resident > 0))
    [ Tensor.F32; Tensor.F64 ]

let test_fused_bit_identical () =
  List.iter
    (fun dt ->
      let kn = Tensor.dtype_name dt in
      let x, g = pointwise_graph dt in
      let c = Sod2.Pipeline.compile ~float_dtype:dt cpu g in
      let inputs = [ x, Tensor.cast (Tensor.rand_uniform (Rng.create 13) [ 9; 32 ]) dt ] in
      let _, want = RT.Executor.run_real c ~inputs in
      let be = RT.Backend.for_compiled RT.Backend.Fused c in
      Fun.protect
        ~finally:(fun () -> RT.Backend.shutdown be)
        (fun () ->
          let _, got = RT.Executor.run_real ~backend:be c ~inputs in
          check_bitwise (Printf.sprintf "fused backend, %s" kn) want got))
    [ Tensor.F32; Tensor.F64 ]

(* ------------------------------------------------------------------ *)
(* Byte conservation across plan strategies and kinds                  *)
(* ------------------------------------------------------------------ *)

let strategies =
  [ MP.Greedy_first_fit, "greedy"; MP.Peak_first, "peak-first"; MP.Optimal_search, "optimal" ]

(* For every placement strategy × float kind: every planned slot's bytes
   equal the bytes the executor actually materializes for that tensor
   (trace events are dtype-derived), every offset and size is a whole
   number of elements, the placements validate, the strategies agree on
   total slot bytes (they may only differ in placement), and the arena
   reserves exactly the planned bytes in the artifact's kind.  A 4-vs-8
   confusion anywhere breaks at least one of these equalities. *)
let test_byte_conservation () =
  List.iter
    (fun dt ->
      let elem = Tensor.bytes_per_elem dt in
      let kn = Tensor.dtype_name dt in
      let x, g = mixed_graph dt in
      let c = Sod2.Pipeline.compile ~float_dtype:dt cpu g in
      let inputs = [ x, input_for 23 dt ] in
      let trace, _ = RT.Executor.run_real c ~inputs in
      let executed_bytes tid =
        List.find_opt
          (fun e -> e.RT.Executor.te_tid = tid)
          trace.RT.Executor.events
        |> Option.map (fun e -> e.RT.Executor.te_bytes)
      in
      let slot_bytes =
        List.map
          (fun (strategy, sn) ->
            let name = Printf.sprintf "%s/%s" sn kn in
            let plan =
              MP.plan ~strategy ~elem g c.Sod2.Pipeline.rdp
                c.Sod2.Pipeline.fusion_plan
                ~order:c.Sod2.Pipeline.exec.Sod2.Exec_plan.order ~env:Env.empty
            in
            (match MP.validate plan with
            | Ok () -> ()
            | Error m -> Alcotest.failf "%s: invalid plan: %s" name m);
            Alcotest.(check bool) (name ^ ": plan has slots") true
              (Array.length plan.MP.allocs > 0);
            Array.iter
              (fun a ->
                if a.MP.offset mod elem <> 0 then
                  Alcotest.failf "%s: t%d offset %d is not %d-aligned" name
                    a.MP.tid a.MP.offset elem;
                if a.MP.size mod elem <> 0 || a.MP.size = 0 then
                  Alcotest.failf "%s: t%d size %d is not a whole number of %d-byte elements"
                    name a.MP.tid a.MP.size elem;
                if a.MP.offset + a.MP.size > plan.MP.arena_bytes then
                  Alcotest.failf "%s: t%d spills past the arena" name a.MP.tid;
                match executed_bytes a.MP.tid with
                | Some b when b <> a.MP.size ->
                  Alcotest.failf
                    "%s: t%d planned %d bytes but the executor materialized %d"
                    name a.MP.tid a.MP.size b
                | _ -> ())
              plan.MP.allocs;
            Array.fold_left (fun acc a -> acc + a.MP.size) 0 plan.MP.allocs)
          strategies
      in
      (match slot_bytes with
      | b :: rest ->
        List.iter
          (fun b' ->
            Alcotest.(check int) (kn ^ ": strategies agree on total slot bytes") b b')
          rest
      | [] -> assert false);
      (* the arena run reserves exactly the instantiated plan's bytes,
         rounded up to a whole element of the artifact's kind *)
      let arena = RT.Arena.create () in
      let res = RT.Engine.run_arena ~arena c ~env:Env.empty ~inputs in
      let plan = Sod2.Pipeline.instantiated_plan c Env.empty in
      Alcotest.(check int)
        (kn ^ ": trace reports the instantiated plan size")
        plan.MP.arena_bytes res.RT.Engine.arena_bytes;
      let cap = RT.Arena.capacity_bytes arena in
      let want_cap = max 1 ((plan.MP.arena_bytes + elem - 1) / elem) * elem in
      Alcotest.(check int) (kn ^ ": arena reserves exactly the planned bytes")
        want_cap cap;
      let buf = RT.Arena.ensure arena dt 1 in
      Alcotest.(check string) (kn ^ ": arena buffer is the artifact's kind") kn
        (Tensor.dtype_name (Tensor.fbuf_dtype buf));
      Alcotest.(check int)
        (kn ^ ": capacity is the buffer's length in kind-sized elements")
        cap
        (Tensor.fbuf_len buf * elem))
    [ Tensor.F32; Tensor.F64 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_byte_size;
    QCheck_alcotest.to_alcotest prop_f32_roundtrip;
    Alcotest.test_case "cast saturates float→int" `Quick test_saturating_cast;
    Alcotest.test_case "ravel bounds-checks every axis" `Quick test_ravel_bounds;
    Alcotest.test_case "blocked/parallel/arena bit-identical per kind" `Quick
      test_backends_bit_identical;
    Alcotest.test_case "fused pointwise bit-identical per kind" `Quick
      test_fused_bit_identical;
    Alcotest.test_case "byte conservation: plan = trace = arena, every strategy"
      `Quick test_byte_conservation;
  ]
