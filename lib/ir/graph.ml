type tensor_id = int
type node_id = int

type tensor_kind =
  | Input of Shape.t
  | Const of Tensor.t
  | Activation

type tensor_info = {
  tid : tensor_id;
  tname : string;
  kind : tensor_kind;
  producer : node_id option;
}

type node = {
  nid : node_id;
  op : Op.t;
  inputs : tensor_id list;
  outputs : tensor_id list;
  nname : string;
}

type t = {
  g_nodes : node array;
  g_tensors : tensor_info array;
  g_inputs : tensor_id list;
  g_outputs : tensor_id list;
  g_consumers : node_id list array;
}

(* ------------------------------------------------------------------ *)
(* Arity rules                                                         *)
(* ------------------------------------------------------------------ *)

let arity_error node =
  let n = List.length node.inputs in
  let expect msg want =
    if n <> want then
      Some
        (Printf.sprintf "%s (%s) expects %s inputs, got %d" node.nname
           (Op.name node.op) msg n)
    else None
  in
  match node.op with
  | Op.Unary _ | Op.Cast _ | Op.Clip _ | Op.Transpose _ | Op.Flatten _ | Op.Squeeze _
  | Op.Unsqueeze _ | Op.ShapeOf | Op.SizeOf | Op.EyeLike | Op.NonZero | Op.Split _
  | Op.GlobalAveragePool | Op.MaxPool _ | Op.AveragePool _ | Op.Softmax _
  | Op.LogSoftmax _ | Op.Reduce _ | Op.ArgMax _ | Op.ArgMin _ | Op.CumSum _
  | Op.ConstantOfShape _ | Op.OneHot _ | Op.DepthToSpace _ | Op.SpaceToDepth _
  | Op.Upsample _ -> expect "1" 1
  | Op.Binary _ | Op.MatMul | Op.Reshape | Op.Expand | Op.Tile | Op.Resize _
  | Op.TopK _ -> expect "2" 2
  | Op.Gather _ -> expect "2" 2
  | Op.Pad _ -> expect "2" 2
  | Op.Where -> expect "3" 3
  | Op.Slice -> expect "5" 5
  | Op.Range -> expect "3" 3
  | Op.Gemm _ -> if n <> 2 && n <> 3 then expect "2 or 3" n else None
  | Op.Conv _ | Op.Conv1d _ -> if n <> 2 && n <> 3 then expect "2 or 3" n else None
  | Op.BatchNorm _ -> expect "5" 5
  | Op.LayerNorm _ | Op.GroupNorm _ | Op.InstanceNorm _ -> expect "3" 3
  | Op.Concat _ -> if n < 1 then expect ">=1" 1 else None
  | Op.NonMaxSuppression _ -> expect "2" 2
  | Op.Switch _ -> expect "2" 2
  | Op.Combine { branches } -> expect (string_of_int (branches + 1)) (branches + 1)
  | Op.If | Op.Loop -> if n < 1 then expect ">=1" 1 else None

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type graph = t

  type t = {
    mutable b_tensors : tensor_info list;  (* reversed *)
    mutable b_nodes : node list;  (* reversed *)
    mutable b_inputs : tensor_id list;  (* reversed *)
    mutable b_outputs : tensor_id list;
    mutable n_tensors : int;
    mutable n_nodes : int;
  }

  let create () =
    { b_tensors = []; b_nodes = []; b_inputs = []; b_outputs = []; n_tensors = 0; n_nodes = 0 }

  let fresh_tensor b ~name kind producer =
    let tid = b.n_tensors in
    b.n_tensors <- tid + 1;
    b.b_tensors <- { tid; tname = name; kind; producer } :: b.b_tensors;
    tid

  let input b ~name shape =
    let tid = fresh_tensor b ~name (Input shape) None in
    b.b_inputs <- tid :: b.b_inputs;
    tid

  let const b ~name value = fresh_tensor b ~name (Const value) None

  let node b ?name op inputs =
    List.iter
      (fun tid ->
        if tid < 0 || tid >= b.n_tensors then
          Sod2_error.failf ~op:(Op.name op) ~tensor:tid Sod2_error.Invalid_graph
            "Graph.Builder.node: undefined tensor %d" tid)
      inputs;
    let nid = b.n_nodes in
    b.n_nodes <- nid + 1;
    let nname =
      match name with Some n -> n | None -> Printf.sprintf "%s_%d" (Op.name op) nid
    in
    let outputs =
      List.init (Op.n_outputs op) (fun i ->
          let tname = if Op.n_outputs op = 1 then nname else Printf.sprintf "%s.%d" nname i in
          fresh_tensor b ~name:tname Activation (Some nid))
    in
    b.b_nodes <- { nid; op; inputs; outputs; nname } :: b.b_nodes;
    outputs

  let node1 b ?name op inputs =
    match node b ?name op inputs with
    | [ o ] -> o
    | outs ->
      Sod2_error.failf ~op:(Op.name op) Sod2_error.Invalid_graph
        "Graph.Builder.node1: %s has %d outputs" (Op.name op) (List.length outs)

  let check_arity node =
    match arity_error node with
    | Some msg ->
      Sod2_error.fail ~op:(Op.name node.op) ~node:node.nname Sod2_error.Arity_mismatch msg
    | None -> ()

  let set_outputs b outs = b.b_outputs <- outs

  let freeze b : graph =
    let tensors = Array.of_list (List.rev b.b_tensors) in
    let nodes = Array.of_list (List.rev b.b_nodes) in
    let consumers = Array.make (Array.length tensors) [] in
    Array.iter
      (fun nd ->
        List.iter
          (fun tid ->
            if tid >= 0 && tid < Array.length consumers then
              consumers.(tid) <- nd.nid :: consumers.(tid))
          nd.inputs)
      nodes;
    Array.iteri (fun i l -> consumers.(i) <- List.rev l) consumers;
    {
      g_nodes = nodes;
      g_tensors = tensors;
      g_inputs = List.rev b.b_inputs;
      g_outputs = b.b_outputs;
      g_consumers = consumers;
    }

  let finish_unchecked b : graph = freeze b

  let finish b : graph =
    if b.b_outputs = [] then
      Sod2_error.fail Sod2_error.Invalid_graph "Graph.Builder.finish: no outputs declared";
    List.iter check_arity (List.rev b.b_nodes);
    List.iter
      (fun tid ->
        if tid < 0 || tid >= b.n_tensors then
          Sod2_error.failf ~tensor:tid Sod2_error.Invalid_graph
            "Graph.Builder.finish: undefined output tensor %d" tid)
      b.b_outputs;
    freeze b
end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let nodes g = g.g_nodes
let node_count g = Array.length g.g_nodes
let tensor_count g = Array.length g.g_tensors
let tensor g tid = g.g_tensors.(tid)
let node g nid = g.g_nodes.(nid)
let inputs g = g.g_inputs
let outputs g = g.g_outputs

let const_value g tid =
  match (tensor g tid).kind with
  | Const t -> Some t
  | Input _ | Activation -> None

let input_shape g tid =
  match (tensor g tid).kind with
  | Input s -> Some s
  | Const _ | Activation -> None

let producer g tid =
  match (tensor g tid).producer with
  | Some nid -> Some g.g_nodes.(nid)
  | None -> None

let consumers g tid = g.g_consumers.(tid)

let predecessors g nd =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun tid ->
      match producer g tid with
      | Some p when not (Hashtbl.mem seen p.nid) ->
        Hashtbl.add seen p.nid ();
        Some p
      | _ -> None)
    nd.inputs

let successors g nd =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun tid ->
      List.filter_map
        (fun nid ->
          if Hashtbl.mem seen nid then None
          else begin
            Hashtbl.add seen nid ();
            Some g.g_nodes.(nid)
          end)
        (consumers g tid))
    nd.outputs

let free_syms g =
  List.concat_map
    (fun tid ->
      match input_shape g tid with
      | Some s -> Shape.free_syms s
      | None -> [])
    g.g_inputs
  |> List.sort_uniq String.compare

let topo_order g = Array.to_list g.g_nodes

let dfs_order g =
  let visited = Array.make (node_count g) false in
  let order = ref [] in
  let rec visit nd =
    if not visited.(nd.nid) then begin
      visited.(nd.nid) <- true;
      order := nd :: !order;
      (* Children left to right: the paper assumes branches execute in that
         order when several must run. *)
      List.iter visit (successors g nd)
    end
  in
  (* Roots: nodes all of whose inputs are graph inputs or constants. *)
  Array.iter (fun nd -> if predecessors g nd = [] then visit nd) g.g_nodes;
  (* Any nodes unreachable from the roots (possible with constant-only
     islands) are appended in topological order. *)
  Array.iter (fun nd -> if not visited.(nd.nid) then visit nd) g.g_nodes;
  List.rev !order

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph G {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  Array.iter
    (fun nd ->
      Printf.bprintf buf "  n%d [label=\"%s\"%s];\n" nd.nid (Op.name nd.op)
        (if Op.is_control_flow nd.op then ", style=dashed, color=red" else ""))
    g.g_nodes;
  Array.iter
    (fun nd ->
      List.iter
        (fun tid ->
          match producer g tid with
          | Some p ->
            Printf.bprintf buf "  n%d -> n%d [label=\"t%d\", fontsize=8];\n" p.nid nd.nid tid
          | None -> ())
        nd.inputs)
    g.g_nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let op_histogram g =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun nd ->
      let k = Op.name nd.op in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    g.g_nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
