let check (g : Graph.t) : (unit, Sod2_error.t list) result =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  let n_tensors = Graph.tensor_count g in
  let n_nodes = Graph.node_count g in
  let in_range tid = tid >= 0 && tid < n_tensors in

  (* --- declared outputs ------------------------------------------- *)
  if Graph.outputs g = [] then
    add (Sod2_error.make Sod2_error.Invalid_graph "graph declares no outputs");
  List.iter
    (fun tid ->
      if not (in_range tid) then
        add
          (Sod2_error.make ~tensor:tid Sod2_error.Invalid_graph
             (Printf.sprintf "graph output references undefined tensor %d" tid)))
    (Graph.outputs g);

  (* --- tensor table ------------------------------------------------ *)
  for tid = 0 to n_tensors - 1 do
    let info = Graph.tensor g tid in
    if info.Graph.tid <> tid then
      add
        (Sod2_error.make ~tensor:tid Sod2_error.Invalid_graph
           (Printf.sprintf "tensor table entry %d carries id %d" tid info.Graph.tid));
    match info.Graph.kind, info.Graph.producer with
    | Graph.Activation, None ->
      add
        (Sod2_error.make ~tensor:tid Sod2_error.Invalid_graph
           (Printf.sprintf "activation tensor %d (%s) has no producer" tid
              info.Graph.tname))
    | Graph.Activation, Some nid ->
      if nid < 0 || nid >= n_nodes then
        add
          (Sod2_error.make ~tensor:tid Sod2_error.Invalid_graph
             (Printf.sprintf "tensor %d names undefined producer node %d" tid nid))
      else if not (List.mem tid (Graph.node g nid).Graph.outputs) then
        add
          (Sod2_error.make ~tensor:tid ~node:(Graph.node g nid).Graph.nname
             Sod2_error.Invalid_graph
             (Printf.sprintf "tensor %d not among the outputs of its producer" tid))
    | (Graph.Input _ | Graph.Const _), Some _ ->
      add
        (Sod2_error.make ~tensor:tid Sod2_error.Invalid_graph
           (Printf.sprintf "input/const tensor %d claims a producer" tid))
    | (Graph.Input _ | Graph.Const _), None -> ()
  done;

  (* --- per-node checks --------------------------------------------- *)
  Array.iter
    (fun (nd : Graph.node) ->
      let ctx_op = Op.name nd.Graph.op and ctx_node = nd.Graph.nname in
      (* undefined ids *)
      List.iter
        (fun tid ->
          if not (in_range tid) then
            add
              (Sod2_error.make ~op:ctx_op ~node:ctx_node ~tensor:tid
                 Sod2_error.Invalid_graph
                 (Printf.sprintf "input references undefined tensor %d" tid)))
        nd.Graph.inputs;
      List.iter
        (fun tid ->
          if not (in_range tid) then
            add
              (Sod2_error.make ~op:ctx_op ~node:ctx_node ~tensor:tid
                 Sod2_error.Invalid_graph
                 (Printf.sprintf "output references undefined tensor %d" tid)))
        nd.Graph.outputs;
      (* arity *)
      (match Graph.arity_error nd with
      | Some msg ->
        add (Sod2_error.make ~op:ctx_op ~node:ctx_node Sod2_error.Arity_mismatch msg)
      | None -> ());
      (* output count must match the operator *)
      let want = Op.n_outputs nd.Graph.op in
      let got = List.length nd.Graph.outputs in
      if got <> want then
        add
          (Sod2_error.make ~op:ctx_op ~node:ctx_node Sod2_error.Invalid_graph
             (Printf.sprintf "%s produces %d outputs, node lists %d" ctx_op want got));
      (* topological order: inputs must come from strictly earlier nodes;
         a violation is a cycle (or an out-of-order freeze) *)
      List.iter
        (fun tid ->
          if in_range tid then
            match (Graph.tensor g tid).Graph.producer with
            | Some pnid when pnid >= nd.Graph.nid ->
              add
                (Sod2_error.make ~op:ctx_op ~node:ctx_node ~tensor:tid
                   Sod2_error.Invalid_graph
                   (Printf.sprintf
                      "input %d is produced by node %d, not before node %d: cycle or \
                       non-topological order"
                      tid pnid nd.Graph.nid))
            | _ -> ())
        nd.Graph.inputs;
      (* dtype consistency per Op_class: constants feeding value-determining
         inputs (shape vectors, index lists, slice parameters) must be
         integer tensors *)
      List.iter
        (fun i ->
          match List.nth_opt nd.Graph.inputs i with
          | Some tid when in_range tid -> (
            match Graph.const_value g tid with
            | Some t when Tensor.dtype t <> Tensor.I64 ->
              add
                (Sod2_error.make ~op:ctx_op ~node:ctx_node ~tensor:tid
                   Sod2_error.Dtype_mismatch
                   (Printf.sprintf
                      "value-determining input %d must be an integer tensor, got f32" i))
            | _ -> ())
          | _ -> ())
        (Op_class.value_inputs nd.Graph.op))
    (Graph.nodes g);

  (* --- <Switch, Combine> pairing ----------------------------------- *)
  let outs = Graph.outputs g in
  let switches =
    Array.to_list (Graph.nodes g)
    |> List.filter_map (fun (nd : Graph.node) ->
           match nd.Graph.op with
           | Op.Switch { branches } -> (
             match List.rev nd.Graph.inputs with
             | pred :: _ -> Some (nd, branches, pred)
             | [] -> None)
           | _ -> None)
  in
  List.iter
    (fun ((nd : Graph.node), branches, _pred) ->
      if branches < 2 then
        add
          (Sod2_error.make ~op:"Switch" ~node:nd.Graph.nname Sod2_error.Invalid_graph
             (Printf.sprintf "Switch with %d branches routes nothing" branches));
      List.iteri
        (fun i tid ->
          if in_range tid && Graph.consumers g tid = [] && not (List.mem tid outs) then
            add
              (Sod2_error.make ~op:"Switch" ~node:nd.Graph.nname ~tensor:tid
                 Sod2_error.Invalid_graph
                 (Printf.sprintf
                    "unpaired Switch: branch %d is neither consumed nor a graph output" i)))
        nd.Graph.outputs)
    switches;
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Combine { branches } -> (
        if branches < 2 then
          add
            (Sod2_error.make ~op:"Combine" ~node:nd.Graph.nname Sod2_error.Invalid_graph
               (Printf.sprintf "Combine with %d branches merges nothing" branches));
        match List.rev nd.Graph.inputs with
        | pred :: _ ->
          if
            not
              (List.exists
                 (fun (_, sb, spred) -> sb = branches && spred = pred)
                 switches)
          then
            add
              (Sod2_error.make ~op:"Combine" ~node:nd.Graph.nname ~tensor:pred
                 Sod2_error.Invalid_graph
                 (Printf.sprintf
                    "Combine has no matching Switch with %d branches on predicate %d"
                    branches pred))
        | [] -> ())
      | _ -> ())
    (Graph.nodes g);

  match List.rev !errs with [] -> Ok () | errs -> Error errs

let check_exn g =
  match check g with
  | Ok () -> ()
  | Error (e :: _) -> raise (Sod2_error.Error e)
  | Error [] -> ()

let report errs =
  String.concat "\n" (List.map (fun e -> "  - " ^ Sod2_error.to_string e) errs)
