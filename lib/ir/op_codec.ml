open Sexp

let unary_table : (string * Op.unary) list =
  [
    "relu", Op.Relu; "sigmoid", Op.Sigmoid; "tanh", Op.Tanh; "exp", Op.Exp;
    "log", Op.Log; "sqrt", Op.Sqrt; "neg", Op.Neg; "abs", Op.Abs; "erf", Op.Erf;
    "gelu", Op.Gelu; "hardswish", Op.HardSwish; "softplus", Op.Softplus;
    "floor", Op.Floor; "ceil", Op.Ceil; "round", Op.Round; "not", Op.Not;
    "identity", Op.Identity; "sign", Op.Sign; "reciprocal", Op.Reciprocal;
    "softsign", Op.Softsign;
  ]

let binary_table : (string * Op.binary) list =
  [
    "add", Op.Add; "sub", Op.Sub; "mul", Op.Mul; "div", Op.Div; "pow", Op.Pow;
    "max", Op.Max2; "min", Op.Min2; "mod", Op.Mod2; "equal", Op.Equal;
    "less", Op.Less; "greater", Op.Greater; "and", Op.And; "or", Op.Or;
  ]

let reduce_table : (string * Op.reduce_kind) list =
  [
    "sum", Op.Rsum; "mean", Op.Rmean; "max", Op.Rmax; "min", Op.Rmin;
    "prod", Op.Rprod; "l2", Op.Rl2;
  ]

let rev_find table v = fst (List.find (fun (_, x) -> x = v) table)

let ints l = List (List.map int l)
let int4 (a, b, c, d) = ints [ a; b; c; d ]
let int2 (a, b) = ints [ a; b ]
let b v = atom (if v then "true" else "false")

let to_sexp (op : Op.t) : Sexp.t =
  match op with
  | Op.Unary (Op.LeakyRelu alpha) -> List [ atom "leakyrelu"; float alpha ]
  | Op.Unary u -> List [ atom "unary"; atom (rev_find unary_table u) ]
  | Op.Binary bi -> List [ atom "binary"; atom (rev_find binary_table bi) ]
  | Op.Clip (lo, hi) -> List [ atom "clip"; float lo; float hi ]
  | Op.Cast dt -> List [ atom "cast"; atom (Tensor.dtype_name dt) ]
  | Op.Where -> List [ atom "where" ]
  | Op.MatMul -> List [ atom "matmul" ]
  | Op.Gemm { alpha; beta; trans_a; trans_b } ->
    List [ atom "gemm"; float alpha; float beta; b trans_a; b trans_b ]
  | Op.Conv { stride; pads; dilation; groups } ->
    List [ atom "conv"; int2 stride; int4 pads; int2 dilation; int groups ]
  | Op.Conv1d { stride1; pads1; dilation1; groups1 } ->
    List [ atom "conv1d"; int stride1; int2 pads1; int dilation1; int groups1 ]
  | Op.MaxPool { kernel; pool_stride; pool_pads } ->
    List [ atom "maxpool"; int2 kernel; int2 pool_stride; int4 pool_pads ]
  | Op.AveragePool { kernel; pool_stride; pool_pads } ->
    List [ atom "avgpool"; int2 kernel; int2 pool_stride; int4 pool_pads ]
  | Op.GlobalAveragePool -> List [ atom "gap" ]
  | Op.BatchNorm { eps } -> List [ atom "batchnorm"; float eps ]
  | Op.LayerNorm { eps } -> List [ atom "layernorm"; float eps ]
  | Op.GroupNorm { num_groups; eps } -> List [ atom "groupnorm"; int num_groups; float eps ]
  | Op.InstanceNorm { eps } -> List [ atom "instancenorm"; float eps ]
  | Op.Softmax { axis } -> List [ atom "softmax"; int axis ]
  | Op.LogSoftmax { axis } -> List [ atom "logsoftmax"; int axis ]
  | Op.Reduce { rkind; axes; keepdims } ->
    List [ atom "reduce"; atom (rev_find reduce_table rkind); ints axes; b keepdims ]
  | Op.ArgMax { axis; keepdims } -> List [ atom "argmax"; int axis; b keepdims ]
  | Op.ArgMin { axis; keepdims } -> List [ atom "argmin"; int axis; b keepdims ]
  | Op.CumSum { axis } -> List [ atom "cumsum"; int axis ]
  | Op.Transpose perm -> List [ atom "transpose"; ints perm ]
  | Op.Reshape -> List [ atom "reshape" ]
  | Op.Flatten { axis } -> List [ atom "flatten"; int axis ]
  | Op.Squeeze axes -> List [ atom "squeeze"; ints axes ]
  | Op.Unsqueeze axes -> List [ atom "unsqueeze"; ints axes ]
  | Op.Concat { axis } -> List [ atom "concat"; int axis ]
  | Op.Split { axis; sizes } -> List [ atom "split"; int axis; ints sizes ]
  | Op.Slice -> List [ atom "slice" ]
  | Op.Gather { axis } -> List [ atom "gather"; int axis ]
  | Op.Pad { pad_value } -> List [ atom "pad"; float pad_value ]
  | Op.Expand -> List [ atom "expand" ]
  | Op.Tile -> List [ atom "tile" ]
  | Op.Resize Op.Nearest -> List [ atom "resize"; atom "nearest" ]
  | Op.Upsample { scales } -> List [ atom "upsample"; ints scales ]
  | Op.DepthToSpace { block } -> List [ atom "depth-to-space"; int block ]
  | Op.SpaceToDepth { block } -> List [ atom "space-to-depth"; int block ]
  | Op.ShapeOf -> List [ atom "shape" ]
  | Op.SizeOf -> List [ atom "size" ]
  | Op.ConstantOfShape { fill } -> List [ atom "constant-of-shape"; float fill ]
  | Op.EyeLike -> List [ atom "eyelike" ]
  | Op.Range -> List [ atom "range" ]
  | Op.OneHot { depth } -> List [ atom "onehot"; int depth ]
  | Op.TopK { axis; largest } -> List [ atom "topk"; int axis; b largest ]
  | Op.NonZero -> List [ atom "nonzero" ]
  | Op.NonMaxSuppression { max_out; iou_threshold } ->
    List [ atom "nms"; int max_out; float iou_threshold ]
  | Op.If -> List [ atom "if" ]
  | Op.Loop -> List [ atom "loop" ]
  | Op.Switch { branches } -> List [ atom "switch"; int branches ]
  | Op.Combine { branches } -> List [ atom "combine"; int branches ]

(* --- decoding ------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let d_int s = match as_int s with Some i -> Ok i | None -> err "expected int"
let d_float s = match as_float s with Some f -> Ok f | None -> err "expected float"

let d_bool s =
  match as_atom s with
  | Some "true" -> Ok true
  | Some "false" -> Ok false
  | _ -> err "expected bool"

let d_ints s =
  match s with
  | List items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v = d_int item in
        Ok (v :: acc))
      (Ok []) items
    |> Result.map List.rev
  | Atom _ -> err "expected int list"

let d_int2 s =
  let* l = d_ints s in
  match l with [ a; b ] -> Ok (a, b) | _ -> err "expected 2 ints"

let d_int4 s =
  let* l = d_ints s in
  match l with [ a; b; c; d ] -> Ok (a, b, c, d) | _ -> err "expected 4 ints"

let of_sexp (s : Sexp.t) : (Op.t, string) result =
  match s with
  | List (Atom tag :: args) -> (
    match tag, args with
    | "leakyrelu", [ a ] ->
      let* alpha = d_float a in
      Ok (Op.Unary (Op.LeakyRelu alpha))
    | "unary", [ Atom name ] -> (
      match List.assoc_opt name unary_table with
      | Some u -> Ok (Op.Unary u)
      | None -> err "unknown unary %s" name)
    | "binary", [ Atom name ] -> (
      match List.assoc_opt name binary_table with
      | Some bi -> Ok (Op.Binary bi)
      | None -> err "unknown binary %s" name)
    | "clip", [ lo; hi ] ->
      let* lo = d_float lo in
      let* hi = d_float hi in
      Ok (Op.Clip (lo, hi))
    | "cast", [ Atom "f32" ] -> Ok (Op.Cast Tensor.F32)
    | "cast", [ Atom "f64" ] -> Ok (Op.Cast Tensor.F64)
    | "cast", [ Atom "i8" ] -> Ok (Op.Cast Tensor.I8)
    | "cast", [ Atom "i64" ] -> Ok (Op.Cast Tensor.I64)
    | "where", [] -> Ok Op.Where
    | "matmul", [] -> Ok Op.MatMul
    | "gemm", [ a; be; ta; tb ] ->
      let* alpha = d_float a in
      let* beta = d_float be in
      let* trans_a = d_bool ta in
      let* trans_b = d_bool tb in
      Ok (Op.Gemm { alpha; beta; trans_a; trans_b })
    | "conv", [ st; pd; dl; g ] ->
      let* stride = d_int2 st in
      let* pads = d_int4 pd in
      let* dilation = d_int2 dl in
      let* groups = d_int g in
      Ok (Op.Conv { stride; pads; dilation; groups })
    | "conv1d", [ st; pd; dl; g ] ->
      let* stride1 = d_int st in
      let* pads1 = d_int2 pd in
      let* dilation1 = d_int dl in
      let* groups1 = d_int g in
      Ok (Op.Conv1d { stride1; pads1; dilation1; groups1 })
    | "maxpool", [ k; st; pd ] ->
      let* kernel = d_int2 k in
      let* pool_stride = d_int2 st in
      let* pool_pads = d_int4 pd in
      Ok (Op.MaxPool { kernel; pool_stride; pool_pads })
    | "avgpool", [ k; st; pd ] ->
      let* kernel = d_int2 k in
      let* pool_stride = d_int2 st in
      let* pool_pads = d_int4 pd in
      Ok (Op.AveragePool { kernel; pool_stride; pool_pads })
    | "gap", [] -> Ok Op.GlobalAveragePool
    | "batchnorm", [ e ] ->
      let* eps = d_float e in
      Ok (Op.BatchNorm { eps })
    | "layernorm", [ e ] ->
      let* eps = d_float e in
      Ok (Op.LayerNorm { eps })
    | "groupnorm", [ n; e ] ->
      let* num_groups = d_int n in
      let* eps = d_float e in
      Ok (Op.GroupNorm { num_groups; eps })
    | "instancenorm", [ e ] ->
      let* eps = d_float e in
      Ok (Op.InstanceNorm { eps })
    | "softmax", [ a ] ->
      let* axis = d_int a in
      Ok (Op.Softmax { axis })
    | "logsoftmax", [ a ] ->
      let* axis = d_int a in
      Ok (Op.LogSoftmax { axis })
    | "reduce", [ Atom kind; ax; kd ] -> (
      match List.assoc_opt kind reduce_table with
      | Some rkind ->
        let* axes = d_ints ax in
        let* keepdims = d_bool kd in
        Ok (Op.Reduce { rkind; axes; keepdims })
      | None -> err "unknown reduce %s" kind)
    | "argmax", [ a; kd ] ->
      let* axis = d_int a in
      let* keepdims = d_bool kd in
      Ok (Op.ArgMax { axis; keepdims })
    | "argmin", [ a; kd ] ->
      let* axis = d_int a in
      let* keepdims = d_bool kd in
      Ok (Op.ArgMin { axis; keepdims })
    | "cumsum", [ a ] ->
      let* axis = d_int a in
      Ok (Op.CumSum { axis })
    | "transpose", [ p ] ->
      let* perm = d_ints p in
      Ok (Op.Transpose perm)
    | "reshape", [] -> Ok Op.Reshape
    | "flatten", [ a ] ->
      let* axis = d_int a in
      Ok (Op.Flatten { axis })
    | "squeeze", [ ax ] ->
      let* axes = d_ints ax in
      Ok (Op.Squeeze axes)
    | "unsqueeze", [ ax ] ->
      let* axes = d_ints ax in
      Ok (Op.Unsqueeze axes)
    | "concat", [ a ] ->
      let* axis = d_int a in
      Ok (Op.Concat { axis })
    | "split", [ a; sz ] ->
      let* axis = d_int a in
      let* sizes = d_ints sz in
      Ok (Op.Split { axis; sizes })
    | "slice", [] -> Ok Op.Slice
    | "gather", [ a ] ->
      let* axis = d_int a in
      Ok (Op.Gather { axis })
    | "pad", [ v ] ->
      let* pad_value = d_float v in
      Ok (Op.Pad { pad_value })
    | "expand", [] -> Ok Op.Expand
    | "tile", [] -> Ok Op.Tile
    | "resize", [ Atom "nearest" ] -> Ok (Op.Resize Op.Nearest)
    | "upsample", [ sc ] ->
      let* scales = d_ints sc in
      Ok (Op.Upsample { scales })
    | "depth-to-space", [ bl ] ->
      let* block = d_int bl in
      Ok (Op.DepthToSpace { block })
    | "space-to-depth", [ bl ] ->
      let* block = d_int bl in
      Ok (Op.SpaceToDepth { block })
    | "shape", [] -> Ok Op.ShapeOf
    | "size", [] -> Ok Op.SizeOf
    | "constant-of-shape", [ v ] ->
      let* fill = d_float v in
      Ok (Op.ConstantOfShape { fill })
    | "eyelike", [] -> Ok Op.EyeLike
    | "range", [] -> Ok Op.Range
    | "onehot", [ d ] ->
      let* depth = d_int d in
      Ok (Op.OneHot { depth })
    | "topk", [ a; l ] ->
      let* axis = d_int a in
      let* largest = d_bool l in
      Ok (Op.TopK { axis; largest })
    | "nonzero", [] -> Ok Op.NonZero
    | "nms", [ m; t ] ->
      let* max_out = d_int m in
      let* iou_threshold = d_float t in
      Ok (Op.NonMaxSuppression { max_out; iou_threshold })
    | "if", [] -> Ok Op.If
    | "loop", [] -> Ok Op.Loop
    | "switch", [ bn ] ->
      let* branches = d_int bn in
      Ok (Op.Switch { branches })
    | "combine", [ bn ] ->
      let* branches = d_int bn in
      Ok (Op.Combine { branches })
    | _ -> err "malformed operator form: %s" (Sexp.to_string s))
  | _ -> err "expected an operator form"
