type gate = {
  g_id : int;
  g_pred : Graph.tensor_id;
  g_branches : int;
  g_switches : Graph.node_id list;
  g_combines : Graph.node_id list;
}

type t = {
  gates : gate array;
  node_constraints : (int * int) list array;
}

let gate_count t = Array.length t.gates

let outcome_space t =
  Array.fold_left
    (fun acc g ->
      if acc <= 0 then acc
      else if g.g_branches > 0 && acc <= max_int / g.g_branches then acc * g.g_branches
      else -1)
    1 t.gates

(* Merge a constraint into a set.  Two different branches of the same gate
   on one node would mean the node is unreachable under every outcome; the
   zoo builders never produce that, but a hand-built graph could — keep
   both constraints so [live_node] reports the node dead under any single
   outcome, which is the sound answer. *)
let add_constraint cs c = if List.mem c cs then cs else c :: cs

let discover (g : Graph.t) =
  (* One gate per predicate tensor: every Switch (and its paired Combines)
     driven by the same predicate resolves together, so their branch
     decisions form one digit of the outcome vector. *)
  let by_pred = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Switch { branches } -> (
        match List.rev nd.Graph.inputs with
        | pred :: _ ->
          (match Hashtbl.find_opt by_pred pred with
          | None ->
            Hashtbl.replace by_pred pred (branches, [ nd.Graph.nid ], []);
            order := pred :: !order
          | Some (b, sw, co) ->
            Hashtbl.replace by_pred pred (max b branches, nd.Graph.nid :: sw, co))
        | [] -> ())
      | Op.Combine _ -> (
        match List.rev nd.Graph.inputs with
        | pred :: _ -> (
          match Hashtbl.find_opt by_pred pred with
          | Some (b, sw, co) -> Hashtbl.replace by_pred pred (b, sw, nd.Graph.nid :: co)
          | None -> ())
        | [] -> ())
      | _ -> ())
    (Graph.nodes g);
  let gates =
    List.rev !order
    |> List.mapi (fun i pred ->
           let branches, switches, combines = Hashtbl.find by_pred pred in
           {
             g_id = i;
             g_pred = pred;
             g_branches = branches;
             g_switches = List.rev switches;
             g_combines = List.rev combines;
           })
    |> Array.of_list
  in
  let gate_of_switch = Hashtbl.create 8 in
  let gate_of_combine = Hashtbl.create 8 in
  Array.iter
    (fun gt ->
      List.iter (fun nid -> Hashtbl.replace gate_of_switch nid gt.g_id) gt.g_switches;
      List.iter (fun nid -> Hashtbl.replace gate_of_combine nid gt.g_id) gt.g_combines)
    gates;
  (* Forward constraint propagation over the (topological) node order.
     A node is constrained to (gate, branch) when its value only exists if
     that gate selects that branch.  Switch outputs introduce constraints;
     Combine outputs discharge their own gate's constraints (the merged
     value exists whichever branch ran). *)
  let tensor_cs : (int * int) list array = Array.make (Graph.tensor_count g) [] in
  let node_cs : (int * int) list array = Array.make (Graph.node_count g) [] in
  Array.iter
    (fun (nd : Graph.node) ->
      let inherited =
        List.fold_left
          (fun acc tid -> List.fold_left add_constraint acc tensor_cs.(tid))
          [] nd.Graph.inputs
      in
      match nd.Graph.op with
      | Op.Switch _ ->
        node_cs.(nd.Graph.nid) <- inherited;
        let gid = Hashtbl.find gate_of_switch nd.Graph.nid in
        List.iteri
          (fun i tid -> tensor_cs.(tid) <- add_constraint inherited (gid, i))
          nd.Graph.outputs
      | Op.Combine _ ->
        (* The Combine executes under every outcome of its own gate — it is
           the merge point — so its own gate's (contradictory) branch
           constraints, inherited once per branch input, are discharged for
           the node itself as well as for its outputs. *)
        let drop =
          match Hashtbl.find_opt gate_of_combine nd.Graph.nid with
          | Some gid -> List.filter (fun (gg, _) -> gg <> gid) inherited
          | None -> inherited
        in
        node_cs.(nd.Graph.nid) <- drop;
        List.iter (fun tid -> tensor_cs.(tid) <- drop) nd.Graph.outputs
      | _ ->
        node_cs.(nd.Graph.nid) <- inherited;
        List.iter (fun tid -> tensor_cs.(tid) <- inherited) nd.Graph.outputs)
    (Graph.nodes g);
  { gates; node_constraints = node_cs }

let constraints t nid = t.node_constraints.(nid)

(* [outcome.(gid) = -1] means the gate's branch is left open — nodes under
   it stay live, which is exactly the any-path fallback semantics. *)
let live_node t ~outcome (nid : Graph.node_id) =
  List.for_all
    (fun (gid, branch) ->
      gid >= Array.length outcome
      ||
      let o = outcome.(gid) in
      o < 0 || o = branch)
    t.node_constraints.(nid)

let gate_of_switch t nid =
  let found = ref None in
  Array.iter
    (fun gt -> if List.mem nid gt.g_switches then found := Some gt.g_id)
    t.gates;
  !found

let pp ppf t =
  Array.iter
    (fun gt ->
      Format.fprintf ppf "gate %d: pred t%d, %d branches, %d switch(es), %d combine(s)@."
        gt.g_id gt.g_pred gt.g_branches (List.length gt.g_switches)
        (List.length gt.g_combines))
    t.gates
