open Sexp

let ( let* ) r f = Result.bind r f
let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Names become atoms; make sure they cannot break the syntax. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | ' ' | '(' | ')' | '\n' | '\t' -> '_'
      | c -> c)
    (if name = "" then "_" else name)

let dim_to_sexp (d : Dim.t) =
  match d with
  | Lattice.Undef -> Ok (atom "?")
  | Lattice.Nac -> Ok (atom "nac")
  | Lattice.Known e -> (
    match Expr.as_const e with
    | Some c -> Ok (int c)
    | None -> (
      match Expr.free_syms e with
      | [ s ] when Expr.equal e (Expr.sym s) -> Ok (List [ atom "sym"; atom s ])
      | _ -> err "unsupported input dimension expression %s" (Expr.to_string e)))

let shape_to_sexp (s : Shape.t) =
  match s with
  | Shape.Undef -> Ok (atom "undef-shape")
  | Shape.Nac -> Ok (atom "nac-shape")
  | Shape.Ranked dims ->
    let* dims =
      Array.fold_left
        (fun acc d ->
          let* acc = acc in
          let* d = dim_to_sexp d in
          Ok (d :: acc))
        (Ok []) dims
    in
    Ok (List (atom "shape" :: List.rev dims))

let dim_of_sexp s =
  match s with
  | Atom "?" -> Ok Dim.undef
  | Atom "nac" -> Ok Dim.nac
  | Atom a -> (
    match int_of_string_opt a with
    | Some c -> Ok (Dim.of_int c)
    | None -> err "bad dimension %s" a)
  | List [ Atom "sym"; Atom name ] -> Ok (Dim.of_sym name)
  | _ -> err "bad dimension form %s" (Sexp.to_string s)

let shape_of_sexp s =
  match s with
  | Atom "undef-shape" -> Ok Shape.Undef
  | Atom "nac-shape" -> Ok Shape.Nac
  | List (Atom "shape" :: dims) ->
    let* dims =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* d = dim_of_sexp d in
          Ok (d :: acc))
        (Ok []) dims
    in
    Ok (Shape.of_dims (List.rev dims))
  | _ -> err "bad shape form %s" (Sexp.to_string s)

let tensor_to_sexps (t : Tensor.t) =
  let dims = List (atom "dims" :: List.map int (Tensor.dims t)) in
  let dt = Tensor.dtype t in
  if Tensor.is_float_dtype dt then
    [ atom (Tensor.dtype_name dt); dims;
      List (atom "data" :: Array.to_list (Array.map float (Tensor.data_f t))) ]
  else
    [ atom (Tensor.dtype_name dt); dims;
      List (atom "data" :: Array.to_list (Array.map int (Tensor.data_i t))) ]

let tensor_of_sexps dtype dims data =
  let* dims =
    match dims with
    | List (Atom "dims" :: ds) ->
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          match as_int d with
          | Some v -> Ok (v :: acc)
          | None -> err "bad const dims")
        (Ok []) ds
      |> Result.map List.rev
    | _ -> err "bad const dims form"
  in
  match data with
  | List (Atom "data" :: values) -> (
    match dtype with
    | ("f32" | "f64") as fd ->
      let* values =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match as_float v with
            | Some f -> Ok (f :: acc)
            | None -> err "bad f32 datum")
          (Ok []) values
      in
      let fdt = if fd = "f64" then Tensor.F64 else Tensor.F32 in
      Ok (Tensor.of_floats fdt dims (Array.of_list (List.rev values)))
    | ("i8" | "i64") as idt ->
      let* values =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match as_int v with
            | Some i -> Ok (i :: acc)
            | None -> err "bad i64 datum")
          (Ok []) values
      in
      let it = if idt = "i8" then Tensor.I8 else Tensor.I64 in
      Ok (Tensor.of_ints it dims (Array.of_list (List.rev values)))
    | _ -> err "unknown dtype %s" dtype)
  | _ -> err "bad const data form"

let to_string (g : Graph.t) =
  let buf = Buffer.create 4096 in
  let emit s =
    Buffer.add_string buf (Sexp.to_string s);
    Buffer.add_char buf '\n'
  in
  emit (List [ atom "sod2-graph"; int 1 ]);
  for tid = 0 to Graph.tensor_count g - 1 do
    let info = Graph.tensor g tid in
    match info.Graph.kind with
    | Graph.Input shape ->
      let shape_s =
        match shape_to_sexp shape with
        | Ok s -> s
        | Error e -> invalid_arg ("Graph_io.to_string: " ^ e)
      in
      emit (List [ atom "input"; int tid; atom (sanitize info.Graph.tname); shape_s ])
    | Graph.Const t ->
      emit
        (List
           (atom "const" :: int tid :: atom (sanitize info.Graph.tname)
           :: tensor_to_sexps t))
    | Graph.Activation -> (
      (* one node record, at the node's first output *)
      match Graph.producer g tid with
      | Some nd when List.hd nd.Graph.outputs = tid ->
        emit
          (List
             [
               atom "node";
               List [ atom "op"; Op_codec.to_sexp nd.Graph.op ];
               List [ atom "name"; atom (sanitize nd.Graph.nname) ];
               List (atom "inputs" :: List.map int nd.Graph.inputs);
               List (atom "outputs" :: List.map int nd.Graph.outputs);
             ])
      | _ -> ())
  done;
  emit (List (atom "outputs" :: List.map int (Graph.outputs g)));
  Buffer.contents buf

let of_string text =
  let* forms = Sexp.parse text in
  match forms with
  | List [ Atom "sod2-graph"; Atom "1" ] :: records ->
    let b = Graph.Builder.create () in
    let outputs = ref None in
    let* () =
      List.fold_left
        (fun acc record ->
          let* () = acc in
          match record with
          | List [ Atom "input"; tid; Atom name; shape_s ] ->
            let* tid = match as_int tid with Some t -> Ok t | None -> err "bad tid" in
            let* shape = shape_of_sexp shape_s in
            let assigned = Graph.Builder.input b ~name shape in
            if assigned <> tid then err "input id mismatch: %d vs %d" assigned tid
            else Ok ()
          | List [ Atom "const"; tid; Atom name; Atom dtype; dims; data ] ->
            let* tid = match as_int tid with Some t -> Ok t | None -> err "bad tid" in
            let* tensor = tensor_of_sexps dtype dims data in
            let assigned = Graph.Builder.const b ~name tensor in
            if assigned <> tid then err "const id mismatch: %d vs %d" assigned tid
            else Ok ()
          | List
              [ Atom "node"; List [ Atom "op"; op_s ]; List [ Atom "name"; Atom name ];
                List (Atom "inputs" :: input_ids); List (Atom "outputs" :: output_ids) ]
            ->
            let* op = Op_codec.of_sexp op_s in
            let* inputs =
              List.fold_left
                (fun acc i ->
                  let* acc = acc in
                  match as_int i with
                  | Some v -> Ok (v :: acc)
                  | None -> err "bad input id")
                (Ok []) input_ids
              |> Result.map List.rev
            in
            let* expected =
              List.fold_left
                (fun acc i ->
                  let* acc = acc in
                  match as_int i with
                  | Some v -> Ok (v :: acc)
                  | None -> err "bad output id")
                (Ok []) output_ids
              |> Result.map List.rev
            in
            let* assigned =
              match Graph.Builder.node b ~name op inputs with
              | assigned -> Ok assigned
              | exception Sod2_error.Error e -> Error (Sod2_error.to_string e)
            in
            if assigned <> expected then err "node %s output ids mismatch" name else Ok ()
          | List (Atom "outputs" :: outs) ->
            let* outs =
              List.fold_left
                (fun acc i ->
                  let* acc = acc in
                  match as_int i with
                  | Some v -> Ok (v :: acc)
                  | None -> err "bad output id")
                (Ok []) outs
              |> Result.map List.rev
            in
            outputs := Some outs;
            Ok ()
          | _ -> err "unknown record %s" (Sexp.to_string record))
        (Ok ()) records
    in
    (match !outputs with
    | Some outs -> (
      Graph.Builder.set_outputs b outs;
      (* Freeze without per-defect aborts, then report every defect the
         validator finds at once. *)
      let g = Graph.Builder.finish_unchecked b in
      match Validate.check g with
      | Ok () -> Ok g
      | Error errs ->
        Error (String.concat "; " (List.map Sod2_error.to_string errs)))
    | None -> err "missing outputs record")
  | _ -> err "not a sod2-graph v1 file"

let save g path =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
