(* Scalar reference semantics for elementwise operators.

   These functions are the single source of truth for what one element of a
   Unary/Binary op computes.  Both the naive reference kernels
   ([Kernels.run]) and the fused-group compiler ([Fused_compile]) close over
   the exact same OCaml closures, which is what makes fused execution
   bit-for-bit equivalent to the unfused reference on pointwise chains. *)

let erf x =
  (* Abramowitz–Stegun 7.1.26, |error| < 1.5e-7. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t -. 0.284496736)
       *. t *. t *. exp (-.x *. x)
  in
  sign *. y

let unary_fn : Op.unary -> float -> float = function
  | Op.Relu -> fun v -> Float.max 0.0 v
  | Op.LeakyRelu alpha -> fun v -> if v >= 0.0 then v else alpha *. v
  | Op.Sigmoid -> fun v -> 1.0 /. (1.0 +. exp (-.v))
  | Op.Tanh -> tanh
  | Op.Exp -> exp
  | Op.Log -> log
  | Op.Sqrt -> sqrt
  | Op.Neg -> fun v -> -.v
  | Op.Abs -> Float.abs
  | Op.Erf -> erf
  | Op.Gelu -> fun v -> 0.5 *. v *. (1.0 +. erf (v /. sqrt 2.0))
  | Op.HardSwish -> fun v -> v *. Float.max 0.0 (Float.min 1.0 ((v /. 6.0) +. 0.5))
  | Op.Softplus -> fun v -> log (1.0 +. exp v)
  | Op.Floor -> Float.floor
  | Op.Ceil -> Float.ceil
  | Op.Round -> Float.round
  | Op.Not -> fun v -> if v = 0.0 then 1.0 else 0.0
  | Op.Identity -> Fun.id
  | Op.Sign -> fun v -> if v > 0.0 then 1.0 else if v < 0.0 then -1.0 else 0.0
  | Op.Reciprocal -> fun v -> 1.0 /. v
  | Op.Softsign -> fun v -> v /. (1.0 +. Float.abs v)

let float_binary_fn : Op.binary -> float -> float -> float = function
  | Op.Add -> ( +. )
  | Op.Sub -> ( -. )
  | Op.Mul -> ( *. )
  | Op.Div -> ( /. )
  | Op.Pow -> Float.pow
  | Op.Max2 -> Float.max
  | Op.Min2 -> Float.min
  | Op.Mod2 ->
    (* ONNX Mod (fmod = 0): the result takes the divisor's sign, like
       Python %.  Float.rem gives the dividend's sign, so shift nonzero
       remainders of opposite sign by one divisor. *)
    fun a b ->
     let r = Float.rem a b in
     if r <> 0.0 && r < 0.0 <> (b < 0.0) then r +. b else r
  | Op.Equal -> fun a b -> if a = b then 1.0 else 0.0
  | Op.Less -> fun a b -> if a < b then 1.0 else 0.0
  | Op.Greater -> fun a b -> if a > b then 1.0 else 0.0
  | Op.And -> fun a b -> if a <> 0.0 && b <> 0.0 then 1.0 else 0.0
  | Op.Or -> fun a b -> if a <> 0.0 || b <> 0.0 then 1.0 else 0.0

let int_binary_fn : Op.binary -> int -> int -> int = function
  | Op.Add -> ( + )
  | Op.Sub -> ( - )
  | Op.Mul -> ( * )
  | Op.Div -> ( / )
  | Op.Pow -> fun a b -> int_of_float (float_of_int a ** float_of_int b)
  | Op.Max2 -> max
  | Op.Min2 -> min
  | Op.Mod2 -> ( mod )
  | Op.Equal -> fun a b -> if a = b then 1 else 0
  | Op.Less -> fun a b -> if a < b then 1 else 0
  | Op.Greater -> fun a b -> if a > b then 1 else 0
  | Op.And -> fun a b -> if a <> 0 && b <> 0 then 1 else 0
  | Op.Or -> fun a b -> if a <> 0 || b <> 0 then 1 else 0
