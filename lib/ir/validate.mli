(** Graph well-formedness validation.

    [check] inspects a frozen {!Graph.t} and reports {e every} defect it
    finds as a structured {!Sod2_error.t} instead of dying on the first:

    - dangling / undefined tensor ids (node inputs, node outputs, declared
      graph outputs) and producer/output table inconsistencies;
    - arity violations per operator (the same rule table
      {!Graph.Builder.finish} enforces) and operator/output-count
      disagreements;
    - dtype consistency per {!Op_class}: a constant feeding an operator
      input whose {e value} determines the output shape
    ({!Op_class.value_inputs}) must be an integer tensor;
    - cycles and topological-order violations;
    - [<Switch, Combine>] control-flow pairing: every [Switch] branch must
      be consumed (or be a graph output) and every [Combine] must merge a
      [Switch] with the same branch count driven by the same predicate.

    {!Pipeline.compile} runs this validator on every graph before any
    analysis, so a malformed graph surfaces as a readable report rather
    than a crash deep inside RDP or the planners. *)

val check : Graph.t -> (unit, Sod2_error.t list) result
(** All defects, in detection order. *)

val check_exn : Graph.t -> unit
(** Raise [Sod2_error.Error] with the first defect, if any. *)

val report : Sod2_error.t list -> string
(** Multi-line human-readable rendering of a defect list. *)
