(** The computational-graph IR: a DAG of operator nodes connected by
    tensors, extended with the [<Switch, Combine>] control-flow pair
    (the paper's "extended computational graph" G).

    Graphs are built with the mutable {!Builder} and then frozen; node
    insertion order is a valid topological order by construction. *)

type tensor_id = int
type node_id = int

type tensor_kind =
  | Input of Shape.t  (** graph input with its (possibly symbolic) shape *)
  | Const of Tensor.t  (** weight or other compile-time constant *)
  | Activation  (** produced by a node at run time *)

type tensor_info = {
  tid : tensor_id;
  tname : string;
  kind : tensor_kind;
  producer : node_id option;  (** [None] for inputs and constants *)
}

type node = {
  nid : node_id;
  op : Op.t;
  inputs : tensor_id list;
  outputs : tensor_id list;
  nname : string;
}

type t

val arity_error : node -> string option
(** [arity_error nd] is [Some message] when the node's input count violates
    its operator's arity rule.  Shared by {!Builder.finish} and
    {!Validate.check}. *)

(** {1 Building} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val input : t -> name:string -> Shape.t -> tensor_id
  (** Declare a graph input.  Symbolic dims in the shape become the free
      shape variables of the model. *)

  val const : t -> name:string -> Tensor.t -> tensor_id

  val node : t -> ?name:string -> Op.t -> tensor_id list -> tensor_id list
  (** Append an operator node consuming the given tensors; returns its
      output tensor ids ({!Op.n_outputs} of them). *)

  val node1 : t -> ?name:string -> Op.t -> tensor_id list -> tensor_id
  (** Like {!node} for single-output operators. *)

  val set_outputs : t -> tensor_id list -> unit

  val finish : t -> graph
  (** Freeze and validate; raises [Sod2_error.Error] (classes
      [Invalid_graph] / [Arity_mismatch]) on malformed graphs — undefined
      tensors, arity violations, missing outputs. *)

  val finish_unchecked : t -> graph
  (** Freeze without validating.  Intended for validation pipelines that
      want to hand a possibly-malformed graph to {!Validate.check} and
      collect every defect at once instead of dying on the first. *)
end

(** {1 Accessors} *)

val nodes : t -> node array
(** Nodes in insertion (topological) order. *)

val node_count : t -> int
val tensor_count : t -> int
val tensor : t -> tensor_id -> tensor_info
val node : t -> node_id -> node
val inputs : t -> tensor_id list
val outputs : t -> tensor_id list

val const_value : t -> tensor_id -> Tensor.t option
(** The tensor's compile-time value when it is a constant. *)

val input_shape : t -> tensor_id -> Shape.t option
(** Declared shape when the tensor is a graph input. *)

val producer : t -> tensor_id -> node option
val consumers : t -> tensor_id -> node_id list

val predecessors : t -> node -> node list
(** Producing nodes of the node's inputs (deduplicated, in input order). *)

val successors : t -> node -> node list

val free_syms : t -> string list
(** Shape variables appearing in the declared input shapes. *)

(** {1 Traversal} *)

val topo_order : t -> node list
(** Insertion order (a topological order). *)

val dfs_order : t -> node list
(** Depth-first order from the graph inputs, visiting children left to
    right — the node ordering Alg. 1 of the paper iterates over. *)

(** {1 Export} *)

val to_dot : t -> string
(** Graphviz rendering with operator names; control-flow edges dashed. *)

val op_histogram : t -> (string * int) list
(** Operator name → occurrence count, sorted descending. *)
