(** Scalar reference semantics for elementwise operators.

    Shared by the naive reference kernels and the fused-group compiler so
    both paths evaluate the exact same closures per element — the basis for
    bit-for-bit fused-vs-reference equivalence on pointwise chains. *)

val erf : float -> float
(** Abramowitz–Stegun approximation of the error function, |err| < 1.5e-7. *)

val unary_fn : Op.unary -> float -> float
(** Float semantics of a unary operator. *)

val float_binary_fn : Op.binary -> float -> float -> float
(** Float semantics of a binary operator (comparisons return 0.0/1.0). *)

val int_binary_fn : Op.binary -> int -> int -> int
(** Integer semantics of a binary operator, used for I64×I64 inputs. *)
