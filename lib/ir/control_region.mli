(** Control-region discovery over the [<Switch, Combine>] EDO pair.

    A {e gate} is one run-time branch decision: a predicate tensor together
    with every Switch it drives and every Combine that merges the branches
    back.  Gates are the digits of a model's {e predicate outcome vector}
    — the key under which {!Pipeline} enumerates ahead-of-time plan
    variants (the paper's §4.4.2 multi-version code generation applied to
    whole execution plans rather than single kernels).

    Discovery also assigns every node its {e branch constraints}: the set
    of [(gate, branch)] pairs that must all be selected for the node to
    execute.  Constraints propagate forward from Switch outputs and are
    discharged at the gate's Combine, so nodes after the merge are
    unconditional again.  Constraint sets are what make dead-branch
    pruning a per-variant filter instead of a re-analysis. *)

type gate = {
  g_id : int;  (** index of this gate's digit in outcome vectors *)
  g_pred : Graph.tensor_id;  (** the predicate tensor all members share *)
  g_branches : int;  (** branch count (max across the gate's Switches) *)
  g_switches : Graph.node_id list;  (** Switch nodes driven by the predicate *)
  g_combines : Graph.node_id list;  (** paired Combine nodes *)
}

type t = {
  gates : gate array;  (** in topological (first-Switch) order *)
  node_constraints : (int * int) list array;
      (** per node id: the [(gate, branch)] selections required for the
          node to execute; [[]] = unconditional *)
}

val discover : Graph.t -> t
(** Group the graph's control flow into gates and propagate branch
    constraints.  Linear in graph size; safe on gate-free graphs (zero
    gates, every constraint set empty). *)

val gate_count : t -> int

val outcome_space : t -> int
(** Number of distinct full outcome vectors (product of branch counts);
    [-1] when the product overflows. *)

val constraints : t -> Graph.node_id -> (int * int) list
(** The node's required [(gate, branch)] selections. *)

val live_node : t -> outcome:int array -> Graph.node_id -> bool
(** Does the node execute under [outcome]?  [outcome.(g)] is the branch
    gate [g] selects, or [-1] to leave the gate open (the node then counts
    as live — the any-path semantics).  Gates beyond the array's length
    are treated as open. *)

val gate_of_switch : t -> Graph.node_id -> int option
(** The gate a Switch node belongs to, when it belongs to one. *)

val pp : Format.formatter -> t -> unit
