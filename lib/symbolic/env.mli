(** Symbol valuations: bindings from shape-variable names to concrete
    positive integers, used to instantiate symbolic analysis results at
    run time. *)

type t

val empty : t

val bind : string -> int -> t -> t
(** [bind name v env] binds [name] to [v], shadowing any previous binding. *)

val of_list : (string * int) list -> t

val lookup : t -> string -> int option

val eval : t -> Expr.t -> int option
(** [eval env e] evaluates [e] under [env]. *)

val eval_exn : t -> Expr.t -> int
(** Like {!eval} but raises [Sod2_error.Error] (class [Unbound_symbol])
    carrying the unresolved expression and the bindings that were
    available when evaluation fails. *)

val to_list : t -> (string * int) list
(** Bindings in name order. *)

val pp : Format.formatter -> t -> unit
