module M = Map.Make (String)

type t = int M.t

let empty = M.empty
let bind name v env = M.add name v env
let of_list l = List.fold_left (fun env (k, v) -> bind k v env) empty l
let lookup env name = M.find_opt name env
let eval env e = Expr.eval (lookup env) e

let eval_exn env e =
  match eval env e with
  | Some v -> v
  | None ->
    Sod2_error.failf Sod2_error.Unbound_symbol "cannot evaluate %s under {%s}"
      (Expr.to_string e)
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (M.bindings env)))

let to_list env = M.bindings env

let pp ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (to_list env)
