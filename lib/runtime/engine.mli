(** Resident concurrent inference engine.

    Everything before this module is one-shot: each {!Executor.run_real}
    call re-threads its options and single-tenant arena.  The engine is
    the serving-side counterpart of SoD²'s compile-once/run-many split
    (§4.4.1): it owns one {!Pipeline.compiled} artifact plus [N] worker
    slots — each with its own grow-only {!Arena.t}, its own
    {!Backend.t} (per-worker fused-kernel cache, so cache lookups are
    lock-free), and a scratch environment — fed from a mutex/condition
    request queue.

    The instantiated-plan cache is the one piece of shared mutable state
    between workers; it lives on the compiled artifact and is
    lock-protected ({!Pipeline.compiled.plan_lock}), so steady-state
    concurrent traffic over already-seen shape bindings performs {e zero}
    replanning: every worker's request resolves to the same cached
    {!Mem_plan.t} and only the per-worker arena contents differ.

    Requests that carry the same symbol binding (equal
    {!Pipeline.plan_key}) may be {e micro-batched}: a worker that
    dequeues a request also claims up to [max_batch - 1] queued
    same-binding requests and runs them back-to-back, amortizing plan
    lookup and keeping the arena layout hot.

    Per-request latency, queue depth and worker occupancy land in
    {!stats}; the process-global {!Profile.Counters} records
    ["engine-request"], ["engine-batched"] and ["engine-failed"]. *)

type t

type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  latency_us : float;  (** submit-to-completion, queue wait included *)
  worker : int;  (** worker slot that executed the request *)
  batched : bool;  (** ran as a follower inside a micro-batch *)
}

type ticket
(** Handle for an in-flight request; redeem with {!await} (any number of
    times — results are retained). *)

type stats = {
  workers : int;
  submitted : int;
  completed : int;
  failed : int;  (** requests whose execution raised; {!await} re-raises *)
  batched : int;  (** requests that rode along in a micro-batch *)
  queue_depth : int;  (** requests currently waiting, at snapshot time *)
  queue_peak : int;  (** high-water mark of the queue *)
  worker_runs : int array;  (** requests executed, per worker slot *)
  busy_us : float array;  (** cumulative execution time, per worker slot *)
  total_latency_us : float;  (** sum over completed requests *)
  max_latency_us : float;
}

val create : ?workers:int -> ?max_batch:int -> ?config:Executor.config ->
  Pipeline.compiled -> t
(** [create c] starts the worker domains (default [workers = 1], clamped
    to at least 1; oversubscribing the host is allowed — idle workers
    block on the queue's condition variable).  [max_batch] (default 4)
    bounds micro-batches; [1] disables batching.  [config] (default
    {!Executor.default_config}) fixes the execution policy for every
    request: [Mem_arena] gives each worker a private grow-only arena,
    [guarded] routes requests through {!Guarded_exec} (graceful
    degradation instead of raising), and a non-naive [backend] gives each
    worker its own backend instance sized so the per-worker pools do not
    oversubscribe the host. *)

val submit : t -> env:Env.t -> inputs:(Graph.tensor_id * Tensor.t) list -> ticket
(** Enqueue one inference.  [env] must bind the model's shape variables
    consistently with [inputs] — it keys the plan cache and the
    micro-batcher.  Raises [Invalid_argument] after {!shutdown}. *)

val await : t -> ticket -> result
(** Block until the ticket's request completes.  Re-raises the worker's
    exception if the request failed. *)

val infer : t -> env:Env.t -> inputs:(Graph.tensor_id * Tensor.t) list -> result
(** [infer t ~env ~inputs] = [await t (submit t ~env ~inputs)]. *)

val stats : t -> stats
(** Consistent snapshot (taken under the engine lock). *)

val config : t -> Executor.config

val shutdown : t -> unit
(** Graceful drain: workers finish every queued request, then exit and
    release their backends.  Blocks until all worker domains have joined.
    Idempotent; {!await} on already-completed tickets keeps working. *)

(** {1 One-shot arena execution}

    The former [Arena_exec] entry point, kept on the facade so the thin
    {!Arena_exec} alias has no duplicated setup code. *)

type arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;  (** size of the linear buffer that was used *)
  arena_resident : int;  (** tensors that lived in the arena *)
}
(* Field names are load-bearing: {!Arena_exec.result} re-exports this
   record equation, so historical [r.Arena_exec.arena_bytes] accesses
   keep compiling. *)

val run_arena :
  ?backend:Backend.t -> ?arena:Arena.t -> Pipeline.compiled -> env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list -> arena_result
(** Single synchronous arena inference with fail-fast RDP cross-checking
    ([check_env = env]) — {!Executor.run_real} in [Arena] memory mode.
    [arena] supplies a persistent buffer for steady-state reuse; omitted,
    a fresh one is created for the call. *)
