(** Resident concurrent inference engine, hardened for overload and
    partial failure.

    Everything before this module is one-shot: each {!Executor.run_real}
    call re-threads its options and single-tenant arena.  The engine is
    the serving-side counterpart of SoD²'s compile-once/run-many split
    (§4.4.1): it owns one {!Pipeline.compiled} artifact plus [N] worker
    slots — each with its own grow-only {!Arena.t}, its own
    {!Backend.t} (per-worker fused-kernel cache, so cache lookups are
    lock-free), and a scratch environment — fed from a mutex/condition
    request queue.

    The instantiated-plan cache is the one piece of shared mutable state
    between workers; it lives on the compiled artifact and is
    lock-protected ({!Pipeline.compiled.plan_lock}), so steady-state
    concurrent traffic over already-seen shape bindings performs {e zero}
    replanning.  Requests that carry the same symbol binding (equal
    {!Pipeline.plan_key}) may be {e micro-batched}: a worker that
    dequeues a request also claims up to [max_batch - 1] queued
    same-binding requests and runs them back-to-back.

    {2 Overload and failure semantics (DESIGN.md §13)}

    - {b Admission control}: the queue is bounded by [queue_cap]; a full
      queue triggers the {!overload_policy} — reject the new request
      ({!Sod2_error.Overload} raised at {!submit}), shed the oldest
      queued request (its ticket settles failed with an [Overload]
      error), or block the submitter until there is room (optionally
      bounded by a timeout).
    - {b Deadlines}: [submit ?deadline_us] attaches a relative deadline;
      it is checked when the request is dequeued and again before each
      micro-batch follower runs, so expired requests are shed
      ({!Sod2_error.Deadline_expired}) before burning a worker.
    - {b Worker supervision}: a worker domain that dies on an escaped
      exception fails its in-flight requests with context (worker id,
      plan key, uptime) and is replaced by a fresh domain — fresh arena,
      fresh backend — under [restart_budget].  When the budget is spent
      and the last worker is gone the engine enters {e degraded mode}:
      queued and subsequent requests run synchronously in the calling
      domain through the guarded reference fallback
      ({!Executor.degraded}) instead of deadlocking.
    - {b Circuit breaker}: [breaker_threshold] consecutive failures on
      one plan key trip a per-key breaker; while open, same-key requests
      route through the guarded fallback path (results carry
      [degraded = true]).  After [breaker_cooldown_us] one probe request
      re-tests the normal path — success closes the breaker, failure
      re-opens it.

    {2 Multi-version plan serving (DESIGN.md §17)}

    When the artifact carries control flow and a variant budget
    ({!Compile_opts.t}[.variant_budget]), the engine predicts each
    request's predicate-outcome vector from the last completed run on the
    same plan key ([trace.gate_outcomes] / [report.gate_outcomes]) and
    serves it through the matching precompiled plan variant
    ({!Pipeline.variant}): pruned straight-line order, live-tensor-only
    memory plan, no per-node branch resolution.  A mispredicted gate is
    detected once at its Switch and transparently re-runs on the any-path
    base plan inside {!Executor.run_real}.  Under a guarded config, a
    variant whose instantiated plan has been vetted once
    ({!Pipeline.variant_vetted}) skips the per-run {!Guarded_exec} sweep
    and runs the executor directly with fail-fast cross-checks — the
    vet-once fast path, counted as ["engine-variant-direct"].  Breakers
    and the drift detector key on the variant-qualified plan key
    (["<binding>|v=<outcome>"]), so a misbehaving specialized plan is
    isolated from its siblings; {!stats} aggregates cache cardinality
    back to base keys ([plan_keys] vs [plan_variants]).

    Per-request latency lands in a fixed-bucket log histogram (8 buckets
    per octave, no per-request retention) surfaced as p50/p95/p99 in
    {!stats}; the process-global {!Profile.Counters} additionally
    records ["engine-request"], ["engine-batched"], ["engine-failed"],
    ["engine-rejected"], ["engine-shed"], ["engine-expired"],
    ["engine-worker-restart"], ["engine-breaker-open"],
    ["engine-degraded-run"] and ["engine-degraded"]. *)

type t

type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  latency_us : float;  (** submit-to-completion, queue wait included *)
  worker : int;  (** worker slot that executed the request; [-1] = inline degraded *)
  batched : bool;  (** ran as a follower inside a micro-batch *)
  degraded : bool;  (** ran on the guarded fallback path (breaker open or
                        degraded mode) rather than the configured backend *)
}

type ticket
(** Handle for an in-flight request.  Redeem with {!await} — {e once}:
    the first successful [await] returns the result and reclaims it
    (single-redeem), so a long-lived engine does not retain every output
    tensor ever produced.  A second [await] raises
    {!Sod2_error.Engine_error}.  Failed tickets stay re-raisable. *)

type overload_policy =
  | Reject
      (** raise {!Sod2_error.Overload} from {!submit} when the queue is
          full (the default) *)
  | Shed_oldest
      (** evict the oldest queued request — its ticket settles failed
          with an [Overload] error — and admit the new one *)
  | Block of float option
      (** block the submitter until the queue has room; [Some timeout_us]
          bounds the wait, after which {!Sod2_error.Overload} is raised *)

type stats = {
  workers : int;  (** configured worker slots *)
  live_workers : int;  (** slots currently backed by a live domain *)
  degraded : bool;  (** restart budget spent and no workers left *)
  submitted : int;  (** every submit attempt, including rejected ones *)
  completed : int;
  failed : int;  (** execution raised or the worker crashed mid-request *)
  rejected : int;  (** refused at submit by admission control *)
  shed : int;  (** evicted from a full queue under {!Shed_oldest} *)
  expired : int;  (** deadline passed before execution *)
  batched : int;  (** requests that rode along in a micro-batch *)
  degraded_runs : int;  (** requests served via the guarded fallback path *)
  worker_restarts : int;  (** crashed worker domains replaced so far *)
  breaker_open : int;  (** circuit-breaker trip events (incl. re-opens) *)
  queue_depth : int;  (** requests currently waiting, at snapshot time *)
  queue_peak : int;  (** high-water mark of the queue *)
  worker_runs : int array;  (** requests executed, per worker slot *)
  busy_us : float array;  (** cumulative execution time, per worker slot *)
  total_latency_us : float;  (** sum over completed requests *)
  max_latency_us : float;
  p50_latency_us : float;  (** percentiles over completed requests, from a
                               fixed-bucket log histogram (≤ 4.4 % relative
                               error, clamped to [max_latency_us]) *)
  p95_latency_us : float;
  p99_latency_us : float;
  warm_classes : int;  (** shape classes warm-started from [?tune_cache] *)
  drift_trips : int;  (** drift-detector trips (re-tunes scheduled) *)
  retunes : int;  (** background re-tunes completed and swapped in *)
  plan_keys : int;
      (** distinct {e base} (shape-binding) keys in the instantiated-plan
          cache — variant-qualified entries are folded into their base
          key, so this is the per-model binding cardinality regardless of
          how many outcome variants each binding fanned out into *)
  plan_variants : int;  (** variant-qualified (["|v="]) cache entries *)
}
(** Invariant once every ticket has settled:
    [completed + failed + shed + rejected + expired = submitted], and
    [p50 <= p95 <= p99 <= max]. *)

val create :
  ?workers:int ->
  ?max_batch:int ->
  ?config:Executor.config ->
  ?queue_cap:int ->
  ?overload:overload_policy ->
  ?restart_budget:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_us:float ->
  ?tune_cache:Tune_cache.t ->
  ?drift_threshold:float ->
  ?drift_window:int ->
  ?retune:(unit -> Multi_version.table) ->
  Pipeline.compiled ->
  t
(** [create c] starts the worker domains (default [workers = 1], clamped
    to at least 1).  [max_batch] (default 4) bounds micro-batches; [1]
    disables batching.  [config] (default {!Executor.default_config})
    fixes the execution policy for every request.

    Robustness knobs: [queue_cap] (default unbounded) bounds the request
    queue and arms [overload] (default {!Reject}); [restart_budget]
    (default 3) is the total number of crashed-worker respawns before
    the engine degrades; [breaker_threshold] (default 5) consecutive
    same-plan-key failures trip that key's circuit breaker ([<= 0]
    disables it) and [breaker_cooldown_us] (default 50 000) is the
    open-state cooldown before a probe.

    Tuning knobs (DESIGN.md §16): [tune_cache] warm-starts the kernel
    version table from persisted measured-tuning winners — resolved
    against [config]'s backend kind and the artifact's float dtype via
    {!Tune_cache.table_for} before any worker spawns, so a warm-started
    engine performs {e zero} tuning measurements at serving time
    ([stats.warm_classes] reports the coverage).  [drift_threshold]
    (default 0 = off) arms the online drift detector: per plan key, the
    mean observed service time over [drift_window] (default 32) completed
    normal-path requests is compared to the cost model's prediction; the
    first full window calibrates the key's baseline observed/predicted
    ratio, and a later window exceeding [baseline × drift_threshold]
    schedules one background re-tune — [retune] if given (injection point
    for tests and custom tuners), else a quick measured Hybrid pass over
    the class representatives ({!Tune_measure.tune_table}).  The new
    table is swapped into live workers atomically
    ({!Backend.set_versions}) without pausing them; {!Profile.Counters}
    records ["engine-drift"] at trip and ["engine-retune"] at swap. *)

val submit :
  ?deadline_us:float ->
  t ->
  env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list ->
  ticket
(** Enqueue one inference.  [env] must bind the model's shape variables
    consistently with [inputs] — it keys the plan cache, the
    micro-batcher and the circuit breaker.  [deadline_us] is relative to
    now; once it passes the request is shed without executing
    ({!await} raises {!Sod2_error.Deadline_expired}).

    Raises {!Sod2_error.Overload} when admission control refuses the
    request (counted in [stats.rejected]) and {!Sod2_error.Engine_error}
    after {!shutdown}.  In degraded mode the request executes
    synchronously on the calling domain and the returned ticket is
    already settled. *)

val await : t -> ticket -> result
(** Block until the ticket's request settles.  The first successful
    [await] returns the result and reclaims it; later calls raise
    {!Sod2_error.Engine_error} (single-redeem).  Failed requests raise
    their structured {!Sod2_error.Error} — shed requests as [Overload],
    expired ones as [Deadline_expired], worker crashes as [Engine_error]
    with worker/key context; a raw worker exception is wrapped in
    [Engine_error] rather than re-raised bare. *)

val infer :
  ?deadline_us:float ->
  t ->
  env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list ->
  result
(** [infer t ~env ~inputs] = [await t (submit t ~env ~inputs)]. *)

val stats : t -> stats
(** Consistent snapshot (taken under the engine lock). *)

val config : t -> Executor.config

val shutdown : t -> unit
(** Graceful drain: workers finish every queued request, then exit and
    release their backends.  Blocks until all worker domains have joined.
    Idempotent; {!await} on already-completed tickets keeps working
    (subject to single-redeem).  Subsequent {!submit} raises
    {!Sod2_error.Engine_error}. *)

(** {1 Fault injection}

    Test-only hook, consulted on the worker before each normal-path
    execution (never on the fallback path).  Raising
    {!For_testing.Crash_worker} from it escapes the per-request handler
    and kills the worker domain (exercising supervision); raising any
    other exception fails just that request (exercising the breaker);
    sleeping stalls the worker (exercising deadlines and backpressure). *)
module For_testing : sig
  exception Crash_worker

  val inject : (worker:int -> plan_key:string -> unit) option ref
  (** Global; reset to [None] after use. *)
end

(** {1 One-shot arena execution}

    One synchronous arena inference without standing up a resident
    engine — the facade spelling the tests, bench and CLI use for
    steady-state arena measurements. *)

type arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;  (** size of the linear buffer that was used *)
  arena_resident : int;  (** tensors that lived in the arena *)
}

val run_arena :
  ?backend:Backend.t -> ?arena:Arena.t -> Pipeline.compiled -> env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list -> arena_result
(** Single synchronous arena inference with fail-fast RDP cross-checking
    ([check_env = env]) — {!Executor.run_real} in [Arena] memory mode.
    [arena] supplies a persistent buffer for steady-state reuse; omitted,
    a fresh one is created for the call. *)
