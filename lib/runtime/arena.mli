(** Grow-only arena storage for planned execution (§4.4.1 runtime side).

    One flat [float array] backs every planned tensor slot of an
    inference.  The buffer only ever grows: steady-state runs with a
    binding already seen reuse the existing storage, so the second call
    onward performs no allocation at all.  Contents are {e not} cleared
    between runs — kernels overwrite their slots (destination-passing
    writes initialize the window first). *)

type t

val create : unit -> t
(** An empty arena (capacity 0); the first {!ensure} sizes it. *)

val ensure : t -> int -> float array
(** [ensure t floats] returns the backing buffer, reallocating only when
    the current capacity is below [floats].  The returned array may be
    larger than requested. *)

val capacity : t -> int
(** Current capacity in floats. *)

val grows : t -> int
(** Number of (re)allocations performed so far — a steady-state run adds
    zero. *)
