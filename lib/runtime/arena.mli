(** Grow-only arena storage for planned execution (§4.4.1 runtime side).

    One flat float buffer ({!Tensor.fbuf}) backs every planned tensor slot
    of an inference; its element kind is the compiled artifact's float
    dtype, so slot offsets computed in bytes divide exactly by
    [Tensor.bytes_per_elem].  The buffer only ever grows: steady-state runs
    with a binding already seen reuse the existing storage, so the second
    call onward performs no allocation at all.  Contents are {e not}
    cleared between runs — kernels overwrite their slots
    (destination-passing writes initialize the window first). *)

type t

val create : unit -> t
(** An empty arena (capacity 0); the first {!ensure} sizes it. *)

val ensure : t -> Tensor.dtype -> int -> Tensor.fbuf
(** [ensure t dtype elems] returns the backing buffer, reallocating only
    when the current capacity is below [elems] or the stored kind differs
    from [dtype].  The returned buffer may be larger than requested; a
    fresh buffer is zero-filled. *)

val capacity : t -> int
(** Current capacity in elements. *)

val capacity_bytes : t -> int
(** Current capacity in bytes ([capacity × bytes_per_elem kind]); 0 for an
    empty arena. *)

val grows : t -> int
(** Number of (re)allocations performed so far — a steady-state run adds
    zero. *)
