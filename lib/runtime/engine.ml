type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  latency_us : float;
  worker : int;
  batched : bool;
  degraded : bool;
}

type state =
  | Pending
  | Done of result
  | Failed of exn
  | Redeemed

type request = {
  r_env : Env.t;
  r_key : string;  (** {!Pipeline.plan_key} of [r_env] — micro-batch key *)
  r_inputs : (Graph.tensor_id * Tensor.t) list;
  r_submitted : float;  (** [Unix.gettimeofday] at submit *)
  r_deadline : float option;  (** absolute [gettimeofday] expiry, from [?deadline_us] *)
  mutable r_worker : int;  (** worker slot that last touched it; -1 = none *)
  mutable r_state : state;
}

type ticket = request

type overload_policy =
  | Reject
  | Shed_oldest
  | Block of float option

module For_testing = struct
  exception Crash_worker

  let inject : (worker:int -> plan_key:string -> unit) option ref = ref None
end

(* Per-plan-key circuit breaker.  [opened_at = 0.0] means closed;
   [probing] marks a cooldown probe in flight on the normal path. *)
type breaker = {
  mutable consecutive : int;
  mutable opened_at : float;
  mutable probing : bool;
}

(* ------------------------------------------------------------------ *)
(* Fixed-bucket log latency histogram: 8 buckets per octave from 1 µs,
   so 256 buckets span ~2^32 µs (≈ 71 min) at ≤ 4.4 % relative error.
   No per-request retention — percentiles come from the bucket counts. *)

let hist_buckets = 256
let hist_per_octave = 8.0

let bucket_of_latency us =
  if us <= 1.0 then 0
  else min (hist_buckets - 1) (int_of_float (hist_per_octave *. (log us /. log 2.0)))

let latency_of_bucket i = Float.pow 2.0 ((float_of_int i +. 0.5) /. hist_per_octave)

(* Per-plan-key drift tracking: a window of observed service times is
   compared against the cost model's prediction.  The first full window
   fixes the key's baseline observed/predicted ratio (absorbing the
   model's constant bias); later windows exceeding
   [baseline × drift_threshold] trip a re-tune. *)
type drift_obs = {
  mutable o_n : int;
  mutable o_sum : float;
  mutable o_baseline : float;  (** 0.0 = not yet calibrated *)
}

type stats = {
  workers : int;
  live_workers : int;
  degraded : bool;
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;
  expired : int;
  batched : int;
  degraded_runs : int;
  worker_restarts : int;
  breaker_open : int;
  queue_depth : int;
  queue_peak : int;
  worker_runs : int array;
  busy_us : float array;
  total_latency_us : float;
  max_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
  p99_latency_us : float;
  warm_classes : int;
  drift_trips : int;
  retunes : int;
  plan_keys : int;
  plan_variants : int;
}

type t = {
  compiled : Pipeline.compiled;
  cfg : Executor.config;
  nworkers : int;
  max_batch : int;
  queue_cap : int;
  overload : overload_policy;
  restart_budget : int;
  breaker_threshold : int;  (** <= 0 disables the breaker *)
  breaker_cooldown_us : float;
  drift_threshold : float;  (** <= 0 disables the drift detector *)
  drift_window : int;
  retune_fn : (unit -> Multi_version.table) option;
  warm_classes : int;  (** shape classes warm-started from the tune cache *)
  lock : Mutex.t;
  work : Condition.t;  (** signaled on submit and on shutdown *)
  finished : Condition.t;  (** broadcast whenever any request settles *)
  room : Condition.t;  (** broadcast whenever the queue shrinks *)
  queue : request Queue.t;
  breakers : (string, breaker) Hashtbl.t;
  inflight : request list array;  (** per worker slot: claimed, unsettled batch *)
  mutable stopping : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
  mutable retune_domains : unit Domain.t list;
  mutable live_versions : Multi_version.table;
      (** what (re)spawned workers build their backend from; updated by
          the re-tuner *)
  mutable retune_inflight : bool;
  backends : Backend.t option array;  (** live per-worker backends, for in-place swap *)
  predicted : (string, float) Hashtbl.t;  (** plan key -> cost-model service us *)
  observed : (string, drift_obs) Hashtbl.t;
  outcomes : (string, int array) Hashtbl.t;
      (** plan key -> last observed predicate-outcome vector; the
          prediction a variant run verifies per gate *)
  mutable live_workers : int;
  mutable degraded_mode : bool;
  mutable restarts_used : int;
  (* Stats below are guarded by [lock]. *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable shed : int;
  mutable expired : int;
  mutable batched : int;
  mutable degraded_runs : int;
  mutable worker_restarts : int;
  mutable breaker_trips : int;
  mutable drift_trips : int;
  mutable retunes : int;
  mutable queue_peak : int;
  worker_runs : int array;
  busy_us : float array;
  hist : int array;
  mutable hist_total : int;
  mutable total_latency_us : float;
  mutable max_latency_us : float;
}

let config t = t.cfg

let counter t kind =
  Profile.Counters.record ~profile:t.compiled.Pipeline.profile.Profile.name ~kind

(* ------------------------------------------------------------------ *)
(* Lock-held helpers                                                   *)

type verdict =
  | V_completed
  | V_failed
  | V_shed
  | V_expired

(* Settle a request exactly once; the disjoint verdict keeps
   completed + failed + shed + rejected + expired = submitted. *)
let settle_locked t req st verdict =
  match req.r_state with
  | Pending ->
    req.r_state <- st;
    (match verdict with
    | V_completed -> t.completed <- t.completed + 1
    | V_failed -> t.failed <- t.failed + 1
    | V_shed -> t.shed <- t.shed + 1
    | V_expired -> t.expired <- t.expired + 1);
    Condition.broadcast t.finished;
    true
  | Done _ | Failed _ | Redeemed -> false

let record_latency_locked t us =
  t.hist.(bucket_of_latency us) <- t.hist.(bucket_of_latency us) + 1;
  t.hist_total <- t.hist_total + 1;
  t.total_latency_us <- t.total_latency_us +. us;
  if us > t.max_latency_us then t.max_latency_us <- us

let percentile_locked t p =
  if t.hist_total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int t.hist_total))) in
    let acc = ref 0 and v = ref t.max_latency_us in
    (try
       for i = 0 to hist_buckets - 1 do
         acc := !acc + t.hist.(i);
         if !acc >= rank then begin
           v := latency_of_bucket i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Bucket representatives can overshoot the true tail. *)
    Float.min !v t.max_latency_us
  end

let breaker_for_locked t key =
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
    let b = { consecutive = 0; opened_at = 0.0; probing = false } in
    Hashtbl.add t.breakers key b;
    b

(* Routing decision for one request: [`Normal] (breaker closed), [`Probe]
   (open, cooldown elapsed — this request re-tests the normal path) or
   [`Fallback] (open — run the guarded/reference path). *)
let route_locked t key now =
  if t.breaker_threshold <= 0 then `Normal
  else
    match Hashtbl.find_opt t.breakers key with
    | None -> `Normal
    | Some b ->
      if b.opened_at = 0.0 then `Normal
      else if (now -. b.opened_at) *. 1e6 >= t.breaker_cooldown_us && not b.probing
      then begin
        b.probing <- true;
        `Probe
      end
      else `Fallback

let breaker_success_locked t key ~probe =
  match Hashtbl.find_opt t.breakers key with
  | None -> ()
  | Some b ->
    b.consecutive <- 0;
    if probe then b.probing <- false;
    b.opened_at <- 0.0

let breaker_failure_locked t key ~probe now =
  if t.breaker_threshold > 0 then begin
    let b = breaker_for_locked t key in
    let trip () =
      b.opened_at <- now;
      t.breaker_trips <- t.breaker_trips + 1;
      counter t "engine-breaker-open"
    in
    if probe then begin
      b.probing <- false;
      trip () (* failed probe re-opens and restarts the cooldown *)
    end
    else begin
      b.consecutive <- b.consecutive + 1;
      if b.opened_at = 0.0 && b.consecutive >= t.breaker_threshold then trip ()
    end
  end

let breaker_probing_locked t key =
  match Hashtbl.find_opt t.breakers key with Some b -> b.probing | None -> false

(* ------------------------------------------------------------------ *)
(* Drift detection and background re-tuning                            *)

(* Cost-model prediction of one request's service time under [env]: the
   sum of per-node roofline times over RDP-resolved extents, dtype-aware
   via the artifact's fdtype.  Cached per plan key (same binding → same
   extents → same prediction).  Called with the lock held — a short
   linear pass, same discipline as plan instantiation. *)
let predicted_us_locked t env key =
  match Hashtbl.find_opt t.predicted key with
  | Some v -> v
  | None ->
    let c = t.compiled in
    let elem = Tensor.bytes_per_elem c.Pipeline.fdtype in
    let dims_of tid = Shape.eval env (Rdp.shape c.Pipeline.rdp tid) in
    let sequence l =
      List.fold_right
        (fun x acc ->
          match x, acc with Some v, Some vs -> Some (v :: vs) | _ -> None)
        l (Some [])
    in
    let v =
      Array.fold_left
        (fun acc (nd : Graph.node) ->
          match
            ( sequence (List.map dims_of nd.Graph.inputs),
              sequence (List.map dims_of nd.Graph.outputs) )
          with
          | Some in_dims, Some out_dims ->
            acc
            +. Cost_model.op_time_us ~elem c.Pipeline.profile nd.Graph.op ~in_dims
                 ~out_dims
          | _ -> acc)
        0.0
        (Graph.nodes c.Pipeline.graph)
    in
    Hashtbl.replace t.predicted key v;
    v

(* One successfully served request's service time [busy] lands in its
   key's window; a full window whose mean drifts past the calibrated
   baseline ratio arms a re-tune.  Returns [true] when the caller (which
   still holds the lock) must spawn the re-tuner after unlocking. *)
let observe_drift_locked t req ~key busy =
  if t.drift_threshold <= 0.0 then false
  else begin
    let ob =
      match Hashtbl.find_opt t.observed key with
      | Some o -> o
      | None ->
        let o = { o_n = 0; o_sum = 0.0; o_baseline = 0.0 } in
        Hashtbl.add t.observed key o;
        o
    in
    ob.o_n <- ob.o_n + 1;
    ob.o_sum <- ob.o_sum +. busy;
    if ob.o_n < t.drift_window then false
    else begin
      let mean = ob.o_sum /. float_of_int ob.o_n in
      ob.o_n <- 0;
      ob.o_sum <- 0.0;
      let ratio = mean /. Float.max 1e-9 (predicted_us_locked t req.r_env req.r_key) in
      if ob.o_baseline = 0.0 then begin
        ob.o_baseline <- ratio;
        false
      end
      else if
        ratio > ob.o_baseline *. t.drift_threshold
        && (not t.retune_inflight) && not t.stopping
      then begin
        t.retune_inflight <- true;
        t.drift_trips <- t.drift_trips + 1;
        true
      end
      else false
    end
  end

(* The built-in re-tuner: a quick measured (Hybrid) pass over the class
   representatives on the device the artifact was compiled for.  Runs in
   a background domain with sequential kernels — it shares cores with the
   workers, so the budget is kept small. *)
let default_retune t () =
  Tune_measure.tune_table ~objective:Autotune.Hybrid ~rounds:2 ~generations:6
    ~population:8 ~finalists:4 t.compiled.Pipeline.profile
    ~dt:t.compiled.Pipeline.fdtype

(* Background re-tune: derive a fresh version table, then — under the
   lock — swap it into every live worker backend ({!Backend.set_versions}
   is a single pointer store, so kernels in flight finish on the old
   table) and into [live_versions] for future (re)spawns.  Baselines
   reset so the detector re-calibrates against the new configs. *)
let spawn_retune t =
  Mutex.lock t.lock;
  if t.stopping then begin
    t.retune_inflight <- false;
    Mutex.unlock t.lock
  end
  else begin
    let d =
      Domain.spawn (fun () ->
          let table =
            match t.retune_fn with Some f -> f () | None -> default_retune t ()
          in
          Mutex.lock t.lock;
          t.live_versions <- table;
          t.retunes <- t.retunes + 1;
          Array.iter
            (function Some be -> Backend.set_versions be table | None -> ())
            t.backends;
          Hashtbl.iter
            (fun _ o ->
              o.o_n <- 0;
              o.o_sum <- 0.0;
              o.o_baseline <- 0.0)
            t.observed;
          t.retune_inflight <- false;
          Mutex.unlock t.lock;
          counter t "engine-retune")
    in
    t.retune_domains <- d :: t.retune_domains;
    Mutex.unlock t.lock;
    counter t "engine-drift"
  end

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

(* Outcome prediction: map one run's observed [(pred tid, branch)] pairs
   to the canonical outcome vector (digit [i] belongs to
   [control.gates.(i)], matched on [g_pred]).  A run that left any gate
   unobserved yields no prediction — a partial vector would specialize a
   gate we know nothing about. *)
let outcome_of_observations t obs =
  let gates = t.compiled.Pipeline.control.Control_region.gates in
  if Array.length gates = 0 || obs = [] then None
  else
    let v =
      Array.map
        (fun g ->
          match List.assoc_opt g.Control_region.g_pred obs with
          | Some b -> b
          | None -> -1)
        gates
    in
    if Array.exists (fun o -> o < 0) v then None else Some v

let run_fallback t req =
  (Guarded_exec.run
     ~config:(Executor.degraded t.cfg)
     t.compiled ~env:req.r_env ~inputs:req.r_inputs)
    .Guarded_exec.outputs

(* Execute one request on worker [w]'s private resources.  The engine
   lock is NOT held here — only the settle step takes it.
   {!For_testing.Crash_worker} escapes on purpose: it simulates an
   exception that takes the whole worker domain down. *)
let execute t ~w ~arena ~backend req ~batched =
  let started = Unix.gettimeofday () in
  Mutex.lock t.lock;
  let predicted_outcome = Hashtbl.find_opt t.outcomes req.r_key in
  Mutex.unlock t.lock;
  (* A prediction with a compiled (within-budget) variant routes the
     breaker and drift accounting under the variant-qualified key, so a
     misbehaving specialized plan trips its own breaker — and calibrates
     its own drift baseline — without dragging down the base plan or the
     key's other variants. *)
  let variant =
    match predicted_outcome with
    | Some o -> Pipeline.variant t.compiled ~outcome:o
    | None -> None
  in
  let vkey =
    match variant with
    | Some v -> req.r_key ^ "|v=" ^ v.Pipeline.v_key
    | None -> req.r_key
  in
  Mutex.lock t.lock;
  let route = route_locked t vkey started in
  Mutex.unlock t.lock;
  let via_fallback = route = `Fallback in
  let gate_obs = ref [] in
  let outcome =
    try
      (match !For_testing.inject with
      | Some f when not via_fallback -> f ~worker:w ~plan_key:req.r_key
      | _ -> ());
      let outputs =
        if via_fallback then run_fallback t req
        else begin
          let memory =
            match t.cfg.Executor.memory with
            | Executor.Mem_malloc -> Executor.Malloc
            | Executor.Mem_arena -> Executor.Arena { arena; env = req.r_env }
          in
          (* Through the config entry point so [cfg.quant] reaches the
             executor; the explicit [memory] (this worker's arena) and
             [backend] (this worker's pool slice) still win over the
             config fields they subsume. *)
          let run_direct ?check_env ?outcomes () =
            let tr, outs =
              Executor.run_real ~config:t.cfg ?backend ~memory ?check_env
                ?outcomes t.compiled ~inputs:req.r_inputs
            in
            gate_obs := tr.Executor.gate_outcomes;
            outs
          in
          if t.cfg.Executor.guarded then
            match variant with
            | Some v when Pipeline.variant_vetted t.compiled v req.r_env ->
              (* Vet-once fast path: this variant's instantiated plan was
                 vetted when the (binding x outcome) pair first appeared,
                 so steady-state requests skip the per-run Guarded_exec
                 sweep and boundary cross-checks entirely and run the
                 pruned plan directly.  The prediction itself is still
                 verified once per gate at its Switch — a mispredicted
                 gate falls back inside {!Executor.run_real} — and
                 anything that raises lands in this key's breaker like
                 any other failure. *)
              counter t "engine-variant-direct";
              run_direct ~outcomes:v.Pipeline.v_outcome ()
            | _ ->
              let report =
                Guarded_exec.run
                  ?arena:
                    (if t.cfg.Executor.memory = Executor.Mem_arena then
                       Some arena
                     else None)
                  ?backend t.compiled ~env:req.r_env ~inputs:req.r_inputs
              in
              gate_obs := report.Guarded_exec.gate_outcomes;
              report.Guarded_exec.outputs
          else run_direct ?outcomes:predicted_outcome ()
        end
      in
      let now = Unix.gettimeofday () in
      Ok
        ( {
            outputs;
            latency_us = (now -. req.r_submitted) *. 1e6;
            worker = w;
            batched;
            degraded = via_fallback;
          },
          (now -. started) *. 1e6 )
    with
    | For_testing.Crash_worker as e -> raise e
    | e -> Error (e, (Unix.gettimeofday () -. started) *. 1e6)
  in
  let want_retune = ref false in
  Mutex.lock t.lock;
  t.worker_runs.(w) <- t.worker_runs.(w) + 1;
  req.r_worker <- w;
  (match outcome with
  | Ok (r, busy) ->
    ignore (settle_locked t req (Done r) V_completed);
    t.busy_us.(w) <- t.busy_us.(w) +. busy;
    record_latency_locked t r.latency_us;
    if batched then t.batched <- t.batched + 1;
    (match outcome_of_observations t !gate_obs with
    | Some o -> Hashtbl.replace t.outcomes req.r_key o
    | None -> ());
    if r.degraded then t.degraded_runs <- t.degraded_runs + 1
    else begin
      breaker_success_locked t vkey ~probe:(route = `Probe);
      want_retune := observe_drift_locked t req ~key:vkey busy
    end
  | Error (e, busy) ->
    ignore (settle_locked t req (Failed e) V_failed);
    t.busy_us.(w) <- t.busy_us.(w) +. busy;
    if not via_fallback then
      breaker_failure_locked t vkey ~probe:(route = `Probe) (Unix.gettimeofday ()));
  Mutex.unlock t.lock;
  counter t "engine-request";
  if batched then counter t "engine-batched";
  if via_fallback then counter t "engine-degraded-run";
  if !want_retune then spawn_retune t;
  match outcome with Error _ -> counter t "engine-failed" | Ok _ -> ()

let expired_error req now =
  Sod2_error.Error
    (Sod2_error.make ~key:req.r_key Sod2_error.Deadline_expired
       (Printf.sprintf "deadline exceeded %.0f us before execution"
          ((now -. Option.get req.r_deadline) *. 1e6)))

(* One claimed request: shed it if its deadline already passed (checked
   at dequeue and again before each micro-batch follower runs), else
   execute it. *)
let process t ~w ~arena ~backend (req, batched) =
  let now = Unix.gettimeofday () in
  match req.r_deadline with
  | Some d when now > d ->
    Mutex.lock t.lock;
    ignore (settle_locked t req (Failed (expired_error req now)) V_expired);
    Mutex.unlock t.lock;
    counter t "engine-expired"
  | _ -> execute t ~w ~arena ~backend req ~batched

(* Claim the head request plus up to [max_batch - 1] queued requests with
   the same plan key.  Non-matching requests keep their queue order.
   Caller holds the lock. *)
let claim_batch t =
  let first = Queue.pop t.queue in
  if t.max_batch <= 1 then [ first, false ]
  else begin
    let taken = ref 1 in
    let followers = ref [] in
    let rest = Queue.create () in
    while not (Queue.is_empty t.queue) do
      let r = Queue.pop t.queue in
      if !taken < t.max_batch && r.r_key = first.r_key then begin
        incr taken;
        followers := r :: !followers
      end
      else Queue.push r rest
    done;
    Queue.transfer rest t.queue;
    (first, false) :: List.rev_map (fun r -> r, true) !followers
  end

let worker_body t w =
  (* Per-worker resources are created {e inside} the worker domain so
     that a Parallel/Fused backend's domain pool is owned by the domain
     that calls into it ({!Domain_pool.run}'s ownership rule).  Pool
     width is divided across workers so K workers never oversubscribe
     the host. *)
  let arena = Arena.create () in
  let backend =
    match t.cfg.Executor.backend with
    | Backend.Naive -> None
    | k ->
      (* [live_versions] rather than the artifact's table: a respawned
         worker must pick up whatever the re-tuner last installed. *)
      let versions = Mutex.protect t.lock (fun () -> t.live_versions) in
      Some
        (Backend.create ~versions
           ~threads:(max 1 (Domain.recommended_domain_count () / t.nworkers))
           ~profile:t.compiled.Pipeline.profile.Profile.name k)
  in
  Mutex.protect t.lock (fun () -> t.backends.(w) <- backend);
  let release () =
    Mutex.protect t.lock (fun () -> t.backends.(w) <- None);
    Option.iter Backend.shutdown backend
  in
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue then
      (* stopping && drained: graceful exit *)
      Mutex.unlock t.lock
    else begin
      let batch = claim_batch t in
      t.inflight.(w) <- List.map fst batch;
      Condition.broadcast t.room;
      Mutex.unlock t.lock;
      List.iter (process t ~w ~arena ~backend) batch;
      Mutex.lock t.lock;
      t.inflight.(w) <- [];
      Mutex.unlock t.lock;
      loop ()
    end
  in
  (try loop () with e -> release (); raise e);
  release ()

(* Degraded-mode inline execution: no worker domains are left, so the
   calling domain runs the request synchronously through the guarded
   reference fallback and settles the ticket before returning. *)
let run_degraded_inline t req =
  let now = Unix.gettimeofday () in
  match req.r_deadline with
  | Some d when now > d ->
    Mutex.lock t.lock;
    ignore (settle_locked t req (Failed (expired_error req now)) V_expired);
    Mutex.unlock t.lock;
    counter t "engine-expired"
  | _ ->
    let outcome = try Ok (run_fallback t req) with e -> Error e in
    let settled = Unix.gettimeofday () in
    Mutex.lock t.lock;
    (match outcome with
    | Ok outputs ->
      let r =
        {
          outputs;
          latency_us = (settled -. req.r_submitted) *. 1e6;
          worker = -1;
          batched = false;
          degraded = true;
        }
      in
      ignore (settle_locked t req (Done r) V_completed);
      record_latency_locked t r.latency_us;
      t.degraded_runs <- t.degraded_runs + 1
    | Error e -> ignore (settle_locked t req (Failed e) V_failed));
    Mutex.unlock t.lock;
    counter t "engine-request";
    counter t "engine-degraded-run";
    match outcome with Error _ -> counter t "engine-failed" | Ok _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker supervision                                                  *)

let rec spawn_worker t w =
  Domain.spawn (fun () ->
      let born = Unix.gettimeofday () in
      try worker_body t w with e -> on_worker_crash t w ~born e)

(* Runs inside the dying worker domain.  Fails the crashed worker's
   in-flight requests with full context, then either respawns a fresh
   domain (fresh arena/backend) under the restart budget, or — when the
   budget is spent and this was the last live worker — flips the engine
   into degraded mode and drains the queue inline so nothing deadlocks. *)
and on_worker_crash t w ~born e =
  let now = Unix.gettimeofday () in
  let uptime_ms = (now -. born) *. 1e3 in
  Mutex.lock t.lock;
  let victims =
    List.filter (fun r -> match r.r_state with Pending -> true | _ -> false) t.inflight.(w)
  in
  t.inflight.(w) <- [];
  List.iter
    (fun req ->
      req.r_worker <- w;
      let err =
        Sod2_error.make ~worker:w ~key:req.r_key Sod2_error.Engine_error
          (Printf.sprintf "worker %d crashed after %.1f ms uptime: %s" w uptime_ms
             (Printexc.to_string e))
      in
      ignore (settle_locked t req (Failed (Sod2_error.Error err)) V_failed);
      breaker_failure_locked t req.r_key ~probe:(breaker_probing_locked t req.r_key) now)
    victims;
  Profile.Counters.add ~profile:t.compiled.Pipeline.profile.Profile.name
    ~kind:"engine-failed" (List.length victims);
  if (not t.stopping) && t.restarts_used < t.restart_budget then begin
    t.restarts_used <- t.restarts_used + 1;
    t.worker_restarts <- t.worker_restarts + 1;
    t.domains <- spawn_worker t w :: t.domains;
    Mutex.unlock t.lock;
    counter t "engine-worker-restart"
  end
  else begin
    t.live_workers <- t.live_workers - 1;
    let entering = t.live_workers <= 0 && not t.degraded_mode in
    let orphans =
      if entering then begin
        t.degraded_mode <- true;
        let q = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        Condition.broadcast t.room;
        q
      end
      else []
    in
    Mutex.unlock t.lock;
    if entering then counter t "engine-degraded";
    List.iter (run_degraded_inline t) orphans
  end

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)

let create ?(workers = 1) ?(max_batch = 4) ?(config = Executor.default_config)
    ?(queue_cap = max_int) ?(overload = Reject) ?(restart_budget = 3)
    ?(breaker_threshold = 5) ?(breaker_cooldown_us = 50_000.0) ?tune_cache
    ?(drift_threshold = 0.0) ?(drift_window = 32) ?retune compiled =
  let nworkers = max 1 workers in
  (* Warm start: resolve the cache against this engine's backend kind and
     the artifact's float dtype; a hit replaces the analytically tuned
     table before any worker spawns — zero tuning measurements at serving
     time. *)
  let compiled, warm_classes =
    match tune_cache with
    | None -> compiled, 0
    | Some cache ->
      let table, warm =
        Tune_cache.table_for cache
          ~backend:(Backend.kind_name config.Executor.backend)
          ~dtype:(Tensor.dtype_name compiled.Pipeline.fdtype)
          ~fallback:compiled.Pipeline.versions
      in
      if warm = 0 then compiled, 0 else Pipeline.with_versions compiled table, warm
  in
  if warm_classes > 0 then
    Profile.Counters.add ~profile:compiled.Pipeline.profile.Profile.name
      ~kind:"engine-tune-warm-start" warm_classes;
  let t =
    {
      compiled;
      cfg = config;
      nworkers;
      max_batch = max 1 max_batch;
      queue_cap = max 1 queue_cap;
      overload;
      restart_budget = max 0 restart_budget;
      breaker_threshold;
      breaker_cooldown_us;
      drift_threshold;
      drift_window = max 1 drift_window;
      retune_fn = retune;
      warm_classes;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      room = Condition.create ();
      queue = Queue.create ();
      breakers = Hashtbl.create 8;
      inflight = Array.make nworkers [];
      stopping = false;
      joined = false;
      domains = [];
      retune_domains = [];
      live_versions = compiled.Pipeline.versions;
      retune_inflight = false;
      backends = Array.make nworkers None;
      predicted = Hashtbl.create 8;
      observed = Hashtbl.create 8;
      outcomes = Hashtbl.create 8;
      live_workers = nworkers;
      degraded_mode = false;
      restarts_used = 0;
      submitted = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      shed = 0;
      expired = 0;
      batched = 0;
      degraded_runs = 0;
      worker_restarts = 0;
      breaker_trips = 0;
      drift_trips = 0;
      retunes = 0;
      queue_peak = 0;
      worker_runs = Array.make nworkers 0;
      busy_us = Array.make nworkers 0.0;
      hist = Array.make hist_buckets 0;
      hist_total = 0;
      total_latency_us = 0.0;
      max_latency_us = 0.0;
    }
  in
  t.domains <- List.init nworkers (fun w -> spawn_worker t w);
  t

let submit ?deadline_us t ~env ~inputs =
  let now = Unix.gettimeofday () in
  let req =
    {
      r_env = env;
      r_key = Pipeline.plan_key t.compiled env;
      r_inputs = inputs;
      r_submitted = now;
      r_deadline = Option.map (fun us -> now +. (us *. 1e-6)) deadline_us;
      r_worker = -1;
      r_state = Pending;
    }
  in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    Sod2_error.fail ~key:req.r_key Sod2_error.Engine_error
      "submit after shutdown: the engine is drained and its workers have exited"
  end;
  t.submitted <- t.submitted + 1;
  (* [reject] must be called with the lock held; it raises. *)
  let reject cls msg =
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.lock;
    counter t "engine-rejected";
    Sod2_error.fail ~key:req.r_key cls msg
  in
  if t.degraded_mode then begin
    Mutex.unlock t.lock;
    run_degraded_inline t req;
    req
  end
  else begin
    (match t.overload with
    | _ when Queue.length t.queue < t.queue_cap -> ()
    | Reject ->
      reject Sod2_error.Overload
        (Printf.sprintf "queue full (cap %d); request rejected" t.queue_cap)
    | Shed_oldest ->
      let victim = Queue.pop t.queue in
      let err =
        Sod2_error.make ~key:victim.r_key Sod2_error.Overload
          (Printf.sprintf "shed from a full queue (cap %d) to admit a newer request"
             t.queue_cap)
      in
      ignore (settle_locked t victim (Failed (Sod2_error.Error err)) V_shed);
      counter t "engine-shed"
    | Block timeout_us ->
      let give_up = Option.map (fun us -> now +. (us *. 1e-6)) timeout_us in
      let rec wait () =
        if Queue.length t.queue < t.queue_cap || t.stopping || t.degraded_mode then ()
        else
          match give_up with
          | None ->
            Condition.wait t.room t.lock;
            wait ()
          | Some g ->
            if Unix.gettimeofday () >= g then
              reject Sod2_error.Overload
                (Printf.sprintf "queue full (cap %d); blocked past the %.0f us timeout"
                   t.queue_cap
                   (Option.value ~default:0.0 timeout_us))
            else begin
              (* Stdlib [Condition] has no timed wait; poll at 200 µs. *)
              Mutex.unlock t.lock;
              Unix.sleepf 2e-4;
              Mutex.lock t.lock;
              wait ()
            end
      in
      wait ();
      if t.stopping then
        reject Sod2_error.Engine_error "engine shut down while blocked on a full queue");
    if t.degraded_mode then begin
      (* The last worker died while this submit was blocked. *)
      Mutex.unlock t.lock;
      run_degraded_inline t req;
      req
    end
    else begin
      Queue.push req t.queue;
      let depth = Queue.length t.queue in
      if depth > t.queue_peak then t.queue_peak <- depth;
      Condition.signal t.work;
      Mutex.unlock t.lock;
      req
    end
  end

let await t (req : ticket) =
  Mutex.lock t.lock;
  while (match req.r_state with Pending -> true | _ -> false) do
    Condition.wait t.finished t.lock
  done;
  let st = req.r_state in
  (* Single-redeem: drop the result (and its output tensors) so a
     long-lived engine does not retain every response ever served. *)
  (match st with Done _ -> req.r_state <- Redeemed | _ -> ());
  Mutex.unlock t.lock;
  match st with
  | Done r -> r
  | Failed (Sod2_error.Error _ as e) -> raise e
  | Failed e ->
    Sod2_error.fail
      ?worker:(if req.r_worker >= 0 then Some req.r_worker else None)
      ~key:req.r_key Sod2_error.Engine_error
      ("request failed: " ^ Printexc.to_string e)
  | Redeemed ->
    Sod2_error.fail ~key:req.r_key Sod2_error.Engine_error
      "ticket already redeemed: results are reclaimed after the first await"
  | Pending -> assert false

let infer ?deadline_us t ~env ~inputs = await t (submit ?deadline_us t ~env ~inputs)

let stats t =
  (* Variant-keyed plan-cache entries ("<binding>|v=<outcome>") must not
     inflate the per-model cardinality the serve report shows: count
     distinct base (binding) keys, and report the variant-qualified
     entries separately. *)
  let cache_keys = Pipeline.plan_cache_keys t.compiled in
  let bases = Hashtbl.create 8 in
  let nvariants = ref 0 in
  List.iter
    (fun k ->
      let base =
        match String.index_opt k '|' with
        | Some i ->
          incr nvariants;
          String.sub k 0 i
        | None -> k
      in
      Hashtbl.replace bases base ())
    cache_keys;
  Mutex.protect t.lock (fun () ->
      {
        workers = t.nworkers;
        live_workers = max 0 t.live_workers;
        degraded = t.degraded_mode;
        submitted = t.submitted;
        completed = t.completed;
        failed = t.failed;
        rejected = t.rejected;
        shed = t.shed;
        expired = t.expired;
        batched = t.batched;
        degraded_runs = t.degraded_runs;
        worker_restarts = t.worker_restarts;
        breaker_open = t.breaker_trips;
        queue_depth = Queue.length t.queue;
        queue_peak = t.queue_peak;
        worker_runs = Array.copy t.worker_runs;
        busy_us = Array.copy t.busy_us;
        total_latency_us = t.total_latency_us;
        max_latency_us = t.max_latency_us;
        p50_latency_us = percentile_locked t 0.50;
        p95_latency_us = percentile_locked t 0.95;
        p99_latency_us = percentile_locked t 0.99;
        warm_classes = t.warm_classes;
        drift_trips = t.drift_trips;
        retunes = t.retunes;
        plan_keys = Hashtbl.length bases;
        plan_variants = !nvariants;
      })

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Condition.broadcast t.room;
  let join_here = not t.joined in
  t.joined <- true;
  let domains = t.domains in
  let retuners = t.retune_domains in
  Mutex.unlock t.lock;
  (* Re-tune spawns check [stopping] under the lock before appending, so
     this snapshot is complete. *)
  if join_here then begin
    List.iter Domain.join domains;
    List.iter Domain.join retuners
  end

(* ------------------------------------------------------------------ *)
(* One-shot arena execution (the former Arena_exec body)               *)

type arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;
  arena_resident : int;
}

let run_arena ?backend ?arena (c : Pipeline.compiled) ~env ~inputs =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let trace, outputs =
    Executor.run_real ?backend ~check_env:env
      ~memory:(Executor.Arena { arena; env })
      c ~inputs
  in
  {
    outputs;
    arena_bytes = trace.Executor.arena_bytes;
    arena_resident = trace.Executor.arena_resident;
  }
