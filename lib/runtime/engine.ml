type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  latency_us : float;
  worker : int;
  batched : bool;
}

type state =
  | Pending
  | Done of result
  | Failed of exn

type request = {
  r_env : Env.t;
  r_key : string;  (** {!Pipeline.plan_key} of [r_env] — micro-batch key *)
  r_inputs : (Graph.tensor_id * Tensor.t) list;
  r_submitted : float;  (** [Unix.gettimeofday] at submit *)
  mutable r_state : state;
}

type ticket = request

type stats = {
  workers : int;
  submitted : int;
  completed : int;
  failed : int;
  batched : int;
  queue_depth : int;
  queue_peak : int;
  worker_runs : int array;
  busy_us : float array;
  total_latency_us : float;
  max_latency_us : float;
}

type t = {
  compiled : Pipeline.compiled;
  cfg : Executor.config;
  nworkers : int;
  max_batch : int;
  lock : Mutex.t;
  work : Condition.t;  (** signaled on submit and on shutdown *)
  finished : Condition.t;  (** broadcast whenever any request settles *)
  queue : request Queue.t;
  mutable stopping : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
  (* Stats below are guarded by [lock]. *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable batched : int;
  mutable queue_peak : int;
  worker_runs : int array;
  busy_us : float array;
  mutable total_latency_us : float;
  mutable max_latency_us : float;
}

let config t = t.cfg

let counter t kind =
  Profile.Counters.record ~profile:t.compiled.Pipeline.profile.Profile.name ~kind

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

(* Execute one request on worker [w]'s private resources.  The engine
   lock is NOT held here — only the settle step takes it. *)
let execute t ~w ~arena ~backend req ~batched =
  let started = Unix.gettimeofday () in
  let outcome =
    try
      let outputs =
        if t.cfg.Executor.guarded then
          let report =
            Guarded_exec.run
              ?arena:(if t.cfg.Executor.memory = Executor.Mem_arena then Some arena
                      else None)
              ?backend t.compiled ~env:req.r_env ~inputs:req.r_inputs
          in
          report.Guarded_exec.outputs
        else
          let memory =
            match t.cfg.Executor.memory with
            | Executor.Mem_malloc -> Executor.Malloc
            | Executor.Mem_arena -> Executor.Arena { arena; env = req.r_env }
          in
          snd
            (Executor.run_real ~control:t.cfg.Executor.control ?backend ~memory
               t.compiled ~inputs:req.r_inputs)
      in
      let now = Unix.gettimeofday () in
      Ok
        ( {
            outputs;
            latency_us = (now -. req.r_submitted) *. 1e6;
            worker = w;
            batched;
          },
          (now -. started) *. 1e6 )
    with e -> Error (e, (Unix.gettimeofday () -. started) *. 1e6)
  in
  Mutex.lock t.lock;
  t.worker_runs.(w) <- t.worker_runs.(w) + 1;
  (match outcome with
  | Ok (r, busy) ->
    req.r_state <- Done r;
    t.completed <- t.completed + 1;
    t.busy_us.(w) <- t.busy_us.(w) +. busy;
    t.total_latency_us <- t.total_latency_us +. r.latency_us;
    if r.latency_us > t.max_latency_us then t.max_latency_us <- r.latency_us;
    if batched then t.batched <- t.batched + 1
  | Error (e, busy) ->
    req.r_state <- Failed e;
    t.failed <- t.failed + 1;
    t.busy_us.(w) <- t.busy_us.(w) +. busy);
  Condition.broadcast t.finished;
  Mutex.unlock t.lock;
  counter t "engine-request";
  if batched then counter t "engine-batched";
  match outcome with Error _ -> counter t "engine-failed" | Ok _ -> ()

(* Claim the head request plus up to [max_batch - 1] queued requests with
   the same plan key.  Non-matching requests keep their queue order.
   Caller holds the lock. *)
let claim_batch t =
  let first = Queue.pop t.queue in
  if t.max_batch <= 1 then [ first, false ]
  else begin
    let taken = ref 1 in
    let followers = ref [] in
    let rest = Queue.create () in
    while not (Queue.is_empty t.queue) do
      let r = Queue.pop t.queue in
      if !taken < t.max_batch && r.r_key = first.r_key then begin
        incr taken;
        followers := r :: !followers
      end
      else Queue.push r rest
    done;
    Queue.transfer rest t.queue;
    (first, false) :: List.rev_map (fun r -> r, true) !followers
  end

let worker_loop t w =
  (* Per-worker resources are created {e inside} the worker domain so
     that a Parallel/Fused backend's domain pool is owned by the domain
     that calls into it ({!Domain_pool.run}'s ownership rule).  Pool
     width is divided across workers so K workers never oversubscribe
     the host. *)
  let arena = Arena.create () in
  let backend =
    match t.cfg.Executor.backend with
    | Backend.Naive -> None
    | k ->
      Some
        (Backend.create ~versions:t.compiled.Pipeline.versions
           ~threads:(max 1 (Domain.recommended_domain_count () / t.nworkers))
           ~profile:t.compiled.Pipeline.profile.Profile.name k)
  in
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping && drained: graceful exit *)
      Mutex.unlock t.lock;
      Option.iter Backend.shutdown backend
    end
    else begin
      let batch = claim_batch t in
      Mutex.unlock t.lock;
      List.iter (fun (req, batched) -> execute t ~w ~arena ~backend req ~batched) batch;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)

let create ?(workers = 1) ?(max_batch = 4) ?(config = Executor.default_config) compiled =
  let nworkers = max 1 workers in
  let t =
    {
      compiled;
      cfg = config;
      nworkers;
      max_batch = max 1 max_batch;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      joined = false;
      domains = [];
      submitted = 0;
      completed = 0;
      failed = 0;
      batched = 0;
      queue_peak = 0;
      worker_runs = Array.make nworkers 0;
      busy_us = Array.make nworkers 0.0;
      total_latency_us = 0.0;
      max_latency_us = 0.0;
    }
  in
  t.domains <- List.init nworkers (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

let submit t ~env ~inputs =
  let req =
    {
      r_env = env;
      r_key = Pipeline.plan_key t.compiled env;
      r_inputs = inputs;
      r_submitted = Unix.gettimeofday ();
      r_state = Pending;
    }
  in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Engine.submit: engine is shut down"
  end;
  Queue.push req t.queue;
  t.submitted <- t.submitted + 1;
  let depth = Queue.length t.queue in
  if depth > t.queue_peak then t.queue_peak <- depth;
  Condition.signal t.work;
  Mutex.unlock t.lock;
  req

let await t (req : ticket) =
  Mutex.lock t.lock;
  while (match req.r_state with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait t.finished t.lock
  done;
  let st = req.r_state in
  Mutex.unlock t.lock;
  match st with
  | Done r -> r
  | Failed e -> raise e
  | Pending -> assert false

let infer t ~env ~inputs = await t (submit t ~env ~inputs)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        workers = t.nworkers;
        submitted = t.submitted;
        completed = t.completed;
        failed = t.failed;
        batched = t.batched;
        queue_depth = Queue.length t.queue;
        queue_peak = t.queue_peak;
        worker_runs = Array.copy t.worker_runs;
        busy_us = Array.copy t.busy_us;
        total_latency_us = t.total_latency_us;
        max_latency_us = t.max_latency_us;
      })

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  let join_here = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join_here then List.iter Domain.join t.domains

(* ------------------------------------------------------------------ *)
(* One-shot arena execution (the former Arena_exec body)               *)

type arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;
  arena_resident : int;
}

let run_arena ?backend ?arena (c : Pipeline.compiled) ~env ~inputs =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let trace, outputs =
    Executor.run_real ?backend ~check_env:env
      ~memory:(Executor.Arena { arena; env })
      c ~inputs
  in
  {
    outputs;
    arena_bytes = trace.Executor.arena_bytes;
    arena_resident = trace.Executor.arena_resident;
  }
