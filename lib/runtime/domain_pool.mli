(** Persistent worker pool over OCaml 5 domains.

    Spawning a domain costs far more than one kernel invocation, so the
    pool keeps [n - 1] worker domains parked on a condition variable and
    hands them one data-parallel job at a time; the calling domain is the
    n-th participant.  Tasks are distributed by an atomic work-stealing
    cursor, so uneven tile costs balance automatically.  Completion is
    awaited by blocking, never spinning — on a single-core host the pool
    degrades to sequential execution instead of starving itself.

    One job runs at a time; [run] must only be called from the domain that
    owns the pool (the runtime's orchestration thread), never from inside
    a running job. *)

type t

val create : int -> t
(** [create n] — a pool of [n] participants, clamped to
    [Domain.recommended_domain_count ()] and at least 1 ([n - 1] domains
    are actually spawned). *)

val size : t -> int
(** Participants, including the calling domain. *)

val run : t -> int -> (int -> unit) -> unit
(** [run t count body] evaluates [body 0 .. body (count - 1)], distributed
    over the participants; returns when all are done.  The first exception
    raised by any task is re-raised in the caller (remaining tasks still
    run).  Runs inline when the pool has a single participant. *)

val par : t -> Blocked.par
(** The pool as a {!Blocked.par} runner for the blocked kernels. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  The pool must be idle. *)

val for_profile : Profile.t -> t
(** Pool sized from the device profile's core count (clamped to the
    host). *)
