(** Reference kernels: execute one operator node on concrete tensors.

    This is the interpreter the [Real] execution mode uses; every operator
    of the IR has a kernel here with ONNX semantics, built on the
    {!Sod2_tensor} primitives.  Control-flow operators ([Switch],
    [Combine]) are {e not} handled here — the executor routes them. *)

val run :
  ?backend:Backend.t -> ?cls:Multi_version.shape_class -> Op.t -> Tensor.t list ->
  Tensor.t list
(** [run op inputs] executes the operator.  Raises [Sod2_error.Error]:
    class [Arity_mismatch] on arity violations, class [Unsupported] for the
    two operators that cannot be interpreted without sub-graph support
    ([If], [Loop]) and for control flow, which the executor routes.  The
    tensor primitives may still raise [Invalid_argument] on shape
    violations inside an operator.

    Without [backend] every operator runs the naive reference kernel
    (bit-exact, the fallback/golden path).  With one, the heavy operators
    (MatMul, Gemm, Conv, Conv1d) and large elementwise maps dispatch to
    the blocked/parallel variants; [cls] pins the GEMM shape class when
    the caller resolved it at compile time. *)
