(** Reference kernels: execute one operator node on concrete tensors.

    This is the interpreter the [Real] execution mode uses; every operator
    of the IR has a kernel here with ONNX semantics, built on the
    {!Sod2_tensor} primitives.  Control-flow operators ([Switch],
    [Combine]) are {e not} handled here — the executor routes them. *)

val run :
  ?backend:Backend.t -> ?cls:Multi_version.shape_class -> Op.t -> Tensor.t list ->
  Tensor.t list
(** [run op inputs] executes the operator.  Raises [Sod2_error.Error]:
    class [Arity_mismatch] on arity violations, class [Unsupported] for the
    two operators that cannot be interpreted without sub-graph support
    ([If], [Loop]) and for control flow, which the executor routes.  The
    tensor primitives may still raise [Invalid_argument] on shape
    violations inside an operator.

    Without [backend] every operator runs the naive reference kernel
    (bit-exact, the fallback/golden path).  With one, the heavy operators
    (MatMul, Gemm, Conv, Conv1d) and large elementwise maps dispatch to
    the blocked/parallel variants; [cls] pins the GEMM shape class when
    the caller resolved it at compile time. *)

val run_into :
  ?backend:Backend.t -> ?cls:Multi_version.shape_class -> Op.t ->
  Tensor.view list -> c:Tensor.fbuf -> co:int -> cap:int -> int list option
(** Destination-passing execution for the arena runtime: evaluate [op]
    over view inputs, writing the single output into [c] at element offset
    [co], and return its dims — but only when the operator has a
    destination-passing kernel {e and} the result occupies exactly [cap]
    elements (the planned slot's capacity).  [None] means nothing was
    written and the caller must run the boxed {!run} path instead.

    Covered operators: Unary, Binary (broadcasting), Clip, BatchNorm,
    MatMul and Conv — the ops that dominate steady-state inference
    traffic.  Everything else (views, reductions, Gemm's transpose
    scratch, I64 semantics) stays on the boxed path by design. *)
