type mode =
  | Real
  | Dry

type control =
  | Selected_only
  | All_paths

type group_exec = {
  step : int;
  gid : int;
  ops : (Op.t * int list list * int list list) list;
  external_bytes : int;
  internal_bytes : int;
  gemm : (int * int * int) option;
}

type tensor_event = {
  te_tid : Graph.tensor_id;
  te_bytes : int;
  te_alloc : int;
  te_free : int;
}

type trace = {
  steps : group_exec list;
  events : tensor_event list;
  out_dims : (Graph.tensor_id * int list) list;
  nodes_executed : int;
  arena_bytes : int;
  arena_resident : int;
  gate_outcomes : (Graph.tensor_id * int) list;
      (** branch taken per predicate tensor, in gate order *)
}

type memory =
  | Malloc
  | Arena of { arena : Arena.t; env : Env.t }

type mem_kind =
  | Mem_malloc
  | Mem_arena

type config = {
  backend : Backend.kind;
  memory : mem_kind;
  guarded : bool;
  control : control;
  quant : bool;
  compile : Compile_opts.t;
}

let default_config =
  {
    backend = Backend.Naive;
    memory = Mem_malloc;
    guarded = false;
    control = Selected_only;
    quant = false;
    compile = Compile_opts.default;
  }

(* "<backend>[,arena][,guarded][,all-paths][,int8][,<compile token>…]" —
   the CLI's --exec syntax.  Modifiers the executor does not recognize are
   offered to [Compile_opts.parse_token], so one spec can carry both sides
   of the surface ("fused,arena,variants=8"). *)
let config_of_string s =
  match String.split_on_char ',' (String.lowercase_ascii (String.trim s)) with
  | [] | [ "" ] -> Error "empty exec spec"
  | kind :: mods -> (
    match Backend.kind_of_string kind with
    | None ->
      Error
        (Printf.sprintf "unknown backend %S (expected naive|blocked|parallel|fused)" kind)
    | Some backend ->
      List.fold_left
        (fun acc m ->
          Result.bind acc (fun cfg ->
              match String.trim m with
              | "arena" -> Ok { cfg with memory = Mem_arena }
              | "malloc" -> Ok { cfg with memory = Mem_malloc }
              | "guarded" -> Ok { cfg with guarded = true }
              | "all-paths" -> Ok { cfg with control = All_paths }
              | "int8" -> Ok { cfg with quant = true }
              | m -> (
                match Compile_opts.parse_token cfg.compile m with
                | Ok compile -> Ok { cfg with compile }
                | Error _ ->
                  Error
                    (Printf.sprintf
                       "unknown exec modifier %S (expected \
                        arena|malloc|guarded|all-paths|int8, or a compile \
                        token: f32|f64|nofuse|sym=N|variants=N|aot=VEC)" m))))
        (Ok { default_config with backend })
        mods)

let config_to_string cfg =
  String.concat ","
    (Backend.kind_name cfg.backend
     :: List.filter_map Fun.id
          [
            (if cfg.memory = Mem_arena then Some "arena" else None);
            (if cfg.guarded then Some "guarded" else None);
            (if cfg.control = All_paths then Some "all-paths" else None);
            (if cfg.quant then Some "int8" else None);
          ]
     @ Compile_opts.to_tokens cfg.compile)

(* The most conservative execution of a config: drop the suspect
   specialized backend, keep the control policy, and run guarded so plan
   trouble demotes to the reference sweep instead of raising.  Quantized
   dispatch is dropped with it — degraded mode answers in bit-exact float
   semantics.  The engine routes breaker-open plan keys and degraded-mode
   requests through this. *)
let degraded cfg =
  { cfg with backend = Backend.Naive; memory = Mem_malloc; guarded = true; quant = false }

exception Unresolved of string

exception Variant_mispredict of int * int * int
(** [(gate, assumed, got)] — a variant run's per-gate verification found
    the computed predicate disagreeing with the plan's assumed branch. *)

(* Runtime view of an instantiated memory plan: per-tensor slots (element
   offset and capacity) over one grow-only buffer, plus which tensors
   currently live in it.  Built per inference from the binding-cached
   plan; the buffer is shared and persists across inferences. *)
type arena_rt = {
  ar_buf : Tensor.fbuf;
  ar_slot : (int * int) option array;  (* tid -> (elem offset, capacity) *)
  ar_loc : bool array;  (* tid's live value is in the arena *)
  mutable ar_resident : int;  (* tensors dest-stored this inference *)
  ar_bytes : int;
}

type state = {
  dims : int list option array;
  ivals : int list option array;
  avail : bool array;
  tensors : Tensor.t option array;
}

(* Byte size of a tensor extent.  [dtype] defaults to F32; pass the real
   dtype — a hardcoded 4-byte element here once made every F64/I64 figure
   a lie by half. *)
let bytes_of_dims ?(dtype = Tensor.F32) dims =
  Tensor.bytes_per_elem dtype * List.fold_left (fun a d -> a * max 1 d) 1 dims

let init_state (c : Pipeline.compiled) ~keep_tensors =
  let g = c.graph in
  let n = Graph.tensor_count g in
  let st =
    {
      dims = Array.make n None;
      ivals = Array.make n None;
      avail = Array.make n false;
      tensors = Array.make n None;
    }
  in
  for tid = 0 to n - 1 do
    match (Graph.tensor g tid).kind with
    | Graph.Const t ->
      st.dims.(tid) <- Some (Tensor.dims t);
      st.avail.(tid) <- true;
      if keep_tensors then st.tensors.(tid) <- Some t;
      if Tensor.dtype t = Tensor.I64 && Tensor.numel t <= Value_info.max_tracked_elements
      then st.ivals.(tid) <- Some (Tensor.to_int_list t)
    | Graph.Input _ | Graph.Activation -> ()
  done;
  st

(* Membership structures shared by both modes. *)
type ctx = {
  c : Pipeline.compiled;
  internal : (Graph.tensor_id, unit) Hashtbl.t;
  out_tids : Graph.tensor_id list;
}

let make_ctx (c : Pipeline.compiled) =
  let internal = Hashtbl.create 64 in
  Array.iter
    (fun (grp : Fusion.group) ->
      List.iter (fun tid -> Hashtbl.replace internal tid ()) grp.internal)
    c.fusion_plan.groups;
  { c; internal; out_tids = Graph.outputs c.graph }

let is_internal ctx tid = Hashtbl.mem ctx.internal tid

let switch_pred_tid (nd : Graph.node) =
  match nd.inputs with
  | [ _; pred ] -> pred
  | _ ->
    Sod2_error.fail ~op:"Switch" ~node:nd.nname Sod2_error.Arity_mismatch
      "Executor: Switch expects [data; pred]"

let combine_pred_tid (nd : Graph.node) =
  match List.rev nd.inputs with
  | pred :: _ -> pred
  | [] ->
    Sod2_error.fail ~op:"Combine" ~node:nd.nname Sod2_error.Arity_mismatch
      "Executor: Combine without inputs"

(* --- dry-mode node execution ------------------------------------- *)

let value_info_of st g tid : Value_info.t =
  match st.ivals.(tid) with
  | Some ints -> Value_info.of_ints ints
  | None -> (
    ignore g;
    if st.avail.(tid) then Lattice.Nac else Value_info.undef)

let eval_value_info (v : Value_info.t) : int list option =
  match Value_info.as_exprs v with
  | Some exprs ->
    let ints = Array.to_list exprs |> List.map (Expr.eval (fun _ -> None)) in
    if List.for_all Option.is_some ints then Some (List.map Option.get ints) else None
  | None -> None

let dry_forward ctx st (nd : Graph.node) =
  let g = ctx.c.graph in
  let in_dims = List.map (fun tid -> Option.get st.dims.(tid)) nd.inputs in
  match nd.op with
  | Op.NonZero ->
    let d = List.hd in_dims in
    let r = List.length d in
    let count = List.fold_left (fun a x -> a * max 1 x) 1 d / 2 in
    [ [ max r 1; max 1 count ] ], [ None ]
  | Op.NonMaxSuppression { max_out; _ } ->
    let n = match List.hd in_dims with n :: _ -> n | [] -> 0 in
    [ [ min max_out (max 1 (n / 4)); 3 ] ], [ None ]
  | Op.If | Op.Loop -> raise (Unresolved "If/Loop have no dry interpretation")
  | _ ->
    let io =
      {
        Shape_fn.in_shapes =
          Array.of_list (List.map (fun d -> Shape.of_ints d) in_dims);
        in_values =
          Array.of_list (List.map (fun tid -> value_info_of st g tid) nd.inputs);
      }
    in
    let out_shapes, out_values = Shape_fn.forward nd.op io in
    let dims =
      Array.to_list out_shapes
      |> List.map (fun s ->
             match Shape.as_ints s with
             | Some d -> d
             | None ->
               raise
                 (Unresolved
                    (Printf.sprintf "node %s: output shape %s not concrete" nd.nname
                       (Shape.to_string s))))
    in
    let vals = Array.to_list out_values |> List.map eval_value_info in
    dims, vals

(* --- shared driver ------------------------------------------------ *)

let run_engine ~mode ~control ~gate ?(verify = fun _ _ -> ()) ?backend ?arena
    ?(quant = false) ?variant ctx st =
  let c = ctx.c in
  let g = c.graph in
  let counter kind =
    Profile.Counters.record ~profile:c.Pipeline.profile.Profile.name ~kind
  in
  (* Boxed tensor for [tid].  An arena-resident value is copied out on its
     first boxed use and memoized — the only intermediate-tensor copy the
     arena mode ever performs (counted, so tests can assert zero on
     dest-capable graphs). *)
  let fetch_boxed tid =
    match st.tensors.(tid) with
    | Some t -> t
    | None -> (
      match arena with
      | Some ar when ar.ar_loc.(tid) ->
        let off, _ = Option.get ar.ar_slot.(tid) in
        let dims = Option.get st.dims.(tid) in
        (* Always a copy, never a shared window: the slot's storage is
           reused by later tensors once this one's lifetime ends. *)
        let t = Tensor.copy_view (Tensor.sub_view ~buf:ar.ar_buf ~off ~dims) in
        counter "arena-copy-out";
        st.tensors.(tid) <- Some t;
        t
      | _ -> Option.get st.tensors.(tid))
  in
  (* Kernel-facing view of [tid]'s value: its arena slot when resident
     (zero-copy), else a whole-tensor view of the boxed F32 tensor. *)
  let view_of tid =
    match arena with
    | Some ar when ar.ar_loc.(tid) ->
      let off, _ = Option.get ar.ar_slot.(tid) in
      Some (Tensor.sub_view ~buf:ar.ar_buf ~off ~dims:(Option.get st.dims.(tid)))
    | _ -> (
      match st.tensors.(tid) with
      | Some t when Tensor.is_float_dtype (Tensor.dtype t) -> Some (Tensor.view_f t)
      | _ -> None)
  in
  (* Aliasing (Switch/Combine) must not alias an arena slot: the alias
     outlives the slot's planned lifetime.  Box the value first. *)
  let materialize_for_alias tid =
    match mode, arena with
    | Real, Some ar when ar.ar_loc.(tid) && st.tensors.(tid) = None ->
      ignore (fetch_boxed tid)
    | _ -> ()
  in
  (* Variant plans resolved the gate's routing at plan time and kept the
     source slot live across the alias's consumers (Mem_plan [?alias]),
     so the alias can point at the source's arena slot directly — no
     boxed copy out of the arena per gate.  Returns false when the value
     is not slot-resident (boxed input, malloc mode, already copied out),
     in which case the caller boxes as before. *)
  let alias_slot dst src =
    match arena, variant with
    | Some ar, Some v
      when v.Pipeline.v_alias.(dst) >= 0
           && ar.ar_loc.(src)
           && st.tensors.(src) = None ->
      ar.ar_slot.(dst) <- ar.ar_slot.(src);
      ar.ar_loc.(dst) <- true;
      true
    | _ -> false
  in
  (* Element size from the materialized tensor when there is one (Real
     mode); otherwise the compiled artifact's float dtype — the kind
     arena-resident values actually occupy — so Dry and arena traffic
     figures use the same element size the plan reserved. *)
  let tensor_bytes tid dims =
    let dtype =
      match st.tensors.(tid) with
      | Some t -> Tensor.dtype t
      | None -> c.Pipeline.fdtype
    in
    bytes_of_dims ~dtype dims
  in
  let step_of_group = Hashtbl.create 64 in
  let steps = ref [] in
  let produced = ref [] in
  (* (tid, bytes, step) *)
  let nodes_executed = ref 0 in
  let step_counter = ref 0 in
  let branch_of_pred tid =
    match mode with
    | Dry -> gate tid
    | Real -> (
      let boxed =
        match st.tensors.(tid) with
        | Some _ as t -> t
        | None -> (
          match arena with
          | Some ar when ar.ar_loc.(tid) -> Some (fetch_boxed tid)
          | _ -> None)
      in
      match boxed with
      | Some t -> (
        match Tensor.to_int_list (Tensor.cast t Tensor.I64) with
        | b :: _ -> b
        | [] ->
          Sod2_error.failf ~tensor:tid Sod2_error.Shape_mismatch
            "Executor: control-flow predicate tensor t%d is empty" tid)
      | None -> gate tid)
  in
  let gate_obs = ref [] in
  let exec_switch (nd : Graph.node) branches =
    let data = List.hd nd.inputs in
    let pred = switch_pred_tid nd in
    let b = max 0 (min (branches - 1) (branch_of_pred pred)) in
    if not (List.mem_assoc pred !gate_obs) then gate_obs := (pred, b) :: !gate_obs;
    (* Variant runs verify the plan's assumption once per gate, at the
       Switch — the only branch check left on the specialized path.  A
       disagreement aborts into the any-path fallback (predict-verify-
       fallback for data-dependent gates). *)
    (match variant with
    | Some v -> (
      match Control_region.gate_of_switch c.Pipeline.control nd.Graph.nid with
      | Some gid
        when gid < Array.length v.Pipeline.v_outcome
             && v.Pipeline.v_outcome.(gid) >= 0
             && v.Pipeline.v_outcome.(gid) <> b ->
        raise (Variant_mispredict (gid, v.Pipeline.v_outcome.(gid), b))
      | _ -> ())
    | None -> ());
    List.iteri
      (fun i tid ->
        let route = control = All_paths || i = b in
        if route then begin
          if not (alias_slot tid data) then materialize_for_alias data;
          st.dims.(tid) <- st.dims.(data);
          st.ivals.(tid) <- st.ivals.(data);
          st.tensors.(tid) <- st.tensors.(data);
          st.avail.(tid) <- true
        end)
      nd.outputs
  in
  let exec_combine (nd : Graph.node) branches =
    let pred = combine_pred_tid nd in
    let branch_tids = List.filteri (fun i _ -> i < branches) nd.inputs in
    let chosen =
      match control with
      | All_paths ->
        let b = max 0 (min (branches - 1) (branch_of_pred pred)) in
        List.nth_opt branch_tids b
      | Selected_only -> List.find_opt (fun tid -> st.avail.(tid)) branch_tids
    in
    match chosen with
    | Some src ->
      let dst = List.hd nd.outputs in
      if not (alias_slot dst src) then materialize_for_alias src;
      st.dims.(dst) <- st.dims.(src);
      st.ivals.(dst) <- st.ivals.(src);
      st.tensors.(dst) <- st.tensors.(src);
      st.avail.(dst) <- true;
      true
    | None -> false
  in
  let node_ready ~member_tids (nd : Graph.node) =
    (* Tensors produced by earlier members of the same group become
       available during group execution. *)
    let ok tid = st.avail.(tid) || List.mem tid member_tids in
    match nd.op with
    | Op.Combine { branches } ->
      ok (combine_pred_tid nd)
      && (match control with
         | Selected_only ->
           List.exists ok (List.filteri (fun i _ -> i < branches) nd.inputs)
         | All_paths -> true)
    | _ -> List.for_all ok nd.inputs
  in
  let cls_of (nd : Graph.node) =
    match backend with
    | None -> None
    | Some _ when nd.nid < Array.length ctx.c.Pipeline.kernel_classes ->
      ctx.c.Pipeline.kernel_classes.(nd.nid)
    | Some _ -> None
  in
  (* Graph outputs must outlive the arena (slots are recycled next
     inference), so their destination is a fresh boxed buffer rather than
     the slot — the kernel still reads its inputs as zero-copy slot views,
     which beats both a slot store followed by a boundary copy and a fully
     boxed run that copies every arena-resident input out first. *)
  let is_graph_out tid = List.mem tid ctx.out_tids in
  (* Destination-passing attempt: single-output node whose result has a
     planned slot, all inputs viewable as F32 windows, and the op has a
     [Kernels.run_into] kernel producing exactly the slot's capacity.
     Writes straight into the arena — no output allocation, no blit. *)
  let try_dest (nd : Graph.node) =
    match arena, nd.Graph.outputs with
    | Some ar, [ otid ] -> (
      match ar.ar_slot.(otid) with
      | Some (off, cap) -> (
        let rec views acc = function
          | [] -> Some (List.rev acc)
          | tid :: rest -> (
            match view_of tid with
            | Some v -> views (v :: acc) rest
            | None -> None)
        in
        match views [] nd.Graph.inputs with
        | Some vs ->
          if is_graph_out otid then (
            let buf = Tensor.fbuf_create (Tensor.fbuf_dtype ar.ar_buf) cap in
            Tensor.fbuf_fill buf 0 cap 0.0;
            match
              Kernels.run_into ?backend ?cls:(cls_of nd) nd.Graph.op vs ~c:buf
                ~co:0 ~cap
            with
            | Some dims ->
              let numel = List.fold_left ( * ) 1 dims in
              let t =
                if numel = cap then Tensor.of_fbuf dims buf
                else Tensor.copy_view (Tensor.sub_view ~buf ~off:0 ~dims)
              in
              st.tensors.(otid) <- Some t;
              st.dims.(otid) <- Some dims;
              st.avail.(otid) <- true;
              counter "arena-out-direct";
              true
            | None -> false)
          else (
            match
              Kernels.run_into ?backend ?cls:(cls_of nd) nd.Graph.op vs
                ~c:ar.ar_buf ~co:off ~cap
            with
            | Some dims ->
              ar.ar_loc.(otid) <- true;
              ar.ar_resident <- ar.ar_resident + 1;
              st.dims.(otid) <- Some dims;
              st.avail.(otid) <- true;
              counter "arena-dest-store";
              true
            | None -> false)
        | None -> false)
      | None -> false)
    | _ -> false
  in
  (* Int8 weight-quantized dispatch (dynamic-range): a node whose constant
     weight was quantized at compile runs the packed int8 kernel with the
     dequantization epilogue folded into the write-back.  The result is
     float, so it lands in the output's arena slot when the capacity
     matches (dest-passing, same as [try_dest]) or a fresh boxed buffer
     otherwise.  The activation is fetched boxed — calibration reads every
     element anyway.  Output dims are computed up front from the operand
     dims so the slot decision precedes the kernel; any shape the
     quantized kernels cannot take falls through to the float path. *)
  let quant_dispatch (nd : Graph.node) =
    if not (quant && mode = Real) then None
    else
      match backend with
      | None -> None
      | Some be -> (
        match nd.Graph.op, nd.Graph.inputs, nd.Graph.outputs with
        | Op.MatMul, [ x; w ], [ otid ] -> (
          match Pipeline.quant_weight c w, st.dims.(x) with
          | Some qt, Some [ m; k ] -> (
            match Tensor.dims qt.Quant.q with
            | [ k'; n ] when k = k' && k > 0 ->
              Some
                ( otid,
                  [ m; n ],
                  fun ~cbuf ~co ->
                    ignore
                      (Backend.matmul_q8_into ?cls:(cls_of nd) be (fetch_boxed x) qt
                         ~c:cbuf ~co) )
            | _ -> None)
          | _ -> None)
        | Op.Conv { stride; pads; dilation; groups }, x :: w :: rest, [ otid ] -> (
          let bias = match rest with [ b ] -> Some b | _ -> None in
          match Pipeline.quant_weight c w, st.dims.(x) with
          | Some qt, Some [ n; _; h; wd ] -> (
            match Tensor.dims qt.Quant.q with
            | [ m; _; kh; kw ] -> (
              try
                let sh, sw = stride and dh, dw_ = dilation in
                let pt, pl, pb, pr = pads in
                let oh =
                  Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt
                    ~pad_end:pb ~dilation:dh
                in
                let ow =
                  Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl
                    ~pad_end:pr ~dilation:dw_
                in
                Some
                  ( otid,
                    [ n; m; oh; ow ],
                    fun ~cbuf ~co ->
                      ignore
                        (Backend.conv2d_q8_into ?cls:(cls_of nd) be ~stride ~pad:pads
                           ~dilation ~groups (fetch_boxed x) qt
                           (Option.map fetch_boxed bias) ~c:cbuf ~co) )
              with Sod2_error.Error _ | Invalid_argument _ -> None)
            | _ -> None)
          | _ -> None)
        | _ -> None)
  in
  let try_quant (nd : Graph.node) =
    match quant_dispatch nd with
    | None -> false
    | Some (otid, dims, run) ->
      let numel = List.fold_left ( * ) 1 dims in
      (match arena with
      | Some ar
        when (match ar.ar_slot.(otid) with Some (_, cap) -> cap = numel | None -> false)
             && not (is_graph_out otid) ->
        let off, _ = Option.get ar.ar_slot.(otid) in
        run ~cbuf:ar.ar_buf ~co:off;
        ar.ar_loc.(otid) <- true;
        ar.ar_resident <- ar.ar_resident + 1;
        counter "arena-dest-store"
      | _ ->
        let fdt =
          match arena with
          | Some ar -> Tensor.fbuf_dtype ar.ar_buf
          | None -> c.Pipeline.fdtype
        in
        let buf = Tensor.fbuf_create fdt numel in
        run ~cbuf:buf ~co:0;
        st.tensors.(otid) <- Some (Tensor.of_fbuf dims buf));
      st.dims.(otid) <- Some dims;
      st.avail.(otid) <- true;
      counter "quant-kernel";
      true
  in
  let exec_plain (nd : Graph.node) =
    match mode with
    | Dry ->
      let dims, vals = dry_forward ctx st nd in
      List.iteri
        (fun i tid ->
          st.dims.(tid) <- Some (List.nth dims i);
          st.ivals.(tid) <- List.nth vals i;
          st.avail.(tid) <- true)
        nd.outputs
    | Real ->
      if (not (try_quant nd)) && not (try_dest nd) then begin
        let inputs = List.map fetch_boxed nd.inputs in
        let outs = Kernels.run ?backend ?cls:(cls_of nd) nd.op inputs in
        List.iteri
          (fun i tid ->
            let t = List.nth outs i in
            st.tensors.(tid) <- Some t;
            st.dims.(tid) <- Some (Tensor.dims t);
            if Tensor.dtype t = Tensor.I64
               && Tensor.numel t <= Value_info.max_tracked_elements
            then st.ivals.(tid) <- Some (Tensor.to_int_list t);
            st.avail.(tid) <- true)
          nd.outputs
      end
  in
  (* A variant executes its pruned order with no per-group readiness scan:
     every surviving group is statically known to run, and branch inputs
     were resolved at compile time.  The scan counter makes "zero per-node
     branch resolution in steady state" a testable claim. *)
  let order =
    match variant with
    | Some v -> v.Pipeline.v_order
    | None -> c.exec.Exec_plan.order
  in
  let templates =
    match variant with Some v -> v.Pipeline.v_fused | None -> c.Pipeline.fused
  in
  List.iter
    (fun gid ->
      let grp = c.fusion_plan.groups.(gid) in
      let members = List.map (Graph.node g) grp.members in
      let member_tids = List.concat_map (fun (nd : Graph.node) -> nd.Graph.outputs) members in
      let ready =
        match variant with
        | Some _ -> true
        | None ->
          counter "exec-ready-scan";
          List.for_all (node_ready ~member_tids) members
      in
      (* Combine fires when its selected branch arrived even though other
         branch inputs are missing; plain nodes need everything. *)
      if ready then begin
        (* A multi-member group first offers itself to the fused backend:
           one compiled kernel, internal tensors never materialized.  Any
           refusal (no template, shape not specializable, non-fused
           backend) falls through to the op-by-op loop below. *)
        (* Arena fused path: fetch the group's slot inputs as zero-copy
           views, resolve the specialized kernel through the backend cache,
           and drive its destination entry point straight into the terminal
           output's planned slot. *)
        let run_fused_arena be ar =
          match templates.(gid) with
          | None -> false
          | Some tpl -> (
            let n = Array.length tpl.Fused_compile.t_slots in
            let vs = Array.make n None in
            Array.iteri
              (fun i tid -> vs.(i) <- view_of tid)
              tpl.Fused_compile.t_slots;
            if Array.exists Option.is_none vs then false
            else
              let va = Array.map Option.get vs in
              let shapes =
                Array.to_list
                  (Array.map (fun v -> v.Tensor.vdims, Tensor.view_dtype v) va)
              in
              match Backend.fused_kernel be ~tpl c ~gid ~args:shapes with
              | None -> false
              | Some k ->
                let out = k.Fused_compile.k_out in
                let dims = List.assoc out k.Fused_compile.k_dims in
                let numel = List.fold_left ( * ) 1 dims in
                let par = Backend.par_of be in
                (match ar.ar_slot.(out) with
                | Some (off, cap) when cap = numel && not (is_graph_out out) ->
                  k.Fused_compile.k_run_into ~par va ~c:ar.ar_buf ~co:off;
                  ar.ar_loc.(out) <- true;
                  ar.ar_resident <- ar.ar_resident + 1;
                  counter "arena-dest-store"
                | _ ->
                  let buf = Tensor.fbuf_create (Tensor.fbuf_dtype ar.ar_buf) numel in
                  Tensor.fbuf_fill buf 0 numel 0.0;
                  k.Fused_compile.k_run_into ~par va ~c:buf ~co:0;
                  st.tensors.(out) <- Some (Tensor.of_fbuf dims buf);
                  counter "arena-out-direct");
                List.iter
                  (fun (tid, d) ->
                    st.dims.(tid) <- Some d;
                    st.avail.(tid) <- true)
                  k.Fused_compile.k_dims;
                true)
        in
        let fused_done =
          match mode, backend with
          (* Quantized members never execute fused: compile withheld the
             group's template (see [Fused_compile.plan ~quantized]), and this
             runtime guard keeps the invariant even for artifacts compiled
             without [~quant] paired with a quant-enabled config. *)
          | Real, Some be
            when List.length members > 1
                 && not (quant && List.exists (Pipeline.quant_node c) members) -> (
            (match arena with Some ar -> run_fused_arena be ar | None -> false)
            ||
            match Backend.fused_run be ?tpl:templates.(gid) c ~gid ~fetch:fetch_boxed with
            | Some fr ->
              List.iter
                (fun (tid, d) ->
                  st.dims.(tid) <- Some d;
                  st.avail.(tid) <- true)
                fr.Backend.fr_dims;
              st.tensors.(fr.Backend.fr_out) <- Some fr.Backend.fr_tensor;
              true
            | None -> false)
          | _ -> false
        in
        let executed_all =
          fused_done
          || List.for_all
               (fun nd ->
                 match nd.Graph.op with
                 | Op.Switch { branches } ->
                   exec_switch nd branches;
                   true
                 | Op.Combine { branches } -> exec_combine nd branches
                 | _ ->
                   exec_plain nd;
                   true)
               members
        in
        if executed_all then begin
          let step = !step_counter in
          incr step_counter;
          Hashtbl.replace step_of_group gid step;
          nodes_executed := !nodes_executed + List.length members;
          (* Fused-group boundary guard: hand every produced extent to the
             caller's verifier (no-op unless dims cross-checking is on). *)
          List.iter
            (fun (nd : Graph.node) ->
              List.iter
                (fun tid ->
                  match st.dims.(tid) with Some d -> verify tid d | None -> ())
                nd.Graph.outputs)
            members;
          (* Record extents, traffic and events. *)
          let ops =
            List.map
              (fun (nd : Graph.node) ->
                let ind = List.map (fun tid -> Option.value ~default:[] st.dims.(tid)) nd.inputs in
                let outd =
                  List.map (fun tid -> Option.value ~default:[] st.dims.(tid)) nd.outputs
                in
                nd.op, ind, outd)
              members
          in
          let external_inputs =
            List.concat_map (fun (nd : Graph.node) -> nd.Graph.inputs) members
            |> List.sort_uniq compare
            |> List.filter (fun tid -> not (List.mem tid member_tids))
          in
          let in_bytes =
            List.fold_left
              (fun acc tid ->
                match st.dims.(tid) with
                | Some d -> acc + tensor_bytes tid d
                | None -> acc)
              0 external_inputs
          in
          let out_bytes = ref 0 and internal_bytes = ref 0 in
          List.iter
            (fun (nd : Graph.node) ->
              (* Switch outputs alias their input; they cost no memory. *)
              if not (Op.is_control_flow nd.Graph.op) then
                List.iter
                  (fun tid ->
                    match st.dims.(tid) with
                    | Some d ->
                      let b = tensor_bytes tid d in
                      if is_internal ctx tid then internal_bytes := !internal_bytes + b
                      else begin
                        out_bytes := !out_bytes + b;
                        produced := (tid, b, step) :: !produced
                      end
                    | None -> ())
                  nd.Graph.outputs)
            members;
          let gemm =
            List.find_map
              (fun (op, ind, outd) ->
                Multi_version.gemm_dims_of_op op ~in_dims:ind ~out_dims:outd)
              ops
          in
          steps :=
            {
              step;
              gid;
              ops;
              external_bytes = in_bytes + !out_bytes;
              internal_bytes = !internal_bytes;
              gemm;
            }
            :: !steps
        end
      end)
    order;
  (* Lifetime events for materialized tensors. *)
  let last_step = max 0 (!step_counter - 1) in
  let events =
    List.rev_map
      (fun (tid, bytes, alloc) ->
        let free =
          if List.mem tid ctx.out_tids then last_step
          else
            List.fold_left
              (fun acc cnid ->
                match
                  Hashtbl.find_opt step_of_group c.fusion_plan.group_of.(cnid)
                with
                | Some s -> max acc s
                | None -> acc)
              alloc
              (Graph.consumers g tid)
        in
        { te_tid = tid; te_bytes = bytes; te_alloc = alloc; te_free = free })
      !produced
  in
  let out_dims =
    List.filter_map
      (fun tid ->
        match st.dims.(tid) with Some d -> Some (tid, d) | None -> None)
      ctx.out_tids
  in
  {
    steps = List.rev !steps;
    events;
    out_dims;
    nodes_executed = !nodes_executed;
    arena_bytes = (match arena with Some ar -> ar.ar_bytes | None -> 0);
    arena_resident = (match arena with Some ar -> ar.ar_resident | None -> 0);
    gate_outcomes = List.rev !gate_obs;
  }

let run_dry ?(control = Selected_only) ?(gate = fun _ -> 0) (c : Pipeline.compiled)
    ~input_dims =
  let ctx = make_ctx c in
  let st = init_state c ~keep_tensors:false in
  List.iter
    (fun (tid, dims) ->
      st.dims.(tid) <- Some dims;
      st.avail.(tid) <- true)
    input_dims;
  List.iter
    (fun tid ->
      if not st.avail.(tid) then
        raise (Unresolved (Printf.sprintf "graph input t%d has no concrete dims" tid)))
    (Graph.inputs c.graph);
  run_engine ~mode:Dry ~control ~gate ctx st

let run_real_opts ?(control = Selected_only) ?check_env ?backend ?(memory = Malloc)
    ?(quant = false) ?outcomes (c : Pipeline.compiled) ~inputs =
  let ctx = make_ctx c in
  let attempt variant =
  let st = init_state c ~keep_tensors:true in
  List.iter
    (fun (tid, t) ->
      st.tensors.(tid) <- Some t;
      st.dims.(tid) <- Some (Tensor.dims t);
      if Tensor.dtype t = Tensor.I64 && Tensor.numel t <= Value_info.max_tracked_elements
      then st.ivals.(tid) <- Some (Tensor.to_int_list t);
      st.avail.(tid) <- true)
    inputs;
  (* Arena mode: fetch the binding's instantiated plan (cached — affine
     evaluation only after the first inference per binding) and lay its
     slots over the grow-only buffer.  Ill-formed entries are dropped to
     malloc silently; {!Guarded_exec} is the vetting path. *)
  let arena =
    match memory with
    | Malloc -> None
    | Arena { arena; env } ->
      let plan =
        match variant with
        | Some v -> Pipeline.variant_plan c v env
        | None -> Pipeline.instantiated_plan c env
      in
      (* The plan sized every slot in [fdtype] elements, so byte offsets
         divide exactly by its element size — which is also the kind the
         arena buffer is allocated in.  No 4-vs-8 mismatch is possible:
         both sides derive from the same [bytes_per_elem fdtype]. *)
      let elem = Tensor.bytes_per_elem c.Pipeline.fdtype in
      let buf =
        Arena.ensure arena c.Pipeline.fdtype
          (max 1 ((plan.Mem_plan.arena_bytes + elem - 1) / elem))
      in
      let n = Graph.tensor_count c.graph in
      let slot = Array.make n None in
      Array.iter
        (fun (a : Mem_plan.alloc) ->
          if
            a.Mem_plan.size > 0 && a.offset >= 0 && a.offset mod elem = 0
            && a.Mem_plan.size mod elem = 0
            && a.Mem_plan.elem = elem
            && a.offset + a.size <= plan.Mem_plan.arena_bytes
            && a.tid >= 0 && a.tid < n
          then slot.(a.tid) <- Some (a.offset / elem, a.size / elem))
        plan.Mem_plan.allocs;
      Some
        {
          ar_buf = buf;
          ar_slot = slot;
          ar_loc = Array.make n false;
          ar_resident = 0;
          ar_bytes = plan.Mem_plan.arena_bytes;
        }
  in
  let verify =
    match check_env with
    | None -> fun _ _ -> ()
    | Some env ->
      fun tid dims ->
        (match Shape.eval env (Rdp.shape c.rdp tid) with
        | Some want when want <> dims ->
          Sod2_error.failf ~tensor:tid Sod2_error.Shape_mismatch
            "executed dims [%s] disagree with RDP prediction [%s]"
            (String.concat "; " (List.map string_of_int dims))
            (String.concat "; " (List.map string_of_int want))
        | _ -> ())
  in
  let trace =
    run_engine ~mode:Real ~control ~gate:(fun _ -> 0) ~verify ?backend ?arena ~quant
      ?variant ctx st
  in
  (* Model outputs must outlive the arena (its slots are overwritten by the
     next inference), so arena-resident outputs are boxed at the boundary.
     This is the one unavoidable copy of arena mode and is counted
     separately from intermediate copy-outs. *)
  let outs =
    List.filter_map
      (fun tid ->
        match st.tensors.(tid) with
        | Some t -> Some (tid, t)
        | None -> (
          match arena with
          | Some ar when ar.ar_loc.(tid) ->
            let off, _ = Option.get ar.ar_slot.(tid) in
            let dims = Option.get st.dims.(tid) in
            Profile.Counters.record ~profile:c.Pipeline.profile.Profile.name
              ~kind:"arena-out-materialize";
            Some (tid, Tensor.copy_view (Tensor.sub_view ~buf:ar.ar_buf ~off ~dims))
          | _ -> None))
      ctx.out_tids
  in
  trace, outs
  in
  (* Variant dispatch: resolve the outcome vector to a specialized plan
     (bounded by the artifact's budget), execute it, and on a per-gate
     verification failure rerun from scratch on the any-path base plan —
     mispredicted state never leaks into the fallback. *)
  match Option.bind outcomes (fun o -> Pipeline.variant c ~outcome:o) with
  | None -> attempt None
  | Some v -> (
    let counter kind =
      Profile.Counters.record ~profile:c.Pipeline.profile.Profile.name ~kind
    in
    try
      let r = attempt (Some v) in
      counter "variant-run";
      r
    with Variant_mispredict _ ->
      counter "variant-mispredict";
      attempt None)

(* Config-driven entry point.  Explicit optional arguments always win over
   the corresponding [config] field, so the historical call sites keep
   their exact behavior; [config] only fills what the caller left unset.
   [Mem_arena] needs a symbol binding ([env]) to instantiate the plan —
   without one it degrades to [Malloc].  A non-naive [config.backend] with
   no caller-supplied instance creates a transient backend for this one
   run and shuts it down afterwards; callers with steady traffic should
   pass their own long-lived [?backend] (or use {!Engine}). *)
let run_real ?config ?env ?control ?check_env ?backend ?memory ?outcomes
    (c : Pipeline.compiled) ~inputs =
  match config with
  | None -> run_real_opts ?control ?check_env ?backend ?memory ?outcomes c ~inputs
  | Some cfg ->
    let control = Option.value control ~default:cfg.control in
    let memory =
      match memory, cfg.memory, env with
      | Some m, _, _ -> m
      | None, Mem_arena, Some env -> Arena { arena = Arena.create (); env }
      | None, (Mem_malloc | Mem_arena), _ -> Malloc
    in
    let check_env = if Option.is_some check_env then check_env
      else if cfg.guarded then env
      else None
    in
    let owned, backend =
      match backend, cfg.backend with
      | (Some _ as be), _ -> None, be
      | None, Backend.Naive -> None, None
      | None, k ->
        let be = Backend.for_compiled k c in
        Some be, Some be
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Backend.shutdown owned)
      (fun () ->
        run_real_opts ~control ?check_env ?backend ~memory ~quant:cfg.quant
          ?outcomes c ~inputs)

let peak_live_bytes trace =
  let last =
    List.fold_left (fun acc e -> max acc e.te_free) 0 trace.events
  in
  let peak = ref 0 in
  for s = 0 to last do
    let live =
      List.fold_left
        (fun acc e -> if e.te_alloc <= s && s <= e.te_free then acc + e.te_bytes else acc)
        0 trace.events
    in
    if live > !peak then peak := live
  done;
  !peak

let total_flops trace =
  List.fold_left
    (fun acc ge ->
      List.fold_left
        (fun acc (op, ind, outd) -> acc +. Cost_model.flops op ~in_dims:ind ~out_dims:outd)
        acc ge.ops)
    0.0 trace.steps
