(** Guarded execution with graceful degradation.

    SoD²'s fusion, execution and memory plans are all derived from the RDP
    facts, so one wrong dimension prediction — or a corrupted plan — would
    silently corrupt an arena execution.  This executor runs the compiled
    plan under runtime guards and, when a guard fires, {e demotes} the
    affected work from fused/planned execution to the reference
    topological interpreter instead of crashing:

    - {b before execution} the instantiated memory plan is vetted: every
      allocation must lie inside the arena, agree with its RDP-predicted
      size, and never overlap another allocation whose lifetime it
      intersects.  Offending allocations are evicted to boxed storage.
    - {b at each fused-group boundary} every produced tensor's actual dims
      are cross-checked against the RDP prediction instantiated from the
      symbol {!Env}; a mismatch boxes the tensor (the planned offset can no
      longer be trusted) and records an incident.
    - {b after the planned sweep} any node the plan failed to execute —
      truncated groups, truncated order, cascading skips — is picked up by
      a reference topological sweep over boxed tensors, so outputs are
      still produced and still correct.

    Every incident is recorded in the report and in the process-global
    {!Profile.Counters}, giving production monitoring a fallback-health
    signal.  The fault-injection suite verifies that each corruption kind
    is caught and that degraded execution still matches {!Reference.run}
    bit-for-bit. *)

type fault_kind =
  | Arena_bounds  (** allocation outside the arena (or misaligned) *)
  | Plan_overlap  (** two allocations overlap in space while both live *)
  | Size_mismatch  (** planned byte size disagrees with the RDP size / actual tensor *)
  | Dim_mismatch  (** executed dims disagree with the RDP prediction under [env] *)
  | Truncated_plan  (** the plan never executed nodes that were executable *)
  | Kernel_fault  (** a kernel raised while executing a planned group *)

val fault_name : fault_kind -> string

type incident = {
  kind : fault_kind;
  gid : int;  (** fusion group id, [-1] for plan-level incidents *)
  step : int;  (** plan-order position, [-1] when not applicable *)
  detail : string;
}

type report = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  incidents : incident list;  (** in detection order *)
  planned_groups : int;  (** groups executed through the plan *)
  demoted_nodes : int;  (** nodes executed by the fallback sweep *)
  arena_bytes : int;
  arena_resident : int;  (** tensors that lived in the arena *)
  gate_outcomes : (Graph.tensor_id * int) list;
      (** branch taken per Switch predicate tensor, in first-observation
          order — lets {!Engine} learn outcome vectors from guarded
          warm-up runs and predict plan variants for later requests *)
}

val run :
  ?config:Executor.config ->
  ?mem_plan:Mem_plan.t ->
  ?arena:Arena.t ->
  ?kernel_hook:(gid:int -> node:Graph.node_id -> unit) ->
  ?backend:Backend.t ->
  Pipeline.compiled ->
  env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list ->
  report
(** Execute under guards.

    [config] is the consolidated spelling: [config.memory = Mem_arena]
    allocates a fresh transient arena and a non-naive [config.backend]
    creates (and shuts down) a transient backend for the planned sweep.
    Explicit optional arguments win over the config fields.  Guarded
    execution is graceful by construction, so [config.guarded] is implied
    and [config.control] does not apply (predicates always route
    selected-only here).

    [mem_plan] overrides the plan instantiated from
    [env] (used by the fault-injection harness to feed corrupted plans).
    [arena] switches to persistent-arena storage: the plan comes from the
    binding cache ({!Pipeline.instantiated_plan}) and tensor slots live in
    the grow-only buffer, so steady-state runs reuse storage.  Because that
    plan is shared across inferences, {e any} vetting incident demotes the
    whole run to boxed (malloc) storage — recorded as an
    ["arena-fallback-malloc"] counter — instead of the per-allocation
    eviction used in the default mode.
    [kernel_hook] runs before each {e planned} node execution and may raise
    to simulate a faulty specialized kernel version; the fallback sweep
    does not call it (the fallback runs reference kernels).  [backend]
    applies to the planned sweep only — demoted nodes always re-execute on
    the naive reference kernels, so a misbehaving optimized kernel version
    is contained by the same demotion path as a corrupt plan.  Never raises
    on plan corruption; raises [Sod2_error.Error] only when a graph output
    is genuinely uncomputable (malformed graph). *)
