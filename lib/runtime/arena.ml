type t = { mutable buf : float array; mutable grows : int }

let create () = { buf = [||]; grows = 0 }

let ensure t floats =
  if Array.length t.buf < floats then begin
    t.buf <- Array.make floats 0.0;
    t.grows <- t.grows + 1
  end;
  t.buf

let capacity t = Array.length t.buf
let grows t = t.grows
