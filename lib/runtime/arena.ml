type t = { mutable buf : Tensor.fbuf option; mutable grows : int }

let create () = { buf = None; grows = 0 }

let ensure t dtype elems =
  let needs_realloc =
    match t.buf with
    | None -> true
    | Some b -> Tensor.fbuf_dtype b <> dtype || Tensor.fbuf_len b < elems
  in
  if needs_realloc then begin
    let b = Tensor.fbuf_create dtype elems in
    Tensor.fbuf_fill b 0 elems 0.0;
    t.buf <- Some b;
    t.grows <- t.grows + 1
  end;
  Option.get t.buf

let capacity t = match t.buf with None -> 0 | Some b -> Tensor.fbuf_len b

let capacity_bytes t =
  match t.buf with
  | None -> 0
  | Some b -> Tensor.fbuf_len b * Tensor.bytes_per_elem (Tensor.fbuf_dtype b)

let grows t = t.grows
