type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;
  arena_resident : int;
}

let run ?backend ?arena (c : Pipeline.compiled) ~env ~inputs =
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let trace, outputs =
    Executor.run_real ?backend ~check_env:env
      ~memory:(Executor.Arena { arena; env })
      c ~inputs
  in
  {
    outputs;
    arena_bytes = trace.Executor.arena_bytes;
    arena_resident = trace.Executor.arena_resident;
  }
