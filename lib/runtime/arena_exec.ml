type location =
  | In_arena of int * int list  (** float offset, dims *)
  | Boxed of Tensor.t

type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;
  arena_resident : int;
}

let run (c : Pipeline.compiled) ~env ~inputs =
  let g = c.Pipeline.graph in
  let mp = Pipeline.mem_plan_for c env in
  let alloc_of = Hashtbl.create 64 in
  Array.iter
    (fun (a : Mem_plan.alloc) -> Hashtbl.replace alloc_of a.Mem_plan.tid a)
    mp.Mem_plan.allocs;
  let arena = Array.make (max 1 (mp.Mem_plan.arena_bytes / 4)) 0.0 in
  let resident = ref 0 in
  let loc : location option array = Array.make (Graph.tensor_count g) None in
  (* seed constants and inputs (boxed: they are not intermediates) *)
  for tid = 0 to Graph.tensor_count g - 1 do
    match (Graph.tensor g tid).Graph.kind with
    | Graph.Const t -> loc.(tid) <- Some (Boxed t)
    | Graph.Input _ | Graph.Activation -> ()
  done;
  List.iter (fun (tid, t) -> loc.(tid) <- Some (Boxed t)) inputs;
  let fetch tid =
    match loc.(tid) with
    | Some (Boxed t) -> t
    | Some (In_arena (off, dims)) ->
      let n = List.fold_left ( * ) 1 dims in
      Tensor.create_f dims (Array.sub arena off n)
    | None ->
      Sod2_error.failf ~tensor:tid Sod2_error.Plan_violation
        "Arena_exec: tensor %d not available" tid
  in
  let store tid (t : Tensor.t) =
    match Hashtbl.find_opt alloc_of tid with
    | Some a when Tensor.dtype t = Tensor.F32 ->
      let bytes = 4 * Tensor.numel t in
      if bytes <> a.Mem_plan.size then
        Sod2_error.failf ~tensor:tid Sod2_error.Shape_mismatch
          "Arena_exec: tensor %d is %d bytes, planned %d" tid bytes a.Mem_plan.size;
      if a.Mem_plan.offset < 0 || a.Mem_plan.offset + a.Mem_plan.size > mp.Mem_plan.arena_bytes
      then
        Sod2_error.failf ~tensor:tid Sod2_error.Plan_violation
          "Arena_exec: allocation [%d, %d) outside the %d-byte arena" a.Mem_plan.offset
          (a.Mem_plan.offset + a.Mem_plan.size) mp.Mem_plan.arena_bytes;
      let off = a.Mem_plan.offset / 4 in
      Array.blit (Tensor.data_f t) 0 arena off (Tensor.numel t);
      incr resident;
      loc.(tid) <- Some (In_arena (off, Tensor.dims t))
    | _ -> loc.(tid) <- Some (Boxed t)
  in
  let available tid = loc.(tid) <> None in
  let branch_of_pred tid =
    match Tensor.to_int_list (Tensor.cast (fetch tid) Tensor.I64) with
    | b :: _ -> b
    | [] -> 0
  in
  List.iter
    (fun gid ->
      let grp = c.Pipeline.fusion_plan.Fusion.groups.(gid) in
      let members = List.map (Graph.node g) grp.Fusion.members in
      let member_tids =
        List.concat_map (fun (nd : Graph.node) -> nd.Graph.outputs) members
      in
      let ready =
        List.for_all
          (fun (nd : Graph.node) ->
            match nd.Graph.op with
            | Op.Combine { branches } ->
              available (List.nth nd.Graph.inputs branches)
              && List.exists available
                   (List.filteri (fun i _ -> i < branches) nd.Graph.inputs)
            | _ ->
              List.for_all
                (fun tid -> available tid || List.mem tid member_tids)
                nd.Graph.inputs)
          members
      in
      if ready then
        List.iter
          (fun (nd : Graph.node) ->
            match nd.Graph.op with
            | Op.Switch { branches } ->
              let data = List.hd nd.Graph.inputs in
              let pred = List.nth nd.Graph.inputs 1 in
              let b = max 0 (min (branches - 1) (branch_of_pred pred)) in
              List.iteri
                (fun i tid -> if i = b then store tid (fetch data))
                nd.Graph.outputs
            | Op.Combine { branches } ->
              let src =
                match
                  List.find_opt available
                    (List.filteri (fun i _ -> i < branches) nd.Graph.inputs)
                with
                | Some src -> src
                | None ->
                  Sod2_error.fail ~op:"Combine" ~node:nd.Graph.nname
                    Sod2_error.Plan_violation
                    "Arena_exec: no Combine branch available"
              in
              store (List.hd nd.Graph.outputs) (fetch src)
            | op ->
              let ins = List.map fetch nd.Graph.inputs in
              let outs = Kernels.run op ins in
              List.iter2 store nd.Graph.outputs outs)
          members)
    c.Pipeline.exec.Exec_plan.order;
  let outputs = List.map (fun tid -> tid, fetch tid) (Graph.outputs g) in
  { outputs; arena_bytes = mp.Mem_plan.arena_bytes; arena_resident = !resident }
