type result = Engine.arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;
  arena_resident : int;
}

let run = Engine.run_arena
