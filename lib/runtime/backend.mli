(** Kernel-backend selection: naive reference loops, cache-blocked
    kernels, or blocked kernels driven by the domain pool.

    A backend bundles the autotuner's per-shape-class configurations
    ({!Multi_version.table}) with an optional {!Domain_pool.t}; each heavy
    call site resolves a shape class (preferring the compile-time RDP
    resolution when the caller has one) and runs the matching kernel
    variant.  [Naive] reproduces the reference interpreter bit-exactly and
    is what {!Kernels.run} uses when no backend is given, so guarded
    fallback and golden comparisons stay byte-stable. *)

type kind =
  | Naive  (** reference scalar loop nests *)
  | Blocked  (** packed, register-tiled kernels, single domain *)
  | Parallel  (** blocked kernels + domain pool + parallel elementwise *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type t

val create : ?versions:Multi_version.table -> ?threads:int -> kind -> t
(** [create kind] — [versions] defaults to the untuned table; [threads]
    (Parallel only) defaults to the host's recommended domain count. *)

val for_compiled : kind -> Pipeline.compiled -> t
(** Backend using the compiled artifact's tuned version table and device
    core count. *)

val kind_of : t -> kind

val pool_size : t -> int
(** Domains the pool actually uses (1 when no pool). *)

val shutdown : t -> unit
(** Joins the pool's worker domains, if any. *)

val gemm_kernel : ?cls:Multi_version.shape_class -> t -> Linalg.gemm_kernel
(** The inner GEMM this backend selects; [cls] pins the shape class
    (compile-time resolution), otherwise the observed extents classify. *)

val matmul : ?cls:Multi_version.shape_class -> t -> Tensor.t -> Tensor.t -> Tensor.t

val gemm :
  ?cls:Multi_version.shape_class -> t -> alpha:float -> beta:float -> trans_a:bool ->
  trans_b:bool -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

val conv2d :
  ?cls:Multi_version.shape_class -> t -> stride:int * int ->
  pad:int * int * int * int -> dilation:int * int -> groups:int ->
  Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

val conv1d :
  ?cls:Multi_version.shape_class -> t -> stride:int -> pad:int * int ->
  dilation:int -> groups:int -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

val map_f : t -> (float -> float) -> Tensor.t -> Tensor.t
(** Elementwise map, chunked over the pool for large float tensors;
    otherwise {!Tensor.map_f}. *)

val map2 : t -> (float -> float -> float) -> Tensor.t -> Tensor.t -> Tensor.t
(** Binary elementwise map, parallel for large same-shape float tensors;
    broadcasts and integer tensors take the sequential path. *)
