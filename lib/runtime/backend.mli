(** Kernel-backend selection: naive reference loops, cache-blocked
    kernels, or blocked kernels driven by the domain pool.

    A backend bundles the autotuner's per-shape-class configurations
    ({!Multi_version.table}) with an optional {!Domain_pool.t}; each heavy
    call site resolves a shape class (preferring the compile-time RDP
    resolution when the caller has one) and runs the matching kernel
    variant.  [Naive] reproduces the reference interpreter bit-exactly and
    is what {!Kernels.run} uses when no backend is given, so guarded
    fallback and golden comparisons stay byte-stable. *)

type kind =
  | Naive  (** reference scalar loop nests *)
  | Blocked  (** packed, register-tiled kernels, single domain *)
  | Parallel  (** blocked kernels + domain pool + parallel elementwise *)
  | Fused
      (** Parallel, plus whole fusion groups execute as single compiled
          kernels ({!Fused_compile}) with a per-(group × shape) cache *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type t

val create : ?versions:Multi_version.table -> ?threads:int -> ?profile:string -> kind -> t
(** [create kind] — [versions] defaults to the untuned table; [threads]
    (Parallel/Fused only) defaults to the host's recommended domain count;
    [profile] names the device in {!Profile.Counters} records. *)

val for_compiled : kind -> Pipeline.compiled -> t
(** Backend using the compiled artifact's tuned version table and device
    core count. *)

val kind_of : t -> kind

val versions : t -> Multi_version.table
(** The version table kernel call sites currently select from. *)

val set_versions : t -> Multi_version.table -> unit
(** Swap the version table in place.  The write is a single immutable-
    record pointer store, so concurrent kernel calls see either the old or
    the new table wholesale — the engine's drift re-tuner uses this to
    retarget live workers without stopping them. *)

val pool_size : t -> int
(** Domains the pool actually uses (1 when no pool). *)

val shutdown : t -> unit
(** Joins the pool's worker domains, if any. *)

val gemm_kernel : ?cls:Multi_version.shape_class -> t -> Linalg.gemm_kernel
(** The inner GEMM this backend selects; [cls] pins the shape class
    (compile-time resolution), otherwise the observed extents classify. *)

val matmul : ?cls:Multi_version.shape_class -> t -> Tensor.t -> Tensor.t -> Tensor.t

val matmul_into :
  ?cls:Multi_version.shape_class -> t -> Tensor.view -> Tensor.view ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!matmul} through this backend's inner GEMM;
    writes into [c] at element offset [co], returns the result dims. *)

val gemm :
  ?cls:Multi_version.shape_class -> t -> alpha:float -> beta:float -> trans_a:bool ->
  trans_b:bool -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

val conv2d :
  ?cls:Multi_version.shape_class -> t -> stride:int * int ->
  pad:int * int * int * int -> dilation:int * int -> groups:int ->
  Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

val conv2d_into :
  ?cls:Multi_version.shape_class -> t -> stride:int * int ->
  pad:int * int * int * int -> dilation:int * int -> groups:int ->
  Tensor.view -> Tensor.view -> Tensor.view option ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!conv2d} (naive loops or blocked im2col by shape
    class); writes into [c] at element offset [co], returns the result
    dims. *)

val conv1d :
  ?cls:Multi_version.shape_class -> t -> stride:int -> pad:int * int ->
  dilation:int -> groups:int -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t

(** {1 Int8 weight-quantized execution}

    The runtime half of dynamic-range quantization: weights arrive as
    compile-time int8 payloads ({!Pipeline.quant_weights}), the float
    activation is calibrated and quantized per-tensor at call time, the
    packed int8 kernels accumulate in int32, and the dequantization
    epilogue (scale product, per-channel for conv, plus bias) is folded
    into the micro-tile write-back — the output is float again, so
    quantized nodes compose with the arena/engine machinery unchanged.
    These paths run the blocked int8 kernels for every backend kind and
    shape class; use [config.quant = false] (or {!Executor.degraded}) for
    bit-exact float execution. *)

val matmul_q8 :
  ?cls:Multi_version.shape_class -> t -> Tensor.t -> Quant.qtensor -> Tensor.t
(** [matmul_q8 t x qw] — float [x : [m;k]] times int8 weight
    [qw : [k;n]] (per-tensor symmetric), float result. *)

val matmul_q8_into :
  ?cls:Multi_version.shape_class -> t -> Tensor.t -> Quant.qtensor ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!matmul_q8}: writes into [c] at element offset
    [co] (every output element is overwritten), returns the dims. *)

val conv2d_q8 :
  ?cls:Multi_version.shape_class -> t -> stride:int * int ->
  pad:int * int * int * int -> dilation:int * int -> groups:int ->
  Tensor.t -> Quant.qtensor -> Tensor.t option -> Tensor.t
(** Quantized NCHW convolution: float activation, int8 OIHW weight
    (per-channel symmetric over axis 0), optional float bias folded into
    the epilogue. *)

val conv2d_q8_into :
  ?cls:Multi_version.shape_class -> t -> stride:int * int ->
  pad:int * int * int * int -> dilation:int * int -> groups:int ->
  Tensor.t -> Quant.qtensor -> Tensor.t option ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!conv2d_q8}. *)

val map_f : t -> (float -> float) -> Tensor.t -> Tensor.t
(** Elementwise map, chunked over the pool for large float tensors;
    otherwise {!Tensor.map_f}. *)

val map2 : t -> (float -> float -> float) -> Tensor.t -> Tensor.t -> Tensor.t
(** Binary elementwise map, parallel for large same-shape float tensors;
    broadcasts and integer tensors take the sequential path. *)

(** {1 Fused-group execution} *)

type fused_stats = {
  hits : int;  (** executions served by a cached specialized kernel *)
  misses : int;  (** specializations compiled (first sight of a shape) *)
  rejects : int;  (** executions that fell back to op-by-op kernels *)
  variants : int;  (** live specialized kernels across all groups *)
}

val fused_stats : t -> fused_stats
(** This backend's fused-kernel cache counters.  The same events are also
    recorded process-globally in {!Profile.Counters} under the kinds
    ["fused-cache-hit"], ["fused-cache-miss"], ["fused-reject"] and
    ["fused-variant-overflow"]. *)

type fused_result = {
  fr_out : Graph.tensor_id;  (** the terminal output tensor's id *)
  fr_tensor : Tensor.t;  (** its value *)
  fr_dims : (Graph.tensor_id * int list) list;
      (** concrete dims of every member output (internal ones are never
          materialized — these let the executor track dims and traffic) *)
}

val par_of : t -> Sod2_tensor.Blocked.par
(** The parallel runner backing this backend's kernels (sequential when it
    has no pool) — what callers pass to {!Fused_compile.kernel} entry
    points obtained from {!fused_kernel}. *)

val fused_kernel :
  t -> ?tpl:Fused_compile.template -> Pipeline.compiled -> gid:int ->
  args:(int list * Tensor.dtype) list -> Fused_compile.kernel option
(** Resolve fusion group [gid] under the concrete slot shapes [args] to a
    specialized kernel, through the per-(group × shapes) cache —
    compiling on first sight, caching failures.  [None] means op-by-op
    execution (non-[Fused] backend, no template, failed specialization, or
    variant budget exhausted).  [tpl] overrides the artifact's base
    template for [gid] — the executor passes the entry it consulted in a
    plan variant's masked array ({!Fused_compile.restrict}); because
    masked arrays share template {e values} with the base plan, variant
    and base runs resolve to the same cache entries (the cache checks
    template identity, so a stale template from another artifact can
    never be served).  The arena executor uses this directly so it can
    drive [k_run_into] with destination slots; {!fused_run} wraps it for
    the boxed path. *)

val fused_run :
  t -> ?tpl:Fused_compile.template -> Pipeline.compiled -> gid:int ->
  fetch:(Graph.tensor_id -> Tensor.t) -> fused_result option
(** Execute fusion group [gid] as one compiled kernel.  [fetch] supplies
    the group's external input tensors.  Returns [None] — meaning the
    caller must run the group op-by-op — when the backend is not [Fused],
    the group has no template, specialization failed for these shapes
    (e.g. I64 element inputs), or the group exhausted its live-variant
    budget.  Specializations are cached per (group × concrete shapes), so
    repeated samples skip recompilation.  Only use a backend with the
    artifact it was created for ({!for_compiled}): kernels are validated
    against the template by physical identity. *)
