type job = {
  gen : int;
  count : int;
  body : int -> unit;
}

type t = {
  workers : int;  (* domains beyond the caller; 0 = fully inline *)
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled on new job and on shutdown *)
  done_cond : Condition.t;  (* signalled when a worker finishes a job *)
  mutable job : job option;
  mutable next : int Atomic.t;  (* work-stealing cursor of the current job *)
  mutable active : int;  (* workers still inside the current job *)
  mutable completed_gen : int;
  mutable fault : exn option;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.workers + 1

let run_slice job next fault =
  let n = job.count in
  let rec loop () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (match job.body i with
      | () -> ()
      | exception e -> (
        match Atomic.get fault with
        | Some _ -> ()
        | None -> Atomic.set fault (Some e)));
      loop ()
    end
  in
  loop ()

let worker t =
  let last_gen = ref 0 in
  let rec wait () =
    Mutex.lock t.mutex;
    let rec await () =
      if t.shutdown then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match t.job with
        | Some j when j.gen > !last_gen ->
          last_gen := j.gen;
          let next = t.next in
          Mutex.unlock t.mutex;
          Some (j, next)
        | _ ->
          Condition.wait t.cond t.mutex;
          await ()
    in
    match await () with
    | None -> ()
    | Some (j, next) ->
      let fault = Atomic.make None in
      run_slice j next fault;
      Mutex.lock t.mutex;
      (match Atomic.get fault with
      | Some e when t.fault = None -> t.fault <- Some e
      | _ -> ());
      t.active <- t.active - 1;
      if t.active = 0 then begin
        t.completed_gen <- j.gen;
        Condition.broadcast t.done_cond
      end;
      Mutex.unlock t.mutex;
      wait ()
  in
  wait ()

let create requested =
  let avail = Domain.recommended_domain_count () in
  let n = max 1 (min requested avail) in
  let t =
    {
      workers = n - 1;
      mutex = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      job = None;
      next = Atomic.make 0;
      active = 0;
      completed_gen = 0;
      fault = None;
      shutdown = false;
      domains = [];
    }
  in
  t.domains <- List.init t.workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let run t count body =
  if count > 0 then
    if t.workers = 0 || count = 1 then
      for i = 0 to count - 1 do
        body i
      done
    else begin
      Mutex.lock t.mutex;
      let gen = (match t.job with Some j -> j.gen | None -> 0) + 1 in
      let job = { gen; count; body } in
      t.job <- Some job;
      t.next <- Atomic.make 0;
      t.active <- t.workers;
      t.fault <- None;
      Condition.broadcast t.cond;
      let next = t.next in
      Mutex.unlock t.mutex;
      (* The caller is a full participant, then blocks (no spinning — the
         pool must behave on single-core hosts where spinning would starve
         the workers it is waiting on). *)
      let fault = Atomic.make None in
      run_slice job next fault;
      Mutex.lock t.mutex;
      (match Atomic.get fault with
      | Some e when t.fault = None -> t.fault <- Some e
      | _ -> ());
      while t.completed_gen < gen && not t.shutdown do
        Condition.wait t.done_cond t.mutex
      done;
      let fault = t.fault in
      t.fault <- None;
      Mutex.unlock t.mutex;
      match fault with Some e -> raise e | None -> ()
    end

let par t = { Blocked.run = (fun count body -> run t count body) }

let shutdown t =
  Mutex.lock t.mutex;
  if not t.shutdown then begin
    t.shutdown <- true;
    Condition.broadcast t.cond;
    Condition.broadcast t.done_cond
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let for_profile (p : Profile.t) = create p.Profile.cores
