let branch_of_pred ~tensor t =
  match Tensor.to_int_list (Tensor.cast t Tensor.I64) with
  | b :: _ -> b
  | [] ->
    Sod2_error.failf ~tensor Sod2_error.Shape_mismatch
      "Reference: control-flow predicate tensor t%d is empty" tensor

let run (g : Graph.t) ~inputs =
  let value : Tensor.t option array = Array.make (Graph.tensor_count g) None in
  for tid = 0 to Graph.tensor_count g - 1 do
    match (Graph.tensor g tid).Graph.kind with
    | Graph.Const t -> value.(tid) <- Some t
    | Graph.Input _ | Graph.Activation -> ()
  done;
  List.iter (fun (tid, t) -> value.(tid) <- Some t) inputs;
  let avail tid = value.(tid) <> None in
  let fetch tid = Option.get value.(tid) in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Switch { branches } ->
        if List.for_all avail nd.Graph.inputs then begin
          let data = List.hd nd.Graph.inputs in
          let pred = List.nth nd.Graph.inputs 1 in
          let b = max 0 (min (branches - 1) (branch_of_pred ~tensor:pred (fetch pred))) in
          List.iteri
            (fun i tid -> if i = b then value.(tid) <- Some (fetch data))
            nd.Graph.outputs
        end
      | Op.Combine { branches } -> (
        let branch_tids = List.filteri (fun i _ -> i < branches) nd.Graph.inputs in
        match List.rev nd.Graph.inputs with
        | pred :: _ when avail pred -> (
          match List.find_opt avail branch_tids with
          | Some src -> value.(List.hd nd.Graph.outputs) <- Some (fetch src)
          | None -> ())
        | _ -> ())
      | op ->
        (* Nodes on an unselected branch never see their inputs; skipping
           them is the routing semantics, not an error. *)
        if List.for_all avail nd.Graph.inputs then begin
          let outs = Kernels.run op (List.map fetch nd.Graph.inputs) in
          List.iter2 (fun tid t -> value.(tid) <- Some t) nd.Graph.outputs outs
        end)
    (Graph.nodes g);
  List.map
    (fun tid ->
      match value.(tid) with
      | Some t -> tid, t
      | None ->
        Sod2_error.failf ~tensor:tid Sod2_error.Plan_violation
          "Reference.run: graph output %d was never produced" tid)
    (Graph.outputs g)
