(* ---------------------------------------------------------------- *)
(* Scalar int8 reference: an INDEPENDENT transcription of the gemmlowp
   requantization spec plus direct zero-point-subtracting loop nests.
   Deliberately written without {!Quant} or {!Blocked} — the qcheck
   suites hold the fused kernels bit-for-bit equal to this, so a slip in
   either transcription (or in the packed kernels' SWAR/row-sum algebra)
   surfaces as a test failure instead of cancelling out. *)

let requantize ~qm ~shift ~zp acc =
  let i32max = 0x7FFFFFFF and i32min = -0x80000000 in
  let sat32 v = if v > i32max then i32max else if v < i32min then i32min else v in
  (* SaturatingRoundingDoublingHighMul *)
  let srdhm x y =
    if x = i32min && y = i32min then i32max
    else
      let prod = x * y in
      let nudge = if prod >= 0 then 0x40000000 else -0x3FFFFFFF in
      (prod + nudge) / 0x80000000
  in
  (* RoundingDivideByPOT *)
  let rdbpot x e =
    if e <= 0 then x
    else
      let mask = (1 lsl e) - 1 in
      let rem = x land mask in
      let threshold = (mask asr 1) + (if x < 0 then 1 else 0) in
      (x asr e) + (if rem > threshold then 1 else 0)
  in
  let lshift = if shift > 0 then shift else 0 in
  let rshift = if shift > 0 then 0 else -shift in
  let v = rdbpot (srdhm (sat32 (acc lsl lshift)) qm) rshift + zp in
  if v > 127 then 127 else if v < -128 then -128 else v

(* Corrected int32 accumulators of the quantized product, row-major:
   acc[i,j] = Σ_p (a[i,p] - za)(b[p,j] - zb). *)
let gemm_i8_acc ~za ~zb ~m ~n ~k a b =
  let da = Tensor.data_i a and db = Tensor.data_i b in
  let out = Array.make (m * n) 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for p = 0 to k - 1 do
        acc := !acc + ((da.((i * k) + p) - za) * (db.((p * n) + j) - zb))
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

(* Direct quantized convolution (NCHW / OIHW): every tap outside the
   input contributes (zx - zx) = 0, mirroring zero-point padding. *)
let conv2d_i8_acc ~zx ~zw ~stride ~pad ~dilation ~groups x w =
  let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
  let n = dx.(0) and c = dx.(1) and h = dx.(2) and wd = dx.(3) in
  let m = dw.(0) and cg = dw.(1) and kh = dw.(2) and kw = dw.(3) in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  Linalg.check_conv_groups ~c ~groups ~cg;
  let oh = Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb ~dilation:dh in
  let ow = Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr ~dilation:dw_ in
  let mg = m / groups in
  let xd = Tensor.data_i x and wdt = Tensor.data_i w in
  let out = Array.make (n * m * oh * ow) 0 in
  for ni = 0 to n - 1 do
    for mi = 0 to m - 1 do
      let g = mi / mg in
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = ref 0 in
          for ci = 0 to cg - 1 do
            let cin = (g * cg) + ci in
            for ky = 0 to kh - 1 do
              let iy = (oy * sh) - pt + (ky * dh) in
              if iy >= 0 && iy < h then
                for kx = 0 to kw - 1 do
                  let ix = (ox * sw) - pl + (kx * dw_) in
                  if ix >= 0 && ix < wd then
                    acc :=
                      !acc
                      + ((xd.((((((ni * c) + cin) * h) + iy) * wd) + ix) - zx)
                        * (wdt.((((((mi * cg) + ci) * kh) + ky) * kw) + kx) - zw))
                done
            done
          done;
          out.((((((ni * m) + mi) * oh) + oy) * ow) + ox) <- !acc
        done
      done
    done
  done;
  (out, [ n; m; oh; ow ])

let branch_of_pred ~tensor t =
  match Tensor.to_int_list (Tensor.cast t Tensor.I64) with
  | b :: _ -> b
  | [] ->
    Sod2_error.failf ~tensor Sod2_error.Shape_mismatch
      "Reference: control-flow predicate tensor t%d is empty" tensor

let run (g : Graph.t) ~inputs =
  let value : Tensor.t option array = Array.make (Graph.tensor_count g) None in
  for tid = 0 to Graph.tensor_count g - 1 do
    match (Graph.tensor g tid).Graph.kind with
    | Graph.Const t -> value.(tid) <- Some t
    | Graph.Input _ | Graph.Activation -> ()
  done;
  List.iter (fun (tid, t) -> value.(tid) <- Some t) inputs;
  let avail tid = value.(tid) <> None in
  let fetch tid = Option.get value.(tid) in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Switch { branches } ->
        if List.for_all avail nd.Graph.inputs then begin
          let data = List.hd nd.Graph.inputs in
          let pred = List.nth nd.Graph.inputs 1 in
          let b = max 0 (min (branches - 1) (branch_of_pred ~tensor:pred (fetch pred))) in
          List.iteri
            (fun i tid -> if i = b then value.(tid) <- Some (fetch data))
            nd.Graph.outputs
        end
      | Op.Combine { branches } -> (
        let branch_tids = List.filteri (fun i _ -> i < branches) nd.Graph.inputs in
        match List.rev nd.Graph.inputs with
        | pred :: _ when avail pred -> (
          match List.find_opt avail branch_tids with
          | Some src -> value.(List.hd nd.Graph.outputs) <- Some (fetch src)
          | None -> ())
        | _ -> ())
      | op ->
        (* Nodes on an unselected branch never see their inputs; skipping
           them is the routing semantics, not an error. *)
        if List.for_all avail nd.Graph.inputs then begin
          let outs = Kernels.run op (List.map fetch nd.Graph.inputs) in
          List.iter2 (fun tid t -> value.(tid) <- Some t) nd.Graph.outputs outs
        end)
    (Graph.nodes g);
  List.map
    (fun tid ->
      match value.(tid) with
      | Some t -> tid, t
      | None ->
        Sod2_error.failf ~tensor:tid Sod2_error.Plan_violation
          "Reference.run: graph output %d was never produced" tid)
    (Graph.outputs g)
