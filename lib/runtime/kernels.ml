(* Scalar semantics live in [Op_semantics] so the fused-group compiler and
   these reference kernels evaluate identical closures per element. *)
let unary_fn = Op_semantics.unary_fn
let float_binary_fn = Op_semantics.float_binary_fn
let int_binary_fn = Op_semantics.int_binary_fn

let reduce_kind : Op.reduce_kind -> Reduction.kind = function
  | Op.Rsum -> Reduction.Sum
  | Op.Rmean -> Reduction.Mean
  | Op.Rmax -> Reduction.Max
  | Op.Rmin -> Reduction.Min
  | Op.Rprod -> Reduction.Prod
  | Op.Rl2 -> Reduction.L2

let arg_err op msg =
  Sod2_error.failf ~op:(Op.name op) Sod2_error.Arity_mismatch "Kernels.run: %s" msg

let reshape_err fmt = Sod2_error.failf ~op:"Reshape" Sod2_error.Shape_mismatch fmt

let resolve_reshape_dims data target =
  let total = Tensor.numel data in
  let in_dims = Tensor.dims data in
  let in_rank = List.length in_dims in
  let dims =
    List.mapi
      (fun i d ->
        if d = 0 then
          if i < in_rank then List.nth in_dims i
          else
            reshape_err "dim %d is 0 (copy input dim) but input rank is only %d" i in_rank
        else if d < -1 then reshape_err "invalid target dim %d" d
        else d)
      (Tensor.to_int_list target)
  in
  if List.length (List.filter (fun d -> d = -1) dims) > 1 then
    reshape_err "at most one target dim may be -1";
  if List.mem (-1) dims then begin
    let known = List.fold_left (fun acc d -> if d = -1 then acc else acc * d) 1 dims in
    if known = 0 || total mod known <> 0 then
      reshape_err "cannot infer -1: %d elements not divisible by %d" total known;
    List.map (fun d -> if d = -1 then total / known else d) dims
  end
  else begin
    let prod = List.fold_left ( * ) 1 dims in
    if prod <> total then
      reshape_err "cannot reshape %d elements into %d" total prod;
    dims
  end

let run ?backend ?cls (op : Op.t) (inputs : Tensor.t list) : Tensor.t list =
  (* Without a backend every path below is the naive reference kernel, so
     golden comparisons and guarded fallback stay bit-exact. *)
  let map_f f x = match backend with Some be -> Backend.map_f be f x | None -> Tensor.map_f f x in
  let map2 f x y = match backend with Some be -> Backend.map2 be f x y | None -> Tensor.map2 f x y in
  (* Integer operands promote to F32 for float semantics; float operands
     keep their own precision (an F64 input must not silently narrow). *)
  let ensure_f t =
    if Tensor.is_float_dtype (Tensor.dtype t) then t else Tensor.cast t Tensor.F32
  in
  match op, inputs with
  | Op.Unary u, [ x ] -> (
    match Tensor.dtype x, u with
    | (Tensor.I64 | Tensor.I8), Op.Identity -> [ x ]
    | (Tensor.I64 | Tensor.I8), Op.Neg -> [ Tensor.map_i (fun v -> -v) x ]
    | (Tensor.I64 | Tensor.I8), Op.Abs -> [ Tensor.map_i abs x ]
    | (Tensor.I64 | Tensor.I8), Op.Not ->
      [ Tensor.map_i (fun v -> if v = 0 then 1 else 0) x ]
    | (Tensor.I64 | Tensor.I8), _ -> [ map_f (unary_fn u) (Tensor.cast x Tensor.F32) ]
    | (Tensor.F32 | Tensor.F64), _ -> [ map_f (unary_fn u) x ])
  | Op.Binary b, [ x; y ] -> (
    match Tensor.dtype x, Tensor.dtype y with
    | (Tensor.I64 | Tensor.I8), (Tensor.I64 | Tensor.I8) ->
      [ Tensor.map2i (int_binary_fn b) x y ]
    | _ -> [ map2 (float_binary_fn b) (ensure_f x) (ensure_f y) ])
  | Op.Clip (lo, hi), [ x ] -> [ map_f (fun v -> Float.min hi (Float.max lo v)) x ]
  | Op.Cast dt, [ x ] -> [ Tensor.cast x dt ]
  | Op.Where, [ c; a; b ] -> [ Transform.where (Tensor.cast c Tensor.I64) a b ]
  | Op.MatMul, [ a; b ] -> (
    match backend with
    | Some be -> [ Backend.matmul ?cls be a b ]
    | None -> [ Linalg.matmul a b ])
  | Op.Gemm { alpha; beta; trans_a; trans_b }, (a :: b :: rest) -> (
    let c = match rest with [ c ] -> Some c | _ -> None in
    match backend with
    | Some be -> [ Backend.gemm ?cls be ~alpha ~beta ~trans_a ~trans_b a b c ]
    | None -> [ Linalg.gemm ~alpha ~beta ~trans_a ~trans_b a b c ])
  | Op.Conv { stride; pads; dilation; groups }, (x :: w :: rest) -> (
    let b = match rest with [ b ] -> Some b | _ -> None in
    match backend with
    | Some be -> [ Backend.conv2d ?cls be ~stride ~pad:pads ~dilation ~groups x w b ]
    | None -> [ Linalg.conv2d ~stride ~pad:pads ~dilation ~groups x w b ])
  | Op.Conv1d { stride1; pads1; dilation1; groups1 }, (x :: w :: rest) -> (
    let b = match rest with [ b ] -> Some b | _ -> None in
    match backend with
    | Some be ->
      [ Backend.conv1d ?cls be ~stride:stride1 ~pad:pads1 ~dilation:dilation1
          ~groups:groups1 x w b ]
    | None ->
      [ Linalg.conv1d ~stride:stride1 ~pad:pads1 ~dilation:dilation1 ~groups:groups1 x w b ])
  | Op.MaxPool { kernel; pool_stride; pool_pads }, [ x ] ->
    [ Linalg.max_pool2d ~kernel ~stride:pool_stride ~pad:pool_pads x ]
  | Op.AveragePool { kernel; pool_stride; pool_pads }, [ x ] ->
    [ Linalg.avg_pool2d ~kernel ~stride:pool_stride ~pad:pool_pads x ]
  | Op.GlobalAveragePool, [ x ] -> [ Linalg.global_avg_pool x ]
  | Op.BatchNorm { eps }, [ x; scale; bias; mean; var ] ->
    [ Reduction.batch_norm x ~scale ~bias ~mean ~var ~eps ]
  | Op.LayerNorm { eps }, [ x; gamma; beta ] -> [ Reduction.layer_norm x ~gamma ~beta ~eps ]
  | Op.GroupNorm { num_groups; eps }, [ x; gamma; beta ] ->
    [ Reduction.group_norm x ~groups:num_groups ~gamma ~beta ~eps ]
  | Op.InstanceNorm { eps }, [ x; gamma; beta ] ->
    (* instance norm = group norm with one group per channel *)
    let channels = List.nth (Tensor.dims x) 1 in
    [ Reduction.group_norm x ~groups:channels ~gamma ~beta ~eps ]
  | Op.Softmax { axis }, [ x ] -> [ Reduction.softmax x ~axis ]
  | Op.LogSoftmax { axis }, [ x ] -> [ Reduction.log_softmax x ~axis ]
  | Op.Reduce { rkind; axes; keepdims }, [ x ] ->
    [ Reduction.reduce (reduce_kind rkind) x ~axes ~keepdims ]
  | Op.ArgMax { axis; keepdims }, [ x ] -> [ Reduction.argmax x ~axis ~keepdims ]
  | Op.ArgMin { axis; keepdims }, [ x ] -> [ Reduction.argmin x ~axis ~keepdims ]
  | Op.CumSum { axis }, [ x ] -> [ Reduction.cumsum x ~axis ]
  | Op.Transpose perm, [ x ] -> [ Transform.transpose x perm ]
  | Op.Reshape, [ x; target ] -> [ Tensor.reshape x (resolve_reshape_dims x target) ]
  | Op.Flatten { axis }, [ x ] ->
    let d = Tensor.dims x in
    let r = List.length d in
    let axis = if axis < 0 then axis + r else axis in
    let pre = List.filteri (fun i _ -> i < axis) d |> List.fold_left ( * ) 1 in
    [ Tensor.reshape x [ pre; Tensor.numel x / max 1 pre ] ]
  | Op.Squeeze axes, [ x ] ->
    let d = Tensor.dims x in
    let r = List.length d in
    let axes = List.map (fun a -> if a < 0 then a + r else a) axes in
    [ Tensor.reshape x (List.filteri (fun i _ -> not (List.mem i axes)) d) ]
  | Op.Unsqueeze axes, [ x ] ->
    let r = Tensor.rank x + List.length axes in
    let axes = List.map (fun a -> if a < 0 then a + r else a) axes in
    let rec weave i src =
      if i >= r then []
      else if List.mem i axes then 1 :: weave (i + 1) src
      else
        match src with
        | d :: rest -> d :: weave (i + 1) rest
        | [] -> 1 :: weave (i + 1) []
    in
    [ Tensor.reshape x (weave 0 (Tensor.dims x)) ]
  | Op.Concat { axis }, (_ :: _ as xs) -> [ Transform.concat xs ~axis ]
  | Op.Split { axis; sizes }, [ x ] -> Transform.split x ~axis ~sizes
  | Op.Slice, [ x; starts; ends; axes; steps ] ->
    [
      Transform.slice x
        ~starts:(Tensor.to_int_list starts)
        ~ends:(Tensor.to_int_list ends)
        ~axes:(Tensor.to_int_list axes)
        ~steps:(Tensor.to_int_list steps)
        ();
    ]
  | Op.Gather { axis }, [ x; indices ] ->
    [ Transform.gather x ~indices:(Tensor.cast indices Tensor.I64) ~axis ]
  | Op.Pad { pad_value }, [ x; pads ] ->
    let r = Tensor.rank x in
    let p = Tensor.to_int_list pads in
    if List.length p <> 2 * r then arg_err op "pads must have rank*2 entries";
    [
      Transform.pad x
        ~before:(List.filteri (fun i _ -> i < r) p)
        ~after:(List.filteri (fun i _ -> i >= r) p)
        ~value:pad_value;
    ]
  | Op.Expand, [ x; target ] ->
    let t = Tensor.to_int_list target in
    let out = Tensor.broadcast_dims (Tensor.dims_arr x) (Array.of_list t) in
    [ Tensor.broadcast_to x (Array.to_list out) ]
  | Op.Tile, [ x; repeats ] -> [ Transform.tile x ~repeats:(Tensor.to_int_list repeats) ]
  | Op.Resize Op.Nearest, [ x; sizes ] ->
    [ Transform.resize_nearest x ~out_spatial:(Tensor.to_int_list sizes) ]
  | Op.Upsample { scales }, [ x ] ->
    let d = Tensor.dims x in
    let spatial = List.filteri (fun i _ -> i >= 2) d in
    let out = List.map2 (fun s sc -> s * sc) spatial scales in
    [ Transform.resize_nearest x ~out_spatial:out ]
  | Op.DepthToSpace { block }, [ x ] -> [ Transform.depth_to_space x ~block ]
  | Op.SpaceToDepth { block }, [ x ] -> [ Transform.space_to_depth x ~block ]
  | Op.ShapeOf, [ x ] -> [ Tensor.of_int_list (Tensor.dims x) ]
  | Op.SizeOf, [ x ] -> [ Tensor.scalar_i (Tensor.numel x) ]
  | Op.ConstantOfShape { fill }, [ shape ] ->
    [ Tensor.full_f (Tensor.to_int_list shape) fill ]
  | Op.EyeLike, [ x ] -> (
    match Tensor.dims x with
    | [ n; m ] -> [ Tensor.init_f [ n; m ] (fun ix -> if ix.(0) = ix.(1) then 1.0 else 0.0) ]
    | _ -> arg_err op "expects a 2-d input")
  | Op.Range, [ start; limit; delta ] ->
    let scalar t = List.hd (Tensor.to_int_list (Tensor.cast t Tensor.I64)) in
    [ Transform.range ~start:(scalar start) ~limit:(scalar limit) ~delta:(scalar delta) ]
  | Op.OneHot { depth }, [ indices ] ->
    [ Transform.one_hot (Tensor.cast indices Tensor.I64) ~depth ]
  | Op.TopK { axis; largest }, [ x; k ] ->
    let k = List.hd (Tensor.to_int_list (Tensor.cast k Tensor.I64)) in
    let values, indices = Reduction.top_k x ~k ~axis ~largest in
    [ values; indices ]
  | Op.NonZero, [ x ] -> [ Reduction.nonzero x ]
  | Op.NonMaxSuppression { max_out; iou_threshold }, [ boxes; scores ] ->
    (* Simplified single-class NMS on [n×4] boxes and [n] scores. *)
    let n = List.hd (Tensor.dims boxes) in
    let area i =
      let x1 = Tensor.get_f boxes [| i; 0 |] and y1 = Tensor.get_f boxes [| i; 1 |] in
      let x2 = Tensor.get_f boxes [| i; 2 |] and y2 = Tensor.get_f boxes [| i; 3 |] in
      Float.max 0.0 (x2 -. x1) *. Float.max 0.0 (y2 -. y1)
    in
    let iou i j =
      let x1 = Float.max (Tensor.get_f boxes [| i; 0 |]) (Tensor.get_f boxes [| j; 0 |]) in
      let y1 = Float.max (Tensor.get_f boxes [| i; 1 |]) (Tensor.get_f boxes [| j; 1 |]) in
      let x2 = Float.min (Tensor.get_f boxes [| i; 2 |]) (Tensor.get_f boxes [| j; 2 |]) in
      let y2 = Float.min (Tensor.get_f boxes [| i; 3 |]) (Tensor.get_f boxes [| j; 3 |]) in
      let inter = Float.max 0.0 (x2 -. x1) *. Float.max 0.0 (y2 -. y1) in
      let union = area i +. area j -. inter in
      if union <= 0.0 then 0.0 else inter /. union
    in
    let order = List.init n Fun.id in
    let order =
      List.sort (fun i j -> compare (Tensor.get_f scores [| j |]) (Tensor.get_f scores [| i |])) order
    in
    let kept = ref [] in
    List.iter
      (fun i ->
        if List.length !kept < max_out
           && List.for_all (fun j -> iou i j < iou_threshold) !kept
        then kept := i :: !kept)
      order;
    let kept = List.rev !kept in
    [
      Tensor.create_i
        [ List.length kept; 3 ]
        (Array.of_list (List.concat_map (fun i -> [ 0; 0; i ]) kept));
    ]
  | (Op.If | Op.Loop), _ ->
    Sod2_error.failf ~op:(Op.name op) Sod2_error.Unsupported
      "Kernels.run: %s requires sub-graph support" (Op.name op)
  | (Op.Switch _ | Op.Combine _), _ ->
    Sod2_error.failf ~op:(Op.name op) Sod2_error.Unsupported
      "Kernels.run: control flow is routed by the executor, not evaluated as a kernel"
  | _, _ -> arg_err op (Printf.sprintf "arity %d not supported" (List.length inputs))

(* ------------------------------------------------------------------ *)
(* Destination-passing execution (arena runtime)                       *)

module BA1 = Bigarray.Array1

let view_dims_arr (v : Tensor.view) = Array.of_list v.Tensor.vdims

(* Destination kernels chunk large same-shape loops over the backend's
   domain pool — the boxed fallbacks get the same treatment from
   [Backend.map_f]/[map2], so memory mode never changes the parallelism. *)
let into_grain = 16_384

(* Broadcast-aware binary loop over views, writing into [dst] at [doff].
   Same index arithmetic as [Tensor.map2], plus source/destination base
   offsets.  The same-shape uniform-kind path dispatches once on the
   operator and buffer kinds and runs a direct-operator monomorphic loop
   for the four arithmetic ops: a kind-polymorphic bigarray access is a C
   call the compiler cannot inline, worth ~5x on this loop, and
   Add/Sub/Mul/Div dominate the pointwise traffic of streaming workloads.
   The float semantics are identical — [float_binary_fn] maps them to the
   same ( +. ) etc., and the destination store is the single f32 rounding
   point, exactly like [Tensor.map2]'s output store. *)
let binary_into ~chunked (b : Op.binary) (x : Tensor.view) (y : Tensor.view)
    (dst : Tensor.fbuf) doff =
  let dx = view_dims_arr x and dy = view_dims_arr y in
  let od = Tensor.broadcast_dims dx dy in
  let n = Array.fold_left ( * ) 1 od in
  let ox = x.Tensor.voff and oy = y.Tensor.voff in
  if dx = od && dy = od then begin
    match x.Tensor.vbuf, y.Tensor.vbuf, dst with
    | Tensor.FB32 bx, Tensor.FB32 by, Tensor.FB32 d ->
      chunked n
        (match b with
        | Op.Add ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) +. BA1.unsafe_get by (oy + i))
            done
        | Op.Sub ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) -. BA1.unsafe_get by (oy + i))
            done
        | Op.Mul ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) *. BA1.unsafe_get by (oy + i))
            done
        | Op.Div ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) /. BA1.unsafe_get by (oy + i))
            done
        | _ ->
          let f = float_binary_fn b in
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (f (BA1.unsafe_get bx (ox + i)) (BA1.unsafe_get by (oy + i)))
            done)
    | Tensor.FB64 bx, Tensor.FB64 by, Tensor.FB64 d ->
      chunked n
        (match b with
        | Op.Add ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) +. BA1.unsafe_get by (oy + i))
            done
        | Op.Sub ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) -. BA1.unsafe_get by (oy + i))
            done
        | Op.Mul ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) *. BA1.unsafe_get by (oy + i))
            done
        | Op.Div ->
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (BA1.unsafe_get bx (ox + i) /. BA1.unsafe_get by (oy + i))
            done
        | _ ->
          let f = float_binary_fn b in
          fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (doff + i)
                (f (BA1.unsafe_get bx (ox + i)) (BA1.unsafe_get by (oy + i)))
            done)
    | bx, by, d ->
      (* Mixed kinds (arena f32 against an f64 constant, say): cold path. *)
      let f = float_binary_fn b in
      chunked n (fun lo hi ->
          for i = lo to hi do
            Tensor.fbuf_set d (doff + i)
              (f (Tensor.fbuf_get bx (ox + i)) (Tensor.fbuf_get by (oy + i)))
          done)
  end
  else begin
    let f = float_binary_fn b in
    let bx = x.Tensor.vbuf and by = y.Tensor.vbuf in
    (* Right-aligned stride tables (stride 0 on broadcast axes). *)
    let r = Array.length od in
    let stride_of src =
      let rs = Array.length src in
      let s = Array.make r 0 in
      let acc = ref 1 in
      for i = rs - 1 downto 0 do
        s.(i + (r - rs)) <- (if src.(i) = 1 then 0 else !acc);
        acc := !acc * src.(i)
      done;
      s
    in
    let sx = stride_of dx and sy = stride_of dy in
    let offset s i =
      let off = ref 0 and rem = ref i in
      for d = r - 1 downto 0 do
        let q = !rem mod od.(d) in
        rem := !rem / od.(d);
        off := !off + (q * s.(d))
      done;
      !off
    in
    for i = 0 to n - 1 do
      Tensor.fbuf_set dst (doff + i)
        (f (Tensor.fbuf_get bx (ox + offset sx i))
           (Tensor.fbuf_get by (oy + offset sy i)))
    done
  end;
  Array.to_list od

let run_into ?backend ?cls (op : Op.t) (inputs : Tensor.view list)
    ~(c : Tensor.fbuf) ~(co : int) ~(cap : int) : int list option =
  let fits dims = List.fold_left ( * ) 1 dims = cap in
  let par =
    match backend with Some be -> Backend.par_of be | None -> Blocked.sequential
  in
  let chunked n body =
    if n >= 2 * into_grain then
      par.Blocked.run
        ((n + into_grain - 1) / into_grain)
        (fun ci ->
          let lo = ci * into_grain in
          body lo (min n (lo + into_grain) - 1))
    else if n > 0 then body 0 (n - 1)
  in
  (* [f] computes in double precision; the destination store rounds for
     f32 buffers — same single rounding as the boxed [Tensor.map_f]. *)
  let pointwise f (x : Tensor.view) =
    if not (fits x.Tensor.vdims) then None
    else begin
      let o = x.Tensor.voff in
      (match x.Tensor.vbuf, c with
      | Tensor.FB32 b, Tensor.FB32 d ->
        chunked cap (fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (co + i) (f (BA1.unsafe_get b (o + i)))
            done)
      | Tensor.FB64 b, Tensor.FB64 d ->
        chunked cap (fun lo hi ->
            for i = lo to hi do
              BA1.unsafe_set d (co + i) (f (BA1.unsafe_get b (o + i)))
            done)
      | b, d ->
        chunked cap (fun lo hi ->
            for i = lo to hi do
              Tensor.fbuf_set d (co + i) (f (Tensor.fbuf_get b (o + i)))
            done));
      Some x.Tensor.vdims
    end
  in
  match op, inputs with
  | Op.Unary Op.Relu, [ x ] ->
    (* Same direct-loop treatment as the binary arithmetic fast path;
       [Float.max 0.0 v] matches [unary_fn Relu] bit-for-bit. *)
    pointwise (fun v -> Float.max 0.0 v) x
  | Op.Unary u, [ x ] -> pointwise (unary_fn u) x
  | Op.Clip (lo, hi), [ x ] -> pointwise (fun v -> Float.min hi (Float.max lo v)) x
  | Op.Binary b, [ x; y ] ->
    let od = Tensor.broadcast_dims (view_dims_arr x) (view_dims_arr y) in
    if not (fits (Array.to_list od)) then None
    else Some (binary_into ~chunked b x y c co)
  | Op.BatchNorm { eps }, [ x; scale; bias; mean; var ] -> (
    match x.Tensor.vdims with
    | _ :: ch :: _ when fits x.Tensor.vdims
                        && Tensor.view_numel scale = ch
                        && Tensor.view_numel bias = ch
                        && Tensor.view_numel mean = ch
                        && Tensor.view_numel var = ch ->
      let sp =
        List.fold_left ( * ) 1 (match x.Tensor.vdims with _ :: _ :: rest -> rest | _ -> [])
      in
      let o = x.Tensor.voff in
      let gv (v : Tensor.view) =
        let off = v.Tensor.voff in
        match v.Tensor.vbuf with
        | Tensor.FB32 b -> fun i -> BA1.unsafe_get b (off + i)
        | Tensor.FB64 b -> fun i -> BA1.unsafe_get b (off + i)
      in
      let sv = gv scale and bv = gv bias and mv = gv mean and vv = gv var in
      (* [Reduction.batch_norm] is a chain of four [map2]s, each of which
         stores — and under f32 rounds — its intermediate.  The direct loop
         mirrors that exactly: per-step rounding when every operand and the
         destination are f32, one plain double-precision chain (store
         exact) under f64. *)
      let all_f32 =
        Tensor.fbuf_dtype c = Tensor.F32
        && List.for_all
             (fun (v : Tensor.view) -> Tensor.view_dtype v = Tensor.F32)
             [ x; scale; bias; mean; var ]
      in
      (match x.Tensor.vbuf, c with
      | Tensor.FB32 b, Tensor.FB32 d when all_f32 ->
        let r = Tensor.round_f32 in
        for i = 0 to cap - 1 do
          let chn = i / sp mod ch in
          BA1.unsafe_set d (co + i)
            (r (r (r (BA1.unsafe_get b (o + i) -. mv chn) /. sqrt (vv chn +. eps))
               *. sv chn)
            +. bv chn)
        done
      | bsrc, d ->
        for i = 0 to cap - 1 do
          let chn = i / sp mod ch in
          Tensor.fbuf_set d (co + i)
            (((Tensor.fbuf_get bsrc (o + i) -. mv chn) /. sqrt (vv chn +. eps)
             *. sv chn)
            +. bv chn)
        done);
      Some x.Tensor.vdims
    | _ -> None)
  | Op.MatMul, [ a; b ] -> (
    match Linalg.matmul_out_dims a.Tensor.vdims b.Tensor.vdims with
    | exception Invalid_argument _ -> None
    | od when fits od -> (
      match backend with
      | Some be -> Some (Backend.matmul_into ?cls be a b ~c ~co)
      | None -> Some (Linalg.matmul_into a b ~c ~co))
    | _ -> None)
  | Op.Conv { stride; pads; dilation; groups }, (x :: w :: rest) -> (
    let b = match rest with [ b ] -> Some b | _ -> None in
    match x.Tensor.vdims, w.Tensor.vdims with
    | [ n; _; h; wd ], [ m; _; kh; kw ] ->
      let sh, sw = stride and dh, dw_ = dilation in
      let pt, pl, pb, pr = pads in
      let oh =
        Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
          ~dilation:dh
      in
      let ow =
        Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr
          ~dilation:dw_
      in
      if not (fits [ n; m; oh; ow ]) then None
      else (
        match backend with
        | Some be ->
          Some
            (Backend.conv2d_into ?cls be ~stride ~pad:pads ~dilation ~groups x w b ~c
               ~co)
        | None ->
          Some (Linalg.conv2d_into ~stride ~pad:pads ~dilation ~groups x w b ~c ~co))
    | _ -> None)
  | _ -> None
