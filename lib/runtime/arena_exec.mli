(** Arena-backed execution: interpret a compiled model with every
    statically-planned float tensor living at its {!Mem_plan} offset inside
    one linear buffer, exactly as the mobile runtime the paper targets
    would.

    Because offsets are reused across lifetimes, an incorrect memory plan
    (overlapping a tensor that is still live) silently corrupts values —
    so running a model through this executor and comparing its outputs
    against the table-based {!Executor.run_real} is an end-to-end proof
    that the plan's lifetime analysis and placement are sound, not merely
    that the {!Mem_plan.validate} invariant checker is happy.

    Integer tensors, execution-determined (dynamically sized) tensors and
    fusion-internal temporaries are kept out of the arena (side tables /
    transient), mirroring the real runtime's treatment. *)

type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;  (** size of the linear buffer that was used *)
  arena_resident : int;  (** tensors that lived in the arena *)
}

val run :
  Pipeline.compiled -> env:Env.t -> inputs:(Graph.tensor_id * Tensor.t) list ->
  result
(** Execute with the memory plan instantiated for [env] (which must bind
    the model's shape variables consistently with [inputs]).  Raises
    [Sod2_error.Error] (class [Shape_mismatch]) if a planned tensor's
    actual extent disagrees with the plan, and (class [Plan_violation]) if
    an allocation falls outside the arena or a required tensor never became
    available.  For the variant that degrades gracefully instead of
    raising, see {!Guarded_exec}. *)
