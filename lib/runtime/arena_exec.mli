(** Arena-backed execution: interpret a compiled model with every
    statically-planned float tensor living at its {!Mem_plan} offset inside
    one linear buffer, exactly as the mobile runtime the paper targets
    would.

    This is a thin wrapper over {!Executor.run_real} in [Arena] memory mode
    with RDP dims cross-checking on: destination-passing kernels write
    results straight into their planned slots, the plan itself comes from
    the per-binding symbolic-plan cache ({!Pipeline.instantiated_plan} — no
    replanning after the first inference per binding), and the buffer is a
    grow-only {!Arena.t} reused across calls when the caller passes one.

    Because offsets are reused across lifetimes, an incorrect memory plan
    (overlapping a tensor that is still live) silently corrupts values —
    so running a model through this executor and comparing its outputs
    against the malloc-mode {!Executor.run_real} is an end-to-end proof
    that the plan's lifetime analysis and placement are sound, not merely
    that the {!Mem_plan.validate} invariant checker is happy.

    Integer tensors, execution-determined (dynamically sized) tensors and
    fusion-internal temporaries are kept out of the arena (side tables /
    transient), mirroring the real runtime's treatment. *)

type result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;  (** size of the linear buffer that was used *)
  arena_resident : int;  (** tensors that lived in the arena *)
}

val run :
  ?backend:Backend.t -> ?arena:Arena.t -> Pipeline.compiled -> env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list -> result
(** Execute with the memory plan instantiated for [env] (which must bind
    the model's shape variables consistently with [inputs]).  [backend]
    composes freely with the arena (blocked/parallel/fused kernels write
    into slots through their destination entry points).  [arena] supplies a
    persistent buffer for steady-state reuse; omitted, a fresh one is
    created for the call.  Raises [Sod2_error.Error] (class
    [Shape_mismatch]) if an executed extent disagrees with the RDP
    prediction under [env].  For the variant that degrades gracefully
    instead of raising, see {!Guarded_exec}. *)
