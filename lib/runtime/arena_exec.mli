(** @deprecated Thin alias kept for source compatibility — arena execution
    lives on the {!Engine} facade now.

    [Arena_exec.run] is {!Engine.run_arena} (one synchronous arena
    inference with fail-fast RDP cross-checking) and {!result} is
    {!Engine.arena_result}.  New code should call {!Engine.run_arena}
    directly, or use a resident {!Engine.t} with
    [config.memory = Mem_arena] for concurrent serving. *)

type result = Engine.arena_result = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  arena_bytes : int;  (** size of the linear buffer that was used *)
  arena_resident : int;  (** tensors that lived in the arena *)
}

val run :
  ?backend:Backend.t -> ?arena:Arena.t -> Pipeline.compiled -> env:Env.t ->
  inputs:(Graph.tensor_id * Tensor.t) list -> result
(** Alias of {!Engine.run_arena}. *)
