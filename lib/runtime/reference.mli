(** Reference topological interpreter.

    Executes a graph directly — no fusion, no execution plan, no arena:
    nodes run in insertion (topological) order, every tensor is boxed, and
    [<Switch, Combine>] routes the selected branch only.  This is the
    ground truth the guarded executor ({!Guarded_exec}) demotes to when a
    runtime guard fires, and the oracle the fault-injection tests compare
    against: it depends on nothing the optimizer produced, so a corrupted
    plan cannot corrupt it. *)

val run :
  Graph.t -> inputs:(Graph.tensor_id * Tensor.t) list ->
  (Graph.tensor_id * Tensor.t) list
(** Interpret the graph on the given input tensors and return the graph
    output tensors.  Raises [Sod2_error.Error] (class [Plan_violation])
    when a graph output was never produced — e.g. a malformed graph whose
    selected branch never reaches the output. *)
