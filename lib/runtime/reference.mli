(** Reference topological interpreter.

    Executes a graph directly — no fusion, no execution plan, no arena:
    nodes run in insertion (topological) order, every tensor is boxed, and
    [<Switch, Combine>] routes the selected branch only.  This is the
    ground truth the guarded executor ({!Guarded_exec}) demotes to when a
    runtime guard fires, and the oracle the fault-injection tests compare
    against: it depends on nothing the optimizer produced, so a corrupted
    plan cannot corrupt it. *)

(** {1 Scalar int8 reference}

    An independent transcription of the gemmlowp requantization spec and
    direct zero-point-subtracting loop nests — written without {!Quant}
    or [Blocked], so the qcheck bit-exactness suites compare two
    genuinely separate derivations of the quantized math. *)

val requantize : qm:int -> shift:int -> zp:int -> int -> int
(** int32 accumulator → int8 value: fixed-point multiply by
    [qm · 2^(shift-31)] (saturating-rounding-doubling high-mul, then
    rounding divide by power of two), add [zp], clamp to [[-128, 127]]. *)

val gemm_i8_acc :
  za:int -> zb:int -> m:int -> n:int -> k:int -> Tensor.t -> Tensor.t ->
  int array
(** Row-major corrected accumulators of the quantized product of two
    {!Tensor.I8} tensors: [acc(i,j) = Σ_p (a(i,p)-za)·(b(p,j)-zb)]. *)

val conv2d_i8_acc :
  zx:int -> zw:int -> stride:int * int -> pad:int * int * int * int ->
  dilation:int * int -> groups:int -> Tensor.t -> Tensor.t ->
  int array * int list
(** Direct quantized NCHW/OIHW convolution accumulators plus the output
    dims [N;M;Oh;Ow]; out-of-image taps contribute zero (zero-point
    padding semantics). *)

val run :
  Graph.t -> inputs:(Graph.tensor_id * Tensor.t) list ->
  (Graph.tensor_id * Tensor.t) list
(** Interpret the graph on the given input tensors and return the graph
    output tensors.  Raises [Sod2_error.Error] (class [Plan_violation])
    when a graph output was never produced — e.g. a malformed graph whose
    selected branch never reaches the output. *)
