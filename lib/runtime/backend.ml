type kind =
  | Naive
  | Blocked
  | Parallel

let kind_name = function Naive -> "naive" | Blocked -> "blocked" | Parallel -> "parallel"

let kind_of_string = function
  | "naive" -> Some Naive
  | "blocked" -> Some Blocked
  | "parallel" -> Some Parallel
  | _ -> None

type t = {
  kind : kind;
  versions : Multi_version.table;
  pool : Domain_pool.t option;
}

let create ?(versions = Multi_version.untuned) ?threads kind =
  let pool =
    match kind with
    | Parallel ->
      let n =
        match threads with Some n -> n | None -> Domain.recommended_domain_count ()
      in
      Some (Domain_pool.create n)
    | Naive | Blocked -> None
  in
  { kind; versions; pool }

let for_compiled kind (c : Pipeline.compiled) =
  create ~versions:c.Pipeline.versions ~threads:c.Pipeline.profile.Profile.cores kind

let kind_of t = t.kind
let pool_size t = match t.pool with Some p -> Domain_pool.size p | None -> 1
let shutdown t = Option.iter Domain_pool.shutdown t.pool

let par_of t =
  match t.pool with Some p -> Domain_pool.par p | None -> Sod2_tensor.Blocked.sequential

let tiles_for t cls =
  let cfg = Multi_version.config_for t.versions cls in
  Sod2_tensor.Blocked.tiles_of ~tile_m:cfg.Autotune.tile_m ~tile_n:cfg.Autotune.tile_n
    ~tile_k:cfg.Autotune.tile_k ~unroll:cfg.Autotune.unroll

(* One GEMM call site: the static class (from compile-time RDP resolution)
   wins when present; otherwise the observed extents classify the problem.
   Tiny problems always take the naive reference loop — packing would cost
   more than the whole product. *)
let gemm_kernel ?cls t : Linalg.gemm_kernel =
 fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
  let cls = match cls with Some c -> c | None -> Multi_version.classify_gemm ~m ~n ~k in
  match t.kind, cls with
  | Naive, _ | _, Multi_version.Tiny ->
    Linalg.naive_kernel ~m ~n ~k ~a ~ao ~b ~bo ~c ~co
  | (Blocked | Parallel), _ ->
    Sod2_tensor.Blocked.gemm ~par:(par_of t) ~tiles:(tiles_for t cls) ~m ~n ~k ~a ~ao ~b
      ~bo ~c ~co ()

let matmul ?cls t a b =
  match t.kind with
  | Naive -> Linalg.matmul a b
  | Blocked | Parallel -> Linalg.matmul ~inner:(gemm_kernel ?cls t) a b

let gemm ?cls t ~alpha ~beta ~trans_a ~trans_b a b c =
  match t.kind with
  | Naive -> Linalg.gemm ~alpha ~beta ~trans_a ~trans_b a b c
  | Blocked | Parallel ->
    Linalg.gemm ~inner:(gemm_kernel ?cls t) ~alpha ~beta ~trans_a ~trans_b a b c

let conv_class ?cls ~stride ~pad ~dilation x w =
  match cls with
  | Some c -> c
  | None ->
    let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
    let sh, sw = stride and dh, dw_ = dilation in
    let pt, pl, pb, pr = pad in
    let oh =
      Linalg.conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt
        ~pad_end:pb ~dilation:dh
    in
    let ow =
      Linalg.conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl
        ~pad_end:pr ~dilation:dw_
    in
    Multi_version.classify_gemm ~m:dw.(0) ~n:(dx.(0) * oh * ow)
      ~k:(dw.(1) * dw.(2) * dw.(3))

let conv2d ?cls t ~stride ~pad ~dilation ~groups x w b =
  match t.kind with
  | Naive -> Linalg.conv2d ~stride ~pad ~dilation ~groups x w b
  | Blocked | Parallel -> (
    match conv_class ?cls ~stride ~pad ~dilation x w with
    | Multi_version.Tiny -> Linalg.conv2d ~stride ~pad ~dilation ~groups x w b
    | c ->
      Sod2_tensor.Blocked.conv2d_im2col ~par:(par_of t) ~tiles:(tiles_for t c) ~stride
        ~pad ~dilation ~groups x w b)

let conv1d ?cls t ~stride ~pad ~dilation ~groups x w b =
  match t.kind with
  | Naive -> Linalg.conv1d ~stride ~pad ~dilation ~groups x w b
  | Blocked | Parallel -> (
    (* Same unit-height lowering as {!Linalg.conv1d}, but through the
       backend's conv2d so the blocked path applies. *)
    match Tensor.dims x, Tensor.dims w with
    | [ n; c; l ], [ m; cg; k ] ->
      let x' = Tensor.reshape x [ n; c; 1; l ] in
      let w' = Tensor.reshape w [ m; cg; 1; k ] in
      let pl, pr = pad in
      let out =
        conv2d ?cls t ~stride:(1, stride) ~pad:(0, pl, 0, pr) ~dilation:(1, dilation)
          ~groups x' w' b
      in
      (match Tensor.dims out with
      | [ n'; m'; 1; ol ] -> Tensor.reshape out [ n'; m'; ol ]
      | _ -> assert false)
    | _ -> Linalg.conv1d ~stride ~pad ~dilation ~groups x w b)

(* Data-parallel elementwise maps.  Only same-shape float tensors above the
   grain size go through the pool; everything else falls back to the
   sequential {!Tensor} maps (which also own the broadcast/int cases). *)
let grain = 16_384

let map_f t f x =
  match t.pool with
  | Some pool
    when Domain_pool.size pool > 1
         && Tensor.dtype x = Tensor.F32
         && Tensor.numel x >= 2 * grain ->
    let src = Tensor.data_f x in
    let len = Array.length src in
    let out = Tensor.zeros Tensor.F32 (Tensor.dims x) in
    let dst = Tensor.data_f out in
    let chunks = (len + grain - 1) / grain in
    Domain_pool.run pool chunks (fun ci ->
        let lo = ci * grain in
        let hi = min len (lo + grain) in
        for i = lo to hi - 1 do
          Array.unsafe_set dst i (f (Array.unsafe_get src i))
        done);
    out
  | _ -> Tensor.map_f f x

let map2 t f x y =
  match t.pool with
  | Some pool
    when Domain_pool.size pool > 1
         && Tensor.dtype x = Tensor.F32
         && Tensor.dtype y = Tensor.F32
         && Tensor.dims x = Tensor.dims y
         && Tensor.numel x >= 2 * grain ->
    let sx = Tensor.data_f x and sy = Tensor.data_f y in
    let len = Array.length sx in
    let out = Tensor.zeros Tensor.F32 (Tensor.dims x) in
    let dst = Tensor.data_f out in
    let chunks = (len + grain - 1) / grain in
    Domain_pool.run pool chunks (fun ci ->
        let lo = ci * grain in
        let hi = min len (lo + grain) in
        for i = lo to hi - 1 do
          Array.unsafe_set dst i (f (Array.unsafe_get sx i) (Array.unsafe_get sy i))
        done);
    out
  | _ -> Tensor.map2 f x y
