type kind =
  | Naive
  | Blocked
  | Parallel
  | Fused

let kind_name = function
  | Naive -> "naive"
  | Blocked -> "blocked"
  | Parallel -> "parallel"
  | Fused -> "fused"

let kind_of_string = function
  | "naive" -> Some Naive
  | "blocked" -> Some Blocked
  | "parallel" -> Some Parallel
  | "fused" -> Some Fused
  | _ -> None

(* One specialized fused kernel per (group × concrete shape tuple).
   [fe_kernel = None] caches a specialization failure so the op-by-op
   fallback is taken without recompiling every sample.  The template is
   kept for a physical-identity check: a backend reused across compiled
   artifacts must never run another graph's kernel. *)
type fused_entry = {
  fe_tpl : Fused_compile.template;
  fe_kernel : Fused_compile.kernel option;
}

type t = {
  kind : kind;
  mutable versions : Multi_version.table;
      (* swapped atomically (single pointer write) by the engine's drift
         re-tuner; every kernel call site reads it at most once *)
  pool : Domain_pool.t option;
  profile_name : string;
  fused_cache : (int * (int list * Tensor.dtype) list, fused_entry) Hashtbl.t;
  fused_variants : (int, int) Hashtbl.t;  (* gid -> cached variant count *)
  mutable fused_hits : int;
  mutable fused_misses : int;
  mutable fused_rejects : int;
}

let create ?(versions = Multi_version.untuned) ?threads ?(profile = "unprofiled") kind =
  let pool =
    match kind with
    | Parallel | Fused ->
      let n =
        match threads with Some n -> n | None -> Domain.recommended_domain_count ()
      in
      Some (Domain_pool.create n)
    | Naive | Blocked -> None
  in
  {
    kind;
    versions;
    pool;
    profile_name = profile;
    fused_cache = Hashtbl.create 32;
    fused_variants = Hashtbl.create 8;
    fused_hits = 0;
    fused_misses = 0;
    fused_rejects = 0;
  }

let for_compiled kind (c : Pipeline.compiled) =
  create ~versions:c.Pipeline.versions ~threads:c.Pipeline.profile.Profile.cores
    ~profile:c.Pipeline.profile.Profile.name kind

let kind_of t = t.kind
let versions t = t.versions
let set_versions t v = t.versions <- v
let pool_size t = match t.pool with Some p -> Domain_pool.size p | None -> 1
let shutdown t = Option.iter Domain_pool.shutdown t.pool

let par_of t =
  match t.pool with Some p -> Domain_pool.par p | None -> Sod2_tensor.Blocked.sequential

let tiles_for t cls =
  let cfg = Multi_version.config_for t.versions cls in
  Sod2_tensor.Blocked.tiles_of ~tile_m:cfg.Autotune.tile_m ~tile_n:cfg.Autotune.tile_n
    ~tile_k:cfg.Autotune.tile_k ~unroll:cfg.Autotune.unroll

(* One GEMM call site: the static class (from compile-time RDP resolution)
   wins when present; otherwise the observed extents classify the problem.
   Tiny problems always take the naive reference loop — packing would cost
   more than the whole product. *)
let gemm_kernel ?cls t : Linalg.gemm_kernel =
 fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
  let cls = match cls with Some c -> c | None -> Multi_version.classify_gemm ~m ~n ~k in
  match t.kind, cls with
  | Naive, _ | _, Multi_version.Tiny ->
    Linalg.naive_kernel ~m ~n ~k ~a ~ao ~b ~bo ~c ~co
  | (Blocked | Parallel | Fused), _ ->
    Sod2_tensor.Blocked.gemm ~par:(par_of t) ~tiles:(tiles_for t cls) ~m ~n ~k ~a ~ao ~b
      ~bo ~c ~co ()

let matmul ?cls t a b =
  match t.kind with
  | Naive -> Linalg.matmul a b
  | Blocked | Parallel | Fused -> Linalg.matmul ~inner:(gemm_kernel ?cls t) a b

let matmul_into ?cls t va vb ~c ~co =
  match t.kind with
  | Naive -> Linalg.matmul_into va vb ~c ~co
  | Blocked | Parallel | Fused ->
    Linalg.matmul_into ~inner:(gemm_kernel ?cls t) va vb ~c ~co

let gemm ?cls t ~alpha ~beta ~trans_a ~trans_b a b c =
  match t.kind with
  | Naive -> Linalg.gemm ~alpha ~beta ~trans_a ~trans_b a b c
  | Blocked | Parallel | Fused ->
    Linalg.gemm ~inner:(gemm_kernel ?cls t) ~alpha ~beta ~trans_a ~trans_b a b c

let conv_class ?cls ~stride ~pad ~dilation x w =
  match cls with
  | Some c -> c
  | None ->
    let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
    let sh, sw = stride and dh, dw_ = dilation in
    let pt, pl, pb, pr = pad in
    let oh =
      Linalg.conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt
        ~pad_end:pb ~dilation:dh
    in
    let ow =
      Linalg.conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl
        ~pad_end:pr ~dilation:dw_
    in
    Multi_version.classify_gemm ~m:dw.(0) ~n:(dx.(0) * oh * ow)
      ~k:(dw.(1) * dw.(2) * dw.(3))

let conv2d ?cls t ~stride ~pad ~dilation ~groups x w b =
  match t.kind with
  | Naive -> Linalg.conv2d ~stride ~pad ~dilation ~groups x w b
  | Blocked | Parallel | Fused -> (
    match conv_class ?cls ~stride ~pad ~dilation x w with
    | Multi_version.Tiny -> Linalg.conv2d ~stride ~pad ~dilation ~groups x w b
    | c ->
      Sod2_tensor.Blocked.conv2d_im2col ~par:(par_of t) ~tiles:(tiles_for t c) ~stride
        ~pad ~dilation ~groups x w b)

let conv2d_into ?cls t ~stride ~pad ~dilation ~groups vx vw vb ~c ~co =
  match t.kind with
  | Naive -> Linalg.conv2d_into ~stride ~pad ~dilation ~groups vx vw vb ~c ~co
  | Blocked | Parallel | Fused -> (
    let dx = Array.of_list vx.Tensor.vdims and dw = Array.of_list vw.Tensor.vdims in
    let cl =
      match cls with
      | Some cl -> cl
      | None ->
        let sh, sw = stride and dh, dw_ = dilation in
        let pt, pl, pb, pr = pad in
        let oh =
          Linalg.conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt
            ~pad_end:pb ~dilation:dh
        in
        let ow =
          Linalg.conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl
            ~pad_end:pr ~dilation:dw_
        in
        Multi_version.classify_gemm ~m:dw.(0) ~n:(dx.(0) * oh * ow)
          ~k:(dw.(1) * dw.(2) * dw.(3))
    in
    match cl with
    | Multi_version.Tiny ->
      Linalg.conv2d_into ~stride ~pad ~dilation ~groups vx vw vb ~c ~co
    | cl ->
      Sod2_tensor.Blocked.conv2d_im2col_into ~par:(par_of t) ~tiles:(tiles_for t cl)
        ~stride ~pad ~dilation ~groups vx vw vb ~c ~co)

let conv1d ?cls t ~stride ~pad ~dilation ~groups x w b =
  match t.kind with
  | Naive -> Linalg.conv1d ~stride ~pad ~dilation ~groups x w b
  | Blocked | Parallel | Fused -> (
    (* Same unit-height lowering as {!Linalg.conv1d}, but through the
       backend's conv2d so the blocked path applies. *)
    match Tensor.dims x, Tensor.dims w with
    | [ n; c; l ], [ m; cg; k ] ->
      let x' = Tensor.reshape x [ n; c; 1; l ] in
      let w' = Tensor.reshape w [ m; cg; 1; k ] in
      let pl, pr = pad in
      let out =
        conv2d ?cls t ~stride:(1, stride) ~pad:(0, pl, 0, pr) ~dilation:(1, dilation)
          ~groups x' w' b
      in
      (match Tensor.dims out with
      | [ n'; m'; 1; ol ] -> Tensor.reshape out [ n'; m'; ol ]
      | _ -> assert false)
    | _ -> Linalg.conv1d ~stride ~pad ~dilation ~groups x w b)

(* ------------------------------------------------------------------ *)
(* Int8 weight-quantized execution (dynamic-range quantization)        *)

(* The activation side of the TFLite dynamic-range recipe: calibrate and
   quantize the float activation per-tensor (asymmetric) at call time.
   Weights arrive already quantized from {!Pipeline.compile ~quant}. *)
let dyn_quant_activation x =
  let scheme = Quant.choose_per_tensor ~symmetric:false x in
  let qx = Quant.quantize x scheme in
  Quant.scale_of scheme, Quant.zero_point_of scheme, qx.Quant.q

(* [matmul_q8_into t x qw ~c ~co] writes the dequantized product of the
   2-D float activation [x] and the int8 weight payload [qw] into the
   float buffer [c] at element offset [co], returning the output dims.
   The int8 GEMM's epilogue folds the scale product into the micro-tile
   write-back, so no int32 intermediate is materialized and the result
   composes with the float arena exactly like any other dest-passing
   kernel.  Every output element is overwritten — no zero-init needed. *)
let matmul_q8_into ?cls t x (qw : Quant.qtensor) ~c ~co =
  match Tensor.dims x, Tensor.dims qw.Quant.q with
  | [ m; k ], [ k'; n ] when k = k' && k > 0 ->
    let sx, zx, qa = dyn_quant_activation x in
    let sw = Quant.scale_of qw.Quant.qscheme in
    let scale = sx *. sw in
    let cls = match cls with Some c -> c | None -> Multi_version.classify_gemm ~m ~n ~k in
    Sod2_tensor.Blocked.gemm_i8_dequant ~par:(par_of t) ~tiles:(tiles_for t cls)
      ~za:zx ~zb:0
      ~epilogue:(fun _ acc -> float_of_int acc *. scale)
      ~ep_off:co ~m ~n ~k ~a:(Tensor.storage_i8 qa) ~ao:0
      ~b:(Tensor.storage_i8 qw.Quant.q) ~bo:0 ~c ~co ();
    [ m; n ]
  | _ ->
    Sod2_error.failf ~op:"MatMul" Sod2_error.Shape_mismatch
      "Backend.matmul_q8: expects float x [m;k] against int8 weight [k;n]"

let matmul_q8 ?cls t x qw =
  let fdt = if Tensor.dtype x = Tensor.F64 then Tensor.F64 else Tensor.F32 in
  match Tensor.dims x, Tensor.dims qw.Quant.q with
  | [ m; _ ], [ _; n ] ->
    let buf = Tensor.fbuf_create fdt (m * n) in
    let dims = matmul_q8_into ?cls t x qw ~c:buf ~co:0 in
    Tensor.of_fbuf dims buf
  | _ ->
    Sod2_error.failf ~op:"MatMul" Sod2_error.Shape_mismatch
      "Backend.matmul_q8: expects float x [m;k] against int8 weight [k;n]"

(* Quantized NCHW convolution into a float destination.  Per-channel
   weight scales (and the float bias, when present) are folded into the
   dequantization epilogue: the output-channel index of element [ei] is
   [ei / (oh·ow) mod m] because [ep_off] makes epilogue indices
   output-relative. *)
let conv2d_q8_into ?cls t ~stride ~pad ~dilation ~groups x (qw : Quant.qtensor) bias
    ~c ~co =
  match Tensor.dims x, Tensor.dims qw.Quant.q with
  | [ n; ch; h; w ], [ m; cg; kh; kw ] ->
    let sx, zx, qa = dyn_quant_activation x in
    let wscales = Quant.channel_scales qw.Quant.qscheme in
    let sh, sw_ = stride and dh, dw_ = dilation in
    let pt, pl, pb, pr = pad in
    let oh =
      Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
        ~dilation:dh
    in
    let ow =
      Linalg.conv2d_out_dim ~in_:w ~kernel:kw ~stride:sw_ ~pad_begin:pl ~pad_end:pr
        ~dilation:dw_
    in
    let sp = oh * ow in
    let chscale =
      if Array.length wscales = 1 then
        let s = sx *. wscales.(0) in
        fun _ -> s
      else fun chn -> sx *. Array.unsafe_get wscales chn
    in
    let epilogue =
      match bias with
      | None -> fun ei acc -> float_of_int acc *. chscale (ei / sp mod m)
      | Some b ->
        let bv = Array.init m (fun i -> Tensor.get_f b [| i |]) in
        fun ei acc ->
          let chn = ei / sp mod m in
          (float_of_int acc *. chscale chn) +. Array.unsafe_get bv chn
    in
    let cl =
      match cls with
      | Some cl -> cl
      | None -> Multi_version.classify_gemm ~m ~n:(n * sp) ~k:(cg * kh * kw)
    in
    Sod2_tensor.Blocked.conv2d_i8_dequant_into ~par:(par_of t) ~tiles:(tiles_for t cl)
      ~zx ~zw:0 ~epilogue ~ep_off:co ~stride ~pad ~dilation ~groups
      ~x:(Tensor.storage_i8 qa) ~xoff:0 ~xdims:[| n; ch; h; w |]
      ~w:(Tensor.storage_i8 qw.Quant.q) ~woff:0 ~wdims:[| m; cg; kh; kw |] ~c ~co ()
  | _ ->
    Sod2_error.failf ~op:"Conv" Sod2_error.Shape_mismatch
      "Backend.conv2d_q8: expects float x NCHW against int8 weight OIHW"

let conv2d_q8 ?cls t ~stride ~pad ~dilation ~groups x (qw : Quant.qtensor) bias =
  let fdt = if Tensor.dtype x = Tensor.F64 then Tensor.F64 else Tensor.F32 in
  match Tensor.dims x, Tensor.dims qw.Quant.q with
  | [ n; _; h; w ], [ m; _; kh; kw ] ->
    let sh, sw_ = stride and dh, dw_ = dilation in
    let pt, pl, pb, pr = pad in
    let oh =
      Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
        ~dilation:dh
    in
    let ow =
      Linalg.conv2d_out_dim ~in_:w ~kernel:kw ~stride:sw_ ~pad_begin:pl ~pad_end:pr
        ~dilation:dw_
    in
    let buf = Tensor.fbuf_create fdt (n * m * oh * ow) in
    let dims =
      conv2d_q8_into ?cls t ~stride ~pad ~dilation ~groups x qw bias ~c:buf ~co:0
    in
    Tensor.of_fbuf dims buf
  | _ ->
    Sod2_error.failf ~op:"Conv" Sod2_error.Shape_mismatch
      "Backend.conv2d_q8: expects float x NCHW against int8 weight OIHW"

(* Data-parallel elementwise maps.  Only same-shape float tensors above the
   grain size go through the pool; everything else falls back to the
   sequential {!Tensor} maps (which also own the broadcast/int/mixed-kind
   cases).  Chunk bodies are matched on the storage kind once per call so
   the per-element loop is a monomorphic bigarray access; an f32 store
   rounds exactly like the sequential map's store does. *)
module BA1 = Bigarray.Array1

let grain = 16_384

let map_f t f x =
  match t.pool with
  | Some pool
    when Domain_pool.size pool > 1
         && Tensor.is_float_dtype (Tensor.dtype x)
         && Tensor.numel x >= 2 * grain ->
    let len = Tensor.numel x in
    let out = Tensor.zeros (Tensor.dtype x) (Tensor.dims x) in
    let body : int -> int -> unit =
      match Tensor.storage_f x, Tensor.storage_f out with
      | Tensor.FB32 s, Tensor.FB32 d ->
        fun lo hi ->
          for i = lo to hi - 1 do
            BA1.unsafe_set d i (f (BA1.unsafe_get s i))
          done
      | Tensor.FB64 s, Tensor.FB64 d ->
        fun lo hi ->
          for i = lo to hi - 1 do
            BA1.unsafe_set d i (f (BA1.unsafe_get s i))
          done
      | _ -> assert false
    in
    let chunks = (len + grain - 1) / grain in
    Domain_pool.run pool chunks (fun ci ->
        let lo = ci * grain in
        body lo (min len (lo + grain)));
    out
  | _ -> Tensor.map_f f x

(* ------------------------------------------------------------------ *)
(* Fused-group execution                                               *)

(* Live-variant budget per group: a group whose concrete shapes never
   repeat (fully dynamic extents) would otherwise grow the cache without
   bound AND pay a specialization per sample for nothing.  Past the cap
   the group simply stays on op-by-op kernels. *)
let fused_variant_cap = 32

type fused_stats = {
  hits : int;  (** executions served by a cached specialized kernel *)
  misses : int;  (** specializations compiled (first sight of a shape) *)
  rejects : int;  (** executions that fell back to op-by-op kernels *)
  variants : int;  (** live specialized kernels across all groups *)
}

let fused_stats t =
  let variants =
    Hashtbl.fold
      (fun _ e acc -> if e.fe_kernel <> None then acc + 1 else acc)
      t.fused_cache 0
  in
  { hits = t.fused_hits; misses = t.fused_misses; rejects = t.fused_rejects; variants }

type fused_result = {
  fr_out : Graph.tensor_id;
  fr_tensor : Tensor.t;
  fr_dims : (Graph.tensor_id * int list) list;
}

let counter t kind = Profile.Counters.record ~profile:t.profile_name ~kind

(* Shared cache lookup: resolve (group × concrete shape tuple) to a
   specialized kernel, compiling at most once per shape and caching
   failures so the op-by-op fallback is taken without recompiling.  Both
   the boxed path ({!fused_run}) and the arena executor's
   destination-passing path go through here.  [tpl] lets a caller
   executing under a variant-masked template array
   ({!Fused_compile.restrict}) name the exact template it consulted;
   masked arrays share template values with the base plan, so variant
   runs land on the same cache entries (the [fe_tpl == tpl] identity
   check below is what enforces this). *)
let fused_kernel t ?tpl (c : Pipeline.compiled) ~gid
    ~(args : (int list * Tensor.dtype) list) =
  if t.kind <> Fused then None
  else
    match (match tpl with Some _ -> tpl | None -> c.Pipeline.fused.(gid)) with
    | None -> None
    | Some tpl ->
      let key = gid, args in
      let entry =
        match Hashtbl.find_opt t.fused_cache key with
        | Some e when e.fe_tpl == tpl ->
          if e.fe_kernel <> None then begin
            t.fused_hits <- t.fused_hits + 1;
            counter t "fused-cache-hit"
          end;
          Some e
        | _ ->
          let nvar =
            Option.value ~default:0 (Hashtbl.find_opt t.fused_variants gid)
          in
          if nvar >= fused_variant_cap then begin
            counter t "fused-variant-overflow";
            None
          end
          else begin
            t.fused_misses <- t.fused_misses + 1;
            counter t "fused-cache-miss";
            let kernel =
              match
                Fused_compile.specialize c.Pipeline.graph tpl ~tiles:(tiles_for t)
                  ~args:(Array.of_list args)
              with
              | Ok k -> Some k
              | Error _ -> None
            in
            let e = { fe_tpl = tpl; fe_kernel = kernel } in
            Hashtbl.replace t.fused_cache key e;
            Hashtbl.replace t.fused_variants gid (nvar + 1);
            Some e
          end
      in
      (match entry with
      | Some { fe_kernel = Some k; _ } -> Some k
      | Some { fe_kernel = None; _ } | None ->
        t.fused_rejects <- t.fused_rejects + 1;
        counter t "fused-reject";
        None)

let fused_run t ?tpl (c : Pipeline.compiled) ~gid
    ~(fetch : Graph.tensor_id -> Tensor.t) =
  if t.kind <> Fused then None
  else
    match (match tpl with Some _ -> tpl | None -> c.Pipeline.fused.(gid)) with
    | None -> None
    | Some tpl ->
      let args_t = Array.map fetch tpl.Fused_compile.t_slots in
      let shapes =
        Array.to_list (Array.map (fun x -> Tensor.dims x, Tensor.dtype x) args_t)
      in
      (match fused_kernel t ~tpl c ~gid ~args:shapes with
      | Some k ->
        let out = k.Fused_compile.k_run ~par:(par_of t) args_t in
        Some
          {
            fr_out = k.Fused_compile.k_out;
            fr_tensor = out;
            fr_dims = k.Fused_compile.k_dims;
          }
      | None -> None)

let map2 t f x y =
  match t.pool with
  | Some pool
    when Domain_pool.size pool > 1
         && Tensor.is_float_dtype (Tensor.dtype x)
         && Tensor.dtype x = Tensor.dtype y
         && Tensor.dims x = Tensor.dims y
         && Tensor.numel x >= 2 * grain ->
    let len = Tensor.numel x in
    let out = Tensor.zeros (Tensor.dtype x) (Tensor.dims x) in
    let body : int -> int -> unit =
      match Tensor.storage_f x, Tensor.storage_f y, Tensor.storage_f out with
      | Tensor.FB32 sx, Tensor.FB32 sy, Tensor.FB32 d ->
        fun lo hi ->
          for i = lo to hi - 1 do
            BA1.unsafe_set d i (f (BA1.unsafe_get sx i) (BA1.unsafe_get sy i))
          done
      | Tensor.FB64 sx, Tensor.FB64 sy, Tensor.FB64 d ->
        fun lo hi ->
          for i = lo to hi - 1 do
            BA1.unsafe_set d i (f (BA1.unsafe_get sx i) (BA1.unsafe_get sy i))
          done
      | _ -> assert false
    in
    let chunks = (len + grain - 1) / grain in
    Domain_pool.run pool chunks (fun ci ->
        let lo = ci * grain in
        body lo (min len (lo + grain)));
    out
  | _ -> Tensor.map2 f x y
