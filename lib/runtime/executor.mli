(** Plan executor.

    Executes a compiled model over one input sample, following the static
    execution order, the fusion plan (group-internal tensors are never
    materialized) and the [<Switch, Combine>] routing.  Two modes:

    - [Real] — tensors are actually computed with {!Kernels}; used by the
      correctness tests and the examples;
    - [Dry] — only concrete shapes (and the small integer values that feed
      shape computations) propagate; used by the evaluation harness, which
      sweeps hundreds of (model × sample × framework × device)
      combinations that would be prohibitively slow to interpret.

    Control flow executes either [Selected_only] (SoD²: the predicate
    routes exactly one branch) or [All_paths] (the baseline frameworks'
    "execute every branch and strip invalid results" strategy).

    The result is a {!trace}: per-step operator extents for latency
    costing, and per-tensor allocation events for memory accounting.  The
    framework simulators turn traces into latency/memory figures under
    their own policies.

    In [Dry] mode, execution-determined extents that depend on tensor
    {e contents} are drawn deterministically: [NonZero] yields half its
    input elements, [NonMaxSuppression] a quarter of its boxes, and
    [Switch] predicates come from the [gate] callback (seeded per sample
    by the workload generator), so input-dependent paths vary across
    samples exactly as real predicates would. *)

type mode =
  | Real
  | Dry

type control =
  | Selected_only
  | All_paths

type group_exec = {
  step : int;
  gid : int;
  ops : (Op.t * int list list * int list list) list;
      (** member ops with concrete input/output extents *)
  external_bytes : int;  (** traffic: materialized inputs + outputs *)
  internal_bytes : int;  (** traffic avoided by fusion *)
  gemm : (int * int * int) option;  (** implicit-GEMM extents of the heavy member *)
}

type tensor_event = {
  te_tid : Graph.tensor_id;
  te_bytes : int;
  te_alloc : int;  (** step index when produced *)
  te_free : int;  (** step index after which it is dead *)
}

type trace = {
  steps : group_exec list;  (** executed groups, in order *)
  events : tensor_event list;  (** materialized intermediate tensors *)
  out_dims : (Graph.tensor_id * int list) list;  (** graph outputs' extents *)
  nodes_executed : int;
  arena_bytes : int;  (** instantiated plan size; 0 under [Malloc] *)
  arena_resident : int;
      (** tensors computed straight into arena slots this inference *)
  gate_outcomes : (Graph.tensor_id * int) list;
      (** branch taken per Switch predicate tensor, in first-observation
          order — what {!Engine} feeds its per-model outcome prediction
          for variant selection *)
}

type memory =
  | Malloc  (** every tensor is a fresh allocation (the default) *)
  | Arena of { arena : Arena.t; env : Env.t }
      (** §4.4 planned execution: the binding's instantiated memory plan
          ({!Pipeline.instantiated_plan} under [env]) lays tensor slots over
          [arena]'s grow-only buffer, and destination-passing kernels write
          results straight into their slots — steady state performs no plan
          recomputation and no intermediate-tensor allocation or copy.
          Graph outputs run their destination kernels into fresh boxed
          buffers instead (slot inputs still read as zero-copy views;
          counted as ["arena-out-direct"]), so they survive slot recycling
          without a boundary copy.
          Composes with any [backend].  Ops without a destination kernel
          (or with non-F32/dynamic operands) transparently fall back to
          boxed execution for that node; arena-resident values they consume
          are copied out once and memoized (counted as ["arena-copy-out"]
          in {!Profile.Counters}). *)

(** {1 Execution configuration}

    One record naming the four execution policies that used to travel as
    separate optional arguments.  [{!Engine.create}], {!run_real} and
    {!Guarded_exec.run} all accept a [?config]; the CLI's [--exec] flag
    parses straight into it ({!config_of_string}). *)

type mem_kind =
  | Mem_malloc  (** fresh allocation per tensor *)
  | Mem_arena
      (** symbolic-plan arena execution; the runner owns the {!Arena.t}
          and instantiates the plan from the request's symbol binding *)

type config = {
  backend : Backend.kind;
  memory : mem_kind;
  guarded : bool;
      (** in {!run_real}: fail-fast RDP cross-checks ([check_env] = the
          binding); in {!Engine}/{!Guarded_exec}: graceful degradation *)
  control : control;
  quant : bool;
      (** run int8 weight-quantized kernels for nodes whose weights were
          quantized at compile ({!Pipeline.compile} [~quant:true]); a no-op
          on artifacts compiled without [~quant].  Needs a non-naive
          [backend] — the naive reference path always runs float. *)
  compile : Compile_opts.t;
      (** the compile-side surface riding along with the exec config, so
          one spec configures both halves ({!Engine.create} and the CLI
          compile through it); execution entry points ignore it *)
}

val default_config : config
(** [{ backend = Naive; memory = Mem_malloc; guarded = false;
      control = Selected_only; quant = false;
      compile = Compile_opts.default }] — exactly what the bare
    optional-arg entry points default to. *)

val config_of_string : string -> (config, string) result
(** Parses the CLI [--exec] syntax
    ["naive|blocked|parallel|fused[,arena][,malloc][,guarded][,all-paths][,int8]"].
    Modifiers the executor does not recognize are folded through
    {!Compile_opts.parse_token} into [compile], so a single spec can carry
    compile tokens too (["fused,arena,variants=8"]). *)

val config_to_string : config -> string
(** Canonical [--exec] rendering (exec modifiers first, then the
    non-default compile tokens); [config_of_string (config_to_string c)]
    is [Ok c] for any [c] built by {!config_of_string}. *)

val degraded : config -> config
(** The graceful-fallback variant of a config: naive backend, malloc
    memory, [guarded = true], [quant = false] (degraded answers are
    bit-exact float), control policy preserved.  {!Engine} runs
    breaker-open plan keys and degraded-mode requests under this so a
    misbehaving specialized path can never take the serving layer down
    with it. *)

exception Unresolved of string
(** Raised in [Dry] mode when a shape could not be resolved concretely —
    indicates a gap in the operator's transfer function. *)

exception Variant_mispredict of int * int * int
(** [(gate, assumed, got)] — a variant run's once-per-gate verification at
    the Switch found the computed predicate selecting a different branch
    than the specialized plan assumed.  {!run_real} catches this
    internally (falling back to the any-path base plan); it escapes only
    from a direct [run_engine]-level embedding. *)

val run_dry :
  ?control:control -> ?gate:(Graph.tensor_id -> int) ->
  Pipeline.compiled -> input_dims:(Graph.tensor_id * int list) list -> trace
(** Shape-only execution.  [gate pred_tid] chooses the branch taken at the
    Switch/Combine pair keyed by predicate tensor [pred_tid] (default:
    branch 0). *)

val run_real :
  ?config:config -> ?env:Env.t ->
  ?control:control -> ?check_env:Env.t -> ?backend:Backend.t -> ?memory:memory ->
  ?outcomes:int array ->
  Pipeline.compiled -> inputs:(Graph.tensor_id * Tensor.t) list ->
  trace * (Graph.tensor_id * Tensor.t) list
(** Full interpretation; returns the trace and the graph output tensors.
    Switch predicates are read from the computed predicate tensors.

    [outcomes] predicts the predicate-outcome vector: when the artifact has
    a plan variant for it (within budget — {!Pipeline.variant}), execution
    runs the variant's pruned straight-line order with no per-group
    readiness scans (["exec-ready-scan"] stays flat; successful runs count
    ["variant-run"]), verifying the prediction once per gate at its
    Switch.  A misprediction (["variant-mispredict"]) or a missing variant
    falls back to the any-path base plan — results are identical either
    way, only the steady-state cost differs.

    [config] is the consolidated entry point: [config.control] supplies
    the control policy, [config.memory = Mem_arena] runs over a fresh
    arena instantiated from [env] (degrading to malloc when no [env] is
    given), [config.guarded] enables the fail-fast RDP cross-checks under
    [env], and a non-naive [config.backend] creates a transient backend
    for this run.  The remaining optional arguments are the historical
    fine-grained spellings; when both are given the explicit argument
    wins over the config field.  Prefer [config] (or {!Engine}) in new
    code.

    [memory] (default [Malloc]) selects the allocation discipline — see
    {!memory}.  Under [Arena], graph outputs are boxed copies taken at the
    run boundary (["arena-out-materialize"]), so they stay valid across
    later inferences over the same arena.

    [backend] routes heavy operators through the blocked/parallel kernel
    backend, with each node's shape class taken from the compile-time
    resolution ({!Pipeline.compiled.kernel_classes}) when available;
    without it every node runs the naive reference kernels.

    With [check_env], every tensor materialized at a fused-group boundary
    is cross-checked against its RDP-predicted dims instantiated under the
    valuation; a disagreement raises [Sod2_error.Error] (class
    [Shape_mismatch]) — the fail-fast guard.  For the graceful-degradation
    variant see {!Guarded_exec}. *)

(** {1 Accounting helpers} *)

val peak_live_bytes : trace -> int
(** Event-based peak of simultaneously-live materialized intermediates. *)

val total_flops : trace -> float
