type fault_kind =
  | Arena_bounds
  | Plan_overlap
  | Size_mismatch
  | Dim_mismatch
  | Truncated_plan
  | Kernel_fault

let fault_name = function
  | Arena_bounds -> "arena-bounds"
  | Plan_overlap -> "plan-overlap"
  | Size_mismatch -> "size-mismatch"
  | Dim_mismatch -> "dim-mismatch"
  | Truncated_plan -> "truncated-plan"
  | Kernel_fault -> "kernel-fault"

type incident = {
  kind : fault_kind;
  gid : int;
  step : int;
  detail : string;
}

type report = {
  outputs : (Graph.tensor_id * Tensor.t) list;
  incidents : incident list;
  planned_groups : int;
  demoted_nodes : int;
  arena_bytes : int;
  arena_resident : int;
  gate_outcomes : (Graph.tensor_id * int) list;
}

type location =
  | In_arena of int * int list  (** float offset, dims *)
  | Boxed of Tensor.t

let dims_str dims = String.concat "x" (List.map string_of_int dims)

let branch_of_pred ~tensor t =
  match Tensor.to_int_list (Tensor.cast t Tensor.I64) with
  | b :: _ -> b
  | [] ->
    Sod2_error.failf ~tensor Sod2_error.Shape_mismatch
      "Guarded_exec: control-flow predicate tensor t%d is empty" tensor

let run_opts ?mem_plan ?arena ?(kernel_hook = fun ~gid:_ ~node:_ -> ()) ?backend
    (c : Pipeline.compiled) ~env ~inputs =
  let g = c.Pipeline.graph in
  let mp =
    match mem_plan with
    | Some mp -> mp
    | None -> (
      match arena with
      (* Persistent-arena mode reuses the binding-cached symbolic
         instantiation (read-only here — vetting builds its own list). *)
      | Some _ -> Pipeline.instantiated_plan c env
      | None -> Pipeline.mem_plan_for c env)
  in
  let incidents = ref [] in
  let incident ?(gid = -1) ?(step = -1) kind detail =
    incidents := { kind; gid; step; detail } :: !incidents;
    Profile.Counters.record ~profile:c.Pipeline.profile.Profile.name
      ~kind:(fault_name kind)
  in
  (* RDP-predicted dims instantiated under the valuation, where resolvable. *)
  let predicted =
    Array.init (Graph.tensor_count g) (fun tid ->
        Shape.eval env (Rdp.shape c.Pipeline.rdp tid))
  in
  let materialized = Array.make (Graph.tensor_count g) true in
  Array.iter
    (fun (grp : Fusion.group) ->
      List.iter (fun tid -> materialized.(tid) <- false) grp.Fusion.internal)
    c.Pipeline.fusion_plan.Fusion.groups;
  (* --- static plan vetting: evict allocations the guards cannot trust --- *)
  let arena_bytes = mp.Mem_plan.arena_bytes in
  (* All byte arithmetic below uses the artifact's planned element size:
     alignment, slot sizing and offset→element conversion must agree with
     what [Mem_plan] reserved, for f32 and f64 artifacts alike. *)
  let elem = Tensor.bytes_per_elem c.Pipeline.fdtype in
  let vetted =
    Array.to_list mp.Mem_plan.allocs
    |> List.filter (fun (a : Mem_plan.alloc) ->
           if a.Mem_plan.offset < 0 || a.Mem_plan.size < 0
              || a.Mem_plan.offset + a.Mem_plan.size > arena_bytes
              || a.Mem_plan.offset mod elem <> 0
           then begin
             incident Arena_bounds
               (Printf.sprintf "tensor %d: allocation [%d, %d) outside %d-byte arena"
                  a.Mem_plan.tid a.Mem_plan.offset
                  (a.Mem_plan.offset + a.Mem_plan.size)
                  arena_bytes);
             false
           end
           else
             match predicted.(a.Mem_plan.tid) with
             | Some dims
               when a.Mem_plan.size
                    <> Mem_plan.slot_bytes ~plan_elem:elem ~elem:a.Mem_plan.elem
                         (List.fold_left (fun n d -> n * max 1 d) 1 dims) ->
               incident Size_mismatch
                 (Printf.sprintf "tensor %d: planned %d bytes, RDP predicts %s"
                    a.Mem_plan.tid a.Mem_plan.size (dims_str dims));
               false
             | _ -> true)
  in
  (* Pairwise live-range × address-range overlap: evict the later tensor. *)
  let overlapping (a : Mem_plan.alloc) (b : Mem_plan.alloc) =
    a.Mem_plan.first_step <= b.Mem_plan.last_step
    && b.Mem_plan.first_step <= a.Mem_plan.last_step
    && a.Mem_plan.offset < b.Mem_plan.offset + b.Mem_plan.size
    && b.Mem_plan.offset < a.Mem_plan.offset + a.Mem_plan.size
  in
  let vetted =
    List.fold_left
      (fun kept (a : Mem_plan.alloc) ->
        match List.find_opt (fun k -> overlapping k a) kept with
        | Some clash ->
          incident Plan_overlap
            (Printf.sprintf
               "tensors %d and %d overlap in the arena while both live"
               clash.Mem_plan.tid a.Mem_plan.tid);
          kept
        | None -> a :: kept)
      [] vetted
  in
  let alloc_of = Hashtbl.create 64 in
  List.iter
    (fun (a : Mem_plan.alloc) -> Hashtbl.replace alloc_of a.Mem_plan.tid a)
    vetted;
  (* Plan-coverage check: the memory plan's lifetimes only account for the
     consumers the execution order reaches.  A tensor consumed by a node
     the plan never executes would be considered dead early and its arena
     slot reused — so such tensors (and, with incomplete coverage, the
     graph outputs) must stay boxed for the fallback sweep to read. *)
  let covered = Array.make (Graph.node_count g) false in
  List.iter
    (fun gid ->
      List.iter
        (fun nid -> covered.(nid) <- true)
        c.Pipeline.fusion_plan.Fusion.groups.(gid).Fusion.members)
    c.Pipeline.exec.Exec_plan.order;
  if Array.exists not covered then begin
    for tid = 0 to Graph.tensor_count g - 1 do
      if List.exists (fun nid -> not covered.(nid)) (Graph.consumers g tid) then
        Hashtbl.remove alloc_of tid
    done;
    List.iter (fun tid -> Hashtbl.remove alloc_of tid) (Graph.outputs g)
  end;
  (* Persistent-arena mode: any vetting incident means the shared,
     binding-cached plan cannot be trusted as a whole — demote the entire
     run to malloc (boxed) storage rather than patch around a plan other
     inferences are reusing. *)
  (match arena with
  | Some _ when !incidents <> [] ->
    Hashtbl.reset alloc_of;
    Profile.Counters.record ~profile:c.Pipeline.profile.Profile.name
      ~kind:"arena-fallback-malloc"
  | _ -> ());
  (* --- storage --- *)
  let arena_elems = max 1 ((arena_bytes + elem - 1) / elem) in
  let arena_buf =
    match arena with
    | Some a -> Arena.ensure a c.Pipeline.fdtype arena_elems
    | None ->
      let b = Tensor.fbuf_create c.Pipeline.fdtype arena_elems in
      Tensor.fbuf_fill b 0 arena_elems 0.0;
      b
  in
  let resident = ref 0 in
  let loc : location option array = Array.make (Graph.tensor_count g) None in
  for tid = 0 to Graph.tensor_count g - 1 do
    match (Graph.tensor g tid).Graph.kind with
    | Graph.Const t -> loc.(tid) <- Some (Boxed t)
    | Graph.Input _ | Graph.Activation -> ()
  done;
  List.iter (fun (tid, t) -> loc.(tid) <- Some (Boxed t)) inputs;
  let available tid = loc.(tid) <> None in
  let fetch tid =
    match loc.(tid) with
    | Some (Boxed t) -> t
    | Some (In_arena (off, dims)) ->
      Tensor.copy_view (Tensor.sub_view ~buf:arena_buf ~off ~dims)
    | None ->
      Sod2_error.failf ~tensor:tid Sod2_error.Plan_violation
        "Guarded_exec: tensor %d not available" tid
  in
  (* Guarded store: cross-check dims against the RDP prediction at every
     fused-group boundary; on any disagreement the planned offset cannot be
     trusted, so the tensor is demoted to boxed storage and the run keeps
     going. *)
  (* Once any group is skipped or any node faults, the plan's lifetime
     assumptions no longer hold: the fallback sweep will need tensors the
     plan considers dead, and further arena stores could reuse their
     slots.  From that point on everything is stored boxed. *)
  let degraded = ref false in
  let store ~gid ~step tid (t : Tensor.t) =
    let dims = Tensor.dims t in
    (match predicted.(tid) with
    | Some pdims when materialized.(tid) && pdims <> dims ->
      incident ~gid ~step Dim_mismatch
        (Printf.sprintf "tensor %d: executed %s, RDP predicted %s" tid
           (dims_str dims) (dims_str pdims));
      Hashtbl.remove alloc_of tid
    | _ -> ());
    match Hashtbl.find_opt alloc_of tid with
    | Some _ when !degraded -> loc.(tid) <- Some (Boxed t)
    | Some a when Tensor.dtype t = c.Pipeline.fdtype && a.Mem_plan.elem = elem ->
      let bytes = Tensor.byte_size t in
      if bytes <> a.Mem_plan.size then begin
        incident ~gid ~step Size_mismatch
          (Printf.sprintf "tensor %d: %d bytes into a %d-byte slot" tid bytes
             a.Mem_plan.size);
        Hashtbl.remove alloc_of tid;
        loc.(tid) <- Some (Boxed t)
      end
      else begin
        let off = a.Mem_plan.offset / elem in
        Tensor.fbuf_blit ~src:(Tensor.storage_f t) ~soff:0 ~dst:arena_buf
          ~doff:off ~len:(Tensor.numel t);
        incr resident;
        loc.(tid) <- Some (In_arena (off, dims))
      end
    | _ -> loc.(tid) <- Some (Boxed t)
  in
  (* Tensors proven unreachable under the executed routing: unselected
     Switch outputs and everything that only depends on them.  Lets a
     skipped group be recognized as the routing semantics rather than a
     plan defect. *)
  let dead = Array.make (Graph.tensor_count g) false in
  (* Execute one node; [store] decides arena vs boxed placement.
     [backend] (used by the planned sweep only — the fallback sweep stays
     on the bit-exact naive reference) selects the optimized kernels, with
     the node's compile-time shape class when resolved. *)
  let gate_obs = ref [] in
  let exec_node ?backend store (nd : Graph.node) =
    match nd.Graph.op with
    | Op.Switch { branches } ->
      let data = List.hd nd.Graph.inputs in
      let pred = List.nth nd.Graph.inputs 1 in
      let b = max 0 (min (branches - 1) (branch_of_pred ~tensor:pred (fetch pred))) in
      if not (List.mem_assoc pred !gate_obs) then gate_obs := (pred, b) :: !gate_obs;
      List.iteri
        (fun i tid -> if i = b then store tid (fetch data) else dead.(tid) <- true)
        nd.Graph.outputs
    | Op.Combine { branches } ->
      let src =
        match
          List.find_opt available
            (List.filteri (fun i _ -> i < branches) nd.Graph.inputs)
        with
        | Some src -> src
        | None ->
          Sod2_error.fail ~op:"Combine" ~node:nd.Graph.nname
            Sod2_error.Plan_violation "Guarded_exec: no Combine branch available"
      in
      store (List.hd nd.Graph.outputs) (fetch src)
    | op ->
      let cls =
        match backend with
        | Some _ when nd.Graph.nid < Array.length c.Pipeline.kernel_classes ->
          c.Pipeline.kernel_classes.(nd.Graph.nid)
        | _ -> None
      in
      let outs = Kernels.run ?backend ?cls op (List.map fetch nd.Graph.inputs) in
      List.iter2 store nd.Graph.outputs outs
  in
  (* --- planned sweep: fusion groups in the static execution order --- *)
  let executed = Array.make (Graph.node_count g) false in
  let faulted = Array.make (Graph.node_count g) false in
  let planned_groups = ref 0 in
  List.iteri
    (fun step gid ->
      let grp = c.Pipeline.fusion_plan.Fusion.groups.(gid) in
      let members = List.map (Graph.node g) grp.Fusion.members in
      let member_tids =
        List.concat_map (fun (nd : Graph.node) -> nd.Graph.outputs) members
      in
      let ready =
        List.for_all
          (fun (nd : Graph.node) ->
            match nd.Graph.op with
            | Op.Combine { branches } ->
              available (List.nth nd.Graph.inputs branches)
              && List.exists available
                   (List.filteri (fun i _ -> i < branches) nd.Graph.inputs)
            | _ ->
              List.for_all
                (fun tid -> available tid || List.mem tid member_tids)
                nd.Graph.inputs)
          members
      in
      if ready then begin
        incr planned_groups;
        (* Multi-member groups first try the fused backend: one compiled
           kernel materializing only the terminal output.  Any exception —
           from the hook or the kernel itself — abandons the attempt, and
           the op-by-op loop below records the fault per node. *)
        let fused_done =
          match backend with
          | Some be when List.length members > 1 -> (
            try
              match Backend.fused_run be c ~gid ~fetch with
              | Some fr ->
                List.iter
                  (fun (nd : Graph.node) -> kernel_hook ~gid ~node:nd.Graph.nid)
                  members;
                store ~gid ~step fr.Backend.fr_out fr.Backend.fr_tensor;
                List.iter
                  (fun (nd : Graph.node) -> executed.(nd.Graph.nid) <- true)
                  members;
                true
              | None -> false
            with Sod2_error.Error _ | Invalid_argument _ | Failure _ -> false)
          | _ -> false
        in
        if not fused_done then
          List.iter
            (fun (nd : Graph.node) ->
              try
                kernel_hook ~gid ~node:nd.Graph.nid;
                exec_node ?backend (store ~gid ~step) nd;
                executed.(nd.Graph.nid) <- true
              with
              | Sod2_error.Error _ | Invalid_argument _ | Failure _ ->
                (* A fused/specialized kernel misbehaved: leave the node for
                   the reference fallback sweep. *)
                faulted.(nd.Graph.nid) <- true;
                degraded := true;
                incident ~gid ~step Kernel_fault
                  (Printf.sprintf "node %d (%s) raised during planned execution"
                     nd.Graph.nid nd.Graph.nname))
            members
      end
      else begin
        (* A group whose missing inputs are all provably dead sits on an
           unselected branch: skipping it is the routing semantics, and its
           own outputs become dead in turn.  Any other missing input means
           the plan expected data that never appeared — from here on the
           plan's lifetime assumptions cannot be trusted, so downstream
           stores are demoted to boxed (handled via [degraded]). *)
        let dead_branch =
          List.for_all
            (fun (nd : Graph.node) ->
              List.for_all
                (fun tid -> available tid || List.mem tid member_tids || dead.(tid))
                nd.Graph.inputs)
            members
        in
        if dead_branch then
          List.iter
            (fun (nd : Graph.node) ->
              List.iter
                (fun tid -> if not (available tid) then dead.(tid) <- true)
                nd.Graph.outputs)
            members
        else degraded := true
      end)
    c.Pipeline.exec.Exec_plan.order;
  (* --- fallback sweep: reference topological interpretation of whatever
     the plan failed to cover.  Nodes whose inputs never became available
     sit on an unselected branch — skipping them is the routing semantics,
     not a fault. --- *)
  let boxed_store tid t = loc.(tid) <- Some (Boxed t) in
  let demoted = ref 0 in
  let truncated = ref 0 in
  Array.iter
    (fun (nd : Graph.node) ->
      if not executed.(nd.Graph.nid) then begin
        let ready =
          match nd.Graph.op with
          | Op.Combine { branches } ->
            available (List.nth nd.Graph.inputs branches)
            && List.exists available
                 (List.filteri (fun i _ -> i < branches) nd.Graph.inputs)
          | _ -> List.for_all available nd.Graph.inputs
        in
        if ready then begin
          exec_node boxed_store nd;
          executed.(nd.Graph.nid) <- true;
          incr demoted;
          if not faulted.(nd.Graph.nid) then incr truncated
        end
      end)
    (Graph.nodes g);
  if !truncated > 0 then
    incident Truncated_plan
      (Printf.sprintf "plan skipped %d executable node%s" !truncated
         (if !truncated = 1 then "" else "s"));
  let outputs = List.map (fun tid -> tid, fetch tid) (Graph.outputs g) in
  {
    outputs;
    incidents = List.rev !incidents;
    planned_groups = !planned_groups;
    demoted_nodes = !demoted;
    arena_bytes;
    arena_resident = !resident;
    gate_outcomes = List.rev !gate_obs;
  }

(* Config-driven wrapper mirroring {!Executor.run_real}: explicit optional
   arguments win over config fields.  Guarded execution is graceful by
   construction, so [config.guarded] is implied, and control flow is
   always selected-only here — [config.control] does not apply. *)
let run ?config ?mem_plan ?arena ?kernel_hook ?backend (c : Pipeline.compiled) ~env
    ~inputs =
  match config with
  | None -> run_opts ?mem_plan ?arena ?kernel_hook ?backend c ~env ~inputs
  | Some (cfg : Executor.config) ->
    let arena =
      match arena, cfg.Executor.memory with
      | (Some _ as a), _ -> a
      | None, Executor.Mem_arena -> Some (Arena.create ())
      | None, Executor.Mem_malloc -> None
    in
    let owned, backend =
      match backend, cfg.Executor.backend with
      | (Some _ as be), _ -> None, be
      | None, Backend.Naive -> None, None
      | None, k ->
        let be = Backend.for_compiled k c in
        Some be, Some be
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Backend.shutdown owned)
      (fun () -> run_opts ?mem_plan ?arena ?kernel_hook ?backend c ~env ~inputs)
