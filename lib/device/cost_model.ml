let prod dims = List.fold_left (fun acc d -> acc * max 1 d) 1 dims

let numel_out out_dims = match out_dims with [] -> 0 | d :: _ -> prod d

let fnumel dims = float_of_int (prod dims)

let flops op ~in_dims ~out_dims =
  let out_n = float_of_int (numel_out out_dims) in
  match (op : Op.t) with
  | Op.Conv { groups; _ } -> (
    match in_dims with
    | _ :: w :: _ -> (
      match w with
      | [ _m; cg; kh; kw ] ->
        ignore groups;
        2.0 *. out_n *. float_of_int (cg * kh * kw)
      | _ -> out_n)
    | _ -> out_n)
  | Op.Conv1d _ -> (
    match in_dims with
    | _ :: [ _m; cg; k ] :: _ -> 2.0 *. out_n *. float_of_int (cg * k)
    | _ -> out_n)
  | Op.MatMul | Op.Gemm _ -> (
    match in_dims with
    | a :: _ :: _ when List.length a >= 1 ->
      let k = List.nth a (List.length a - 1) in
      2.0 *. out_n *. float_of_int (max 1 k)
    | _ -> out_n)
  | Op.MaxPool { kernel = kh, kw; _ } | Op.AveragePool { kernel = kh, kw; _ } ->
    out_n *. float_of_int (kh * kw)
  | Op.GlobalAveragePool -> (
    match in_dims with x :: _ -> fnumel x | [] -> out_n)
  | Op.Softmax _ | Op.LogSoftmax _ -> (
    match in_dims with x :: _ -> 5.0 *. fnumel x | [] -> out_n)
  | Op.BatchNorm _ | Op.LayerNorm _ | Op.GroupNorm _ | Op.InstanceNorm _ -> (
    match in_dims with x :: _ -> 8.0 *. fnumel x | [] -> out_n)
  | Op.Reduce _ | Op.ArgMax _ | Op.ArgMin _ | Op.CumSum _ -> (
    match in_dims with x :: _ -> fnumel x | [] -> out_n)
  | Op.Unary (Op.Exp | Op.Log | Op.Sqrt | Op.Tanh | Op.Sigmoid | Op.Erf | Op.Gelu
             | Op.Softplus | Op.HardSwish) -> 4.0 *. out_n
  | Op.TopK _ -> (
    (* sort-dominated *)
    match in_dims with
    | x :: _ ->
      let n = fnumel x in
      n *. Float.max 1.0 (log (Float.max 2.0 n))
    | [] -> out_n)
  | Op.NonZero | Op.NonMaxSuppression _ -> (
    match in_dims with x :: _ -> 2.0 *. fnumel x | [] -> out_n)
  | _ -> out_n

(* [elem] is the element width in bytes.  The default stays f32 (4) for
   callers that predate dtype plumbing; dtype-aware callers pass
   [Tensor.bytes_per_elem dt] so int8 traffic is no longer overstated 4x
   nor f64 understated 2x. *)
let tensor_bytes ?(elem = 4) dims = elem * prod dims

let bytes_moved ?elem ~in_dims ~out_dims () =
  List.fold_left (fun acc d -> acc + tensor_bytes ?elem d) 0 (in_dims @ out_dims)

let default_efficiency = 0.45

let roofline (p : Profile.t) ~efficiency ~fl ~bytes =
  let working_set = bytes in
  let bw =
    if working_set > p.cache_bytes then p.mem_bw_gbs /. p.cache_spill_penalty
    else p.mem_bw_gbs
  in
  let compute_us = fl /. (p.gflops *. efficiency) /. 1000.0 in
  let memory_us = float_of_int bytes /. (bw *. 1000.0) in
  Float.max compute_us memory_us

let op_time_us p ?(efficiency = default_efficiency) ?elem op ~in_dims ~out_dims =
  let fl = flops op ~in_dims ~out_dims in
  let bytes = bytes_moved ?elem ~in_dims ~out_dims () in
  roofline p ~efficiency ~fl ~bytes +. p.launch_overhead_us

let group_time_us p ?(efficiency = default_efficiency) members ~external_bytes =
  let fl =
    List.fold_left
      (fun acc (op, in_dims, out_dims) -> acc +. flops op ~in_dims ~out_dims)
      0.0 members
  in
  roofline p ~efficiency ~fl ~bytes:external_bytes +. p.launch_overhead_us

let malloc_time_us (p : Profile.t) ~bytes =
  p.malloc_base_us +. (p.malloc_us_per_mb *. (float_of_int bytes /. 1048576.0))
