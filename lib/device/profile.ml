type target =
  | Cpu
  | Gpu

type t = {
  name : string;
  soc : string;
  target : target;
  gflops : float;
  mem_bw_gbs : float;
  cache_bytes : int;
  launch_overhead_us : float;
  malloc_base_us : float;
  malloc_us_per_mb : float;
  shape_fn_us : float;
  reinit_shape_pass_us_per_op : float;
  reinit_tuning_us_per_op : float;
  cache_spill_penalty : float;
  pressure_coeff : float;
  cores : int;
}

(* Calibration notes: the CPU/GPU throughput ratio, the enormous GPU
   allocation cost (Table 1 shows MNN spending 30.6 s in GPU Alloc for
   YOLO-V6 against 102 ms of inference — mobile GPU buffers are mapped,
   not merely reserved), and the per-op re-initialization costs are set so
   the overhead regimes of Table 1 reproduce. *)

let sd888_cpu = {
  name = "sd888-cpu";
  soc = "Snapdragon 888";
  target = Cpu;
  gflops = 30.0;
  mem_bw_gbs = 22.0;
  cache_bytes = 4 * 1024 * 1024;
  launch_overhead_us = 4.0;
  malloc_base_us = 2.0;
  malloc_us_per_mb = 55.0;
  shape_fn_us = 45.0;
  reinit_shape_pass_us_per_op = 115.0;
  reinit_tuning_us_per_op = 4500.0;
  cache_spill_penalty = 2.2;
  pressure_coeff = 0.15;
  cores = 8;
}

let sd888_gpu = {
  name = "sd888-gpu";
  soc = "Snapdragon 888";
  target = Gpu;
  gflops = 150.0;
  mem_bw_gbs = 28.0;
  cache_bytes = 2 * 1024 * 1024;
  launch_overhead_us = 30.0;
  malloc_base_us = 40.0;
  malloc_us_per_mb = 72000.0;
  shape_fn_us = 70.0;
  reinit_shape_pass_us_per_op = 2.0;
  reinit_tuning_us_per_op = 2800.0;
  cache_spill_penalty = 3.0;
  pressure_coeff = 0.48;
  cores = 8;
}

let sd835_cpu = {
  name = "sd835-cpu";
  soc = "Snapdragon 835";
  target = Cpu;
  gflops = 11.0;
  mem_bw_gbs = 9.0;
  cache_bytes = 2 * 1024 * 1024;
  launch_overhead_us = 7.0;
  malloc_base_us = 3.0;
  malloc_us_per_mb = 90.0;
  shape_fn_us = 85.0;
  reinit_shape_pass_us_per_op = 220.0;
  reinit_tuning_us_per_op = 8000.0;
  cache_spill_penalty = 2.8;
  pressure_coeff = 0.22;
  cores = 8;
}

let sd835_gpu = {
  name = "sd835-gpu";
  soc = "Snapdragon 835";
  target = Gpu;
  gflops = 48.0;
  mem_bw_gbs = 12.0;
  cache_bytes = 1024 * 1024;
  launch_overhead_us = 45.0;
  malloc_base_us = 60.0;
  malloc_us_per_mb = 110000.0;
  shape_fn_us = 120.0;
  reinit_shape_pass_us_per_op = 4.0;
  reinit_tuning_us_per_op = 5200.0;
  cache_spill_penalty = 3.6;
  pressure_coeff = 0.60;
  cores = 8;
}

let all = [ sd888_cpu; sd888_gpu; sd835_cpu; sd835_gpu ]

let by_name n = List.find_opt (fun p -> p.name = n) all

let pp ppf p =
  Format.fprintf ppf "%s (%s, %s, %.0f GFLOP/s, %.0f GB/s)" p.name p.soc
    (match p.target with Cpu -> "CPU" | Gpu -> "GPU")
    p.gflops p.mem_bw_gbs

(* ------------------------------------------------------------------ *)
(* Guarded-execution incident counters                                 *)
(* ------------------------------------------------------------------ *)

module Counters = struct
  (* (profile name, incident kind) -> occurrences.  Process-global so any
     monitoring surface (CLI, experiments harness) can read the fallback
     health of every device session without threading state through.
     Engine workers bump these concurrently from several domains, so every
     table access holds [lock] — a plain Hashtbl.replace race would lose
     increments (and can corrupt the table's bucket chains). *)
  let table : (string * string, int) Hashtbl.t = Hashtbl.create 16
  let lock = Mutex.create ()

  let add ~profile ~kind n =
    if n > 0 then begin
      let key = profile, kind in
      Mutex.lock lock;
      Hashtbl.replace table key (n + Option.value ~default:0 (Hashtbl.find_opt table key));
      Mutex.unlock lock
    end

  let record ~profile ~kind = add ~profile ~kind 1

  let count ~profile ~kind =
    Mutex.lock lock;
    let n = Option.value ~default:0 (Hashtbl.find_opt table (profile, kind)) in
    Mutex.unlock lock;
    n

  let by_kind () =
    Mutex.protect lock (fun () ->
        let agg = Hashtbl.create 8 in
        Hashtbl.iter
          (fun (_, kind) v ->
            Hashtbl.replace agg kind
              (v + Option.value ~default:0 (Hashtbl.find_opt agg kind)))
          table;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

  let total () = Mutex.protect lock (fun () -> Hashtbl.fold (fun _ v acc -> acc + v) table 0)

  let reset () = Mutex.protect lock (fun () -> Hashtbl.reset table)
end
