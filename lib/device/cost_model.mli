(** Roofline-style analytical cost model.

    An operator execution with concrete input/output extents costs
    [max (flops / throughput, bytes / bandwidth) + dispatch overhead],
    where the effective bandwidth degrades by the profile's spill penalty
    when the working set exceeds the cache.  Kernel quality enters as an
    {e efficiency} factor in [\[0, 1\]] — the fraction of peak throughput
    the chosen kernel version attains (multi-version code generation picks
    versions with higher efficiency for the observed shape class).

    Fused groups are costed as a single launch whose arithmetic is the sum
    over members but whose traffic counts only group-external tensors —
    which is precisely why fusion pays (Fig. 4). *)

val flops : Op.t -> in_dims:int list list -> out_dims:int list list -> float
(** Arithmetic work of one operator execution (floating-point ops). *)

val tensor_bytes : ?elem:int -> int list -> int
(** Bytes of a tensor with the given extents; [elem] is the element width
    in bytes (default 4, i.e. f32 — pass [Tensor.bytes_per_elem dt] for
    dtype-accurate accounting). *)

val op_time_us :
  Profile.t -> ?efficiency:float -> ?elem:int -> Op.t -> in_dims:int list list ->
  out_dims:int list list -> float
(** Latency of a single (unfused) operator execution.  [elem] sizes the
    memory traffic (default 4 bytes/element). *)

val group_time_us :
  Profile.t -> ?efficiency:float ->
  (Op.t * int list list * int list list) list ->
  external_bytes:int -> float
(** Latency of a fused group: one dispatch, summed flops, only
    [external_bytes] of memory traffic. *)

val malloc_time_us : Profile.t -> bytes:int -> float
(** Cost of one dynamic allocation of the given size. *)

val default_efficiency : float
(** Kernel efficiency of a generic (untuned, single-version) kernel. *)
