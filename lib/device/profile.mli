(** Analytical device profiles.

    The paper's testbeds are Snapdragon 888 and 835 phones; those are not
    available here, so each device is modelled by the handful of parameters
    that drive the latency and memory behaviour the paper measures: peak
    arithmetic throughput, memory bandwidth, last-level cache size, kernel
    dispatch overhead, dynamic-allocation cost, and the framework
    re-initialization costs of Table 1.  The constants are calibrated so
    that the relative effects reported in the paper (re-initialization
    dwarfing inference, GPU allocation being far costlier than CPU
    allocation, weaker SoCs amplifying memory effects) hold; absolute
    milliseconds are not claimed. *)

type target =
  | Cpu
  | Gpu

type t = {
  name : string;  (** e.g. "sd888-cpu" *)
  soc : string;  (** e.g. "Snapdragon 888" *)
  target : target;
  gflops : float;  (** sustained arithmetic throughput, GFLOP/s *)
  mem_bw_gbs : float;  (** sustained memory bandwidth, GB/s *)
  cache_bytes : int;  (** last-level cache capacity *)
  launch_overhead_us : float;  (** fixed dispatch cost per kernel *)
  malloc_base_us : float;  (** fixed cost of one dynamic allocation *)
  malloc_us_per_mb : float;  (** size-dependent allocation cost *)
  shape_fn_us : float;  (** cost of one runtime shape-function call (à la Nimble) *)
  reinit_shape_pass_us_per_op : float;
      (** shape propagation + layout selection during re-initialization (SL) *)
  reinit_tuning_us_per_op : float;  (** schedule and tuning during re-initialization (ST) *)
  cache_spill_penalty : float;
      (** bandwidth divisor applied when an operator's working set exceeds
          the cache *)
  pressure_coeff : float;
      (** sensitivity of execution latency to the inference's total memory
          footprint (cache-thrash coupling); mobile GPUs are markedly more
          sensitive to memory and data movement (§5.3) *)
  cores : int;
      (** CPU core count available to the kernel worker pool (both
          Snapdragons are octa-core); the runtime clamps this to what the
          host actually offers *)
}

val sd888_cpu : t
val sd888_gpu : t
val sd835_cpu : t
val sd835_gpu : t

val all : t list

val by_name : string -> t option

val pp : Format.formatter -> t -> unit

(** {1 Guarded-execution incident counters}

    Process-global counters the guarded executor bumps whenever a runtime
    guard fires or a plan partition is demoted to reference interpretation
    (see {!Guarded_exec} in the runtime library).  Keyed by device-profile
    name and incident kind so production monitoring can tell a bad plan on
    one device class from a systemic RDP soundness bug. *)

module Counters : sig
  val record : profile:string -> kind:string -> unit

  val add : profile:string -> kind:string -> int -> unit
  (** [add n] bumps the counter by [n] in one table access — the engine
      uses it when an overload/crash event settles a whole batch of
      requests at once.  [n <= 0] is a no-op. *)

  val count : profile:string -> kind:string -> int
  val by_kind : unit -> (string * int) list
  (** Aggregated over profiles, sorted by kind name. *)

  val total : unit -> int
  val reset : unit -> unit
end
