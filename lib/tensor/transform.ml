(* Shape/movement ops for the reference path.  Element access goes through
   the generic getters — these ops are O(n) shuffles, not hot kernels — but
   outputs preserve the input's dtype: a float input of either precision
   maps to the same precision, integers stay integers. *)

(* [init_fd dt dims f] is [Tensor.init_f] with an explicit float dtype. *)
let init_fd dt dims f =
  let od = Array.of_list dims in
  let n = List.fold_left ( * ) 1 dims in
  Tensor.of_floats dt dims (Array.init n (fun flat -> f (Tensor.unravel od flat)))

let init_like t dims f = init_fd (Tensor.dtype t) dims f

let transpose t perm =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  if List.length perm <> r || List.sort compare perm <> List.init r Fun.id then
    invalid_arg "Transform.transpose: perm must be a permutation of axes";
  let perm = Array.of_list perm in
  let out_dims = Array.to_list (Array.map (fun p -> d.(p)) perm) in
  let remap ix =
    (* ix indexes the output; map back to source coordinates. *)
    let src_ix = Array.make r 0 in
    Array.iteri (fun i p -> src_ix.(p) <- ix.(i)) perm;
    src_ix
  in
  if Tensor.is_float_dtype (Tensor.dtype t) then
    init_like t out_dims (fun ix -> Tensor.get_f t (remap ix))
  else begin
    let out = Tensor.zeros (Tensor.dtype t) out_dims in
    let n = Tensor.numel out in
    let od = Array.of_list out_dims in
    for flat = 0 to n - 1 do
      let ix = Tensor.unravel od flat in
      Tensor.set_i out ix (Tensor.get_i t (remap ix))
    done;
    out
  end

let normalize_slice_bound dim v ~is_end ~step =
  let v = if v < 0 then v + dim else v in
  if step > 0 then max 0 (min v dim)
  else if is_end then max (-1) (min v (dim - 1))
  else max 0 (min v (dim - 1))

let slice t ~starts ~ends ~axes ?steps () =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let steps = match steps with Some s -> s | None -> List.map (fun _ -> 1) axes in
  let start_arr = Array.make r 0 in
  let step_arr = Array.make r 1 in
  let len_arr = Array.copy d in
  List.iteri
    (fun i axis ->
      let axis = if axis < 0 then axis + r else axis in
      let step = List.nth steps i in
      if step = 0 then invalid_arg "Transform.slice: step 0";
      let s = normalize_slice_bound d.(axis) (List.nth starts i) ~is_end:false ~step in
      let e = normalize_slice_bound d.(axis) (List.nth ends i) ~is_end:true ~step in
      let count =
        if step > 0 then (e - s + step - 1) / step else (s - e + (-step) - 1) / -step
      in
      start_arr.(axis) <- s;
      step_arr.(axis) <- step;
      len_arr.(axis) <- max 0 count)
    axes;
  let out_dims = Array.to_list len_arr in
  let src_ix ix = Array.mapi (fun i v -> start_arr.(i) + (v * step_arr.(i))) ix in
  if Tensor.is_float_dtype (Tensor.dtype t) then
    init_like t out_dims (fun ix -> Tensor.get_f t (src_ix ix))
  else begin
    let out = Tensor.zeros (Tensor.dtype t) out_dims in
    for flat = 0 to Tensor.numel out - 1 do
      let ix = Tensor.unravel len_arr flat in
      Tensor.set_i out ix (Tensor.get_i t (src_ix ix))
    done;
    out
  end

let concat ts ~axis =
  match ts with
  | [] -> invalid_arg "Transform.concat: empty list"
  | first :: _ ->
    let r = Tensor.rank first in
    let axis = if axis < 0 then axis + r else axis in
    let out_axis = List.fold_left (fun acc t -> acc + (Tensor.dims_arr t).(axis)) 0 ts in
    let out_dims =
      List.mapi (fun i v -> if i = axis then out_axis else v) (Tensor.dims first)
    in
    let out = Tensor.zeros (Tensor.dtype first) out_dims in
    let as_float = Tensor.is_float_dtype (Tensor.dtype first) in
    let offset = ref 0 in
    List.iter
      (fun t ->
        let d = Tensor.dims_arr t in
        let n = Tensor.numel t in
        for flat = 0 to n - 1 do
          let ix = Tensor.unravel d flat in
          let out_ix = Array.copy ix in
          out_ix.(axis) <- ix.(axis) + !offset;
          if as_float then Tensor.set_f out out_ix (Tensor.get_f t ix)
          else Tensor.set_i out out_ix (Tensor.get_i t ix)
        done;
        offset := !offset + d.(axis))
      ts;
    out

let split t ~axis ~sizes =
  let r = Tensor.rank t in
  let axis = if axis < 0 then axis + r else axis in
  let starts = ref 0 in
  List.map
    (fun size ->
      let s = !starts in
      starts := s + size;
      slice t ~starts:[ s ] ~ends:[ s + size ] ~axes:[ axis ] ())
    sizes

let gather t ~indices ~axis =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let axis = if axis < 0 then axis + r else axis in
  let idx_dims = Tensor.dims indices in
  let out_dims =
    List.concat
      [ List.filteri (fun i _ -> i < axis) (Tensor.dims t);
        idx_dims;
        List.filteri (fun i _ -> i > axis) (Tensor.dims t)
      ]
  in
  let ir = List.length idx_dims in
  let src_ix out_ix =
    let idx_ix = Array.sub out_ix axis ir in
    let pos = Tensor.get_i indices idx_ix in
    let pos = if pos < 0 then pos + d.(axis) else pos in
    Array.init r (fun i ->
        if i < axis then out_ix.(i)
        else if i = axis then pos
        else out_ix.(i + ir - 1))
  in
  if Tensor.is_float_dtype (Tensor.dtype t) then
    init_like t out_dims (fun ix -> Tensor.get_f t (src_ix ix))
  else begin
    let out = Tensor.zeros (Tensor.dtype t) out_dims in
    let od = Array.of_list out_dims in
    for flat = 0 to Tensor.numel out - 1 do
      let ix = Tensor.unravel od flat in
      Tensor.set_i out ix (Tensor.get_i t (src_ix ix))
    done;
    out
  end

let pad t ~before ~after ~value =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  if List.length before <> r || List.length after <> r then
    invalid_arg "Transform.pad: pads must match rank";
  let bef = Array.of_list before in
  let out_dims = List.mapi (fun i v -> v + List.nth before i + List.nth after i) (Tensor.dims t) in
  init_like t out_dims (fun ix ->
      let src = Array.mapi (fun i v -> v - bef.(i)) ix in
      let inside = ref true in
      Array.iteri (fun i v -> if v < 0 || v >= d.(i) then inside := false) src;
      if !inside then Tensor.get_f t src else value)

let tile t ~repeats =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  if List.length repeats <> r then invalid_arg "Transform.tile: repeats must match rank";
  let out_dims = List.mapi (fun i v -> v * List.nth repeats i) (Tensor.dims t) in
  init_like t out_dims (fun ix ->
      Tensor.get_f t (Array.mapi (fun i v -> v mod d.(i)) ix))

let resize_nearest t ~out_spatial =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let spatial_rank = List.length out_spatial in
  if spatial_rank <> r - 2 then
    invalid_arg "Transform.resize_nearest: spatial rank mismatch";
  let out_dims = d.(0) :: d.(1) :: out_spatial in
  let out_sp = Array.of_list out_spatial in
  init_like t out_dims (fun ix ->
      let src =
        Array.mapi
          (fun i v ->
            if i < 2 then v
            else
              let in_sz = d.(i) and out_sz = out_sp.(i - 2) in
              min (in_sz - 1) (v * in_sz / out_sz))
          ix
      in
      Tensor.get_f t src)

let where cond a b =
  let dims = Tensor.broadcast_dims (Tensor.dims_arr cond)
      (Tensor.broadcast_dims (Tensor.dims_arr a) (Tensor.dims_arr b))
  in
  let dl = Array.to_list dims in
  let odt =
    if Tensor.dtype a = Tensor.F64 || Tensor.dtype b = Tensor.F64 then Tensor.F64
    else Tensor.F32
  in
  let cond = Tensor.broadcast_to cond dl in
  let a = Tensor.broadcast_to a dl in
  let b = Tensor.broadcast_to b dl in
  let mask = Tensor.data_i cond in
  let da = Tensor.data_f a and db = Tensor.data_f b in
  Tensor.of_floats odt dl
    (Array.init (Array.length da) (fun i -> if mask.(i) <> 0 then da.(i) else db.(i)))

let one_hot t ~depth =
  let out_dims = Tensor.dims t @ [ depth ] in
  let src = Tensor.data_i t in
  let sd = Tensor.dims_arr t in
  Tensor.init_f out_dims (fun ix ->
      let r = Array.length ix in
      let base = Array.sub ix 0 (r - 1) in
      let v = src.(if Array.length sd = 0 then 0 else Tensor.ravel sd base) in
      if v = ix.(r - 1) then 1.0 else 0.0)

let range ~start ~limit ~delta =
  if delta = 0 then invalid_arg "Transform.range: delta 0";
  let count = max 0 ((limit - start + delta + (if delta > 0 then -1 else 1)) / delta) in
  Tensor.create_i [ count ] (Array.init count (fun i -> start + (i * delta)))

let depth_to_space t ~block =
  let d = Tensor.dims_arr t in
  let c' = d.(1) / (block * block) in
  let out_dims = [ d.(0); c'; d.(2) * block; d.(3) * block ] in
  init_like t out_dims (fun ix ->
      let oy = ix.(2) and ox = ix.(3) in
      let by = oy mod block and bx = ox mod block in
      let src_c = (((by * block) + bx) * c') + ix.(1) in
      Tensor.get_f t [| ix.(0); src_c; oy / block; ox / block |])

let space_to_depth t ~block =
  let d = Tensor.dims_arr t in
  let c = d.(1) in
  let out_dims = [ d.(0); c * block * block; d.(2) / block; d.(3) / block ] in
  init_like t out_dims (fun ix ->
      let oc = ix.(1) in
      let src_c = oc mod c in
      let rem = oc / c in
      let by = rem / block and bx = rem mod block in
      Tensor.get_f t [| ix.(0); src_c; (ix.(2) * block) + by; (ix.(3) * block) + bx |])
