let conv2d_out_dim ~in_ ~kernel ~stride ~pad_begin ~pad_end ~dilation =
  ((in_ + pad_begin + pad_end - (((kernel - 1) * dilation) + 1)) / stride) + 1

module BA1 = Bigarray.Array1

(* GEMM kernels operate on raw float storage ({!Tensor.fbuf}) so the same
   code path serves boxed tensors and arena slots in any float precision.

   Numerical contract (shared with {!Blocked.gemm}): every output element
   is accumulated in double precision over the full k extent, in ascending
   p order, and folded into C with exactly one store — so the store is the
   only rounding point under f32, and the naive and blocked kernels produce
   bit-identical results for finite inputs. *)
type gemm_kernel =
  m:int -> n:int -> k:int ->
  a:Tensor.fbuf -> ao:int -> b:Tensor.fbuf -> bo:int ->
  c:Tensor.fbuf -> co:int -> unit

(* One row of double-precision accumulators folded into C with a single
   rounding store per element.  [row] holds sum_p a[i,p]*b[p,j]. *)
let row_writeback c co n i row =
  let base = co + (i * n) in
  match c with
  | Tensor.FB32 cb ->
    for j = 0 to n - 1 do
      BA1.unsafe_set cb (base + j)
        (BA1.unsafe_get cb (base + j) +. Array.unsafe_get row j)
    done
  | Tensor.FB64 cb ->
    for j = 0 to n - 1 do
      BA1.unsafe_set cb (base + j)
        (BA1.unsafe_get cb (base + j) +. Array.unsafe_get row j)
    done

let naive_kernel : gemm_kernel =
 fun ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ->
  let row = Array.make (max 1 n) 0.0 in
  (match a, b with
  | Tensor.FB32 a, Tensor.FB32 b ->
    for i = 0 to m - 1 do
      Array.fill row 0 n 0.0;
      for p = 0 to k - 1 do
        let av = BA1.unsafe_get a (ao + (i * k) + p) in
        if av <> 0.0 then begin
          let row_b = bo + (p * n) in
          for j = 0 to n - 1 do
            Array.unsafe_set row j
              (Array.unsafe_get row j +. (av *. BA1.unsafe_get b (row_b + j)))
          done
        end
      done;
      row_writeback c co n i row
    done
  | Tensor.FB64 a, Tensor.FB64 b ->
    for i = 0 to m - 1 do
      Array.fill row 0 n 0.0;
      for p = 0 to k - 1 do
        let av = BA1.unsafe_get a (ao + (i * k) + p) in
        if av <> 0.0 then begin
          let row_b = bo + (p * n) in
          for j = 0 to n - 1 do
            Array.unsafe_set row j
              (Array.unsafe_get row j +. (av *. BA1.unsafe_get b (row_b + j)))
          done
        end
      done;
      row_writeback c co n i row
    done
  | _ ->
    (* Mixed-precision operands: generic element access, cold by design. *)
    for i = 0 to m - 1 do
      Array.fill row 0 n 0.0;
      for p = 0 to k - 1 do
        let av = Tensor.fbuf_get a (ao + (i * k) + p) in
        if av <> 0.0 then begin
          let row_b = bo + (p * n) in
          for j = 0 to n - 1 do
            Array.unsafe_set row j
              (Array.unsafe_get row j +. (av *. Tensor.fbuf_get b (row_b + j)))
          done
        end
      done;
      row_writeback c co n i row
    done)

(* Scalar int8 GEMM: the zero points are subtracted inline, so the
   accumulator is Σ(a-za)(b-zb) directly — the shape-class dispatcher's
   Tiny arm, where packing overhead would dominate.  Same overwrite +
   epilogue contract as [Blocked.gemm_i8]. *)
let gemm_i8_naive ~za ~zb ~epilogue ?(ep_off = 0) ~m ~n ~k ~(a : Tensor.i8buf)
    ~ao ~(b : Tensor.i8buf) ~bo ~(c : Tensor.i8buf) ~co () =
  for i = 0 to m - 1 do
    let arow = ao + (i * k) in
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for p = 0 to k - 1 do
        acc :=
          !acc
          + ((BA1.unsafe_get a (arow + p) - za)
            * (BA1.unsafe_get b (bo + (p * n) + j) - zb))
      done;
      let ci = co + (i * n) + j in
      let v = epilogue (ci - ep_off) !acc in
      BA1.unsafe_set c ci (if v > 127 then 127 else if v < -128 then -128 else v)
    done
  done

let check_conv_groups ~c ~groups ~cg =
  if groups <= 0 then
    Sod2_error.failf ~op:"Conv" Sod2_error.Shape_mismatch "groups must be positive, got %d"
      groups;
  if c mod groups <> 0 || c / groups <> cg then
    Sod2_error.failf ~op:"Conv" Sod2_error.Shape_mismatch
      "input channels %d with groups %d do not match weight channels-per-group %d" c
      groups cg

(* The env-free half of matmul: promoted operand dims, GEMM extents,
   broadcast batch space and the result dims (post promotion-squeeze). *)
type matmul_spec = {
  mm_batch_a : int array;
  mm_batch_b : int array;
  mm_batch : int array;
  mm_m : int;
  mm_n : int;
  mm_k : int;
  mm_out : int list;
}

let matmul_spec adims bdims =
  let promote_a = List.length adims = 1 in
  let promote_b = List.length bdims = 1 in
  let da = Array.of_list (if promote_a then 1 :: adims else adims) in
  let db = Array.of_list (if promote_b then bdims @ [ 1 ] else bdims) in
  let ra = Array.length da and rb = Array.length db in
  if ra < 2 || rb < 2 then invalid_arg "Linalg.matmul: operands must have rank >= 1";
  let m = da.(ra - 2) and ka = da.(ra - 1) in
  let kb = db.(rb - 2) and n = db.(rb - 1) in
  if ka <> kb then
    invalid_arg (Printf.sprintf "Linalg.matmul: inner dims %d vs %d" ka kb);
  let batch_a = Array.sub da 0 (ra - 2) in
  let batch_b = Array.sub db 0 (rb - 2) in
  let batch = Tensor.broadcast_dims batch_a batch_b in
  let out_full = Array.to_list batch @ [ m; n ] in
  let out =
    if promote_a then
      List.filteri (fun i _ -> i <> List.length out_full - 2) out_full
    else out_full
  in
  let out =
    if promote_b then List.filteri (fun i _ -> i <> List.length out - 1) out
    else out
  in
  { mm_batch_a = batch_a; mm_batch_b = batch_b; mm_batch = batch; mm_m = m; mm_n = n;
    mm_k = ka; mm_out = out }

let matmul_out_dims adims bdims = (matmul_spec adims bdims).mm_out

(* Output precision of a float binary kernel: promote to the wider kind. *)
let out_dtype a b =
  if Tensor.dtype a = Tensor.F64 || Tensor.dtype b = Tensor.F64 then Tensor.F64
  else Tensor.F32

(* Matmul on the trailing two axes with broadcast batch dims, written
   directly into [c] at element offset [co] (destination passing — the
   arena executor points this at a planned slot).  [inner] computes one
   (m×k)·(k×n) product, accumulating into C — the backend swaps in the
   blocked/parallel kernel here while the batch-broadcast bookkeeping
   stays single-sourced.  Returns the result dims. *)
let matmul_into ?(inner = naive_kernel) (va : Tensor.view) (vb : Tensor.view) ~c ~co =
  let s = matmul_spec va.Tensor.vdims vb.Tensor.vdims in
  let m = s.mm_m and n = s.mm_n and k = s.mm_k in
  let batch = s.mm_batch in
  let nb = Array.fold_left ( * ) 1 batch in
  Tensor.fbuf_fill c co (nb * m * n) 0.0;
  let fa = va.Tensor.vbuf and fb = vb.Tensor.vbuf in
  let batch_size_a = m * k and batch_size_b = k * n in
  let na = Array.fold_left ( * ) 1 s.mm_batch_a in
  let nbb = Array.fold_left ( * ) 1 s.mm_batch_b in
  for bi = 0 to nb - 1 do
    (* Broadcast batch index into each operand's batch space. *)
    let ix = Tensor.unravel batch bi in
    let off_of sub_batch count =
      if count = 1 then 0
      else
        let r = Array.length sub_batch and ro = Array.length batch in
        let off = ref 0 and stride = ref 1 in
        for i = r - 1 downto 0 do
          let v = if sub_batch.(i) = 1 then 0 else ix.(i + (ro - r)) in
          off := !off + (v * !stride);
          stride := !stride * sub_batch.(i)
        done;
        !off
    in
    let base_a = va.Tensor.voff + (off_of s.mm_batch_a na * batch_size_a) in
    let base_b = vb.Tensor.voff + (off_of s.mm_batch_b nbb * batch_size_b) in
    let base_o = co + (bi * m * n) in
    inner ~m ~n ~k ~a:fa ~ao:base_a ~b:fb ~bo:base_b ~c ~co:base_o
  done;
  s.mm_out

let matmul ?inner a b =
  let va = Tensor.view_f a and vb = Tensor.view_f b in
  let out_dims = matmul_out_dims va.Tensor.vdims vb.Tensor.vdims in
  let out = Tensor.zeros (out_dtype a b) out_dims in
  ignore (matmul_into ?inner va vb ~c:(Tensor.storage_f out) ~co:0);
  out

let transpose2d t =
  let d = Tensor.dims_arr t in
  let m = d.(0) and n = d.(1) in
  let src = Tensor.data_f t in
  let dst = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      dst.((j * m) + i) <- src.((i * n) + j)
    done
  done;
  Tensor.of_floats (Tensor.dtype t) [ n; m ] dst

let gemm ?inner ?(alpha = 1.0) ?(beta = 1.0) ?(trans_a = false) ?(trans_b = false) a b c =
  let a = if trans_a then transpose2d a else a in
  let b = if trans_b then transpose2d b else b in
  let ab = matmul ?inner a b in
  let ab = if alpha = 1.0 then ab else Tensor.map_f (fun v -> v *. alpha) ab in
  match c with
  | None -> ab
  | Some c -> Tensor.map2 (fun x y -> x +. (beta *. y)) ab (Tensor.broadcast_to c (Tensor.dims ab))

(* Destination-passing GEMM over views: transposes go through small
   scratch tensors, alpha/beta are applied in place on the destination
   window.  Returns the result dims. *)
let gemm_into ?inner ?(alpha = 1.0) ?(beta = 1.0) ?(trans_a = false) ?(trans_b = false)
    (va : Tensor.view) (vb : Tensor.view) (vc : Tensor.view option) ~c ~co =
  let va = if trans_a then Tensor.view_f (transpose2d (Tensor.of_view va)) else va in
  let vb = if trans_b then Tensor.view_f (transpose2d (Tensor.of_view vb)) else vb in
  let od = matmul_into ?inner va vb ~c ~co in
  let n_out = List.fold_left ( * ) 1 od in
  if alpha <> 1.0 then
    for i = co to co + n_out - 1 do
      Tensor.fbuf_set c i (Tensor.fbuf_get c i *. alpha)
    done;
  (match vc with
  | None -> ()
  | Some vcv ->
    let ct = Tensor.broadcast_to (Tensor.of_view vcv) od in
    let cd = Tensor.data_f ct in
    for i = 0 to n_out - 1 do
      Tensor.fbuf_set c (co + i) (Tensor.fbuf_get c (co + i) +. (beta *. cd.(i)))
    done);
  od

let conv2d_into ?(stride = (1, 1)) ?(pad = (0, 0, 0, 0)) ?(dilation = (1, 1)) ?(groups = 1)
    (vx : Tensor.view) (vw : Tensor.view) (vb : Tensor.view option) ~c:dst ~co =
  let dx = Array.of_list vx.Tensor.vdims and dw = Array.of_list vw.Tensor.vdims in
  if Array.length dx <> 4 then invalid_arg "Linalg.conv2d: input must be N×C×H×W";
  if Array.length dw <> 4 then invalid_arg "Linalg.conv2d: weight must be M×C×KH×KW";
  let n = dx.(0) and c = dx.(1) and h = dx.(2) and wd = dx.(3) in
  let m = dw.(0) and cg = dw.(1) and kh = dw.(2) and kw = dw.(3) in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  check_conv_groups ~c ~groups ~cg;
  let oh = conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb ~dilation:dh in
  let ow = conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr ~dilation:dw_ in
  let so = vx.Tensor.voff and wo = vw.Tensor.voff in
  let mg = m / groups in
  (* [sum_taps] accumulates one output element over (ci, ky, kx) in double
     precision, from zero — the same summation order as the im2col GEMM —
     and the caller folds the bias in at the single rounding store. *)
  let sum_taps =
    match vx.Tensor.vbuf, vw.Tensor.vbuf with
    | Tensor.FB32 src, Tensor.FB32 wsrc ->
      fun ~ni ~g ~mi ~oy ~ox ->
        let acc = ref 0.0 in
        for ci = 0 to cg - 1 do
          let cin = (g * cg) + ci in
          for ky = 0 to kh - 1 do
            let iy = (oy * sh) - pt + (ky * dh) in
            if iy >= 0 && iy < h then
              for kx = 0 to kw - 1 do
                let ix = (ox * sw) - pl + (kx * dw_) in
                if ix >= 0 && ix < wd then
                  acc :=
                    !acc
                    +. BA1.unsafe_get src (so + (((((ni * c) + cin) * h) + iy) * wd) + ix)
                       *. BA1.unsafe_get wsrc
                            (wo + (((((mi * cg) + ci) * kh) + ky) * kw) + kx)
              done
          done
        done;
        !acc
    | _ ->
      fun ~ni ~g ~mi ~oy ~ox ->
        let src = vx.Tensor.vbuf and wsrc = vw.Tensor.vbuf in
        let acc = ref 0.0 in
        for ci = 0 to cg - 1 do
          let cin = (g * cg) + ci in
          for ky = 0 to kh - 1 do
            let iy = (oy * sh) - pt + (ky * dh) in
            if iy >= 0 && iy < h then
              for kx = 0 to kw - 1 do
                let ix = (ox * sw) - pl + (kx * dw_) in
                if ix >= 0 && ix < wd then
                  acc :=
                    !acc
                    +. Tensor.fbuf_get src (so + (((((ni * c) + cin) * h) + iy) * wd) + ix)
                       *. Tensor.fbuf_get wsrc
                            (wo + (((((mi * cg) + ci) * kh) + ky) * kw) + kx)
              done
          done
        done;
        !acc
  in
  for ni = 0 to n - 1 do
    for mi = 0 to m - 1 do
      let g = mi / mg in
      let bias_v =
        match vb with Some v -> Tensor.fbuf_get v.Tensor.vbuf (v.Tensor.voff + mi) | None -> 0.0
      in
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = sum_taps ~ni ~g ~mi ~oy ~ox in
          Tensor.fbuf_set dst
            (co + (((((ni * m) + mi) * oh) + oy) * ow) + ox)
            (bias_v +. acc)
        done
      done
    done
  done;
  [ n; m; oh; ow ]

let conv2d ?stride ?pad ?dilation ?groups x w b =
  let vx = Tensor.view_f x and vw = Tensor.view_f w in
  let vb = Option.map Tensor.view_f b in
  let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
  let sh, sw = Option.value stride ~default:(1, 1) in
  let pt, pl, pb, pr = Option.value pad ~default:(0, 0, 0, 0) in
  let dh, dw_ = Option.value dilation ~default:(1, 1) in
  let oh = conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt ~pad_end:pb ~dilation:dh in
  let ow = conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl ~pad_end:pr ~dilation:dw_ in
  let out = Tensor.zeros (out_dtype x w) [ dx.(0); dw.(0); oh; ow ] in
  ignore (conv2d_into ?stride ?pad ?dilation ?groups vx vw vb ~c:(Tensor.storage_f out) ~co:0);
  out

let conv1d ?(stride = 1) ?(pad = (0, 0)) ?(dilation = 1) ?(groups = 1) x w b =
  (* Reuse conv2d by inserting a unit height axis. *)
  let dx = Tensor.dims x and dw = Tensor.dims w in
  let x' =
    match dx with
    | [ n; c; l ] -> Tensor.reshape x [ n; c; 1; l ]
    | _ -> invalid_arg "Linalg.conv1d: input must be N×C×L"
  in
  let w' =
    match dw with
    | [ m; cg; k ] -> Tensor.reshape w [ m; cg; 1; k ]
    | _ -> invalid_arg "Linalg.conv1d: weight must be M×C×K"
  in
  let pl, pr = pad in
  let out = conv2d ~stride:(1, stride) ~pad:(0, pl, 0, pr) ~dilation:(1, dilation) ~groups x' w' b in
  match Tensor.dims out with
  | [ n; m; 1; ol ] -> Tensor.reshape out [ n; m; ol ]
  | _ -> assert false

let pool2d ~kind ~kernel ?(stride = (1, 1)) ?(pad = (0, 0, 0, 0)) x =
  let dx = Tensor.dims_arr x in
  let n = dx.(0) and c = dx.(1) and h = dx.(2) and w = dx.(3) in
  let kh, kw = kernel in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let oh = conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb ~dilation:1 in
  let ow = conv2d_out_dim ~in_:w ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr ~dilation:1 in
  let src = Tensor.data_f x in
  let dst = Array.make (n * c * oh * ow) 0.0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = ref (if kind = `Max then neg_infinity else 0.0) in
          let count = ref 0 in
          for ky = 0 to kh - 1 do
            let iy = (oy * sh) - pt + ky in
            if iy >= 0 && iy < h then
              for kx = 0 to kw - 1 do
                let ix = (ox * sw) - pl + kx in
                if ix >= 0 && ix < w then begin
                  let v = src.((((((ni * c) + ci) * h) + iy) * w) + ix) in
                  (match kind with
                  | `Max -> if v > !acc then acc := v
                  | `Avg -> acc := !acc +. v);
                  incr count
                end
              done
          done;
          let v =
            match kind with
            | `Max -> if !count = 0 then 0.0 else !acc
            | `Avg -> if !count = 0 then 0.0 else !acc /. float_of_int !count
          in
          dst.((((((ni * c) + ci) * oh) + oy) * ow) + ox) <- v
        done
      done
    done
  done;
  Tensor.of_floats (Tensor.dtype x) [ n; c; oh; ow ] dst

let max_pool2d ~kernel ?stride ?pad x = pool2d ~kind:`Max ~kernel ?stride ?pad x
let avg_pool2d ~kernel ?stride ?pad x = pool2d ~kind:`Avg ~kernel ?stride ?pad x

let global_avg_pool x =
  let d = Tensor.dims_arr x in
  if Array.length d < 3 then invalid_arg "Linalg.global_avg_pool: rank must be >= 3";
  let n = d.(0) and c = d.(1) in
  let spatial = Array.fold_left ( * ) 1 (Array.sub d 2 (Array.length d - 2)) in
  let src = Tensor.data_f x in
  let out_dims = n :: c :: List.init (Array.length d - 2) (fun _ -> 1) in
  let dst = Array.make (n * c) 0.0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * spatial in
      let acc = ref 0.0 in
      for s = 0 to spatial - 1 do
        acc := !acc +. src.(base + s)
      done;
      dst.((ni * c) + ci) <- !acc /. float_of_int spatial
    done
  done;
  Tensor.of_floats (Tensor.dtype x) out_dims dst
