(** Dense linear-algebra and convolution kernels used by the runtime's
    reference interpreter.  Layouts follow ONNX conventions: matmul uses
    trailing two axes with numpy-style batch broadcasting, convolutions are
    NCHW / NCW with OIHW / OIW weights. *)

type gemm_kernel =
  m:int -> n:int -> k:int ->
  a:Tensor.fbuf -> ao:int -> b:Tensor.fbuf -> bo:int ->
  c:Tensor.fbuf -> co:int -> unit
(** One flat row-major [(m×k)·(k×n)] product accumulated into C at the
    given offsets ([c += a·b]), over raw float storage in any precision.
    The pluggable unit the blocked/parallel backend swaps in;
    {!naive_kernel} is the reference.

    Numerical contract shared by every implementation: each output element
    is accumulated in double precision over the full depth [k] in ascending
    order and folded into [C] with a single store — the store is the only
    rounding point under f32, making naive and blocked kernels bit-identical
    on finite inputs. *)

val naive_kernel : gemm_kernel

val gemm_i8_naive :
  za:int -> zb:int -> epilogue:(int -> int -> int) -> ?ep_off:int ->
  m:int -> n:int -> k:int -> a:Tensor.i8buf -> ao:int ->
  b:Tensor.i8buf -> bo:int -> c:Tensor.i8buf -> co:int -> unit -> unit
(** Scalar int8 GEMM with inline zero-point subtraction: the epilogue
    receives Σ(a-za)(b-zb) per element and returns the int8 value (the
    store clamps to the rails).  [C] is overwritten, not accumulated —
    same contract as [Blocked.gemm_i8], whose shape-class dispatcher
    uses this for tiny extents where packing overhead dominates. *)

val check_conv_groups : c:int -> groups:int -> cg:int -> unit
(** Validates grouped-convolution channel bookkeeping: [groups > 0],
    [c mod groups = 0] and [c / groups = cg].  Raises a structured
    {!Sod2_error.Error} (shape-mismatch) otherwise. *)

val matmul : ?inner:gemm_kernel -> Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] contracts the last axis of [a] with the second-to-last of
    [b]; leading axes broadcast.  1-d operands are promoted as in numpy.
    [inner] overrides the per-batch GEMM kernel (default naive). *)

val matmul_out_dims : int list -> int list -> int list
(** Result dims of {!matmul} for the given operand dims (promotion and
    batch broadcast applied); raises on incompatible operands.  Lets the
    arena executor size a destination slot before calling
    {!matmul_into}. *)

val matmul_into :
  ?inner:gemm_kernel -> Tensor.view -> Tensor.view ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!matmul}: writes the product into [c] starting at
    element offset [co] (the window is zeroed first — [inner]
    accumulates), reading the operands through offset-carrying views.
    Returns the result dims. *)

val gemm_into :
  ?inner:gemm_kernel ->
  ?alpha:float -> ?beta:float -> ?trans_a:bool -> ?trans_b:bool ->
  Tensor.view -> Tensor.view -> Tensor.view option ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!gemm}; transposed operands go through scratch
    tensors, alpha/beta are folded in place on the destination window. *)

val gemm :
  ?inner:gemm_kernel ->
  ?alpha:float -> ?beta:float -> ?trans_a:bool -> ?trans_b:bool ->
  Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t
(** ONNX [Gemm]: [alpha * op(a) @ op(b) + beta * c] on 2-d operands with
    unidirectional broadcast of [c]. *)

val conv2d :
  ?stride:int * int -> ?pad:int * int * int * int -> ?dilation:int * int ->
  ?groups:int -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t
(** [conv2d x w b] with [x : N×C×H×W], [w : M×(C/g)×Kh×Kw], optional bias
    [b : M].  [pad] is (top, left, bottom, right). *)

val conv2d_into :
  ?stride:int * int -> ?pad:int * int * int * int -> ?dilation:int * int ->
  ?groups:int -> Tensor.view -> Tensor.view -> Tensor.view option ->
  c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!conv2d}: writes the [N×M×Oh×Ow] result into [c]
    at element offset [co] and returns those dims. *)

val conv1d :
  ?stride:int -> ?pad:int * int -> ?dilation:int -> ?groups:int ->
  Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t
(** [conv1d x w b] with [x : N×C×L], [w : M×(C/g)×K]. *)

val max_pool2d :
  kernel:int * int -> ?stride:int * int -> ?pad:int * int * int * int ->
  Tensor.t -> Tensor.t

val avg_pool2d :
  kernel:int * int -> ?stride:int * int -> ?pad:int * int * int * int ->
  Tensor.t -> Tensor.t
(** Average pooling; padded positions are excluded from the divisor
    (ONNX [count_include_pad = 0]). *)

val global_avg_pool : Tensor.t -> Tensor.t
(** [N×C×spatial…] → [N×C×1×…×1]. *)

val conv2d_out_dim : in_:int -> kernel:int -> stride:int -> pad_begin:int ->
  pad_end:int -> dilation:int -> int
(** The ONNX output-extent formula shared by conv and pooling:
    [floor ((in + pads - ((k-1)*d + 1)) / stride) + 1]. *)
