module BA1 = Bigarray.Array1

type par = { run : int -> (int -> unit) -> unit }

let sequential =
  {
    run =
      (fun n f ->
        for i = 0 to n - 1 do
          f i
        done);
  }

type tiles = {
  tm : int;
  tn : int;
  tk : int;  (* retained for the autotuner's config space; packing is full-depth *)
  kunroll : int;
}

let default_tiles = { tm = 64; tn = 32; tk = 128; kunroll = 4 }

(* Floors measured against the real kernel: micro-tiles need at least 8
   quad-rows/pair-columns to amortize the edge guards, and an unroll below
   4 leaves FP-add latency exposed.  The autotuner steers above these
   floors. *)
let tiles_of ~tile_m ~tile_n ~tile_k ~unroll =
  { tm = max 32 tile_m; tn = max 32 tile_n; tk = max 64 tile_k; kunroll = max 4 unroll }

let ceil_div x y = (x + y - 1) / y

(* 4×2 register micro-tile over packed panels: [ap] holds row quads
   ([(ip*k + p)*4 + ii]), [bp] column pairs ([(jp*k + p)*2 + jj]), so both
   streams are read contiguously.  Accumulators travel as tail-call
   arguments, which the native compiler keeps in FP registers — the whole
   k-loop runs without touching C, and the eight independent accumulator
   chains hide the FP-add latency (6 loads feed 8 multiply-adds).

   Each accumulator is one ascending-p chain of double-precision adds over
   the full depth — the same operation sequence as the naive reference —
   so the single rounding store at write-back yields bit-identical results
   in every precision. *)
let rec micro4x2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk <= 0 then (c00, c01, c10, c11, c20, c21, c30, c31)
  else
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    micro4x2 ap bp (ia + 4) (ib + 2) (kk - 1)
      (c00 +. (a0 *. b0))
      (c01 +. (a0 *. b1))
      (c10 +. (a1 *. b0))
      (c11 +. (a1 *. b1))
      (c20 +. (a2 *. b0))
      (c21 +. (a2 *. b1))
      (c30 +. (a3 *. b0))
      (c31 +. (a3 *. b1))

let rec micro4x2u2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk < 2 then micro4x2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31
  else
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a4 = Array.unsafe_get ap (ia + 4)
    and a5 = Array.unsafe_get ap (ia + 5)
    and a6 = Array.unsafe_get ap (ia + 6)
    and a7 = Array.unsafe_get ap (ia + 7)
    and b2 = Array.unsafe_get bp (ib + 2)
    and b3 = Array.unsafe_get bp (ib + 3) in
    micro4x2u2 ap bp (ia + 8) (ib + 4) (kk - 2)
      (c00 +. (a4 *. b2))
      (c01 +. (a4 *. b3))
      (c10 +. (a5 *. b2))
      (c11 +. (a5 *. b3))
      (c20 +. (a6 *. b2))
      (c21 +. (a6 *. b3))
      (c30 +. (a7 *. b2))
      (c31 +. (a7 *. b3))

let rec micro4x2u4 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk < 4 then micro4x2u2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31
  else begin
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 4)
    and a1 = Array.unsafe_get ap (ia + 5)
    and a2 = Array.unsafe_get ap (ia + 6)
    and a3 = Array.unsafe_get ap (ia + 7)
    and b0 = Array.unsafe_get bp (ib + 2)
    and b1 = Array.unsafe_get bp (ib + 3) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 8)
    and a1 = Array.unsafe_get ap (ia + 9)
    and a2 = Array.unsafe_get ap (ia + 10)
    and a3 = Array.unsafe_get ap (ia + 11)
    and b0 = Array.unsafe_get bp (ib + 4)
    and b1 = Array.unsafe_get bp (ib + 5) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 12)
    and a1 = Array.unsafe_get ap (ia + 13)
    and a2 = Array.unsafe_get ap (ia + 14)
    and a3 = Array.unsafe_get ap (ia + 15)
    and b0 = Array.unsafe_get bp (ib + 6)
    and b1 = Array.unsafe_get bp (ib + 7) in
    micro4x2u4 ap bp (ia + 16) (ib + 8) (kk - 4)
      (c00 +. (a0 *. b0))
      (c01 +. (a0 *. b1))
      (c10 +. (a1 *. b0))
      (c11 +. (a1 *. b1))
      (c20 +. (a2 *. b0))
      (c21 +. (a2 *. b1))
      (c30 +. (a3 *. b0))
      (c31 +. (a3 *. b1))
  end

(* Pack all of B into one full-depth panel (shared read-only by every macro
   row-tile): columns grouped in pairs, odd tails padded with zeros so the
   micro-kernel never branches on the edge.  One monomorphic loop per
   storage kind — the generic accessor would put a C call in the pack. *)
let pack_b_f32 (b : Tensor.f32buf) bo ~n ~k ~npairs =
  let panel = Array.make (npairs * k * 2) 0.0 in
  for jp = 0 to npairs - 1 do
    let j = jp * 2 in
    let base = jp * k * 2 in
    if j + 1 < n then
      for p = 0 to k - 1 do
        let s = bo + (p * n) + j in
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b s);
        Array.unsafe_set panel (base + (p * 2) + 1) (BA1.unsafe_get b (s + 1))
      done
    else
      for p = 0 to k - 1 do
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b (bo + (p * n) + j))
      done
  done;
  panel

let pack_b_f64 (b : Tensor.f64buf) bo ~n ~k ~npairs =
  let panel = Array.make (npairs * k * 2) 0.0 in
  for jp = 0 to npairs - 1 do
    let j = jp * 2 in
    let base = jp * k * 2 in
    if j + 1 < n then
      for p = 0 to k - 1 do
        let s = bo + (p * n) + j in
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b s);
        Array.unsafe_set panel (base + (p * 2) + 1) (BA1.unsafe_get b (s + 1))
      done
    else
      for p = 0 to k - 1 do
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b (bo + (p * n) + j))
      done
  done;
  panel

(* Pack one macro row-tile of A into full-depth row quads, short tiles
   zero-padded. *)
let pack_a_f32 (a : Tensor.f32buf) ao ~k ~i0 ~mc abuf =
  let mquads = ceil_div mc 4 in
  for ip = 0 to mquads - 1 do
    let i = i0 + (ip * 4) in
    let base = ip * k * 4 in
    let rows = min 4 (i0 + mc - i) in
    let r0 = ao + (i * k) in
    if rows = 4 then
      for p = 0 to k - 1 do
        let d = base + (p * 4) and s = r0 + p in
        Array.unsafe_set abuf d (BA1.unsafe_get a s);
        Array.unsafe_set abuf (d + 1) (BA1.unsafe_get a (s + k));
        Array.unsafe_set abuf (d + 2) (BA1.unsafe_get a (s + (2 * k)));
        Array.unsafe_set abuf (d + 3) (BA1.unsafe_get a (s + (3 * k)))
      done
    else begin
      Array.fill abuf base (k * 4) 0.0;
      for r = 0 to rows - 1 do
        let rs = r0 + (r * k) in
        for p = 0 to k - 1 do
          Array.unsafe_set abuf (base + (p * 4) + r) (BA1.unsafe_get a (rs + p))
        done
      done
    end
  done

let pack_a_f64 (a : Tensor.f64buf) ao ~k ~i0 ~mc abuf =
  let mquads = ceil_div mc 4 in
  for ip = 0 to mquads - 1 do
    let i = i0 + (ip * 4) in
    let base = ip * k * 4 in
    let rows = min 4 (i0 + mc - i) in
    let r0 = ao + (i * k) in
    if rows = 4 then
      for p = 0 to k - 1 do
        let d = base + (p * 4) and s = r0 + p in
        Array.unsafe_set abuf d (BA1.unsafe_get a s);
        Array.unsafe_set abuf (d + 1) (BA1.unsafe_get a (s + k));
        Array.unsafe_set abuf (d + 2) (BA1.unsafe_get a (s + (2 * k)));
        Array.unsafe_set abuf (d + 3) (BA1.unsafe_get a (s + (3 * k)))
      done
    else begin
      Array.fill abuf base (k * 4) 0.0;
      for r = 0 to rows - 1 do
        let rs = r0 + (r * k) in
        for p = 0 to k - 1 do
          Array.unsafe_set abuf (base + (p * 4) + r) (BA1.unsafe_get a (rs + p))
        done
      done
    end
  done

let gemm ?(par = sequential) ?(tiles = default_tiles) ?epilogue ?(ep_off = 0) ~m ~n ~k
    ~(a : Tensor.fbuf) ~ao ~(b : Tensor.fbuf) ~bo ~(c : Tensor.fbuf) ~co () =
  if m > 0 && n > 0 && k > 0 then begin
    let { tm; tn; tk = _; kunroll } = tiles in
    let npairs = ceil_div n 2 in
    let bp =
      match b with
      | Tensor.FB32 bb -> pack_b_f32 bb bo ~n ~k ~npairs
      | Tensor.FB64 bb -> pack_b_f64 bb bo ~n ~k ~npairs
    in
    (* Read-modify-write on the destination, matched once per call: the
       write-back is O(mn) against the O(mnk) compute, so the closure call
       per element stays in the noise. *)
    let cread, cstore =
      match c with
      | Tensor.FB32 cb ->
        (fun i -> BA1.unsafe_get cb i), fun i v -> BA1.unsafe_set cb i v
      | Tensor.FB64 cb ->
        (fun i -> BA1.unsafe_get cb i), fun i v -> BA1.unsafe_set cb i v
    in
    let jpt = max 1 (tn / 2) in
    let jt_count = ceil_div npairs jpt in
    par.run (ceil_div m tm) (fun it ->
        let i0 = it * tm in
        let mc = min tm (m - i0) in
        let mquads = ceil_div mc 4 in
        let abuf = Array.make (mquads * k * 4) 0.0 in
        (match a with
        | Tensor.FB32 ab -> pack_a_f32 ab ao ~k ~i0 ~mc abuf
        | Tensor.FB64 ab -> pack_a_f64 ab ao ~k ~i0 ~mc abuf);
        let micro =
          if kunroll >= 4 then micro4x2u4
          else if kunroll >= 2 then micro4x2u2
          else micro4x2
        in
        for jt = 0 to jt_count - 1 do
          let jp_end = min npairs ((jt + 1) * jpt) in
          for ip = 0 to mquads - 1 do
            let iabase = ip * k * 4 in
            let i = i0 + (ip * 4) in
            let rows = min 4 (i0 + mc - i) in
            for jp = jt * jpt to jp_end - 1 do
              let c00, c01, c10, c11, c20, c21, c30, c31 =
                micro abuf bp iabase (jp * k * 2) k 0.0 0.0 0.0 0.0 0.0 0.0 0.0 0.0
              in
              let j = jp * 2 in
              let wide = j + 1 < n in
              let ci = co + (i * n) + j in
              (match epilogue with
              | None ->
                cstore ci (cread ci +. c00);
                if wide then cstore (ci + 1) (cread (ci + 1) +. c01);
                if rows > 1 then begin
                  let ci1 = ci + n in
                  cstore ci1 (cread ci1 +. c10);
                  if wide then cstore (ci1 + 1) (cread (ci1 + 1) +. c11);
                  if rows > 2 then begin
                    let ci2 = ci1 + n in
                    cstore ci2 (cread ci2 +. c20);
                    if wide then cstore (ci2 + 1) (cread (ci2 + 1) +. c21);
                    if rows > 3 then begin
                      let ci3 = ci2 + n in
                      cstore ci3 (cread ci3 +. c30);
                      if wide then cstore (ci3 + 1) (cread (ci3 + 1) +. c31)
                    end
                  end
                end
              | Some f ->
                (* [ei] is the epilogue's destination-relative index: a
                   plain subtraction here keeps arena callers (ep_off =
                   their slot base) off a per-element shift closure.  The
                   epilogue sees the double-precision pre-store value, and
                   the store is still the single rounding point. *)
                let ei = ci - ep_off in
                cstore ci (f ei (cread ci +. c00));
                if wide then cstore (ci + 1) (f (ei + 1) (cread (ci + 1) +. c01));
                if rows > 1 then begin
                  let ci1 = ci + n and ei1 = ei + n in
                  cstore ci1 (f ei1 (cread ci1 +. c10));
                  if wide then cstore (ci1 + 1) (f (ei1 + 1) (cread (ci1 + 1) +. c11));
                  if rows > 2 then begin
                    let ci2 = ci1 + n and ei2 = ei1 + n in
                    cstore ci2 (f ei2 (cread ci2 +. c20));
                    if wide then cstore (ci2 + 1) (f (ei2 + 1) (cread (ci2 + 1) +. c21));
                    if rows > 3 then begin
                      let ci3 = ci2 + n and ei3 = ei2 + n in
                      cstore ci3 (f ei3 (cread ci3 +. c30));
                      if wide then cstore (ci3 + 1) (f (ei3 + 1) (cread (ci3 + 1) +. c31))
                    end
                  end
                end)
            done
          done
        done)
  end

let conv2d_im2col_into ?(par = sequential) ?(tiles = default_tiles) ?epilogue
    ?(ep_off = 0) ~stride ~pad ~dilation ~groups (vx : Tensor.view)
    (vw : Tensor.view) (vbias : Tensor.view option) ~c:dst ~co =
  let dx = Array.of_list vx.Tensor.vdims and dw = Array.of_list vw.Tensor.vdims in
  let n = dx.(0) and c = dx.(1) and h = dx.(2) and wd = dx.(3) in
  let m = dw.(0) and cg = dw.(1) and kh = dw.(2) and kw = dw.(3) in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  Linalg.check_conv_groups ~c ~groups ~cg;
  let oh =
    Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
      ~dilation:dh
  in
  let ow =
    Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr
      ~dilation:dw_
  in
  let mg = m / groups in
  let kdim = cg * kh * kw in
  let ndim = oh * ow in
  (* The gemm accumulates into its destination window, so it must start
     from the bias value (or zero) regardless of what the buffer held. *)
  (match vbias with
  | Some bt ->
    for ni = 0 to n - 1 do
      for mi = 0 to m - 1 do
        Tensor.fbuf_fill dst
          (co + (((ni * m) + mi) * ndim))
          ndim
          (Tensor.fbuf_get bt.Tensor.vbuf (bt.Tensor.voff + mi))
      done
    done
  | None -> Tensor.fbuf_fill dst co (n * m * ndim) 0.0);
  if ndim > 0 && kdim > 0 then begin
    (* One column buffer in the input's precision (the copy is lossless),
       rebuilt per (image, group); gemm completes before the next rebuild,
       so reuse is safe even under the parallel runner. *)
    let col = Tensor.fbuf_create (Tensor.view_dtype vx) (kdim * ndim) in
    let fill_col =
      match vx.Tensor.vbuf, col with
      | Tensor.FB32 src, Tensor.FB32 colb ->
        fun ni g ->
          BA1.fill colb 0.0;
          for ci = 0 to cg - 1 do
            let cin = (g * cg) + ci in
            let src_base = vx.Tensor.voff + (((ni * c) + cin) * h * wd) in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let rbase = ((((ci * kh) + ky) * kw) + kx) * ndim in
                for oy = 0 to oh - 1 do
                  let iy = (oy * sh) - pt + (ky * dh) in
                  if iy >= 0 && iy < h then begin
                    let sbase = src_base + (iy * wd) in
                    let obase = rbase + (oy * ow) in
                    for ox = 0 to ow - 1 do
                      let ix = (ox * sw) - pl + (kx * dw_) in
                      if ix >= 0 && ix < wd then
                        BA1.unsafe_set colb (obase + ox) (BA1.unsafe_get src (sbase + ix))
                    done
                  end
                done
              done
            done
          done
      | Tensor.FB64 src, Tensor.FB64 colb ->
        fun ni g ->
          BA1.fill colb 0.0;
          for ci = 0 to cg - 1 do
            let cin = (g * cg) + ci in
            let src_base = vx.Tensor.voff + (((ni * c) + cin) * h * wd) in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let rbase = ((((ci * kh) + ky) * kw) + kx) * ndim in
                for oy = 0 to oh - 1 do
                  let iy = (oy * sh) - pt + (ky * dh) in
                  if iy >= 0 && iy < h then begin
                    let sbase = src_base + (iy * wd) in
                    let obase = rbase + (oy * ow) in
                    for ox = 0 to ow - 1 do
                      let ix = (ox * sw) - pl + (kx * dw_) in
                      if ix >= 0 && ix < wd then
                        BA1.unsafe_set colb (obase + ox) (BA1.unsafe_get src (sbase + ix))
                    done
                  end
                done
              done
            done
          done
      | _ -> assert false (* [col]'s kind mirrors the input's *)
    in
    for ni = 0 to n - 1 do
      for g = 0 to groups - 1 do
        fill_col ni g;
        (* [co] makes the gemm's write indices global flat offsets into the
           destination buffer; [ep_off] carries the caller's epilogue base
           through unchanged so epilogue indices stay relative to it. *)
        gemm ~par ~tiles ?epilogue ~ep_off ~m:mg ~n:ndim ~k:kdim ~a:vw.Tensor.vbuf
          ~ao:(vw.Tensor.voff + (g * mg * kdim))
          ~b:col ~bo:0 ~c:dst
          ~co:(co + (((ni * m) + (g * mg)) * ndim))
          ()
      done
    done
  end;
  [ n; m; oh; ow ]

let conv2d_im2col ?par ?tiles ?epilogue ~stride ~pad ~dilation ~groups x w bias =
  let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  let oh =
    Linalg.conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt
      ~pad_end:pb ~dilation:dh
  in
  let ow =
    Linalg.conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl
      ~pad_end:pr ~dilation:dw_
  in
  let odt =
    if Tensor.dtype x = Tensor.F64 || Tensor.dtype w = Tensor.F64 then Tensor.F64
    else Tensor.F32
  in
  let out = Tensor.zeros odt [ dx.(0); dw.(0); oh; ow ] in
  ignore
    (conv2d_im2col_into ?par ?tiles ?epilogue ~stride ~pad ~dilation ~groups
       (Tensor.view_f x) (Tensor.view_f w)
       (Option.map Tensor.view_f bias)
       ~c:(Tensor.storage_f out) ~co:0);
  out
