module BA1 = Bigarray.Array1

type par = { run : int -> (int -> unit) -> unit }

let sequential =
  {
    run =
      (fun n f ->
        for i = 0 to n - 1 do
          f i
        done);
  }

type tiles = {
  tm : int;
  tn : int;
  tk : int;  (* retained for the autotuner's config space; packing is full-depth *)
  kunroll : int;
}

let default_tiles = { tm = 64; tn = 32; tk = 128; kunroll = 4 }

(* Floors measured against the real kernel: micro-tiles need at least 8
   quad-rows/pair-columns to amortize the edge guards, and an unroll below
   4 leaves FP-add latency exposed.  The autotuner steers above these
   floors. *)
let tiles_of ~tile_m ~tile_n ~tile_k ~unroll =
  { tm = max 32 tile_m; tn = max 32 tile_n; tk = max 64 tile_k; kunroll = max 4 unroll }

let ceil_div x y = (x + y - 1) / y

(* 4×2 register micro-tile over packed panels: [ap] holds row quads
   ([(ip*k + p)*4 + ii]), [bp] column pairs ([(jp*k + p)*2 + jj]), so both
   streams are read contiguously.  Accumulators travel as tail-call
   arguments, which the native compiler keeps in FP registers — the whole
   k-loop runs without touching C, and the eight independent accumulator
   chains hide the FP-add latency (6 loads feed 8 multiply-adds).

   Each accumulator is one ascending-p chain of double-precision adds over
   the full depth — the same operation sequence as the naive reference —
   so the single rounding store at write-back yields bit-identical results
   in every precision. *)
let rec micro4x2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk <= 0 then (c00, c01, c10, c11, c20, c21, c30, c31)
  else
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    micro4x2 ap bp (ia + 4) (ib + 2) (kk - 1)
      (c00 +. (a0 *. b0))
      (c01 +. (a0 *. b1))
      (c10 +. (a1 *. b0))
      (c11 +. (a1 *. b1))
      (c20 +. (a2 *. b0))
      (c21 +. (a2 *. b1))
      (c30 +. (a3 *. b0))
      (c31 +. (a3 *. b1))

let rec micro4x2u2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk < 2 then micro4x2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31
  else
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a4 = Array.unsafe_get ap (ia + 4)
    and a5 = Array.unsafe_get ap (ia + 5)
    and a6 = Array.unsafe_get ap (ia + 6)
    and a7 = Array.unsafe_get ap (ia + 7)
    and b2 = Array.unsafe_get bp (ib + 2)
    and b3 = Array.unsafe_get bp (ib + 3) in
    micro4x2u2 ap bp (ia + 8) (ib + 4) (kk - 2)
      (c00 +. (a4 *. b2))
      (c01 +. (a4 *. b3))
      (c10 +. (a5 *. b2))
      (c11 +. (a5 *. b3))
      (c20 +. (a6 *. b2))
      (c21 +. (a6 *. b3))
      (c30 +. (a7 *. b2))
      (c31 +. (a7 *. b3))

let rec micro4x2u4 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31 =
  if kk < 4 then micro4x2u2 ap bp ia ib kk c00 c01 c10 c11 c20 c21 c30 c31
  else begin
    let a0 = Array.unsafe_get ap ia
    and a1 = Array.unsafe_get ap (ia + 1)
    and a2 = Array.unsafe_get ap (ia + 2)
    and a3 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 4)
    and a1 = Array.unsafe_get ap (ia + 5)
    and a2 = Array.unsafe_get ap (ia + 6)
    and a3 = Array.unsafe_get ap (ia + 7)
    and b0 = Array.unsafe_get bp (ib + 2)
    and b1 = Array.unsafe_get bp (ib + 3) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 8)
    and a1 = Array.unsafe_get ap (ia + 9)
    and a2 = Array.unsafe_get ap (ia + 10)
    and a3 = Array.unsafe_get ap (ia + 11)
    and b0 = Array.unsafe_get bp (ib + 4)
    and b1 = Array.unsafe_get bp (ib + 5) in
    let c00 = c00 +. (a0 *. b0)
    and c01 = c01 +. (a0 *. b1)
    and c10 = c10 +. (a1 *. b0)
    and c11 = c11 +. (a1 *. b1)
    and c20 = c20 +. (a2 *. b0)
    and c21 = c21 +. (a2 *. b1)
    and c30 = c30 +. (a3 *. b0)
    and c31 = c31 +. (a3 *. b1) in
    let a0 = Array.unsafe_get ap (ia + 12)
    and a1 = Array.unsafe_get ap (ia + 13)
    and a2 = Array.unsafe_get ap (ia + 14)
    and a3 = Array.unsafe_get ap (ia + 15)
    and b0 = Array.unsafe_get bp (ib + 6)
    and b1 = Array.unsafe_get bp (ib + 7) in
    micro4x2u4 ap bp (ia + 16) (ib + 8) (kk - 4)
      (c00 +. (a0 *. b0))
      (c01 +. (a0 *. b1))
      (c10 +. (a1 *. b0))
      (c11 +. (a1 *. b1))
      (c20 +. (a2 *. b0))
      (c21 +. (a2 *. b1))
      (c30 +. (a3 *. b0))
      (c31 +. (a3 *. b1))
  end

(* Pack all of B into one full-depth panel (shared read-only by every macro
   row-tile): columns grouped in pairs, odd tails padded with zeros so the
   micro-kernel never branches on the edge.  One monomorphic loop per
   storage kind — the generic accessor would put a C call in the pack. *)
let pack_b_f32 (b : Tensor.f32buf) bo ~n ~k ~npairs =
  let panel = Array.make (npairs * k * 2) 0.0 in
  for jp = 0 to npairs - 1 do
    let j = jp * 2 in
    let base = jp * k * 2 in
    if j + 1 < n then
      for p = 0 to k - 1 do
        let s = bo + (p * n) + j in
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b s);
        Array.unsafe_set panel (base + (p * 2) + 1) (BA1.unsafe_get b (s + 1))
      done
    else
      for p = 0 to k - 1 do
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b (bo + (p * n) + j))
      done
  done;
  panel

let pack_b_f64 (b : Tensor.f64buf) bo ~n ~k ~npairs =
  let panel = Array.make (npairs * k * 2) 0.0 in
  for jp = 0 to npairs - 1 do
    let j = jp * 2 in
    let base = jp * k * 2 in
    if j + 1 < n then
      for p = 0 to k - 1 do
        let s = bo + (p * n) + j in
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b s);
        Array.unsafe_set panel (base + (p * 2) + 1) (BA1.unsafe_get b (s + 1))
      done
    else
      for p = 0 to k - 1 do
        Array.unsafe_set panel (base + (p * 2)) (BA1.unsafe_get b (bo + (p * n) + j))
      done
  done;
  panel

(* Pack one macro row-tile of A into full-depth row quads, short tiles
   zero-padded. *)
let pack_a_f32 (a : Tensor.f32buf) ao ~k ~i0 ~mc abuf =
  let mquads = ceil_div mc 4 in
  for ip = 0 to mquads - 1 do
    let i = i0 + (ip * 4) in
    let base = ip * k * 4 in
    let rows = min 4 (i0 + mc - i) in
    let r0 = ao + (i * k) in
    if rows = 4 then
      for p = 0 to k - 1 do
        let d = base + (p * 4) and s = r0 + p in
        Array.unsafe_set abuf d (BA1.unsafe_get a s);
        Array.unsafe_set abuf (d + 1) (BA1.unsafe_get a (s + k));
        Array.unsafe_set abuf (d + 2) (BA1.unsafe_get a (s + (2 * k)));
        Array.unsafe_set abuf (d + 3) (BA1.unsafe_get a (s + (3 * k)))
      done
    else begin
      Array.fill abuf base (k * 4) 0.0;
      for r = 0 to rows - 1 do
        let rs = r0 + (r * k) in
        for p = 0 to k - 1 do
          Array.unsafe_set abuf (base + (p * 4) + r) (BA1.unsafe_get a (rs + p))
        done
      done
    end
  done

let pack_a_f64 (a : Tensor.f64buf) ao ~k ~i0 ~mc abuf =
  let mquads = ceil_div mc 4 in
  for ip = 0 to mquads - 1 do
    let i = i0 + (ip * 4) in
    let base = ip * k * 4 in
    let rows = min 4 (i0 + mc - i) in
    let r0 = ao + (i * k) in
    if rows = 4 then
      for p = 0 to k - 1 do
        let d = base + (p * 4) and s = r0 + p in
        Array.unsafe_set abuf d (BA1.unsafe_get a s);
        Array.unsafe_set abuf (d + 1) (BA1.unsafe_get a (s + k));
        Array.unsafe_set abuf (d + 2) (BA1.unsafe_get a (s + (2 * k)));
        Array.unsafe_set abuf (d + 3) (BA1.unsafe_get a (s + (3 * k)))
      done
    else begin
      Array.fill abuf base (k * 4) 0.0;
      for r = 0 to rows - 1 do
        let rs = r0 + (r * k) in
        for p = 0 to k - 1 do
          Array.unsafe_set abuf (base + (p * 4) + r) (BA1.unsafe_get a (rs + p))
        done
      done
    end
  done

let gemm ?(par = sequential) ?(tiles = default_tiles) ?epilogue ?(ep_off = 0) ~m ~n ~k
    ~(a : Tensor.fbuf) ~ao ~(b : Tensor.fbuf) ~bo ~(c : Tensor.fbuf) ~co () =
  if m > 0 && n > 0 && k > 0 then begin
    let { tm; tn; tk = _; kunroll } = tiles in
    let npairs = ceil_div n 2 in
    let bp =
      match b with
      | Tensor.FB32 bb -> pack_b_f32 bb bo ~n ~k ~npairs
      | Tensor.FB64 bb -> pack_b_f64 bb bo ~n ~k ~npairs
    in
    (* Read-modify-write on the destination, matched once per call: the
       write-back is O(mn) against the O(mnk) compute, so the closure call
       per element stays in the noise. *)
    let cread, cstore =
      match c with
      | Tensor.FB32 cb ->
        (fun i -> BA1.unsafe_get cb i), fun i v -> BA1.unsafe_set cb i v
      | Tensor.FB64 cb ->
        (fun i -> BA1.unsafe_get cb i), fun i v -> BA1.unsafe_set cb i v
    in
    let jpt = max 1 (tn / 2) in
    let jt_count = ceil_div npairs jpt in
    par.run (ceil_div m tm) (fun it ->
        let i0 = it * tm in
        let mc = min tm (m - i0) in
        let mquads = ceil_div mc 4 in
        let abuf = Array.make (mquads * k * 4) 0.0 in
        (match a with
        | Tensor.FB32 ab -> pack_a_f32 ab ao ~k ~i0 ~mc abuf
        | Tensor.FB64 ab -> pack_a_f64 ab ao ~k ~i0 ~mc abuf);
        let micro =
          if kunroll >= 4 then micro4x2u4
          else if kunroll >= 2 then micro4x2u2
          else micro4x2
        in
        for jt = 0 to jt_count - 1 do
          let jp_end = min npairs ((jt + 1) * jpt) in
          for ip = 0 to mquads - 1 do
            let iabase = ip * k * 4 in
            let i = i0 + (ip * 4) in
            let rows = min 4 (i0 + mc - i) in
            for jp = jt * jpt to jp_end - 1 do
              let c00, c01, c10, c11, c20, c21, c30, c31 =
                micro abuf bp iabase (jp * k * 2) k 0.0 0.0 0.0 0.0 0.0 0.0 0.0 0.0
              in
              let j = jp * 2 in
              let wide = j + 1 < n in
              let ci = co + (i * n) + j in
              (match epilogue with
              | None ->
                cstore ci (cread ci +. c00);
                if wide then cstore (ci + 1) (cread (ci + 1) +. c01);
                if rows > 1 then begin
                  let ci1 = ci + n in
                  cstore ci1 (cread ci1 +. c10);
                  if wide then cstore (ci1 + 1) (cread (ci1 + 1) +. c11);
                  if rows > 2 then begin
                    let ci2 = ci1 + n in
                    cstore ci2 (cread ci2 +. c20);
                    if wide then cstore (ci2 + 1) (cread (ci2 + 1) +. c21);
                    if rows > 3 then begin
                      let ci3 = ci2 + n in
                      cstore ci3 (cread ci3 +. c30);
                      if wide then cstore (ci3 + 1) (cread (ci3 + 1) +. c31)
                    end
                  end
                end
              | Some f ->
                (* [ei] is the epilogue's destination-relative index: a
                   plain subtraction here keeps arena callers (ep_off =
                   their slot base) off a per-element shift closure.  The
                   epilogue sees the double-precision pre-store value, and
                   the store is still the single rounding point. *)
                let ei = ci - ep_off in
                cstore ci (f ei (cread ci +. c00));
                if wide then cstore (ci + 1) (f (ei + 1) (cread (ci + 1) +. c01));
                if rows > 1 then begin
                  let ci1 = ci + n and ei1 = ei + n in
                  cstore ci1 (f ei1 (cread ci1 +. c10));
                  if wide then cstore (ci1 + 1) (f (ei1 + 1) (cread (ci1 + 1) +. c11));
                  if rows > 2 then begin
                    let ci2 = ci1 + n and ei2 = ei1 + n in
                    cstore ci2 (f ei2 (cread ci2 +. c20));
                    if wide then cstore (ci2 + 1) (f (ei2 + 1) (cread (ci2 + 1) +. c21));
                    if rows > 3 then begin
                      let ci3 = ci2 + n and ei3 = ei2 + n in
                      cstore ci3 (f ei3 (cread ci3 +. c30));
                      if wide then cstore (ci3 + 1) (f (ei3 + 1) (cread (ci3 + 1) +. c31))
                    end
                  end
                end)
            done
          done
        done)
  end

let conv2d_im2col_into ?(par = sequential) ?(tiles = default_tiles) ?epilogue
    ?(ep_off = 0) ~stride ~pad ~dilation ~groups (vx : Tensor.view)
    (vw : Tensor.view) (vbias : Tensor.view option) ~c:dst ~co =
  let dx = Array.of_list vx.Tensor.vdims and dw = Array.of_list vw.Tensor.vdims in
  let n = dx.(0) and c = dx.(1) and h = dx.(2) and wd = dx.(3) in
  let m = dw.(0) and cg = dw.(1) and kh = dw.(2) and kw = dw.(3) in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  Linalg.check_conv_groups ~c ~groups ~cg;
  let oh =
    Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
      ~dilation:dh
  in
  let ow =
    Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr
      ~dilation:dw_
  in
  let mg = m / groups in
  let kdim = cg * kh * kw in
  let ndim = oh * ow in
  (* The gemm accumulates into its destination window, so it must start
     from the bias value (or zero) regardless of what the buffer held. *)
  (match vbias with
  | Some bt ->
    for ni = 0 to n - 1 do
      for mi = 0 to m - 1 do
        Tensor.fbuf_fill dst
          (co + (((ni * m) + mi) * ndim))
          ndim
          (Tensor.fbuf_get bt.Tensor.vbuf (bt.Tensor.voff + mi))
      done
    done
  | None -> Tensor.fbuf_fill dst co (n * m * ndim) 0.0);
  if ndim > 0 && kdim > 0 then begin
    (* One column buffer in the input's precision (the copy is lossless),
       rebuilt per (image, group); gemm completes before the next rebuild,
       so reuse is safe even under the parallel runner. *)
    let col = Tensor.fbuf_create (Tensor.view_dtype vx) (kdim * ndim) in
    let fill_col =
      match vx.Tensor.vbuf, col with
      | Tensor.FB32 src, Tensor.FB32 colb ->
        fun ni g ->
          BA1.fill colb 0.0;
          for ci = 0 to cg - 1 do
            let cin = (g * cg) + ci in
            let src_base = vx.Tensor.voff + (((ni * c) + cin) * h * wd) in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let rbase = ((((ci * kh) + ky) * kw) + kx) * ndim in
                for oy = 0 to oh - 1 do
                  let iy = (oy * sh) - pt + (ky * dh) in
                  if iy >= 0 && iy < h then begin
                    let sbase = src_base + (iy * wd) in
                    let obase = rbase + (oy * ow) in
                    for ox = 0 to ow - 1 do
                      let ix = (ox * sw) - pl + (kx * dw_) in
                      if ix >= 0 && ix < wd then
                        BA1.unsafe_set colb (obase + ox) (BA1.unsafe_get src (sbase + ix))
                    done
                  end
                done
              done
            done
          done
      | Tensor.FB64 src, Tensor.FB64 colb ->
        fun ni g ->
          BA1.fill colb 0.0;
          for ci = 0 to cg - 1 do
            let cin = (g * cg) + ci in
            let src_base = vx.Tensor.voff + (((ni * c) + cin) * h * wd) in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let rbase = ((((ci * kh) + ky) * kw) + kx) * ndim in
                for oy = 0 to oh - 1 do
                  let iy = (oy * sh) - pt + (ky * dh) in
                  if iy >= 0 && iy < h then begin
                    let sbase = src_base + (iy * wd) in
                    let obase = rbase + (oy * ow) in
                    for ox = 0 to ow - 1 do
                      let ix = (ox * sw) - pl + (kx * dw_) in
                      if ix >= 0 && ix < wd then
                        BA1.unsafe_set colb (obase + ox) (BA1.unsafe_get src (sbase + ix))
                    done
                  end
                done
              done
            done
          done
      | _ -> assert false (* [col]'s kind mirrors the input's *)
    in
    for ni = 0 to n - 1 do
      for g = 0 to groups - 1 do
        fill_col ni g;
        (* [co] makes the gemm's write indices global flat offsets into the
           destination buffer; [ep_off] carries the caller's epilogue base
           through unchanged so epilogue indices stay relative to it. *)
        gemm ~par ~tiles ?epilogue ~ep_off ~m:mg ~n:ndim ~k:kdim ~a:vw.Tensor.vbuf
          ~ao:(vw.Tensor.voff + (g * mg * kdim))
          ~b:col ~bo:0 ~c:dst
          ~co:(co + (((ni * m) + (g * mg)) * ndim))
          ()
      done
    done
  end;
  [ n; m; oh; ow ]

(* ---------------------------------------------------------------- *)
(* Int8 path: packed panels, integer micro-kernel, fused requantize   *)

(* The integer micro-tile is 6×2, and the A panel packs THREE rows per
   63-bit word at 21-bit field spacing — rows (i, i+2, i+4) as
   [r0 + r2·2^21 + r4·2^42] and rows (i+1, i+3, i+5) likewise — so one
   native multiply against a sign-extended B element computes THREE
   multiply-accumulates.  Scalar OCaml has one integer multiplier port
   to play with; cutting the multiply count to a third is what puts the
   int8 kernel decisively ahead of the f32 one (whose two FP ports give
   it the same 2-MACs-per-port-cycle a two-field packing would).  The
   tile keeps just four live accumulator words, so nothing spills — a
   4×4 variant with eight accumulators was tried and regressed on spill
   traffic.

   Field discipline: |a|,|b| ≤ 128, so each 21-bit field accumulates at
   most kb·2^14 and the field range ±2^20 allows kb ≤ 64 k-steps before
   a field can overflow into its neighbour.  The depth loop therefore
   runs in blocks of [i8_kblock] = 60 steps, draining the four SWAR
   words into twelve plain int accumulators between blocks (the whole
   word stays within ±60·2^56 < 2^62, so the top field never leaves the
   63-bit int).  Reconstruction is standard signed-SWAR: sign-extend the
   low 21 bits, subtract, shift, repeat.  Total depth stays capped at
   2^16 so the drained accumulators remain int32-range for the
   requantizer.

   Zero points never enter the panels: the write-back applies the
   algebraic correction  Σ(a-za)(b-zb) = Σab − zb·Σa − za·Σb + k·za·zb
   from row/column sums collected during packing, so the packed values
   stay raw int8 and the correction is exact integer arithmetic. *)

let max_i8_depth = 1 lsl 16
let i8_kblock = 60

(* [iqblk] runs one overflow-safe depth block of a 6×2 micro-tile —
   [ia] up to (exclusive) [iaend] — retiring four k-steps per iteration
   with the accumulator words carried in the tail-recursion arguments,
   then drains the fields inline into [acc] ([row*2 + col] layout): no
   closure, tuple, or allocation anywhere on the depth path.  Exactly
   ten arguments: that is how many the OCaml amd64 convention passes in
   registers, and an eleventh would push the self-tail-call through the
   stack on every iteration. *)
let rec iqblk (ap : int array) (bp : int array) (acc : int array) ia ib iaend
    q00 q01 q10 q11 =
  if ia + 8 <= iaend then begin
    let p0 = Array.unsafe_get ap ia
    and p1 = Array.unsafe_get ap (ia + 1)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    let q00 = q00 + (p0 * b0)
    and q01 = q01 + (p0 * b1)
    and q10 = q10 + (p1 * b0)
    and q11 = q11 + (p1 * b1) in
    let p0 = Array.unsafe_get ap (ia + 2)
    and p1 = Array.unsafe_get ap (ia + 3)
    and b0 = Array.unsafe_get bp (ib + 2)
    and b1 = Array.unsafe_get bp (ib + 3) in
    let q00 = q00 + (p0 * b0)
    and q01 = q01 + (p0 * b1)
    and q10 = q10 + (p1 * b0)
    and q11 = q11 + (p1 * b1) in
    let p0 = Array.unsafe_get ap (ia + 4)
    and p1 = Array.unsafe_get ap (ia + 5)
    and b0 = Array.unsafe_get bp (ib + 4)
    and b1 = Array.unsafe_get bp (ib + 5) in
    let q00 = q00 + (p0 * b0)
    and q01 = q01 + (p0 * b1)
    and q10 = q10 + (p1 * b0)
    and q11 = q11 + (p1 * b1) in
    let p0 = Array.unsafe_get ap (ia + 6)
    and p1 = Array.unsafe_get ap (ia + 7)
    and b0 = Array.unsafe_get bp (ib + 6)
    and b1 = Array.unsafe_get bp (ib + 7) in
    iqblk ap bp acc (ia + 8) (ib + 8) iaend
      (q00 + (p0 * b0))
      (q01 + (p0 * b1))
      (q10 + (p1 * b0))
      (q11 + (p1 * b1))
  end
  else if ia < iaend then begin
    let p0 = Array.unsafe_get ap ia
    and p1 = Array.unsafe_get ap (ia + 1)
    and b0 = Array.unsafe_get bp ib
    and b1 = Array.unsafe_get bp (ib + 1) in
    iqblk ap bp acc (ia + 2) (ib + 2) iaend
      (q00 + (p0 * b0))
      (q01 + (p0 * b1))
      (q10 + (p1 * b0))
      (q11 + (p1 * b1))
  end
  else begin
    (* Block boundary: unpack the three 21-bit fields of each word —
       sign-extend the low field (rows i, i+1), subtract and shift for
       the mid fields (rows i+2, i+3), repeat for the top fields (rows
       i+4, i+5) — and accumulate into [acc]. *)
    let l00 = (q00 lsl 42) asr 42 in
    let r00 = (q00 - l00) asr 21 in
    let m00 = (r00 lsl 42) asr 42 in
    let l01 = (q01 lsl 42) asr 42 in
    let r01 = (q01 - l01) asr 21 in
    let m01 = (r01 lsl 42) asr 42 in
    let l10 = (q10 lsl 42) asr 42 in
    let r10 = (q10 - l10) asr 21 in
    let m10 = (r10 lsl 42) asr 42 in
    let l11 = (q11 lsl 42) asr 42 in
    let r11 = (q11 - l11) asr 21 in
    let m11 = (r11 lsl 42) asr 42 in
    acc.(0) <- acc.(0) + l00;
    acc.(1) <- acc.(1) + l01;
    acc.(2) <- acc.(2) + l10;
    acc.(3) <- acc.(3) + l11;
    acc.(4) <- acc.(4) + m00;
    acc.(5) <- acc.(5) + m01;
    acc.(6) <- acc.(6) + m10;
    acc.(7) <- acc.(7) + m11;
    acc.(8) <- acc.(8) + ((r00 - m00) asr 21);
    acc.(9) <- acc.(9) + ((r01 - m01) asr 21);
    acc.(10) <- acc.(10) + ((r10 - m10) asr 21);
    acc.(11) <- acc.(11) + ((r11 - m11) asr 21)
  end

(* Depth loop for one micro-tile: one [iqblk] call per overflow-safe
   block. *)
let rec iqtile ap bp acc ia ib krem =
  if krem > 0 then begin
    let kb = if krem < i8_kblock then krem else i8_kblock in
    iqblk ap bp acc ia ib (ia + (kb * 2)) 0 0 0 0;
    iqtile ap bp acc (ia + (kb * 2)) (ib + (kb * 2)) (krem - kb)
  end

(* B panel: column pairs, sign-extended into a plain [int array] at pack
   time.  Trading the 1-byte footprint for 8-byte words keeps the panel
   L2-resident at bench sizes (512 KB at 256³) while making every inner-
   loop B access a single indexed load — a Bigarray byte read costs a
   data-pointer fetch plus a sign extension on every access, and the
   micro-kernel does two of them per k-step.  An odd tail column is
   zero-padded; per-column sums for the zero-point correction are
   collected in the same pass. *)
let pack_b_i8 (b : Tensor.i8buf) bo ~n ~k ~npairs =
  let panel = Array.make (npairs * k * 2) 0 in
  let bsum = Array.make (npairs * 2) 0 in
  for jp = 0 to npairs - 1 do
    let j = jp * 2 in
    let base = jp * k * 2 in
    if j + 1 < n then begin
      let s0 = ref 0 and s1 = ref 0 in
      for p = 0 to k - 1 do
        let s = bo + (p * n) + j in
        let v0 = BA1.unsafe_get b s and v1 = BA1.unsafe_get b (s + 1) in
        Array.unsafe_set panel (base + (p * 2)) v0;
        Array.unsafe_set panel (base + (p * 2) + 1) v1;
        s0 := !s0 + v0;
        s1 := !s1 + v1
      done;
      bsum.(j) <- !s0;
      bsum.(j + 1) <- !s1
    end
    else begin
      let s0 = ref 0 in
      for p = 0 to k - 1 do
        let v0 = BA1.unsafe_get b (bo + (p * n) + j) in
        Array.unsafe_set panel (base + (p * 2)) v0;
        s0 := !s0 + v0
      done;
      bsum.(j) <- !s0
    end
  done;
  (panel, bsum)

(* A panel: row sextets packed three-rows-per-word ([(ip*k + p)*2 +
   {0,1}] holding rows (r, r+2, r+4) at 21-bit spacing), short tiles
   padded with zero rows, per-row sums collected alongside. *)
let pack_a_i8 (a : Tensor.i8buf) ao ~k ~i0 ~mc (abuf : int array) (asum : int array) =
  let msext = ceil_div mc 6 in
  for ip = 0 to msext - 1 do
    let i = i0 + (ip * 6) in
    let base = ip * k * 2 in
    let rows = min 6 (i0 + mc - i) in
    let r0 = ao + (i * k) in
    if rows = 6 then begin
      let s0 = ref 0 and s1 = ref 0 and s2 = ref 0 in
      let s3 = ref 0 and s4 = ref 0 and s5 = ref 0 in
      for p = 0 to k - 1 do
        let s = r0 + p in
        let v0 = BA1.unsafe_get a s
        and v1 = BA1.unsafe_get a (s + k)
        and v2 = BA1.unsafe_get a (s + (2 * k))
        and v3 = BA1.unsafe_get a (s + (3 * k))
        and v4 = BA1.unsafe_get a (s + (4 * k))
        and v5 = BA1.unsafe_get a (s + (5 * k)) in
        Array.unsafe_set abuf (base + (p * 2)) (v0 + (v2 lsl 21) + (v4 lsl 42));
        Array.unsafe_set abuf (base + (p * 2) + 1) (v1 + (v3 lsl 21) + (v5 lsl 42));
        s0 := !s0 + v0;
        s1 := !s1 + v1;
        s2 := !s2 + v2;
        s3 := !s3 + v3;
        s4 := !s4 + v4;
        s5 := !s5 + v5
      done;
      asum.((ip * 6)) <- !s0;
      asum.((ip * 6) + 1) <- !s1;
      asum.((ip * 6) + 2) <- !s2;
      asum.((ip * 6) + 3) <- !s3;
      asum.((ip * 6) + 4) <- !s4;
      asum.((ip * 6) + 5) <- !s5
    end
    else begin
      for r = 0 to 5 do
        asum.((ip * 6) + r) <- 0
      done;
      for p = 0 to k - 1 do
        let v r = if r < rows then BA1.unsafe_get a (r0 + (r * k) + p) else 0 in
        Array.unsafe_set abuf (base + (p * 2)) (v 0 + (v 2 lsl 21) + (v 4 lsl 42));
        Array.unsafe_set abuf (base + (p * 2) + 1) (v 1 + (v 3 lsl 21) + (v 5 lsl 42))
      done;
      for r = 0 to rows - 1 do
        let rs = r0 + (r * k) in
        let sr = ref 0 in
        for p = 0 to k - 1 do
          sr := !sr + BA1.unsafe_get a (rs + p)
        done;
        asum.((ip * 6) + r) <- !sr
      done
    end
  done

(* Shared int8 GEMM skeleton.  C is OVERWRITTEN, not accumulated into:
   packing is full-depth (one k-block), so every element's complete
   int32 accumulator exists at write-back — exactly where requantization
   must happen, and why no int32 intermediate is ever materialized.
   [store i j acc] receives the zero-point-corrected accumulator. *)
let gemm_i8_core ?(par = sequential) ?(tiles = default_tiles) ~za ~zb
    ~(store : int -> int -> int -> unit) ~m ~n ~k ~(a : Tensor.i8buf) ~ao
    ~(b : Tensor.i8buf) ~bo () =
  if k > max_i8_depth then
    invalid_arg "Blocked.gemm_i8: depth exceeds 65536 (accumulator field width)";
  if m > 0 && n > 0 then begin
    if k <= 0 then
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          store i j 0
        done
      done
    else begin
      let { tm; tn; tk = _; kunroll = _ } = tiles in
      let npairs = ceil_div n 2 in
      let bp, bsum = pack_b_i8 b bo ~n ~k ~npairs in
      let kzazb = k * za * zb in
      let jpt = max 1 (tn / 2) in
      let jt_count = ceil_div npairs jpt in
      par.run (ceil_div m tm) (fun it ->
          let i0 = it * tm in
          let mc = min tm (m - i0) in
          let msext = ceil_div mc 6 in
          let abuf = Array.make (msext * k * 2) 0 in
          let asum = Array.make (msext * 6) 0 in
          pack_a_i8 a ao ~k ~i0 ~mc abuf asum;
          (* Drained accumulators for one 6×2 micro-tile, laid out
             [row*2 + col]. *)
          let acc = Array.make 12 0 in
          for jt = 0 to jt_count - 1 do
            let jp_end = min npairs ((jt + 1) * jpt) in
            for ip = 0 to msext - 1 do
              let iabase = ip * k * 2 in
              let i = i0 + (ip * 6) in
              let li = ip * 6 in
              let rows = min 6 (i0 + mc - i) in
              (* [correct r raw bs] turns a raw field sum Σab for local
                 row r into Σ(a-za)(b-zb) given the column term [bs]. *)
              let correct r raw bs =
                raw - (zb * Array.unsafe_get asum (li + r)) - bs + kzazb
              in
              for jp = jt * jpt to jp_end - 1 do
                Array.fill acc 0 12 0;
                iqtile abuf bp acc iabase (jp * k * 2) k;
                let j = jp * 2 in
                let wide = j + 1 < n in
                let bs0 = za * Array.unsafe_get bsum j in
                let bs1 = if wide then za * Array.unsafe_get bsum (j + 1) else 0 in
                for r = 0 to rows - 1 do
                  store (i + r) j (correct r acc.(r * 2) bs0);
                  if wide then store (i + r) (j + 1) (correct r acc.((r * 2) + 1) bs1)
                done
              done
            done
          done)
    end
  end

let gemm_i8 ?par ?tiles ~za ~zb ~epilogue ?(ep_off = 0) ~m ~n ~k ~a ~ao ~b ~bo
    ~(c : Tensor.i8buf) ~co () =
  (* The int8 store wraps modulo 256; the clamp below makes the rails
     authoritative even if an epilogue forgets its own. *)
  let store i j acc =
    let ci = co + (i * n) + j in
    BA1.unsafe_set c ci (Quant.clamp_i8 (epilogue (ci - ep_off) acc))
  in
  gemm_i8_core ?par ?tiles ~za ~zb ~store ~m ~n ~k ~a ~ao ~b ~bo ()

let gemm_i8_dequant ?par ?tiles ~za ~zb ~epilogue ?(ep_off = 0) ~m ~n ~k ~a ~ao
    ~b ~bo ~(c : Tensor.fbuf) ~co () =
  let store =
    match c with
    | Tensor.FB32 cb ->
      fun i j acc ->
        let ci = co + (i * n) + j in
        BA1.unsafe_set cb ci (epilogue (ci - ep_off) acc)
    | Tensor.FB64 cb ->
      fun i j acc ->
        let ci = co + (i * n) + j in
        BA1.unsafe_set cb ci (epilogue (ci - ep_off) acc)
  in
  gemm_i8_core ?par ?tiles ~za ~zb ~store ~m ~n ~k ~a ~ao ~b ~bo ()

(* Quantized im2col: the column matrix is int8 (the 4× footprint shrink
   is exactly where the conv path was bandwidth-bound) and padding taps
   hold the INPUT ZERO POINT, not 0 — they must dequantize to 0.0, and
   the zero-point correction then cancels them exactly. *)
let conv2d_i8_gen ~zx ~stride ~pad ~dilation ~groups ~(x : Tensor.i8buf) ~xoff
    ~xdims ~wdims ~run_gemm =
  let n = xdims.(0) and c = xdims.(1) and h = xdims.(2) and wd = xdims.(3) in
  let m = wdims.(0) and cg = wdims.(1) and kh = wdims.(2) and kw = wdims.(3) in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  Linalg.check_conv_groups ~c ~groups ~cg;
  let oh =
    Linalg.conv2d_out_dim ~in_:h ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
      ~dilation:dh
  in
  let ow =
    Linalg.conv2d_out_dim ~in_:wd ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr
      ~dilation:dw_
  in
  let mg = m / groups in
  let kdim = cg * kh * kw in
  let ndim = oh * ow in
  if ndim > 0 && kdim > 0 then begin
    let col = BA1.create Bigarray.int8_signed Bigarray.c_layout (kdim * ndim) in
    let fill_col ni g =
      BA1.fill col zx;
      for ci = 0 to cg - 1 do
        let cin = (g * cg) + ci in
        let src_base = xoff + (((ni * c) + cin) * h * wd) in
        for ky = 0 to kh - 1 do
          for kx = 0 to kw - 1 do
            let rbase = ((((ci * kh) + ky) * kw) + kx) * ndim in
            for oy = 0 to oh - 1 do
              let iy = (oy * sh) - pt + (ky * dh) in
              if iy >= 0 && iy < h then begin
                let sbase = src_base + (iy * wd) in
                let obase = rbase + (oy * ow) in
                for ox = 0 to ow - 1 do
                  let ix = (ox * sw) - pl + (kx * dw_) in
                  if ix >= 0 && ix < wd then
                    BA1.unsafe_set col (obase + ox) (BA1.unsafe_get x (sbase + ix))
                done
              end
            done
          done
        done
      done
    in
    for ni = 0 to n - 1 do
      for g = 0 to groups - 1 do
        fill_col ni g;
        run_gemm ~ni ~g ~m ~mg ~ndim ~kdim ~col
      done
    done
  end;
  [ n; m; oh; ow ]

let conv2d_i8_into ?par ?tiles ~zx ~zw ~epilogue ?(ep_off = 0) ~stride ~pad
    ~dilation ~groups ~x ~xoff ~xdims ~(w : Tensor.i8buf) ~woff ~wdims
    ~(c : Tensor.i8buf) ~co () =
  conv2d_i8_gen ~zx ~stride ~pad ~dilation ~groups ~x ~xoff ~xdims ~wdims
    ~run_gemm:(fun ~ni ~g ~m ~mg ~ndim ~kdim ~col ->
      gemm_i8 ?par ?tiles ~za:zw ~zb:zx ~epilogue ~ep_off ~m:mg ~n:ndim ~k:kdim
        ~a:w
        ~ao:(woff + (g * mg * kdim))
        ~b:col ~bo:0 ~c
        ~co:(co + (((ni * m) + (g * mg)) * ndim))
        ())

let conv2d_i8_dequant_into ?par ?tiles ~zx ~zw ~epilogue ?(ep_off = 0) ~stride
    ~pad ~dilation ~groups ~x ~xoff ~xdims ~(w : Tensor.i8buf) ~woff ~wdims
    ~(c : Tensor.fbuf) ~co () =
  conv2d_i8_gen ~zx ~stride ~pad ~dilation ~groups ~x ~xoff ~xdims ~wdims
    ~run_gemm:(fun ~ni ~g ~m ~mg ~ndim ~kdim ~col ->
      gemm_i8_dequant ?par ?tiles ~za:zw ~zb:zx ~epilogue ~ep_off ~m:mg ~n:ndim
        ~k:kdim ~a:w
        ~ao:(woff + (g * mg * kdim))
        ~b:col ~bo:0 ~c
        ~co:(co + (((ni * m) + (g * mg)) * ndim))
        ())

let conv2d_im2col ?par ?tiles ?epilogue ~stride ~pad ~dilation ~groups x w bias =
  let dx = Tensor.dims_arr x and dw = Tensor.dims_arr w in
  let sh, sw = stride in
  let pt, pl, pb, pr = pad in
  let dh, dw_ = dilation in
  let oh =
    Linalg.conv2d_out_dim ~in_:dx.(2) ~kernel:dw.(2) ~stride:sh ~pad_begin:pt
      ~pad_end:pb ~dilation:dh
  in
  let ow =
    Linalg.conv2d_out_dim ~in_:dx.(3) ~kernel:dw.(3) ~stride:sw ~pad_begin:pl
      ~pad_end:pr ~dilation:dw_
  in
  let odt =
    if Tensor.dtype x = Tensor.F64 || Tensor.dtype w = Tensor.F64 then Tensor.F64
    else Tensor.F32
  in
  let out = Tensor.zeros odt [ dx.(0); dw.(0); oh; ow ] in
  ignore
    (conv2d_im2col_into ?par ?tiles ?epilogue ~stride ~pad ~dilation ~groups
       (Tensor.view_f x) (Tensor.view_f w)
       (Option.map Tensor.view_f bias)
       ~c:(Tensor.storage_f out) ~co:0);
  out
