type kind =
  | Sum
  | Mean
  | Max
  | Min
  | Prod
  | L2

let normalize_axes r axes =
  let axes = if axes = [] then List.init r Fun.id else axes in
  List.sort_uniq compare (List.map (fun a -> if a < 0 then a + r else a) axes)

(* Reductions accumulate in a plain [float array] scratch (double
   precision) in ascending flat order of the source and store into the
   output once — the store is the only rounding point for f32 tensors,
   the same contract the GEMM kernels follow.  Outputs preserve the
   input's float precision. *)
let reduce kind t ~axes ~keepdims =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let axes = normalize_axes r axes in
  let reduced = Array.make r false in
  List.iter (fun a -> reduced.(a) <- true) axes;
  let out_full = Array.mapi (fun i v -> if reduced.(i) then 1 else v) d in
  let count = List.fold_left (fun acc a -> acc * d.(a)) 1 axes in
  let init = match kind with
    | Sum | Mean | L2 -> 0.0
    | Max -> neg_infinity
    | Min -> infinity
    | Prod -> 1.0
  in
  let out_n = Array.fold_left ( * ) 1 out_full in
  let dst = Array.make (max 1 out_n) init in
  let src = Tensor.data_f t in
  let n = Tensor.numel t in
  for flat = 0 to n - 1 do
    let ix = Tensor.unravel d flat in
    let out_ix = Array.mapi (fun i v -> if reduced.(i) then 0 else v) ix in
    let o = Tensor.ravel out_full out_ix in
    let v = src.(flat) in
    dst.(o) <-
      (match kind with
      | Sum | Mean -> dst.(o) +. v
      | L2 -> dst.(o) +. (v *. v)
      | Max -> Float.max dst.(o) v
      | Min -> Float.min dst.(o) v
      | Prod -> dst.(o) *. v)
  done;
  (match kind with
  | Mean ->
    let c = float_of_int (max 1 count) in
    Array.iteri (fun i v -> dst.(i) <- v /. c) dst
  | L2 -> Array.iteri (fun i v -> dst.(i) <- sqrt v) dst
  | Sum | Max | Min | Prod -> ());
  let acc_t =
    Tensor.of_floats (Tensor.dtype t) (Array.to_list out_full)
      (Array.sub dst 0 out_n)
  in
  if keepdims then acc_t
  else
    let out_dims =
      List.filteri (fun i _ -> not reduced.(i)) (Array.to_list out_full)
    in
    Tensor.reshape acc_t out_dims

let arg_extreme ~is_max t ~axis ~keepdims =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let axis = if axis < 0 then axis + r else axis in
  let out_full = Array.mapi (fun i v -> if i = axis then 1 else v) d in
  let out_n = Array.fold_left ( * ) 1 out_full in
  (* Comparisons run on the stored (already-rounded) values, so the chosen
     index is the same one a fully single-precision pipeline would pick. *)
  let bv = Array.make (max 1 out_n) (if is_max then neg_infinity else infinity) in
  let bi = Array.make (max 1 out_n) 0 in
  let src = Tensor.data_f t in
  for flat = 0 to Tensor.numel t - 1 do
    let ix = Tensor.unravel d flat in
    let out_ix = Array.mapi (fun i v -> if i = axis then 0 else v) ix in
    let o = Tensor.ravel out_full out_ix in
    let v = src.(flat) in
    let better = if is_max then v > bv.(o) else v < bv.(o) in
    if better then begin
      bv.(o) <- v;
      bi.(o) <- ix.(axis)
    end
  done;
  let idx =
    Tensor.create_i (Array.to_list out_full) (Array.sub bi 0 out_n)
  in
  if keepdims then idx
  else
    Tensor.reshape idx (List.filteri (fun i _ -> i <> axis) (Array.to_list out_full))

let argmax t ~axis ~keepdims = arg_extreme ~is_max:true t ~axis ~keepdims
let argmin t ~axis ~keepdims = arg_extreme ~is_max:false t ~axis ~keepdims

let softmax t ~axis =
  let m = reduce Max t ~axes:[ axis ] ~keepdims:true in
  let e = Tensor.map2 (fun x mx -> exp (x -. mx)) t m in
  let s = reduce Sum e ~axes:[ axis ] ~keepdims:true in
  Tensor.map2 ( /. ) e s

let log_softmax t ~axis =
  let m = reduce Max t ~axes:[ axis ] ~keepdims:true in
  let shifted = Tensor.map2 ( -. ) t m in
  let s = reduce Sum (Tensor.map_f exp shifted) ~axes:[ axis ] ~keepdims:true in
  Tensor.map2 (fun x lse -> x -. log lse) shifted s

let layer_norm t ~gamma ~beta ~eps =
  let r = Tensor.rank t in
  let mean = reduce Mean t ~axes:[ r - 1 ] ~keepdims:true in
  let centered = Tensor.map2 ( -. ) t mean in
  let var = reduce Mean (Tensor.map_f (fun v -> v *. v) centered) ~axes:[ r - 1 ] ~keepdims:true in
  let normed = Tensor.map2 (fun c v -> c /. sqrt (v +. eps)) centered var in
  Tensor.map2 ( +. ) (Tensor.map2 ( *. ) normed gamma) beta

let channel_shape t v =
  (* Reshape a per-channel vector to broadcast over axis 1 of [t]. *)
  let r = Tensor.rank t in
  let c = Tensor.numel v in
  Tensor.reshape v (1 :: c :: List.init (r - 2) (fun _ -> 1))

let batch_norm t ~scale ~bias ~mean ~var ~eps =
  let scale = channel_shape t scale and bias = channel_shape t bias in
  let mean = channel_shape t mean and var = channel_shape t var in
  let normed = Tensor.map2 (fun x m -> x -. m) t mean in
  let normed = Tensor.map2 (fun x v -> x /. sqrt (v +. eps)) normed var in
  Tensor.map2 ( +. ) (Tensor.map2 ( *. ) normed scale) bias

let group_norm t ~groups ~gamma ~beta ~eps =
  let d = Tensor.dims_arr t in
  let n = d.(0) and c = d.(1) in
  let spatial = Array.to_list (Array.sub d 2 (Array.length d - 2)) in
  let sp = List.fold_left ( * ) 1 spatial in
  let grouped = Tensor.reshape t [ n; groups; c / groups * sp ] in
  let mean = reduce Mean grouped ~axes:[ 2 ] ~keepdims:true in
  let centered = Tensor.map2 ( -. ) grouped mean in
  let var = reduce Mean (Tensor.map_f (fun v -> v *. v) centered) ~axes:[ 2 ] ~keepdims:true in
  let normed = Tensor.map2 (fun x v -> x /. sqrt (v +. eps)) centered var in
  let normed = Tensor.reshape normed (n :: c :: spatial) in
  let gamma = channel_shape t gamma and beta = channel_shape t beta in
  Tensor.map2 ( +. ) (Tensor.map2 ( *. ) normed gamma) beta

let top_k t ~k ~axis ~largest =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let axis = if axis < 0 then axis + r else axis in
  let len = d.(axis) in
  let k = min k len in
  let out_dims = Array.to_list (Array.mapi (fun i v -> if i = axis then k else v) d) in
  let values = Tensor.zeros (Tensor.dtype t) out_dims in
  let indices = Tensor.zeros Tensor.I64 out_dims in
  (* Iterate over all positions with axis fixed to 0, sort each lane. *)
  let outer = Tensor.numel t / len in
  let lane_dims = Array.mapi (fun i v -> if i = axis then 1 else v) d in
  for o = 0 to outer - 1 do
    let base_ix = Tensor.unravel lane_dims o in
    let lane = Array.init len (fun j ->
        let ix = Array.copy base_ix in
        ix.(axis) <- j;
        Tensor.get_f t ix, j)
    in
    Array.sort
      (fun (a, ia) (b, ib) ->
        let c = compare b a in
        let c = if largest then c else -c in
        if c <> 0 then c else compare ia ib)
      lane;
    for j = 0 to k - 1 do
      let v, i = lane.(j) in
      let ix = Array.copy base_ix in
      ix.(axis) <- j;
      Tensor.set_f values ix v;
      Tensor.set_i indices ix i
    done
  done;
  values, indices

let nonzero t =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let hits = ref [] in
  let count = ref 0 in
  let is_nz =
    if Tensor.is_float_dtype (Tensor.dtype t) then begin
      let src = Tensor.data_f t in
      fun flat -> src.(flat) <> 0.0
    end
    else begin
      let src = Tensor.data_i t in
      fun flat -> src.(flat) <> 0
    end
  in
  for flat = 0 to Tensor.numel t - 1 do
    if is_nz flat then begin
      hits := Tensor.unravel d flat :: !hits;
      incr count
    end
  done;
  let hits = Array.of_list (List.rev !hits) in
  let out = Tensor.zeros Tensor.I64 [ max r 1; !count ] in
  Array.iteri
    (fun j ix -> Array.iteri (fun i v -> Tensor.set_i out [| i; j |] v) ix)
    hits;
  out

let cumsum t ~axis =
  let d = Tensor.dims_arr t in
  let r = Array.length d in
  let axis = if axis < 0 then axis + r else axis in
  let dst = Tensor.data_f t in
  let n = Tensor.numel t in
  for flat = 0 to n - 1 do
    let ix = Tensor.unravel d flat in
    if ix.(axis) > 0 then begin
      let prev = Array.copy ix in
      prev.(axis) <- ix.(axis) - 1;
      dst.(flat) <- dst.(flat) +. dst.(Tensor.ravel d prev)
    end
  done;
  Tensor.of_floats (Tensor.dtype t) (Tensor.dims t) dst
