(* Quantization schemes and gemmlowp-style fixed-point requantization.

   The fixed-point primitives are a transcription of the gemmlowp /
   TFLite reference semantics onto OCaml's 63-bit native ints: every
   value of interest fits int32, the wider word only removes the
   undefined-behaviour corners of the C originals (the one true int32
   overflow case, [int32_min * int32_min] in {!srdhm}, is handled
   explicitly, exactly as gemmlowp saturates it).  The runtime's scalar
   reference requantizer ({!Reference}) is an independent transcription
   of the same spec — the qcheck suites assert the two agree bit-for-bit
   so a slip in either copy cannot hide. *)

module BA1 = Bigarray.Array1

type scheme =
  | Per_tensor of { scale : float; zero_point : int }
  | Per_channel of { axis : int; scales : float array; zero_points : int array }

let scheme_to_string = function
  | Per_tensor { scale; zero_point } ->
    Printf.sprintf "per-tensor(scale=%g zp=%d)" scale zero_point
  | Per_channel { axis; scales; zero_points = _ } ->
    Printf.sprintf "per-channel(axis=%d channels=%d)" axis (Array.length scales)

type qtensor = { q : Tensor.t; qscheme : scheme }

(* ---------------------------------------------------------------- *)
(* Fixed-point primitives (gemmlowp semantics)                       *)

let int32_max = 0x7FFFFFFF
let int32_min = -0x80000000

let clamp_i8 v = if v > 127 then 127 else if v < -128 then -128 else v
let sat32 v = if v > int32_max then int32_max else if v < int32_min then int32_min else v

(* SaturatingRoundingDoublingHighMul: the high 32 bits of 2·a·b with
   rounding.  [a·b] is at most 2^62 in magnitude, which only the
   saturated [int32_min · int32_min] corner reaches — everything else
   fits the 63-bit native int, so plain multiplication plus a truncating
   division by 2^31 reproduces the int64 arithmetic of the original. *)
let srdhm a b =
  if a = int32_min && b = int32_min then int32_max
  else
    let ab = a * b in
    let nudge = if ab >= 0 then 1 lsl 30 else 1 - (1 lsl 30) in
    (ab + nudge) / (1 lsl 31)

(* RoundingDivideByPOT: arithmetic shift right by [exponent] rounding to
   nearest, ties away from zero (the "upward nudge on negatives" form of
   the gemmlowp original). *)
let rounding_divide_by_pot x exponent =
  if exponent <= 0 then x
  else
    let mask = (1 lsl exponent) - 1 in
    let remainder = x land mask in
    let threshold = (mask asr 1) + (if x < 0 then 1 else 0) in
    (x asr exponent) + (if remainder > threshold then 1 else 0)

(* A positive real multiplier as (q31 mantissa, shift):
   [m = qm · 2^(shift - 31)] with [qm ∈ [2^30, 2^31)].  This is TFLite's
   QuantizeMultiplier. *)
let quantize_multiplier m =
  if m <= 0.0 then invalid_arg "Quant.quantize_multiplier: multiplier must be > 0";
  let q, exp = Float.frexp m in
  let q_fixed = int_of_float (Float.round (q *. 2147483648.0)) in
  if q_fixed = 1 lsl 31 then ((1 lsl 30), exp + 1) else (q_fixed, exp)

(* MultiplyByQuantizedMultiplier: [x · qm · 2^(shift-31)] in fixed point.
   The left-shifted operand saturates to int32 first — the C original
   leaves that overflow undefined; saturating is the one choice both this
   and the reference transcription make, so they stay comparable. *)
let multiply_by_quantized_multiplier x ~qm ~shift =
  let left = if shift > 0 then shift else 0 in
  let right = if shift > 0 then 0 else -shift in
  rounding_divide_by_pot (srdhm (sat32 (x lsl left)) qm) right

(* ---------------------------------------------------------------- *)
(* Requantization: int32 accumulator → int8 value                    *)

type requant = { qm : int; shift : int; zp : int }

let requant_of_multiplier ~multiplier ~zp =
  let qm, shift = quantize_multiplier multiplier in
  { qm; shift; zp }

(* The classic GEMM epilogue multiplier: accumulators carry
   [in_scale · w_scale]; the output wants [out_scale]. *)
let requant_of_scales ~in_scale ~w_scale ~out_scale ~zp_out =
  requant_of_multiplier ~multiplier:(in_scale *. w_scale /. out_scale) ~zp:zp_out

let requantize_one { qm; shift; zp } acc =
  clamp_i8 (multiply_by_quantized_multiplier acc ~qm ~shift + zp)

(* ---------------------------------------------------------------- *)
(* Choosing schemes from float data                                  *)

let float_data t =
  match Tensor.dtype t with
  | Tensor.F32 | Tensor.F64 -> Tensor.data_f t
  | Tensor.I8 | Tensor.I64 ->
    invalid_arg "Quant: scheme selection wants a float tensor"

let range_of data =
  (* The zero value must stay exactly representable (padding, ReLU
     cut-offs), so the range always includes 0. *)
  let mn = ref 0.0 and mx = ref 0.0 in
  Array.iter
    (fun v ->
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    data;
  (!mn, !mx)

let per_tensor_of_range ~symmetric mn mx =
  if symmetric then begin
    let a = Float.max (Float.abs mn) (Float.abs mx) in
    let scale = if a = 0.0 then 1.0 else a /. 127.0 in
    Per_tensor { scale; zero_point = 0 }
  end
  else begin
    let scale = if mx = mn then 1.0 else (mx -. mn) /. 255.0 in
    let zp = clamp_i8 (int_of_float (Float.round (-128.0 -. (mn /. scale)))) in
    Per_tensor { scale; zero_point = zp }
  end

let choose_per_tensor ?(symmetric = false) t =
  let mn, mx = range_of (float_data t) in
  per_tensor_of_range ~symmetric mn mx

(* Per-channel is symmetric by construction (zero points pinned to 0):
   asymmetric per-channel weights would break the row-sum zero-point
   correction the packed kernels rely on, and match no deployed format. *)
let choose_per_channel ~axis t =
  let dims = Tensor.dims_arr t in
  if axis < 0 || axis >= Array.length dims then
    invalid_arg "Quant.choose_per_channel: axis out of range";
  let ch = dims.(axis) in
  let inner = ref 1 in
  for i = axis + 1 to Array.length dims - 1 do
    inner := !inner * dims.(i)
  done;
  let inner = !inner in
  let data = float_data t in
  let maxabs = Array.make ch 0.0 in
  Array.iteri
    (fun flat v ->
      let c = flat / inner mod ch in
      let a = Float.abs v in
      if a > maxabs.(c) then maxabs.(c) <- a)
    data;
  let scales =
    Array.map (fun a -> if a = 0.0 then 1.0 else a /. 127.0) maxabs
  in
  Per_channel { axis; scales; zero_points = Array.make ch 0 }

(* ---------------------------------------------------------------- *)
(* Applying schemes                                                  *)

let channel_params scheme dims =
  match scheme with
  | Per_tensor { scale; zero_point } -> fun _ -> (scale, zero_point)
  | Per_channel { axis; scales; zero_points } ->
    if axis < 0 || axis >= Array.length dims then
      invalid_arg "Quant: scheme axis out of range for tensor";
    if Array.length scales <> dims.(axis) then
      invalid_arg "Quant: scheme channel count mismatches tensor";
    let inner = ref 1 in
    for i = axis + 1 to Array.length dims - 1 do
      inner := !inner * dims.(i)
    done;
    let inner = !inner and ch = dims.(axis) in
    fun flat ->
      let c = flat / inner mod ch in
      (scales.(c), zero_points.(c))

let quantize t scheme =
  let dims = Tensor.dims_arr t in
  let params = channel_params scheme dims in
  let data = float_data t in
  let n = Array.length data in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let scale, zp = params i in
    out.(i) <- clamp_i8 (Tensor.saturating_int_of_float (Float.round (data.(i) /. scale)) + zp)
  done;
  { q = Tensor.of_ints Tensor.I8 (Tensor.dims t) out; qscheme = scheme }

let dequantize { q; qscheme } =
  if Tensor.dtype q <> Tensor.I8 then
    invalid_arg "Quant.dequantize: expected an i8 tensor";
  let dims = Tensor.dims_arr q in
  let params = channel_params qscheme dims in
  let data = Tensor.data_i q in
  let n = Array.length data in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let scale, zp = params i in
    out.(i) <- float_of_int (data.(i) - zp) *. scale
  done;
  Tensor.of_floats Tensor.F32 (Tensor.dims q) out

let scale_of = function
  | Per_tensor { scale; _ } -> scale
  | Per_channel _ -> invalid_arg "Quant.scale_of: per-channel scheme"

let zero_point_of = function
  | Per_tensor { zero_point; _ } -> zero_point
  | Per_channel _ -> invalid_arg "Quant.zero_point_of: per-channel scheme"

let channel_scales = function
  | Per_tensor { scale; _ } -> [| scale |]
  | Per_channel { scales; _ } -> scales
