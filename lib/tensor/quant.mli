(** Quantization schemes and gemmlowp-style fixed-point requantization.

    A {!scheme} maps float values to signed bytes ([q = round(x/scale) +
    zero_point], clamped to [[-128, 127]]) either uniformly
    ({!Per_tensor}) or with one scale per slice of a chosen axis
    ({!Per_channel}, symmetric — zero points pinned to 0, matching the
    deployed per-channel weight formats and the row-sum zero-point
    correction the packed int8 kernels rely on).

    The fixed-point half is a transcription of the gemmlowp / TFLite
    reference requantization onto OCaml's native ints:
    {!srdhm} ∘ {!rounding_divide_by_pot} applied through
    {!multiply_by_quantized_multiplier} turns an int32 accumulator into
    an int8 output value with no float arithmetic.  {!Reference} in the
    runtime carries an independent transcription of the same spec; the
    qcheck suites hold the two bit-for-bit equal. *)

type scheme =
  | Per_tensor of { scale : float; zero_point : int }
  | Per_channel of { axis : int; scales : float array; zero_points : int array }

val scheme_to_string : scheme -> string

type qtensor = { q : Tensor.t; qscheme : scheme }
(** A quantized payload ({!Tensor.I8}) carrying the scheme that decodes
    it — the currency of the pipeline's weight-quantization table. *)

(** {1 Fixed-point primitives} *)

val clamp_i8 : int -> int
(** Clamp to the int8 rails [[-128, 127]]. *)

val srdhm : int -> int -> int
(** [SaturatingRoundingDoublingHighMul a b]: high 32 bits of [2·a·b],
    rounded; the lone int32 overflow case [int32_min·int32_min]
    saturates to [int32_max], as in gemmlowp. *)

val rounding_divide_by_pot : int -> int -> int
(** [rounding_divide_by_pot x e] divides by [2^e] rounding to nearest,
    ties away from zero.  [e ≤ 0] returns [x]. *)

val quantize_multiplier : float -> int * int
(** Decompose a positive real multiplier [m] as [(qm, shift)] with
    [m = qm · 2^(shift-31)], [qm ∈ [2^30, 2^31)].  Raises
    [Invalid_argument] on [m ≤ 0]. *)

val multiply_by_quantized_multiplier : int -> qm:int -> shift:int -> int
(** Fixed-point [x · qm · 2^(shift-31)]; the left-shifted operand
    saturates to the int32 range first. *)

(** {1 Requantization: int32 accumulator → int8} *)

type requant = { qm : int; shift : int; zp : int }
(** One output channel's requantization: fixed-point multiplier plus the
    output zero point. *)

val requant_of_multiplier : multiplier:float -> zp:int -> requant

val requant_of_scales :
  in_scale:float -> w_scale:float -> out_scale:float -> zp_out:int -> requant
(** The GEMM epilogue multiplier [in_scale·w_scale/out_scale]:
    accumulators carry the product of the input scales; the output wants
    its own. *)

val requantize_one : requant -> int -> int
(** Scale, round, add the output zero point, clamp to [[-128, 127]] —
    the complete scalar requantization the fused kernel epilogues fold
    into their write-back. *)

(** {1 Choosing and applying schemes} *)

val choose_per_tensor : ?symmetric:bool -> Tensor.t -> scheme
(** Min/max calibration over a float tensor; the range always includes
    0 so zero stays exactly representable.  [symmetric] pins the zero
    point to 0 (weights). *)

val choose_per_channel : axis:int -> Tensor.t -> scheme
(** Symmetric per-channel calibration along [axis] (e.g. axis 0 for
    OIHW conv weights). *)

val quantize : Tensor.t -> scheme -> qtensor
(** Float tensor → {!Tensor.I8} payload under the scheme (round half
    away from zero, clamped). *)

val dequantize : qtensor -> Tensor.t
(** {!Tensor.I8} payload → {!Tensor.F32}: [(q - zp) · scale]. *)

val scale_of : scheme -> float
(** Per-tensor scale; raises [Invalid_argument] on per-channel. *)

val zero_point_of : scheme -> int
(** Per-tensor zero point; raises [Invalid_argument] on per-channel. *)

val channel_scales : scheme -> float array
(** The scale vector: a singleton for per-tensor schemes. *)
