(** Dense n-dimensional tensors, row-major and contiguous.

    Storage is a {!Bigarray.Array1} with an element kind chosen by the
    tensor's {!dtype}: 4-byte IEEE singles for {!F32}, 8-byte doubles for
    {!F64}, sign-extended bytes for {!I8} and native 8-byte words for
    {!I64}.  [byte_size t = numel t * bytes_per_elem (dtype t)] holds by
    construction — the single accounting invariant the memory planner and
    the arena executor rely on.  All kernels used by the runtime live in
    {!Linalg}, {!Transform} and {!Reduction}; this module provides
    representation, creation, indexing and broadcast-aware elementwise
    maps. *)

type dtype =
  | F32  (** 4-byte IEEE single-precision floats *)
  | F64  (** 8-byte IEEE double-precision floats *)
  | I8  (** signed bytes (quantized payloads) *)
  | I64  (** native integers, 8 bytes (also booleans: 0 / 1) *)

val bytes_per_elem : dtype -> int
(** Bytes of storage per element — the single source of truth for all byte
    accounting ({!byte_size}, [Executor.bytes_of_dims], [Mem_plan]). *)

val is_float_dtype : dtype -> bool
val dtype_name : dtype -> string

(** {1 Raw float storage}

    The destination-passing kernels' backing type: a 1-d Bigarray whose
    constructor pins the element kind, so kernels that match on it get
    monomorphic (direct-load) element access. *)

type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f64buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type i8buf = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type i64buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type fbuf =
  | FB32 of f32buf
  | FB64 of f64buf

val fbuf_create : dtype -> int -> fbuf
(** Fresh uninitialized buffer; raises [Invalid_argument] on an integer
    dtype. *)

val fbuf_len : fbuf -> int
val fbuf_dtype : fbuf -> dtype

val fbuf_get : fbuf -> int -> float
(** Generic (kind-polymorphic) element access — fine on cold paths; hot
    loops should match on the constructor instead. *)

val fbuf_set : fbuf -> int -> float -> unit
(** Stores round to the buffer's precision (f32 stores round to single). *)

val fbuf_fill : fbuf -> int -> int -> float -> unit
(** [fbuf_fill buf off len v] fills [buf.[off, off+len)] with [v]. *)

val fbuf_blit : src:fbuf -> soff:int -> dst:fbuf -> doff:int -> len:int -> unit
(** Cross-kind blits convert element-wise (f64→f32 rounds). *)

val round_f32 : float -> float
(** Nearest single-precision value — exactly what an f32 store performs.
    Kernels accumulating in double precision use this to mirror per-step
    f32 rounding. *)

val saturating_int_of_float : float -> int
(** NaN → 0; values beyond the [int] range clamp to [min_int]/[max_int];
    in-range values truncate toward zero.  The conversion {!cast} applies
    float→integer. *)

type t

(** {1 Creation} *)

val create_f : int list -> float array -> t
(** [create_f dims data] copies [data] into a fresh {!F32} tensor of shape
    [dims] (each element rounds to single precision).  Raises
    [Invalid_argument] if sizes disagree. *)

val create_i : int list -> int array -> t
(** Copies [data] into a fresh {!I64} tensor. *)

val of_floats : dtype -> int list -> float array -> t
(** Like {!create_f} with an explicit float dtype ({!F32} or {!F64}). *)

val of_ints : dtype -> int list -> int array -> t
(** Like {!create_i} with an explicit integer dtype; {!I8} saturates. *)

val zeros : dtype -> int list -> t
val full_f : int list -> float -> t
val full_i : int list -> int -> t
val scalar_f : float -> t
val scalar_i : int -> t

val of_int_list : int list -> t
(** 1-d integer tensor holding the given values (e.g. a shape vector). *)

val init_f : int list -> (int array -> float) -> t
(** [init_f dims f] builds an {!F32} tensor whose element at multi-index
    [ix] is [f ix]. *)

val rand_uniform : Rng.t -> int list -> t
(** Uniform {!F32} floats in [\[-1, 1)]. *)

val rand_normal : Rng.t -> ?stddev:float -> int list -> t

(** {1 Inspection} *)

val dims : t -> int list
val dims_arr : t -> int array
val rank : t -> int
val numel : t -> int
val dtype : t -> dtype

val data_f : t -> float array
(** Copy-out snapshot of a float tensor's elements.  Mutating the result
    does not write through — use {!set_f} or views for that.  Raises
    [Invalid_argument] on an integer tensor. *)

val data_i : t -> int array
(** Copy-out snapshot of an integer tensor's elements. *)

val storage_f : t -> fbuf
(** The live backing buffer of a float tensor (shared, writes visible);
    raises [Invalid_argument] on an integer tensor. *)

val of_fbuf : int list -> fbuf -> t
(** Wraps a buffer as a tensor without copying; the buffer is shared. *)

val storage_i8 : t -> i8buf
(** The live backing buffer of an {!I8} tensor — what the packed int8
    kernels read and write; raises [Invalid_argument] otherwise. *)

val of_i8buf : int list -> i8buf -> t
(** Wraps an int8 buffer as an {!I8} tensor without copying. *)

val to_int_list : t -> int list
(** Elements of an integer tensor, flattened. *)

val byte_size : t -> int
(** [numel t * bytes_per_elem (dtype t)] — matches storage exactly. *)

(** {1 Offset-carrying views}

    The destination-passing kernels' currency: a window of a float buffer —
    an arena slot, or a whole boxed tensor at offset 0 — with its own
    shape.  Views share storage; nothing is copied until {!of_view} has to
    box a proper sub-window. *)

type view = {
  vbuf : fbuf;  (** backing storage, shared *)
  voff : int;  (** element offset of the window *)
  vdims : int list;
}

val view_f : t -> view
(** O(1) whole-tensor view; raises [Invalid_argument] on an integer
    tensor. *)

val view_dtype : view -> dtype

val sub_view : buf:fbuf -> off:int -> dims:int list -> view
(** View of [buf] at element offset [off]; raises [Invalid_argument] when
    the window falls outside the buffer. *)

val view_reshape : view -> int list -> view
(** O(1) dims change; element counts must agree. *)

val view_numel : view -> int

val of_view : view -> t
(** Box a view as a tensor.  Shares the buffer when the view spans it
    entirely (offset 0, full length); copies the window otherwise. *)

val copy_view : view -> t
(** Box a view as a tensor, always copying — a snapshot independent of the
    backing buffer (arena slots get recycled). *)

(** {1 Indexing} *)

val strides : t -> int array

val ravel : int array -> int array -> int
(** [ravel dims ix] is the flat offset of multi-index [ix].  Raises a
    structured {!Sod2_error.Error} ([Shape_mismatch]) when any axis index
    falls outside [\[0, dims.(i))] — out-of-range indices used to alias
    neighbouring rows silently. *)

val unravel : int array -> int -> int array

val get_f : t -> int array -> float
val set_f : t -> int array -> float -> unit
val get_i : t -> int array -> int
val set_i : t -> int array -> int -> unit

(** {1 Shape manipulation} *)

val reshape : t -> int list -> t
(** O(1); shares storage. Raises if element counts differ. *)

val broadcast_dims : int array -> int array -> int array
(** Numpy broadcast of two shapes; raises [Invalid_argument] when
    incompatible. *)

val broadcast_to : t -> int list -> t
(** Materialized broadcast. *)

(** {1 Elementwise operations} *)

val map_f : (float -> float) -> t -> t
(** Kind-preserving float map (an f32 tensor maps to an f32 tensor). *)

val map_i : (int -> int) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Broadcasting binary map over float tensors; mixed-precision operands
    promote to {!F64}. *)

val map2i : (int -> int -> int) -> t -> t -> t

val cast : t -> dtype -> t
(** Precision/type conversion, total over all dtype pairs.
    Float→integer saturates ({!saturating_int_of_float}: NaN → 0,
    out-of-range clamps, in-range truncates toward zero — then an
    [-128, 127] clamp for {!I8}); integer→float converts exactly for
    int8/int values a double represents exactly, so [I8 → F32 → I8]
    round-trips including at the rails; [I8 → I64] widens losslessly and
    [I64 → I8] saturates; f64→f32 rounds to nearest; same-dtype casts
    return the tensor unchanged. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Exact structural equality (shape, dtype and elements). *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Float comparison within absolute/relative tolerance [eps]
    (default 1e-5), exiting on the first mismatch; integer tensors compare
    exactly.  Float tensors of different precision compare by value. *)

val pp : Format.formatter -> t -> unit
(** Prints dtype, shape and (for small tensors) elements. *)

val to_string : t -> string
