(** Dense n-dimensional tensors, row-major and contiguous.

    Two element types are supported: 32/64-bit floats (stored as OCaml
    [float array]) and integers ([int array]).  Integer tensors carry shape
    vectors, indices and boolean masks; float tensors carry activations and
    weights.  All kernels used by the runtime live in {!Linalg},
    {!Transform} and {!Reduction}; this module provides representation,
    creation, indexing and broadcast-aware elementwise maps. *)

type dtype =
  | F32  (** floating point elements *)
  | I64  (** integer elements (also used for booleans: 0 / 1) *)

type t

(** {1 Creation} *)

val create_f : int list -> float array -> t
(** [create_f dims data] wraps [data] as a float tensor of shape [dims].
    Raises [Invalid_argument] if sizes disagree. *)

val create_i : int list -> int array -> t

val zeros : dtype -> int list -> t
val full_f : int list -> float -> t
val full_i : int list -> int -> t
val scalar_f : float -> t
val scalar_i : int -> t

val of_int_list : int list -> t
(** 1-d integer tensor holding the given values (e.g. a shape vector). *)

val init_f : int list -> (int array -> float) -> t
(** [init_f dims f] builds a float tensor whose element at multi-index [ix]
    is [f ix]. *)

val rand_uniform : Rng.t -> int list -> t
(** Uniform floats in [\[-1, 1)]. *)

val rand_normal : Rng.t -> ?stddev:float -> int list -> t

(** {1 Inspection} *)

val dims : t -> int list
val dims_arr : t -> int array
val rank : t -> int
val numel : t -> int
val dtype : t -> dtype

val data_f : t -> float array
(** Underlying storage; raises [Invalid_argument] on an integer tensor. *)

val data_i : t -> int array

val to_int_list : t -> int list
(** Elements of an integer tensor, flattened. *)

val byte_size : t -> int
(** Size in bytes (4 bytes per f32 element, 8 per int). *)

(** {1 Offset-carrying views}

    The destination-passing kernels' currency: a window of a float buffer —
    an arena slot, or a whole boxed tensor at offset 0 — with its own
    shape.  Views share storage; nothing is copied until {!of_view} has to
    box a proper sub-window. *)

type view = {
  vbuf : float array;  (** backing storage, shared *)
  voff : int;  (** element offset of the window *)
  vdims : int list;
}

val view_f : t -> view
(** O(1) whole-tensor view; raises [Invalid_argument] on an integer
    tensor. *)

val sub_view : buf:float array -> off:int -> dims:int list -> view
(** View of [buf] at element offset [off]; raises [Invalid_argument] when
    the window falls outside the buffer. *)

val view_reshape : view -> int list -> view
(** O(1) dims change; element counts must agree. *)

val view_numel : view -> int

val of_view : view -> t
(** Box a view as a tensor.  Shares the buffer when the view spans it
    entirely (offset 0, full length); copies the window otherwise. *)

(** {1 Indexing} *)

val strides : t -> int array
val ravel : int array -> int array -> int
(** [ravel dims ix] is the flat offset of multi-index [ix]. *)

val unravel : int array -> int -> int array

val get_f : t -> int array -> float
val set_f : t -> int array -> float -> unit
val get_i : t -> int array -> int
val set_i : t -> int array -> int -> unit

(** {1 Shape manipulation} *)

val reshape : t -> int list -> t
(** O(1); shares storage. Raises if element counts differ. *)

val broadcast_dims : int array -> int array -> int array
(** Numpy broadcast of two shapes; raises [Invalid_argument] when
    incompatible. *)

val broadcast_to : t -> int list -> t
(** Materialized broadcast. *)

(** {1 Elementwise operations} *)

val map_f : (float -> float) -> t -> t
val map_i : (int -> int) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Broadcasting binary map over float tensors. *)

val map2i : (int -> int -> int) -> t -> t -> t

val cast : t -> dtype -> t

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Exact structural equality (shape, dtype and elements). *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Float comparison within absolute/relative tolerance [eps]
    (default 1e-5); integer tensors compare exactly. *)

val pp : Format.formatter -> t -> unit
(** Prints dtype, shape and (for small tensors) elements. *)

val to_string : t -> string
