(** Cache-blocked, register-tiled GEMM and im2col convolution — the "real"
    multi-version kernel backend (§4.4.2).

    The naive loop nests in {!Linalg} remain the bit-exact reference; this
    module provides the optimized variants the autotuner's tile/thread
    choices actually steer:

    - {!gemm} packs A and B into tile-local panels (so the inner loop
      touches contiguous memory), computes 4×2 register micro-tiles with a
      tail-recursive kernel whose accumulators live in FP registers, and
      splits the M dimension into macro row-tiles that a parallel runner
      can execute concurrently;
    - {!conv2d_im2col} lowers convolution (grouped, strided, dilated,
      padded) onto that GEMM by materializing the im2col column matrix per
      (image, group).

    The module is deliberately runtime-agnostic: parallelism arrives
    through the {!par} record so the tensor library does not depend on the
    runtime's domain pool. *)

type par = { run : int -> (int -> unit) -> unit }
(** [run n f] evaluates [f 0 .. f (n-1)], possibly concurrently.  Tasks
    must be independent.  {!sequential} is the inline default. *)

val sequential : par

type tiles = {
  tm : int;  (** macro row-tile height (parallel work unit) *)
  tn : int;  (** column-tile width *)
  tk : int;  (** depth of one packed panel *)
  kunroll : int;  (** ≥4 (resp. ≥2) selects the unrolled-by-4 (by-2) micro-kernel *)
}

val default_tiles : tiles

val tiles_of : tile_m:int -> tile_n:int -> tile_k:int -> unroll:int -> tiles
(** Sanitize an autotuner configuration into usable tile extents (clamped
    to sane minima so degenerate configs cannot starve the kernel). *)

val gemm :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  ?ep_off:int -> m:int -> n:int ->
  k:int -> a:Tensor.fbuf -> ao:int -> b:Tensor.fbuf -> bo:int ->
  c:Tensor.fbuf -> co:int -> unit -> unit
(** [gemm ~m ~n ~k ~a ~ao ~b ~bo ~c ~co] accumulates the row-major product
    [A(m×k) · B(k×n)] into [C(m×n)]: [c += a·b], reading each operand at
    its flat offset.  [C] is {e accumulated into}, not overwritten, so
    callers zero- or bias-initialize it.

    [epilogue ci v] rewrites the finished value [v] of element [ci] during
    the final k-block's micro-tile write-back — fused-group execution uses
    it to apply bias/activation chains without a second pass over [C].  It
    is called exactly once per element, only after the full depth [k] has
    been accumulated.  [ci] is the element's flat index into [c] minus
    [ep_off] (default [0], i.e. global): destination-passing callers whose
    output lives at a nonzero base pass [~ep_off:base] to receive
    output-relative coordinates without paying a per-element shim. *)

val conv2d_im2col :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  stride:int * int -> pad:int * int * int * int -> dilation:int * int ->
  groups:int -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t
(** Drop-in replacement for {!Linalg.conv2d}: same NCHW/OIHW layouts, same
    validation, same output; internally each (image, group) pair becomes a
    [mg × (oh·ow) × (cg·kh·kw)] GEMM over the packed column matrix.
    [epilogue] is forwarded to the underlying {!gemm} write-back with flat
    indices into the NCHW output (it never fires if the output or kernel
    volume is empty). *)

(** {1 Int8 path}

    Quantized GEMM/conv over packed int8 panels with the requantization
    (or dequantization) epilogue fused into the micro-tile write-back.
    Unlike the float {!gemm}, the destination is {e overwritten}:
    packing is full-depth, so the complete int32 accumulator for every
    element exists exactly once — at write-back, where the epilogue
    consumes it.  No int32 intermediate is ever materialized.

    The A panel packs two rows per native word (one multiply computes
    two multiply-accumulates — the reason the scalar int8 kernel beats
    the f32 one); zero points are handled by the row/column-sum
    correction [Σ(a-za)(b-zb) = Σab − zb·Σa − za·Σb + k·za·zb], so the
    epilogue always sees the exact zero-point-corrected accumulator.
    The depth is capped at 65536 so the packed accumulator fields cannot
    overflow ([Invalid_argument] beyond). *)

val gemm_i8 :
  ?par:par -> ?tiles:tiles -> za:int -> zb:int ->
  epilogue:(int -> int -> int) -> ?ep_off:int -> m:int -> n:int -> k:int ->
  a:Tensor.i8buf -> ao:int -> b:Tensor.i8buf -> bo:int ->
  c:Tensor.i8buf -> co:int -> unit -> unit
(** [epilogue ei acc] maps element [ei]'s corrected int32 accumulator to
    its int8 output value (typically {!Quant.requantize_one}); the store
    clamps to [[-128, 127]] regardless, so the rails are authoritative.
    [ei] is destination-relative, as in {!gemm}. *)

val gemm_i8_dequant :
  ?par:par -> ?tiles:tiles -> za:int -> zb:int ->
  epilogue:(int -> int -> float) -> ?ep_off:int -> m:int -> n:int -> k:int ->
  a:Tensor.i8buf -> ao:int -> b:Tensor.i8buf -> bo:int ->
  c:Tensor.fbuf -> co:int -> unit -> unit
(** Same kernel, float write-back: the epilogue dequantizes the
    accumulator (scale, bias, activation) straight into a float
    destination — the dynamic-quantization form the executor uses so
    quantized nodes compose with the float arena machinery. *)

val conv2d_i8_into :
  ?par:par -> ?tiles:tiles -> zx:int -> zw:int ->
  epilogue:(int -> int -> int) -> ?ep_off:int ->
  stride:int * int -> pad:int * int * int * int -> dilation:int * int ->
  groups:int -> x:Tensor.i8buf -> xoff:int -> xdims:int array ->
  w:Tensor.i8buf -> woff:int -> wdims:int array ->
  c:Tensor.i8buf -> co:int -> unit -> int list
(** Quantized im2col convolution (NCHW/OIHW, grouped/strided/dilated/
    padded like {!conv2d_im2col_into}), int8 destination.  [zx]/[zw] are
    the input/weight zero points; padding taps hold [zx] so they
    dequantize to zero.  Returns the output dims [N;M;Oh;Ow]. *)

val conv2d_i8_dequant_into :
  ?par:par -> ?tiles:tiles -> zx:int -> zw:int ->
  epilogue:(int -> int -> float) -> ?ep_off:int ->
  stride:int * int -> pad:int * int * int * int -> dilation:int * int ->
  groups:int -> x:Tensor.i8buf -> xoff:int -> xdims:int array ->
  w:Tensor.i8buf -> woff:int -> wdims:int array ->
  c:Tensor.fbuf -> co:int -> unit -> int list
(** Float write-back variant of {!conv2d_i8_into}: the epilogue folds
    dequantization and the (float) bias into the store. *)

val conv2d_im2col_into :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  ?ep_off:int -> stride:int * int -> pad:int * int * int * int ->
  dilation:int * int -> groups:int -> Tensor.view -> Tensor.view ->
  Tensor.view option -> c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!conv2d_im2col}: operands arrive as
    offset-carrying views, the [N×M×Oh×Ow] result is written into [c] at
    element offset [co] (bias- or zero-initialized first) and its dims are
    returned.  [epilogue] indices are flat offsets into [c] minus [ep_off]
    (see {!gemm}) — pass [~ep_off:co] for output-relative coordinates. *)
