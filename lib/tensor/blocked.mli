(** Cache-blocked, register-tiled GEMM and im2col convolution — the "real"
    multi-version kernel backend (§4.4.2).

    The naive loop nests in {!Linalg} remain the bit-exact reference; this
    module provides the optimized variants the autotuner's tile/thread
    choices actually steer:

    - {!gemm} packs A and B into tile-local panels (so the inner loop
      touches contiguous memory), computes 4×2 register micro-tiles with a
      tail-recursive kernel whose accumulators live in FP registers, and
      splits the M dimension into macro row-tiles that a parallel runner
      can execute concurrently;
    - {!conv2d_im2col} lowers convolution (grouped, strided, dilated,
      padded) onto that GEMM by materializing the im2col column matrix per
      (image, group).

    The module is deliberately runtime-agnostic: parallelism arrives
    through the {!par} record so the tensor library does not depend on the
    runtime's domain pool. *)

type par = { run : int -> (int -> unit) -> unit }
(** [run n f] evaluates [f 0 .. f (n-1)], possibly concurrently.  Tasks
    must be independent.  {!sequential} is the inline default. *)

val sequential : par

type tiles = {
  tm : int;  (** macro row-tile height (parallel work unit) *)
  tn : int;  (** column-tile width *)
  tk : int;  (** depth of one packed panel *)
  kunroll : int;  (** ≥4 (resp. ≥2) selects the unrolled-by-4 (by-2) micro-kernel *)
}

val default_tiles : tiles

val tiles_of : tile_m:int -> tile_n:int -> tile_k:int -> unroll:int -> tiles
(** Sanitize an autotuner configuration into usable tile extents (clamped
    to sane minima so degenerate configs cannot starve the kernel). *)

val gemm :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  ?ep_off:int -> m:int -> n:int ->
  k:int -> a:Tensor.fbuf -> ao:int -> b:Tensor.fbuf -> bo:int ->
  c:Tensor.fbuf -> co:int -> unit -> unit
(** [gemm ~m ~n ~k ~a ~ao ~b ~bo ~c ~co] accumulates the row-major product
    [A(m×k) · B(k×n)] into [C(m×n)]: [c += a·b], reading each operand at
    its flat offset.  [C] is {e accumulated into}, not overwritten, so
    callers zero- or bias-initialize it.

    [epilogue ci v] rewrites the finished value [v] of element [ci] during
    the final k-block's micro-tile write-back — fused-group execution uses
    it to apply bias/activation chains without a second pass over [C].  It
    is called exactly once per element, only after the full depth [k] has
    been accumulated.  [ci] is the element's flat index into [c] minus
    [ep_off] (default [0], i.e. global): destination-passing callers whose
    output lives at a nonzero base pass [~ep_off:base] to receive
    output-relative coordinates without paying a per-element shim. *)

val conv2d_im2col :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  stride:int * int -> pad:int * int * int * int -> dilation:int * int ->
  groups:int -> Tensor.t -> Tensor.t -> Tensor.t option -> Tensor.t
(** Drop-in replacement for {!Linalg.conv2d}: same NCHW/OIHW layouts, same
    validation, same output; internally each (image, group) pair becomes a
    [mg × (oh·ow) × (cg·kh·kw)] GEMM over the packed column matrix.
    [epilogue] is forwarded to the underlying {!gemm} write-back with flat
    indices into the NCHW output (it never fires if the output or kernel
    volume is empty). *)

val conv2d_im2col_into :
  ?par:par -> ?tiles:tiles -> ?epilogue:(int -> float -> float) ->
  ?ep_off:int -> stride:int * int -> pad:int * int * int * int ->
  dilation:int * int -> groups:int -> Tensor.view -> Tensor.view ->
  Tensor.view option -> c:Tensor.fbuf -> co:int -> int list
(** Destination-passing {!conv2d_im2col}: operands arrive as
    offset-carrying views, the [N×M×Oh×Ow] result is written into [c] at
    element offset [co] (bias- or zero-initialized first) and its dims are
    returned.  [epilogue] indices are flat offsets into [c] minus [ep_off]
    (see {!gemm}) — pass [~ep_off:co] for output-relative coordinates. *)
