type dtype =
  | F32
  | I64

type data =
  | F of float array
  | I of int array

type t = { shape : int array; data : data }

let product a = Array.fold_left ( * ) 1 a

let check_size dims n =
  let expected = product dims in
  if expected <> n then
    invalid_arg
      (Printf.sprintf "Tensor: shape wants %d elements, data has %d" expected n)

let create_f dims data =
  let shape = Array.of_list dims in
  check_size shape (Array.length data);
  { shape; data = F data }

let create_i dims data =
  let shape = Array.of_list dims in
  check_size shape (Array.length data);
  { shape; data = I data }

let zeros dtype dims =
  let shape = Array.of_list dims in
  let n = product shape in
  match dtype with
  | F32 -> { shape; data = F (Array.make n 0.0) }
  | I64 -> { shape; data = I (Array.make n 0) }

let full_f dims v =
  let shape = Array.of_list dims in
  { shape; data = F (Array.make (product shape) v) }

let full_i dims v =
  let shape = Array.of_list dims in
  { shape; data = I (Array.make (product shape) v) }

let scalar_f v = full_f [] v
let scalar_i v = full_i [] v
let of_int_list l = create_i [ List.length l ] (Array.of_list l)

let dims t = Array.to_list t.shape
let dims_arr t = t.shape
let rank t = Array.length t.shape
let numel t = product t.shape
let dtype t = match t.data with F _ -> F32 | I _ -> I64

let data_f t =
  match t.data with
  | F a -> a
  | I _ -> invalid_arg "Tensor.data_f: integer tensor"

let data_i t =
  match t.data with
  | I a -> a
  | F _ -> invalid_arg "Tensor.data_i: float tensor"

let to_int_list t = Array.to_list (data_i t)

let byte_size t =
  match t.data with
  | F a -> 4 * Array.length a
  | I a -> 8 * Array.length a

(* Offset-carrying float views: the destination-passing kernels' currency.
   A view is a window of [vnumel] contiguous elements of [vbuf] starting at
   [voff], interpreted with shape [vdims] — what an arena slot (or a whole
   boxed tensor, at offset 0) looks like to a kernel.  OCaml [float array]
   cannot be sub-sliced without copying, so views stay a (buffer, offset,
   dims) triple rather than a [t]. *)
type view = { vbuf : float array; voff : int; vdims : int list }

let view_numel v = List.fold_left ( * ) 1 v.vdims

let view_f t =
  match t.data with
  | F a -> { vbuf = a; voff = 0; vdims = Array.to_list t.shape }
  | I _ -> invalid_arg "Tensor.view_f: integer tensor"

let sub_view ~buf ~off ~dims =
  let n = List.fold_left ( * ) 1 dims in
  if off < 0 || off + n > Array.length buf then
    invalid_arg
      (Printf.sprintf "Tensor.sub_view: window [%d, %d) outside buffer of %d" off
         (off + n) (Array.length buf));
  { vbuf = buf; voff = off; vdims = dims }

let view_reshape v dims =
  let n = List.fold_left ( * ) 1 dims in
  if n <> view_numel v then
    invalid_arg "Tensor.view_reshape: element counts differ";
  { v with vdims = dims }

let of_view v =
  let n = view_numel v in
  if v.voff = 0 && n = Array.length v.vbuf then
    (* The view spans its whole buffer: wrap without copying. *)
    { shape = Array.of_list v.vdims; data = F v.vbuf }
  else { shape = Array.of_list v.vdims; data = F (Array.sub v.vbuf v.voff n) }

let strides t =
  let r = Array.length t.shape in
  let s = Array.make r 1 in
  for i = r - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.shape.(i + 1)
  done;
  s

let ravel dims ix =
  let off = ref 0 in
  let stride = ref 1 in
  for i = Array.length dims - 1 downto 0 do
    off := !off + (ix.(i) * !stride);
    stride := !stride * dims.(i)
  done;
  !off

let unravel dims flat =
  let r = Array.length dims in
  let ix = Array.make r 0 in
  let rem = ref flat in
  for i = r - 1 downto 0 do
    ix.(i) <- !rem mod dims.(i);
    rem := !rem / dims.(i)
  done;
  ix

let get_f t ix = (data_f t).(ravel t.shape ix)
let set_f t ix v = (data_f t).(ravel t.shape ix) <- v
let get_i t ix = (data_i t).(ravel t.shape ix)
let set_i t ix v = (data_i t).(ravel t.shape ix) <- v

let init_f dims f =
  let shape = Array.of_list dims in
  let n = product shape in
  let data = Array.make n 0.0 in
  for flat = 0 to n - 1 do
    data.(flat) <- f (unravel shape flat)
  done;
  { shape; data = F data }

let rand_uniform rng dims =
  let shape = Array.of_list dims in
  let n = product shape in
  { shape; data = F (Array.init n (fun _ -> (Rng.uniform rng *. 2.0) -. 1.0)) }

let rand_normal rng ?(stddev = 1.0) dims =
  let shape = Array.of_list dims in
  let n = product shape in
  { shape; data = F (Array.init n (fun _ -> Rng.normal rng *. stddev)) }

let reshape t dims =
  let shape = Array.of_list dims in
  if product shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %d elements into shape of %d" (numel t)
         (product shape));
  { t with shape }

let broadcast_dims a b =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  Array.init r (fun i ->
      let ia = i - (r - ra) and ib = i - (r - rb) in
      let x = if ia < 0 then 1 else a.(ia) in
      let y = if ib < 0 then 1 else b.(ib) in
      if x = y then x
      else if x = 1 then y
      else if y = 1 then x
      else
        invalid_arg
          (Printf.sprintf "Tensor.broadcast_dims: %d vs %d at axis %d" x y i))

(* Flat offset of [ix] (an index into the broadcast shape [out]) within a
   tensor of shape [src], applying stride-0 semantics on size-1 axes. *)
let broadcast_offset src out ix =
  let rs = Array.length src and ro = Array.length out in
  let off = ref 0 in
  let stride = ref 1 in
  for i = rs - 1 downto 0 do
    let oi = i + (ro - rs) in
    let v = if src.(i) = 1 then 0 else ix.(oi) in
    off := !off + (v * !stride);
    stride := !stride * src.(i)
  done;
  !off

let broadcast_to t dims =
  let out = Array.of_list dims in
  let _check = broadcast_dims t.shape out in
  if Array.length _check <> Array.length out || _check <> out then
    invalid_arg "Tensor.broadcast_to: shape is not a broadcast target";
  let n = product out in
  match t.data with
  | F src ->
    let data = Array.make n 0.0 in
    for flat = 0 to n - 1 do
      data.(flat) <- src.(broadcast_offset t.shape out (unravel out flat))
    done;
    { shape = out; data = F data }
  | I src ->
    let data = Array.make n 0 in
    for flat = 0 to n - 1 do
      data.(flat) <- src.(broadcast_offset t.shape out (unravel out flat))
    done;
    { shape = out; data = I data }

let map_f f t = { t with data = F (Array.map f (data_f t)) }
let map_i f t = { t with data = I (Array.map f (data_i t)) }

let map2 f a b =
  let out = broadcast_dims a.shape b.shape in
  let n = product out in
  let da = data_f a and db = data_f b in
  let data = Array.make n 0.0 in
  if a.shape = b.shape then
    (* Same-shape fast path: flat indices line up, no per-element unravel. *)
    for flat = 0 to n - 1 do
      Array.unsafe_set data flat
        (f (Array.unsafe_get da flat) (Array.unsafe_get db flat))
    done
  else
    for flat = 0 to n - 1 do
      let ix = unravel out flat in
      data.(flat) <-
        f da.(broadcast_offset a.shape out ix) db.(broadcast_offset b.shape out ix)
    done;
  { shape = out; data = F data }

let map2i f a b =
  let out = broadcast_dims a.shape b.shape in
  let n = product out in
  let da = data_i a and db = data_i b in
  let data = Array.make n 0 in
  if a.shape = b.shape then
    for flat = 0 to n - 1 do
      Array.unsafe_set data flat
        (f (Array.unsafe_get da flat) (Array.unsafe_get db flat))
    done
  else
    for flat = 0 to n - 1 do
      let ix = unravel out flat in
      data.(flat) <-
        f da.(broadcast_offset a.shape out ix) db.(broadcast_offset b.shape out ix)
    done;
  { shape = out; data = I data }

let cast t target =
  match t.data, target with
  | F _, F32 | I _, I64 -> t
  | F a, I64 -> { t with data = I (Array.map int_of_float a) }
  | I a, F32 -> { t with data = F (Array.map float_of_int a) }

let equal a b =
  a.shape = b.shape
  &&
  match a.data, b.data with
  | F x, F y -> x = y
  | I x, I y -> x = y
  | F _, I _ | I _, F _ -> false

let approx_equal ?(eps = 1e-5) a b =
  a.shape = b.shape
  &&
  match a.data, b.data with
  | F x, F y ->
    let ok = ref true in
    Array.iteri
      (fun i v ->
        let d = Float.abs (v -. y.(i)) in
        let scale = Float.max 1.0 (Float.max (Float.abs v) (Float.abs y.(i))) in
        if d > eps *. scale then ok := false)
      x;
    !ok
  | I x, I y -> x = y
  | F _, I _ | I _, F _ -> false

let pp ppf t =
  let dims_s =
    String.concat "x" (List.map string_of_int (dims t))
  in
  let dtype_s = match t.data with F _ -> "f32" | I _ -> "i64" in
  if numel t <= 16 then
    match t.data with
    | F a ->
      Format.fprintf ppf "%s[%s](%s)" dtype_s dims_s
        (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.4g") a)))
    | I a ->
      Format.fprintf ppf "%s[%s](%s)" dtype_s dims_s
        (String.concat " " (Array.to_list (Array.map string_of_int a)))
  else Format.fprintf ppf "%s[%s](%d elements)" dtype_s dims_s (numel t)

let to_string t = Format.asprintf "%a" pp t
