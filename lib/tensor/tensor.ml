(* Bigarray-backed dense tensors.  Each dtype owns a distinct storage kind
   so that [byte_size t = numel t * bytes_per_elem (dtype t)] holds by
   construction — the accounting invariant the memory planner and the
   arena executor build on. *)

module BA1 = Bigarray.Array1

type dtype =
  | F32
  | F64
  | I8
  | I64

let bytes_per_elem = function F32 -> 4 | I8 -> 1 | F64 | I64 -> 8
let is_float_dtype = function F32 | F64 -> true | I8 | I64 -> false
let dtype_name = function F32 -> "f32" | F64 -> "f64" | I8 -> "i8" | I64 -> "i64"

type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) BA1.t
type f64buf = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type i8buf = (int, Bigarray.int8_signed_elt, Bigarray.c_layout) BA1.t
type i64buf = (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t

(* Float storage, the runtime's kernel currency.  The constructors keep the
   element kind statically known wherever a hot loop has matched on them —
   monomorphic [BA1.unsafe_get] compiles to a direct load, the polymorphic
   accessor is a C call. *)
type fbuf =
  | FB32 of f32buf
  | FB64 of f64buf

type ibuf =
  | IB8 of i8buf
  | IB64 of i64buf

type data =
  | Fd of fbuf
  | Id of ibuf

type t = { shape : int array; data : data }

(* Rounds a double to the nearest single-precision value — the exact
   operation an f32 store performs.  Exposed so kernels that keep
   intermediates in double precision can mirror per-step f32 rounding. *)
let round_f32 v = Int32.float_of_bits (Int32.bits_of_float v)

(* Saturating float→int conversion: plain [int_of_float] is unspecified on
   NaN and out-of-range values.  NaN maps to 0; values beyond the int range
   clamp; everything else truncates toward zero.  [float_of_int max_int]
   rounds up to 2^62, so comparing with [>=] is exact. *)
let saturating_int_of_float v =
  if Float.is_nan v then 0
  else if v >= float_of_int max_int then max_int
  else if v <= float_of_int min_int then min_int
  else int_of_float v

let saturating_int8_of_int v = if v > 127 then 127 else if v < -128 then -128 else v

(* ---------------------------------------------------------------- *)
(* Buffer helpers                                                    *)

let fbuf_create dtype n =
  match dtype with
  | F32 -> FB32 (BA1.create Bigarray.float32 Bigarray.c_layout n)
  | F64 -> FB64 (BA1.create Bigarray.float64 Bigarray.c_layout n)
  | I8 | I64 -> invalid_arg "Tensor.fbuf_create: integer dtype"

let fbuf_len = function FB32 b -> BA1.dim b | FB64 b -> BA1.dim b
let fbuf_dtype = function FB32 _ -> F32 | FB64 _ -> F64
let fbuf_get buf i = match buf with FB32 b -> BA1.get b i | FB64 b -> BA1.get b i

let fbuf_set buf i v =
  match buf with FB32 b -> BA1.set b i v | FB64 b -> BA1.set b i v

let fbuf_fill buf off len v =
  if len > 0 then
    match buf with
    | FB32 b -> BA1.fill (BA1.sub b off len) v
    | FB64 b -> BA1.fill (BA1.sub b off len) v

let fbuf_blit ~src ~soff ~dst ~doff ~len =
  if len > 0 then
    match src, dst with
    | FB32 s, FB32 d -> BA1.blit (BA1.sub s soff len) (BA1.sub d doff len)
    | FB64 s, FB64 d -> BA1.blit (BA1.sub s soff len) (BA1.sub d doff len)
    | FB64 s, FB32 d ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (doff + i) (BA1.unsafe_get s (soff + i))
      done
    | FB32 s, FB64 d ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (doff + i) (BA1.unsafe_get s (soff + i))
      done

let ibuf_create dtype n =
  match dtype with
  | I8 -> IB8 (BA1.create Bigarray.int8_signed Bigarray.c_layout n)
  | I64 -> IB64 (BA1.create Bigarray.int Bigarray.c_layout n)
  | F32 | F64 -> invalid_arg "Tensor.ibuf_create: float dtype"

let ibuf_len = function IB8 b -> BA1.dim b | IB64 b -> BA1.dim b
let ibuf_dtype = function IB8 _ -> I8 | IB64 _ -> I64
let ibuf_get buf i = match buf with IB8 b -> BA1.get b i | IB64 b -> BA1.get b i

let ibuf_set buf i v =
  match buf with
  | IB8 b -> BA1.set b i (saturating_int8_of_int v)
  | IB64 b -> BA1.set b i v

(* ---------------------------------------------------------------- *)
(* Creation                                                          *)

let product a = Array.fold_left ( * ) 1 a

let check_size dims n =
  let expected = product dims in
  if expected <> n then
    invalid_arg
      (Printf.sprintf "Tensor: shape wants %d elements, data has %d" expected n)

let of_floats dtype dims data =
  let shape = Array.of_list dims in
  let n = Array.length data in
  check_size shape n;
  match dtype with
  | F32 -> { shape; data = Fd (FB32 (BA1.of_array Bigarray.float32 Bigarray.c_layout data)) }
  | F64 -> { shape; data = Fd (FB64 (BA1.of_array Bigarray.float64 Bigarray.c_layout data)) }
  | I8 | I64 -> invalid_arg "Tensor.of_floats: integer dtype"

let of_ints dtype dims data =
  let shape = Array.of_list dims in
  let n = Array.length data in
  check_size shape n;
  let buf = ibuf_create dtype n in
  for i = 0 to n - 1 do
    ibuf_set buf i data.(i)
  done;
  { shape; data = Id buf }

let create_f dims data = of_floats F32 dims data
let create_i dims data = of_ints I64 dims data

let zeros dtype dims =
  let shape = Array.of_list dims in
  let n = product shape in
  match dtype with
  | F32 | F64 ->
    let buf = fbuf_create dtype n in
    fbuf_fill buf 0 n 0.0;
    { shape; data = Fd buf }
  | I8 | I64 ->
    let buf = ibuf_create dtype n in
    (match buf with
    | IB8 b -> BA1.fill b 0
    | IB64 b -> BA1.fill b 0);
    { shape; data = Id buf }

let full_f dims v =
  let shape = Array.of_list dims in
  let n = product shape in
  let buf = fbuf_create F32 n in
  fbuf_fill buf 0 n v;
  { shape; data = Fd buf }

let full_i dims v =
  let shape = Array.of_list dims in
  let n = product shape in
  let buf = ibuf_create I64 n in
  for i = 0 to n - 1 do
    ibuf_set buf i v
  done;
  { shape; data = Id buf }

let scalar_f v = full_f [] v
let scalar_i v = full_i [] v
let of_int_list l = create_i [ List.length l ] (Array.of_list l)

let dims t = Array.to_list t.shape
let dims_arr t = t.shape
let rank t = Array.length t.shape
let numel t = product t.shape
let dtype t = match t.data with Fd b -> fbuf_dtype b | Id b -> ibuf_dtype b

let storage_f t =
  match t.data with
  | Fd b -> b
  | Id _ -> invalid_arg "Tensor.storage_f: integer tensor"

let of_fbuf dims buf =
  let shape = Array.of_list dims in
  check_size shape (fbuf_len buf);
  { shape; data = Fd buf }

let storage_i8 t =
  match t.data with
  | Id (IB8 b) -> b
  | Id (IB64 _) | Fd _ -> invalid_arg "Tensor.storage_i8: not an i8 tensor"

let of_i8buf dims buf =
  let shape = Array.of_list dims in
  check_size shape (BA1.dim buf);
  { shape; data = Id (IB8 buf) }

(* Copy-out accessors: storage is a Bigarray, so these materialize a fresh
   OCaml array snapshot.  Mutating the result does not affect the tensor —
   use [set_f]/[set_i] (or the view machinery) to write through. *)
let data_f t =
  match t.data with
  | Fd (FB32 b) -> Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)
  | Fd (FB64 b) -> Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)
  | Id _ -> invalid_arg "Tensor.data_f: integer tensor"

let data_i t =
  match t.data with
  | Id (IB8 b) -> Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)
  | Id (IB64 b) -> Array.init (BA1.dim b) (fun i -> BA1.unsafe_get b i)
  | Fd _ -> invalid_arg "Tensor.data_i: float tensor"

let to_int_list t = Array.to_list (data_i t)
let byte_size t = numel t * bytes_per_elem (dtype t)

(* Offset-carrying float views: the destination-passing kernels' currency.
   A view is a window of contiguous elements of [vbuf] starting at [voff],
   interpreted with shape [vdims] — what an arena slot (or a whole boxed
   tensor, at offset 0) looks like to a kernel.  Views share storage;
   nothing is copied until {!of_view} has to box a proper sub-window. *)
type view = { vbuf : fbuf; voff : int; vdims : int list }

let view_numel v = List.fold_left ( * ) 1 v.vdims
let view_dtype v = fbuf_dtype v.vbuf

let view_f t =
  match t.data with
  | Fd b -> { vbuf = b; voff = 0; vdims = Array.to_list t.shape }
  | Id _ -> invalid_arg "Tensor.view_f: integer tensor"

let sub_view ~buf ~off ~dims =
  let n = List.fold_left ( * ) 1 dims in
  if off < 0 || off + n > fbuf_len buf then
    invalid_arg
      (Printf.sprintf "Tensor.sub_view: window [%d, %d) outside buffer of %d" off
         (off + n) (fbuf_len buf));
  { vbuf = buf; voff = off; vdims = dims }

let view_reshape v dims =
  let n = List.fold_left ( * ) 1 dims in
  if n <> view_numel v then
    invalid_arg "Tensor.view_reshape: element counts differ";
  { v with vdims = dims }

let copy_view v =
  let n = view_numel v in
  let dst = fbuf_create (view_dtype v) n in
  fbuf_blit ~src:v.vbuf ~soff:v.voff ~dst ~doff:0 ~len:n;
  { shape = Array.of_list v.vdims; data = Fd dst }

let of_view v =
  let n = view_numel v in
  if v.voff = 0 && n = fbuf_len v.vbuf then
    (* The view spans its whole buffer: wrap without copying. *)
    { shape = Array.of_list v.vdims; data = Fd v.vbuf }
  else copy_view v

let strides t =
  let r = Array.length t.shape in
  let s = Array.make r 1 in
  for i = r - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.shape.(i + 1)
  done;
  s

let ravel dims ix =
  if Array.length ix <> Array.length dims then
    Sod2_error.failf Sod2_error.Shape_mismatch
      "Tensor.ravel: index of rank %d into shape of rank %d" (Array.length ix)
      (Array.length dims);
  let off = ref 0 in
  let stride = ref 1 in
  for i = Array.length dims - 1 downto 0 do
    if ix.(i) < 0 || ix.(i) >= dims.(i) then
      Sod2_error.failf Sod2_error.Shape_mismatch
        "Tensor.ravel: index %d out of range [0, %d) on axis %d" ix.(i) dims.(i) i;
    off := !off + (ix.(i) * !stride);
    stride := !stride * dims.(i)
  done;
  !off

let unravel dims flat =
  let r = Array.length dims in
  let ix = Array.make r 0 in
  let rem = ref flat in
  for i = r - 1 downto 0 do
    ix.(i) <- !rem mod dims.(i);
    rem := !rem / dims.(i)
  done;
  ix

let get_f t ix =
  match t.data with
  | Fd b -> fbuf_get b (ravel t.shape ix)
  | Id _ -> invalid_arg "Tensor.get_f: integer tensor"

let set_f t ix v =
  match t.data with
  | Fd b -> fbuf_set b (ravel t.shape ix) v
  | Id _ -> invalid_arg "Tensor.set_f: integer tensor"

let get_i t ix =
  match t.data with
  | Id b -> ibuf_get b (ravel t.shape ix)
  | Fd _ -> invalid_arg "Tensor.get_i: float tensor"

let set_i t ix v =
  match t.data with
  | Id b -> ibuf_set b (ravel t.shape ix) v
  | Fd _ -> invalid_arg "Tensor.set_i: float tensor"

let init_f dims f =
  let shape = Array.of_list dims in
  let n = product shape in
  let data = Array.make n 0.0 in
  for flat = 0 to n - 1 do
    data.(flat) <- f (unravel shape flat)
  done;
  of_floats F32 (Array.to_list shape) data

let rand_uniform rng dims =
  let n = product (Array.of_list dims) in
  of_floats F32 dims (Array.init n (fun _ -> (Rng.uniform rng *. 2.0) -. 1.0))

let rand_normal rng ?(stddev = 1.0) dims =
  let n = product (Array.of_list dims) in
  of_floats F32 dims (Array.init n (fun _ -> Rng.normal rng *. stddev))

let reshape t dims =
  let shape = Array.of_list dims in
  if product shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %d elements into shape of %d" (numel t)
         (product shape));
  { t with shape }

let broadcast_dims a b =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  Array.init r (fun i ->
      let ia = i - (r - ra) and ib = i - (r - rb) in
      let x = if ia < 0 then 1 else a.(ia) in
      let y = if ib < 0 then 1 else b.(ib) in
      if x = y then x
      else if x = 1 then y
      else if y = 1 then x
      else
        invalid_arg
          (Printf.sprintf "Tensor.broadcast_dims: %d vs %d at axis %d" x y i))

(* Flat offset of [ix] (an index into the broadcast shape [out]) within a
   tensor of shape [src], applying stride-0 semantics on size-1 axes. *)
let broadcast_offset src out ix =
  let rs = Array.length src and ro = Array.length out in
  let off = ref 0 in
  let stride = ref 1 in
  for i = rs - 1 downto 0 do
    let oi = i + (ro - rs) in
    let v = if src.(i) = 1 then 0 else ix.(oi) in
    off := !off + (v * !stride);
    stride := !stride * src.(i)
  done;
  !off

let broadcast_to t dims =
  let out = Array.of_list dims in
  let _check = broadcast_dims t.shape out in
  if Array.length _check <> Array.length out || _check <> out then
    invalid_arg "Tensor.broadcast_to: shape is not a broadcast target";
  let n = product out in
  match t.data with
  | Fd src ->
    let buf = fbuf_create (fbuf_dtype src) n in
    for flat = 0 to n - 1 do
      fbuf_set buf flat (fbuf_get src (broadcast_offset t.shape out (unravel out flat)))
    done;
    { shape = out; data = Fd buf }
  | Id src ->
    let buf = ibuf_create (ibuf_dtype src) n in
    for flat = 0 to n - 1 do
      ibuf_set buf flat (ibuf_get src (broadcast_offset t.shape out (unravel out flat)))
    done;
    { shape = out; data = Id buf }

(* Monomorphic map loops: the kind is statically known inside each arm, so
   element access is a direct load/store rather than the generic accessor. *)
let map_f f t =
  match t.data with
  | Fd (FB32 src) ->
    let n = BA1.dim src in
    let dst = BA1.create Bigarray.float32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      BA1.unsafe_set dst i (f (BA1.unsafe_get src i))
    done;
    { t with data = Fd (FB32 dst) }
  | Fd (FB64 src) ->
    let n = BA1.dim src in
    let dst = BA1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      BA1.unsafe_set dst i (f (BA1.unsafe_get src i))
    done;
    { t with data = Fd (FB64 dst) }
  | Id _ -> invalid_arg "Tensor.map_f: integer tensor"

let map_i f t =
  match t.data with
  | Id src ->
    let n = ibuf_len src in
    let dst = ibuf_create (ibuf_dtype src) n in
    for i = 0 to n - 1 do
      ibuf_set dst i (f (ibuf_get src i))
    done;
    { t with data = Id dst }
  | Fd _ -> invalid_arg "Tensor.map_i: float tensor"

(* Binary float maps promote to the wider storage kind, so mixed-precision
   operands do not silently truncate the f64 side. *)
let promote_f a b = if a = F64 || b = F64 then F64 else F32
let promote_i a b = if a = I64 || b = I64 then I64 else I8

let fdata t =
  match t.data with Fd b -> b | Id _ -> invalid_arg "Tensor.map2: integer tensor"

let idata t =
  match t.data with Id b -> b | Fd _ -> invalid_arg "Tensor.map2i: float tensor"

let map2 f a b =
  let out = broadcast_dims a.shape b.shape in
  let n = product out in
  let da = fdata a and db = fdata b in
  if a.shape = b.shape then begin
    (* Same-shape fast path: flat indices line up, no per-element unravel;
       same-kind operands additionally get a monomorphic loop. *)
    match da, db with
    | FB32 x, FB32 y ->
      let dst = BA1.create Bigarray.float32 Bigarray.c_layout n in
      for i = 0 to n - 1 do
        BA1.unsafe_set dst i (f (BA1.unsafe_get x i) (BA1.unsafe_get y i))
      done;
      { shape = out; data = Fd (FB32 dst) }
    | FB64 x, FB64 y ->
      let dst = BA1.create Bigarray.float64 Bigarray.c_layout n in
      for i = 0 to n - 1 do
        BA1.unsafe_set dst i (f (BA1.unsafe_get x i) (BA1.unsafe_get y i))
      done;
      { shape = out; data = Fd (FB64 dst) }
    | _ ->
      let dst = fbuf_create (promote_f (fbuf_dtype da) (fbuf_dtype db)) n in
      for i = 0 to n - 1 do
        fbuf_set dst i (f (fbuf_get da i) (fbuf_get db i))
      done;
      { shape = out; data = Fd dst }
  end
  else begin
    let dst = fbuf_create (promote_f (fbuf_dtype da) (fbuf_dtype db)) n in
    for flat = 0 to n - 1 do
      let ix = unravel out flat in
      fbuf_set dst flat
        (f
           (fbuf_get da (broadcast_offset a.shape out ix))
           (fbuf_get db (broadcast_offset b.shape out ix)))
    done;
    { shape = out; data = Fd dst }
  end

let map2i f a b =
  let out = broadcast_dims a.shape b.shape in
  let n = product out in
  let da = idata a and db = idata b in
  let dst = ibuf_create (promote_i (ibuf_dtype da) (ibuf_dtype db)) n in
  if a.shape = b.shape then
    for i = 0 to n - 1 do
      ibuf_set dst i (f (ibuf_get da i) (ibuf_get db i))
    done
  else
    for flat = 0 to n - 1 do
      let ix = unravel out flat in
      ibuf_set dst flat
        (f
           (ibuf_get da (broadcast_offset a.shape out ix))
           (ibuf_get db (broadcast_offset b.shape out ix)))
    done;
  { shape = out; data = Id dst }

let cast t target =
  if dtype t = target then t
  else
    let n = numel t in
    match t.data, target with
    | Fd src, (F32 | F64) ->
      let dst = fbuf_create target n in
      fbuf_blit ~src ~soff:0 ~dst ~doff:0 ~len:n;
      { t with data = Fd dst }
    | Fd src, (I8 | I64) ->
      (* Saturating conversion: NaN → 0, out-of-range clamps, in-range
         truncates toward zero.  [ibuf_set] folds in the i8 clamp. *)
      let dst = ibuf_create target n in
      for i = 0 to n - 1 do
        ibuf_set dst i (saturating_int_of_float (fbuf_get src i))
      done;
      { t with data = Id dst }
    | Id src, (F32 | F64) ->
      let dst = fbuf_create target n in
      for i = 0 to n - 1 do
        fbuf_set dst i (float_of_int (ibuf_get src i))
      done;
      { t with data = Fd dst }
    | Id src, (I8 | I64) ->
      let dst = ibuf_create target n in
      for i = 0 to n - 1 do
        ibuf_set dst i (ibuf_get src i)
      done;
      { t with data = Id dst }

let equal a b =
  a.shape = b.shape
  && dtype a = dtype b
  &&
  let n = numel a in
  match a.data, b.data with
  | Fd x, Fd y ->
    let rec go i = i >= n || (fbuf_get x i = fbuf_get y i && go (i + 1)) in
    go 0
  | Id x, Id y ->
    let rec go i = i >= n || (ibuf_get x i = ibuf_get y i && go (i + 1)) in
    go 0
  | Fd _, Id _ | Id _, Fd _ -> false

let approx_equal ?(eps = 1e-5) a b =
  a.shape = b.shape
  &&
  let n = numel a in
  match a.data, b.data with
  | Fd x, Fd y ->
    (* Early exit on the first mismatch — the randomized equivalence
       suites compare every output tensor, so a full scan after a failure
       is pure waste. *)
    let rec go i =
      i >= n
      ||
      let v = fbuf_get x i and w = fbuf_get y i in
      (* Matching NaNs count as equal (kernels legitimately produce them,
         e.g. sqrt of a negative); a one-sided NaN is a real mismatch. *)
      ((Float.is_nan v && Float.is_nan w)
      ||
      let d = Float.abs (v -. w) in
      let scale = Float.max 1.0 (Float.max (Float.abs v) (Float.abs w)) in
      d <= eps *. scale)
      && go (i + 1)
    in
    go 0
  | Id x, Id y ->
    ibuf_dtype x = ibuf_dtype y
    &&
    let rec go i = i >= n || (ibuf_get x i = ibuf_get y i && go (i + 1)) in
    go 0
  | Fd _, Id _ | Id _, Fd _ -> false

let pp ppf t =
  let dims_s = String.concat "x" (List.map string_of_int (dims t)) in
  let dtype_s = dtype_name (dtype t) in
  if numel t <= 16 then
    match t.data with
    | Fd _ ->
      Format.fprintf ppf "%s[%s](%s)" dtype_s dims_s
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%.4g") (data_f t))))
    | Id _ ->
      Format.fprintf ppf "%s[%s](%s)" dtype_s dims_s
        (String.concat " " (Array.to_list (Array.map string_of_int (data_i t))))
  else Format.fprintf ppf "%s[%s](%d elements)" dtype_s dims_s (numel t)

let to_string t = Format.asprintf "%a" pp t
