(* Measurement harness backing the autotuner's Measured/Hybrid objectives:
   candidate configs are timed on the real blocked kernels at a class
   representative, min-of-rounds over a calibrated repeat loop. *)

let counter_kind = "tune-measurement"

(* [Unix.gettimeofday] monotonized: wall time can step backwards under
   clock adjustment, which would produce negative samples that min-of-
   rounds then believes.  Clamping to the last observed instant keeps the
   clock non-decreasing; the ref race across domains is benign (a stale
   [last] only weakens the clamp). *)
let last_us = ref 0.0

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  if t > !last_us then last_us := t;
  !last_us

(* Min-of-rounds with warmup: one untimed run pages the buffers in, one
   timed run calibrates a repeat count so each round spans >= ~200 µs
   (sub-µs kernels would otherwise measure the clock, not the kernel),
   then the minimum over [rounds] batches is the sample — the classic
   noise-robust estimator for deterministic kernels. *)
let time_us ~rounds f =
  f ();
  let t0 = now_us () in
  f ();
  let once = now_us () -. t0 in
  let reps =
    if once < 200.0 then min 1000 (max 1 (int_of_float (200.0 /. Float.max 0.2 once)))
    else 1
  in
  let best = ref Float.infinity in
  for _ = 1 to max 1 rounds do
    let t0 = now_us () in
    for _ = 1 to reps do
      f ()
    done;
    let per_run = (now_us () -. t0) /. float_of_int reps in
    if per_run < !best then best := per_run
  done;
  Float.max 0.001 !best

type measurer = Autotune.config -> float

let tiles_of_config (c : Autotune.config) =
  Blocked.tiles_of ~tile_m:c.Autotune.tile_m ~tile_n:c.Autotune.tile_n
    ~tile_k:c.Autotune.tile_k ~unroll:c.Autotune.unroll

(* Deterministic non-trivial operand data (no subnormals, mixed signs). *)
let filled dt len =
  let buf = Tensor.fbuf_create dt len in
  for i = 0 to len - 1 do
    Tensor.fbuf_set buf i (float_of_int ((i mod 13) - 6) *. 0.125)
  done;
  buf

let record ~profile = Profile.Counters.record ~profile ~kind:counter_kind

let measurement_count () =
  match List.assoc_opt counter_kind (Profile.Counters.by_kind ()) with
  | Some n -> n
  | None -> 0

let gemm_measurer ?(dt = Tensor.F32) ?(par = Blocked.sequential) ?(rounds = 3)
    ?(profile = "unprofiled") ~m ~n ~k () : measurer =
  let a = filled dt (m * k) in
  let b = filled dt (k * n) in
  let c = Tensor.fbuf_create dt (m * n) in
  fun cfg ->
    record ~profile;
    let tiles = tiles_of_config cfg in
    time_us ~rounds (fun () ->
        Blocked.gemm ~par ~tiles ~m ~n ~k ~a ~ao:0 ~b ~bo:0 ~c ~co:0 ())

let conv_measurer ?(dt = Tensor.F32) ?(par = Blocked.sequential) ?(rounds = 3)
    ?(profile = "unprofiled") ~n ~ci ~co ~kh ~kw ~h ~w () : measurer =
  let x = Tensor.of_fbuf [ n; ci; h; w ] (filled dt (n * ci * h * w)) in
  let wt = Tensor.of_fbuf [ co; ci; kh; kw ] (filled dt (co * ci * kh * kw)) in
  fun cfg ->
    record ~profile;
    let tiles = tiles_of_config cfg in
    time_us ~rounds (fun () ->
        ignore
          (Blocked.conv2d_im2col ~par ~tiles ~stride:(1, 1) ~pad:(1, 1, 1, 1)
             ~dilation:(1, 1) ~groups:1 x wt None))

let tune_class ?(objective = Autotune.Hybrid) ?(seed = 7) ?(rounds = 3)
    ?(generations = 12) ?(population = 16) ?(finalists = 6)
    ?(par = Blocked.sequential) (p : Profile.t) ~dt cls =
  let m, n, k = List.assoc cls Multi_version.representatives in
  let measure = gemm_measurer ~dt ~par ~rounds ~profile:p.Profile.name ~m ~n ~k () in
  let rng = Rng.create seed in
  let cfg, _ =
    Autotune.tune ~generations ~population ~objective ~measure ~finalists p rng ~m ~n
      ~k
  in
  cfg, measure cfg

let tune_table ?(objective = Autotune.Hybrid) ?(seed = 7) ?rounds ?generations
    ?population ?finalists ?par p ~dt =
  let tuned idx cls =
    fst
      (tune_class ~objective ~seed:(seed + idx) ?rounds ?generations ?population
         ?finalists ?par p ~dt cls)
  in
  Multi_version.of_configs
    ~fat:(tuned 0 Multi_version.Fat)
    ~regular:(tuned 1 Multi_version.Regular)
    ~skinny:(tuned 2 Multi_version.Skinny)
    ~tiny:(tuned 3 Multi_version.Tiny)
