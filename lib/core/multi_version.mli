(** Multi-version kernel selection (§4.4.2).

    Input tensors of unknown extent defeat per-shape kernel tuning: one
    version tuned for a representative shape performs poorly on skinny or
    fat problems.  RDP narrows the possible shapes enough that generating a
    handful of versions — the paper uses fat / regular / skinny matrices
    for GEMM and CONV — covers the space.  At run time the observed extents
    pick the version.

    A {!table} holds one tuned {!Autotune.config} per shape class for a
    device; {!efficiency_for} evaluates the selected version on the actual
    problem, and degrades gracefully when versioning is disabled (the
    single generic version is used everywhere). *)

type shape_class =
  | Fat  (** both output extents large *)
  | Regular
  | Skinny  (** one output extent very small *)
  | Tiny  (** whole problem smaller than the packing overhead *)

val class_name : shape_class -> string

val class_of_string : string -> shape_class option
(** Inverse of {!class_name} (cache-file parsing). *)

val all_classes : shape_class list

val representatives : (shape_class * (int * int * int)) list
(** The canonical (m, n, k) each class is tuned on — what {!build} hands
    the autotuner and what measured tuning times candidates against. *)

val classify : m:int -> n:int -> shape_class
(** Shape class of a GEMM (or implicit-GEMM convolution) output. *)

val classify_gemm : m:int -> n:int -> k:int -> shape_class
(** Like {!classify} but with the contraction depth known: problems with
    [m·n·k ≤ 4096] are {!Tiny} and stay on the naive reference kernel,
    where blocking/packing overhead would dominate. *)

type table

val build : ?seed:int -> Profile.t -> table
(** Tune one kernel version per shape class for the device, each on a
    canonical representative of its class. *)

val single_version : ?seed:int -> Profile.t -> table
(** Baseline without multi-version codegen: one version tuned for the
    regular class only, selected for every shape. *)

val untuned : table
(** The generic default kernel for every class (no tuning at all). *)

val of_configs :
  fat:Autotune.config -> regular:Autotune.config -> skinny:Autotune.config ->
  tiny:Autotune.config -> table
(** Assemble a versioned table from externally chosen configs — the entry
    point for measured tuning ({!Tune_measure}) and for warm-starting from
    a tuning cache file ({!Tune_cache.table_for}). *)

val efficiency_for : Profile.t -> table -> m:int -> n:int -> k:int -> float
(** Efficiency of the version this table selects for the given problem. *)

val gemm_dims_of_op :
  Op.t -> in_dims:int list list -> out_dims:int list list ->
  (int * int * int) option
(** The implicit-GEMM extents (m, n, k) of a heavy operator execution;
    [None] for non-heavy operators. *)

val config_for : table -> shape_class -> Autotune.config

(** {1 Plan-level multi-versioning: outcome-vector keys}

    The same §4.4.2 idea lifted from kernels to whole execution plans: a
    {e predicate outcome vector} fixes the branch every control gate
    selects, and each realizable vector keys one specialized plan variant
    in {!Pipeline}.  The helpers below define the canonical key form and
    the bounded ahead-of-time enumeration. *)

val outcome_key : int array -> string
(** Canonical rendering of an outcome vector, one digit per gate in gate
    order; [-1] (gate left open) renders as ['*'].  Injective for any
    branch count (gates with ≥ 10 branches render bracketed). *)

val outcome_of_key : string -> int array option
(** Inverse of {!outcome_key}; [None] on malformed keys or [""]. *)

val enumerate_outcomes : branches:int array -> budget:int -> int array list
  option
(** Every full outcome vector over gates with the given branch counts, in
    odometer order — or [None] when the product exceeds [budget] (or
    overflows, or there are no gates), in which case variants must be
    specialized lazily from observed vectors instead. *)
