(** Static execution (order) planning based on RDP (§4.3).

    Choosing the order in which a DAG's operators execute changes the peak
    size of live intermediate results; finding a memory-optimal order is
    NP-complete, so SoD² partitions the graph and solves each piece with a
    method matched to how much RDP could prove about it:

    - sub-graphs whose tensors all have {e known constant} shapes, and that
      are small enough, get an exact subset-DP search for the
      peak-memory-optimal topological order;
    - sub-graphs with {e mixed known / symbolic / op-inferred} shapes are
      ordered by the same machinery with symbolic sizes evaluated at a
      representative valuation of the shape variables (sizes here are
      monotone affine images of the same symbol set, so a positive sample
      point preserves comparisons);
    - operators with [nac] shapes disable planning and instead become the
      partition boundaries, exactly as the paper observes.

    Scheduling units are fusion groups, not raw nodes — ordering decisions
    below a fused kernel would be meaningless. *)

type strategy =
  | Topological
      (** breadth-first (Kahn/FIFO) order — the eager, serialization-like
          order a planning-oblivious executor follows; the no-planning
          baseline *)
  | Greedy_memory  (** frontier node minimizing live memory after the step *)
  | Optimal_small
      (** exact subset-DP when the sub-graph has at most
          {!exhaustive_limit} groups, greedy otherwise — the SoD² default *)

type sg_kind =
  | All_known  (** every tensor shape a known integer constant *)
  | Mixed of int  (** symbolic/op-inferred shapes; payload = code versions needed *)
  | Has_nac  (** contains an execution-determined shape *)

type subgraph = {
  sgid : int;
  sg_groups : int list;  (** fusion-group ids, in planned execution order *)
  kind : sg_kind;
}

type t = {
  subgraphs : subgraph array;
  order : int list;  (** global execution order of fusion groups *)
  strategy : strategy;
}

val exhaustive_limit : int
(** Largest sub-graph (in groups) solved exactly; 16 keeps the subset DP
    at 2^16 states. *)

val max_subgraph_groups : int
(** Size cap that closes a sub-graph even without a [nac] boundary. *)

val plan :
  ?strategy:strategy -> Graph.t -> Rdp.t -> Fusion.plan -> env:Env.t -> t
(** Partition and order the fused graph.  [env] supplies representative
    values for the shape variables (the planner only uses them to compare
    candidate orders; the resulting order is reused for every concrete
    shape). *)

val simulate_peak_bytes :
  Graph.t -> Rdp.t -> Fusion.plan -> env:Env.t -> order:int list -> int
(** Peak bytes of live materialized intermediates when executing fusion
    groups in [order] under valuation [env] — the planner's objective,
    also used by tests to check optimality claims. *)

val restrict : t -> live:(int -> bool) -> int list
(** The plan's group order with dead groups filtered out — how a
    per-outcome plan variant prunes branches not taken.  Relative order of
    surviving groups is unchanged, so topological validity is preserved. *)

val subgraph_kind_counts : t -> (string * int) list
(** Histogram of sub-graph kinds: all-known / mixed (1, 2–4, 5–8 versions)
    / nac — the Fig. 8 breakdown. *)

val pp : Format.formatter -> t -> unit
