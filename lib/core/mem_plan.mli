(** Memory allocation planning (§4.4.1).

    A memory plan places every materialized intermediate tensor at a fixed
    offset of one linear arena such that tensors with overlapping lifetimes
    never overlap in space.  Offsets are computed from the execution order
    (lifetimes) and the RDP sizes; for sub-graphs whose sizes are symbolic
    the same placement procedure re-runs at inference time once the shape
    variables are bound — a cheap pass, unlike the per-tensor dynamic
    allocation of runtime solutions like Nimble.

    Three strategies are provided:

    - [Greedy_first_fit] — allocate tensors in execution order into the
      lowest fitting hole (the strategy of MNN and the memory-pool
      literature the paper cites);
    - [Peak_first] — SoD²'s plan: find the execution step with peak live
      bytes, place the tensors live at that step first, then traverse
      outward in both directions, reusing slots by best fit.  The paper
      reports this reaches ≈1.05× of the optimum where greedy reaches
      ≈1.16×;
    - [Optimal_search] — exhaustive permutation search (small counts
      only), used to measure the two heuristics' optimality gaps. *)

type strategy =
  | Greedy_first_fit
  | Peak_first
  | Optimal_search

type alloc = {
  tid : Graph.tensor_id;
  offset : int;  (** byte offset in the arena *)
  size : int;  (** bytes *)
  first_step : int;  (** index in the execution order when produced *)
  last_step : int;  (** index of the last consuming step *)
  elem : int;
      (** bytes per element the slot was sized with — the plan's float
          dtype unless the tensor carries a dtype override (I64 values,
          int8 payloads); executors must only place a tensor in a slot
          whose element size matches its storage *)
}

type t = {
  allocs : alloc array;
  dynamic : Graph.tensor_id list;
      (** tensors with execution-determined sizes, left to runtime malloc *)
  arena_bytes : int;
  strategy : strategy;
}

val plan :
  ?strategy:strategy -> ?elem:int -> ?elem_of:(Graph.tensor_id -> int option) ->
  Graph.t -> Rdp.t -> Fusion.plan ->
  order:int list -> env:Env.t -> t
(** Compute the plan for executing fusion groups in [order] with shape
    variables bound by [env].  [elem] is the byte size of the float dtype
    the arena will hold (default [Tensor.bytes_per_elem Tensor.F32]);
    every slot size is [elem × numel] unless [elem_of] overrides the
    element size for a tensor (statically non-float values — I64 shape
    results, int8 payloads — get truthfully-sized slots instead of
    float-sized ones; see {!slot_bytes} for the padding rule).
    Equivalent to [instantiate (plan_symbolic …) ~env] — the two share
    every pass, so symbolic plans instantiated at a binding agree exactly
    with concrete plans computed there. *)

val slot_bytes : plan_elem:int -> elem:int -> int -> int
(** [slot_bytes ~plan_elem ~elem numel] — the bytes a plan reserves for a
    [numel]-element tensor: exactly [elem × numel] when [elem] is the
    plan's float element size, padded up to an 8-byte multiple otherwise
    so dtype-override slots never knock later offsets off the float
    grid.  Exposed so vetting layers ({!Guarded_exec}) recompute the very
    size the plan used. *)

(** {1 Symbolic plans (§4.4.1, static half)}

    The env-independent product of lifetime analysis: per materialized
    tensor, its RDP shape (dims as affine {!Expr}s over the shape
    variables) and its execution-step live range.  Computed once at
    compile time; {!instantiate} turns it into a concrete {!t} by affine
    evaluation of the dims followed by the placement pass — no graph
    traversal, no re-analysis.  {!Pipeline} caches the instantiation per
    symbol binding, so steady-state inference re-plans nothing. *)

type sym_entry = {
  se_tid : Graph.tensor_id;
  se_shape : Shape.t;  (** RDP shape; dims are affine in the shape syms *)
  se_numel : Expr.t option;  (** affine element count, when representable *)
  se_first : int;
  se_last : int;
  se_elem : int option;  (** element-size override; [None] = [sym_elem] *)
}

type symbolic = {
  sym_entries : sym_entry list;  (** in materialization order *)
  sym_strategy : strategy;
  sym_elem : int;  (** bytes per element of the float dtype planned for *)
}

val plan_symbolic :
  ?strategy:strategy -> ?elem:int -> ?elem_of:(Graph.tensor_id -> int option) ->
  ?live:(Graph.tensor_id -> bool) -> ?alias:(Graph.tensor_id -> Graph.tensor_id option) ->
  Graph.t -> Rdp.t -> Fusion.plan ->
  order:int list -> symbolic
(** The compile-time half of {!plan}: everything that does not need the
    shape-variable binding.  [elem] (default 4, f32) fixes the element
    size all slot bytes derive from; [elem_of] overrides it per tensor
    (default: no overrides).  [live] (default: everything) filters the
    materialized tensors the plan reserves slots for — per-outcome plan
    variants pass the variant's liveness so dead-branch tensors get no
    arena space at all (with a pruned [order], an unfiltered plan would
    instead give them bogus step-0 lifetimes).

    [alias] (default: none) declares value-aliasing tensors: when
    [alias tid = Some src] the plan reserves no slot for [tid] and instead
    keeps the alias chain's root slot live across [tid]'s consumers (and
    to the final step when [tid] is a graph output).  Per-outcome variants
    resolve Switch/Combine routing at plan time and pass it here, which is
    what lets executors serve gate aliases from the source slot directly
    instead of boxing a copy out of the arena on every request. *)

val instantiate : symbolic -> env:Env.t -> t
(** The runtime half: evaluate each entry's dims under [env] (entries that
    stay unresolved become the plan's [dynamic] list) and place the
    resulting lifetimes with the plan's strategy. *)

val plan_raw : strategy -> lifetimes:(int * int * int) list -> t
(** Place raw [(bytes, first_step, last_step)] lifetimes (tensor ids are
    the list positions) into a full plan — {!arena_for} keeping the
    placement, for property tests over {!validate}. *)

val live_peak_bytes : t -> int
(** Sum of sizes of simultaneously-live tensors at the worst step — the
    lower bound any placement must reach. *)

val validate : t -> (unit, string) result
(** Check the no-overlap invariant: any two allocations overlapping in
    both lifetime and address range make the plan invalid. *)

val arena_for :
  strategy -> lifetimes:(int * int * int) list -> int
(** [arena_for strategy ~lifetimes] places raw [(bytes, first_step,
    last_step)] lifetimes (e.g. from an execution trace) and returns the
    arena size — the building block the framework simulators use for their
    per-inference memory accounting. *)

val pack :
  [ `First_fit | `Best_fit ] -> lifetimes:(int * int * int) list -> int list * int
(** [pack fit ~lifetimes] places raw [(bytes, first_step, last_step)]
    lifetimes in the given order with the chosen hole-selection rule and
    returns the per-tensor offsets (in input order) plus the arena size.
    Exposed so placement policies can be compared directly in tests. *)

val optimal_arena_upper_bound : t -> int
(** Arena size found by {!Optimal_search} over this plan's lifetimes —
    exponential, only valid for small allocation counts (≤ 9). *)

val pp : Format.formatter -> t -> unit
val pp_symbolic : Format.formatter -> symbolic -> unit
