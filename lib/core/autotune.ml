type config = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;
  threads : int;
  vectorize : bool;
}

let tile_choices = [ 4; 8; 16; 32; 64; 128 ]
let unroll_choices = [ 1; 2; 4; 8 ]
let thread_choices = [ 1; 2; 4; 8 ]

let default_config =
  { tile_m = 32; tile_n = 32; tile_k = 32; unroll = 1; threads = 4; vectorize = false }

(* Analytical proxy for kernel quality: utilization of the thread pool,
   tile reuse in cache, edge waste when tiles overhang the problem, and a
   vectorization bonus.  Deterministic so experiments are reproducible. *)
let efficiency (p : Profile.t) c ~m ~n ~k =
  let m = max 1 m and n = max 1 n and k = max 1 k in
  let ceil_div a b = (a + b - 1) / b in
  let blocks = ceil_div m c.tile_m * ceil_div n c.tile_n in
  (* Enough blocks to keep every thread busy several times over. *)
  let parallelism =
    let per_thread = float_of_int blocks /. float_of_int c.threads in
    Float.min 1.0 (per_thread /. 4.0) *. Float.min 1.0 (float_of_int c.threads /. 8.0 *. 2.0)
  in
  (* Tile working set must fit in cache for reuse. *)
  let tile_bytes = 4 * ((c.tile_m * c.tile_k) + (c.tile_k * c.tile_n) + (c.tile_m * c.tile_n)) in
  let cache_fit =
    if tile_bytes * c.threads <= p.cache_bytes then 1.0
    else if tile_bytes <= p.cache_bytes then 0.75
    else 0.45
  in
  (* Tiles overhanging the problem edge waste lanes. *)
  let edge_waste =
    let frac total tile =
      let rounded = ceil_div total tile * tile in
      float_of_int total /. float_of_int rounded
    in
    frac m c.tile_m *. frac n c.tile_n
  in
  let unroll_bonus =
    if k >= c.unroll * c.tile_k then 1.0 +. (0.04 *. log (float_of_int c.unroll) /. log 2.0)
    else 0.92
  in
  let vector_bonus = if c.vectorize then (if n mod 8 = 0 then 1.25 else 1.05) else 1.0 in
  let raw = 0.62 *. parallelism *. cache_fit *. edge_waste *. unroll_bonus *. vector_bonus in
  Float.max 0.05 (Float.min 0.95 raw)

let random_config rng =
  {
    tile_m = Rng.pick rng tile_choices;
    tile_n = Rng.pick rng tile_choices;
    tile_k = Rng.pick rng tile_choices;
    unroll = Rng.pick rng unroll_choices;
    threads = Rng.pick rng thread_choices;
    vectorize = Rng.bool rng 0.5;
  }

let mutate rng c =
  match Rng.int rng 6 with
  | 0 -> { c with tile_m = Rng.pick rng tile_choices }
  | 1 -> { c with tile_n = Rng.pick rng tile_choices }
  | 2 -> { c with tile_k = Rng.pick rng tile_choices }
  | 3 -> { c with unroll = Rng.pick rng unroll_choices }
  | 4 -> { c with threads = Rng.pick rng thread_choices }
  | _ -> { c with vectorize = not c.vectorize }

let crossover rng a b =
  {
    tile_m = (if Rng.bool rng 0.5 then a.tile_m else b.tile_m);
    tile_n = (if Rng.bool rng 0.5 then a.tile_n else b.tile_n);
    tile_k = (if Rng.bool rng 0.5 then a.tile_k else b.tile_k);
    unroll = (if Rng.bool rng 0.5 then a.unroll else b.unroll);
    threads = (if Rng.bool rng 0.5 then a.threads else b.threads);
    vectorize = (if Rng.bool rng 0.5 then a.vectorize else b.vectorize);
  }

type objective =
  | Analytical
  | Measured
  | Hybrid

let objective_name = function
  | Analytical -> "analytical"
  | Measured -> "measured"
  | Hybrid -> "hybrid"

let objective_of_string = function
  | "analytical" -> Some Analytical
  | "measured" -> Some Measured
  | "hybrid" -> Some Hybrid
  | _ -> None

(* GA over an arbitrary score (higher is better).  [default_config] seeds
   the incumbent, so the search can never return a config that scores
   worse than the untuned default under the active objective.  Returns the
   best point plus the last generation's elite (best-first) — the
   candidate pool Hybrid mode re-ranks by measurement. *)
let ga_search ~generations ~population ~score rng =
  let pop = ref (Array.init population (fun _ -> random_config rng)) in
  let best = ref (default_config, score default_config) in
  let elites = ref [] in
  for _gen = 1 to generations do
    let scored = Array.map (fun c -> c, score c) !pop in
    Array.sort (fun (_, a) (_, b) -> compare b a) scored;
    if snd scored.(0) > snd !best then best := scored.(0);
    let elite = Array.sub scored 0 (max 2 (population / 4)) in
    elites := Array.to_list (Array.map fst elite);
    let next =
      Array.init population (fun i ->
          if i < Array.length elite then fst elite.(i)
          else
            let a = fst elite.(Rng.int rng (Array.length elite)) in
            let b = fst elite.(Rng.int rng (Array.length elite)) in
            let child = crossover rng a b in
            if Rng.bool rng 0.4 then mutate rng child else child)
    in
    pop := next
  done;
  !best, !elites

let dedup_configs l =
  List.rev
    (List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) [] l)

let tune ?(generations = 12) ?(population = 16) ?(objective = Analytical) ?measure
    ?(finalists = 6) p rng ~m ~n ~k =
  let analytic c = efficiency p c ~m ~n ~k in
  match objective, measure with
  | Analytical, _ | (Measured | Hybrid), None ->
    (* Measured/Hybrid degrade to the analytical search when no measurer
       is supplied — the objective is advisory, the guarantee (never worse
       than default) is not. *)
    fst (ga_search ~generations ~population ~score:analytic rng)
  | Measured, Some ms ->
    (* The GA ranks directly by wall time; a memo keeps the measurement
       count at one per distinct config rather than one per evaluation. *)
    let memo = Hashtbl.create 64 in
    let time c =
      match Hashtbl.find_opt memo c with
      | Some t -> t
      | None ->
        let t = ms c in
        Hashtbl.add memo c t;
        t
    in
    let (c, _), _ = ga_search ~generations ~population ~score:(fun c -> -.time c) rng in
    c, analytic c
  | Hybrid, Some ms ->
    (* Analytical pruning, measured ranking: the cost model runs the full
       GA for free, then only the distinct finalists (plus the default, so
       measurement can always fall back to it) pay for timing. *)
    let (best, _), elites = ga_search ~generations ~population ~score:analytic rng in
    let pool = dedup_configs (best :: elites) in
    let keep = List.filteri (fun i _ -> i < max 1 finalists) pool in
    let keep = if List.mem default_config keep then keep else keep @ [ default_config ] in
    let timed = List.map (fun c -> c, ms c) keep in
    let c, _ =
      List.fold_left
        (fun (bc, bt) (c, t) -> if t < bt then c, t else bc, bt)
        (List.hd timed) (List.tl timed)
    in
    c, analytic c

let random_search ?(trials = 192) p rng ~m ~n ~k =
  let best = ref (default_config, efficiency p default_config ~m ~n ~k) in
  for _ = 1 to trials do
    let c = random_config rng in
    let s = efficiency p c ~m ~n ~k in
    if s > snd !best then best := (c, s)
  done;
  !best

let pp_config ppf c =
  Format.fprintf ppf "tile=%dx%dx%d unroll=%d threads=%d vec=%b" c.tile_m c.tile_n
    c.tile_k c.unroll c.threads c.vectorize

(* Compact single-token rendering for the tuning cache file.  Strict
   inverse: every key appears exactly once, all values are positive ints
   (v in {0,1}), anything else is a parse error — a corrupt cache line
   must fall back, not half-load. *)
let config_to_string c =
  Printf.sprintf "tm=%d,tn=%d,tk=%d,u=%d,th=%d,v=%d" c.tile_m c.tile_n c.tile_k
    c.unroll c.threads
    (if c.vectorize then 1 else 0)

let config_of_string s =
  let fail () = raise Exit in
  try
    let kv =
      List.map
        (fun field ->
          match String.split_on_char '=' field with
          | [ k; v ] -> (
            match int_of_string_opt (String.trim v) with
            | Some n -> String.trim k, n
            | None -> fail ())
          | _ -> fail ())
        (String.split_on_char ',' (String.trim s))
    in
    if List.length kv <> 6 then fail ();
    let get k =
      match List.filter (fun (k', _) -> k' = k) kv with
      | [ (_, v) ] -> v
      | _ -> fail ()
    in
    let pos k =
      let v = get k in
      if v <= 0 then fail () else v
    in
    let vectorize =
      match get "v" with 0 -> false | 1 -> true | _ -> fail ()
    in
    Ok
      {
        tile_m = pos "tm";
        tile_n = pos "tn";
        tile_k = pos "tk";
        unroll = pos "u";
        threads = pos "th";
        vectorize;
      }
  with Exit -> Error (Printf.sprintf "Autotune.config_of_string: unparseable %S" s)
