type opt_flags = {
  fusion : bool;
  sep : bool;
  dmp : bool;
  mvc : bool;
}

let all_opts = { fusion = true; sep = true; dmp = true; mvc = true }
let no_opts = { fusion = false; sep = false; dmp = false; mvc = false }

type compiled = {
  graph : Graph.t;
  rdp : Rdp.t;
  fusion_plan : Fusion.plan;
  exec : Exec_plan.t;
  versions : Multi_version.table;
  kernel_classes : Multi_version.shape_class option array;
  fused : Fused_compile.template option array;
  flags : opt_flags;
  profile : Profile.t;
  fdtype : Tensor.dtype;  (** float precision the arena plan is sized for *)
  quant : bool;  (** int8 weight quantization was requested at compile *)
  quant_weights : (Graph.tensor_id, Quant.qtensor) Hashtbl.t;
      (** per-weight-tensor int8 payloads; read-only after compile *)
  mem_symbolic : Mem_plan.symbolic;
  plan_syms : string list;
  plan_cache : (string, Mem_plan.t) Hashtbl.t;
  plan_lock : Mutex.t;
}

let env_with_all_syms g v =
  List.fold_left (fun env s -> Env.bind s v env) Env.empty (Graph.free_syms g)

(* Static shape-class resolution (§4.4.2): the implicit-GEMM extents of
   every heavy operator, evaluated from the RDP shapes under the planning
   binding of the shape variables.  Symbolic dims resolve to the
   representative value, so a matmul whose M is [batch] still lands in a
   class at compile time; operators whose extents stay unknown get [None]
   and dispatch on observed extents at run time. *)
let kernel_classes_of graph rdp ~env =
  Array.map
    (fun (nd : Graph.node) ->
      let dims_of tid = Shape.eval env (Rdp.shape rdp tid) in
      let all_dims tids = List.map dims_of tids in
      let sequence l =
        List.fold_right
          (fun x acc ->
            match x, acc with Some v, Some vs -> Some (v :: vs) | _ -> None)
          l (Some [])
      in
      match sequence (all_dims nd.inputs), sequence (all_dims nd.outputs) with
      | Some in_dims, Some out_dims ->
        Option.map
          (fun (m, n, k) -> Multi_version.classify_gemm ~m ~n ~k)
          (Multi_version.gemm_dims_of_op nd.op ~in_dims ~out_dims)
      | _ -> None)
    (Graph.nodes graph)

(* Element-size overrides for the memory plan: tensors whose producer
   statically yields a non-float dtype (shape values, index results,
   integer casts) would otherwise get slots sized as if they held the
   arena's float dtype — under-reserving I64 values by half on f32 plans.
   One-step scan: dtype propagation through views stays with the runtime,
   which never arena-stores a non-float tensor anyway. *)
let int_elem_overrides (g : Graph.t) =
  let tbl = Hashtbl.create 8 in
  let mark tids e = List.iter (fun tid -> Hashtbl.replace tbl tid e) tids in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Cast dt when not (Tensor.is_float_dtype dt) ->
        mark nd.Graph.outputs (Tensor.bytes_per_elem dt)
      | Op.ShapeOf | Op.SizeOf | Op.NonZero | Op.Range | Op.ArgMax _ | Op.ArgMin _
      | Op.NonMaxSuppression _ ->
        mark nd.Graph.outputs (Tensor.bytes_per_elem Tensor.I64)
      | Op.TopK _ -> (
        match nd.Graph.outputs with
        | [ _values; indices ] -> mark [ indices ] (Tensor.bytes_per_elem Tensor.I64)
        | _ -> ())
      | _ -> ())
    (Graph.nodes g);
  fun tid -> Hashtbl.find_opt tbl tid

let elem_overrides = int_elem_overrides

(* The weight side of dynamic-range quantization (the TFLite recipe): at
   compile time, constant weights of heavy operators are quantized to int8
   — per-tensor symmetric for MatMul, per-channel over the output axis for
   Conv (OIHW axis 0), both with zero points pinned to 0 so the packed
   kernels' zero-point correction reduces to the activation term.
   Activations are quantized per-tensor at run time by the executor.  The
   float constants stay in the graph untouched: the same artifact serves
   float execution (guarded fallback, [config.quant = false]) bit-exactly. *)
let quant_weight_of g (nd : Graph.node) =
  let const_float tid =
    match Graph.const_value g tid with
    | Some t when Tensor.is_float_dtype (Tensor.dtype t) && Tensor.numel t > 0 ->
      Some t
    | _ -> None
  in
  match nd.Graph.op, nd.Graph.inputs with
  | Op.MatMul, [ _; w ] ->
    Option.bind (const_float w) (fun t ->
        if List.length (Tensor.dims t) = 2 then
          Some (w, Quant.quantize t (Quant.choose_per_tensor ~symmetric:true t))
        else None)
  | Op.Conv _, _ :: w :: _ ->
    Option.bind (const_float w) (fun t ->
        if List.length (Tensor.dims t) = 4 then
          Some (w, Quant.quantize t (Quant.choose_per_channel ~axis:0 t))
        else None)
  | _ -> None

let quant_table g =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      match quant_weight_of g nd with
      | Some (w, qt) -> if not (Hashtbl.mem tbl w) then Hashtbl.replace tbl w qt
      | None -> ())
    (Graph.nodes g);
  tbl

let compile ?(flags = all_opts) ?(plan_sym_value = 64)
    ?(float_dtype = Tensor.F32) ?(quant = false) profile graph =
  if not (Tensor.is_float_dtype float_dtype) then
    invalid_arg "Pipeline.compile: float_dtype must be F32 or F64";
  Validate.check_exn graph;
  let rdp = Rdp.analyze graph in
  let fusion_plan =
    Fusion.plan ~mode:(if flags.fusion then Fusion.Rdp_based else Fusion.Static_only)
      graph rdp
  in
  let env = env_with_all_syms graph plan_sym_value in
  let exec =
    Exec_plan.plan
      ~strategy:(if flags.sep then Exec_plan.Optimal_small else Exec_plan.Topological)
      graph rdp fusion_plan ~env
  in
  let versions =
    if flags.mvc then Multi_version.build profile else Multi_version.single_version profile
  in
  let kernel_classes = kernel_classes_of graph rdp ~env in
  let quant_weights = if quant then quant_table graph else Hashtbl.create 0 in
  let quantized (nd : Graph.node) =
    match nd.Graph.op, nd.Graph.inputs with
    | Op.MatMul, [ _; w ] | Op.Conv _, _ :: w :: _ -> Hashtbl.mem quant_weights w
    | _ -> false
  in
  let fused = Fused_compile.plan ~quantized graph fusion_plan in
  let mem_symbolic =
    Mem_plan.plan_symbolic
      ~strategy:(if flags.dmp then Mem_plan.Peak_first else Mem_plan.Greedy_first_fit)
      ~elem:(Tensor.bytes_per_elem float_dtype)
      ~elem_of:(int_elem_overrides graph) graph rdp fusion_plan
      ~order:exec.Exec_plan.order
  in
  let plan_syms =
    List.concat_map
      (fun (e : Mem_plan.sym_entry) -> Shape.free_syms e.Mem_plan.se_shape)
      mem_symbolic.Mem_plan.sym_entries
    |> List.sort_uniq compare
  in
  {
    graph;
    rdp;
    fusion_plan;
    exec;
    versions;
    kernel_classes;
    fused;
    flags;
    profile;
    fdtype = float_dtype;
    quant;
    quant_weights;
    mem_symbolic;
    plan_syms;
    plan_cache = Hashtbl.create 8;
    plan_lock = Mutex.create ();
  }

(* Functional update: the replacement table rides on the same plan cache,
   lock and fused templates — versions only steer kernel-config selection,
   nothing shape- or memory-plan-relevant. *)
let with_versions c versions = { c with versions }

let compile_checked ?flags ?plan_sym_value ?float_dtype ?quant profile graph =
  match Validate.check graph with
  | Error defects -> Error defects
  | Ok () -> Ok (compile ?flags ?plan_sym_value ?float_dtype ?quant profile graph)

(* Cache key: the binding restricted to the shape variables the plan's
   entries actually mention (canonical order).  Unbound variables render as
   "?" so partial bindings with different unresolved sets never collide. *)
let plan_key c env =
  String.concat ";"
    (List.map
       (fun s ->
         match Env.lookup env s with
         | Some v -> s ^ "=" ^ string_of_int v
         | None -> s ^ "=?")
       c.plan_syms)

(* Engine workers share one [compiled] artifact across domains, so the
   cache lookup-or-instantiate must be a critical section: two workers
   arriving with the same fresh binding would otherwise both instantiate
   (double-counting the miss) and race the Hashtbl.  Instantiation runs
   under the lock deliberately — it is a short linear pass, and holding the
   lock gives concurrent same-binding requests a guaranteed single miss. *)
let instantiated_plan c env =
  let key = plan_key c env in
  Mutex.protect c.plan_lock (fun () ->
      match Hashtbl.find_opt c.plan_cache key with
      | Some p ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-hit";
        p
      | None ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-miss";
        let p = Mem_plan.instantiate c.mem_symbolic ~env in
        Hashtbl.replace c.plan_cache key p;
        p)

let mem_plan_for c env =
  (* Defensive copy of the alloc array: callers (fault-injection tests) may
     rewrite allocations, and the cached plan must stay pristine. *)
  let p = instantiated_plan c env in
  { p with Mem_plan.allocs = Array.copy p.Mem_plan.allocs }

let plan_env c v = env_with_all_syms c.graph v

(* The executor's dispatch predicate: does this node run on the int8
   weight-quantized kernels?  Mirrors the membership rule the fused-group
   filter used at compile time, so a group skipped there is exactly a
   group with at least one [quant_node] member. *)
let quant_node c (nd : Graph.node) =
  match nd.Graph.op, nd.Graph.inputs with
  | Op.MatMul, [ _; w ] | Op.Conv _, _ :: w :: _ -> Hashtbl.mem c.quant_weights w
  | _ -> false

let quant_weight c tid = Hashtbl.find_opt c.quant_weights tid
