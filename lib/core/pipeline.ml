type opt_flags = {
  fusion : bool;
  sep : bool;
  dmp : bool;
  mvc : bool;
}

let all_opts = { fusion = true; sep = true; dmp = true; mvc = true }
let no_opts = { fusion = false; sep = false; dmp = false; mvc = false }

type variant = {
  v_outcome : int array;
  v_key : string;
  v_order : int list;  (** exec order with dead-branch groups pruned *)
  v_live_group : bool array;
  v_live_tensor : bool array;
  v_mem_symbolic : Mem_plan.symbolic;  (** slots over live tensors only *)
  v_alias : int array;  (** tid -> aliased source tid, [-1] = none *)
  v_fused : Fused_compile.template option array;
  v_vetted : (string, bool) Hashtbl.t;  (** per plan-cache key; see [variant_vetted] *)
}

type compiled = {
  graph : Graph.t;
  rdp : Rdp.t;
  fusion_plan : Fusion.plan;
  exec : Exec_plan.t;
  versions : Multi_version.table;
  kernel_classes : Multi_version.shape_class option array;
  fused : Fused_compile.template option array;
  flags : opt_flags;
  profile : Profile.t;
  fdtype : Tensor.dtype;  (** float precision the arena plan is sized for *)
  quant : bool;  (** int8 weight quantization was requested at compile *)
  quant_weights : (Graph.tensor_id, Quant.qtensor) Hashtbl.t;
      (** per-weight-tensor int8 payloads; read-only after compile *)
  mem_symbolic : Mem_plan.symbolic;
  plan_syms : string list;
  plan_cache : (string, Mem_plan.t) Hashtbl.t;
  plan_lock : Mutex.t;
  control : Control_region.t;
  variant_budget : int;
  variants : (string, variant) Hashtbl.t;
      (** per outcome key; guarded by [variant_lock] *)
  variant_lock : Mutex.t;
}

let env_with_all_syms g v =
  List.fold_left (fun env s -> Env.bind s v env) Env.empty (Graph.free_syms g)

(* Static shape-class resolution (§4.4.2): the implicit-GEMM extents of
   every heavy operator, evaluated from the RDP shapes under the planning
   binding of the shape variables.  Symbolic dims resolve to the
   representative value, so a matmul whose M is [batch] still lands in a
   class at compile time; operators whose extents stay unknown get [None]
   and dispatch on observed extents at run time. *)
let kernel_classes_of graph rdp ~env =
  Array.map
    (fun (nd : Graph.node) ->
      let dims_of tid = Shape.eval env (Rdp.shape rdp tid) in
      let all_dims tids = List.map dims_of tids in
      let sequence l =
        List.fold_right
          (fun x acc ->
            match x, acc with Some v, Some vs -> Some (v :: vs) | _ -> None)
          l (Some [])
      in
      match sequence (all_dims nd.inputs), sequence (all_dims nd.outputs) with
      | Some in_dims, Some out_dims ->
        Option.map
          (fun (m, n, k) -> Multi_version.classify_gemm ~m ~n ~k)
          (Multi_version.gemm_dims_of_op nd.op ~in_dims ~out_dims)
      | _ -> None)
    (Graph.nodes graph)

(* Element-size overrides for the memory plan: tensors whose producer
   statically yields a non-float dtype (shape values, index results,
   integer casts) would otherwise get slots sized as if they held the
   arena's float dtype — under-reserving I64 values by half on f32 plans.
   One-step scan: dtype propagation through views stays with the runtime,
   which never arena-stores a non-float tensor anyway. *)
let int_elem_overrides (g : Graph.t) =
  let tbl = Hashtbl.create 8 in
  let mark tids e = List.iter (fun tid -> Hashtbl.replace tbl tid e) tids in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.op with
      | Op.Cast dt when not (Tensor.is_float_dtype dt) ->
        mark nd.Graph.outputs (Tensor.bytes_per_elem dt)
      | Op.ShapeOf | Op.SizeOf | Op.NonZero | Op.Range | Op.ArgMax _ | Op.ArgMin _
      | Op.NonMaxSuppression _ ->
        mark nd.Graph.outputs (Tensor.bytes_per_elem Tensor.I64)
      | Op.TopK _ -> (
        match nd.Graph.outputs with
        | [ _values; indices ] -> mark [ indices ] (Tensor.bytes_per_elem Tensor.I64)
        | _ -> ())
      | _ -> ())
    (Graph.nodes g);
  fun tid -> Hashtbl.find_opt tbl tid

let elem_overrides = int_elem_overrides

(* The weight side of dynamic-range quantization (the TFLite recipe): at
   compile time, constant weights of heavy operators are quantized to int8
   — per-tensor symmetric for MatMul, per-channel over the output axis for
   Conv (OIHW axis 0), both with zero points pinned to 0 so the packed
   kernels' zero-point correction reduces to the activation term.
   Activations are quantized per-tensor at run time by the executor.  The
   float constants stay in the graph untouched: the same artifact serves
   float execution (guarded fallback, [config.quant = false]) bit-exactly. *)
let quant_weight_of g (nd : Graph.node) =
  let const_float tid =
    match Graph.const_value g tid with
    | Some t when Tensor.is_float_dtype (Tensor.dtype t) && Tensor.numel t > 0 ->
      Some t
    | _ -> None
  in
  match nd.Graph.op, nd.Graph.inputs with
  | Op.MatMul, [ _; w ] ->
    Option.bind (const_float w) (fun t ->
        if List.length (Tensor.dims t) = 2 then
          Some (w, Quant.quantize t (Quant.choose_per_tensor ~symmetric:true t))
        else None)
  | Op.Conv _, _ :: w :: _ ->
    Option.bind (const_float w) (fun t ->
        if List.length (Tensor.dims t) = 4 then
          Some (w, Quant.quantize t (Quant.choose_per_channel ~axis:0 t))
        else None)
  | _ -> None

let quant_table g =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      match quant_weight_of g nd with
      | Some (w, qt) -> if not (Hashtbl.mem tbl w) then Hashtbl.replace tbl w qt
      | None -> ())
    (Graph.nodes g);
  tbl

(* ------------------------------------------------------------------ *)
(* Per-outcome plan variants (§4.2/§4.4.2 multi-versioning lifted from
   kernels to whole execution plans).  A variant is the artifact
   re-specialized under one predicate-outcome vector: dead-branch groups
   pruned from the exec order (relative order preserved), the symbolic
   memory plan recomputed over live tensors only, and the fused-template
   array masked to live groups.  The base artifact is itself the any-path
   fallback, so a variant is never required for correctness. *)

let build_variant c outcome =
  let live_n nid = Control_region.live_node c.control ~outcome nid in
  let fp = c.fusion_plan in
  let n_groups = Array.length fp.Fusion.groups in
  let live_group = Array.make n_groups true in
  Array.iter
    (fun (grp : Fusion.group) ->
      (* Fusion never crosses a Switch/Combine (control flow stays in
         singleton groups), so all members share one constraint set;
         [for_all] is the safe reading if that ever changes. *)
      live_group.(grp.Fusion.gid) <- List.for_all live_n grp.Fusion.members)
    fp.Fusion.groups;
  let v_order = Exec_plan.restrict c.exec ~live:(fun gid -> live_group.(gid)) in
  let live_tensor = Array.make (Graph.tensor_count c.graph) true in
  Array.iter
    (fun (nd : Graph.node) ->
      if not (live_n nd.Graph.nid && live_group.(fp.Fusion.group_of.(nd.Graph.nid)))
      then List.iter (fun tid -> live_tensor.(tid) <- false) nd.Graph.outputs)
    (Graph.nodes c.graph);
  (* With the outcome fixed, Switch/Combine are pure routing: the live
     Switch output {e is} its data input and each Combine output {e is}
     its selected branch.  Recording that as an alias map lets the memory
     plan skip their slots and keep the source slot live across the
     alias's consumers — the executor then routes gates by slot aliasing
     with no per-gate copy out of the arena. *)
  let v_alias = Array.make (Graph.tensor_count c.graph) (-1) in
  Array.iteri
    (fun gid (gt : Control_region.gate) ->
      let b = if gid < Array.length outcome then outcome.(gid) else -1 in
      if b >= 0 then begin
        List.iter
          (fun nid ->
            let nd = Graph.node c.graph nid in
            if live_n nid && b < List.length nd.Graph.outputs then
              v_alias.(List.nth nd.Graph.outputs b) <- List.hd nd.Graph.inputs)
          gt.Control_region.g_switches;
        List.iter
          (fun nid ->
            let nd = Graph.node c.graph nid in
            if live_n nid && b < List.length nd.Graph.inputs - 1 then
              v_alias.(List.hd nd.Graph.outputs) <- List.nth nd.Graph.inputs b)
          gt.Control_region.g_combines
      end)
    c.control.Control_region.gates;
  let v_mem_symbolic =
    Mem_plan.plan_symbolic
      ~strategy:c.mem_symbolic.Mem_plan.sym_strategy
      ~elem:c.mem_symbolic.Mem_plan.sym_elem
      ~elem_of:(int_elem_overrides c.graph)
      ~live:(fun tid -> live_tensor.(tid))
      ~alias:(fun tid ->
        match v_alias.(tid) with -1 -> None | src -> Some src)
      c.graph c.rdp fp ~order:v_order
  in
  {
    v_outcome = Array.copy outcome;
    v_key = Multi_version.outcome_key outcome;
    v_order;
    v_live_group = live_group;
    v_live_tensor = live_tensor;
    v_mem_symbolic;
    v_alias;
    v_fused = Fused_compile.restrict c.fused ~live:(fun gid -> live_group.(gid));
    v_vetted = Hashtbl.create 4;
  }

(* Lookup-or-specialize, bounded by the budget.  Outcomes with open gates
   (digit -1) or the wrong arity never specialize — the caller runs the
   any-path base plan, which is also the budget-overflow answer. *)
let variant c ~outcome =
  let n_gates = Control_region.gate_count c.control in
  if
    c.variant_budget <= 0 || n_gates = 0
    || Array.length outcome <> n_gates
    || Array.exists (fun o -> o < 0) outcome
    || Array.exists2 (fun o g -> o >= g.Control_region.g_branches) outcome
         c.control.Control_region.gates
  then None
  else
    let key = Multi_version.outcome_key outcome in
    Mutex.protect c.variant_lock (fun () ->
        match Hashtbl.find_opt c.variants key with
        | Some v -> Some v
        | None ->
          if Hashtbl.length c.variants >= c.variant_budget then begin
            Profile.Counters.record ~profile:c.profile.Profile.name
              ~kind:"variant-overflow";
            None
          end
          else begin
            let v = build_variant c outcome in
            Profile.Counters.record ~profile:c.profile.Profile.name
              ~kind:"variant-specialize";
            Hashtbl.replace c.variants key v;
            Some v
          end)

(* Ahead-of-time enumeration at compile: explicitly requested vectors
   first, then the full outcome space when it fits the remaining budget
   (otherwise variants specialize lazily, per observed outcome). *)
let aot_variants c requested =
  if c.variant_budget > 0 && Control_region.gate_count c.control > 0 then begin
    List.iter (fun o -> ignore (variant c ~outcome:o)) requested;
    let branches =
      Array.map (fun g -> g.Control_region.g_branches) c.control.Control_region.gates
    in
    match Multi_version.enumerate_outcomes ~branches ~budget:c.variant_budget with
    | Some outs ->
      List.iter
        (fun o ->
          if Hashtbl.length c.variants < c.variant_budget then
            ignore (variant c ~outcome:o))
        outs
    | None -> ()
  end

(* Explicit optional arguments pre-date [Compile_opts] and still win over
   the corresponding record field, so historical call sites keep their
   exact behavior while new ones pass a single [?opts]. *)
let compile ?flags ?plan_sym_value ?float_dtype ?quant
    ?(opts = Compile_opts.default) profile graph =
  let flags =
    match flags with
    | Some f -> f
    | None -> { all_opts with fusion = opts.Compile_opts.fusion }
  in
  let plan_sym_value =
    Option.value plan_sym_value ~default:opts.Compile_opts.plan_sym_value
  in
  let float_dtype = Option.value float_dtype ~default:opts.Compile_opts.float_dtype in
  let quant = Option.value quant ~default:opts.Compile_opts.quant in
  if not (Tensor.is_float_dtype float_dtype) then
    invalid_arg "Pipeline.compile: float_dtype must be F32 or F64";
  Validate.check_exn graph;
  let rdp = Rdp.analyze graph in
  let fusion_plan =
    Fusion.plan ~mode:(if flags.fusion then Fusion.Rdp_based else Fusion.Static_only)
      graph rdp
  in
  let env = env_with_all_syms graph plan_sym_value in
  let exec =
    Exec_plan.plan
      ~strategy:(if flags.sep then Exec_plan.Optimal_small else Exec_plan.Topological)
      graph rdp fusion_plan ~env
  in
  let versions =
    if flags.mvc then Multi_version.build profile else Multi_version.single_version profile
  in
  let kernel_classes = kernel_classes_of graph rdp ~env in
  let quant_weights = if quant then quant_table graph else Hashtbl.create 0 in
  let quantized (nd : Graph.node) =
    match nd.Graph.op, nd.Graph.inputs with
    | Op.MatMul, [ _; w ] | Op.Conv _, _ :: w :: _ -> Hashtbl.mem quant_weights w
    | _ -> false
  in
  let fused = Fused_compile.plan ~quantized graph fusion_plan in
  let mem_symbolic =
    Mem_plan.plan_symbolic
      ~strategy:(if flags.dmp then Mem_plan.Peak_first else Mem_plan.Greedy_first_fit)
      ~elem:(Tensor.bytes_per_elem float_dtype)
      ~elem_of:(int_elem_overrides graph) graph rdp fusion_plan
      ~order:exec.Exec_plan.order
  in
  let plan_syms =
    List.concat_map
      (fun (e : Mem_plan.sym_entry) -> Shape.free_syms e.Mem_plan.se_shape)
      mem_symbolic.Mem_plan.sym_entries
    |> List.sort_uniq compare
  in
  let c =
    {
      graph;
      rdp;
      fusion_plan;
      exec;
      versions;
      kernel_classes;
      fused;
      flags;
      profile;
      fdtype = float_dtype;
      quant;
      quant_weights;
      mem_symbolic;
      plan_syms;
      plan_cache = Hashtbl.create 8;
      plan_lock = Mutex.create ();
      control = Control_region.discover graph;
      variant_budget = opts.Compile_opts.variant_budget;
      variants = Hashtbl.create 8;
      variant_lock = Mutex.create ();
    }
  in
  aot_variants c opts.Compile_opts.variants_aot;
  c

(* Functional update: the replacement table rides on the same plan cache,
   lock, variants and fused templates — versions only steer kernel-config
   selection, nothing shape- or memory-plan-relevant. *)
let with_versions c versions = { c with versions }

let compile_checked ?flags ?plan_sym_value ?float_dtype ?quant ?opts profile graph =
  match Validate.check graph with
  | Error defects -> Error defects
  | Ok () -> Ok (compile ?flags ?plan_sym_value ?float_dtype ?quant ?opts profile graph)

(* Cache key: the binding restricted to the shape variables the plan's
   entries actually mention (canonical order).  Unbound variables render as
   "?" so partial bindings with different unresolved sets never collide. *)
let plan_key c env =
  String.concat ";"
    (List.map
       (fun s ->
         match Env.lookup env s with
         | Some v -> s ^ "=" ^ string_of_int v
         | None -> s ^ "=?")
       c.plan_syms)

(* Engine workers share one [compiled] artifact across domains, so the
   cache lookup-or-instantiate must be a critical section: two workers
   arriving with the same fresh binding would otherwise both instantiate
   (double-counting the miss) and race the Hashtbl.  Instantiation runs
   under the lock deliberately — it is a short linear pass, and holding the
   lock gives concurrent same-binding requests a guaranteed single miss. *)
let instantiated_plan c env =
  let key = plan_key c env in
  Mutex.protect c.plan_lock (fun () ->
      match Hashtbl.find_opt c.plan_cache key with
      | Some p ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-hit";
        p
      | None ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-miss";
        let p = Mem_plan.instantiate c.mem_symbolic ~env in
        Hashtbl.replace c.plan_cache key p;
        p)

(* Variant plans live in the same cache under a compound key, so the
   steady-state zero-miss property (and its counters) covers them too. *)
let variant_plan c v env =
  let key = plan_key c env ^ "|v=" ^ v.v_key in
  Mutex.protect c.plan_lock (fun () ->
      match Hashtbl.find_opt c.plan_cache key with
      | Some p ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-hit";
        p
      | None ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-miss";
        let p = Mem_plan.instantiate v.v_mem_symbolic ~env in
        Hashtbl.replace c.plan_cache key p;
        p)

let plan_cache_keys c =
  Mutex.protect c.plan_lock (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) c.plan_cache [])

(* Compile-time (well, first-use-time) vetting of a variant plan under one
   binding: the overlap/bounds checks [Guarded_exec] would otherwise run on
   every request, plus the slot sanity the arena builder enforces.  Cached
   per (variant × binding), so steady-state variant execution skips
   per-run vetting entirely. *)
let variant_vetted c v env =
  let key = plan_key c env in
  match Mutex.protect c.plan_lock (fun () -> Hashtbl.find_opt v.v_vetted key) with
  | Some ok -> ok
  | None ->
    let p = variant_plan c v env in
    let elem = Tensor.bytes_per_elem c.fdtype in
    let slots_ok =
      Array.for_all
        (fun (a : Mem_plan.alloc) ->
          a.Mem_plan.size > 0 && a.Mem_plan.offset >= 0
          && a.Mem_plan.offset mod elem = 0
          && a.Mem_plan.offset + a.Mem_plan.size <= p.Mem_plan.arena_bytes)
        p.Mem_plan.allocs
    in
    let ok = slots_ok && Result.is_ok (Mem_plan.validate p) in
    Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"variant-vet";
    Mutex.protect c.plan_lock (fun () -> Hashtbl.replace v.v_vetted key ok);
    ok

let mem_plan_for c env =
  (* Defensive copy of the alloc array: callers (fault-injection tests) may
     rewrite allocations, and the cached plan must stay pristine. *)
  let p = instantiated_plan c env in
  { p with Mem_plan.allocs = Array.copy p.Mem_plan.allocs }

let plan_env c v = env_with_all_syms c.graph v

(* The executor's dispatch predicate: does this node run on the int8
   weight-quantized kernels?  Mirrors the membership rule the fused-group
   filter used at compile time, so a group skipped there is exactly a
   group with at least one [quant_node] member. *)
let quant_node c (nd : Graph.node) =
  match nd.Graph.op, nd.Graph.inputs with
  | Op.MatMul, [ _; w ] | Op.Conv _, _ :: w :: _ -> Hashtbl.mem c.quant_weights w
  | _ -> false

let quant_weight c tid = Hashtbl.find_opt c.quant_weights tid
