type opt_flags = {
  fusion : bool;
  sep : bool;
  dmp : bool;
  mvc : bool;
}

let all_opts = { fusion = true; sep = true; dmp = true; mvc = true }
let no_opts = { fusion = false; sep = false; dmp = false; mvc = false }

type compiled = {
  graph : Graph.t;
  rdp : Rdp.t;
  fusion_plan : Fusion.plan;
  exec : Exec_plan.t;
  versions : Multi_version.table;
  flags : opt_flags;
  profile : Profile.t;
}

let env_with_all_syms g v =
  List.fold_left (fun env s -> Env.bind s v env) Env.empty (Graph.free_syms g)

let compile ?(flags = all_opts) ?(plan_sym_value = 64) profile graph =
  Validate.check_exn graph;
  let rdp = Rdp.analyze graph in
  let fusion_plan =
    Fusion.plan ~mode:(if flags.fusion then Fusion.Rdp_based else Fusion.Static_only)
      graph rdp
  in
  let env = env_with_all_syms graph plan_sym_value in
  let exec =
    Exec_plan.plan
      ~strategy:(if flags.sep then Exec_plan.Optimal_small else Exec_plan.Topological)
      graph rdp fusion_plan ~env
  in
  let versions =
    if flags.mvc then Multi_version.build profile else Multi_version.single_version profile
  in
  { graph; rdp; fusion_plan; exec; versions; flags; profile }

let compile_checked ?flags ?plan_sym_value profile graph =
  match Validate.check graph with
  | Error defects -> Error defects
  | Ok () -> Ok (compile ?flags ?plan_sym_value profile graph)

let mem_plan_for c env =
  Mem_plan.plan
    ~strategy:(if c.flags.dmp then Mem_plan.Peak_first else Mem_plan.Greedy_first_fit)
    c.graph c.rdp c.fusion_plan ~order:c.exec.Exec_plan.order ~env

let plan_env c v = env_with_all_syms c.graph v
