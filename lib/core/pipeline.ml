type opt_flags = {
  fusion : bool;
  sep : bool;
  dmp : bool;
  mvc : bool;
}

let all_opts = { fusion = true; sep = true; dmp = true; mvc = true }
let no_opts = { fusion = false; sep = false; dmp = false; mvc = false }

type compiled = {
  graph : Graph.t;
  rdp : Rdp.t;
  fusion_plan : Fusion.plan;
  exec : Exec_plan.t;
  versions : Multi_version.table;
  kernel_classes : Multi_version.shape_class option array;
  fused : Fused_compile.template option array;
  flags : opt_flags;
  profile : Profile.t;
  fdtype : Tensor.dtype;  (** float precision the arena plan is sized for *)
  mem_symbolic : Mem_plan.symbolic;
  plan_syms : string list;
  plan_cache : (string, Mem_plan.t) Hashtbl.t;
  plan_lock : Mutex.t;
}

let env_with_all_syms g v =
  List.fold_left (fun env s -> Env.bind s v env) Env.empty (Graph.free_syms g)

(* Static shape-class resolution (§4.4.2): the implicit-GEMM extents of
   every heavy operator, evaluated from the RDP shapes under the planning
   binding of the shape variables.  Symbolic dims resolve to the
   representative value, so a matmul whose M is [batch] still lands in a
   class at compile time; operators whose extents stay unknown get [None]
   and dispatch on observed extents at run time. *)
let kernel_classes_of graph rdp ~env =
  Array.map
    (fun (nd : Graph.node) ->
      let dims_of tid = Shape.eval env (Rdp.shape rdp tid) in
      let all_dims tids = List.map dims_of tids in
      let sequence l =
        List.fold_right
          (fun x acc ->
            match x, acc with Some v, Some vs -> Some (v :: vs) | _ -> None)
          l (Some [])
      in
      match sequence (all_dims nd.inputs), sequence (all_dims nd.outputs) with
      | Some in_dims, Some out_dims ->
        Option.map
          (fun (m, n, k) -> Multi_version.classify_gemm ~m ~n ~k)
          (Multi_version.gemm_dims_of_op nd.op ~in_dims ~out_dims)
      | _ -> None)
    (Graph.nodes graph)

let compile ?(flags = all_opts) ?(plan_sym_value = 64)
    ?(float_dtype = Tensor.F32) profile graph =
  if not (Tensor.is_float_dtype float_dtype) then
    invalid_arg "Pipeline.compile: float_dtype must be F32 or F64";
  Validate.check_exn graph;
  let rdp = Rdp.analyze graph in
  let fusion_plan =
    Fusion.plan ~mode:(if flags.fusion then Fusion.Rdp_based else Fusion.Static_only)
      graph rdp
  in
  let env = env_with_all_syms graph plan_sym_value in
  let exec =
    Exec_plan.plan
      ~strategy:(if flags.sep then Exec_plan.Optimal_small else Exec_plan.Topological)
      graph rdp fusion_plan ~env
  in
  let versions =
    if flags.mvc then Multi_version.build profile else Multi_version.single_version profile
  in
  let kernel_classes = kernel_classes_of graph rdp ~env in
  let fused = Fused_compile.plan graph fusion_plan in
  let mem_symbolic =
    Mem_plan.plan_symbolic
      ~strategy:(if flags.dmp then Mem_plan.Peak_first else Mem_plan.Greedy_first_fit)
      ~elem:(Tensor.bytes_per_elem float_dtype) graph rdp fusion_plan
      ~order:exec.Exec_plan.order
  in
  let plan_syms =
    List.concat_map
      (fun (e : Mem_plan.sym_entry) -> Shape.free_syms e.Mem_plan.se_shape)
      mem_symbolic.Mem_plan.sym_entries
    |> List.sort_uniq compare
  in
  {
    graph;
    rdp;
    fusion_plan;
    exec;
    versions;
    kernel_classes;
    fused;
    flags;
    profile;
    fdtype = float_dtype;
    mem_symbolic;
    plan_syms;
    plan_cache = Hashtbl.create 8;
    plan_lock = Mutex.create ();
  }

let compile_checked ?flags ?plan_sym_value ?float_dtype profile graph =
  match Validate.check graph with
  | Error defects -> Error defects
  | Ok () -> Ok (compile ?flags ?plan_sym_value ?float_dtype profile graph)

(* Cache key: the binding restricted to the shape variables the plan's
   entries actually mention (canonical order).  Unbound variables render as
   "?" so partial bindings with different unresolved sets never collide. *)
let plan_key c env =
  String.concat ";"
    (List.map
       (fun s ->
         match Env.lookup env s with
         | Some v -> s ^ "=" ^ string_of_int v
         | None -> s ^ "=?")
       c.plan_syms)

(* Engine workers share one [compiled] artifact across domains, so the
   cache lookup-or-instantiate must be a critical section: two workers
   arriving with the same fresh binding would otherwise both instantiate
   (double-counting the miss) and race the Hashtbl.  Instantiation runs
   under the lock deliberately — it is a short linear pass, and holding the
   lock gives concurrent same-binding requests a guaranteed single miss. *)
let instantiated_plan c env =
  let key = plan_key c env in
  Mutex.protect c.plan_lock (fun () ->
      match Hashtbl.find_opt c.plan_cache key with
      | Some p ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-hit";
        p
      | None ->
        Profile.Counters.record ~profile:c.profile.Profile.name ~kind:"plan-cache-miss";
        let p = Mem_plan.instantiate c.mem_symbolic ~env in
        Hashtbl.replace c.plan_cache key p;
        p)

let mem_plan_for c env =
  (* Defensive copy of the alloc array: callers (fault-injection tests) may
     rewrite allocations, and the cached plan must stay pristine. *)
  let p = instantiated_plan c env in
  { p with Mem_plan.allocs = Array.copy p.Mem_plan.allocs }

let plan_env c v = env_with_all_syms c.graph v
