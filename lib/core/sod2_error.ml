type error_class =
  | Invalid_graph
  | Arity_mismatch
  | Dtype_mismatch
  | Shape_mismatch
  | Plan_violation
  | Unbound_symbol
  | Unsupported
  | Io_error
  | Overload
  | Deadline_expired
  | Engine_error

type context = {
  op : string option;
  node : string option;
  tensor : int option;
  step : int option;
  worker : int option;
  key : string option;
}

type t = {
  cls : error_class;
  ctx : context;
  msg : string;
}

exception Error of t

let no_context =
  { op = None; node = None; tensor = None; step = None; worker = None; key = None }

let make ?op ?node ?tensor ?step ?worker ?key cls msg =
  { cls; ctx = { op; node; tensor; step; worker; key }; msg }

let fail ?op ?node ?tensor ?step ?worker ?key cls msg =
  raise (Error (make ?op ?node ?tensor ?step ?worker ?key cls msg))

let failf ?op ?node ?tensor ?step ?worker ?key cls fmt =
  Printf.ksprintf (fun msg -> fail ?op ?node ?tensor ?step ?worker ?key cls msg) fmt

let class_name = function
  | Invalid_graph -> "invalid-graph"
  | Arity_mismatch -> "arity-mismatch"
  | Dtype_mismatch -> "dtype-mismatch"
  | Shape_mismatch -> "shape-mismatch"
  | Plan_violation -> "plan-violation"
  | Unbound_symbol -> "unbound-symbol"
  | Unsupported -> "unsupported"
  | Io_error -> "io-error"
  | Overload -> "overload"
  | Deadline_expired -> "deadline-expired"
  | Engine_error -> "engine-error"

let context_to_string ctx =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "op=%s") ctx.op;
        Option.map (Printf.sprintf "node=%s") ctx.node;
        Option.map (Printf.sprintf "t%d") ctx.tensor;
        Option.map (Printf.sprintf "step %d") ctx.step;
        Option.map (Printf.sprintf "worker %d") ctx.worker;
        Option.map (Printf.sprintf "key=%s") ctx.key;
      ]
  in
  match parts with [] -> "" | parts -> " [" ^ String.concat " " parts ^ "]"

let to_string e =
  Printf.sprintf "%s%s: %s" (class_name e.cls) (context_to_string e.ctx) e.msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception Error e -> Error e
  | exception Invalid_argument msg -> Error (make Invalid_graph msg)
  | exception Failure msg -> Error (make Invalid_graph msg)

(* Render structured errors nicely when they escape to the toplevel
   (e.g. an uncaught exception in the CLI). *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Sod2_error: " ^ to_string e)
    | _ -> None)
