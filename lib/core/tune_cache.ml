(* Persistent tuning cache: winners of measured tuning, keyed by
   (op class × shape class × backend × dtype), in a line-oriented text
   format so `sod2 tune` output is inspectable and diffable.

     sod2-tune v1
     gemm|fat|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|8123.4|hybrid

   Loading is fail-soft by design: a missing file, a stale header, or a
   corrupt line must never take serving down — bad input degrades to the
   analytical table, never to an exception. *)

let header = "sod2-tune v1"

type key = {
  k_op : string;
  k_class : Multi_version.shape_class;
  k_backend : string;
  k_dtype : string;
}

type entry = {
  e_config : Autotune.config;
  e_score_us : float;
  e_objective : string;
}

type t = (key, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let key ~op ~cls ~backend ~dtype =
  { k_op = op; k_class = cls; k_backend = backend; k_dtype = dtype }

let set t ~op ~cls ~backend ~dtype ~config ~score_us ~objective =
  Hashtbl.replace t (key ~op ~cls ~backend ~dtype)
    { e_config = config; e_score_us = score_us; e_objective = objective }

let find t ~op ~cls ~backend ~dtype = Hashtbl.find_opt t (key ~op ~cls ~backend ~dtype)
let size t = Hashtbl.length t

let entry_line k e =
  Printf.sprintf "%s|%s|%s|%s|%s|%.3f|%s" k.k_op
    (Multi_version.class_name k.k_class)
    k.k_backend k.k_dtype
    (Autotune.config_to_string e.e_config)
    e.e_score_us e.e_objective

(* Deterministic output order (sorted rendered lines) so repeated saves of
   the same cache are byte-identical. *)
let to_string t =
  let lines = Hashtbl.fold (fun k e acc -> entry_line k e :: acc) t [] in
  String.concat "\n" (header :: List.sort compare lines) ^ "\n"

let parse_line line =
  match String.split_on_char '|' line with
  | [ op; cls; backend; dtype; cfg; score; objective ] -> (
    match
      ( Multi_version.class_of_string cls,
        Autotune.config_of_string cfg,
        float_of_string_opt score )
    with
    | Some cls, Ok config, Some score_us
      when op <> "" && backend <> "" && dtype <> "" && objective <> "" ->
      Some
        ( key ~op ~cls ~backend ~dtype,
          { e_config = config; e_score_us = score_us; e_objective = objective } )
    | _ -> None)
  | _ -> None

(* Returns the cache plus the number of lines that failed to parse (the
   whole body when the header is stale/unknown). *)
let of_string s =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> create (), 0
  | h :: body when String.trim h = header ->
    let t = create () in
    let skipped = ref 0 in
    List.iter
      (fun line ->
        match parse_line (String.trim line) with
        | Some (k, e) -> Hashtbl.replace t k e
        | None -> incr skipped)
      body;
    t, !skipped
  | lines -> create (), List.length lines

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load_verbose path =
  match open_in path with
  | exception Sys_error _ -> create (), 0
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string s

let load path = fst (load_verbose path)

(* Warm-start resolution: exact (backend, dtype) entry first, then the
   "blocked" entry — the blocked kernels are what Parallel/Fused backends
   run inside their pool, so a cache tuned on one backend still seeds the
   others — then the fallback table's config.  [warm = 0] means the cache
   had nothing for this (backend, dtype): callers keep the fallback table
   (and its [versioned] flag) untouched. *)
let table_for t ~backend ~dtype ~fallback =
  let warm = ref 0 in
  let pick cls =
    let found =
      match find t ~op:"gemm" ~cls ~backend ~dtype with
      | Some e -> Some e
      | None ->
        if backend = "blocked" then None
        else find t ~op:"gemm" ~cls ~backend:"blocked" ~dtype
    in
    match found with
    | Some e ->
      incr warm;
      e.e_config
    | None -> Multi_version.config_for fallback cls
  in
  let fat = pick Multi_version.Fat in
  let regular = pick Multi_version.Regular in
  let skinny = pick Multi_version.Skinny in
  let tiny = pick Multi_version.Tiny in
  if !warm = 0 then fallback, 0
  else Multi_version.of_configs ~fat ~regular ~skinny ~tiny, !warm
