(** Persistent tuning cache — measured autotuner winners, keyed by
    (op class × shape class × backend × dtype), in a line-oriented text
    file (Nimble-style ahead-of-time specialization: derive once offline
    with [sod2 tune], reload everywhere).

    File format (one entry per line after the [sod2-tune v1] header):

    {v gemm|fat|blocked|f32|tm=64,tn=32,tk=32,u=4,th=4,v=0|8123.400|hybrid v}

    i.e. [op|class|backend|dtype|config|score_us|objective], with the
    config rendered by {!Autotune.config_to_string}.

    Loading is fail-soft: a missing file yields an empty cache, a stale or
    unknown header drops the whole body, and corrupt lines are skipped
    individually — warm-starting degrades to the analytical table rather
    than raising. *)

type t

type entry = {
  e_config : Autotune.config;
  e_score_us : float;  (** measured time of the winner at its class representative, µs *)
  e_objective : string;  (** {!Autotune.objective_name} of the tuning run *)
}

val create : unit -> t
val size : t -> int

val set :
  t -> op:string -> cls:Multi_version.shape_class -> backend:string ->
  dtype:string -> config:Autotune.config -> score_us:float ->
  objective:string -> unit
(** Insert or replace one winner.  [op] is the kernel family (["gemm"];
    convolutions share the GEMM table via im2col), [backend] a
    {!Backend.kind_name}, [dtype] a {!Tensor.dtype_name}. *)

val find :
  t -> op:string -> cls:Multi_version.shape_class -> backend:string ->
  dtype:string -> entry option

val to_string : t -> string
(** Canonical rendering: header plus sorted entry lines — repeated saves
    of the same cache are byte-identical. *)

val of_string : string -> t * int
(** Parse; returns the cache and the number of unparseable (skipped)
    lines.  A missing/stale header skips everything. *)

val save : t -> string -> unit
val load : string -> t
(** [load path] — empty on a missing file; corrupt content is skipped,
    never raised. *)

val load_verbose : string -> t * int
(** {!load} plus the skipped-line count (for CLI diagnostics). *)

val table_for :
  t -> backend:string -> dtype:string -> fallback:Multi_version.table ->
  Multi_version.table * int
(** Resolve a full version table for one (backend, dtype): per shape
    class, the exact cache entry wins, then the ["blocked"] entry (the
    kernels every non-naive backend actually runs), then [fallback]'s
    config.  Returns the table and the number of warm-started classes;
    [0] returns [fallback] itself untouched. *)
