type strategy =
  | Topological
  | Greedy_memory
  | Optimal_small

type sg_kind =
  | All_known
  | Mixed of int
  | Has_nac

type subgraph = {
  sgid : int;
  sg_groups : int list;
  kind : sg_kind;
}

type t = {
  subgraphs : subgraph array;
  order : int list;
  strategy : strategy;
}

let exhaustive_limit = 16
let max_subgraph_groups = 16

(* Fallback size for a tensor whose extent is execution determined: a
   conservative planning estimate (the runtime allocates such tensors
   dynamically anyway). *)
let nac_fallback_bytes = 262144

let tensor_bytes g rdp env tid =
  ignore g;
  match Shape.eval env (Rdp.shape rdp tid) with
  | Some dims -> 4 * List.fold_left (fun a d -> a * max 1 d) 1 dims
  | None -> nac_fallback_bytes

(* --- group-level view of the fused graph --- *)

type gview = {
  n_groups : int;
  outputs_of : Graph.tensor_id list array;  (** materialized outputs per group *)
  inputs_of : Graph.tensor_id list array;  (** group-external activation inputs *)
  preds_of : int list array;  (** predecessor groups *)
  group_consumers : int list array;  (** per tensor: consuming groups *)
}

let build_view (g : Graph.t) (fplan : Fusion.plan) : gview =
  let n_groups = Array.length fplan.groups in
  let internal = Hashtbl.create 64 in
  Array.iter
    (fun (grp : Fusion.group) ->
      List.iter (fun tid -> Hashtbl.replace internal tid ()) grp.internal)
    fplan.groups;
  let outputs_of = Array.make n_groups [] in
  let inputs_of = Array.make n_groups [] in
  let preds_of = Array.make n_groups [] in
  let group_consumers = Array.make (Graph.tensor_count g) [] in
  Array.iter
    (fun (grp : Fusion.group) ->
      let outs = ref [] and ins = ref [] and preds = ref [] in
      List.iter
        (fun nid ->
          let nd = Graph.node g nid in
          List.iter
            (fun tid ->
              if not (Hashtbl.mem internal tid) then outs := tid :: !outs)
            nd.outputs;
          List.iter
            (fun tid ->
              match (Graph.tensor g tid).kind with
              | Graph.Activation when not (Hashtbl.mem internal tid) ->
                let producer_group =
                  match Graph.producer g tid with
                  | Some p -> Some fplan.group_of.(p.nid)
                  | None -> None
                in
                (match producer_group with
                | Some pg when pg <> grp.gid ->
                  if not (List.mem tid !ins) then ins := tid :: !ins;
                  if not (List.mem pg !preds) then preds := pg :: !preds
                | _ -> ())
              | _ -> ())
            nd.inputs)
        grp.members;
      outputs_of.(grp.gid) <- List.rev !outs;
      inputs_of.(grp.gid) <- List.rev !ins;
      preds_of.(grp.gid) <- List.rev !preds)
    fplan.groups;
  Array.iteri
    (fun gid ins ->
      List.iter
        (fun tid -> group_consumers.(tid) <- gid :: group_consumers.(tid))
        ins)
    inputs_of;
  { n_groups; outputs_of; inputs_of; preds_of; group_consumers }

(* --- peak-memory simulation over a full group order --- *)

let simulate_peak_bytes g rdp fplan ~env ~order =
  let view = build_view g fplan in
  let size tid = tensor_bytes g rdp env tid in
  let remaining = Array.make (Graph.tensor_count g) 0 in
  Array.iteri (fun tid cons -> remaining.(tid) <- List.length cons) view.group_consumers;
  let cur = ref 0 and peak = ref 0 in
  List.iter
    (fun gid ->
      List.iter (fun tid -> cur := !cur + size tid) view.outputs_of.(gid);
      if !cur > !peak then peak := !cur;
      List.iter
        (fun tid ->
          remaining.(tid) <- remaining.(tid) - 1;
          if remaining.(tid) = 0 && not (List.mem tid (Graph.outputs g)) then
            cur := !cur - size tid)
        view.inputs_of.(gid))
    order;
  !peak

(* --- partitioning --- *)

let group_has_nac (g : Graph.t) rdp (grp : Fusion.group) =
  List.exists
    (fun nid ->
      let nd = Graph.node g nid in
      Op.is_control_flow nd.op
      || List.exists
           (fun tid ->
             match Rdp.shape rdp tid with
             | Shape.Nac -> true
             | Shape.Ranked d -> Array.exists (fun x -> x = Dim.nac) d
             | Shape.Undef -> true)
           nd.outputs)
    grp.members

let group_all_known (g : Graph.t) rdp (grp : Fusion.group) =
  List.for_all
    (fun nid ->
      let nd = Graph.node g nid in
      List.for_all (fun tid -> Shape.is_fully_known (Rdp.shape rdp tid)) nd.outputs)
    grp.members

let partition (g : Graph.t) rdp (fplan : Fusion.plan) =
  (* Walk groups in topological order; nac (and control-flow) groups are
     the barriers that close the running sub-graph and stand alone —
     exactly the partitioning opportunity §4.3 describes. *)
  let subgraphs = ref [] in
  let current = ref [] in
  let flush () =
    if !current <> [] then begin
      subgraphs := List.rev !current :: !subgraphs;
      current := []
    end
  in
  Array.iter
    (fun (grp : Fusion.group) ->
      if group_has_nac g rdp grp then begin
        flush ();
        subgraphs := [ grp.gid ] :: !subgraphs
      end
      else current := grp.gid :: !current)
    fplan.groups;
  flush ();
  List.rev !subgraphs

(* Classification is about shape knowledge only: a <Switch, Combine> pair
   is a partition *barrier* (its execution is input dependent) but its
   tensor shapes are typically known, so it does not make a sub-graph
   unplannable. *)
let group_shape_nac (g : Graph.t) rdp (grp : Fusion.group) =
  List.exists
    (fun nid ->
      let nd = Graph.node g nid in
      List.exists
        (fun tid ->
          match Rdp.shape rdp tid with
          | Shape.Nac | Shape.Undef -> true
          | Shape.Ranked d -> Array.exists (fun x -> x = Dim.nac) d)
        nd.outputs)
    grp.members

let classify_subgraph (g : Graph.t) rdp (fplan : Fusion.plan) gids =
  let grps = List.map (fun gid -> fplan.groups.(gid)) gids in
  if List.exists (group_shape_nac g rdp) grps then Has_nac
  else if List.for_all (group_all_known g rdp) grps then All_known
  else
    let versions = List.fold_left (fun acc grp -> max acc grp.Fusion.versions) 1 grps in
    Mixed versions

(* --- ordering within a sub-graph --- *)

(* Memory state restricted to the sub-graph: tensors produced inside it,
   freed once all their in-sub-graph consumers have run. *)
let order_subgraph (view : gview) ~size ~strategy gids =
  match gids with
  | [] | [ _ ] -> gids
  | _ ->
    let members = Array.of_list gids in
    let k = Array.length members in
    let index_of = Hashtbl.create 16 in
    Array.iteri (fun i gid -> Hashtbl.replace index_of gid i) members;
    let in_sg gid = Hashtbl.mem index_of gid in
    (* Per local group: produced tensors with their sizes and local consumers. *)
    let produces =
      Array.map
        (fun gid ->
          List.map
            (fun tid ->
              let local_consumers =
                List.filter_map
                  (fun cg -> Hashtbl.find_opt index_of cg)
                  view.group_consumers.(tid)
              in
              tid, size tid, local_consumers)
            view.outputs_of.(gid))
        members
    in
    let local_preds =
      Array.map
        (fun gid ->
          List.filter_map (fun pg -> Hashtbl.find_opt index_of pg) view.preds_of.(gid)
          |> List.sort_uniq compare)
        members
    in
    ignore in_sg;
    let subset_mem mask =
      (* Live bytes after executing exactly the groups in [mask]. *)
      let total = ref 0 in
      Array.iteri
        (fun i prods ->
          if mask land (1 lsl i) <> 0 then
            List.iter
              (fun (_, sz, consumers) ->
                let all_consumed =
                  consumers <> []
                  && List.for_all (fun c -> mask land (1 lsl c) <> 0) consumers
                in
                if not all_consumed then total := !total + sz)
              prods)
        produces;
      !total
    in
    let frontier mask =
      let out = ref [] in
      for i = k - 1 downto 0 do
        if mask land (1 lsl i) = 0
           && List.for_all (fun p -> mask land (1 lsl p) <> 0) local_preds.(i)
        then out := i :: !out
      done;
      !out
    in
    let out_bytes i = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 produces.(i) in
    let exact () =
      let full = (1 lsl k) - 1 in
      let dp = Array.make (full + 1) max_int in
      let via = Array.make (full + 1) (-1) in
      dp.(0) <- 0;
      (* Masks in increasing popcount order is implied by numeric order for
         this DP because transitions only add bits. *)
      for mask = 0 to full - 1 do
        if dp.(mask) < max_int then begin
          let base = subset_mem mask in
          List.iter
            (fun i ->
              let step_peak = base + out_bytes i in
              let cand = max dp.(mask) step_peak in
              let m' = mask lor (1 lsl i) in
              if cand < dp.(m') then begin
                dp.(m') <- cand;
                via.(m') <- i
              end)
            (frontier mask)
        end
      done;
      let rec rebuild mask acc =
        if mask = 0 then acc
        else
          let i = via.(mask) in
          rebuild (mask lxor (1 lsl i)) (members.(i) :: acc)
      in
      rebuild full []
    in
    let greedy () =
      let mask = ref 0 in
      let order = ref [] in
      for _ = 1 to k do
        match frontier !mask with
        | [] -> ()
        | candidates ->
          let score i =
            let m' = !mask lor (1 lsl i) in
            (* Primary: live memory after the step; secondary: transient peak. *)
            subset_mem m', subset_mem !mask + out_bytes i
          in
          let best =
            List.fold_left
              (fun best i ->
                match best with
                | None -> Some (i, score i)
                | Some (_, bs) ->
                  let s = score i in
                  if s < bs then Some (i, s) else best)
              None candidates
          in
          (match best with
          | Some (i, _) ->
            mask := !mask lor (1 lsl i);
            order := members.(i) :: !order
          | None -> ())
      done;
      List.rev !order
    in
    let breadth_first () =
      (* Kahn's algorithm with a FIFO queue: the eager, serialization-like
         order a planning-oblivious executor follows.  It interleaves
         parallel branches, keeping many intermediates live at once. *)
      let indeg = Array.map List.length local_preds in
      let succs = Array.make k [] in
      Array.iteri
        (fun i preds -> List.iter (fun p -> succs.(p) <- i :: succs.(p)) preds)
        local_preds;
      let q = Queue.create () in
      Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
      let order = ref [] in
      while not (Queue.is_empty q) do
        let i = Queue.pop q in
        order := members.(i) :: !order;
        List.iter
          (fun s ->
            indeg.(s) <- indeg.(s) - 1;
            if indeg.(s) = 0 then Queue.add s q)
          (List.rev succs.(i))
      done;
      List.rev !order
    in
    let lazy_dfs () =
      (* Demand-ordered postorder (Sethi–Ullman flavour): every group runs
         as late as its consumers permit, and at a join the memory-hungrier
         operand subtree is evaluated first so its big tensors die before
         the cheap operands materialize. *)
      let visited = Array.make k false in
      let order = ref [] in
      let rec visit i =
        if not visited.(i) then begin
          visited.(i) <- true;
          let preds =
            List.sort (fun a b -> compare (out_bytes b) (out_bytes a)) local_preds.(i)
          in
          List.iter visit preds;
          order := i :: !order
        end
      in
      let has_succ = Array.make k false in
      Array.iter (fun preds -> List.iter (fun p -> has_succ.(p) <- true) preds) local_preds;
      Array.iteri (fun i _ -> if not has_succ.(i) then visit i) members;
      Array.iteri (fun i _ -> if not visited.(i) then visit i) members;
      List.rev_map (fun i -> members.(i)) !order
    in
    let eval_order gid_order =
      (* Peak of within-sub-graph live bytes for this order (mask-free, so
         it works for arbitrarily large sub-graphs). *)
      let idx_of gid = Hashtbl.find index_of gid in
      let remaining =
        Array.map (List.map (fun (_, sz, consumers) -> sz, ref (List.length consumers))) produces
      in
      (* per consumer group: the produced tensors it releases *)
      let releases = Array.make k [] in
      Array.iteri
        (fun i prods ->
          List.iteri
            (fun j (_, _, consumers) ->
              List.iter
                (fun cidx ->
                  releases.(cidx) <- (i, j) :: releases.(cidx))
                consumers)
            prods)
        produces;
      let live = ref 0 and peak = ref 0 in
      List.iter
        (fun gid ->
          let i = idx_of gid in
          live := !live + out_bytes i;
          if !live > !peak then peak := !live;
          List.iter
            (fun (pi, pj) ->
              let sz, rem = List.nth remaining.(pi) pj in
              decr rem;
              if !rem = 0 then live := !live - sz)
            releases.(i))
        gid_order;
      !peak
    in
    let best_of candidates =
      match candidates with
      | [] -> gids
      | first :: rest ->
        List.fold_left
          (fun best cand -> if eval_order cand < eval_order best then cand else best)
          first rest
    in
    (match strategy with
    | Topological -> breadth_first ()
    | Greedy_memory -> if k <= 62 then greedy () else lazy_dfs ()
    | Optimal_small ->
      if k <= exhaustive_limit then best_of [ exact (); breadth_first () ]
      else if k <= 62 then best_of [ lazy_dfs (); greedy (); breadth_first () ]
      else best_of [ lazy_dfs (); breadth_first () ])

let plan ?(strategy = Optimal_small) (g : Graph.t) rdp (fplan : Fusion.plan) ~env =
  let view = build_view g fplan in
  let size tid = tensor_bytes g rdp env tid in
  let parts = partition g rdp fplan in
  let make strat =
    let subgraphs =
      List.mapi
        (fun sgid gids ->
          let ordered = order_subgraph view ~size ~strategy:strat gids in
          { sgid; sg_groups = ordered; kind = classify_subgraph g rdp fplan gids })
        parts
    in
    let order = List.concat_map (fun sg -> sg.sg_groups) subgraphs in
    subgraphs, order
  in
  let subgraphs, order =
    match strategy with
    | Topological | Greedy_memory -> make strategy
    | Optimal_small ->
      (* Per-sub-graph decisions can interact across boundaries; evaluate
         the planned and the naive variants globally and never return a
         plan that loses to the naive order. *)
      let planned = make Optimal_small in
      let naive = make Topological in
      let peak (_, order) = simulate_peak_bytes g rdp fplan ~env ~order in
      if peak planned <= peak naive then planned else naive
  in
  { subgraphs = Array.of_list subgraphs; order; strategy }

(* A variant order is a filter, not a re-plan: relative order of the
   surviving groups is preserved, so every ordering property the planner
   established (and vetted) carries over to the pruned plan. *)
let restrict t ~live = List.filter live t.order

let subgraph_kind_counts t =
  let all = ref 0 and m1 = ref 0 and m24 = ref 0 and m58 = ref 0 and nac = ref 0 in
  Array.iter
    (fun sg ->
      match sg.kind with
      | All_known -> incr all
      | Mixed v when v <= 1 -> incr m1
      | Mixed v when v <= 4 -> incr m24
      | Mixed _ -> incr m58
      | Has_nac -> incr nac)
    t.subgraphs;
  [
    "all-known", !all;
    "mixed-1", !m1;
    "mixed-2-4", !m24;
    "mixed-5-8", !m58;
    "nac", !nac;
  ]

let pp ppf t =
  Format.fprintf ppf "execution plan: %d sub-graphs, %d groups@."
    (Array.length t.subgraphs) (List.length t.order);
  Array.iter
    (fun sg ->
      Format.fprintf ppf "  sg%d [%s]: %d groups@." sg.sgid
        (match sg.kind with
        | All_known -> "known"
        | Mixed v -> Printf.sprintf "mixed/%d" v
        | Has_nac -> "nac")
        (List.length sg.sg_groups))
    t.subgraphs
