type t = {
  shapes : Shape.t array;
  values : Value_info.t array;
  categories : Op_class.category array;
  iterations : int;
}

let max_sweeps = 64

(* Constant tensors seed both maps: the shape is fully known, and small
   integer constants (Reshape targets, Slice bounds, axes …) seed the V-map
   so ISVDOS operators can degrade to ISDOS during the analysis. *)
let const_value (tensor : Tensor.t) : Value_info.t =
  match Tensor.dtype tensor with
  | Tensor.I64 when Tensor.numel tensor <= Value_info.max_tracked_elements ->
    Value_info.of_ints (Tensor.to_int_list tensor)
  | Tensor.I64 | Tensor.I8 | Tensor.F32 | Tensor.F64 -> Lattice.Nac

(* Graph inputs with undeclared dims get fresh symbolic constants so that
   equalities between uses of the same dimension survive the analysis —
   the paper's get_symbolic_value.  The counter is scoped to one analysis:
   analyzing the same graph twice must mint the same names, or plans and
   goldens stop being reproducible across runs and processes. *)
let name_undef_dims fresh_sym (s : Shape.t) : Shape.t =
  match s with
  | Shape.Ranked d ->
    Shape.Ranked
      (Array.map
         (fun x -> match x with Lattice.Undef -> Dim.of_sym (fresh_sym ()) | _ -> x)
         d)
  | Shape.Undef | Shape.Nac -> s

let init_state ?(overrides = []) g =
  let counter = ref 0 in
  let fresh_sym () =
    incr counter;
    Printf.sprintf "_d%d" !counter
  in
  let n = Graph.tensor_count g in
  let shapes = Array.make n Shape.Undef in
  let values = Array.make n Value_info.undef in
  for tid = 0 to n - 1 do
    match (Graph.tensor g tid).kind with
    | Graph.Input s ->
      let s = match List.assoc_opt tid overrides with Some o -> o | None -> s in
      shapes.(tid) <- name_undef_dims fresh_sym s
    | Graph.Const c ->
      shapes.(tid) <- Shape.of_ints (Tensor.dims c);
      values.(tid) <- const_value c
    | Graph.Activation -> ()
  done;
  shapes, values

let gather_io shapes values (nd : Graph.node) : Shape_fn.io =
  {
    Shape_fn.in_shapes = Array.of_list (List.map (fun tid -> shapes.(tid)) nd.inputs);
    in_values = Array.of_list (List.map (fun tid -> values.(tid)) nd.inputs);
  }

let update_shape shapes tid s =
  let merged = Shape.meet shapes.(tid) s in
  if Shape.equal merged shapes.(tid) then false
  else begin
    shapes.(tid) <- merged;
    true
  end

let update_value values tid v =
  let merged = Value_info.meet values.(tid) v in
  if Value_info.equal merged values.(tid) then false
  else begin
    values.(tid) <- merged;
    true
  end

let analyze ?overrides g =
  let shapes, values = init_state ?overrides g in
  let order = Graph.dfs_order g in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_sweeps do
    changed := false;
    incr iterations;
    List.iter
      (fun (nd : Graph.node) ->
        let io = gather_io shapes values nd in
        (* 1. forward transfer to this node's outputs *)
        let out_shapes, out_values = Shape_fn.forward nd.op io in
        List.iteri
          (fun i tid ->
            if i < Array.length out_shapes then begin
              if update_shape shapes tid out_shapes.(i) then changed := true;
              if update_value values tid out_values.(i) then changed := true
            end)
          nd.outputs;
        (* 2. backward transfer to predecessors that are still undef *)
        let current_outs =
          Array.of_list (List.map (fun tid -> shapes.(tid)) nd.outputs)
        in
        List.iteri
          (fun i tid ->
            let needs_info =
              match shapes.(tid) with
              | Shape.Undef -> true
              | Shape.Ranked d -> Array.exists (fun x -> x = Dim.undef) d
              | Shape.Nac -> false
            in
            if needs_info then begin
              let refined =
                Shape_fn.backward nd.op ~out_shapes:current_outs io ~input_index:i
              in
              if update_shape shapes tid refined then changed := true
            end)
          nd.inputs)
      order
  done;
  let categories =
    Array.map
      (fun (nd : Graph.node) ->
        Op_class.classify nd.op ~value_known:(fun i ->
            match List.nth_opt nd.inputs i with
            | Some tid -> Lattice.is_known values.(tid)
            | None -> false))
      (Graph.nodes g)
  in
  { shapes; values; categories; iterations = !iterations }

let shape t tid = t.shapes.(tid)
let value t tid = t.values.(tid)
let category t nid = t.categories.(nid)

type dim_stats = {
  n_tensors : int;
  known_const : int;
  symbolic : int;
  rank_only : int;
  unknown : int;
}

let stats g t =
  let acc = ref { n_tensors = 0; known_const = 0; symbolic = 0; rank_only = 0; unknown = 0 } in
  for tid = 0 to Graph.tensor_count g - 1 do
    match (Graph.tensor g tid).kind with
    | Graph.Const _ | Graph.Input _ -> ()
    | Graph.Activation ->
      let a = !acc in
      let a = { a with n_tensors = a.n_tensors + 1 } in
      acc :=
        (match t.shapes.(tid) with
        | s when Shape.is_fully_known s -> { a with known_const = a.known_const + 1 }
        | s when Shape.is_symbolically_known s -> { a with symbolic = a.symbolic + 1 }
        | Shape.Ranked _ -> { a with rank_only = a.rank_only + 1 }
        | Shape.Undef | Shape.Nac -> { a with unknown = a.unknown + 1 })
  done;
  !acc

let resolution_rate g t =
  let s = stats g t in
  if s.n_tensors = 0 then 1.0
  else float_of_int (s.known_const + s.symbolic) /. float_of_int s.n_tensors

let pp_tensor g t ppf tid =
  let info = Graph.tensor g tid in
  Format.fprintf ppf "t%d(%s): S=%a V=%a" tid info.tname Shape.pp t.shapes.(tid)
    Value_info.pp t.values.(tid)
