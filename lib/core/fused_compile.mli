(** Fused-group kernel compilation (§4.2 fused code generation).

    Lowers fusion groups into single executable kernels: pointwise/view
    chains become one closure-compiled loop over the terminal output's flat
    index space (no intermediate tensors; broadcasts become precomputed
    index maps), and heavy anchors (MatMul/Gemm/Conv/Conv1d) run the
    blocked kernels with the rest of the group installed as the micro-tile
    write-back epilogue.

    Compile time produces {!template}s (one per eligible group); the first
    execution under concrete dims {!specialize}s a template into a
    {!kernel} — the runtime side of bounded multi-version code generation,
    where each still-ambiguous broadcast collapses to one concrete variant.
    Kernels are cached by the backend per (group × shape); this module is
    purely functional.

    Scalar element semantics come from {!Op_semantics}, the same closures
    the reference kernels use, so pure pointwise groups are bit-for-bit
    equal to unfused execution (anchored groups differ only by the blocked
    kernels' summation order). *)

type template = {
  t_gid : int;
  t_members : Graph.node list;  (** in topological order *)
  t_anchor : Graph.node option;  (** heavy first member, when present *)
  t_out : Graph.tensor_id;  (** the terminal (only materialized) output *)
  t_slots : Graph.tensor_id array;  (** external element inputs, slot order *)
  t_versions : int;  (** broadcast versions bounded at fusion time *)
}

type kernel = {
  k_out : Graph.tensor_id;
  k_dims : (Graph.tensor_id * int list) list;
      (** concrete output dims of every member, terminal included *)
  k_run : par:Blocked.par -> Tensor.t array -> Tensor.t;
      (** args in slot order; returns the terminal tensor *)
  k_run_into :
    par:Blocked.par -> Tensor.view array -> c:Tensor.fbuf -> co:int -> unit;
      (** destination-passing variant: args arrive as offset-carrying views
          (slot order) and the terminal result is written into [c] at
          element offset [co] — no output allocation.  [k_run] is a wrapper
          that allocates a fresh tensor and calls this at offset 0. *)
}

val plan :
  ?quantized:(Graph.node -> bool) -> Graph.t -> Fusion.plan ->
  template option array
(** Per-group templates, indexed by group id.  [None] for singleton groups
    and groups containing an operator the per-element compiler cannot
    lower (reductions terminate groups but are not pointwise; data-
    dependent reshapes; I64-producing casts; …) — those keep op-by-op
    execution.  [quantized] (default: nothing) marks nodes the runtime
    will dispatch to int8 weight-quantized kernels; their groups get no
    template, since the fused float kernel would silently bypass
    quantization. *)

val restrict :
  template option array -> live:(int -> bool) -> template option array
(** A per-outcome variant's view of the template array: groups the variant
    prunes map to [None].  Live groups keep the {e same} template values as
    the base array, so backend kernel caches keyed by template identity are
    shared across variants — specialization cost is paid once per (group ×
    shape), not per outcome vector. *)

val specialize :
  Graph.t -> template ->
  tiles:(Multi_version.shape_class -> Blocked.tiles) ->
  args:(int list * Tensor.dtype) array ->
  (kernel, string) result
(** Compile the template against concrete slot dims/dtypes (slot order).
    [tiles] resolves the anchor's shape class to blocked tile extents
    (normally the autotuner table's choice).  [Error] means this shape
    cannot be fused soundly (I64 element inputs, non-concrete member
    shapes, …) and the caller should fall back to op-by-op execution. *)
