(** The compile surface as one value.

    {!Pipeline.compile}'s optional arguments sprawled across PRs — float
    precision, int8 weight quantization, the fusion toggle, the planning
    symbol value, and now the variant budget — so this record collects
    them behind a single [?opts] argument with a canonical string form,
    mirroring {!Executor.config} / [config_of_string] on the execution
    side.  The historical explicit optional arguments still exist and win
    over the corresponding field, so no call site changed behavior.

    Canonical syntax (comma-separated, order-insensitive):
    ["f32,int8,variants=8"].  Tokens: [f32]|[f64] (float precision),
    [int8] (quantize eligible weights), [nofuse] (static-only fusion),
    [sym=N] (representative planning value for shape variables),
    [variants=N] (per-branch plan-variant budget; [0] disables),
    [aot=VEC] (explicitly pre-compile the variant for one outcome vector,
    e.g. [aot=010]; repeatable). *)

type t = {
  float_dtype : Tensor.dtype;  (** F32 (default) or F64 *)
  quant : bool;  (** quantize eligible constant weights to int8 *)
  fusion : bool;  (** RDP-based fusion; [false] = static-only *)
  plan_sym_value : int;  (** representative shape-variable value, default 64 *)
  variant_budget : int;
      (** max per-outcome plan variants kept per artifact; [0] disables
          variant compilation entirely *)
  variants_aot : int array list;
      (** outcome vectors to specialize at compile time, beyond whatever
          full enumeration the budget admits *)
}

val default : t
(** [f32], no quantization, fusion on, [sym=64], no variants. *)

val of_string : string -> (t, string) result
(** Parse the canonical comma-separated form.  [""] is {!default};
    unknown tokens are errors naming the expected vocabulary. *)

val to_string : t -> string
(** Canonical rendering, always leading with the dtype token.
    [of_string (to_string t) = Ok t] for every [t] constructible by
    {!of_string} (AOT vectors deduplicated, order preserved). *)

val parse_token : t -> string -> (t, string) result
(** Fold one token into an options value — how {!Executor.config_of_string}
    lets compile tokens ride in an [--exec] spec. *)

val to_tokens : t -> string list
(** Only the non-default fields, in canonical order; [[]] for {!default}. *)
