type t = {
  float_dtype : Tensor.dtype;
  quant : bool;
  fusion : bool;
  plan_sym_value : int;
  variant_budget : int;
  variants_aot : int array list;
}

let default =
  {
    float_dtype = Tensor.F32;
    quant = false;
    fusion = true;
    plan_sym_value = 64;
    variant_budget = 0;
    variants_aot = [];
  }

let parse_token opts tok =
  match String.trim tok with
  | "" -> Ok opts
  | "f32" -> Ok { opts with float_dtype = Tensor.F32 }
  | "f64" -> Ok { opts with float_dtype = Tensor.F64 }
  | "int8" -> Ok { opts with quant = true }
  | "nofuse" -> Ok { opts with fusion = false }
  | "fuse" -> Ok { opts with fusion = true }
  | tok -> (
    match String.index_opt tok '=' with
    | None ->
      Error
        (Printf.sprintf
           "unknown compile token %S (expected \
            f32|f64|int8|nofuse|sym=N|variants=N|aot=VEC)" tok)
    | Some i -> (
      let k = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match k with
      | "sym" -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Ok { opts with plan_sym_value = n }
        | _ -> Error (Printf.sprintf "bad sym=%S (expected a positive integer)" v))
      | "variants" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok { opts with variant_budget = n }
        | _ -> Error (Printf.sprintf "bad variants=%S (expected an integer >= 0)" v))
      | "aot" -> (
        match Multi_version.outcome_of_key v with
        | Some outcome ->
          if List.exists (fun o -> o = outcome) opts.variants_aot then Ok opts
          else Ok { opts with variants_aot = opts.variants_aot @ [ outcome ] }
        | None ->
          Error
            (Printf.sprintf "bad aot=%S (expected an outcome key, e.g. aot=010)" v))
      | _ ->
        Error
          (Printf.sprintf
             "unknown compile token %S (expected \
              f32|f64|int8|nofuse|sym=N|variants=N|aot=VEC)" tok)))

let of_string s =
  List.fold_left
    (fun acc tok -> Result.bind acc (fun opts -> parse_token opts tok))
    (Ok default)
    (String.split_on_char ',' (String.lowercase_ascii (String.trim s)))

(* Non-default fields only, canonical order — the tail [Executor]'s config
   renderer appends after the exec tokens. *)
let to_tokens opts =
  List.filter_map Fun.id
    [
      (if opts.float_dtype <> default.float_dtype then
         Some (Tensor.dtype_name opts.float_dtype)
       else None);
      (if opts.quant then Some "int8" else None);
      (if not opts.fusion then Some "nofuse" else None);
      (if opts.plan_sym_value <> default.plan_sym_value then
         Some (Printf.sprintf "sym=%d" opts.plan_sym_value)
       else None);
      (if opts.variant_budget > 0 then
         Some (Printf.sprintf "variants=%d" opts.variant_budget)
       else None);
    ]
  @ List.map
      (fun o -> "aot=" ^ Multi_version.outcome_key o)
      opts.variants_aot

(* Canonical rendering always leads with the dtype, so the string is
   self-describing even for the all-defaults record. *)
let to_string opts =
  String.concat ","
    (Tensor.dtype_name opts.float_dtype
     :: List.filter (fun tok -> tok <> Tensor.dtype_name opts.float_dtype)
          (to_tokens opts))
