(** End-to-end SoD² compilation: RDP analysis followed by the four
    RDP-enabled optimizations, with per-optimization switches for the
    ablation studies of Fig. 5/6.

    Compilation is shape-generic: it runs once per model and device, and
    the resulting artifact executes any concrete input shape without
    re-initialization.  Only the memory plan has a per-inference component
    ({!mem_plan_for}): offsets are re-derived from the symbolic plan once
    the shape variables are bound — a linear-time pass, not a search. *)

type opt_flags = {
  fusion : bool;  (** RDP-based operator fusion (§4.2) *)
  sep : bool;  (** static execution planning (§4.3) *)
  dmp : bool;  (** dynamic memory planning (§4.4.1) *)
  mvc : bool;  (** multi-version code generation (§4.4.2) *)
}

val all_opts : opt_flags
val no_opts : opt_flags
(** Baseline "No opt": general static optimizations (static fusion,
    topological order, first-fit memory, untuned kernels) still apply, as
    in the paper's Fig. 5/6 baseline. *)

type variant = {
  v_outcome : int array;
      (** the predicate-outcome vector this plan is specialized for — one
          digit per gate, in {!Control_region.t} gate order *)
  v_key : string;  (** {!Multi_version.outcome_key} of [v_outcome] *)
  v_order : int list;
      (** the artifact's exec order with dead-branch groups pruned;
          relative order of survivors unchanged (topologically valid) *)
  v_live_group : bool array;  (** per fusion-group id *)
  v_live_tensor : bool array;  (** per tensor id *)
  v_mem_symbolic : Mem_plan.symbolic;
      (** symbolic memory plan over live tensors only — dead branches get
          no arena slots at all *)
  v_alias : int array;
      (** per tensor id: the tensor this one is a pure routing alias of
          ([-1] = none).  With the outcome fixed, the live Switch output
          is its data input and each Combine output is its selected
          branch — [v_mem_symbolic] gives such tensors no slot and keeps
          the source slot live across their consumers, so executors route
          gates by slot aliasing instead of copying out of the arena *)
  v_fused : Fused_compile.template option array;
      (** base fused templates masked to live groups (shared values, so
          kernel caches keyed by template identity span variants) *)
  v_vetted : (string, bool) Hashtbl.t;
      (** plan-cache key → vetting verdict; written by {!variant_vetted} *)
}

type compiled = {
  graph : Graph.t;
  rdp : Rdp.t;
  fusion_plan : Fusion.plan;
  exec : Exec_plan.t;
  versions : Multi_version.table;
  kernel_classes : Multi_version.shape_class option array;
      (** per-node GEMM shape class resolved at compile time from the
          RDP-predicted (possibly symbolic) extents; [None] when the node
          is not a heavy operator or its extents stay unknown, in which
          case the runtime classifies from observed extents *)
  fused : Fused_compile.template option array;
      (** per-group fused-kernel templates (indexed by group id); [None]
          when the group stays on op-by-op execution *)
  flags : opt_flags;
  profile : Profile.t;
  fdtype : Tensor.dtype;
      (** float precision the artifact plans for: arena slots are sized
          [bytes_per_elem fdtype × numel] and the executor allocates the
          arena in this kind *)
  quant : bool;
      (** int8 weight quantization was requested at compile; implies
          {!quant_weights} is populated for every eligible heavy node *)
  quant_weights : (Graph.tensor_id, Quant.qtensor) Hashtbl.t;
      (** int8 payload + scheme per quantized constant weight tensor
          (MatMul: per-tensor symmetric; Conv: per-channel over OIHW axis
          0).  The float constants stay in the graph, so float execution
          of the same artifact is unchanged.  Read-only after compile —
          safe to share across engine workers *)
  mem_symbolic : Mem_plan.symbolic;
      (** env-independent memory plan: symbolic lifetimes computed once at
          compile time; {!instantiated_plan} binds them per inference *)
  plan_syms : string list;
      (** shape variables the symbolic plan depends on (cache-key basis) *)
  plan_cache : (string, Mem_plan.t) Hashtbl.t;
      (** instantiated plans per symbol binding; hits/misses are recorded
          in {!Profile.Counters} as ["plan-cache-hit"]/["plan-cache-miss"].
          Guarded by [plan_lock] — access through {!instantiated_plan} *)
  plan_lock : Mutex.t;
      (** serializes plan-cache lookups/instantiations so one [compiled]
          artifact can be shared by concurrent {!Engine} workers *)
  control : Control_region.t;
      (** the graph's gates (predicate → Switch/Combine families) and
          per-node branch constraints, discovered at compile *)
  variant_budget : int;
      (** max per-outcome plan variants kept; [0] disables variants *)
  variants : (string, variant) Hashtbl.t;
      (** outcome key → specialized plan variant.  Guarded by
          [variant_lock] — access through {!variant} *)
  variant_lock : Mutex.t;
}

val compile :
  ?flags:opt_flags -> ?plan_sym_value:int -> ?float_dtype:Tensor.dtype ->
  ?quant:bool -> ?opts:Compile_opts.t -> Profile.t -> Graph.t -> compiled
(** Compile [graph] for the device.  [opts] (default
    {!Compile_opts.default}) is the consolidated compile surface; the
    historical explicit optional arguments win over the corresponding
    [opts] field when both are given.  [plan_sym_value] (default 64) is the
    representative value bound to every shape variable while comparing
    candidate execution orders.  [float_dtype] (default {!Tensor.F32})
    selects the float precision the arena plan and executor run in; passing
    an integer dtype raises [Invalid_argument].  [quant] (default false)
    additionally quantizes every eligible constant weight (MatMul/Conv) to
    int8 and withholds fused templates from their groups; the runtime
    engages the quantized kernels only when {!Executor.config.quant} is
    also set.  With [opts.variant_budget > 0] and a gated graph, per-branch
    plan variants are enumerated ahead of time: [opts.variants_aot] first,
    then the full outcome space when it fits the budget (otherwise the
    remaining outcomes specialize lazily on first observation, still
    bounded by the budget).  The graph is validated first
    ({!Validate.check}); raises [Sod2_error.Error] on the first defect of a
    malformed graph. *)

val compile_checked :
  ?flags:opt_flags -> ?plan_sym_value:int -> ?float_dtype:Tensor.dtype ->
  ?quant:bool -> ?opts:Compile_opts.t -> Profile.t -> Graph.t ->
  (compiled, Sod2_error.t list) result
(** Like {!compile}, but collects {e every} validation defect instead of
    raising on the first — the entry point for untrusted graphs (e.g. ones
    loaded from disk). *)

val with_versions : compiled -> Multi_version.table -> compiled
(** The same artifact with a replacement kernel-version table (e.g. one
    warm-started from a {!Tune_cache} file or re-derived by measured
    tuning).  Shares the plan cache/lock with the original — version
    tables steer kernel-config selection only, never shapes or memory. *)

val plan_key : compiled -> Env.t -> string
(** Canonical rendering of [env] restricted to [plan_syms] — the plan-cache
    key for that binding.  Requests with equal keys share an instantiated
    plan (and may be micro-batched onto one engine worker). *)

val instantiated_plan : compiled -> Env.t -> Mem_plan.t
(** The memory plan for one symbol binding, served from the per-binding
    cache: the first call per binding runs {!Mem_plan.instantiate} (affine
    evaluation + placement) and is counted as a ["plan-cache-miss"]; every
    later call with the same binding returns the cached plan and counts a
    ["plan-cache-hit"].  The returned plan is shared — treat it as
    read-only. *)

val variant : compiled -> outcome:int array -> variant option
(** The plan variant for one full predicate-outcome vector: cached, or
    specialized on the spot while the variant count is under the budget.
    [None] — run the any-path base plan — when variants are disabled, the
    vector has the wrong arity, leaves a gate open ([-1]) or names an
    out-of-range branch, or the budget is exhausted (counted as
    ["variant-overflow"]).  Fresh specializations count
    ["variant-specialize"].  Thread-safe. *)

val variant_plan : compiled -> variant -> Env.t -> Mem_plan.t
(** {!instantiated_plan} for a variant: served from the same per-binding
    cache under the compound key [plan_key ^ "|v=" ^ v_key], with the same
    hit/miss counters.  The returned plan is shared — treat as read-only. *)

val variant_vetted : compiled -> variant -> Env.t -> bool
(** Vet the variant's instantiated plan under one binding — the
    overlap/bounds checks {!Guarded_exec} runs per request, done once and
    cached per (variant × binding), counted as ["variant-vet"].  [true]
    means the runtime may execute this variant without per-run plan
    vetting. *)

val plan_cache_keys : compiled -> string list
(** Snapshot of the plan-cache keys currently instantiated (base bindings
    and ["…|v=…"] variant compounds) — {!Engine.stats} aggregates these
    per model for the serve report. *)

val mem_plan_for : compiled -> Env.t -> Mem_plan.t
(** Instantiate the memory plan for one concrete input shape.  Served from
    the same cache as {!instantiated_plan} but with a fresh allocation
    array, so callers may rewrite it (fault injection) without poisoning
    the cache. *)

val plan_env : compiled -> int -> Env.t
(** [plan_env c v] binds every shape variable of the model to [v]. *)

val quant_node : compiled -> Graph.node -> bool
(** Does this node dispatch to the int8 weight-quantized kernels?  True
    exactly when its weight input has an entry in {!quant_weights} — the
    same membership rule that withheld the node's fused template. *)

val quant_weight : compiled -> Graph.tensor_id -> Quant.qtensor option
(** The compile-time int8 payload for a weight tensor, when quantized. *)

val elem_overrides : Graph.t -> Graph.tensor_id -> int option
(** The per-tensor element-size overrides {!compile} hands to
    {!Mem_plan.plan_symbolic} ([?elem_of]): tensors whose producer
    statically yields a non-float dtype (shape values, index results,
    integer casts) report that dtype's byte width so their arena slots are
    not under-reserved on f32 plans.  Exposed so callers re-deriving a
    concrete plan with {!Mem_plan.plan} can reproduce the artifact's exact
    slot sizing. *)
