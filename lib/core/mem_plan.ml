type strategy =
  | Greedy_first_fit
  | Peak_first
  | Optimal_search

type alloc = {
  tid : Graph.tensor_id;
  offset : int;
  size : int;
  first_step : int;
  last_step : int;
  elem : int;
}

type t = {
  allocs : alloc array;
  dynamic : Graph.tensor_id list;
  arena_bytes : int;
  strategy : strategy;
}

(* Lifetime of every materialized activation tensor in terms of execution
   steps (positions in the group order). *)
type lifetime = {
  lt_tid : Graph.tensor_id;
  lt_size : int;
  lt_first : int;
  lt_last : int;
  lt_elem : int;
}

(* One symbolic lifetime: the tensor's RDP shape (dims as affine [Expr]s
   over the shape variables) plus its execution-step live range, both
   env-independent.  [se_numel] is the affine element count when every dim
   is symbolically known — the instantiation fast path and what {!pp_symbolic}
   reports. *)
type sym_entry = {
  se_tid : Graph.tensor_id;
  se_shape : Shape.t;
  se_numel : Expr.t option;
  se_first : int;
  se_last : int;
  se_elem : int option;
}

type symbolic = {
  sym_entries : sym_entry list;  (** in materialization order *)
  sym_strategy : strategy;
  sym_elem : int;  (** bytes per element of the float dtype planned for *)
}

(* The env-independent part of lifetime analysis: which tensors
   materialize, their symbolic shapes and their step ranges.  Runs once per
   compiled artifact; {!concretize} turns the result into placeable
   lifetimes by affine evaluation alone.

   [alias tid = Some src] declares [tid] the same value as [src] (variant
   plans resolve Switch/Combine routing at plan time): the alias gets no
   slot of its own, and the storage it resolves to — the root of the alias
   chain — stays live over the alias's consumers (and to the end when the
   alias is a graph output), so executors may serve the alias straight
   from the root's slot. *)
let symbolic_lifetimes (g : Graph.t) rdp (fplan : Fusion.plan) ~order ~elem_of ~live
    ~alias =
  let n_steps = List.length order in
  let step_of_group = Hashtbl.create 64 in
  List.iteri (fun i gid -> Hashtbl.replace step_of_group gid i) order;
  let materialized = Fusion.materialized_tensors g fplan in
  let outs = Graph.outputs g in
  let rec root tid =
    match alias tid with Some src -> root src | None -> tid
  in
  let consumed_last ~first tid =
    List.fold_left
      (fun acc cnid ->
        match Hashtbl.find_opt step_of_group fplan.group_of.(cnid) with
        | Some s -> max acc s
        | None -> acc)
      first (Graph.consumers g tid)
  in
  (* Lifetime pressure each live alias puts on its root's slot. *)
  let alias_last = Hashtbl.create 8 in
  let alias_out = Hashtbl.create 8 in
  List.iter
    (fun tid ->
      if live tid && alias tid <> None then begin
        let r = root tid in
        if List.mem tid outs then Hashtbl.replace alias_out r ();
        let last = consumed_last ~first:0 tid in
        match Hashtbl.find_opt alias_last r with
        | Some prev when prev >= last -> ()
        | _ -> Hashtbl.replace alias_last r last
      end)
    materialized;
  let entries = ref [] in
  List.iter
    (fun tid ->
      match Graph.producer g tid with
      | _ when not (live tid) || alias tid <> None -> ()
      | None -> ()
      | Some p ->
        let first =
          match Hashtbl.find_opt step_of_group fplan.group_of.(p.nid) with
          | Some s -> s
          | None -> 0
        in
        let last =
          if List.mem tid outs || Hashtbl.mem alias_out tid then n_steps - 1
          else
            let own = consumed_last ~first tid in
            match Hashtbl.find_opt alias_last tid with
            | Some a -> max own a
            | None -> own
        in
        let shape = Rdp.shape rdp tid in
        entries :=
          {
            se_tid = tid;
            se_shape = shape;
            se_numel = Shape.numel shape;
            se_first = first;
            se_last = last;
            se_elem = elem_of tid;
          }
          :: !entries)
    materialized;
  List.rev !entries

(* Affine instantiation of the symbolic lifetimes: evaluate each entry's
   dims under [env]; entries whose shapes stay unresolved are
   execution-determined and left to runtime malloc.  This is the only part
   of planning that looks at the binding. *)
(* Slot bytes for an entry whose element size may differ from the plan's
   float dtype ([plan_elem]).  Same-dtype entries keep the exact product;
   dtype-override entries (I64 value tensors, int8 payloads) are padded to
   an 8-byte multiple so every hole boundary stays aligned to the float
   grid the arena buffer is addressed in. *)
let slot_bytes ~plan_elem ~elem numel =
  let raw = elem * numel in
  if elem = plan_elem then raw else (raw + 7) / 8 * 8

let concretize ~elem ~env entries =
  let static = ref [] and dynamic = ref [] in
  List.iter
    (fun e ->
      match Shape.eval env e.se_shape with
      | Some dims ->
        (* Element size comes from the plan's dtype — a hardcoded [4 *]
           here once under-reserved every f64 slot by half — unless the
           entry carries its own (a non-float value tensor, sized
           truthfully instead of as if it held floats). *)
        let eelem = Option.value e.se_elem ~default:elem in
        let numel = List.fold_left (fun a d -> a * max 1 d) 1 dims in
        let size = slot_bytes ~plan_elem:elem ~elem:eelem numel in
        static :=
          {
            lt_tid = e.se_tid;
            lt_size = size;
            lt_first = e.se_first;
            lt_last = e.se_last;
            lt_elem = eelem;
          }
          :: !static
      | None -> dynamic := e.se_tid :: !dynamic)
    entries;
  List.rev !static, List.rev !dynamic

let overlap a b = a.lt_first <= b.lt_last && b.lt_first <= a.lt_last

(* Lowest offset at which [lt] fits below/between already-placed conflicting
   allocations. *)
let first_fit placed lt =
  let conflicts =
    List.filter (fun (plt, _off) -> overlap plt lt) placed
    |> List.map (fun (plt, off) -> off, off + plt.lt_size)
    |> List.sort compare
  in
  let rec scan candidate = function
    | [] -> candidate
    | (lo, hi) :: rest ->
      if candidate + lt.lt_size <= lo then candidate else scan (max candidate hi) rest
  in
  scan 0 conflicts

let place_in_order lts =
  let placed =
    List.fold_left (fun placed lt -> (lt, first_fit placed lt) :: placed) [] lts
  in
  List.rev placed

let arena_of placed =
  List.fold_left (fun acc (lt, off) -> max acc (off + lt.lt_size)) 0 placed

let peak_step lts =
  (* Step with the largest total live bytes. *)
  let max_step = List.fold_left (fun acc lt -> max acc lt.lt_last) 0 lts in
  let best = ref 0 and best_bytes = ref (-1) in
  for s = 0 to max_step do
    let live =
      List.fold_left
        (fun acc lt -> if lt.lt_first <= s && s <= lt.lt_last then acc + lt.lt_size else acc)
        0 lts
    in
    if live > !best_bytes then begin
      best_bytes := live;
      best := s
    end
  done;
  !best

let live_peak lts =
  let max_step = List.fold_left (fun acc lt -> max acc lt.lt_last) 0 lts in
  let peak = ref 0 in
  for s = 0 to max_step do
    let live =
      List.fold_left
        (fun acc lt -> if lt.lt_first <= s && s <= lt.lt_last then acc + lt.lt_size else acc)
        0 lts
    in
    if live > !peak then peak := live
  done;
  !peak

let order_for strategy lts =
  match strategy with
  | Greedy_first_fit | Optimal_search ->
    (* Allocation order = execution order of the producing step. *)
    List.stable_sort (fun a b -> compare (a.lt_first, a.lt_tid) (b.lt_first, b.lt_tid)) lts
  | Peak_first ->
    let p = peak_step lts in
    let dist lt =
      if lt.lt_first <= p && p <= lt.lt_last then 0
      else min (abs (lt.lt_first - p)) (abs (lt.lt_last - p))
    in
    List.stable_sort
      (fun a b -> compare (dist a, -a.lt_size, a.lt_tid) (dist b, -b.lt_size, b.lt_tid))
      lts

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y.lt_tid <> x.lt_tid) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Best-fit placement: among the holes between conflicting allocations
   (including the gap below the lowest one), pick the hole with minimal
   slack that still fits; ties go to the lower offset.  When no bounded
   hole is adequate the block goes on top of the conflicts — the same
   offset first-fit would choose, so best-fit never grows the arena. *)
let best_fit placed lt =
  let conflicts =
    List.filter (fun (plt, _off) -> overlap plt lt) placed
    |> List.map (fun (plt, off) -> off, off + plt.lt_size)
    |> List.sort compare
  in
  (* Merge into disjoint occupied intervals so holes are well-defined even
     when conflicting blocks themselves overlap in space (they may: their
     lifetimes need not pairwise overlap). *)
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (mlo, mhi) :: rest when lo <= mhi -> (mlo, max mhi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] conflicts
    |> List.rev
  in
  let rec scan hole_lo best = function
    | [] -> (
      (* the hole above all conflicts is unbounded: only take it when no
         bounded hole fit *)
      match best with Some (off, _slack) -> off | None -> hole_lo)
    | (lo, hi) :: rest ->
      let gap = lo - hole_lo in
      let best =
        if gap >= lt.lt_size then begin
          let slack = gap - lt.lt_size in
          match best with Some (_, s) when s <= slack -> best | _ -> Some (hole_lo, slack)
        end
        else best
      in
      scan hi best rest
  in
  scan 0 None merged

let place_best_fit lts =
  List.rev
    (List.fold_left (fun placed lt -> (lt, best_fit placed lt) :: placed) [] lts)

(* The peak-first plan is computed statically, so it can afford to evaluate
   several placement schedules — peak-outward, allocation order, largest
   first, and best-fit variants — and keep whichever packs tightest; it
   therefore never loses to the greedy baseline. *)
let place_peak_first lts =
  let size_desc =
    List.stable_sort (fun a b -> compare (-a.lt_size, a.lt_tid) (-b.lt_size, b.lt_tid)) lts
  in
  let candidates =
    [
      place_in_order (order_for Peak_first lts);
      place_in_order (order_for Greedy_first_fit lts);
      place_in_order size_desc;
      place_best_fit (order_for Peak_first lts);
      place_best_fit size_desc;
    ]
  in
  match candidates with
  | first :: rest ->
    List.fold_left (fun best c -> if arena_of c < arena_of best then c else best) first rest
  | [] -> []

let place strategy lts =
  match strategy with
  | Peak_first -> place_peak_first lts
  | Greedy_first_fit -> place_in_order (order_for strategy lts)
  | Optimal_search ->
    if List.length lts > 9 then place_in_order (order_for Greedy_first_fit lts)
    else
      let best = ref None in
      List.iter
        (fun perm ->
          let placed = place_in_order perm in
          let arena = arena_of placed in
          match !best with
          | Some (_, a) when a <= arena -> ()
          | _ -> best := Some (placed, arena))
        (permutations lts);
      (match !best with Some (p, _) -> p | None -> [])

let plan_of_lifetimes strategy lts ~dynamic =
  let placed = place strategy lts in
  let allocs =
    placed
    |> List.map (fun (lt, off) ->
           {
             tid = lt.lt_tid;
             offset = off;
             size = lt.lt_size;
             first_step = lt.lt_first;
             last_step = lt.lt_last;
             elem = lt.lt_elem;
           })
    |> List.sort (fun a b -> compare a.tid b.tid)
    |> Array.of_list
  in
  { allocs; dynamic; arena_bytes = arena_of placed; strategy }

let plan_raw strategy ~lifetimes:raw =
  let lts =
    List.mapi
      (fun i (size, first, last) ->
        { lt_tid = i; lt_size = size; lt_first = first; lt_last = last; lt_elem = 1 })
      raw
  in
  plan_of_lifetimes strategy lts ~dynamic:[]

let plan_symbolic ?(strategy = Peak_first) ?(elem = Tensor.bytes_per_elem Tensor.F32)
    ?(elem_of = fun _ -> None) ?(live = fun _ -> true) ?(alias = fun _ -> None)
    (g : Graph.t) rdp fplan ~order =
  {
    sym_entries = symbolic_lifetimes g rdp fplan ~order ~elem_of ~live ~alias;
    sym_strategy = strategy;
    sym_elem = elem;
  }

let instantiate sym ~env =
  let lts, dynamic = concretize ~elem:sym.sym_elem ~env sym.sym_entries in
  plan_of_lifetimes sym.sym_strategy lts ~dynamic

let plan ?(strategy = Peak_first) ?elem ?elem_of (g : Graph.t) rdp fplan ~order ~env =
  instantiate (plan_symbolic ~strategy ?elem ?elem_of g rdp fplan ~order) ~env

let live_peak_bytes t =
  live_peak
    (Array.to_list t.allocs
    |> List.map (fun a ->
           {
             lt_tid = a.tid;
             lt_size = a.size;
             lt_first = a.first_step;
             lt_last = a.last_step;
             lt_elem = a.elem;
           }))

let validate t =
  let n = Array.length t.allocs in
  let result = ref (Ok ()) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = t.allocs.(i) and b = t.allocs.(j) in
      let time_overlap = a.first_step <= b.last_step && b.first_step <= a.last_step in
      let space_overlap = a.offset < b.offset + b.size && b.offset < a.offset + a.size in
      if time_overlap && space_overlap && !result = Ok () then
        result :=
          Error
            (Printf.sprintf "tensors %d and %d overlap in time and space" a.tid b.tid)
    done
  done;
  (match !result with
  | Ok () ->
    if Array.exists (fun a -> a.offset + a.size > t.arena_bytes) t.allocs then
      result := Error "allocation exceeds arena"
  | Error _ -> ());
  !result

let arena_for strategy ~lifetimes =
  let lts =
    List.mapi
      (fun i (size, first, last) ->
        { lt_tid = i; lt_size = size; lt_first = first; lt_last = last; lt_elem = 1 })
      lifetimes
  in
  let lts = List.filter (fun lt -> lt.lt_size > 0) lts in
  arena_of (place strategy lts)

let pack fit ~lifetimes =
  let lts =
    List.mapi
      (fun i (size, first, last) ->
        { lt_tid = i; lt_size = size; lt_first = first; lt_last = last; lt_elem = 1 })
      lifetimes
  in
  let place = match fit with `First_fit -> first_fit | `Best_fit -> best_fit in
  let placed = List.rev (List.fold_left (fun acc lt -> (lt, place acc lt) :: acc) [] lts) in
  List.map snd placed, arena_of placed

let optimal_arena_upper_bound t =
  let lts =
    Array.to_list t.allocs
    |> List.map (fun a ->
           {
             lt_tid = a.tid;
             lt_size = a.size;
             lt_first = a.first_step;
             lt_last = a.last_step;
             lt_elem = a.elem;
           })
  in
  if List.length lts > 9 then t.arena_bytes
  else
    List.fold_left
      (fun best perm -> min best (arena_of (place_in_order perm)))
      max_int (permutations lts)

let strategy_name = function
  | Greedy_first_fit -> "greedy"
  | Peak_first -> "peak-first"
  | Optimal_search -> "optimal"

let pp ppf t =
  Format.fprintf ppf "memory plan (%s): %d static allocs, %d dynamic, arena %d bytes@."
    (strategy_name t.strategy)
    (Array.length t.allocs) (List.length t.dynamic) t.arena_bytes

let pp_symbolic ppf sym =
  Format.fprintf ppf "symbolic memory plan (%s): %d entries@."
    (strategy_name sym.sym_strategy)
    (List.length sym.sym_entries);
  List.iter
    (fun e ->
      Format.fprintf ppf "  t%d: %s elems, steps [%d, %d]@." e.se_tid
        (match e.se_numel with
        | Some n -> Expr.to_string n
        | None -> "?")
        e.se_first e.se_last)
    sym.sym_entries
