(** Genetic-algorithm auto-tuner for heavy-kernel configurations (§4.4.2).

    SoD² generates multiple optimized versions of hotspot kernels (GEMM and
    CONV) and selects among them by shape class at run time.  Here a kernel
    version is a point in a schedule space — tiling, unrolling, thread
    count, vectorization — whose quality on a given problem size and device
    is predicted by an analytical efficiency model (fraction of the
    device's peak throughput attained).  The tuner searches the space with
    a small genetic algorithm, as the paper's DNNFusion-based tuner does;
    a random-search baseline is provided for the ablation. *)

type config = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;
  threads : int;
  vectorize : bool;
}

val default_config : config
(** The generic kernel a framework ships without tuning. *)

val efficiency : Profile.t -> config -> m:int -> n:int -> k:int -> float
(** Predicted fraction of peak throughput for a GEMM of the given extents
    (convolutions are lowered to implicit GEMM).  In [\[0.05, 0.95\]];
    deterministic. *)

(** How candidate configurations are scored during the search:
    - [Analytical]: the {!efficiency} model only (free, but locked to the
      model's view of the device);
    - [Measured]: every GA evaluation times the candidate with the
      supplied [measure] callback (ground truth, expensive — use small
      populations);
    - [Hybrid]: the analytical model runs the full GA to prune the space,
      then only the distinct elite finalists (plus {!default_config}) are
      measured and the fastest wins — the paper-style compromise. *)
type objective =
  | Analytical
  | Measured
  | Hybrid

val objective_name : objective -> string
val objective_of_string : string -> objective option

val tune :
  ?generations:int -> ?population:int -> ?objective:objective ->
  ?measure:(config -> float) -> ?finalists:int -> Profile.t -> Rng.t ->
  m:int -> n:int -> k:int -> config * float
(** GA search; returns the best configuration and its {e analytical}
    efficiency.  [measure c] must return the candidate's wall time in µs
    (lower is better; see {!Tune_measure}); without it, [Measured]/[Hybrid]
    degrade to [Analytical].  [finalists] (default 6) bounds the measured
    pool in [Hybrid] mode.  Under every objective {!default_config}
    participates in the final ranking, so the winner never scores worse
    than the untuned default under the active objective. *)

val random_search :
  ?trials:int -> Profile.t -> Rng.t -> m:int -> n:int -> k:int -> config * float
(** Uniform random search with the same evaluation budget as {!tune}'s
    default (for comparing search strategies). *)

val pp_config : Format.formatter -> config -> unit

val config_to_string : config -> string
(** Compact rendering for the tuning cache file
    (["tm=32,tn=32,tk=32,u=1,th=4,v=0"]). *)

val config_of_string : string -> (config, string) result
(** Strict inverse of {!config_to_string}: exactly the six keys, positive
    ints ([v] in [{0,1}]); [Error] otherwise.
    [config_of_string (config_to_string c) = Ok c]. *)
