type shape_class =
  | Fat
  | Regular
  | Skinny
  | Tiny

let class_name = function
  | Fat -> "fat"
  | Regular -> "regular"
  | Skinny -> "skinny"
  | Tiny -> "tiny"

let class_of_string = function
  | "fat" -> Some Fat
  | "regular" -> Some Regular
  | "skinny" -> Some Skinny
  | "tiny" -> Some Tiny
  | _ -> None

let all_classes = [ Fat; Regular; Skinny; Tiny ]

let classify ~m ~n =
  if m <= 8 || n <= 8 then Skinny else if m >= 256 && n >= 256 then Fat else Regular

(* With the contraction depth known the degenerate problems (where packing
   overhead exceeds the whole naive product) get their own class. *)
let classify_gemm ~m ~n ~k =
  if m > 0 && n > 0 && k > 0 && m * n * k <= 4096 then Tiny else classify ~m ~n

type table = {
  fat : Autotune.config;
  regular : Autotune.config;
  skinny : Autotune.config;
  tiny : Autotune.config;
  versioned : bool;
}

let representatives =
  [
    Fat, (512, 512, 256);
    Regular, (96, 96, 96);
    Skinny, (4, 512, 256);
    Tiny, (16, 16, 16);
  ]

let build ?(seed = 7) p =
  let tune_for idx cls =
    let _, (m, n, k) = List.find (fun (c, _) -> c = cls) representatives in
    fst (Autotune.tune p (Rng.create (seed + idx)) ~m ~n ~k)
  in
  {
    fat = tune_for 0 Fat;
    regular = tune_for 1 Regular;
    skinny = tune_for 2 Skinny;
    tiny = tune_for 3 Tiny;
    versioned = true;
  }

(* The single-version baseline ships exactly the multi-version table's
   regular kernel for every shape class — the comparison then isolates the
   effect of versioning itself. *)
let single_version ?(seed = 7) p =
  let t = build ~seed p in
  {
    fat = t.regular;
    regular = t.regular;
    skinny = t.regular;
    tiny = t.regular;
    versioned = false;
  }

let of_configs ~fat ~regular ~skinny ~tiny =
  { fat; regular; skinny; tiny; versioned = true }

let untuned =
  {
    fat = Autotune.default_config;
    regular = Autotune.default_config;
    skinny = Autotune.default_config;
    tiny = Autotune.default_config;
    versioned = false;
  }

let config_for t = function
  | Fat -> t.fat
  | Regular -> t.regular
  | Skinny -> t.skinny
  | Tiny -> t.tiny

let efficiency_for p t ~m ~n ~k =
  (* The regular version always ships; the class-specific version is used
     when it wins on the observed extents, so versioning never hurts. *)
  let cls = Autotune.efficiency p (config_for t (classify_gemm ~m ~n ~k)) ~m ~n ~k in
  let generic = Autotune.efficiency p t.regular ~m ~n ~k in
  Float.max cls generic

let prod = List.fold_left (fun a d -> a * max 1 d) 1

let gemm_dims_of_op (op : Op.t) ~in_dims ~out_dims =
  match op, in_dims, out_dims with
  | Op.Conv _, _ :: w :: _, out :: _ -> (
    match w, out with
    | [ mch; cg; kh; kw ], [ b; _; oh; ow ] ->
      Some (mch, b * oh * ow, cg * kh * kw)
    | _ -> None)
  | Op.Conv1d _, _ :: w :: _, out :: _ -> (
    match w, out with
    | [ mch; cg; kk ], [ b; _; ol ] -> Some (mch, b * ol, cg * kk)
    | _ -> None)
  | (Op.MatMul | Op.Gemm _), a :: _, out :: _ when List.length a >= 2 && List.length out >= 2 ->
    let k = List.nth a (List.length a - 1) in
    let n = List.nth out (List.length out - 1) in
    let m = prod out / max 1 n in
    Some (m, n, k)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Outcome-vector keys: multi-version code generation applied to whole
   execution plans.  A predicate outcome vector assigns each control
   gate its selected branch; rendered canonically it keys the per-branch
   plan variants {!Pipeline} enumerates ahead of time. *)

let outcome_key (outcome : int array) =
  let buf = Buffer.create (Array.length outcome) in
  Array.iter
    (fun b ->
      if b < 0 then Buffer.add_char buf '*'
      else if b < 10 then Buffer.add_char buf (Char.chr (Char.code '0' + b))
      else begin
        (* Gates with >= 10 branches keep the key injective via brackets. *)
        Buffer.add_char buf '(';
        Buffer.add_string buf (string_of_int b);
        Buffer.add_char buf ')'
      end)
    outcome;
  Buffer.contents buf

let outcome_of_key s =
  let n = String.length s in
  let out = ref [] in
  let rec go i =
    if i >= n then Some (Array.of_list (List.rev !out))
    else
      match s.[i] with
      | '*' ->
        out := -1 :: !out;
        go (i + 1)
      | '0' .. '9' ->
        out := (Char.code s.[i] - Char.code '0') :: !out;
        go (i + 1)
      | '(' -> (
        match String.index_from_opt s i ')' with
        | Some j -> (
          match int_of_string_opt (String.sub s (i + 1) (j - i - 1)) with
          | Some b when b >= 0 ->
            out := b :: !out;
            go (j + 1)
          | _ -> None)
        | None -> None)
      | _ -> None
  in
  if n = 0 then None else go 0

let enumerate_outcomes ~branches ~budget =
  let total =
    Array.fold_left
      (fun acc b ->
        if acc < 0 || b <= 0 then -1
        else if acc > budget then acc (* already over; exact value irrelevant *)
        else acc * b)
      1 branches
  in
  if total < 0 || total > budget || Array.length branches = 0 then None
  else begin
    (* Odometer over the branch digits, last gate fastest. *)
    let n = Array.length branches in
    let cur = Array.make n 0 in
    let acc = ref [] in
    let rec spin () =
      acc := Array.copy cur :: !acc;
      let rec carry i =
        if i < 0 then false
        else begin
          cur.(i) <- cur.(i) + 1;
          if cur.(i) < branches.(i) then true
          else begin
            cur.(i) <- 0;
            carry (i - 1)
          end
        end
      in
      if carry (n - 1) then spin ()
    in
    spin ();
    Some (List.rev !acc)
  end
