(* Fused-group kernel compilation (§4.2 fused code generation).

   [plan] runs at [Pipeline.compile] time and decides, per fusion group,
   whether the group can execute as ONE kernel instead of op-by-op through
   the interpreter.  The compile-time product is a [template]: the group's
   member nodes, its external element inputs in a fixed slot order, and the
   optional heavy anchor (MatMul/Gemm/Conv/Conv1d first member).

   [specialize] runs the first time a group executes under concrete input
   dims (RDP guarantees those dims satisfy the symbolic facts fusion
   legality was proven against; each still-ambiguous broadcast collapses to
   one concrete variant here — the runtime side of bounded multi-version
   code generation).  It closure-compiles the member tree into a single
   per-element function over the terminal output's flat index space:

   - every broadcast/transpose becomes a precomputed index map (identity,
     table, or strided arithmetic), scalars are hoisted out of the loop,
     and view ops (reshape/squeeze/…) are free because they preserve flat
     order — no intermediate tensor is ever allocated;
   - a heavy anchor runs through the blocked kernels with the compiled
     element function installed as {!Blocked.gemm}'s write-back [epilogue],
     so bias/BN/activation/residual chains are applied while the micro-tile
     result is still in registers.  When the epilogue path cannot legally
     see the accumulator (the chain transposes or broadcasts the anchor
     value, or the problem is Tiny), the anchor result is computed first
     and the chain runs as the elementwise phase over it;
   - the per-element closures call the exact {!Op_semantics} functions the
     reference kernels use, which keeps pure pointwise groups bit-for-bit
     equal to unfused execution.

   Specialized kernels are cached by the runtime backend per
   (group × concrete shape tuple); this module is purely functional. *)

type template = {
  t_gid : int;
  t_members : Graph.node list;  (** in topological order *)
  t_anchor : Graph.node option;  (** heavy first member, when present *)
  t_out : Graph.tensor_id;  (** the terminal (only materialized) output *)
  t_slots : Graph.tensor_id array;  (** external element inputs, slot order *)
  t_versions : int;  (** broadcast versions bounded at fusion time *)
}

type kernel = {
  k_out : Graph.tensor_id;
  k_dims : (Graph.tensor_id * int list) list;
      (** concrete output dims of every member, terminal included *)
  k_run : par:Blocked.par -> Tensor.t array -> Tensor.t;
      (** args in slot order; returns the terminal tensor *)
  k_run_into :
    par:Blocked.par -> Tensor.view array -> c:Tensor.fbuf -> co:int -> unit;
      (** destination-passing variant: args arrive as offset-carrying
          views, the terminal result is written into [c] at element offset
          [co] — the arena executor points this at a planned slot *)
}

(* ------------------------------------------------------------------ *)
(* Compile-time planning                                               *)

let is_heavy = function
  | Op.MatMul | Op.Gemm _ | Op.Conv _ | Op.Conv1d _ -> true
  | _ -> false

(* Operators the per-element compiler can lower.  Reshape qualifies only
   with a constant target: a data-dependent target would need the value
   lattice at run time, and the op-by-op path handles that rarity. *)
let elementwise_ok g (nd : Graph.node) =
  match nd.Graph.op with
  | Op.Unary _ | Op.Binary _ | Op.Clip _ | Op.Where | Op.Transpose _ | Op.Flatten _
  | Op.Squeeze _ | Op.Unsqueeze _ | Op.BatchNorm _ -> true
  | Op.Cast (Tensor.F32 | Tensor.F64) -> true
  | Op.Reshape -> (
    match nd.Graph.inputs with
    | [ _; target ] -> Graph.const_value g target <> None
    | _ -> false)
  | _ -> false

(* Inputs that carry element data (as opposed to shape operands). *)
let element_inputs (nd : Graph.node) =
  match nd.Graph.op, nd.Graph.inputs with
  | Op.Reshape, [ x; _target ] -> [ x ]
  | _, ins -> ins

let template_of g (grp : Fusion.group) =
  match grp.Fusion.members with
  | [] | [ _ ] -> None
  | mids ->
    let members = List.map (Graph.node g) mids in
    let first = List.hd members in
    let anchor = if is_heavy first.Graph.op then Some first else None in
    let body = match anchor with Some _ -> List.tl members | None -> members in
    let single_out nd = List.length nd.Graph.outputs = 1 in
    if List.for_all single_out members && List.for_all (elementwise_ok g) body then begin
      let produced = Hashtbl.create 8 in
      List.iter
        (fun nd -> List.iter (fun o -> Hashtbl.replace produced o ()) nd.Graph.outputs)
        members;
      let seen = Hashtbl.create 8 in
      let slots = ref [] in
      List.iter
        (fun nd ->
          List.iter
            (fun tid ->
              if (not (Hashtbl.mem produced tid)) && not (Hashtbl.mem seen tid) then begin
                Hashtbl.add seen tid ();
                slots := tid :: !slots
              end)
            (element_inputs nd))
        members;
      let terminal = List.nth members (List.length members - 1) in
      Some
        {
          t_gid = grp.Fusion.gid;
          t_members = members;
          t_anchor = anchor;
          t_out = List.hd terminal.Graph.outputs;
          t_slots = Array.of_list (List.rev !slots);
          t_versions = grp.Fusion.versions;
        }
    end
    else None

(* [quantized] marks nodes the runtime will execute through the int8
   weight-quantized kernels: their groups must keep op-by-op execution —
   the fused float template would compute from the original float weights,
   silently bypassing quantization for exactly the shapes fusion covers. *)
let plan ?(quantized = fun (_ : Graph.node) -> false) g (fp : Fusion.plan) =
  Array.map
    (fun grp ->
      match template_of g grp with
      | Some tpl when List.exists quantized tpl.t_members -> None
      | t -> t)
    fp.Fusion.groups

(* Per-variant view of a template array: dead groups lose their template
   so nothing downstream (backend kernel caches, vetting sweeps) can
   specialize a kernel the variant never executes.  Group contents are
   outcome-independent — control-flow ops never fuse — so live groups
   share the base templates, and with them every cached specialization. *)
let restrict templates ~live =
  Array.mapi (fun gid t -> if live gid then t else None) templates

(* ------------------------------------------------------------------ *)
(* Index maps                                                          *)

(* Maps are from the consumer's flat index space into a source space,
   described per consumer dim by a source stride.  Small spaces become
   lookup tables (built with an odometer walk, no div/mod); large ones
   stay as strided arithmetic so a specialization never allocates O(huge)
   tables. *)
type imap =
  | Id
  | Tbl of int array
  | Strided of int array * int array  (* consumer dims, source stride per dim *)

let table_cap = 1 lsl 18

let strides_of (d : int array) =
  let r = Array.length d in
  let s = Array.make r 0 in
  let acc = ref 1 in
  for i = r - 1 downto 0 do
    s.(i) <- !acc;
    acc := !acc * d.(i)
  done;
  s

let map_of ~od ~ss =
  let ostr = strides_of od in
  let r = Array.length od in
  let identity = ref true in
  for d = 0 to r - 1 do
    if od.(d) > 1 && ss.(d) <> ostr.(d) then identity := false
  done;
  if !identity then Id
  else
    let n = Array.fold_left ( * ) 1 od in
    if n <= table_cap then begin
      let t = Array.make n 0 in
      let coord = Array.make r 0 in
      let off = ref 0 in
      for i = 0 to n - 1 do
        t.(i) <- !off;
        let j = ref (r - 1) in
        let carry = ref true in
        while !carry && !j >= 0 do
          let d = !j in
          coord.(d) <- coord.(d) + 1;
          off := !off + ss.(d);
          if coord.(d) = od.(d) then begin
            coord.(d) <- 0;
            off := !off - (ss.(d) * od.(d));
            decr j
          end
          else carry := false
        done
      done;
      Tbl t
    end
    else Strided (Array.copy od, Array.copy ss)

let strided_index od ss i =
  let r = Array.length od in
  let off = ref 0 and rem = ref i in
  for d = r - 1 downto 0 do
    let q = !rem mod od.(d) in
    rem := !rem / od.(d);
    off := !off + (q * ss.(d))
  done;
  !off

(* Numpy-style right-aligned broadcast of [fd] into [od]. *)
let broadcast_map ~od ~fd =
  let r = Array.length od in
  let fr = Array.length fd in
  let fpad = Array.make r 1 in
  Array.blit fd 0 fpad (r - fr) fr;
  let fstr = strides_of fpad in
  let ss = Array.init r (fun d -> if fpad.(d) = 1 then 0 else fstr.(d)) in
  map_of ~od ~ss

let transpose_map ~od ~ind ~perm =
  let instr = strides_of ind in
  let ss = Array.of_list (List.map (fun p -> instr.(p)) perm) in
  map_of ~od ~ss

(* ------------------------------------------------------------------ *)
(* Specialization                                                      *)

exception Spec_fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Spec_fail s)) fmt

module BA1 = Bigarray.Array1

(* [acc] holds the anchor's result on the two-phase path — always an f64
   buffer, so fused intermediates keep full precision and round exactly
   once, at the terminal store. *)
type env = { args : Tensor.view array; acc : Tensor.fbuf }

let no_acc = Tensor.fbuf_create Tensor.F64 0

(* One compiled expression node: its concrete dims, whether its subtree
   reads the anchor accumulator, and a maker that — given the call's
   runtime environment — hoists whatever it can (data pointers, scalars,
   per-channel tables) and returns the per-element function.  The float
   argument threads the anchor's accumulator value through write-back
   epilogues; it is ignored everywhere else. *)
type info = {
  dims : int array;
  on_acc : bool;
  mk : env -> int -> float -> float;
}

let numel_of (d : int array) = Array.fold_left ( * ) 1 d

let grain = 16_384

let fill_into par (dst : Tensor.fbuf) ~off ~n gfn =
  (* The store is the group's single rounding point: f32 destinations
     round the double-precision closure result here and nowhere else. *)
  let body lo hi =
    match dst with
    | Tensor.FB32 d ->
      for i = lo to hi do
        BA1.unsafe_set d (off + i) (gfn i 0.0)
      done
    | Tensor.FB64 d ->
      for i = lo to hi do
        BA1.unsafe_set d (off + i) (gfn i 0.0)
      done
  in
  if n >= 2 * grain then
    par.Blocked.run
      ((n + grain - 1) / grain)
      (fun ci ->
        let lo = ci * grain in
        body lo (min n (lo + grain) - 1))
  else body 0 (n - 1)

let specialize g (tpl : template) ~(tiles : Multi_version.shape_class -> Blocked.tiles)
    ~(args : (int list * Tensor.dtype) array) : (kernel, string) result =
  try
    let nslots = Array.length tpl.t_slots in
    if Array.length args <> nslots then fail "argument count %d <> slot count %d" (Array.length args) nslots;
    Array.iteri
      (fun i (_, dt) ->
        if not (Tensor.is_float_dtype dt) then
          fail "slot %d is %s: integer element semantics stay on the reference path"
            i (Tensor.dtype_name dt))
      args;
    (* When every slot is f32 (and no member widens via Cast f64), the
       op-by-op reference materializes an f32 tensor at every member
       boundary — each store rounds.  The fused closures must reproduce
       those rounding points exactly or the bit-exactness contract with
       the reference breaks; each value-producing node therefore rounds
       its own output below.  Mixed/f64 groups keep full-precision
       intermediates and round only at the terminal store. *)
    let all_f32 =
      Array.for_all (fun (_, dt) -> dt = Tensor.F32) args
      && not
           (List.exists
              (fun nd -> nd.Graph.op = Op.Cast Tensor.F64)
              tpl.t_members)
    in
    let dims_tbl : (Graph.tensor_id, int array) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i tid -> Hashtbl.replace dims_tbl tid (Array.of_list (fst args.(i))))
      tpl.t_slots;
    (* Concrete shape inference over the members, mirroring what the
       executor's dry pass computes — Shape_fn is the single source of
       truth for output extents. *)
    let shape_of tid =
      match Hashtbl.find_opt dims_tbl tid with
      | Some d -> Shape.of_ints (Array.to_list d)
      | None -> (
        match Graph.const_value g tid with
        | Some t -> Shape.of_ints (Tensor.dims t)
        | None -> fail "tensor %d has no known dims" tid)
    in
    let value_of tid =
      match Graph.const_value g tid with
      | Some t
        when Tensor.dtype t = Tensor.I64
             && Tensor.numel t <= Value_info.max_tracked_elements ->
        Value_info.of_ints (Tensor.to_int_list t)
      | _ -> Value_info.undef
    in
    List.iter
      (fun nd ->
        let io =
          {
            Shape_fn.in_shapes = Array.of_list (List.map shape_of nd.Graph.inputs);
            in_values = Array.of_list (List.map value_of nd.Graph.inputs);
          }
        in
        let shapes, _ = Shape_fn.forward nd.Graph.op io in
        match Shape.as_ints shapes.(0) with
        | Some d -> Hashtbl.replace dims_tbl (List.hd nd.Graph.outputs) (Array.of_list d)
        | None -> fail "member %s has a non-concrete output shape" nd.Graph.nname)
      tpl.t_members;
    let dims_of tid =
      match Hashtbl.find_opt dims_tbl tid with
      | Some d -> d
      | None -> fail "tensor %d missing from shape table" tid
    in
    let term_dims = dims_of tpl.t_out in
    let member_dims =
      List.map
        (fun nd ->
          let o = List.hd nd.Graph.outputs in
          (o, Array.to_list (dims_of o)))
        tpl.t_members
    in
    let slot_idx = Hashtbl.create 8 in
    Array.iteri (fun i tid -> Hashtbl.replace slot_idx tid i) tpl.t_slots;
    let anchor_out = Option.map (fun nd -> List.hd nd.Graph.outputs) tpl.t_anchor in

    (* --- closure compilation of the elementwise member tree --- *)
    let violated = ref false in
    let infos : (Graph.tensor_id, info) Hashtbl.t = Hashtbl.create 16 in
    let apply m (mk : env -> int -> float -> float) =
      match m with
      | Id -> mk
      | Tbl t ->
        fun env ->
          let gfn = mk env in
          fun i v -> gfn (Array.unsafe_get t i) v
      | Strided (od, ss) ->
        fun env ->
          let gfn = mk env in
          fun i v -> gfn (strided_index od ss i) v
    in
    (* Broadcast [x] into the consumer's [od] index space.  A non-identity
       map on an accumulator-carrying subtree means the write-back epilogue
       would see a permuted/duplicated accumulator — that disqualifies
       write-back fusion (two-phase execution handles it instead). *)
    let with_map od (x : info) =
      if x.dims = od then x.mk
      else begin
        if x.on_acc then violated := true;
        if numel_of x.dims = 1 && not x.on_acc then
          fun env ->
            let gfn = x.mk env in
            let cst = gfn 0 0.0 in
            fun _ _ -> cst
        else apply (broadcast_map ~od ~fd:x.dims) x.mk
      end
    in
    let info_of tid =
      match Hashtbl.find_opt infos tid with
      | Some i -> i
      | None ->
        let i =
          match Hashtbl.find_opt slot_idx tid with
          | Some si ->
            {
              dims = dims_of tid;
              on_acc = false;
              mk =
                (fun env ->
                  let v = env.args.(si) in
                  let o = v.Tensor.voff in
                  (* Kind is matched once per kernel call, so the element
                     loop reads through a monomorphic bigarray access. *)
                  match v.Tensor.vbuf with
                  | Tensor.FB32 d ->
                    if o = 0 then fun i _ -> BA1.unsafe_get d i
                    else fun i _ -> BA1.unsafe_get d (o + i)
                  | Tensor.FB64 d ->
                    if o = 0 then fun i _ -> BA1.unsafe_get d i
                    else fun i _ -> BA1.unsafe_get d (o + i));
            }
          | None -> fail "tensor %d consumed before being produced" tid
        in
        Hashtbl.add infos tid i;
        i
    in
    let compile_node (nd : Graph.node) =
      let od = dims_of (List.hd nd.Graph.outputs) in
      let child i = info_of (List.nth nd.Graph.inputs i) in
      match nd.Graph.op with
      | Op.Unary u ->
        let x = child 0 in
        let f = Op_semantics.unary_fn u in
        let gx = with_map od x in
        {
          dims = od;
          on_acc = x.on_acc;
          mk =
            (fun env ->
              let a = gx env in
              if all_f32 then fun i v -> Tensor.round_f32 (f (a i v))
              else fun i v -> f (a i v));
        }
      | Op.Binary b ->
        let x = child 0 and y = child 1 in
        let f = Op_semantics.float_binary_fn b in
        let gx = with_map od x and gy = with_map od y in
        {
          dims = od;
          on_acc = x.on_acc || y.on_acc;
          mk =
            (fun env ->
              let a = gx env and b' = gy env in
              if all_f32 then fun i v -> Tensor.round_f32 (f (a i v) (b' i v))
              else fun i v -> f (a i v) (b' i v));
        }
      | Op.Clip (lo, hi) ->
        let x = child 0 in
        let gx = with_map od x in
        {
          dims = od;
          on_acc = x.on_acc;
          mk =
            (fun env ->
              let a = gx env in
              if all_f32 then
                fun i v -> Tensor.round_f32 (Float.min hi (Float.max lo (a i v)))
              else fun i v -> Float.min hi (Float.max lo (a i v)));
        }
      | Op.Cast Tensor.F32 ->
        (* Not the identity it once was: intermediates travel in double
           precision, so an explicit f32 cast must round here, exactly as
           the reference materializes an f32 tensor at this point. *)
        let x = child 0 in
        let gx = with_map od x in
        {
          dims = od;
          on_acc = x.on_acc;
          mk =
            (fun env ->
              let a = gx env in
              fun i v -> Tensor.round_f32 (a i v));
        }
      | Op.Cast Tensor.F64 ->
        (* Intermediates are already f64: identity. *)
        let x = child 0 in
        { x with dims = od }
      | Op.Where ->
        let c = child 0 and x = child 1 and y = child 2 in
        let gc = with_map od c and gx = with_map od x and gy = with_map od y in
        {
          dims = od;
          on_acc = c.on_acc || x.on_acc || y.on_acc;
          mk =
            (fun env ->
              let cc = gc env and a = gx env and b' = gy env in
              (* Mirrors the reference: condition is cast to I64
                 (saturating), then tested against zero. *)
              fun i v ->
                if Tensor.saturating_int_of_float (cc i v) <> 0 then a i v
                else b' i v);
        }
      | Op.Transpose perm ->
        let x = child 0 in
        let m = transpose_map ~od ~ind:x.dims ~perm in
        if m <> Id && x.on_acc then violated := true;
        { dims = od; on_acc = x.on_acc; mk = apply m x.mk }
      | Op.Reshape | Op.Flatten _ | Op.Squeeze _ | Op.Unsqueeze _ ->
        (* Views: flat order is preserved, only dims change. *)
        let x = info_of (List.hd (element_inputs nd)) in
        { x with dims = od }
      | Op.BatchNorm { eps } ->
        let x = child 0 in
        if Array.length od < 2 then fail "BatchNorm input rank < 2";
        let cdim = od.(1) in
        let param i =
          let p = child i in
          if numel_of p.dims <> cdim then
            fail "BatchNorm parameter %d has %d elements for %d channels" i
              (numel_of p.dims) cdim;
          if p.on_acc then violated := true;
          p
        in
        let ps = param 1 and pb = param 2 and pm = param 3 and pv = param 4 in
        let sp = ref 1 in
        for d = 2 to Array.length od - 1 do
          sp := !sp * od.(d)
        done;
        let sp = !sp in
        let gx = with_map od x in
        {
          dims = od;
          on_acc = x.on_acc;
          mk =
            (fun env ->
              let a = gx env in
              (* Per-channel constants hoisted out of the element loop;
                 sqrt(var + eps) is deterministic per channel, so this
                 matches the reference's per-element evaluation exactly. *)
              let hoist (p : info) =
                let gfn = p.mk env in
                Array.init cdim (fun c -> gfn c 0.0)
              in
              let s = hoist ps and b' = hoist pb and m = hoist pm in
              let gv = pv.mk env in
              let sq = Array.init cdim (fun c -> sqrt (gv c 0.0 +. eps)) in
              if all_f32 then
                (* Four rounding points, mirroring the reference's four
                   map2 stores: (x−m), /sqrt(v+eps), ×s, +b. *)
                fun i v ->
                  let ch = i / sp mod cdim in
                  let r = Tensor.round_f32 in
                  r
                    (r
                       (r (r (a i v -. Array.unsafe_get m ch)
                          /. Array.unsafe_get sq ch)
                       *. Array.unsafe_get s ch)
                    +. Array.unsafe_get b' ch)
              else
                fun i v ->
                  let ch = i / sp mod cdim in
                  ((a i v -. Array.unsafe_get m ch) /. Array.unsafe_get sq ch
                  *. Array.unsafe_get s ch)
                  +. Array.unsafe_get b' ch);
        }
      | op -> fail "operator %s is not elementwise-compilable" (Op.name op)
    in
    let build ~wb =
      Hashtbl.reset infos;
      violated := false;
      (match anchor_out with
      | Some tid ->
        let adims = dims_of tid in
        (* The anchor hands the epilogue its full-precision f64
           accumulator (in-register for write-back, via the scratch buffer
           for two-phase).  The reference would have stored it to an f32
           tensor first, so an all-f32 group rounds it at the leaf. *)
        let leaf =
          if wb then
            {
              dims = adims;
              on_acc = true;
              mk =
                (if all_f32 then fun _ _ v -> Tensor.round_f32 v
                 else fun _ _ v -> v);
            }
          else
            {
              dims = adims;
              on_acc = true;
              mk =
                (fun env ->
                  match env.acc with
                  | Tensor.FB64 a ->
                    if all_f32 then
                      fun i _ -> Tensor.round_f32 (BA1.unsafe_get a i)
                    else fun i _ -> BA1.unsafe_get a i
                  | Tensor.FB32 a -> fun i _ -> BA1.unsafe_get a i);
            }
        in
        Hashtbl.add infos tid leaf
      | None -> ());
      List.iter
        (fun nd ->
          if not (match tpl.t_anchor with Some a -> a.Graph.nid = nd.Graph.nid | None -> false)
          then Hashtbl.add infos (List.hd nd.Graph.outputs) (compile_node nd))
        tpl.t_members;
      (Hashtbl.find infos tpl.t_out, not !violated)
    in

    let term_dims_l = Array.to_list term_dims in
    let mk_kernel k_run_into =
      let k_run ~par targs =
        let odt =
          if Array.exists (fun t -> Tensor.dtype t = Tensor.F64) targs then
            Tensor.F64
          else Tensor.F32
        in
        let out = Tensor.zeros odt term_dims_l in
        k_run_into ~par (Array.map Tensor.view_f targs) ~c:(Tensor.storage_f out)
          ~co:0;
        out
      in
      { k_out = tpl.t_out; k_dims = member_dims; k_run; k_run_into }
    in
    match tpl.t_anchor with
    | None ->
      let root, _ = build ~wb:false in
      let n_out = numel_of term_dims in
      let k_run_into ~par (args : Tensor.view array) ~c ~co =
        let gfn = root.mk { args; acc = no_acc } in
        fill_into par c ~off:co ~n:n_out gfn
      in
      Ok (mk_kernel k_run_into)
    | Some anc ->
      let aout = Option.get anchor_out in
      let adims = dims_of aout in
      let in_dims = List.map (fun tid -> Array.to_list (dims_of tid)) anc.Graph.inputs in
      let m, n, k =
        match
          Multi_version.gemm_dims_of_op anc.Graph.op ~in_dims
            ~out_dims:[ Array.to_list adims ]
        with
        | Some mnk -> mnk
        | None -> fail "anchor %s has no GEMM extents" anc.Graph.nname
      in
      let cls = Multi_version.classify_gemm ~m ~n ~k in
      let tl = tiles cls in
      let slot tid =
        match Hashtbl.find_opt slot_idx tid with
        | Some i -> i
        | None -> fail "anchor input %d is not an external slot" tid
      in
      let anchor_slots = List.map slot anc.Graph.inputs in
      let blocked_inner par epilogue ep_off ~m ~n ~k ~a ~ao ~b ~bo ~c ~co =
        Blocked.gemm ~par ~tiles:tl ?epilogue ~ep_off ~m ~n ~k ~a ~ao ~b ~bo ~c ~co ()
      in
      (* [run_anchor_into ~par ~ep args ~c ~co] executes the heavy op with
         the blocked kernels (naive for Tiny problems, exactly like the
         per-op backend), writing the result into [c] at element offset
         [co]; [ep], when present, fires once per output element at
         write-back with output-relative flat indices (the write-back
         subtracts [co] inline, so arena destinations cost no shim). *)
      let run_anchor_into =
        match anc.Graph.op, anchor_slots with
        | Op.MatMul, [ ia; ib ] ->
          fun ~par ~ep (args : Tensor.view array) ~c ~co ->
            if cls = Multi_version.Tiny then
              ignore (Linalg.matmul_into args.(ia) args.(ib) ~c ~co)
            else
              ignore
                (Linalg.matmul_into ~inner:(blocked_inner par ep co) args.(ia)
                   args.(ib) ~c ~co)
        | Op.Gemm { alpha; beta; trans_a; trans_b }, ia :: ib :: rest ->
          let ic = match rest with [ i ] -> Some i | _ -> None in
          fun ~par ~ep args ~c ~co ->
            let a = args.(ia) and b = args.(ib) in
            let cv = Option.map (fun i -> args.(i)) ic in
            if cls = Multi_version.Tiny then
              ignore (Linalg.gemm_into ~alpha ~beta ~trans_a ~trans_b a b cv ~c ~co)
            else (
              match ep with
              | None ->
                ignore
                  (Linalg.gemm_into ~inner:(blocked_inner par None co) ~alpha ~beta
                     ~trans_a ~trans_b a b cv ~c ~co)
              | Some ep ->
                (* Fold the Gemm post-ops (alpha scale, beta·C add) into
                   the epilogue in the reference's evaluation order, then
                   run the bare product.  [ep] and the C-operand broadcast
                   both use output-relative indices. *)
                let ep' =
                  match cv with
                  | None ->
                    if alpha = 1.0 then ep else fun ci v -> ep ci (v *. alpha)
                  | Some ct ->
                    let cdo = ct.Tensor.voff in
                    let cget =
                      match ct.Tensor.vbuf with
                      | Tensor.FB32 d -> fun i -> BA1.unsafe_get d i
                      | Tensor.FB64 d -> fun i -> BA1.unsafe_get d i
                    in
                    let get =
                      match
                        broadcast_map ~od:adims ~fd:(Array.of_list ct.Tensor.vdims)
                      with
                      | Id -> fun i -> cget (cdo + i)
                      | Tbl t -> fun i -> cget (cdo + Array.unsafe_get t i)
                      | Strided (od, ss) -> fun i -> cget (cdo + strided_index od ss i)
                    in
                    let scale v = if alpha = 1.0 then v else v *. alpha in
                    fun ci v -> ep ci (scale v +. (beta *. get ci))
                in
                ignore
                  (Linalg.gemm_into
                     ~inner:(blocked_inner par (Some ep') co)
                     ~alpha:1.0 ~beta:1.0 ~trans_a ~trans_b a b None ~c ~co))
        | Op.Conv { stride; pads; dilation; groups }, ia :: ib :: rest ->
          let ibias = match rest with [ i ] -> Some i | _ -> None in
          fun ~par ~ep args ~c ~co ->
            let x = args.(ia) and w = args.(ib) in
            let b = Option.map (fun i -> args.(i)) ibias in
            if cls = Multi_version.Tiny then
              ignore (Linalg.conv2d_into ~stride ~pad:pads ~dilation ~groups x w b ~c ~co)
            else
              ignore
                (Blocked.conv2d_im2col_into ~par ~tiles:tl ?epilogue:ep ~ep_off:co
                   ~stride ~pad:pads ~dilation ~groups x w b ~c ~co)
        | Op.Conv1d { stride1; pads1; dilation1; groups1 }, ia :: ib :: rest ->
          let ibias = match rest with [ i ] -> Some i | _ -> None in
          (match in_dims with
          | [ _; _; _ ] :: ([ _; _; _ ] :: _) -> ()
          | _ -> fail "Conv1d anchor expects 3-d operands");
          fun ~par ~ep args ~c ~co ->
            let x = args.(ia) and w = args.(ib) in
            let b = Option.map (fun i -> args.(i)) ibias in
            (* Unit-height lowering onto conv2d; the 4-d [n;m;1;ol] output
               is flat-identical to the 3-d result, so epilogue indices
               carry over. *)
            (match x.Tensor.vdims, w.Tensor.vdims with
            | [ nn; cch; l ], [ mm; cg; kk ] ->
              let x' = Tensor.view_reshape x [ nn; cch; 1; l ] in
              let w' = Tensor.view_reshape w [ mm; cg; 1; kk ] in
              let pl, pr = pads1 in
              if cls = Multi_version.Tiny then
                ignore
                  (Linalg.conv2d_into ~stride:(1, stride1) ~pad:(0, pl, 0, pr)
                     ~dilation:(1, dilation1) ~groups:groups1 x' w' b ~c ~co)
              else
                ignore
                  (Blocked.conv2d_im2col_into ~par ~tiles:tl ?epilogue:ep
                     ~ep_off:co ~stride:(1, stride1) ~pad:(0, pl, 0, pr)
                     ~dilation:(1, dilation1) ~groups:groups1 x' w' b ~c ~co)
            | _ -> assert false)
        | op, _ -> fail "unsupported anchor %s" (Op.name op)
      in
      let wb_feasible =
        cls <> Multi_version.Tiny && m > 0 && n > 0 && k > 0
        && numel_of term_dims = numel_of adims
      in
      let root_wb, wb_clean = if wb_feasible then build ~wb:true else (build ~wb:false |> fst, false) in
      if wb_feasible && wb_clean then begin
        let k_run_into ~par args ~c ~co =
          let ep0 = root_wb.mk { args; acc = no_acc } in
          run_anchor_into ~par ~ep:(Some ep0) args ~c ~co
        in
        Ok (mk_kernel k_run_into)
      end
      else begin
        let root, _ = build ~wb:false in
        let n_out = numel_of term_dims in
        let k_run_into ~par args ~c ~co =
          (* f64 scratch keeps the anchor result at full precision for the
             elementwise phase; the terminal fill is the single rounding. *)
          let scratch = Tensor.fbuf_create Tensor.F64 (max 1 (numel_of adims)) in
          Tensor.fbuf_fill scratch 0 (Tensor.fbuf_len scratch) 0.0;
          run_anchor_into ~par ~ep:None args ~c:scratch ~co:0;
          let gfn = root.mk { args; acc = scratch } in
          fill_into par c ~off:co ~n:n_out gfn
        in
        Ok (mk_kernel k_run_into)
      end
  with
  | Spec_fail msg -> Error msg
