(** Structured errors for the whole SoD² stack.

    Every layer — symbolic evaluation, graph construction, serialization,
    kernels, the planners and both executors — reports failures through the
    single {!t} type: an error class, the op/tensor/step context in which
    the failure was detected, and a human-readable message.  The class
    drives programmatic handling (the guarded executor demotes on
    [Shape_mismatch]/[Plan_violation] but re-raises [Unsupported]); the
    context turns a bare "dimension mismatch" into an actionable report.

    This module sits below every other library in the repo, so it carries
    no dependencies: context fields are plain strings and integers rather
    than IR types. *)

type error_class =
  | Invalid_graph  (** structural IR problems: dangling ids, cycles, missing outputs *)
  | Arity_mismatch  (** node input count disagrees with the operator *)
  | Dtype_mismatch  (** tensor element type disagrees with the operator *)
  | Shape_mismatch  (** runtime dims disagree with the RDP prediction *)
  | Plan_violation  (** memory/execution plan inconsistent with the arena or lifetimes *)
  | Unbound_symbol  (** a shape variable had no binding in the {!Env} *)
  | Unsupported  (** the operation needs support this build does not have *)
  | Io_error  (** serialization / parse failures *)
  | Overload  (** serving-layer admission control rejected or shed the request *)
  | Deadline_expired  (** the request's deadline passed before it could execute *)
  | Engine_error
      (** serving-engine failure: worker crash, submit after shutdown,
          double ticket redemption, degraded-mode refusal *)

type context = {
  op : string option;  (** operator name, e.g. ["Conv"] *)
  node : string option;  (** node name, e.g. ["stage2.conv_17"] *)
  tensor : int option;  (** tensor id *)
  step : int option;  (** execution-plan step or group id *)
  worker : int option;  (** engine worker slot, for serving-layer errors *)
  key : string option;  (** plan key ({!Pipeline.plan_key}) of the request *)
}

type t = {
  cls : error_class;
  ctx : context;
  msg : string;
}

exception Error of t

val no_context : context

val make :
  ?op:string -> ?node:string -> ?tensor:int -> ?step:int -> ?worker:int ->
  ?key:string -> error_class -> string -> t

val fail :
  ?op:string -> ?node:string -> ?tensor:int -> ?step:int -> ?worker:int ->
  ?key:string -> error_class -> string -> 'a
(** Raise {!Error} with the given class and context. *)

val failf :
  ?op:string ->
  ?node:string ->
  ?tensor:int ->
  ?step:int ->
  ?worker:int ->
  ?key:string ->
  error_class ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [Printf]-style {!fail}. *)

val class_name : error_class -> string

val to_string : t -> string
(** One-line rendering: [class [op=… node=… t… step…]: message]. *)

val pp : Format.formatter -> t -> unit

val guard : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Error} plus the legacy [Invalid_argument] /
    [Failure] exceptions still raised by a few leaf utilities, and return
    the outcome as a [result].  Legacy exceptions map to {!Invalid_graph}
    with no context. *)
