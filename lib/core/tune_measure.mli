(** Measured kernel tuning: the ground-truth half of the closed tuning
    loop (paper §4.4.2 + Vortex's measured strategy ranking).

    A {!measurer} times one candidate {!Autotune.config} on the real
    blocked kernel at fixed problem extents and returns its wall time in
    µs — exactly the [?measure] callback {!Autotune.tune} wants for its
    [Measured]/[Hybrid] objectives.  Timing discipline: warmup run, repeat
    count calibrated so every sample spans ≳200 µs, minimum over
    [rounds], on a monotonized wall clock.

    Every candidate measurement is recorded in {!Profile.Counters} under
    the kind ["tune-measurement"] — the counter the engine's
    zero-measurements-at-serving-time guarantee is verified against. *)

type measurer = Autotune.config -> float
(** Wall time of one kernel invocation under the candidate config, µs
    (min-of-rounds; always > 0). *)

val counter_kind : string
(** ["tune-measurement"]. *)

val measurement_count : unit -> int
(** Process-global number of candidate measurements so far (all profiles),
    from {!Profile.Counters}. *)

val now_us : unit -> float
(** The harness clock: [Unix.gettimeofday] in µs, clamped non-decreasing. *)

val time_us : rounds:int -> (unit -> unit) -> float
(** [time_us ~rounds f] — µs per invocation of [f], min-of-[rounds] with
    warmup and calibrated inner repeats. *)

val gemm_measurer :
  ?dt:Tensor.dtype -> ?par:Blocked.par -> ?rounds:int -> ?profile:string ->
  m:int -> n:int -> k:int -> unit -> measurer
(** Times [Blocked.gemm] on deterministic m×k · k×n operands.  [par]
    (default {!Blocked.sequential}) supplies the parallel runner — pass
    the serving backend's ({!Backend.par_of}) to tune what will actually
    run.  Operand buffers are allocated once per measurer. *)

val conv_measurer :
  ?dt:Tensor.dtype -> ?par:Blocked.par -> ?rounds:int -> ?profile:string ->
  n:int -> ci:int -> co:int -> kh:int -> kw:int -> h:int -> w:int -> unit ->
  measurer
(** Times [Blocked.conv2d_im2col] (stride 1, pad 1, NCHW/OIHW). *)

val tune_class :
  ?objective:Autotune.objective -> ?seed:int -> ?rounds:int ->
  ?generations:int -> ?population:int -> ?finalists:int -> ?par:Blocked.par ->
  Profile.t -> dt:Tensor.dtype -> Multi_version.shape_class ->
  Autotune.config * float
(** Tune one shape class at its canonical representative
    ({!Multi_version.representatives}); returns the winner and its
    measured time in µs.  Default objective is [Hybrid] (analytical
    pruning, measured finals). *)

val tune_table :
  ?objective:Autotune.objective -> ?seed:int -> ?rounds:int ->
  ?generations:int -> ?population:int -> ?finalists:int -> ?par:Blocked.par ->
  Profile.t -> dt:Tensor.dtype -> Multi_version.table
(** A full measured version table: {!tune_class} per shape class,
    assembled with {!Multi_version.of_configs} — the measured counterpart
    of {!Multi_version.build}. *)
