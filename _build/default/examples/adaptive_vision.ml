(* Adaptive vision: control-flow dynamism.  SkipNet decides per input which
   residual blocks to execute; SoD2's <Switch, Combine> support runs only
   the selected branches while the baseline engines execute every path and
   strip the invalid results.

   The example interprets the model for real on a few inputs (showing that
   different inputs take different paths), then quantifies what branch
   selection is worth versus the execute-all-paths strategy. *)

let () =
  let sp = Option.get (Zoo.by_name "skipnet") in
  let g = sp.build () in
  let profile = Profile.sd888_cpu in
  let c = Sod2.Pipeline.compile profile g in

  (* Real interpretation at a small size: gate subnets look at the data, so
     different inputs execute different node sets. *)
  Printf.printf "real execution (input 64x64), per-input paths:\n";
  let env = Env.of_list [ "H", 64; "W", 64 ] in
  List.iter
    (fun seed ->
      let inputs = Zoo.make_inputs sp g env (Rng.create seed) in
      let trace, outs = Sod2_runtime.Executor.run_real c ~inputs in
      Printf.printf "  input #%d: executed %d/%d nodes, %d outputs\n" seed
        trace.Sod2_runtime.Executor.nodes_executed (Graph.node_count g)
        (List.length outs))
    [ 1; 2; 3; 4 ];

  (* Simulated comparison: selected-branch vs execute-all-paths. *)
  let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
  let session = Framework.create Framework.Sod2_fw profile g ~max_dims in
  let samples = Workload.samples ~n:20 sp in
  let mean f =
    List.fold_left (fun acc sm -> acc +. f sm) 0.0 samples
    /. float_of_int (List.length samples)
  in
  let run control (sm : Workload.sample) =
    Framework.run ~control session ~input_dims:(Zoo.input_dims sp g sm.env) ~gate:sm.gate
  in
  let sel_lat = mean (fun sm -> (run Sod2_runtime.Executor.Selected_only sm).Framework.latency_us) in
  let all_lat = mean (fun sm -> (run Sod2_runtime.Executor.All_paths sm).Framework.latency_us) in
  let sel_mem =
    mean (fun sm ->
        float_of_int (run Sod2_runtime.Executor.Selected_only sm).Framework.peak_bytes)
  in
  let all_mem =
    mean (fun sm -> float_of_int (run Sod2_runtime.Executor.All_paths sm).Framework.peak_bytes)
  in
  Printf.printf "\nbranch selection vs execute-all-paths (20 samples, 224-640px):\n";
  Printf.printf "  latency: %.1f ms vs %.1f ms (%.2fx)\n" (sel_lat /. 1000.0)
    (all_lat /. 1000.0) (all_lat /. sel_lat);
  Printf.printf "  memory:  %.2f MB vs %.2f MB (%.2fx)\n" (sel_mem /. 1048576.0)
    (all_mem /. 1048576.0) (all_mem /. sel_mem)
