examples/dynamic_nlp.mli:
