examples/memory_budget.ml: Array Env Framework List Option Printf Profile Sod2 String Workload Zoo
