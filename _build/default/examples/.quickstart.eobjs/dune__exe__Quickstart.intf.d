examples/quickstart.mli:
