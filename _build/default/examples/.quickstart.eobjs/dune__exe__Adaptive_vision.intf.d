examples/adaptive_vision.mli:
