examples/quickstart.ml: Array Dim Format Graph List Op Printf Profile Rng Shape Sod2 Sod2_runtime Tensor
