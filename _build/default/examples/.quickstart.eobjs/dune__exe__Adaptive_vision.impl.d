examples/adaptive_vision.ml: Env Framework Graph List Option Printf Profile Rng Sod2 Sod2_runtime Workload Zoo
