examples/dynamic_nlp.ml: Env Framework List Option Printf Profile String Workload Zoo
