(* Dynamic NLP: the motivating scenario of the paper's introduction —
   sequence lengths vary from request to request (Wikipedia-style inputs
   range from 32 to 512 tokens), so a static engine must re-initialize on
   every length change while SoD2 compiles once.

   This example runs a CodeBERT-style encoder over a stream of requests of
   varying lengths and compares SoD2 against the MNN-style re-initializing
   engine: steady-state latency, re-initialization overhead, and memory. *)

let () =
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = sp.build () in
  let profile = Profile.sd888_cpu in
  let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
  let sod2 = Framework.create Framework.Sod2_fw profile g ~max_dims in
  let mnn = Framework.create Framework.Mnn profile g ~max_dims in
  let lengths = [ 32; 384; 64; 128; 384; 48; 256 ] in
  Printf.printf "%6s | %22s | %22s\n" "seq" "MNN (reinit + infer)" "SoD2 (infer)";
  Printf.printf "%s\n" (String.make 58 '-');
  let totals = ref (0.0, 0.0) in
  List.iter
    (fun s ->
      let input_dims = Zoo.input_dims sp g (Env.of_list [ "S", s ]) in
      let gate = Workload.fixed_gates 0 in
      let m = Framework.run mnn ~input_dims ~gate in
      let d = Framework.run sod2 ~input_dims ~gate in
      Printf.printf "%6d | %8.1f ms + %6.1f ms | %16.1f ms\n" s
        (m.Framework.reinit_us /. 1000.0)
        (m.Framework.latency_us /. 1000.0)
        (d.Framework.latency_us /. 1000.0);
      let tm, td = !totals in
      totals :=
        ( tm +. ((m.Framework.reinit_us +. m.Framework.latency_us) /. 1000.0),
          td +. (d.Framework.latency_us /. 1000.0) ))
    lengths;
  let tm, td = !totals in
  Printf.printf "%s\n" (String.make 58 '-');
  Printf.printf "stream total: MNN %.0f ms vs SoD2 %.0f ms (%.1fx)\n" tm td (tm /. td);
  Printf.printf
    "\nSoD2 never re-initializes: the memory plan is symbolic in S and is\n\
     instantiated per request in a linear pass.\n"
