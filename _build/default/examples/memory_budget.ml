(* Memory budgets: the Fig. 11 scenario.  A mobile app gives the engine a
   fixed arena; an engine whose plan does not fit must rematerialize
   (recompute) intermediates, trading latency for memory.  SoD2's
   peak-first memory plan fits budgets a conservative engine cannot.

   The example prints SoD2's symbolic memory plan for RaNet, shows the
   per-inference arena it instantiates at several input sizes, and then
   compares against the TFLite-style engine under SoD2's own budget. *)

let () =
  let sp = Option.get (Zoo.by_name "ranet") in
  let g = sp.build () in
  let profile = Profile.sd888_cpu in
  let c = Sod2.Pipeline.compile profile g in

  Printf.printf "SoD2 memory plans for RaNet at three input sizes:\n";
  List.iter
    (fun hw ->
      let env = Env.of_list [ "H", hw; "W", hw ] in
      let mp = Sod2.Pipeline.mem_plan_for c env in
      let ok = match Sod2.Mem_plan.validate mp with Ok () -> "valid" | Error e -> e in
      Printf.printf "  %dx%d: arena %6.2f MB over %d allocations (%s), live peak %6.2f MB\n"
        hw hw
        (float_of_int mp.Sod2.Mem_plan.arena_bytes /. 1048576.0)
        (Array.length mp.Sod2.Mem_plan.allocs) ok
        (float_of_int (Sod2.Mem_plan.live_peak_bytes mp) /. 1048576.0))
    [ 224; 416; 640 ];

  let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
  let sod2 = Framework.create Framework.Sod2_fw profile g ~max_dims in
  let tfl = Framework.create Framework.Tflite profile g ~max_dims in
  Printf.printf "\nunder SoD2's budget, the conservative engine must rematerialize:\n";
  List.iter
    (fun (sm : Workload.sample) ->
      let input_dims = Zoo.input_dims sp g sm.env in
      let s = Framework.run sod2 ~input_dims ~gate:sm.gate in
      let t =
        Framework.run_with_budget tfl ~budget_bytes:s.Framework.peak_bytes ~input_dims
          ~gate:sm.gate
      in
      Printf.printf "  %-18s budget %6.2f MB: SoD2 %7.1f ms, TFLite+remat %7.1f ms (%.2fx)\n"
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Env.to_list sm.env)))
        (float_of_int s.Framework.peak_bytes /. 1048576.0)
        (s.Framework.latency_us /. 1000.0)
        (t.Framework.latency_us /. 1000.0)
        (t.Framework.latency_us /. s.Framework.latency_us))
    (Workload.ascending_sizes ~n:5 sp)
