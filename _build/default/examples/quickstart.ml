(* Quickstart: build a small dynamic model by hand, let RDP infer every
   intermediate shape symbolically, compile it, and execute it on concrete
   inputs of two different sizes without recompiling.

   The graph is the paper's running example flavour: a convolution whose
   input height/width are unknown at compile time, followed by a
   Shape -> Gather -> Concat -> Reshape chain (the ONNX "flatten to
   [N, -1]" idiom) and a fully-connected classifier head. *)

let () =
  (* 1. Build the graph.  [H] and [W] are symbolic shape variables. *)
  let b = Graph.Builder.create () in
  let rng = Rng.create 1 in
  let image =
    Graph.Builder.input b ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let w1 = Graph.Builder.const b ~name:"w1" (Tensor.rand_normal rng ~stddev:0.1 [ 8; 3; 3; 3 ]) in
  let conv =
    Graph.Builder.node1 b
      (Op.Conv { stride = (2, 2); pads = (1, 1, 1, 1); dilation = (1, 1); groups = 1 })
      [ image; w1 ]
  in
  let act = Graph.Builder.node1 b (Op.Unary Op.Relu) [ conv ] in
  let pooled = Graph.Builder.node1 b Op.GlobalAveragePool [ act ] in
  (* flatten to [N, -1] the way ONNX exporters do: read the batch dim back
     from a Shape operator *)
  let shp = Graph.Builder.node1 b Op.ShapeOf [ pooled ] in
  let n_dim =
    Graph.Builder.node1 b (Op.Gather { axis = 0 })
      [ shp; Graph.Builder.const b ~name:"i0" (Tensor.of_int_list [ 0 ]) ]
  in
  let minus1 = Graph.Builder.const b ~name:"m1" (Tensor.of_int_list [ -1 ]) in
  let target = Graph.Builder.node1 b (Op.Concat { axis = 0 }) [ n_dim; minus1 ] in
  let flat = Graph.Builder.node1 b Op.Reshape [ pooled; target ] in
  let w2 = Graph.Builder.const b ~name:"w2" (Tensor.rand_normal rng ~stddev:0.1 [ 8; 10 ]) in
  let logits = Graph.Builder.node1 b Op.MatMul [ flat; w2 ] in
  Graph.Builder.set_outputs b [ logits ];
  let g = Graph.Builder.finish b in

  (* 2. RDP: every intermediate shape becomes an expression over H and W. *)
  let rdp = Sod2.Rdp.analyze g in
  Printf.printf "RDP converged in %d sweeps; inferred shapes:\n" rdp.Sod2.Rdp.iterations;
  List.iter
    (fun (label, tid) ->
      Format.printf "  %-8s %a@." label Shape.pp (Sod2.Rdp.shape rdp tid))
    [ "conv", conv; "pooled", pooled; "target", target; "flat", flat; "logits", logits ];

  (* 3. Compile once. *)
  let c = Sod2.Pipeline.compile Profile.sd888_cpu g in
  Printf.printf "\nfused %d nodes into %d groups\n" (Graph.node_count g)
    (Array.length c.Sod2.Pipeline.fusion_plan.Sod2.Fusion.groups);

  (* 4. Execute on two different input sizes — no recompilation. *)
  List.iter
    (fun (h, w) ->
      let input = Tensor.rand_uniform rng [ 1; 3; h; w ] in
      let _trace, outs = Sod2_runtime.Executor.run_real c ~inputs:[ image, input ] in
      match outs with
      | [ (_, t) ] -> Format.printf "input %dx%d -> logits %a@." h w Tensor.pp t
      | _ -> assert false)
    [ 32, 32; 56, 80 ]
