lib/device/profile.mli: Format
