lib/device/cost_model.ml: Float List Op Profile
