lib/device/profile.ml: Format List
