lib/device/cost_model.mli: Op Profile
