type t =
  | Undef
  | Ranked of Dim.t array
  | Nac

let scalar = Ranked [||]
let of_dims l = Ranked (Array.of_list l)
let of_ints l = of_dims (List.map Dim.of_int l)
let of_exprs l = of_dims (List.map Dim.of_expr l)
let of_syms l = of_dims (List.map Dim.of_sym l)

let rank = function
  | Ranked d -> Some (Array.length d)
  | Undef | Nac -> None

let dims = function
  | Ranked d -> Some d
  | Undef | Nac -> None

let dim s i =
  match s with
  | Undef -> Dim.undef
  | Nac -> Dim.nac
  | Ranked d ->
    let n = Array.length d in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then Dim.nac else d.(i)

let numel = function
  | Undef | Nac -> None
  | Ranked d ->
    let exprs = Array.to_list d |> List.map Dim.as_expr in
    if List.for_all Option.is_some exprs then
      Some (Expr.product (List.map Option.get exprs))
    else None

let is_fully_known = function
  | Ranked d -> Array.for_all (fun x -> Dim.as_const x <> None) d
  | Undef | Nac -> false

let is_symbolically_known = function
  | Ranked d -> Array.for_all (fun x -> Dim.as_expr x <> None) d
  | Undef | Nac -> false

let as_ints = function
  | Ranked d when Array.for_all (fun x -> Dim.as_const x <> None) d ->
    Some (Array.to_list d |> List.map (fun x -> Option.get (Dim.as_const x)))
  | Ranked _ | Undef | Nac -> None

let eval env = function
  | Undef | Nac -> None
  | Ranked d ->
    let vals = Array.to_list d |> List.map (Dim.eval env) in
    if List.for_all Option.is_some vals then Some (List.map Option.get vals) else None

let equal a b =
  match a, b with
  | Undef, Undef | Nac, Nac -> true
  | Ranked da, Ranked db ->
    Array.length da = Array.length db
    && Array.for_all2 (fun x y -> Dim.equal x y) da db
  | Undef, (Ranked _ | Nac) | Ranked _, (Undef | Nac) | Nac, (Undef | Ranked _) -> false

let meet a b =
  match a, b with
  | Undef, x | x, Undef -> x
  | Nac, _ | _, Nac -> Nac
  | Ranked da, Ranked db ->
    if Array.length da <> Array.length db then Nac
    else Ranked (Array.map2 Dim.meet da db)

let broadcast a b =
  match a, b with
  | Ranked da, Ranked db ->
    let ra = Array.length da and rb = Array.length db in
    let r = max ra rb in
    let unresolved = ref 0 in
    let out =
      Array.init r (fun i ->
          let ia = i - (r - ra) and ib = i - (r - rb) in
          let x = if ia < 0 then Dim.of_int 1 else da.(ia) in
          let y = if ib < 0 then Dim.of_int 1 else db.(ib) in
          let d, resolved = Dim.broadcast x y in
          if not resolved then incr unresolved;
          d)
    in
    Ranked out, !unresolved
  | Nac, _ | _, Nac -> Nac, 0
  | Undef, _ | _, Undef -> Undef, 0

let concat_dim first rest ~axis =
  match first with
  | Undef | Nac -> first
  | Ranked d ->
    let r = Array.length d in
    let axis = if axis < 0 then r + axis else axis in
    if axis < 0 || axis >= r then Nac
    else
      let out = Array.copy d in
      let total =
        List.fold_left
          (fun acc s ->
            match acc, Dim.as_expr (dim s axis) with
            | Some acc, Some e -> Some (Expr.add acc e)
            | _ -> None)
          (Dim.as_expr d.(axis) |> Option.map Fun.id)
          rest
      in
      out.(axis) <- (match total with Some e -> Dim.of_expr e | None -> Dim.undef);
      Ranked out

let free_syms = function
  | Undef | Nac -> []
  | Ranked d ->
    Array.to_list d
    |> List.concat_map (fun x ->
           match Dim.as_expr x with Some e -> Expr.free_syms e | None -> [])
    |> List.sort_uniq String.compare

let pp ppf = function
  | Undef -> Format.pp_print_string ppf "undef"
  | Nac -> Format.pp_print_string ppf "nac"
  | Ranked d ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Dim.pp)
      (Array.to_list d)

let to_string s = Format.asprintf "%a" pp s
