lib/symbolic/dim.ml: Env Expr Format Lattice
