lib/symbolic/value_info.ml: Array Env Expr Format Lattice List Option
