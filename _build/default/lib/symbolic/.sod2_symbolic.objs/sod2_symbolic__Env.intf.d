lib/symbolic/env.mli: Expr Format
