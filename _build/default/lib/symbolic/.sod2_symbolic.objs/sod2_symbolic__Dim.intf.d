lib/symbolic/dim.mli: Env Expr Format Lattice
