lib/symbolic/value_info.mli: Env Expr Format Lattice
