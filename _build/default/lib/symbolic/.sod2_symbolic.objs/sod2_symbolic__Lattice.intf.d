lib/symbolic/lattice.mli: Format
