lib/symbolic/lattice.ml: Format
