lib/symbolic/env.ml: Expr Format List Map Printf String
