lib/symbolic/shape.mli: Dim Env Expr Format
