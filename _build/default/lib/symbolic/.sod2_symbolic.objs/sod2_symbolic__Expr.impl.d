lib/symbolic/expr.ml: Format List Option Stdlib String
