lib/symbolic/shape.ml: Array Dim Expr Format Fun List Option String
