type 'a t =
  | Undef
  | Known of 'a
  | Nac

let meet ~equal a b =
  match a, b with
  | Undef, x | x, Undef -> x
  | Nac, _ | _, Nac -> Nac
  | Known x, Known y -> if equal x y then Known x else Nac

let equal ~equal:eq a b =
  match a, b with
  | Undef, Undef | Nac, Nac -> true
  | Known x, Known y -> eq x y
  | Undef, (Known _ | Nac) | Known _, (Undef | Nac) | Nac, (Undef | Known _) -> false

let is_known = function Known _ -> true | Undef | Nac -> false
let get = function Known x -> Some x | Undef | Nac -> None
let map f = function Undef -> Undef | Nac -> Nac | Known x -> Known (f x)

let pp pp_v ppf = function
  | Undef -> Format.pp_print_string ppf "undef"
  | Nac -> Format.pp_print_string ppf "nac"
  | Known v -> pp_v ppf v
