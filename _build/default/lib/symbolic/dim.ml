type t = Expr.t Lattice.t

let undef : t = Lattice.Undef
let nac : t = Lattice.Nac
let of_expr e : t = Lattice.Known e
let of_int i = of_expr (Expr.const i)
let of_sym s = of_expr (Expr.sym s)

let equal (a : t) (b : t) = Lattice.equal ~equal:Expr.equal a b
let meet (a : t) (b : t) = Lattice.meet ~equal:Expr.equal a b

let as_expr = function Lattice.Known e -> Some e | Lattice.Undef | Lattice.Nac -> None

let as_const d =
  match as_expr d with
  | Some e -> Expr.as_const e
  | None -> None

let eval env d =
  match as_expr d with
  | Some e -> Env.eval env e
  | None -> None

let broadcast (a : t) (b : t) : t * bool =
  match a, b with
  | Lattice.Known ea, Lattice.Known eb ->
    if Expr.equal ea eb then a, true
    else if Expr.is_one ea then b, true
    else if Expr.is_one eb then a, true
    else (
      match Expr.as_const ea, Expr.as_const eb with
      | Some ca, Some cb ->
        (* Both known constants, distinct, neither 1: invalid broadcast. *)
        ignore ca;
        ignore cb;
        Lattice.Nac, true
      | _ ->
        (* Valid broadcasting implies the result is max of the two dims;
           which side stretches is unknown, so code versioning is needed. *)
        of_expr (Expr.max_ ea eb), false)
  | Lattice.Nac, _ | _, Lattice.Nac -> Lattice.Nac, false
  | Lattice.Undef, _ | _, Lattice.Undef -> Lattice.Undef, false

let pp ppf (d : t) = Lattice.pp Expr.pp ppf d
let to_string d = Format.asprintf "%a" pp d
