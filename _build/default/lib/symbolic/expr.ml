type t = monomial list

and monomial = { coeff : int; atoms : atom list }

and atom =
  | Sym of string
  | Opaque of opaque

and opaque =
  | Odiv of t * t
  | Omod of t * t
  | Omax of t * t
  | Omin of t * t

(* ------------------------------------------------------------------ *)
(* Structural comparison                                               *)
(* ------------------------------------------------------------------ *)

let rec compare (a : t) (b : t) =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | ma :: ra, mb :: rb ->
    let c = compare_monomial ma mb in
    if c <> 0 then c else compare ra rb

and compare_monomial ma mb =
  let c = compare_atoms ma.atoms mb.atoms in
  if c <> 0 then c else Stdlib.compare ma.coeff mb.coeff

and compare_atoms la lb =
  match la, lb with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: ra, b :: rb ->
    let c = compare_atom a b in
    if c <> 0 then c else compare_atoms ra rb

and compare_atom a b =
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Sym _, Opaque _ -> -1
  | Opaque _, Sym _ -> 1
  | Opaque x, Opaque y -> compare_opaque x y

and compare_opaque x y =
  let tag = function Odiv _ -> 0 | Omod _ -> 1 | Omax _ -> 2 | Omin _ -> 3 in
  let c = Stdlib.compare (tag x) (tag y) in
  if c <> 0 then c
  else
    let (a1, a2), (b1, b2) =
      match x, y with
      | Odiv (a, b), Odiv (c, d)
      | Omod (a, b), Omod (c, d)
      | Omax (a, b), Omax (c, d)
      | Omin (a, b), Omin (c, d) -> (a, b), (c, d)
      | _ -> assert false
    in
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* Sort atoms inside each monomial, sort monomials by their atom bags,
   merge monomials with equal bags by summing coefficients, drop zeros. *)
let norm (ms : monomial list) : t =
  let ms = List.map (fun m -> { m with atoms = List.sort compare_atom m.atoms }) ms in
  let ms = List.sort (fun a b -> compare_atoms a.atoms b.atoms) ms in
  let rec merge = function
    | [] -> []
    | [ m ] -> if m.coeff = 0 then [] else [ m ]
    | m1 :: m2 :: rest ->
      if compare_atoms m1.atoms m2.atoms = 0 then
        merge ({ m1 with coeff = m1.coeff + m2.coeff } :: rest)
      else if m1.coeff = 0 then merge (m2 :: rest)
      else m1 :: merge (m2 :: rest)
  in
  merge ms

let const c = norm [ { coeff = c; atoms = [] } ]
let zero = const 0
let one = const 1
let sym name = [ { coeff = 1; atoms = [ Sym name ] } ]

let is_zero (e : t) = e = []

let as_const (e : t) =
  match e with
  | [] -> Some 0
  | [ { coeff; atoms = [] } ] -> Some coeff
  | _ -> None

let is_const e = as_const e <> None
let is_one e = as_const e = Some 1

let add (a : t) (b : t) : t = norm (a @ b)
let neg (a : t) : t = List.map (fun m -> { m with coeff = -m.coeff }) a
let sub a b = add a (neg b)

let mul (a : t) (b : t) : t =
  let products =
    List.concat_map
      (fun ma ->
        List.map (fun mb -> { coeff = ma.coeff * mb.coeff; atoms = ma.atoms @ mb.atoms }) b)
      a
  in
  norm products

let of_list_sum es = List.fold_left add zero es
let product es = List.fold_left mul one es

(* Remove one occurrence of each atom of [sub] from [atoms]; None when
   [sub] is not a sub-bag. *)
let rec remove_bag atoms sub =
  match sub with
  | [] -> Some atoms
  | a :: rest -> (
    let rec remove_one = function
      | [] -> None
      | x :: xs -> if compare_atom x a = 0 then Some xs else Option.map (fun r -> x :: r) (remove_one xs)
    in
    match remove_one atoms with
    | None -> None
    | Some atoms' -> remove_bag atoms' rest)

(* Try to divide a single monomial exactly by divisor monomial [d]. *)
let div_monomial m d =
  if d.coeff <> 0 && m.coeff mod d.coeff = 0 then
    match remove_bag m.atoms d.atoms with
    | Some atoms -> Some { coeff = m.coeff / d.coeff; atoms }
    | None -> None
  else None

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let opaque_monomial o = [ { coeff = 1; atoms = [ Opaque o ] } ]

let div (a : t) (b : t) : t =
  match as_const a, as_const b with
  | _, Some 1 -> a
  | Some ca, Some cb when cb > 0 -> const (floor_div ca cb)
  | _, Some cb when cb > 0 ->
    (* Split exactly-divisible monomials out of the floor division: with
       cb > 0, floor((cb*X + R)/cb) = X + floor(R/cb). *)
    let divisible, residue = List.partition (fun m -> m.coeff mod cb = 0) a in
    let divided = List.map (fun m -> { m with coeff = m.coeff / cb }) divisible in
    let rest =
      match as_const residue with
      | Some 0 -> []
      | Some c when c >= 0 -> [ { coeff = floor_div c cb; atoms = [] } ]
      | _ -> opaque_monomial (Odiv (norm residue, b))
    in
    norm (divided @ rest)
  | _ -> (
    match b with
    | [ d ] ->
      let divisible, residue =
        List.fold_left
          (fun (ds, rs) m ->
            match div_monomial m d with
            | Some m' -> m' :: ds, rs
            | None -> ds, m :: rs)
          ([], []) a
      in
      let rest = if residue = [] then [] else opaque_monomial (Odiv (norm residue, b)) in
      norm (divisible @ rest)
    | _ -> if equal a b then one else norm (opaque_monomial (Odiv (a, b))))

let modulo (a : t) (b : t) : t =
  match as_const a, as_const b with
  | _, Some 1 -> zero
  | Some ca, Some cb when cb > 0 -> const (ca - floor_div ca cb * cb)
  | _, Some cb when cb > 0 -> (
    (* (cb*X + R) mod cb = R mod cb for cb > 0. *)
    let residue = List.filter (fun m -> m.coeff mod cb <> 0) a in
    match as_const (norm residue) with
    | Some c -> const (c - (floor_div c cb * cb))
    | None -> if residue = [] then zero else norm (opaque_monomial (Omod (norm residue, b))))
  | _ -> if equal a b then zero else norm (opaque_monomial (Omod (a, b)))

(* Conservative sign analysis under the "shape symbols are positive"
   assumption: an expression is obviously non-negative when every monomial
   has a non-negative coefficient and every opaque atom is itself
   non-negative. *)
let rec obviously_nonneg (e : t) =
  List.for_all
    (fun m ->
      m.coeff >= 0 && List.for_all atom_nonneg m.atoms)
    e

and atom_nonneg = function
  | Sym _ -> true
  | Opaque (Odiv (a, _)) -> obviously_nonneg a
  | Opaque (Omod _) -> true
  | Opaque (Omax (a, b)) -> obviously_nonneg a || obviously_nonneg b
  | Opaque (Omin (a, b)) -> obviously_nonneg a && obviously_nonneg b

let order_pair a b = if compare a b <= 0 then a, b else b, a

let max_ (a : t) (b : t) : t =
  if equal a b then a
  else
    match as_const a, as_const b with
    | Some ca, Some cb -> const (max ca cb)
    | _ ->
      if obviously_nonneg (sub a b) then a
      else if obviously_nonneg (sub b a) then b
      else
        let x, y = order_pair a b in
        norm (opaque_monomial (Omax (x, y)))

let min_ (a : t) (b : t) : t =
  if equal a b then a
  else
    match as_const a, as_const b with
    | Some ca, Some cb -> const (min ca cb)
    | _ ->
      if obviously_nonneg (sub a b) then b
      else if obviously_nonneg (sub b a) then a
      else
        let x, y = order_pair a b in
        norm (opaque_monomial (Omin (x, y)))

(* ------------------------------------------------------------------ *)
(* Evaluation, substitution, free symbols                              *)
(* ------------------------------------------------------------------ *)

let rec eval lookup (e : t) : int option =
  let rec eval_monomials acc = function
    | [] -> Some acc
    | m :: rest -> (
      match eval_atoms m.coeff m.atoms with
      | None -> None
      | Some v -> eval_monomials (acc + v) rest)
  and eval_atoms acc = function
    | [] -> Some acc
    | Sym s :: rest -> (
      match lookup s with
      | None -> None
      | Some v -> eval_atoms (acc * v) rest)
    | Opaque o :: rest -> (
      match eval_opaque o with
      | None -> None
      | Some v -> eval_atoms (acc * v) rest)
  and eval_opaque = function
    | Odiv (a, b) -> (
      match eval lookup a, eval lookup b with
      | Some va, Some vb when vb > 0 -> Some (floor_div va vb)
      | _ -> None)
    | Omod (a, b) -> (
      match eval lookup a, eval lookup b with
      | Some va, Some vb when vb > 0 -> Some (va - floor_div va vb * vb)
      | _ -> None)
    | Omax (a, b) -> (
      match eval lookup a, eval lookup b with
      | Some va, Some vb -> Some (max va vb)
      | _ -> None)
    | Omin (a, b) -> (
      match eval lookup a, eval lookup b with
      | Some va, Some vb -> Some (min va vb)
      | _ -> None)
  in
  eval_monomials 0 e

let rec subst lookup (e : t) : t =
  let subst_atom = function
    | Sym s -> ( match lookup s with Some e' -> e' | None -> sym s)
    | Opaque (Odiv (a, b)) -> div (subst lookup a) (subst lookup b)
    | Opaque (Omod (a, b)) -> modulo (subst lookup a) (subst lookup b)
    | Opaque (Omax (a, b)) -> max_ (subst lookup a) (subst lookup b)
    | Opaque (Omin (a, b)) -> min_ (subst lookup a) (subst lookup b)
  in
  let subst_monomial m = mul (const m.coeff) (product (List.map subst_atom m.atoms)) in
  of_list_sum (List.map subst_monomial e)

let free_syms (e : t) : string list =
  let rec of_expr acc (e : t) = List.fold_left of_monomial acc e
  and of_monomial acc m = List.fold_left of_atom acc m.atoms
  and of_atom acc = function
    | Sym s -> s :: acc
    | Opaque (Odiv (a, b) | Omod (a, b) | Omax (a, b) | Omin (a, b)) ->
      of_expr (of_expr acc a) b
  in
  List.sort_uniq String.compare (of_expr [] e)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp ppf (e : t) =
  match e with
  | [] -> Format.pp_print_string ppf "0"
  | m :: rest ->
    pp_monomial ~leading:true ppf m;
    List.iter
      (fun m ->
        if m.coeff >= 0 then Format.pp_print_string ppf " + "
        else Format.pp_print_string ppf " - ";
        pp_monomial ~leading:false ppf { m with coeff = abs m.coeff })
      rest

and pp_monomial ~leading ppf m =
  match m.atoms with
  | [] -> Format.pp_print_int ppf m.coeff
  | atoms ->
    if m.coeff = -1 && leading then Format.pp_print_string ppf "-"
    else if m.coeff <> 1 then Format.fprintf ppf "%d*" m.coeff;
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
      pp_atom ppf atoms

and pp_atom ppf = function
  | Sym s -> Format.pp_print_string ppf s
  | Opaque (Odiv (a, b)) -> Format.fprintf ppf "(%a)/(%a)" pp a pp b
  | Opaque (Omod (a, b)) -> Format.fprintf ppf "(%a)%%(%a)" pp a pp b
  | Opaque (Omax (a, b)) -> Format.fprintf ppf "max(%a, %a)" pp a pp b
  | Opaque (Omin (a, b)) -> Format.fprintf ppf "min(%a, %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
