(** The three-level RDP value lattice of the paper (Fig. 2): [Undef] is the
    top element (nothing known yet), [Known] carries a known, symbolic or
    op-inferred constant, and [Nac] ("not a constant") is the bottom. *)

type 'a t =
  | Undef  (** ⊤ — no information has reached this point yet *)
  | Known of 'a  (** a constant in the RDP domain *)
  | Nac  (** ⊥ — provably not expressible as a constant *)

val meet : equal:('a -> 'a -> bool) -> 'a t -> 'a t -> 'a t
(** [meet ~equal a b] is the lattice meet: [Undef] is neutral, two [Known]
    values agree iff [equal] holds, and any disagreement or [Nac] gives
    [Nac]. *)

val equal : equal:('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val is_known : 'a t -> bool
val get : 'a t -> 'a option

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
