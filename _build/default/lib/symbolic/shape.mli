(** Symbolic tensor shapes: either nothing is known ([Undef]), the rank is
    known and each dimension is itself an RDP dimension, or the shape is
    provably not static ([Nac]).  This is the "S-map" entry of the paper's
    RDP analysis. *)

type t =
  | Undef  (** no shape information yet *)
  | Ranked of Dim.t array  (** rank known; dims individually tracked *)
  | Nac  (** shape is execution determined *)

val scalar : t
(** Rank-0 shape. *)

val of_ints : int list -> t
(** Fully-known constant shape. *)

val of_dims : Dim.t list -> t
val of_exprs : Expr.t list -> t

val of_syms : string list -> t
(** Shape whose dimensions are the given fresh shape variables. *)

val rank : t -> int option

val dims : t -> Dim.t array option

val dim : t -> int -> Dim.t
(** [dim s i] is dimension [i] (supports negative indices counting from the
    end); [Dim.undef] when the rank is unknown, [Dim.nac] on [Nac]. *)

val numel : t -> Expr.t option
(** Symbolic element count — the product of all dims when every one is
    known. *)

val is_fully_known : t -> bool
(** All dimensions are known constant integers. *)

val is_symbolically_known : t -> bool
(** Rank known and every dimension is a known (possibly symbolic)
    expression. *)

val as_ints : t -> int list option
(** Concrete dims when fully known. *)

val eval : Env.t -> t -> int list option
(** Concrete dims under a symbol valuation. *)

val equal : t -> t -> bool
val meet : t -> t -> t

val broadcast : t -> t -> t * int
(** [broadcast a b] applies numpy broadcasting to two ranked shapes; the
    integer is the number of dimension pairs whose broadcast pattern could
    not be statically resolved (each doubles the code versions a
    shape-oblivious compiler would need). *)

val concat_dim : t -> t list -> axis:int -> t
(** [concat_dim first rest ~axis] is the shape of concatenating tensors of
    the given shapes along [axis]. *)

val free_syms : t -> string list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
