(** A single tensor dimension in the RDP domain: unknown ([Undef]), a known /
    symbolic / op-inferred constant expression, or [Nac]. *)

type t = Expr.t Lattice.t

val undef : t
val nac : t

val of_int : int -> t
val of_sym : string -> t
val of_expr : Expr.t -> t

val equal : t -> t -> bool
val meet : t -> t -> t

val as_const : t -> int option
(** [as_const d] is the dimension as a known integer constant, if it is one. *)

val as_expr : t -> Expr.t option

val eval : Env.t -> t -> int option
(** Concrete value of the dimension under a symbol valuation. *)

val broadcast : t -> t -> t * bool
(** [broadcast a b] is the numpy-broadcast result of two dimensions together
    with a flag telling whether the broadcast pattern was {e statically
    resolved}.  Since valid broadcasting implies the result equals
    [max a b] (dims are ≥ 1 and one side is 1 or they are equal), the result
    dimension is always expressible; the flag is [false] exactly when a
    compiler would need multiple code versions for this dimension pair. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
