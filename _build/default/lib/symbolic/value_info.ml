type t = Expr.t array Lattice.t

let undef : t = Lattice.Undef
let nac : t = Lattice.Nac

let max_tracked_elements = 64

let of_exprs l : t =
  if List.length l > max_tracked_elements then Lattice.Nac
  else Lattice.Known (Array.of_list l)

let of_ints l = of_exprs (List.map Expr.const l)
let scalar e : t = Lattice.Known [| e |]

let as_exprs : t -> Expr.t array option = function
  | Lattice.Known a -> Some a
  | Lattice.Undef | Lattice.Nac -> None

let as_ints v =
  match as_exprs v with
  | None -> None
  | Some a ->
    let ints = Array.to_list a |> List.map Expr.as_const in
    if List.for_all Option.is_some ints then Some (List.map Option.get ints) else None

let eval env v =
  match as_exprs v with
  | None -> None
  | Some a ->
    let vals = Array.to_list a |> List.map (Env.eval env) in
    if List.for_all Option.is_some vals then Some (List.map Option.get vals) else None

let arrays_equal a b =
  Array.length a = Array.length b && Array.for_all2 Expr.equal a b

let equal (a : t) (b : t) = Lattice.equal ~equal:arrays_equal a b
let meet (a : t) (b : t) = Lattice.meet ~equal:arrays_equal a b

let pp ppf (v : t) =
  Lattice.pp
    (fun ppf a ->
      Format.fprintf ppf "<%a>"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Expr.pp)
        (Array.to_list a))
    ppf v
