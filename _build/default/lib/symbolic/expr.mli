(** Symbolic integer expressions over shape variables.

    Expressions are kept in a normal form: a sorted sum of monomials, each a
    non-zero integer coefficient times a sorted bag of atoms.  An atom is
    either a named symbol (a shape variable such as ["N"] or ["H"], always
    assumed to denote a strictly positive integer) or an opaque term — a
    floor-division, modulo, maximum or minimum of two normalized expressions
    that could not be simplified away.  The normal form makes structural
    equality decide semantic equality for the affine fragment, which is what
    rank-and-dimension propagation relies on when it must prove that two
    tensor dimensions are equal without knowing their runtime values. *)

type t

type atom =
  | Sym of string  (** a free shape variable, assumed > 0 *)
  | Opaque of opaque  (** an irreducible non-affine term *)

and opaque =
  | Odiv of t * t  (** floor division, divisor assumed > 0 *)
  | Omod of t * t  (** remainder, divisor assumed > 0 *)
  | Omax of t * t
  | Omin of t * t

(** {1 Constructors} *)

val const : int -> t
(** [const c] is the constant expression [c]. *)

val zero : t
val one : t

val sym : string -> t
(** [sym name] is the shape variable [name]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val div : t -> t -> t
(** [div a b] is the floor division [a / b].  Monomials of [a] exactly
    divisible by [b] are divided out (sound because divisors of shape
    formulas are positive); any residue stays as an opaque term. *)

val modulo : t -> t -> t
(** [modulo a b] is [a mod b] with [b > 0]. *)

val max_ : t -> t -> t
val min_ : t -> t -> t

val of_list_sum : t list -> t
(** [of_list_sum es] sums all expressions of [es]. *)

val product : t list -> t
(** [product es] multiplies all expressions of [es]; [product [] = one]. *)

(** {1 Inspection} *)

val compare : t -> t -> int
(** Total structural order on normal forms. *)

val equal : t -> t -> bool
(** [equal a b] holds iff [a] and [b] have the same normal form; for affine
    expressions this decides semantic equality. *)

val is_const : t -> bool

val as_const : t -> int option
(** [as_const e] is [Some c] when [e] is the constant [c]. *)

val free_syms : t -> string list
(** Sorted, deduplicated names of the shape variables occurring in [e]. *)

val is_one : t -> bool
val is_zero : t -> bool

(** {1 Evaluation and substitution} *)

val eval : (string -> int option) -> t -> int option
(** [eval lookup e] evaluates [e] with [lookup] giving symbol values; [None]
    if any needed symbol is unbound or a divisor evaluates to [<= 0]. *)

val subst : (string -> t option) -> t -> t
(** [subst lookup e] replaces each symbol for which [lookup] returns an
    expression, renormalizing the result. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
