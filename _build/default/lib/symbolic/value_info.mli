(** Symbolic knowledge about a tensor's {e contents} — the "V-map" entry of
    RDP.  Only small integer tensors (shape vectors, axes, slice bounds …)
    are tracked; everything else is [Nac].  Each element is a symbolic
    expression, so the output of a [Shape] operator applied to a tensor of
    shape [[a, b]] is the known value [[a; b]] even when [a] and [b] are
    symbols. *)

type t = Expr.t array Lattice.t

val undef : t
val nac : t

val of_ints : int list -> t
val of_exprs : Expr.t list -> t
val scalar : Expr.t -> t

val max_tracked_elements : int
(** Upper bound on the number of elements a tracked value may have; larger
    tensors are never value-tracked (they cannot feed shape computations in
    practice and tracking them would bloat the analysis state). *)

val as_exprs : t -> Expr.t array option
val as_ints : t -> int list option

val eval : Env.t -> t -> int list option

val equal : t -> t -> bool
val meet : t -> t -> t

val pp : Format.formatter -> t -> unit
