lib/runtime/executor.mli: Graph Op Pipeline Tensor
