lib/runtime/arena_exec.mli: Env Graph Pipeline Tensor
