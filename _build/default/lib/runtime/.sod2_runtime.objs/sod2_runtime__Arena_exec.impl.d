lib/runtime/arena_exec.ml: Array Exec_plan Fusion Graph Hashtbl Kernels List Mem_plan Op Pipeline Printf Tensor
