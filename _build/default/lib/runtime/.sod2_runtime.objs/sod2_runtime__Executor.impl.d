lib/runtime/executor.ml: Array Cost_model Exec_plan Expr Fusion Graph Hashtbl Kernels Lattice List Multi_version Op Option Pipeline Printf Shape Shape_fn Tensor Value_info
