lib/runtime/kernels.ml: Array Float Fun Linalg List Op Printf Reduction Tensor Transform
