lib/runtime/kernels.mli: Op Tensor
