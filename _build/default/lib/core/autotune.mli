(** Genetic-algorithm auto-tuner for heavy-kernel configurations (§4.4.2).

    SoD² generates multiple optimized versions of hotspot kernels (GEMM and
    CONV) and selects among them by shape class at run time.  Here a kernel
    version is a point in a schedule space — tiling, unrolling, thread
    count, vectorization — whose quality on a given problem size and device
    is predicted by an analytical efficiency model (fraction of the
    device's peak throughput attained).  The tuner searches the space with
    a small genetic algorithm, as the paper's DNNFusion-based tuner does;
    a random-search baseline is provided for the ablation. *)

type config = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;
  threads : int;
  vectorize : bool;
}

val default_config : config
(** The generic kernel a framework ships without tuning. *)

val efficiency : Profile.t -> config -> m:int -> n:int -> k:int -> float
(** Predicted fraction of peak throughput for a GEMM of the given extents
    (convolutions are lowered to implicit GEMM).  In [\[0.05, 0.95\]];
    deterministic. *)

val tune :
  ?generations:int -> ?population:int -> Profile.t -> Rng.t ->
  m:int -> n:int -> k:int -> config * float
(** GA search maximizing {!efficiency}; returns the best configuration and
    its efficiency. *)

val random_search :
  ?trials:int -> Profile.t -> Rng.t -> m:int -> n:int -> k:int -> config * float
(** Uniform random search with the same evaluation budget as {!tune}'s
    default (for comparing search strategies). *)

val pp_config : Format.formatter -> config -> unit
