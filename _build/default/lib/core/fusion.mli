(** Operator fusion for dynamic DNNs (§4.2).

    Fusion groups adjacent operators so the runtime executes them as one
    kernel, never materializing the tensors that stay inside a group.  The
    legality question for dynamic models is whether two operators' index
    spaces can be proven compatible {e before} shapes are concrete:

    - in [Static_only] mode (the SFusion baseline — what a fusion pass
      without RDP facts can do) an edge fuses only when both tensor shapes
      are fully known integer constants;
    - in [Rdp_based] mode an edge fuses when the shapes are {e
      symbolically} known and the broadcast pattern is resolved, or needs
      at most {!version_cap} code versions (each statically-unresolved
      broadcast dimension doubles the versions, Fig. 4).

    Structural rules follow DNNFusion: at most one compute-heavy anchor
    per group, reduction-like operators only in terminal position,
    one-to-one (view) operators fuse freely, and a producer fuses only
    into its sole consumer.  Control-flow and execution-determined
    operators never fuse. *)

type mode =
  | Static_only  (** fuse only fully-constant shapes (SFusion baseline) *)
  | Light
      (** epilogue-only fusion — short conv+bn+activation and pointwise
          chains, the depth engines like MNN reach after re-initialization *)
  | Rdp_based  (** use RDP symbolic equalities; allow bounded multi-version *)

type group = {
  gid : int;
  members : Graph.node_id list;  (** in topological order *)
  internal : Graph.tensor_id list;  (** tensors never materialized *)
  versions : int;  (** fused-code versions generated for this group *)
}

type plan = {
  groups : group array;
  group_of : int array;  (** node id → group id *)
  mode : mode;
}

val version_cap : int
(** Maximum fused-code versions generated per group (8, matching the
    2³ example of Fig. 4). *)

val plan : ?mode:mode -> Graph.t -> Rdp.t -> plan
(** Compute the fusion plan ([Rdp_based] by default). *)

val identity_plan : Graph.t -> plan
(** Every node in its own group — the unfused baseline. *)

val layer_count : plan -> int
(** Number of groups — the "layer count" metric of Fig. 7. *)

val materialized_tensors : Graph.t -> plan -> Graph.tensor_id list
(** Activation tensors that still have to be written to memory. *)

val intermediate_bytes : Graph.t -> plan -> Env.t -> Rdp.t -> int
(** Total bytes of materialized intermediate results under a concrete
    symbol valuation — the "IR size" metric of Fig. 7. *)

val pp : Graph.t -> Format.formatter -> plan -> unit
