(** Rank and Dimension Propagation — the paper's core static analysis
    (§4.1, Alg. 1).

    RDP is an iterative forward/backward dataflow analysis over the
    extended computational graph.  For every tensor it maintains two maps:

    - an {b S-map} entry ({!Shape.t}): the tensor's rank and per-dimension
      expressions over known constants, symbolic constants and op-inferred
      constants (or [undef]/[nac]);
    - a {b V-map} entry ({!Value_info.t}): the tensor's contents as
      symbolic expressions, tracked for small integer tensors so that
      [Shape → Gather → Concat → Reshape] chains resolve statically.

    The solver runs the optimized chaos iteration of Alg. 1: sweep the
    depth-first-sorted nodes, apply the forward Update transfer of each
    node's dynamism category, backward-propagate to [undef] predecessors,
    merge at [Combine] nodes, and repeat until a fixpoint.  Both maps live
    in the finite-descent lattice [undef → constant → nac], so the
    iteration converges. *)

type t = {
  shapes : Shape.t array;  (** S-map, indexed by tensor id *)
  values : Value_info.t array;  (** V-map, indexed by tensor id *)
  categories : Op_class.category array;
      (** per-node dynamism category {e after} constant propagation — an
          ISVDOS node whose shape operands were resolved is reported as
          ISDOS (§3 Discussion) *)
  iterations : int;  (** sweeps until fixpoint *)
}

val analyze : ?overrides:(Graph.tensor_id * Shape.t) list -> Graph.t -> t
(** [analyze g] runs RDP on [g] using the shapes declared on the graph
    inputs (symbolic dims stay symbolic).  [overrides] replaces declared
    input shapes, e.g. to re-run the analysis with concrete extents. *)

val shape : t -> Graph.tensor_id -> Shape.t
val value : t -> Graph.tensor_id -> Value_info.t

val category : t -> Graph.node_id -> Op_class.category

(** {1 Statistics} *)

type dim_stats = {
  n_tensors : int;
  known_const : int;  (** tensors with every dim a known integer *)
  symbolic : int;  (** every dim known, at least one symbolic/op-inferred *)
  rank_only : int;  (** rank known but some dim unresolved *)
  unknown : int;  (** [Undef] or [Nac] shape *)
}

val stats : Graph.t -> t -> dim_stats
(** Distribution of analysis precision over the graph's activation
    tensors. *)

val resolution_rate : Graph.t -> t -> float
(** Fraction of activation tensors whose shape is symbolically known. *)

val pp_tensor : Graph.t -> t -> Format.formatter -> Graph.tensor_id -> unit
(** Debug rendering of one tensor's S/V entries. *)
