(** Rematerialization planning under a memory budget.

    When an engine's live set exceeds the arena it was given, it can trade
    compute for memory: drop an intermediate tensor after its producer runs
    and recompute it immediately before each later use (the XLA
    rematerialization policy the paper uses to hold TFLite to SoD²'s
    footprint in Fig. 11; Checkmate and DTR study the same trade-off).

    The planner works on tensor lifetimes annotated with recomputation
    costs.  It repeatedly finds the peak-memory step and evicts the tensor
    held across that step with the best bytes-per-recompute-microsecond
    ratio, until the peak fits the budget or no candidate remains.  An
    evicted tensor's lifetime collapses to its production and use points;
    its recomputation cost is paid once per eviction. *)

type tensor = {
  rt_bytes : int;
  rt_alloc : int;  (** step that produces it *)
  rt_free : int;  (** last step that uses it *)
  rt_recompute_us : float;  (** cost of re-running its producer *)
}

type plan = {
  evicted : int list;  (** indices into the input list *)
  extra_us : float;  (** total added recomputation time *)
  peak_bytes : int;  (** peak after rematerialization *)
  feasible : bool;  (** whether the budget was met *)
}

val peak_of : tensor list -> int
(** Peak live bytes with no rematerialization. *)

val plan : budget_bytes:int -> tensor list -> plan
(** Greedy eviction until the peak fits [budget_bytes].  [feasible] is
    false when even evicting every candidate cannot meet the budget (the
    returned [peak_bytes] is then the best achieved). *)
