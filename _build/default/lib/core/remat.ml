type tensor = {
  rt_bytes : int;
  rt_alloc : int;
  rt_free : int;
  rt_recompute_us : float;
}

type plan = {
  evicted : int list;
  extra_us : float;
  peak_bytes : int;
  feasible : bool;
}

(* Live bytes per step given the eviction set: an evicted tensor occupies
   memory only at its production step and at its final use (where it has
   just been recomputed). *)
let live_at evicted tensors s =
  List.fold_left
    (fun (acc, i) t ->
      let live =
        if List.mem i evicted then s = t.rt_alloc || s = t.rt_free
        else t.rt_alloc <= s && s <= t.rt_free
      in
      (if live then acc + t.rt_bytes else acc), i + 1)
    (0, 0) tensors
  |> fst

let last_step tensors = List.fold_left (fun acc t -> max acc t.rt_free) 0 tensors

let peak_step evicted tensors =
  let last = last_step tensors in
  let best = ref 0 and best_bytes = ref (-1) in
  for s = 0 to last do
    let v = live_at evicted tensors s in
    if v > !best_bytes then begin
      best_bytes := v;
      best := s
    end
  done;
  !best, !best_bytes

let peak_of tensors = snd (peak_step [] tensors)

let plan ~budget_bytes tensors =
  let rec go evicted extra =
    let s_star, peak = peak_step evicted tensors in
    if peak <= budget_bytes then
      { evicted; extra_us = extra; peak_bytes = peak; feasible = true }
    else begin
      (* candidates: tensors held across the peak step (bytes produced or
         finally used right there are irreducible) *)
      let indexed =
        List.mapi (fun i t -> i, t) tensors
        |> List.filter (fun (i, t) ->
               (not (List.mem i evicted))
               && t.rt_alloc < s_star && s_star < t.rt_free
               && t.rt_bytes > 0)
      in
      match indexed with
      | [] -> { evicted; extra_us = extra; peak_bytes = peak; feasible = false }
      | _ ->
        let score (_, t) =
          float_of_int t.rt_bytes /. Float.max 1.0 t.rt_recompute_us
        in
        let best =
          List.fold_left
            (fun acc cand -> if score cand > score acc then cand else acc)
            (List.hd indexed) (List.tl indexed)
        in
        let i, t = best in
        go (i :: evicted) (extra +. t.rt_recompute_us)
    end
  in
  go [] 0.0
