lib/core/fusion.mli: Env Format Graph Rdp
