lib/core/mem_plan.mli: Env Format Fusion Graph Rdp
