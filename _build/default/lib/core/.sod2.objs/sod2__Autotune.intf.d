lib/core/autotune.mli: Format Profile Rng
