lib/core/exec_plan.mli: Env Format Fusion Graph Rdp
