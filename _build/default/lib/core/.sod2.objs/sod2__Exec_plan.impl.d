lib/core/exec_plan.ml: Array Dim Format Fusion Graph Hashtbl List Op Printf Queue Rdp Shape
