lib/core/pipeline.mli: Env Exec_plan Fusion Graph Mem_plan Multi_version Profile Rdp
