lib/core/remat.mli:
