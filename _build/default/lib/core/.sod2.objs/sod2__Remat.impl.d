lib/core/remat.ml: Float List
