lib/core/rdp.mli: Format Graph Op_class Shape Value_info
