lib/core/mem_plan.ml: Array Format Fusion Graph Hashtbl List Printf Rdp Shape
