lib/core/multi_version.mli: Autotune Op Profile
