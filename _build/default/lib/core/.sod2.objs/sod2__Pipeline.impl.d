lib/core/pipeline.ml: Env Exec_plan Fusion Graph List Mem_plan Multi_version Profile Rdp
