lib/core/fusion.ml: Array Format Fun Graph Hashtbl List Op Rdp Shape Shape_fn String Value_info
