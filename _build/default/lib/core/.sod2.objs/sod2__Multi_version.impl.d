lib/core/multi_version.ml: Autotune Float List Op Rng
