lib/core/autotune.ml: Array Float Format Profile Rng
