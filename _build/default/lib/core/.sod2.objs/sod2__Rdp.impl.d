lib/core/rdp.ml: Array Dim Format Graph Lattice List Op_class Printf Shape Shape_fn Tensor Value_info
