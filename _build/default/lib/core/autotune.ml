type config = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  unroll : int;
  threads : int;
  vectorize : bool;
}

let tile_choices = [ 4; 8; 16; 32; 64; 128 ]
let unroll_choices = [ 1; 2; 4; 8 ]
let thread_choices = [ 1; 2; 4; 8 ]

let default_config =
  { tile_m = 32; tile_n = 32; tile_k = 32; unroll = 1; threads = 4; vectorize = false }

(* Analytical proxy for kernel quality: utilization of the thread pool,
   tile reuse in cache, edge waste when tiles overhang the problem, and a
   vectorization bonus.  Deterministic so experiments are reproducible. *)
let efficiency (p : Profile.t) c ~m ~n ~k =
  let m = max 1 m and n = max 1 n and k = max 1 k in
  let ceil_div a b = (a + b - 1) / b in
  let blocks = ceil_div m c.tile_m * ceil_div n c.tile_n in
  (* Enough blocks to keep every thread busy several times over. *)
  let parallelism =
    let per_thread = float_of_int blocks /. float_of_int c.threads in
    Float.min 1.0 (per_thread /. 4.0) *. Float.min 1.0 (float_of_int c.threads /. 8.0 *. 2.0)
  in
  (* Tile working set must fit in cache for reuse. *)
  let tile_bytes = 4 * ((c.tile_m * c.tile_k) + (c.tile_k * c.tile_n) + (c.tile_m * c.tile_n)) in
  let cache_fit =
    if tile_bytes * c.threads <= p.cache_bytes then 1.0
    else if tile_bytes <= p.cache_bytes then 0.75
    else 0.45
  in
  (* Tiles overhanging the problem edge waste lanes. *)
  let edge_waste =
    let frac total tile =
      let rounded = ceil_div total tile * tile in
      float_of_int total /. float_of_int rounded
    in
    frac m c.tile_m *. frac n c.tile_n
  in
  let unroll_bonus =
    if k >= c.unroll * c.tile_k then 1.0 +. (0.04 *. log (float_of_int c.unroll) /. log 2.0)
    else 0.92
  in
  let vector_bonus = if c.vectorize then (if n mod 8 = 0 then 1.25 else 1.05) else 1.0 in
  let raw = 0.62 *. parallelism *. cache_fit *. edge_waste *. unroll_bonus *. vector_bonus in
  Float.max 0.05 (Float.min 0.95 raw)

let random_config rng =
  {
    tile_m = Rng.pick rng tile_choices;
    tile_n = Rng.pick rng tile_choices;
    tile_k = Rng.pick rng tile_choices;
    unroll = Rng.pick rng unroll_choices;
    threads = Rng.pick rng thread_choices;
    vectorize = Rng.bool rng 0.5;
  }

let mutate rng c =
  match Rng.int rng 6 with
  | 0 -> { c with tile_m = Rng.pick rng tile_choices }
  | 1 -> { c with tile_n = Rng.pick rng tile_choices }
  | 2 -> { c with tile_k = Rng.pick rng tile_choices }
  | 3 -> { c with unroll = Rng.pick rng unroll_choices }
  | 4 -> { c with threads = Rng.pick rng thread_choices }
  | _ -> { c with vectorize = not c.vectorize }

let crossover rng a b =
  {
    tile_m = (if Rng.bool rng 0.5 then a.tile_m else b.tile_m);
    tile_n = (if Rng.bool rng 0.5 then a.tile_n else b.tile_n);
    tile_k = (if Rng.bool rng 0.5 then a.tile_k else b.tile_k);
    unroll = (if Rng.bool rng 0.5 then a.unroll else b.unroll);
    threads = (if Rng.bool rng 0.5 then a.threads else b.threads);
    vectorize = (if Rng.bool rng 0.5 then a.vectorize else b.vectorize);
  }

let tune ?(generations = 12) ?(population = 16) p rng ~m ~n ~k =
  let score c = efficiency p c ~m ~n ~k in
  let pop = ref (Array.init population (fun _ -> random_config rng)) in
  let best = ref (default_config, score default_config) in
  for _gen = 1 to generations do
    let scored = Array.map (fun c -> c, score c) !pop in
    Array.sort (fun (_, a) (_, b) -> compare b a) scored;
    if snd scored.(0) > snd !best then best := scored.(0);
    let elite = Array.sub scored 0 (max 2 (population / 4)) in
    let next =
      Array.init population (fun i ->
          if i < Array.length elite then fst elite.(i)
          else
            let a = fst elite.(Rng.int rng (Array.length elite)) in
            let b = fst elite.(Rng.int rng (Array.length elite)) in
            let child = crossover rng a b in
            if Rng.bool rng 0.4 then mutate rng child else child)
    in
    pop := next
  done;
  !best

let random_search ?(trials = 192) p rng ~m ~n ~k =
  let best = ref (default_config, efficiency p default_config ~m ~n ~k) in
  for _ = 1 to trials do
    let c = random_config rng in
    let s = efficiency p c ~m ~n ~k in
    if s > snd !best then best := (c, s)
  done;
  !best

let pp_config ppf c =
  Format.fprintf ppf "tile=%dx%dx%d unroll=%d threads=%d vec=%b" c.tile_m c.tile_n
    c.tile_k c.unroll c.threads c.vectorize
