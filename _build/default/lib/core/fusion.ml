type mode =
  | Static_only
  | Light
  | Rdp_based

type group = {
  gid : int;
  members : Graph.node_id list;
  internal : Graph.tensor_id list;
  versions : int;
}

type plan = {
  groups : group array;
  group_of : int array;
  mode : mode;
}

let version_cap = 8
let max_group_size = 16

type role =
  | View  (** index-space preserving, zero arithmetic *)
  | Pointwise
  | Heavy
  | Reduction
  | Opaque

let role (op : Op.t) : role =
  match op with
  | Op.Reshape | Op.Squeeze _ | Op.Unsqueeze _ | Op.Flatten _ | Op.Unary Op.Identity
  | Op.Cast _ -> View
  | Op.Unary _ | Op.Binary _ | Op.Clip _ | Op.Where | Op.Transpose _
  | Op.BatchNorm _ (* inference-mode: per-channel affine map *) -> Pointwise
  | Op.MatMul | Op.Gemm _ | Op.Conv _ | Op.Conv1d _ -> Heavy
  | Op.Softmax _ | Op.LogSoftmax _ | Op.Reduce _ | Op.ArgMax _ | Op.ArgMin _
  | Op.LayerNorm _ | Op.GroupNorm _ | Op.InstanceNorm _ | Op.MaxPool _ | Op.AveragePool _
  | Op.GlobalAveragePool | Op.CumSum _ -> Reduction
  | _ -> Opaque

(* --- union-find over nodes, with per-group fusion metadata --- *)

type meta = {
  mutable size : int;
  mutable has_heavy : bool;
  mutable has_reduction : bool;
  mutable bits : int;  (** unresolved broadcast dims; versions = 2^bits *)
}

let find parent i =
  let rec loop i = if parent.(i) = i then i else loop parent.(i) in
  let root = loop i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let shapes_ok mode rdp (g : Graph.t) (nd : Graph.node) =
  let ok s =
    match mode with
    | Static_only -> Shape.is_fully_known s
    | Light | Rdp_based -> Shape.is_symbolically_known s
  in
  List.for_all (fun tid -> ok (Rdp.shape rdp tid)) nd.outputs
  && List.for_all
       (fun tid ->
         (* Constant operands (weights, biases) always have known shapes. *)
         match (Graph.tensor g tid).kind with
         | Graph.Const _ -> true
         | Graph.Input _ | Graph.Activation -> ok (Rdp.shape rdp tid))
       nd.inputs

let consumer_bits rdp (g : Graph.t) (nd : Graph.node) =
  match nd.op with
  | Op.Binary _ | Op.Where ->
    let io =
      {
        Shape_fn.in_shapes =
          Array.of_list (List.map (fun tid -> Rdp.shape rdp tid) nd.inputs);
        in_values = Array.of_list (List.map (fun _ -> Value_info.undef) nd.inputs);
      }
    in
    ignore g;
    Shape_fn.versions_for_broadcast io
  | _ -> 0

let plan ?(mode = Rdp_based) (g : Graph.t) (rdp : Rdp.t) : plan =
  let n = Graph.node_count g in
  let parent = Array.init n Fun.id in
  let metas =
    Array.init n (fun nid ->
        let nd = Graph.node g nid in
        {
          size = 1;
          has_heavy = role nd.op = Heavy;
          has_reduction = role nd.op = Reduction;
          bits = 0;
        })
  in
  let single_consumer nd =
    (* A graph output must be materialized, so its producer cannot melt
       into a consumer's group. *)
    if List.exists (fun tid -> List.mem tid (Graph.outputs g)) nd.Graph.outputs then None
    else
      match
        List.sort_uniq compare
          (List.concat_map (fun tid -> Graph.consumers g tid) nd.Graph.outputs)
      with
      | [ c ] -> Some c
      | _ -> None
  in
  let try_fuse (p : Graph.node) (c : Graph.node) =
    let rp = role p.op and rc = role c.op in
    let producer_ok = match rp with View | Pointwise | Heavy -> true | Reduction | Opaque -> false in
    let consumer_ok = match rc with View | Pointwise | Reduction -> true | Heavy | Opaque -> false in
    if producer_ok && consumer_ok && single_consumer p = Some c.nid then begin
      let gp = find parent p.nid and gc = find parent c.nid in
      if gp <> gc then begin
        let mp = metas.(gp) and mc = metas.(gc) in
        let edge_bits = consumer_bits rdp g c in
        let bits = mp.bits + mc.bits + edge_bits in
        let versions_fit =
          match mode with
          | Static_only | Light -> bits = 0
          | Rdp_based -> 1 lsl bits <= version_cap
        in
        (* Light mode models engines like MNN that only fuse short
           epilogue chains (conv+bn+activation, pointwise pairs). *)
        let size_cap =
          match mode with Light -> 6 | Static_only | Rdp_based -> max_group_size
        in
        let light_ok =
          match mode with
          | Light -> (match rc with Pointwise | View | Reduction -> true | Heavy | Opaque -> false)
          | Static_only | Rdp_based -> true
        in
        if
          versions_fit && light_ok
          && mp.size + mc.size <= size_cap
          && not (mp.has_heavy && mc.has_heavy)
          && not mp.has_reduction (* a reduction ends its group; nothing fuses after it *)
          && shapes_ok mode rdp g p
          && shapes_ok mode rdp g c
        then begin
          parent.(gc) <- gp;
          mp.size <- mp.size + mc.size;
          mp.has_heavy <- mp.has_heavy || mc.has_heavy;
          mp.has_reduction <- mp.has_reduction || mc.has_reduction || rc = Reduction;
          mp.bits <- bits
        end
      end
    end
  in
  (* The first merge branch already covers reduction-terminal fusion; walk
     edges in topological order so chains grow from their anchor. *)
  Array.iter
    (fun (c : Graph.node) ->
      List.iter
        (fun tid ->
          match Graph.producer g tid with
          | Some p -> try_fuse p c
          | None -> ())
        c.inputs)
    (Graph.nodes g);
  (* Materialize groups.  Group ids are assigned by each group's LAST
     member: every group-external edge leaves a group from its terminal
     node, so ordering groups by terminal node id yields a topological
     order of the group DAG (which the execution planner's interval
     partition relies on). *)
  let root_of = Array.init n (fun i -> find parent i) in
  let last_member = Hashtbl.create 64 in
  Array.iteri (fun nid root -> Hashtbl.replace last_member root nid) root_of;
  let roots_sorted =
    Hashtbl.fold (fun root last acc -> (last, root) :: acc) last_member []
    |> List.sort compare
    |> List.map snd
  in
  let roots = Hashtbl.create 64 in
  let next_gid = ref 0 in
  List.iter
    (fun root ->
      Hashtbl.add roots root !next_gid;
      incr next_gid)
    roots_sorted;
  let group_of = Array.map (fun root -> Hashtbl.find roots root) root_of in
  let members = Array.make !next_gid [] in
  Array.iteri (fun nid gid -> members.(gid) <- nid :: members.(gid)) group_of;
  let members = Array.map List.rev members in
  let graph_outputs = Graph.outputs g in
  let internal_of gid =
    List.concat_map
      (fun nid ->
        let nd = Graph.node g nid in
        List.filter
          (fun tid ->
            (not (List.mem tid graph_outputs))
            &&
            let cons = Graph.consumers g tid in
            cons <> [] && List.for_all (fun c -> group_of.(c) = gid) cons)
          nd.outputs)
      members.(gid)
  in
  let groups =
    Array.init !next_gid (fun gid ->
        let m = members.(gid) in
        let root = find parent (List.hd m) in
        {
          gid;
          members = m;
          internal = (if List.length m > 1 then internal_of gid else []);
          versions = 1 lsl metas.(root).bits;
        })
  in
  { groups; group_of; mode }

let identity_plan (g : Graph.t) : plan =
  let n = Graph.node_count g in
  {
    groups =
      Array.init n (fun i -> { gid = i; members = [ i ]; internal = []; versions = 1 });
    group_of = Array.init n Fun.id;
    mode = Static_only;
  }

let layer_count plan = Array.length plan.groups

let materialized_tensors (g : Graph.t) plan =
  let internal = Hashtbl.create 64 in
  Array.iter
    (fun grp -> List.iter (fun tid -> Hashtbl.replace internal tid ()) grp.internal)
    plan.groups;
  let out = ref [] in
  for tid = Graph.tensor_count g - 1 downto 0 do
    match (Graph.tensor g tid).kind with
    | Graph.Activation when not (Hashtbl.mem internal tid) -> out := tid :: !out
    | _ -> ()
  done;
  !out

let intermediate_bytes (g : Graph.t) plan env rdp =
  List.fold_left
    (fun acc tid ->
      match Shape.eval env (Rdp.shape rdp tid) with
      | Some dims -> acc + (4 * List.fold_left ( * ) 1 dims)
      | None -> acc)
    0
    (materialized_tensors g plan)

let pp (g : Graph.t) ppf plan =
  Format.fprintf ppf "fusion plan: %d nodes -> %d groups@." (Graph.node_count g)
    (Array.length plan.groups);
  Array.iter
    (fun grp ->
      if List.length grp.members > 1 then
        Format.fprintf ppf "  group %d (%d versions): %s@." grp.gid grp.versions
          (String.concat " -> "
             (List.map (fun nid -> Op.name (Graph.node g nid).op) grp.members)))
    plan.groups
