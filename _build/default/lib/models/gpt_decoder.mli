(** §7 extension: a GPT-style decoder step with a growing key/value cache.

    Two interacting shape variables — the new-token chunk [S] and the past
    length [P] — with intermediate extents mixing them (concatenated caches
    are [P+S], attention scores are [S × (P+S)]).  A re-initializing engine
    recompiles on every decoded token; RDP resolves the graph symbolically
    once. *)

val vocab : int

val build : ?layers:int -> ?hidden:int -> ?heads:int -> unit -> Graph.t

val input_dims : Graph.t -> past:int -> seq:int -> (Graph.tensor_id * int list) list
(** Concrete input extents for one decode step (dry-mode execution). *)

val make_inputs :
  Graph.t -> past:int -> seq:int -> Rng.t -> (Graph.tensor_id * Tensor.t) list
(** Concrete input tensors for real-mode execution. *)
