(* SegmentAnything image encoder: ViT with 16×16 patch embedding over a
   symbolic H×W image, transformer blocks over the (symbolic) token count,
   and a convolutional neck. *)

let build ?(blocks = 8) ?(dim = 128) () =
  let t = Blocks.create ~seed:104 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  (* patch embedding: [1, dim, H/16, W/16] *)
  let x = Blocks.conv2d t ~stride:16 image ~cin:3 ~cout:dim ~k:16 in
  let h = Blocks.shape_dim t x 2 in
  let w = Blocks.shape_dim t x 3 in
  let hw = Blocks.op1 t (Op.Binary Op.Mul) [ h; w ] in
  let tokens =
    Blocks.reshape_concat t x ~pieces:[ Blocks.const_ints t [ 1; dim ]; hw ]
  in
  let tokens = ref (Blocks.transpose t tokens [ 0; 2; 1 ]) in
  for _ = 1 to blocks do
    tokens := Blocks.transformer_block t !tokens ~hidden:dim ~heads:4 ~inner:(dim * 4)
  done;
  let y = Blocks.layer_norm t !tokens ~dim in
  let y = Blocks.transpose t y [ 0; 2; 1 ] in
  let fmap =
    Blocks.reshape_concat t y ~pieces:[ Blocks.const_ints t [ 1; dim ]; h; w ]
  in
  (* neck: two 1×1/3×3 convolutions to the mask-decoder embedding width *)
  let y = Blocks.conv2d t fmap ~cin:dim ~cout:64 ~k:1 in
  let y = Blocks.op1 t (Op.Unary Op.Gelu) [ y ] in
  let out = Blocks.conv2d t ~pad:1 y ~cin:64 ~cout:64 ~k:3 in
  Blocks.finish t ~outputs:[ out ]
