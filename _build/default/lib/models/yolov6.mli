(** YOLO-V6-style detector over a symbolic [H]×[W] input (multiples of
    32): RepVGG-flavoured backbone, PAN neck whose upsampling extents are
    read from lateral feature shapes at run time (a dynamic [Resize]),
    and anchor-free heads concatenated into one detection tensor. *)

val classes : int

val build : ?width:int -> unit -> Graph.t
