(** ConvNet-AIG (adaptive inference graphs): every residual block —
    including stage transitions — carries a gate choosing between the
    block and its projection shortcut; symbolic [H]×[W]. *)

val build : ?blocks_per_stage:int -> unit -> Graph.t
