(** SegmentAnything image encoder: ViT with 16×16 patch embedding over a
    symbolic [H]×[W] image and a convolutional neck. *)

val build : ?blocks:int -> ?dim:int -> unit -> Graph.t
