(* RaNet (Resolution Adaptive Network): classification starts on a
   low-resolution copy of the input; a confidence gate either takes the
   early exit or continues to a higher-resolution sub-network that fuses
   the coarse features.  Two nested gates over three resolutions; H×W is
   symbolic (shape + control-flow dynamism). *)

let small_net t x ~cin ~ch =
  let y = Blocks.conv_bn_act t ~stride:2 ~pad:1 x ~cin ~cout:ch ~k:3 in
  let y = Blocks.residual_block t y ~cin:ch ~cout:ch in
  let y = Blocks.residual_block t y ~cin:ch ~cout:ch in
  let y = Blocks.residual_block t ~stride:2 y ~cin:ch ~cout:(ch * 2) in
  Blocks.residual_block t y ~cin:(ch * 2) ~cout:(ch * 2)

let classifier t feat ~ch =
  let y = Blocks.global_pool t feat in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  Blocks.linear t y ~cin:ch ~cout:100

(* Downsample [x] by stride-2 convolutions until it matches the H/16 grid,
   then fuse with the routed coarse features and classify or recurse. *)
let build () =
  let t = Blocks.create ~seed:109 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let pool2 x =
    Blocks.op1 t
      (Op.AveragePool { kernel = (2, 2); pool_stride = (2, 2); pool_pads = (0, 0, 0, 0) })
      [ x ]
  in
  let half = pool2 image in
  let quarter = pool2 half in
  (* coarse sub-network: quarter resolution -> [1, 64, H/16, W/16] *)
  let feat_a = small_net t quarter ~cin:3 ~ch:32 in
  let pred1 = Blocks.gate_pred t feat_a ~channels:64 ~branches:2 in
  let out =
    Blocks.gated2 t ~pred:pred1 feat_a
      (fun t routed_a ->
        (* confident: early exit with the coarse classifier *)
        classifier t routed_a ~ch:64)
      (fun t routed_a ->
        (* continue: half-resolution sub-network fused with coarse features *)
        let feat_b = small_net t half ~cin:3 ~ch:32 in
        (* feat_b is on the H/8 grid; bring it to H/16 and fuse *)
        let feat_b = Blocks.conv_bn_act t ~stride:2 ~pad:1 feat_b ~cin:64 ~cout:64 ~k:3 in
        let fused = Blocks.op1 t (Op.Concat { axis = 1 }) [ feat_b; routed_a ] in
        let feat_ab = Blocks.conv_bn_act t ~pad:1 fused ~cin:128 ~cout:128 ~k:3 in
        let pred2 = Blocks.gate_pred t feat_ab ~channels:128 ~branches:2 in
        Blocks.gated2 t ~pred:pred2 feat_ab
          (fun t routed_ab -> classifier t routed_ab ~ch:128)
          (fun t routed_ab ->
            (* full-resolution sub-network, fused again *)
            let feat_c = small_net t image ~cin:3 ~ch:32 in
            let feat_c =
              Blocks.conv_bn_act t ~stride:2 ~pad:1 feat_c ~cin:64 ~cout:64 ~k:3
            in
            let feat_c =
              Blocks.conv_bn_act t ~stride:2 ~pad:1 feat_c ~cin:64 ~cout:128 ~k:3
            in
            let fused = Blocks.op1 t (Op.Concat { axis = 1 }) [ feat_c; routed_ab ] in
            let feat_abc = Blocks.conv_bn_act t ~pad:1 fused ~cin:256 ~cout:256 ~k:3 in
            classifier t feat_abc ~ch:256))
  in
  Blocks.finish t ~outputs:[ out ]
