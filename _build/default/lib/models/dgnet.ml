(* DGNet-style dynamic gating network: input resolution is fixed at
   224×224 (the model supports only control-flow dynamism, as in the
   paper's Table 5), and every block chooses per input between a full
   residual path and a cheap 1×1 path. *)

let build ?(blocks_per_stage = 3) () =
  let t = Blocks.create ~seed:107 in
  let image =
    Blocks.input t ~name:"image" (Shape.of_ints [ 1; 3; 224; 224 ])
  in
  let x = Blocks.conv_bn_act t ~stride:2 ~pad:3 image ~cin:3 ~cout:32 ~k:7 in
  let x = Blocks.max_pool t ~stride:2 ~pad:1 ~k:3 x in
  let x = ref x in
  let cin = ref 32 in
  List.iter
    (fun cout ->
      x := Blocks.residual_block t ~stride:2 !x ~cin:!cin ~cout;
      cin := cout;
      for _ = 2 to blocks_per_stage + 1 do
        let pred = Blocks.gate_pred t !x ~channels:cout ~branches:2 in
        x :=
          Blocks.gated2 t ~pred !x
            (fun t y ->
              (* cheap path: 1×1 conv refinement *)
              Blocks.conv_bn_act t y ~cin:cout ~cout ~k:1)
            (fun t y ->
              (* dense path: full residual block *)
              Blocks.residual_block t y ~cin:cout ~cout)
      done)
    [ 32; 64; 128; 256 ];
  let y = Blocks.global_pool t !x in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  let logits = Blocks.linear t y ~cin:256 ~cout:100 in
  Blocks.finish t ~outputs:[ logits ]
