(** StableDiffusion (VAE-style) image encoder over a symbolic [H]×[W]
    input: GroupNorm/SiLU resnet blocks, three stride-2 downsamples and a
    spatial self-attention block whose token count is computed from Shape
    operators. *)

val build : ?base:int -> unit -> Graph.t
