type dynamism =
  | Shape_dyn
  | Control_dyn
  | Both_dyn

type spec = {
  name : string;
  paper_name : string;
  dynamism : dynamism;
  input_desc : string;
  build : unit -> Graph.t;
  dim_choices : (string * int list) list;
}

let range lo hi step =
  let rec go v acc = if v > hi then List.rev acc else go (v + step) (v :: acc) in
  go lo []

(* Paper §5.1: SD-Encoder and SegmentAnything sample 64–224; images for the
   detection/classification models sample 224–640 (multiples of 32 for
   YOLO-V6; we keep 32-alignment everywhere so every downsampling stage
   divides evenly); sequences sample 32–384. *)
let small_image = [ "H", range 64 224 32; "W", range 64 224 32 ]
let large_image = [ "H", range 224 640 32; "W", range 224 640 32 ]

let all =
  [
    {
      name = "stable-diffusion-encoder";
      paper_name = "StableDiffusion";
      dynamism = Shape_dyn;
      input_desc = "Text + Image";
      build = (fun () -> Sd_encoder.build ());
      dim_choices = small_image;
    };
    {
      name = "segment-anything";
      paper_name = "SegmentAnything";
      dynamism = Shape_dyn;
      input_desc = "Text + Image";
      build = (fun () -> Segment_anything.build ());
      dim_choices = small_image;
    };
    {
      name = "conformer";
      paper_name = "Conformer";
      dynamism = Shape_dyn;
      input_desc = "Audio";
      build = (fun () -> Conformer.build ());
      dim_choices = [ "T", range 32 384 16 ];
    };
    {
      name = "codebert";
      paper_name = "CodeBERT";
      dynamism = Shape_dyn;
      input_desc = "Text";
      build = (fun () -> Codebert.build ());
      dim_choices = [ "S", range 32 384 16 ];
    };
    {
      name = "yolov6";
      paper_name = "YOLO-V6";
      dynamism = Shape_dyn;
      input_desc = "Image";
      build = (fun () -> Yolov6.build ());
      dim_choices = large_image;
    };
    {
      name = "skipnet";
      paper_name = "SkipNet";
      dynamism = Both_dyn;
      input_desc = "Image";
      build = (fun () -> Skipnet.build ());
      dim_choices = large_image;
    };
    {
      name = "dgnet";
      paper_name = "DGNet";
      dynamism = Control_dyn;
      input_desc = "Image";
      build = (fun () -> Dgnet.build ());
      dim_choices = [];
    };
    {
      name = "convnet-aig";
      paper_name = "ConvNet-AIG";
      dynamism = Both_dyn;
      input_desc = "Image";
      build = (fun () -> Convnet_aig.build ());
      dim_choices = large_image;
    };
    {
      name = "ranet";
      paper_name = "RaNet";
      dynamism = Both_dyn;
      input_desc = "Image";
      build = (fun () -> Ranet.build ());
      dim_choices = large_image;
    };
    {
      name = "blockdrop";
      paper_name = "BlockDrop";
      dynamism = Both_dyn;
      input_desc = "Image";
      build = (fun () -> Blockdrop.build ());
      dim_choices = large_image;
    };
  ]

let by_name n = List.find_opt (fun s -> s.name = n) all

let sample_env spec rng =
  List.fold_left
    (fun env (sym, choices) -> Env.bind sym (Rng.pick rng choices) env)
    Env.empty spec.dim_choices

let percentile_env spec p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  List.fold_left
    (fun env (sym, choices) ->
      let n = List.length choices in
      let idx = min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)) in
      Env.bind sym (List.nth choices idx) env)
    Env.empty spec.dim_choices

let min_env spec = percentile_env spec 0.0
let max_env spec = percentile_env spec 1.0

let concrete_input_dims g env tid =
  match Graph.input_shape g tid with
  | Some s -> (
    match Shape.eval env s with
    | Some dims -> dims
    | None ->
      invalid_arg
        (Printf.sprintf "Zoo: input t%d has unbound shape variables (%s)" tid
           (Shape.to_string s)))
  | None -> invalid_arg "Zoo: not a graph input"

let is_token_input g tid =
  let name = (Graph.tensor g tid).Graph.tname in
  String.length name >= 3 && String.sub name 0 3 = "ids"

let make_inputs spec g env rng =
  ignore spec;
  List.map
    (fun tid ->
      let dims = concrete_input_dims g env tid in
      let t =
        if is_token_input g tid then
          let n = List.fold_left ( * ) 1 dims in
          Tensor.create_i dims (Array.init n (fun _ -> Rng.int rng Codebert.vocab))
        else Tensor.rand_uniform rng dims
      in
      tid, t)
    (Graph.inputs g)

let input_dims spec g env =
  ignore spec;
  List.map (fun tid -> tid, concrete_input_dims g env tid) (Graph.inputs g)

let gate_count g =
  Array.fold_left
    (fun acc (nd : Graph.node) ->
      match nd.op with Op.Switch _ -> acc + 1 | _ -> acc)
    0 (Graph.nodes g)
