(* SkipNet: a residual network where a small gating subnet inspects each
   block's input and decides — per input — whether to execute the block or
   skip it entirely (the <Switch, Combine> pattern).  Input H×W is
   symbolic, so the model has both shape and control-flow dynamism. *)

let build ?(blocks_per_stage = 4) () =
  let t = Blocks.create ~seed:106 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let x = Blocks.conv_bn_act t ~stride:2 ~pad:3 image ~cin:3 ~cout:32 ~k:7 in
  let x = Blocks.max_pool t ~stride:2 ~pad:1 ~k:3 x in
  let x = ref x in
  let cin = ref 32 in
  List.iter
    (fun cout ->
      (* stage transition is always executed *)
      x := Blocks.residual_block t ~stride:2 !x ~cin:!cin ~cout;
      cin := cout;
      (* remaining blocks are gated: skip (branch 0) or execute (branch 1) *)
      for _ = 2 to blocks_per_stage do
        let pred = Blocks.gate_pred t !x ~channels:cout ~branches:2 in
        x :=
          Blocks.gated t ~pred !x (fun t y ->
              Blocks.residual_block t y ~cin:cout ~cout)
      done)
    [ 32; 64; 128; 256 ];
  let y = Blocks.global_pool t !x in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  let logits = Blocks.linear t y ~cin:256 ~cout:100 in
  Blocks.finish t ~outputs:[ logits ]
