(** Conformer speech encoder with a symbolic time extent [T]: two stride-2
    convolutional subsampling layers, then blocks of half-FFN /
    self-attention / convolution module / half-FFN. *)

val mel_bins : int

val build : ?blocks:int -> ?hidden:int -> ?heads:int -> unit -> Graph.t
