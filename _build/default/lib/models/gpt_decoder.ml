(* §7 extension: a GPT-style decoder step with a growing key/value cache.

   The paper's discussion singles out LLMs as the next target for SoD2's
   optimizations.  A decoding step is the hardest shape-dynamism case the
   framework faces: TWO interacting shape variables — the chunk of new
   tokens S and the past length P — and intermediate extents that mix them
   (the concatenated cache is P+S, attention scores are S × (P+S)).  Every
   decoded token changes P, so a re-initializing engine recompiles on
   every step, while RDP resolves the whole graph symbolically once.

   The graph takes [ids : 1×S] plus per-layer [past_k/past_v :
   1×heads×P×dk] and produces the final hidden states plus the updated
   per-layer caches (1×heads×(P+S)×dk). *)

let vocab = 512

let build ?(layers = 4) ?(hidden = 128) ?(heads = 4) () =
  let t = Blocks.create ~seed:120 in
  let dk = hidden / heads in
  let ids =
    Blocks.input t ~name:"ids" (Shape.of_dims [ Dim.of_int 1; Dim.of_sym "S" ])
  in
  let pasts =
    List.init layers (fun i ->
        let shape =
          Shape.of_dims
            [ Dim.of_int 1; Dim.of_int heads; Dim.of_sym "P"; Dim.of_int dk ]
        in
        ( Blocks.input t ~name:(Printf.sprintf "past_k%d" i) shape,
          Blocks.input t ~name:(Printf.sprintf "past_v%d" i) shape ))
  in
  let tok_table = Blocks.weight t [ vocab; hidden ] in
  let pos_table = Blocks.weight t [ 1024; hidden ] in
  let x = Blocks.op1 t (Op.Gather { axis = 0 }) [ tok_table; ids ] in
  (* positions of the new tokens: Range(P, P+S) — symbolic arithmetic over
     both shape variables *)
  let past_k0, _ = List.hd pasts in
  let p_len = Blocks.shape_dim t past_k0 2 in
  let s_len = Blocks.shape_dim t ids 1 in
  let p_scalar = Blocks.op1 t (Op.Squeeze [ 0 ]) [ p_len ] in
  let limit =
    Blocks.op1 t (Op.Squeeze [ 0 ]) [ Blocks.op1 t (Op.Binary Op.Add) [ p_len; s_len ] ]
  in
  let positions = Blocks.op1 t Op.Range [ p_scalar; limit; Blocks.scalar_i t 1 ] in
  let pos = Blocks.op1 t (Op.Gather { axis = 0 }) [ pos_table; positions ] in
  let x = ref (Blocks.add t x pos) in
  let presents =
    List.map
      (fun (past_k, past_v) ->
        let h = Blocks.layer_norm t !x ~dim:hidden in
        let split_heads y =
          let y =
            Blocks.reshape_concat t y
              ~pieces:[ Blocks.const_ints t [ 1 ]; s_len; Blocks.const_ints t [ heads; dk ] ]
          in
          Blocks.transpose t y [ 0; 2; 1; 3 ]
        in
        let q = split_heads (Blocks.linear t h ~cin:hidden ~cout:hidden) in
        let k = split_heads (Blocks.linear t h ~cin:hidden ~cout:hidden) in
        let v = split_heads (Blocks.linear t h ~cin:hidden ~cout:hidden) in
        (* extend the cache: [1, heads, P+S, dk] *)
        let k_full = Blocks.op1 t (Op.Concat { axis = 2 }) [ past_k; k ] in
        let v_full = Blocks.op1 t (Op.Concat { axis = 2 }) [ past_v; v ] in
        let kt = Blocks.transpose t k_full [ 0; 1; 3; 2 ] in
        let scores = Blocks.op1 t Op.MatMul [ q; kt ] in
        let scale =
          Graph.Builder.const (Blocks.builder t) ~name:"scale"
            (Tensor.scalar_f (1.0 /. sqrt (float_of_int dk)))
        in
        let probs = Blocks.softmax t (Blocks.mul t scores scale) in
        let ctx = Blocks.op1 t Op.MatMul [ probs; v_full ] in
        let ctx = Blocks.transpose t ctx [ 0; 2; 1; 3 ] in
        let ctx =
          Blocks.reshape_concat t ctx
            ~pieces:[ Blocks.const_ints t [ 1 ]; s_len; Blocks.const_ints t [ hidden ] ]
        in
        let attn_out = Blocks.linear t ctx ~cin:hidden ~cout:hidden in
        let x1 = Blocks.add t !x attn_out in
        let h2 = Blocks.layer_norm t x1 ~dim:hidden in
        let x2 = Blocks.add t x1 (Blocks.ffn t h2 ~hidden ~inner:(hidden * 4)) in
        x := x2;
        [ k_full; v_full ])
      pasts
  in
  let final = Blocks.layer_norm t !x ~dim:hidden in
  Blocks.finish t ~outputs:(final :: List.concat presents)

(* Concrete extents for one decode step. *)
let input_dims (g : Graph.t) ~past ~seq =
  List.map
    (fun tid ->
      match Graph.input_shape g tid with
      | Some s -> (
        match Shape.eval (Env.of_list [ "P", past; "S", seq ]) s with
        | Some dims -> tid, dims
        | None -> invalid_arg "Gpt_decoder.input_dims: unbound symbol")
      | None -> assert false)
    (Graph.inputs g)

(* Concrete tensors for real-mode execution. *)
let make_inputs (g : Graph.t) ~past ~seq rng =
  List.map
    (fun tid ->
      let dims =
        match Graph.input_shape g tid with
        | Some s -> Option.get (Shape.eval (Env.of_list [ "P", past; "S", seq ]) s)
        | None -> assert false
      in
      let name = (Graph.tensor g tid).Graph.tname in
      let t =
        if String.length name >= 3 && String.sub name 0 3 = "ids" then
          Tensor.create_i dims
            (Array.init (List.fold_left ( * ) 1 dims) (fun _ -> Rng.int rng vocab))
        else Tensor.rand_uniform rng dims
      in
      tid, t)
    (Graph.inputs g)
