(** The model zoo: structurally-faithful builders of the ten dynamic DNNs
    the paper evaluates (§5.1), with the paper's input-dimension ranges.

    The graphs reproduce each model's {e structure and dynamism} — layer
    composition, symbolic input extents and input-dependent
    [<Switch, Combine>] gates — with random weights, at widths scaled down
    so the reference interpreter remains usable for correctness testing.
    The paper notes inference cost depends only on structure, not learned
    weights. *)

type dynamism =
  | Shape_dyn
  | Control_dyn
  | Both_dyn

type spec = {
  name : string;
  paper_name : string;  (** name as it appears in the paper's tables *)
  dynamism : dynamism;
  input_desc : string;  (** e.g. "Image", "Text", "Audio" *)
  build : unit -> Graph.t;
  dim_choices : (string * int list) list;
      (** shape variable → admissible values (the paper's sample ranges) *)
}

val all : spec list
(** The ten models, in the paper's Table 5 order. *)

val by_name : string -> spec option

val sample_env : spec -> Rng.t -> Env.t
(** Draw one input-shape sample (uniform over each variable's choices). *)

val percentile_env : spec -> float -> Env.t
(** Deterministic valuation at a size percentile in [\[0, 1\]] — used for
    the Table 7 input-distribution study. *)

val min_env : spec -> Env.t
val max_env : spec -> Env.t

val make_inputs : spec -> Graph.t -> Env.t -> Rng.t -> (Graph.tensor_id * Tensor.t) list
(** Concrete input tensors for real-mode execution: integer token ids for
    inputs named [ids*], uniform floats otherwise. *)

val input_dims : spec -> Graph.t -> Env.t -> (Graph.tensor_id * int list) list
(** Concrete input extents for dry-mode execution. *)

val gate_count : Graph.t -> int
(** Number of [<Switch, Combine>] gates in the graph. *)
