(* StableDiffusion encoder (VAE-encoder-like): GroupNorm/SiLU resnet
   blocks with three stride-2 downsamples and a spatial self-attention
   block in the middle, over a symbolic H×W input. *)

let resnet_block t x ~ch =
  let y = Blocks.group_norm t x ~channels:ch ~groups:8 in
  let y = Blocks.silu t y in
  let y = Blocks.conv2d t ~pad:1 y ~cin:ch ~cout:ch ~k:3 in
  let y = Blocks.group_norm t y ~channels:ch ~groups:8 in
  let y = Blocks.silu t y in
  let y = Blocks.conv2d t ~pad:1 y ~cin:ch ~cout:ch ~k:3 in
  Blocks.add t x y

(* Self-attention over flattened spatial positions, with the token count
   h·w computed from Shape operators (symbolic). *)
let spatial_attention t x ~ch =
  let h = Blocks.shape_dim t x 2 in
  let w = Blocks.shape_dim t x 3 in
  let hw = Blocks.op1 t (Op.Binary Op.Mul) [ h; w ] in
  let tokens =
    Blocks.reshape_concat t x ~pieces:[ Blocks.const_ints t [ 1; ch ]; hw ]
  in
  let tokens = Blocks.transpose t tokens [ 0; 2; 1 ] in
  let attended = Blocks.mha t tokens ~hidden:ch ~heads:4 in
  let attended = Blocks.transpose t attended [ 0; 2; 1 ] in
  let back =
    Blocks.reshape_concat t attended ~pieces:[ Blocks.const_ints t [ 1; ch ]; h; w ]
  in
  Blocks.add t x back

let build ?(base = 32) () =
  let t = Blocks.create ~seed:103 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let x = Blocks.conv2d t ~pad:1 image ~cin:3 ~cout:base ~k:3 in
  let x = ref x in
  let ch = ref base in
  List.iter
    (fun next_ch ->
      x := resnet_block t !x ~ch:!ch;
      x := resnet_block t !x ~ch:!ch;
      x := resnet_block t !x ~ch:!ch;
      (* downsample and widen *)
      x := Blocks.conv2d t ~stride:2 ~pad:1 !x ~cin:!ch ~cout:next_ch ~k:3;
      ch := next_ch)
    [ base * 2; base * 4; base * 4 ];
  x := resnet_block t !x ~ch:!ch;
  x := spatial_attention t !x ~ch:!ch;
  x := resnet_block t !x ~ch:!ch;
  let y = Blocks.group_norm t !x ~channels:!ch ~groups:8 in
  let y = Blocks.silu t y in
  let latent = Blocks.conv2d t ~pad:1 y ~cin:!ch ~cout:8 ~k:3 in
  Blocks.finish t ~outputs:[ latent ]
