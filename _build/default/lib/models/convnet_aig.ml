(* ConvNet-AIG: adaptive inference graphs — every residual block carries a
   gate that decides between executing the block and taking the shortcut.
   Symbolic H×W input (shape + control-flow dynamism). *)

let build ?(blocks_per_stage = 4) () =
  let t = Blocks.create ~seed:108 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let x = Blocks.conv_bn_act t ~stride:2 ~pad:3 image ~cin:3 ~cout:32 ~k:7 in
  let x = Blocks.max_pool t ~stride:2 ~pad:1 ~k:3 x in
  let x = ref x in
  let cin = ref 32 in
  List.iter
    (fun cout ->
      (* even the stage transition is gated: the two branches are the full
         strided block and the strided 1×1 projection, which agree in shape *)
      let pred = Blocks.gate_pred t !x ~channels:!cin ~branches:2 in
      let cin_now = !cin in
      x :=
        Blocks.gated2 t ~pred !x
          (fun t y -> Blocks.conv_bn_act t ~stride:2 ~act:`None y ~cin:cin_now ~cout ~k:1)
          (fun t y -> Blocks.residual_block t ~stride:2 y ~cin:cin_now ~cout);
      cin := cout;
      for _ = 2 to blocks_per_stage do
        let pred = Blocks.gate_pred t !x ~channels:cout ~branches:2 in
        x :=
          Blocks.gated t ~pred !x (fun t y -> Blocks.residual_block t y ~cin:cout ~cout)
      done)
    [ 32; 64; 128; 256 ];
  let y = Blocks.global_pool t !x in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  let logits = Blocks.linear t y ~cin:256 ~cout:100 in
  Blocks.finish t ~outputs:[ logits ]
