(** SkipNet: a residual network whose blocks are individually skipped per
    input through [<Switch, Combine>] gates; symbolic [H]×[W] (shape +
    control-flow dynamism). *)

val build : ?blocks_per_stage:int -> unit -> Graph.t
