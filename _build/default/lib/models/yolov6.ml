(* YOLO-V6-style single-stage detector over a symbolic H×W input
   (multiples of 32): RepVGG-flavoured backbone, PAN neck whose upsampling
   extents are read from lateral feature shapes at run time (Resize with a
   dynamic sizes operand — the ISVDOS case RDP resolves), and anchor-free
   heads concatenated into one [1 × anchors × (5+classes)] output. *)

let classes = 80

let rep_block t x ~ch =
  (* 3×3 + 1×1 parallel convolutions, summed (RepVGG training form). *)
  let a = Blocks.conv_bn_act t ~pad:1 ~act:`None x ~cin:ch ~cout:ch ~k:3 in
  let b = Blocks.conv_bn_act t ~act:`None x ~cin:ch ~cout:ch ~k:1 in
  Blocks.relu t (Blocks.add t a b)

let stage t x ~cin ~cout ~blocks =
  let y = Blocks.conv_bn_act t ~stride:2 ~pad:1 x ~cin ~cout ~k:3 in
  let y = ref y in
  for _ = 1 to blocks do
    y := rep_block t !y ~ch:cout
  done;
  !y

(* Nearest upsample of [x] to the spatial extents of [like]. *)
let resize_like t x like =
  let h = Blocks.shape_dim t like 2 in
  let w = Blocks.shape_dim t like 3 in
  let sizes = Blocks.op1 t (Op.Concat { axis = 0 }) [ h; w ] in
  Blocks.op1 t (Op.Resize Op.Nearest) [ x; sizes ]

(* Head: predictions as [1, h·w, 5+classes] with a shape-driven reshape. *)
let head t x ~ch =
  let preds = Blocks.conv2d t x ~cin:ch ~cout:(5 + classes) ~k:1 in
  let h = Blocks.shape_dim t preds 2 in
  let w = Blocks.shape_dim t preds 3 in
  let hw = Blocks.op1 t (Op.Binary Op.Mul) [ h; w ] in
  let flat =
    Blocks.reshape_concat t preds
      ~pieces:[ Blocks.const_ints t [ 1; 5 + classes ]; hw ]
  in
  Blocks.transpose t flat [ 0; 2; 1 ]

let build ?(width = 16) () =
  let t = Blocks.create ~seed:105 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let c1 = Blocks.conv_bn_act t ~stride:2 ~pad:1 image ~cin:3 ~cout:width ~k:3 in
  let c2 = stage t c1 ~cin:width ~cout:(width * 2) ~blocks:3 in
  let c3 = stage t c2 ~cin:(width * 2) ~cout:(width * 4) ~blocks:4 in
  let c4 = stage t c3 ~cin:(width * 4) ~cout:(width * 8) ~blocks:4 in
  let c5 = stage t c4 ~cin:(width * 8) ~cout:(width * 16) ~blocks:3 in
  (* top-down path *)
  let w4 = width * 8 and w3 = width * 4 in
  let lat5 = Blocks.conv_bn_act t c5 ~cin:(width * 16) ~cout:w4 ~k:1 in
  let up5 = resize_like t lat5 c4 in
  let p4 =
    Blocks.conv_bn_act t ~pad:1
      (Blocks.op1 t (Op.Concat { axis = 1 }) [ up5; c4 ])
      ~cin:(w4 * 2) ~cout:w4 ~k:3
  in
  let lat4 = Blocks.conv_bn_act t p4 ~cin:w4 ~cout:w3 ~k:1 in
  let up4 = resize_like t lat4 c3 in
  let p3 =
    Blocks.conv_bn_act t ~pad:1
      (Blocks.op1 t (Op.Concat { axis = 1 }) [ up4; c3 ])
      ~cin:(w3 * 2) ~cout:w3 ~k:3
  in
  (* bottom-up path *)
  let d3 = Blocks.conv_bn_act t ~stride:2 ~pad:1 p3 ~cin:w3 ~cout:w4 ~k:3 in
  let n4 =
    Blocks.conv_bn_act t ~pad:1
      (Blocks.op1 t (Op.Concat { axis = 1 }) [ d3; p4 ])
      ~cin:(w4 * 2) ~cout:w4 ~k:3
  in
  let d4 = Blocks.conv_bn_act t ~stride:2 ~pad:1 n4 ~cin:w4 ~cout:(width * 16) ~k:3 in
  let n5 =
    Blocks.conv_bn_act t ~pad:1
      (Blocks.op1 t (Op.Concat { axis = 1 }) [ d4; lat5 ])
      ~cin:(width * 16 + w4) ~cout:(width * 16) ~k:3
  in
  let h3 = head t p3 ~ch:w3 in
  let h4 = head t n4 ~ch:w4 in
  let h5 = head t n5 ~ch:(width * 16) in
  let detections = Blocks.op1 t (Op.Concat { axis = 1 }) [ h3; h4; h5 ] in
  Blocks.finish t ~outputs:[ detections ]
