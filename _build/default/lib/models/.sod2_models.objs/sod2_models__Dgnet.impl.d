lib/models/dgnet.ml: Blocks List Op Shape
