lib/models/dgnet.mli: Graph
