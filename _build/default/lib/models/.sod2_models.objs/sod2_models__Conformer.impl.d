lib/models/conformer.ml: Blocks Dim Graph Op Shape Tensor
