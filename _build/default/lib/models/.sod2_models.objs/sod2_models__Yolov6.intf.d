lib/models/yolov6.mli: Graph
